// Motif labeling on a whole synthetic interactome: build a BIND-like yeast
// network with planted motif structure, mine frequent patterns, keep the
// over-represented ones (randomized null model), and label them with
// LaMoFinder against the biological-process GO branch — the Section-4
// workflow of the paper at reduced scale.
package main

import (
	"fmt"

	"lamofinder"
)

func main() {
	// A mid-sized interactome keeps this example under a minute.
	ycfg := lamofinder.DefaultYeastConfig()
	ycfg.Proteins = 1000
	ycfg.Edges = 1800
	ycfg.TermsPerBranch = 150
	ycfg.Templates = []lamofinder.TemplateSpec{
		{Size: 5, Edges: 2, Instances: 30, PoolSize: 15},
		{Size: 6, Edges: 2, Instances: 30, PoolSize: 18},
		{Size: 8, Edges: 3, Instances: 30, PoolSize: 24},
	}
	y := lamofinder.NewYeast(ycfg)
	net := y.Network
	fmt.Printf("synthetic interactome: %d proteins, %d interactions\n", net.N(), net.M())

	mine := lamofinder.DefaultMineConfig()
	mine.MaxSize = 8
	mine.MinFreq = 20
	mine.BeamWidth = 40
	motifs := lamofinder.FindMotifs(net, mine)
	fmt.Printf("mined %d frequent pattern classes (sizes %d..%d, freq >= %d)\n",
		len(motifs), mine.MinSize, mine.MaxSize, mine.MinFreq)

	null := lamofinder.DefaultNullModel()
	null.Networks = 5
	lamofinder.ScoreUniqueness(net, motifs, null)
	unique := lamofinder.FilterUnique(motifs, 0.9)
	fmt.Printf("%d network motifs with uniqueness >= 0.90\n", len(unique))

	corpus := y.Corpora[0] // biological process branch
	lcfg := lamofinder.DefaultLabelConfig()
	lcfg.Sigma = 8
	lcfg.MaxOccurrences = 60
	labeler := lamofinder.NewLabeler(corpus, lcfg)
	labeled := labeler.LabelAll(unique)
	fmt.Printf("LaMoFinder produced %d labeled network motifs\n", len(labeled))

	o := corpus.Ontology()
	show := len(labeled)
	if show > 8 {
		show = 8
	}
	for _, lm := range labeled[:show] {
		fmt.Printf("  %s\n", lm.Describe(o))
	}
	if len(labeled) > show {
		fmt.Printf("  ... and %d more\n", len(labeled)-show)
	}
}

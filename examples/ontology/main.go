// Ontology analysis: parse a GO-flavored OBO document, annotate proteins,
// and explore the Section-2 machinery — weights, informative functional
// classes, border informative FC, lowest common ancestors and Lin
// similarity.
package main

import (
	"fmt"
	"strings"

	"lamofinder"
)

// A miniature GO fragment in OBO format: metabolism with two sub-branches.
const obo = `format-version: 1.2

[Term]
id: GO:0008150
name: biological_process

[Term]
id: GO:0008152
name: metabolic process
is_a: GO:0008150

[Term]
id: GO:0006091
name: energy metabolism
is_a: GO:0008152

[Term]
id: GO:0006096
name: glycolysis
is_a: GO:0006091

[Term]
id: GO:0006099
name: TCA cycle
is_a: GO:0006091
relationship: part_of GO:0008152

[Term]
id: GO:0019538
name: protein metabolism
is_a: GO:0008152

[Term]
id: GO:0006412
name: translation
is_a: GO:0019538
`

func main() {
	o, err := lamofinder.ParseOBO(strings.NewReader(obo))
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed %d terms, root(s): %v\n", o.NumTerms(), o.Roots())

	// Annotate 200 imaginary proteins: 120 glycolysis, 50 TCA, 30
	// translation.
	c := lamofinder.NewCorpus(o, 200)
	gly := o.Index("GO:0006096")
	tca := o.Index("GO:0006099")
	tra := o.Index("GO:0006412")
	for p := 0; p < 120; p++ {
		c.Annotate(p, gly)
	}
	for p := 120; p < 170; p++ {
		c.Annotate(p, tca)
	}
	for p := 170; p < 200; p++ {
		c.Annotate(p, tra)
	}

	direct := c.DirectCounts()
	w := o.ComputeWeights(direct)
	fmt.Println("\nterm weights (Lord et al.):")
	for t := 0; t < o.NumTerms(); t++ {
		fmt.Printf("  %-12s %-20s w=%.3f\n", o.ID(t), o.Name(t), w[t])
	}

	inf := o.InformativeFC(direct, 30)
	border := o.BorderInformativeFC(direct, 30)
	fmt.Printf("\ninformative FC (>=30 direct): %s\n", ids(o, inf))
	fmt.Printf("border informative FC: %s\n", ids(o, border))

	fmt.Println("\nLin similarities:")
	pairs := [][2]int{{gly, tca}, {gly, tra}, {tca, tra}}
	for _, pr := range pairs {
		lca := o.LCA(w, pr[0], pr[1])
		fmt.Printf("  ST(%s, %s) = %.3f via %s\n",
			o.Name(pr[0]), o.Name(pr[1]), o.Lin(w, pr[0], pr[1]), o.Name(lca))
	}

	fmt.Println("\nleast general common scheme of {glycolysis} and {TCA cycle}:")
	merged := lamofinder.LeastGeneral(o, w, []int32{int32(gly)}, []int32{int32(tca)}, 0)
	for _, t := range merged {
		fmt.Printf("  %s (%s)\n", o.ID(int(t)), o.Name(int(t)))
	}
}

func ids(o *lamofinder.Ontology, ts []int) string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = o.Name(t)
	}
	return strings.Join(out, ", ")
}

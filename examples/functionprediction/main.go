// Function prediction with labeled network motifs (the paper's Section 5):
// build the synthetic MIPS-like benchmark, run the full labeling pipeline,
// and compare the labeled-motif predictor against the four topology
// baselines under leave-one-out.
package main

import (
	"fmt"
	"os"

	"lamofinder"

	"lamofinder/internal/eval"
)

func main() {
	mcfg := lamofinder.DefaultMIPSConfig()
	mcfg.Proteins = 700 // reduced scale keeps this example fast
	mcfg.Edges = 960
	m := lamofinder.NewMIPS(mcfg)
	task := m.Task
	fmt.Printf("benchmark: %d proteins, %d interactions, %d annotated, %d categories\n",
		task.Network.N(), task.Network.M(), task.NumAnnotated(), task.NumFunctions)

	mine := lamofinder.DefaultMineConfig()
	mine.MaxSize = 7
	mine.MinFreq = 10
	mine.BeamWidth = 60
	motifs := lamofinder.FindMotifs(task.Network, mine)

	null := lamofinder.DefaultNullModel()
	null.Networks = 4
	lamofinder.ScoreUniqueness(task.Network, motifs, null)
	unique := lamofinder.FilterUnique(motifs, 0.75)
	fmt.Printf("mined %d classes, %d over-represented\n", len(motifs), len(unique))

	lcfg := lamofinder.DefaultLabelConfig()
	lcfg.Sigma = 6
	lcfg.MaxOccurrences = 120
	lcfg.MinDirect = 12 // informative-FC threshold scaled to 700 proteins
	labeler := lamofinder.NewLabeler(m.Corpus, lcfg)
	labeled := labeler.LabelAll(unique)
	fmt.Printf("LaMoFinder produced %d labeled motifs\n", len(labeled))

	scorers := []lamofinder.Scorer{
		lamofinder.NewLabeledMotifScorer(task, labeled),
		lamofinder.NewMRFScorer(task),
		lamofinder.NewChiSquareScorer(task),
		lamofinder.NewNCScorer(task),
		lamofinder.NewProdistinScorer(task),
	}
	var curves []lamofinder.Curve
	for _, s := range scorers {
		curves = append(curves, lamofinder.LeaveOneOut(task, s, task.NumFunctions))
	}
	fmt.Println()
	fmt.Print(eval.FormatCurves(curves))

	// The paper's comparison is precision at comparable recall: report the
	// top-1 operating point, where the labeled-motif method shows its edge.
	best, bestP := "", 0.0
	for _, c := range curves {
		if p := c.Points[0].Precision; p > bestP {
			best, bestP = c.Method, p
		}
	}
	fmt.Printf("\nbest precision at k=1: %s (%.3f)\n", best, bestP)
	if best != "LabeledMotif" {
		fmt.Println("note: on very small instances the labeled-motif method may lose its edge")
		os.Exit(0)
	}
	fmt.Println("the labeled-motif method leads, as in the paper's Figure 9")
}

// Quickstart: the LaMoFinder pipeline end to end on the paper's own worked
// example (Figures 1-3): compute GO term weights, measure occurrence
// similarity, and label the example motif g.
package main

import (
	"fmt"
	"os"

	"lamofinder"
)

func main() {
	pe := lamofinder.PaperExample()
	o := pe.Ontology
	w := pe.Weights()

	fmt.Println("== Gene Ontology weights (Table 1) ==")
	for i := 1; i <= 11; i++ {
		id := fmt.Sprintf("G%02d", i)
		t := pe.Term(id)
		fmt.Printf("  %s  w=%.2f\n", id, w[t])
	}

	fmt.Println("\n== Term similarity (Eq. 1) ==")
	g08, g09 := pe.Term("G08"), pe.Term("G09")
	fmt.Printf("  ST(G08,G09) = %.3f (lowest common parent %s)\n",
		o.Lin(w, g08, g09), o.ID(o.LCA(w, g08, g09)))

	fmt.Println("\n== Occurrence similarity (Eq. 3, Table 3) ==")
	sim := lamofinder.NewSim(o, w)
	sym := lamofinder.NewSymmetry(pe.Motif.Pattern)
	labelsOf := func(occ []int32) [][]int32 {
		out := make([][]int32, len(occ))
		for i, p := range occ {
			out[i] = pe.Corpus.Terms(int(p))
		}
		return out
	}
	so, pairing := sim.Occurrence(
		labelsOf(pe.Motif.Occurrences[0]),
		labelsOf(pe.Motif.Occurrences[1]), sym)
	fmt.Printf("  SO(o1,o2) = %.3f with vertex pairing %v\n", so, pairing)

	fmt.Println("\n== LaMoFinder (Algorithms 1-2) ==")
	cfg := lamofinder.DefaultLabelConfig()
	cfg.Sigma = 2 // the worked example has only 4 occurrences
	labeler := lamofinder.NewLabelerWithCounts(pe.Corpus, pe.Direct, cfg)
	labeled := labeler.LabelMotif(pe.Motif)
	if len(labeled) == 0 {
		fmt.Println("  no labeled motifs (unexpected)")
		os.Exit(1)
	}
	for _, lm := range labeled {
		fmt.Printf("  %s\n", lm.Describe(o))
	}
}

// Directed labeled motifs — the paper's stated further work ("mining
// labeled and directed network motifs"). This example builds a synthetic
// gene-regulatory network with planted feed-forward loops (FFLs), mines
// directed motifs, tests them against an in/out-degree-preserving null
// model, and labels them with GO terms so that the regulator, intermediate
// and target roles become visible in the labels.
package main

import (
	"fmt"
	"math/rand"

	"lamofinder"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const n = 600

	// Regulatory network: a sparse random background plus 120 planted FFLs
	// over a pool of transcription-factor-like vertices.
	g := lamofinder.NewDiGraph(n)
	for i := 0; i < 700; i++ {
		g.AddArc(rng.Intn(n), rng.Intn(n))
	}
	type ffl struct{ reg, mid, tgt int }
	var planted []ffl
	for c := 0; c < 120; c++ {
		reg := rng.Intn(60)          // small pool of regulators
		mid := 60 + rng.Intn(120)    // intermediates
		tgt := 180 + rng.Intn(n-180) // broad target space
		if reg == mid || mid == tgt || reg == tgt {
			continue
		}
		g.AddArc(reg, mid)
		g.AddArc(mid, tgt)
		g.AddArc(reg, tgt)
		planted = append(planted, ffl{reg, mid, tgt})
	}
	fmt.Printf("regulatory network: %d genes, %d arcs, %d planted FFLs\n",
		g.N(), g.M(), len(planted))

	// GO-like roles: regulator / intermediate / target subtrees.
	b := lamofinder.NewOntologyBuilder()
	b.AddTerm("GO:root", "biological regulation")
	roles := map[string]string{
		"GO:tf":  "transcription regulator activity",
		"GO:sig": "signal transduction",
		"GO:eff": "effector expression",
	}
	for id, name := range roles {
		b.AddTerm(id, name)
		b.AddRelation(id, "GO:root", lamofinder.IsA)
		b.AddRelation(id+".a", id, lamofinder.IsA)
		b.AddRelation(id+".b", id, lamofinder.IsA)
	}
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	corpus := lamofinder.NewCorpus(o, n)
	leaf := func(role string) int {
		if rng.Intn(2) == 0 {
			return o.Index(role + ".a")
		}
		return o.Index(role + ".b")
	}
	for _, f := range planted {
		corpus.Annotate(f.reg, leaf("GO:tf"))
		corpus.Annotate(f.mid, leaf("GO:sig"))
		corpus.Annotate(f.tgt, leaf("GO:eff"))
	}

	// Mine directed motifs and keep the over-represented ones.
	mine := lamofinder.DefaultMineConfig()
	mine.MaxSize = 3
	mine.MinFreq = 30
	motifs := lamofinder.FindDirectedMotifs(g, mine)
	null := lamofinder.DefaultNullModel()
	null.Networks = 6
	lamofinder.ScoreDirectedUniqueness(g, motifs, null)
	unique := lamofinder.FilterUniqueDirected(motifs, 0.8)
	fmt.Printf("mined %d directed classes, %d over-represented:\n", len(motifs), len(unique))
	for _, m := range unique {
		fmt.Printf("  %s\n", m)
	}

	// Label them: the FFL's three roles should surface as distinct labels.
	lcfg := lamofinder.DefaultLabelConfig()
	lcfg.Sigma = 10
	lcfg.MinDirect = 1000 // tiny corpus: disable border freezing
	labeler := lamofinder.NewLabeler(corpus, lcfg)
	for _, m := range unique {
		for _, lm := range lamofinder.LabelDirected(labeler, m) {
			fmt.Printf("labeled: %s\n", lm.Describe(o))
		}
	}
}

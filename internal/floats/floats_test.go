package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{1e12, 1e12 + 1, true}, // relative tolerance at large magnitude
		{1e12, 1.001e12, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	if !Less(1, 2) {
		t.Error("Less(1, 2) = false")
	}
	if Less(2, 1) {
		t.Error("Less(2, 1) = true")
	}
	if Less(1, 1+1e-12) {
		t.Error("Less within tolerance = true")
	}
}

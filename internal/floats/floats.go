// Package floats centralizes float64 comparison for the scoring and
// evaluation code. Direct ==/!= between computed float64 values is
// forbidden by the lamovet floateq analyzer: similarity scores, term
// weights, and AUC ranks are produced by chains of arithmetic whose
// rounding differs across refactorings, so exact equality silently turns
// into order-dependent behavior. All equality-like decisions on computed
// floats must flow through this package so the tolerance lives in one
// place.
package floats

import "math"

// Eps is the shared comparison tolerance. It is far below the resolution
// of anything the pipeline compares (similarities in [0,1] reported to two
// decimals, z-scores, AUC ranks) and far above accumulated rounding error
// of the short arithmetic chains that produce those values.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps, scaled by magnitude so
// the tolerance is relative for large values and absolute near zero.
// NaN compares unequal to everything, matching IEEE semantics.
func Eq(a, b float64) bool {
	if a == b { // fast path; also handles infinities of the same sign
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // opposite infinities, or finite vs. infinite
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= Eps*scale
}

// Less reports whether a is less than b by more than the shared tolerance,
// i.e. a < b and not Eq(a, b).
func Less(a, b float64) bool {
	return a < b && !Eq(a, b)
}

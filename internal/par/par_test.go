package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got < 1 {
		t.Fatalf("Workers(-5) = %d, want >= 1", got)
	}
}

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		hits := make([]int32, n)
		Do(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	Do(0, 4, func(int) { t.Fatal("fn called for n=0") })
	Do(-3, 4, func(int) { t.Fatal("fn called for n<0") })
}

func TestChunksBoundariesIndependentOfWorkers(t *testing.T) {
	const n, size = 103, 10
	want := NumChunks(n, size)
	if want != 11 {
		t.Fatalf("NumChunks(103, 10) = %d, want 11", want)
	}
	for _, workers := range []int{1, 4} {
		type rng struct{ lo, hi int }
		got := make([]rng, want)
		Chunks(n, size, workers, func(c, lo, hi int) { got[c] = rng{lo, hi} })
		covered := 0
		for c, r := range got {
			if r.lo != c*size {
				t.Fatalf("workers=%d chunk %d: lo=%d", workers, c, r.lo)
			}
			covered += r.hi - r.lo
		}
		if covered != n {
			t.Fatalf("workers=%d: covered %d of %d", workers, covered, n)
		}
		if got[want-1].hi != n {
			t.Fatalf("workers=%d: last chunk ends at %d", workers, got[want-1].hi)
		}
	}
	if NumChunks(0, 10) != 0 || NumChunks(10, 0) != 0 {
		t.Fatal("NumChunks must be 0 for empty input or non-positive size")
	}
}

// Package par provides the deterministic worker-pool primitives shared by
// the parallel stages of the pipeline (similarity matrices, ESU root
// fan-out, per-branch experiment stages). Determinism is preserved by
// construction: tasks are identified by index, results are written to
// index-addressed slots, and work partitioning never depends on the worker
// count — only the schedule does, which no caller observes.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines. fn must
// confine its writes to data owned by index i (slot i of a result slice);
// under that contract the result is independent of the schedule. Do returns
// after every call has completed. workers <= 0 resolves via Workers.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// NumChunks returns the number of fixed-size chunks that partition [0, n).
func NumChunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// Chunks partitions [0, n) into fixed-size chunks and runs fn(chunk, lo, hi)
// for each half-open range [lo, hi) on up to workers goroutines. The chunk
// boundaries depend only on n and size — never on workers — so per-chunk
// results (e.g. per-chunk RNG streams seeded by the chunk index) are
// reproducible at any parallelism level.
func Chunks(n, size, workers int, fn func(chunk, lo, hi int)) {
	nc := NumChunks(n, size)
	Do(nc, workers, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	})
}

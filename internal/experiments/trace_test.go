package experiments

import (
	"reflect"
	"strings"
	"testing"

	"lamofinder/internal/obs"
)

// TestMineLabeledTraced pins two properties of stage tracing: the recorder
// sees the pipeline's stages in order with plausible contents, and tracing
// never changes the mined output (the injected clock is telemetry only).
func TestMineLabeledTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	cfg := QuickFigure9Config()
	cfg.MIPS.Proteins = 300
	cfg.MIPS.Edges = 420
	cfg.Null.Networks = 2
	cfg.Label.MinDirect = 6

	var rec obs.StageRecorder
	traced := MineLabeledTraced(cfg, &rec)
	plain := MineLabeled(cfg)

	stages := rec.Stages()
	wantOrder := []string{"census", "uniqueness", "labeling", "clustering"}
	if len(stages) != len(wantOrder) {
		t.Fatalf("recorded %d stages, want %d: %+v", len(stages), len(wantOrder), stages)
	}
	for i, name := range wantOrder {
		if stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, stages[i].Name, name)
		}
	}
	if stages[0].Items != int64(traced.MinedClasses) {
		t.Errorf("census items %d, mined classes %d", stages[0].Items, traced.MinedClasses)
	}
	if stages[1].Items != int64(traced.UniqueMotifs) {
		t.Errorf("uniqueness items %d, unique motifs %d", stages[1].Items, traced.UniqueMotifs)
	}
	if stages[2].Items != int64(len(traced.Labeled)) {
		t.Errorf("labeling items %d, labeled %d", stages[2].Items, len(traced.Labeled))
	}
	for _, s := range stages[:3] {
		if s.Wall <= 0 {
			t.Errorf("stage %s has non-positive wall time %v", s.Name, s.Wall)
		}
	}
	// Clustering busy time is accumulated by the injected clock and
	// mirrored into the labeling stage's Busy column.
	if stages[2].Busy != stages[3].Wall {
		t.Errorf("labeling busy %v != clustering wall %v", stages[2].Busy, stages[3].Wall)
	}
	if traced.UniqueMotifs > 0 && stages[3].Wall <= 0 {
		t.Error("clustering recorded zero busy time despite unique motifs")
	}

	if traced.MinedClasses != plain.MinedClasses || traced.UniqueMotifs != plain.UniqueMotifs {
		t.Fatalf("tracing changed pipeline statistics: %+v vs %+v", traced, plain)
	}
	if !reflect.DeepEqual(traced.Labeled, plain.Labeled) {
		t.Fatal("tracing changed the labeled motifs")
	}

	var sb strings.Builder
	if err := rec.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range wantOrder {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("stage table missing %q:\n%s", name, sb.String())
		}
	}
}

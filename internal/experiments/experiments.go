// Package experiments regenerates every table and figure of the paper's
// evaluation: the worked-example Tables 1, 3 and 4; the Section-4 mining
// statistics; Figure 6 (labeled motif size distribution); Figure 7 (example
// labeled motifs); and Figure 9 (precision/recall of the five prediction
// methods). Each experiment returns a printable result consumed by
// cmd/experiments and by the repository-level benchmarks, and EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
)

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Term            string
	Direct          int
	Inclusive       int
	Weight          float64
	PaperInclusive  int
	PaperWeight     float64
	MatchesPaper    bool
	KnownDeviation  bool
	DeviationReason string
}

// Table1Result is the reproduced Table 1.
type Table1Result struct{ Rows []Table1Row }

// Table1 recomputes GO term weights for the paper's Figure-1 example.
func Table1() *Table1Result {
	pe := dataset.NewPaperExample()
	incl := pe.Ontology.InclusiveCounts(pe.Direct)
	w := pe.Weights()
	paperIncl := map[string]int{
		"G01": 585, "G02": 415, "G03": 475, "G04": 245, "G05": 280,
		"G06": 250, "G07": 100, "G08": 135, "G09": 100, "G10": 90, "G11": 20,
	}
	paperW := map[string]float64{
		"G01": 1.00, "G02": 0.71, "G03": 0.81, "G04": 0.42, "G05": 0.48,
		"G06": 0.43, "G07": 0.17, "G08": 0.23, "G09": 0.17, "G10": 0.15, "G11": 0.03,
	}
	res := &Table1Result{}
	for i := 1; i <= 11; i++ {
		id := fmt.Sprintf("G%02d", i)
		t := pe.Term(id)
		row := Table1Row{
			Term:           id,
			Direct:         pe.Direct[t],
			Inclusive:      incl[t],
			Weight:         w[t],
			PaperInclusive: paperIncl[id],
			PaperWeight:    paperW[id],
		}
		row.MatchesPaper = row.Inclusive == row.PaperInclusive &&
			abs(row.Weight-row.PaperWeight) <= 0.005
		if !row.MatchesPaper && id == "G05" {
			row.KnownDeviation = true
			row.DeviationReason = "paper's Table 1 omits G08 under G05; Tables 3-4 and the ST example require the G08 is-a G05 edge"
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteText renders the result.
func (r *Table1Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Table 1: GO term weights (Figure-1 example ontology)\n")
	fmt.Fprintf(bw, "%-5s %7s %10s %7s | %10s %7s  %s\n",
		"term", "direct", "inclusive", "weight", "paper-inc", "paper-w", "status")
	for _, row := range r.Rows {
		status := "match"
		if !row.MatchesPaper {
			if row.KnownDeviation {
				status = "documented deviation"
			} else {
				status = "MISMATCH"
			}
		}
		fmt.Fprintf(bw, "%-5s %7d %10d %7.2f | %10d %7.2f  %s\n",
			row.Term, row.Direct, row.Inclusive, row.Weight,
			row.PaperInclusive, row.PaperWeight, status)
	}
	return bw.Flush()
}

// Table3Row is one SV pairing row of the reproduced Table 3.
type Table3Row struct {
	A, B    string // protein names
	SV      float64
	PaperSV float64
}

// Table3Result reproduces Table 3: vertex similarities and SO(o1,o2).
type Table3Result struct {
	Rows    []Table3Row
	SO      float64
	PaperSO float64
	Pairing []int
}

// Table3 recomputes the occurrence similarity between o1 and o2.
func Table3() *Table3Result {
	pe := dataset.NewPaperExample()
	s := label.NewSim(pe.Ontology, pe.Weights())
	res := &Table3Result{PaperSO: 0.87}
	pv := func(i int) int { return i - 1 }
	rows := []struct {
		a, b  int
		paper float64
	}{
		{1, 12, 1.00}, {1, 10, 0.99}, {2, 9, 1.00}, {2, 11, 0.76},
		{3, 10, 0.80}, {3, 12, 0.45}, {4, 11, 0.69}, {4, 9, 0.99},
	}
	for _, r := range rows {
		sv := s.Vertex(pe.Corpus.Terms(pv(r.a)), pe.Corpus.Terms(pv(r.b)))
		res.Rows = append(res.Rows, Table3Row{
			A: fmt.Sprintf("p%d", r.a), B: fmt.Sprintf("p%d", r.b),
			SV: sv, PaperSV: r.paper,
		})
	}
	o1, o2 := pe.Motif.Occurrences[0], pe.Motif.Occurrences[1]
	labelsOf := func(occ []int32) [][]int32 {
		out := make([][]int32, len(occ))
		for i, p := range occ {
			out[i] = pe.Corpus.Terms(int(p))
		}
		return out
	}
	sym := label.NewSymmetry(pe.Motif.Pattern)
	res.SO, res.Pairing = s.Occurrence(labelsOf(o1), labelsOf(o2), sym)
	return res
}

// WriteText renders the result.
func (r *Table3Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Table 3: similarity between occurrences o1 and o2\n")
	fmt.Fprintf(bw, "%-5s %-5s %8s %9s\n", "o1", "o2", "SV", "paper-SV")
	for _, row := range r.Rows {
		fmt.Fprintf(bw, "%-5s %-5s %8.2f %9.2f\n", row.A, row.B, row.SV, row.PaperSV)
	}
	fmt.Fprintf(bw, "SO(o1,o2) = %.3f (paper: %.2f), best pairing %v\n", r.SO, r.PaperSO, r.Pairing)
	return bw.Flush()
}

// Table4Row is one vertex of the reproduced Table 4.
type Table4Row struct {
	O1, O2 []string // input annotation ids
	Common []string // least general labels
	Paper  []string
	Match  bool
}

// Table4Result reproduces Table 4: minimum common father labels.
type Table4Result struct{ Rows []Table4Row }

// Table4 recomputes the least-general labels for the o1/o2 vertex pairs.
func Table4() *Table4Result {
	pe := dataset.NewPaperExample()
	o, w := pe.Ontology, pe.Weights()
	mk := func(ids ...string) []int32 {
		out := make([]int32, len(ids))
		for i, id := range ids {
			out[i] = int32(pe.Term(id))
		}
		return out
	}
	rows := []struct {
		a, b, paper []string
	}{
		{[]string{"G04", "G09", "G10"}, []string{"G09"}, []string{"G02", "G09", "G05"}},
		{[]string{"G03", "G10"}, []string{"G10", "G11"}, []string{"G03", "G10", "G08"}},
		{[]string{"G08"}, []string{"G03", "G05", "G07"}, []string{"G03", "G05", "G04"}},
		{[]string{"G07", "G09"}, []string{"G05"}, []string{"G02", "G05"}},
	}
	res := &Table4Result{}
	for _, r := range rows {
		got := label.LeastGeneral(o, w, mk(r.a...), mk(r.b...), 0)
		ids := make([]string, len(got))
		for i, t := range got {
			ids[i] = o.ID(int(t))
		}
		row := Table4Row{O1: r.a, O2: r.b, Common: ids, Paper: r.paper}
		row.Match = sameSet(ids, r.paper)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteText renders the result.
func (r *Table4Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Table 4: minimum common father labels of o1/o2 vertices\n")
	for i, row := range r.Rows {
		status := "match"
		if !row.Match {
			status = "MISMATCH"
		}
		fmt.Fprintf(bw, "v%d: o1=%s o2=%s -> %s (paper %s) %s\n",
			i+1, strings.Join(row.O1, ","), strings.Join(row.O2, ","),
			strings.Join(row.Common, ","), strings.Join(row.Paper, ","), status)
	}
	return bw.Flush()
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

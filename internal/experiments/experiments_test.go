package experiments

import (
	"math"
	"strings"
	"testing"

	"lamofinder/internal/dataset"
)

func TestTable1MatchesPaperExceptKnownDeviation(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MatchesPaper {
			continue
		}
		if !row.KnownDeviation {
			t.Errorf("undocumented mismatch on %s: incl %d vs %d, w %.2f vs %.2f",
				row.Term, row.Inclusive, row.PaperInclusive, row.Weight, row.PaperWeight)
		}
	}
	// Exactly one documented deviation (G05).
	dev := 0
	for _, row := range r.Rows {
		if row.KnownDeviation {
			dev++
			if row.Term != "G05" {
				t.Errorf("unexpected deviation on %s", row.Term)
			}
		}
	}
	if dev != 1 {
		t.Errorf("deviations = %d, want 1", dev)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "documented deviation") {
		t.Error("text output missing deviation note")
	}
}

func TestTable3CloseToPaper(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.Abs(row.SV-row.PaperSV) > 0.15 {
			t.Errorf("SV(%s,%s) = %.3f, paper %.2f", row.A, row.B, row.SV, row.PaperSV)
		}
	}
	// Our automorphism search may find a better pairing than the paper's
	// per-set heuristic, so SO >= paper - tolerance.
	if r.SO < r.PaperSO-0.05 {
		t.Errorf("SO = %.3f below paper %.2f", r.SO, r.PaperSO)
	}
	if r.SO > 1 {
		t.Errorf("SO = %.3f out of range", r.SO)
	}
}

func TestTable4AllRowsMatch(t *testing.T) {
	r := Table4()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if !row.Match {
			t.Errorf("row %d: got %v, paper %v", i+1, row.Common, row.Paper)
		}
	}
}

func miniFigure6Config() Figure6Config {
	cfg := QuickFigure6Config()
	cfg.Yeast.Proteins = 450
	cfg.Yeast.Edges = 800
	cfg.Yeast.TermsPerBranch = 80
	cfg.Yeast.Templates = []dataset.TemplateSpec{
		{Size: 4, Edges: 1, Instances: 25, PoolSize: 12},
		{Size: 6, Edges: 2, Instances: 25, PoolSize: 18},
	}
	cfg.Mine.MaxSize = 6
	cfg.Mine.MinFreq = 15
	cfg.Null.Networks = 2
	cfg.Null.MaxSteps = 50_000
	cfg.Branches = 1
	return cfg
}

func TestFigure6PipelineMini(t *testing.T) {
	r := Figure6(miniFigure6Config())
	if r.UnlabeledMotifs == 0 {
		t.Fatal("no unique motifs survived the null model")
	}
	if r.LabeledMotifs == 0 {
		t.Fatal("no labeled motifs")
	}
	if r.LabeledMotifs < r.UnlabeledMotifs {
		t.Logf("note: labeled (%d) < unlabeled (%d); paper has ~2.8x",
			r.LabeledMotifs, r.UnlabeledMotifs)
	}
	total := 0
	for size, c := range r.CountBySize {
		if size < 2 || c < 0 {
			t.Errorf("bad histogram entry %d:%d", size, c)
		}
		total += c
	}
	if total != r.LabeledMotifs {
		t.Errorf("histogram sum %d != labeled %d", total, r.LabeledMotifs)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Error("text output malformed")
	}
}

func TestFigure9PipelineMini(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	cfg := QuickFigure9Config()
	cfg.MIPS.Proteins = 400
	cfg.MIPS.Edges = 560
	cfg.Null.Networks = 2
	cfg.Label.MinDirect = 8 // ~12 direct per category at 400 proteins
	r := Figure9(cfg)
	if len(r.Curves) != 5 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	lm := r.Curve("LabeledMotif")
	if lm == nil {
		t.Fatal("LabeledMotif curve missing")
	}
	if r.LabeledMotifs == 0 {
		t.Fatal("no labeled motifs in pipeline")
	}
	// The paper's headline: the labeled-motif method has the best precision
	// at its operating points. Compare P@1 against every baseline.
	for _, c := range r.Curves {
		if c.Method == "LabeledMotif" {
			continue
		}
		if lm.Points[0].Precision < c.Points[0].Precision {
			t.Errorf("LabeledMotif P@1 %.3f below %s %.3f",
				lm.Points[0].Precision, c.Method, c.Points[0].Precision)
		}
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "PRODISTIN") {
		t.Error("text output missing methods")
	}
}

func TestFigure7PipelineMini(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	cfg := DefaultFigure7Config()
	cfg.Yeast.Proteins = 500
	cfg.Yeast.Edges = 900
	cfg.Yeast.TermsPerBranch = 80
	cfg.Yeast.Templates = []dataset.TemplateSpec{
		{Size: 5, Edges: 2, Instances: 25, PoolSize: 15},
		{Size: 6, Edges: 2, Instances: 25, PoolSize: 18},
	}
	cfg.Mine.MaxSize = 6
	cfg.Mine.MinFreq = 15
	cfg.Label.Sigma = 6
	r := Figure7(cfg)
	if r.UniCount+r.NonUniCount == 0 {
		t.Error("no functional exhibits found")
	}
	if r.ParallelCount == 0 {
		t.Error("no parallel function+location exhibit found")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "g1-like") {
		t.Error("text output malformed")
	}
}

func TestFigure8Demonstration(t *testing.T) {
	r := Figure8()
	if r.Protein != "p1" {
		t.Errorf("protein = %q", r.Protein)
	}
	if r.TopFunction == "" || r.Score <= 0 {
		t.Fatalf("no prediction: %+v", r)
	}
	if !r.Correct {
		t.Errorf("top prediction %s not consistent with p1's annotations", r.TopFunction)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "Figure 8") {
		t.Error("text output malformed")
	}
}

package experiments

import (
	"bufio"
	"fmt"
	"io"

	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/predict"
)

// Figure8Result demonstrates the paper's Figure 8: an unknown protein p
// sitting in an occurrence of a labeled motif inherits the functions of the
// proteins occupying the corresponding vertex in the other occurrences.
type Figure8Result struct {
	// Protein is the query protein's name.
	Protein string
	// Vertex is p's position in the labeled motif.
	Vertex int
	// TopFunction is the predicted function (term id) and its score.
	TopFunction string
	Score       float64
	// Ranking lists term ids best-first.
	Ranking []string
	// Correct reports whether the top prediction matches the hidden truth.
	Correct bool
}

// Figure8 builds the demonstration on the paper's worked example: the
// labeled motif from Figures 2-3 predicts the function of protein p1 with
// its own annotations hidden, using the corresponding vertices of the other
// occurrences (the mechanism of Section 5.1 / Figure 8).
func Figure8() *Figure8Result {
	pe := dataset.NewPaperExample()
	o := pe.Ontology

	// Label the example motif.
	l := label.NewLabelerWithCounts(pe.Corpus, pe.Direct, label.Config{
		Sigma: 2, MinDirect: 30,
	})
	motifs := l.LabelMotif(pe.Motif)

	// Prediction task at GO-term granularity: each annotated protein's
	// direct terms act as its "functions".
	task := predict.NewTask(pe.Network, o.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, t := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(t))
		}
	}
	scorer := label.NewScorer(task, motifs)

	// Query: protein p1 (vertex 0 of occurrence o1). Scores exclude p1's
	// own annotations by construction.
	const query = 0 // p1
	scores := scorer.Scores(query)
	res := &Figure8Result{Protein: pe.Network.Name(query), Vertex: 0}
	best, bestScore := -1, 0.0
	for t, s := range scores {
		if s > bestScore {
			best, bestScore = t, s
		}
	}
	if best >= 0 {
		res.TopFunction = o.ID(best)
		res.Score = bestScore
	}
	type ts struct {
		t int
		s float64
	}
	var ranked []ts
	for t, s := range scores {
		if s > 0 {
			ranked = append(ranked, ts{t, s})
		}
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].s > ranked[i].s {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	for _, r := range ranked {
		res.Ranking = append(res.Ranking, fmt.Sprintf("%s:%.2f", o.ID(r.t), r.s))
	}
	// Truth: p1 is annotated with G04, G09, G10 (Table 2). The prediction
	// is "correct" when the top term is one of them or an ancestor.
	for _, t := range pe.Corpus.Terms(query) {
		if best >= 0 && (best == int(t) || o.IsAncestorOrSelf(best, int(t))) {
			res.Correct = true
		}
	}
	return res
}

// WriteText renders the demonstration.
func (r *Figure8Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Figure 8: predicting the function of protein %s from its labeled motif\n", r.Protein)
	fmt.Fprintf(bw, "  top prediction: %s (score %.2f), correct=%v\n", r.TopFunction, r.Score, r.Correct)
	fmt.Fprintf(bw, "  ranking: %v\n", r.Ranking)
	return bw.Flush()
}

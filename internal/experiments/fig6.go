package experiments

import (
	"bufio"
	"fmt"
	"io"

	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/par"
)

// Figure6Config sizes the Figure-6 pipeline (mine -> null model -> label).
type Figure6Config struct {
	Yeast dataset.YeastConfig
	Mine  motif.Config
	Null  motif.UniquenessConfig
	Label label.Config
	// MinUniqueness filters motifs before labeling (paper: 0.95).
	MinUniqueness float64
	// Branches selects how many GO branches to label with (paper: 3).
	Branches int
}

// DefaultFigure6Config runs at the paper's network scale with mining
// parameters adapted to the beam miner (see DESIGN.md).
func DefaultFigure6Config() Figure6Config {
	mine := motif.DefaultConfig()
	mine.MinFreq = 30
	mine.BeamWidth = 80
	mine.MaxOccPerClass = 250
	null := motif.DefaultUniquenessConfig()
	null.Networks = 5
	null.MaxSteps = 300_000
	lab := label.DefaultConfig()
	lab.MaxOccurrences = 120
	return Figure6Config{
		Yeast:         dataset.DefaultYeastConfig(),
		Mine:          mine,
		Null:          null,
		Label:         lab,
		MinUniqueness: 0.95,
		Branches:      3,
	}
}

// QuickFigure6Config is a reduced-scale preset for tests and benchmarks.
func QuickFigure6Config() Figure6Config {
	cfg := DefaultFigure6Config()
	cfg.Yeast.Proteins = 900
	cfg.Yeast.Edges = 1600
	cfg.Yeast.TermsPerBranch = 120
	cfg.Yeast.Templates = []dataset.TemplateSpec{
		{Size: 4, Edges: 1, Instances: 30, PoolSize: 12},
		{Size: 6, Edges: 2, Instances: 30, PoolSize: 18},
		{Size: 8, Edges: 2, Instances: 30, PoolSize: 24},
		{Size: 10, Edges: 3, Instances: 30, PoolSize: 30},
	}
	cfg.Mine.MaxSize = 10
	cfg.Mine.MinFreq = 20
	cfg.Mine.BeamWidth = 40
	cfg.Mine.MaxOccPerClass = 150
	cfg.Null.Networks = 3
	cfg.Null.MaxSteps = 100_000
	cfg.Label.Sigma = 8
	cfg.Label.MaxOccurrences = 50
	cfg.Branches = 2
	return cfg
}

// Figure6Result is the labeled-motif size distribution plus the Section-4
// headline statistics.
type Figure6Result struct {
	// CountBySize[k] = number of labeled network motifs with k vertices.
	CountBySize map[int]int
	// MinedBySize and UniqueBySize trace the pipeline per size.
	MinedBySize, UniqueBySize map[int]int
	// UnlabeledMotifs is the count of unique unlabeled motifs (paper: 1367).
	UnlabeledMotifs int
	// LabeledMotifs is the total labeled motif count (paper: 3842).
	LabeledMotifs int
	// MinedClasses is the pre-uniqueness class count.
	MinedClasses int
	// Network statistics for the Section-4 report.
	Proteins, Edges   int
	AnnotatedProteins int
	// PeakSize is the motif size with the most labeled motifs.
	PeakSize int
	// MesoFraction is the fraction of labeled motifs with >= 10 vertices.
	MesoFraction float64
}

// Figure6 runs the whole pipeline on the synthetic interactome: mine
// motifs to meso-scale, keep the unique ones, and label them against each
// GO branch, reporting the size distribution of labeled motifs.
func Figure6(cfg Figure6Config) *Figure6Result {
	y := dataset.NewYeast(cfg.Yeast)
	mined := motif.Find(y.Network, cfg.Mine)
	motif.ScoreUniqueness(y.Network, mined, cfg.Null)
	unique := motif.FilterUnique(mined, cfg.MinUniqueness)

	res := &Figure6Result{
		CountBySize:       map[int]int{},
		MinedBySize:       map[int]int{},
		UniqueBySize:      map[int]int{},
		UnlabeledMotifs:   len(unique),
		MinedClasses:      len(mined),
		Proteins:          y.Network.N(),
		Edges:             y.Network.M(),
		AnnotatedProteins: y.Corpora[0].NumAnnotated(),
	}
	for _, m := range mined {
		res.MinedBySize[m.Size()]++
	}
	for _, m := range unique {
		res.UniqueBySize[m.Size()]++
	}
	branches := cfg.Branches
	if branches < 1 {
		branches = 1
	}
	if branches > 3 {
		branches = 3
	}
	// Label every (branch, motif) pair concurrently: job j writes only its
	// own slot, and the serial aggregation below walks slots in job order,
	// so the tallies match the old nested loops exactly.
	labelers := make([]*label.Labeler, branches)
	for b := 0; b < branches; b++ {
		labelers[b] = label.NewLabeler(y.Corpora[b], cfg.Label)
	}
	slots := make([][]int, branches*len(unique))
	par.Do(len(slots), par.Workers(cfg.Label.Parallelism), func(j int) {
		b, i := j/len(unique), j%len(unique)
		for _, lm := range labelers[b].LabelMotif(unique[i]) {
			slots[j] = append(slots[j], lm.Size())
		}
	})
	for _, sizes := range slots {
		for _, size := range sizes {
			res.CountBySize[size]++
			res.LabeledMotifs++
		}
	}
	best, bestC := 0, -1
	meso := 0
	for size, c := range res.CountBySize {
		if c > bestC || (c == bestC && size > best) {
			best, bestC = size, c
		}
		if size >= 10 {
			meso += c
		}
	}
	res.PeakSize = best
	if res.LabeledMotifs > 0 {
		res.MesoFraction = float64(meso) / float64(res.LabeledMotifs)
	}
	return res
}

// WriteText renders the distribution as an ASCII bar chart plus the
// headline statistics, the textual analogue of Figure 6.
func (r *Figure6Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Section 4 statistics (paper: 4141 proteins, 7095 edges, 3554 annotated; 1367 unlabeled -> 3842 labeled motifs)\n")
	fmt.Fprintf(bw, "  proteins=%d edges=%d annotated=%d\n", r.Proteins, r.Edges, r.AnnotatedProteins)
	fmt.Fprintf(bw, "  mined classes=%d unique motifs=%d labeled motifs=%d (x%.2f)\n",
		r.MinedClasses, r.UnlabeledMotifs, r.LabeledMotifs, r.ratio())
	fmt.Fprintf(bw, "Figure 6: labeled network motif distribution (peak size %d, meso fraction %.2f)\n",
		r.PeakSize, r.MesoFraction)
	fmt.Fprintf(bw, "  pipeline by size (mined/unique/labeled):\n")
	for size := 2; size <= 25; size++ {
		if r.MinedBySize[size]+r.UniqueBySize[size]+r.CountBySize[size] == 0 {
			continue
		}
		fmt.Fprintf(bw, "    size %2d: %4d / %4d / %4d\n",
			size, r.MinedBySize[size], r.UniqueBySize[size], r.CountBySize[size])
	}
	maxC := 1
	maxSize := 0
	for size, c := range r.CountBySize {
		if c > maxC {
			maxC = c
		}
		if size > maxSize {
			maxSize = size
		}
	}
	for size := 2; size <= maxSize; size++ {
		c := r.CountBySize[size]
		if c == 0 {
			continue
		}
		bar := make([]byte, 0, 40)
		n := c * 40 / maxC
		for i := 0; i < n; i++ {
			bar = append(bar, '#')
		}
		fmt.Fprintf(bw, "  size %2d | %4d %s\n", size, c, bar)
	}
	return bw.Flush()
}

func (r *Figure6Result) ratio() float64 {
	if r.UnlabeledMotifs == 0 {
		return 0
	}
	return float64(r.LabeledMotifs) / float64(r.UnlabeledMotifs)
}

package experiments

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"lamofinder/internal/dataset"
	"lamofinder/internal/eval"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/obs"
	"lamofinder/internal/par"
	"lamofinder/internal/predict"
)

// Figure9Config sizes the prediction comparison.
type Figure9Config struct {
	MIPS dataset.MIPSConfig
	Mine motif.Config
	Null motif.UniquenessConfig
	// MinUniqueness filters motifs before labeling.
	MinUniqueness float64
	Label         label.Config
	// MaxK bounds the PR sweep (paper: top 13 categories).
	MaxK int
	// IncludeProdistin can be disabled for speed (its tree is O(n^3)).
	IncludeProdistin bool
	// IncludeGibbs adds the fuller Gibbs-sampling MRF as a sixth curve.
	IncludeGibbs bool
}

// DefaultFigure9Config runs at the paper's MIPS scale (1877 proteins, 2448
// interactions, 13 categories).
func DefaultFigure9Config() Figure9Config {
	mine := motif.DefaultConfig()
	mine.MaxSize = 7
	mine.MinFreq = 15
	mine.BeamWidth = 150
	mine.MaxOccPerClass = 600
	// At small sizes the frequency signal is informative; the density beam
	// is a meso-scale device (see Figure6Config).
	mine.DenseBeamFraction = 0
	null := motif.DefaultUniquenessConfig()
	null.Networks = 8
	null.MaxSteps = 1_500_000 // let small-pattern counts resolve exactly
	lab := label.DefaultConfig()
	lab.Sigma = 8
	lab.MaxOccurrences = 220
	return Figure9Config{
		MIPS:             dataset.DefaultMIPSConfig(),
		Mine:             mine,
		Null:             null,
		MinUniqueness:    0.6,
		Label:            lab,
		MaxK:             13,
		IncludeProdistin: true,
	}
}

// QuickFigure9Config is a reduced-scale preset for tests and benchmarks.
func QuickFigure9Config() Figure9Config {
	cfg := DefaultFigure9Config()
	cfg.MIPS.Proteins = 600
	cfg.MIPS.Edges = 820
	cfg.Mine.MinFreq = 10
	cfg.Mine.MaxOccPerClass = 120
	cfg.Null.Networks = 4
	cfg.Null.MaxSteps = 100_000
	cfg.Label.Sigma = 6
	cfg.Label.MaxOccurrences = 60
	// The informative-FC threshold must scale with the corpus: at 600
	// proteins the category terms collect ~18 direct annotations.
	cfg.Label.MinDirect = 10
	return cfg
}

// Figure9Result holds the PR curves of the five methods plus pipeline
// statistics.
type Figure9Result struct {
	Curves []eval.Curve
	// MacroAUC[method] is the macro-averaged per-function ROC AUC, an
	// extension metric alongside the paper's PR curves.
	MacroAUC map[string]float64
	// Pipeline statistics.
	MinedClasses, UniqueMotifs, LabeledMotifs int
	MotifCoverage                             int // proteins inside labeled motifs
	Proteins, Interactions, Annotated         int
}

// Mined bundles the output of the dataset→mine→uniqueness→label front half
// of the Figure-9 pipeline, shared by the offline experiment and the lamod
// artifact builder.
type Mined struct {
	MIPS    *dataset.MIPS
	Labeled []*label.LabeledMotif
	// MinedClasses and UniqueMotifs are pipeline statistics: isomorphism
	// classes found by the miner and classes surviving the uniqueness filter.
	MinedClasses, UniqueMotifs int
}

// MineLabeled builds the synthetic MIPS benchmark, mines its motifs, keeps
// the over-represented ones, and labels them with LaMoFinder against the
// functional-catalogue GO corpus — everything Figure 9 does before scoring,
// and everything `lamod build` packages into a serving artifact.
func MineLabeled(cfg Figure9Config) *Mined {
	return MineLabeledTraced(cfg, nil)
}

// MineLabeledTraced is MineLabeled with per-stage telemetry: census
// (motif mining), uniqueness (null-model scoring and filtering), labeling
// (LaMoFinder over the unique motifs) and clustering (the cumulative
// worker-busy agglomeration time inside labeling, so its wall column is
// summed across workers and can exceed the labeling stage's). A nil
// recorder disables all timing, including the clustering clock injected
// into the labeler.
func MineLabeledTraced(cfg Figure9Config, rec *obs.StageRecorder) *Mined {
	m := dataset.NewMIPS(cfg.MIPS)
	net := m.Task.Network

	st := rec.Start("census")
	mined := motif.Find(net, cfg.Mine)
	st.End(int64(len(mined)), 1) // the level-wise miner is serial

	st = rec.Start("uniqueness")
	motif.ScoreUniqueness(net, mined, cfg.Null)
	unique := motif.FilterUnique(mined, cfg.MinUniqueness)
	st.End(int64(len(unique)), par.Workers(cfg.Null.Parallelism))

	if rec != nil {
		// The labeling core sits in the determinism scope where wall-clock
		// reads are forbidden, so tracing injects the clock from here.
		cfg.Label.Now = time.Now
	}
	labeler := label.NewLabeler(m.Corpus, cfg.Label)
	st = rec.Start("labeling")
	labeled := labeler.LabelAll(unique)
	workers := par.Workers(cfg.Label.Parallelism)
	busy, occs := labeler.ClusterStats()
	st.EndWithBusy(int64(len(labeled)), workers, busy)
	if rec != nil {
		rec.Record(obs.StageStat{Name: "clustering", Wall: busy, Items: occs, Workers: workers})
	}
	return &Mined{
		MIPS:         m,
		Labeled:      labeled,
		MinedClasses: len(mined),
		UniqueMotifs: len(unique),
	}
}

// Figure9 regenerates the paper's prediction comparison on the synthetic
// MIPS benchmark: mine motifs, keep the over-represented ones, label them
// with LaMoFinder against the functional-catalogue GO corpus, and compare
// the labeled-motif predictor against NC, Chi2, PRODISTIN and MRF under
// leave-one-out.
func Figure9(cfg Figure9Config) *Figure9Result {
	mined := MineLabeled(cfg)
	m := mined.MIPS
	net := m.Task.Network
	lmp := label.NewScorer(m.Task, mined.Labeled)
	scorers := []predict.Scorer{
		lmp,
		predict.NewMRF(m.Task),
		predict.NewChiSquare(m.Task),
		predict.NewNC(m.Task),
	}
	if cfg.IncludeProdistin {
		scorers = append(scorers, predict.NewProdistin(m.Task))
	}
	if cfg.IncludeGibbs {
		scorers = append(scorers, predict.NewGibbsMRF(m.Task, predict.DefaultGibbsConfig()))
	}
	// Evaluate the methods concurrently, one goroutine per scorer: the task
	// is read-only during scoring, and confining each scorer to a single
	// worker keeps any internal scorer caches single-threaded. Results land
	// in indexed slots, so curve order matches the scorer list.
	type scorerEval struct {
		curve eval.Curve
		macro float64
		name  string
	}
	evals := make([]scorerEval, len(scorers))
	par.Do(len(scorers), par.Workers(cfg.Label.Parallelism), func(i int) {
		s := scorers[i]
		_, ma := eval.AUC(m.Task, s)
		evals[i] = scorerEval{curve: eval.LeaveOneOut(m.Task, s, cfg.MaxK), macro: ma, name: s.Name()}
	})
	macro := map[string]float64{}
	curves := make([]eval.Curve, len(evals))
	for i, ev := range evals {
		curves[i] = ev.curve
		macro[ev.name] = ev.macro
	}
	res := &Figure9Result{
		Curves:        curves,
		MacroAUC:      macro,
		MinedClasses:  mined.MinedClasses,
		UniqueMotifs:  mined.UniqueMotifs,
		LabeledMotifs: len(mined.Labeled),
		MotifCoverage: lmp.Coverage(),
		Proteins:      net.N(),
		Interactions:  net.M(),
		Annotated:     m.Task.NumAnnotated(),
	}
	return res
}

// Curve returns the named method's curve, or nil.
func (r *Figure9Result) Curve(name string) *eval.Curve {
	for i := range r.Curves {
		if r.Curves[i].Method == name {
			return &r.Curves[i]
		}
	}
	return nil
}

// WriteText renders the PR table and the method ordering, the textual
// analogue of Figure 9.
func (r *Figure9Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Figure 9 pipeline: %d proteins, %d interactions, %d annotated\n",
		r.Proteins, r.Interactions, r.Annotated)
	fmt.Fprintf(bw, "  mined=%d unique=%d labeled=%d motif-covered proteins=%d\n",
		r.MinedClasses, r.UniqueMotifs, r.LabeledMotifs, r.MotifCoverage)
	fmt.Fprint(bw, eval.FormatCurves(r.Curves))
	fmt.Fprintf(bw, "average precision:")
	for _, c := range r.Curves {
		fmt.Fprintf(bw, "  %s=%.3f", c.Method, c.AveragePrecision())
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "best F1:")
	for _, c := range r.Curves {
		fmt.Fprintf(bw, "  %s=%.3f", c.Method, c.BestF1())
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "macro AUC:")
	for _, c := range r.Curves {
		fmt.Fprintf(bw, "  %s=%.3f", c.Method, r.MacroAUC[c.Method])
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

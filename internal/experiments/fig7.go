package experiments

import (
	"bufio"
	"fmt"
	"io"

	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/par"
)

// Figure7Result collects example labeled motifs of the three kinds the
// paper's biologist validated: uni-labeled (all vertices share a function,
// like splicing complex g1), non-uni-labeled (distinct but related
// functions, like g2), and parallel-labeled (function plus cellular
// location, like g3).
type Figure7Result struct {
	UniLabeled      string
	NonUniLabeled   string
	ParallelLabeled string
	// Counts of each kind among all labeled motifs found.
	UniCount, NonUniCount, ParallelCount int
}

// Figure7Config sizes the example-motif search.
type Figure7Config struct {
	Yeast dataset.YeastConfig
	Mine  motif.Config
	Label label.Config
}

// DefaultFigure7Config runs on a mid-sized synthetic interactome; Figure 7
// needs examples, not census scale.
func DefaultFigure7Config() Figure7Config {
	mine := motif.DefaultConfig()
	mine.MaxSize = 8
	mine.MinFreq = 20
	mine.BeamWidth = 40
	mine.MaxOccPerClass = 120
	lab := label.DefaultConfig()
	lab.Sigma = 8
	lab.MaxOccurrences = 60
	ycfg := dataset.DefaultYeastConfig()
	ycfg.Proteins = 1200
	ycfg.Edges = 2100
	ycfg.TermsPerBranch = 150
	ycfg.Templates = []dataset.TemplateSpec{
		{Size: 5, Edges: 2, Instances: 35, PoolSize: 15},
		{Size: 6, Edges: 2, Instances: 35, PoolSize: 18},
		{Size: 7, Edges: 2, Instances: 35, PoolSize: 21},
	}
	return Figure7Config{Yeast: ycfg, Mine: mine, Label: lab}
}

// Figure7 mines and labels the synthetic interactome with both the process
// branch (functional labels) and the component branch (location labels),
// then classifies the labeled motifs into the paper's three exhibit kinds.
func Figure7(cfg Figure7Config) *Figure7Result {
	y := dataset.NewYeast(cfg.Yeast)
	mined := motif.Find(y.Network, cfg.Mine)
	// Figure 7 is about label structure, not over-representation; mark all
	// mined classes fully unique so labeling proceeds.
	for _, m := range mined {
		m.Uniqueness = 1
	}

	procLabeler := label.NewLabeler(y.Corpora[dataset.Process], cfg.Label)
	locLabeler := label.NewLabeler(y.Corpora[dataset.Component], cfg.Label)
	procO := y.Corpora[dataset.Process].Ontology()
	locO := y.Corpora[dataset.Component].Ontology()

	// Label each mined motif concurrently into its own slot; the exhibit
	// pass below walks slots in mined order, so "first found" picks the
	// same exhibits as the old serial loop.
	type fig7Slot struct {
		funcMotifs, locMotifs []*label.LabeledMotif
	}
	slots := make([]fig7Slot, len(mined))
	par.Do(len(mined), par.Workers(cfg.Label.Parallelism), func(i int) {
		fm := procLabeler.LabelMotif(mined[i])
		slots[i].funcMotifs = fm
		// Parallel labels: the same motif labeled on both branches.
		if len(fm) > 0 {
			slots[i].locMotifs = locLabeler.LabelMotif(mined[i])
		}
	})

	res := &Figure7Result{}
	for i := range slots {
		funcMotifs := slots[i].funcMotifs
		for _, lm := range funcMotifs {
			switch labelKind(lm) {
			case "uni":
				res.UniCount++
				if res.UniLabeled == "" {
					res.UniLabeled = lm.Describe(procO)
				}
			case "multi":
				res.NonUniCount++
				if res.NonUniLabeled == "" {
					res.NonUniLabeled = lm.Describe(procO)
				}
			}
		}
		locMotifs := slots[i].locMotifs
		if len(funcMotifs) > 0 && len(locMotifs) > 0 {
			res.ParallelCount++
			if res.ParallelLabeled == "" {
				res.ParallelLabeled = fmt.Sprintf("function: %s\n  location: %s",
					funcMotifs[0].Describe(procO), locMotifs[0].Describe(locO))
			}
		}
	}
	return res
}

// labelKind classifies a labeled motif: "uni" when all labeled vertices
// share at least one common term, "multi" when at least two labeled
// vertices have disjoint label sets, "other" otherwise.
func labelKind(lm *label.LabeledMotif) string {
	var first []int32
	uni := true
	multi := false
	for _, ts := range lm.Labels {
		if len(ts) == 0 {
			continue
		}
		if first == nil {
			first = ts
			continue
		}
		if intersects(first, ts) {
			continue
		}
		uni = false
		multi = true
	}
	if first == nil {
		return "other"
	}
	if uni {
		return "uni"
	}
	if multi {
		return "multi"
	}
	return "other"
}

func intersects(a, b []int32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// WriteText renders the exhibits.
func (r *Figure7Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Figure 7: example labeled network motifs\n")
	fmt.Fprintf(bw, "g1-like (uni-labeled, %d found):\n  %s\n", r.UniCount, orNone(r.UniLabeled))
	fmt.Fprintf(bw, "g2-like (non-uni-labeled, %d found):\n  %s\n", r.NonUniCount, orNone(r.NonUniLabeled))
	fmt.Fprintf(bw, "g3-like (function+location parallel labels, %d found):\n  %s\n",
		r.ParallelCount, orNone(r.ParallelLabeled))
	return bw.Flush()
}

func orNone(s string) string {
	if s == "" {
		return "(none found)"
	}
	return s
}

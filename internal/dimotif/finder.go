package dimotif

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

// Motif is a directed pattern with supporting occurrences (pattern vertex
// order).
type Motif struct {
	Pattern     *DiDense
	Occurrences [][]int32
	Frequency   int
	Uniqueness  float64
}

// Size returns the pattern's vertex count.
func (m *Motif) Size() int { return m.Pattern.N() }

// String summarizes the motif.
func (m *Motif) String() string {
	return fmt.Sprintf("dimotif%s freq=%d uniq=%.2f", m.Pattern, m.Frequency, m.Uniqueness)
}

// Find mines frequent weakly connected directed patterns level-by-level,
// mirroring the undirected beam miner: occurrences are extended by one weak
// neighbor, regrouped by directed isomorphism class, pruned by frequency,
// and capped by beam width with reservoir-sampled occurrence lists.
func Find(g *DiGraph, cfg motif.Config) []*Motif {
	if cfg.MinSize < 2 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.MinSize {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type classState struct {
		pattern *DiDense
		occs    [][]int32
		freq    int
	}
	// Level 2: the two weak-edge classes (single arc u->v; mutual arcs).
	lvl2 := map[int]*classState{}
	cl2 := NewClassifier()
	seen2 := map[[2]int32]bool{}
	for u := 0; u < g.N(); u++ {
		g.weakNeighbors(u, func(w int32) {
			a, b := int32(u), w
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if seen2[key] {
				return
			}
			seen2[key] = true
			d := g.InducedDi([]int32{a, b})
			id := cl2.Classify(d)
			cs := lvl2[id]
			if cs == nil {
				cs = &classState{pattern: cl2.Rep(id)}
				lvl2[id] = cs
			}
			cs.freq++
			mp := vf2DirMap(cs.pattern, d)
			pair := []int32{a, b}
			occ := []int32{pair[mp[0]], pair[mp[1]]}
			if cfg.MaxOccPerClass == 0 || len(cs.occs) < cfg.MaxOccPerClass {
				cs.occs = append(cs.occs, occ)
			} else if r := rng.Intn(cs.freq); r < cfg.MaxOccPerClass {
				cs.occs[r] = occ
			}
		})
	}
	level := make([]*classState, 0, len(lvl2))
	for _, cs := range lvl2 {
		level = append(level, cs)
	}
	sort.Slice(level, func(i, j int) bool { return level[i].freq > level[j].freq })

	var out []*Motif
	emit := func(cs *classState, size int) {
		if size >= cfg.MinSize && cs.freq >= cfg.MinFreq {
			out = append(out, &Motif{
				Pattern:     cs.pattern,
				Occurrences: cs.occs,
				Frequency:   cs.freq,
				Uniqueness:  -1,
			})
		}
	}
	if cfg.MinSize <= 2 {
		for _, cs := range level {
			emit(cs, 2)
		}
	}

	for size := 3; size <= cfg.MaxSize && len(level) > 0; size++ {
		cl := NewClassifier()
		next := map[int]*classState{}
		seenSets := map[string]bool{}
		sortedOcc := make([]int32, 0, size)
		keyBuf := make([]byte, 4*size)
		vsBuf := make([]int32, size)
		for _, cs := range level {
			for _, occ := range cs.occs {
				sortedOcc = append(sortedOcc[:0], occ...)
				sort.Slice(sortedOcc, func(i, j int) bool { return sortedOcc[i] < sortedOcc[j] })
				for _, v := range occ {
					g.weakNeighbors(int(v), func(w int32) {
						if contains32(occ, w) {
							return
						}
						vs := vsBuf
						pos := 0
						for pos < len(sortedOcc) && sortedOcc[pos] < w {
							vs[pos] = sortedOcc[pos]
							pos++
						}
						vs[pos] = w
						copy(vs[pos+1:], sortedOcc[pos:])
						for i, x := range vs {
							keyBuf[4*i] = byte(x)
							keyBuf[4*i+1] = byte(x >> 8)
							keyBuf[4*i+2] = byte(x >> 16)
							keyBuf[4*i+3] = byte(x >> 24)
						}
						if seenSets[string(keyBuf)] {
							return
						}
						seenSets[string(keyBuf)] = true
						d := g.InducedDi(vs)
						id := cl.Classify(d)
						ns := next[id]
						if ns == nil {
							ns = &classState{pattern: cl.Rep(id)}
							next[id] = ns
						}
						ns.freq++
						slot := -1
						if cfg.MaxOccPerClass == 0 || len(ns.occs) < cfg.MaxOccPerClass {
							slot = len(ns.occs)
							ns.occs = append(ns.occs, nil)
						} else if r := rng.Intn(ns.freq); r < cfg.MaxOccPerClass {
							slot = r
						}
						if slot >= 0 {
							mp := vf2DirMap(ns.pattern, d)
							no := make([]int32, len(vs))
							for i := range vs {
								no[i] = vs[mp[i]]
							}
							ns.occs[slot] = no
						}
					})
				}
			}
		}
		var kept []*classState
		for _, ns := range next {
			if ns.freq >= cfg.MinFreq {
				kept = append(kept, ns)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].freq != kept[j].freq {
				return kept[i].freq > kept[j].freq
			}
			return kept[i].pattern.String() < kept[j].pattern.String()
		})
		if cfg.BeamWidth > 0 && len(kept) > cfg.BeamWidth {
			kept = kept[:cfg.BeamWidth]
		}
		for _, ns := range kept {
			emit(ns, size)
		}
		level = kept
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Frequency > out[j].Frequency
	})
	return out
}

func contains32(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// ScoreUniqueness fills each motif's Uniqueness against in/out-degree-
// preserving randomizations, with the same certification semantics as the
// undirected version (count cap; zero-match budget exhaustion is a win).
func ScoreUniqueness(g *DiGraph, motifs []*Motif, cfg motif.UniquenessConfig) {
	if cfg.Networks <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wins := make([]int, len(motifs))
	for r := 0; r < cfg.Networks; r++ {
		rnet := g.Randomize(0, rng)
		for i, m := range motifs {
			limit := m.Frequency + 1
			if cfg.CountCap > 0 && limit > cfg.CountCap {
				limit = cfg.CountCap
			}
			cnt, exact := countDirUpTo(rnet, m.Pattern, limit, cfg.MaxSteps)
			if !exact {
				if cnt == 0 {
					wins[i]++
				}
				continue
			}
			if cnt >= limit && limit <= m.Frequency {
				continue
			}
			if cnt <= m.Frequency {
				wins[i]++
			}
		}
	}
	for i, m := range motifs {
		m.Uniqueness = float64(wins[i]) / float64(cfg.Networks)
	}
}

// FilterUnique keeps motifs with uniqueness >= minUniq.
func FilterUnique(ms []*Motif, minUniq float64) []*Motif {
	var out []*Motif
	for _, m := range ms {
		if m.Uniqueness >= minUniq {
			out = append(out, m)
		}
	}
	return out
}

// LabeledMotif is a directed motif whose vertices carry GO label sets.
type LabeledMotif struct {
	Pattern     *DiDense
	Labels      [][]int32
	Occurrences [][]int32
	Frequency   int
	Uniqueness  float64
}

// Size returns the vertex count.
func (lm *LabeledMotif) Size() int { return lm.Pattern.N() }

// Describe renders the labeled motif against an ontology.
func (lm *LabeledMotif) Describe(o *ontology.Ontology) string {
	parts := []string{fmt.Sprintf("%s freq=%d uniq=%.2f", lm.Pattern, lm.Frequency, lm.Uniqueness)}
	for v, ts := range lm.Labels {
		if len(ts) == 0 {
			parts = append(parts, fmt.Sprintf("v%d={unknown}", v))
			continue
		}
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = o.ID(int(t))
		}
		parts = append(parts, fmt.Sprintf("v%d={%s}", v, strings.Join(ids, ",")))
	}
	return strings.Join(parts, " ")
}

// Label runs LaMoFinder on a directed motif: the directed symmetry group
// drives the occurrence pairing, everything else (similarity, clustering,
// least-general schemes, stopping rule) is the shared machinery.
func Label(l *label.Labeler, m *Motif) []*LabeledMotif {
	orbits := Orbits(m.Pattern)
	product := 1
	for _, orb := range orbits {
		for k := 2; k <= len(orb); k++ {
			product *= k
			if product > 5040 {
				break
			}
		}
	}
	cap := product
	if cap > 5040 {
		cap = 5040
	}
	auts := Automorphisms(m.Pattern, cap+1)
	sym := label.NewSymmetryFromGroup(orbits, auts, len(auts) == product && product <= 5040)
	schemes := l.LabelOccurrences(m.Size(), m.Occurrences, sym)
	out := make([]*LabeledMotif, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, &LabeledMotif{
			Pattern:     m.Pattern,
			Labels:      s.Labels,
			Occurrences: s.Occurrences,
			Frequency:   len(s.Occurrences),
			Uniqueness:  m.Uniqueness,
		})
	}
	return out
}

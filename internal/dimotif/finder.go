package dimotif

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

// Motif is a directed pattern with supporting occurrences (pattern vertex
// order).
type Motif struct {
	Pattern     *DiDense
	Occurrences [][]int32
	Frequency   int
	Uniqueness  float64
}

// Size returns the pattern's vertex count.
func (m *Motif) Size() int { return m.Pattern.N() }

// String summarizes the motif.
func (m *Motif) String() string {
	return fmt.Sprintf("dimotif%s freq=%d uniq=%.2f", m.Pattern, m.Frequency, m.Uniqueness)
}

// diClassState is a directed pattern class being grown at the current
// level.
type diClassState struct {
	pattern *DiDense
	str     string // pattern.String(), cached for the selection sort
	occs    [][]int32
	freq    int
}

// patStr returns the cached pattern arc-list string (the selection sort's
// final tiebreak); distinct classes render distinct strings.
func (cs *diClassState) patStr() string {
	if cs.str == "" {
		cs.str = cs.pattern.String()
	}
	return cs.str
}

// Find mines frequent weakly connected directed patterns level-by-level,
// mirroring the undirected beam miner: occurrences are extended by one weak
// neighbor, regrouped by directed isomorphism class, pruned by frequency,
// and capped by beam width with reservoir-sampled occurrence lists.
//
// Like the undirected miner, the per-candidate loop reuses everything:
// candidate sets dedup through an epoch-stamped hash set, induced directed
// subgraphs fill a scratch DiDense, class state is a slice indexed by the
// classifier's dense first-seen ids, and stored occurrences carve from a
// slab arena with in-place reservoir replacement (DESIGN.md §13).
func Find(g *DiGraph, cfg motif.Config) []*Motif {
	if cfg.MinSize < 2 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.MinSize {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var arena graph.OccArena
	var seenSets graph.VSetDedup
	var d DiDense

	// Level 2: the two weak-edge classes (single arc u->v; mutual arcs).
	var level []*diClassState // indexed by class id (dense, first-seen order)
	cl2 := NewClassifier()
	seenSets.Reset(2)
	var pair [2]int32
	for u := 0; u < g.N(); u++ {
		g.weakNeighbors(u, func(w int32) {
			a, b := int32(u), w
			if a > b {
				a, b = b, a
			}
			pair[0], pair[1] = a, b
			if !seenSets.Insert(pair[:]) {
				return
			}
			g.FillInducedDi(&d, pair[:])
			id := cl2.Classify(&d)
			if id == len(level) {
				level = append(level, &diClassState{pattern: cl2.Rep(id)})
			}
			cs := level[id]
			cs.freq++
			var occ []int32
			if cfg.MaxOccPerClass == 0 || len(cs.occs) < cfg.MaxOccPerClass {
				occ = arena.Take(pair[:])
				cs.occs = append(cs.occs, occ)
			} else if r := rng.Intn(cs.freq); r < cfg.MaxOccPerClass {
				occ = cs.occs[r]
			}
			if occ != nil {
				mp := cl2.OccMapping(id, &d)
				occ[0], occ[1] = pair[mp[0]], pair[mp[1]]
			}
		})
	}
	sort.SliceStable(level, func(i, j int) bool { return level[i].freq > level[j].freq })

	var out []*Motif
	emit := func(cs *diClassState, size int) {
		if size >= cfg.MinSize && cs.freq >= cfg.MinFreq {
			out = append(out, &Motif{
				Pattern:     cs.pattern,
				Occurrences: cs.occs,
				Frequency:   cs.freq,
				Uniqueness:  -1,
			})
		}
	}
	if cfg.MinSize <= 2 {
		for _, cs := range level {
			emit(cs, 2)
		}
	}

	for size := 3; size <= cfg.MaxSize && len(level) > 0; size++ {
		cl := NewClassifier()
		var next []*diClassState // indexed by class id
		seenSets.Reset(size)
		sortedOcc := make([]int32, 0, size)
		vsBuf := make([]int32, size)
		for _, cs := range level {
			for _, occ := range cs.occs {
				sortedOcc = append(sortedOcc[:0], occ...)
				insertSort32(sortedOcc)
				for _, v := range occ {
					g.weakNeighbors(int(v), func(w int32) {
						if contains32(occ, w) {
							return
						}
						vs := vsBuf
						pos := 0
						for pos < len(sortedOcc) && sortedOcc[pos] < w {
							vs[pos] = sortedOcc[pos]
							pos++
						}
						vs[pos] = w
						copy(vs[pos+1:], sortedOcc[pos:])
						if !seenSets.Insert(vs) {
							return
						}
						g.FillInducedDi(&d, vs)
						id := cl.Classify(&d)
						if id == len(next) {
							next = append(next, &diClassState{pattern: cl.Rep(id)})
						}
						ns := next[id]
						ns.freq++
						var no []int32
						if cfg.MaxOccPerClass == 0 || len(ns.occs) < cfg.MaxOccPerClass {
							no = arena.Take(vs)
							ns.occs = append(ns.occs, no)
						} else if r := rng.Intn(ns.freq); r < cfg.MaxOccPerClass {
							no = ns.occs[r]
						}
						if no != nil {
							mp := cl.OccMapping(id, &d)
							for i := range vs {
								no[i] = vs[mp[i]]
							}
						}
					})
				}
			}
		}
		var kept []*diClassState
		for _, ns := range next {
			if ns.freq >= cfg.MinFreq {
				kept = append(kept, ns)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].freq != kept[j].freq {
				return kept[i].freq > kept[j].freq
			}
			return kept[i].patStr() < kept[j].patStr()
		})
		if cfg.BeamWidth > 0 && len(kept) > cfg.BeamWidth {
			kept = kept[:cfg.BeamWidth]
		}
		for _, ns := range kept {
			emit(ns, size)
		}
		level = kept
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Frequency > out[j].Frequency
	})
	return out
}

// insertSort32 sorts a short int32 slice ascending in place.
//
// alloc-budget: 0
func insertSort32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func contains32(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// ScoreUniqueness fills each motif's Uniqueness against in/out-degree-
// preserving randomizations, with the same certification semantics as the
// undirected version (count cap; zero-match budget exhaustion is a win).
func ScoreUniqueness(g *DiGraph, motifs []*Motif, cfg motif.UniquenessConfig) {
	if cfg.Networks <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wins := make([]int, len(motifs))
	for r := 0; r < cfg.Networks; r++ {
		rnet := g.Randomize(0, rng)
		for i, m := range motifs {
			limit := m.Frequency + 1
			if cfg.CountCap > 0 && limit > cfg.CountCap {
				limit = cfg.CountCap
			}
			cnt, exact := countDirUpTo(rnet, m.Pattern, limit, cfg.MaxSteps)
			if !exact {
				if cnt == 0 {
					wins[i]++
				}
				continue
			}
			if cnt >= limit && limit <= m.Frequency {
				continue
			}
			if cnt <= m.Frequency {
				wins[i]++
			}
		}
	}
	for i, m := range motifs {
		m.Uniqueness = float64(wins[i]) / float64(cfg.Networks)
	}
}

// FilterUnique keeps motifs with uniqueness >= minUniq.
func FilterUnique(ms []*Motif, minUniq float64) []*Motif {
	var out []*Motif
	for _, m := range ms {
		if m.Uniqueness >= minUniq {
			out = append(out, m)
		}
	}
	return out
}

// LabeledMotif is a directed motif whose vertices carry GO label sets.
type LabeledMotif struct {
	Pattern     *DiDense
	Labels      [][]int32
	Occurrences [][]int32
	Frequency   int
	Uniqueness  float64
}

// Size returns the vertex count.
func (lm *LabeledMotif) Size() int { return lm.Pattern.N() }

// Describe renders the labeled motif against an ontology.
func (lm *LabeledMotif) Describe(o *ontology.Ontology) string {
	parts := []string{fmt.Sprintf("%s freq=%d uniq=%.2f", lm.Pattern, lm.Frequency, lm.Uniqueness)}
	for v, ts := range lm.Labels {
		if len(ts) == 0 {
			parts = append(parts, fmt.Sprintf("v%d={unknown}", v))
			continue
		}
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = o.ID(int(t))
		}
		parts = append(parts, fmt.Sprintf("v%d={%s}", v, strings.Join(ids, ",")))
	}
	return strings.Join(parts, " ")
}

// Label runs LaMoFinder on a directed motif: the directed symmetry group
// drives the occurrence pairing, everything else (similarity, clustering,
// least-general schemes, stopping rule) is the shared machinery.
func Label(l *label.Labeler, m *Motif) []*LabeledMotif {
	orbits := Orbits(m.Pattern)
	product := 1
	for _, orb := range orbits {
		for k := 2; k <= len(orb); k++ {
			product *= k
			if product > 5040 {
				break
			}
		}
	}
	cap := product
	if cap > 5040 {
		cap = 5040
	}
	auts := Automorphisms(m.Pattern, cap+1)
	sym := label.NewSymmetryFromGroup(orbits, auts, len(auts) == product && product <= 5040)
	schemes := l.LabelOccurrences(m.Size(), m.Occurrences, sym)
	out := make([]*LabeledMotif, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, &LabeledMotif{
			Pattern:     m.Pattern,
			Labels:      s.Labels,
			Occurrences: s.Occurrences,
			Frequency:   len(s.Occurrences),
			Uniqueness:  m.Uniqueness,
		})
	}
	return out
}

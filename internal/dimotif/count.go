package dimotif

// countDirUpTo counts vertex sets of g whose induced directed subgraph is
// isomorphic to pattern, stopping at limit (<= 0: exhaustive) or when the
// step budget runs out (exact = false). Counting is by distinct vertex
// sets: matched mappings divided by |Aut(pattern)|.
func countDirUpTo(g *DiGraph, pattern *DiDense, limit int, maxSteps int64) (count int, exact bool) {
	aut := len(Automorphisms(pattern, 0))
	mapLimit := int64(0)
	if limit > 0 {
		mapLimit = int64(limit) * int64(aut)
	}
	mappings, exact := countDirMappings(g, pattern, mapLimit, maxSteps)
	return int(mappings / int64(aut)), exact
}

func countDirMappings(g *DiGraph, pattern *DiDense, mapLimit, maxSteps int64) (int64, bool) {
	k := pattern.N()
	if k == 0 {
		return 0, true
	}
	order, prior := weakOrder(pattern)
	// Precompute per-position arc constraints against earlier positions.
	type constraint struct {
		pos     int
		outward bool // pattern arc order[pos_new] -> order[pos]
		inward  bool // pattern arc order[pos] -> order[pos_new]
	}
	cons := make([][]constraint, k)
	for pos := 0; pos < k; pos++ {
		u := order[pos]
		for p := 0; p < pos; p++ {
			w := order[p]
			cons[pos] = append(cons[pos], constraint{
				pos:     p,
				outward: pattern.HasArc(u, w),
				inward:  pattern.HasArc(w, u),
			})
		}
	}
	podeg := make([]int, k)
	pideg := make([]int, k)
	for v := 0; v < k; v++ {
		podeg[v] = pattern.OutDegree(v)
		pideg[v] = pattern.InDegree(v)
	}
	mapped := make([]int, k)
	used := make([]bool, g.N())
	var cnt, steps int64
	exhausted := false

	var rec func(pos int)
	rec = func(pos int) {
		if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
			return
		}
		if pos == k {
			cnt++
			return
		}
		u := order[pos]
		try := func(gv int) {
			if used[gv] || g.OutDegree(gv) < podeg[u] || g.InDegree(gv) < pideg[u] {
				return
			}
			steps++
			if maxSteps > 0 && steps > maxSteps {
				exhausted = true
				return
			}
			for _, c := range cons[pos] {
				if c.outward != g.HasArc(gv, mapped[c.pos]) {
					return
				}
				if c.inward != g.HasArc(mapped[c.pos], gv) {
					return
				}
			}
			mapped[pos] = gv
			used[gv] = true
			rec(pos + 1)
			used[gv] = false
		}
		if pos == 0 {
			for gv := 0; gv < g.N(); gv++ {
				if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
					return
				}
				try(gv)
			}
			return
		}
		anchor := mapped[prior[pos]]
		g.weakNeighbors(anchor, func(w int32) {
			if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
				return
			}
			try(int(w))
		})
	}
	rec(0)
	if mapLimit > 0 && cnt >= mapLimit {
		return cnt, true
	}
	return cnt, !exhausted
}

// weakOrder orders pattern vertices so each (after the first) is weakly
// adjacent to an earlier one; prior[pos] gives the position of one such
// earlier neighbor.
func weakOrder(pattern *DiDense) (order []int, prior []int) {
	k := pattern.N()
	under := pattern.Underlying()
	inOrder := make([]bool, k)
	order = make([]int, 0, k)
	prior = make([]int, k)
	start := 0
	for v := 1; v < k; v++ {
		if under.Degree(v) > under.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	inOrder[start] = true
	for len(order) < k {
		bestV, bestAnchor, bestDeg := -1, -1, -1
		for v := 0; v < k; v++ {
			if inOrder[v] {
				continue
			}
			for pos, w := range order {
				if under.HasEdge(v, w) {
					if under.Degree(v) > bestDeg {
						bestV, bestAnchor, bestDeg = v, pos, under.Degree(v)
					}
					break
				}
			}
		}
		if bestV < 0 { // weakly disconnected pattern
			for v := 0; v < k; v++ {
				if !inOrder[v] {
					bestV, bestAnchor = v, 0
					break
				}
			}
		}
		prior[len(order)] = bestAnchor
		order = append(order, bestV)
		inOrder[bestV] = true
	}
	return order, prior
}

package dimotif

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lamofinder/internal/label"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

// feedForwardLoop returns the canonical FFL: 0->1, 0->2, 1->2.
func feedForwardLoop() *DiDense {
	d := NewDiDense(3)
	d.AddArc(0, 1)
	d.AddArc(0, 2)
	d.AddArc(1, 2)
	return d
}

// threeCycle returns the directed 3-cycle 0->1->2->0.
func threeCycle() *DiDense {
	d := NewDiDense(3)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(2, 0)
	return d
}

func TestDiDenseBasics(t *testing.T) {
	d := feedForwardLoop()
	if d.M() != 3 {
		t.Errorf("M = %d", d.M())
	}
	if !d.HasArc(0, 1) || d.HasArc(1, 0) {
		t.Error("arc direction wrong")
	}
	if d.OutDegree(0) != 2 || d.InDegree(2) != 2 {
		t.Errorf("degrees: out(0)=%d in(2)=%d", d.OutDegree(0), d.InDegree(2))
	}
	if !d.WeaklyConnected() {
		t.Error("FFL should be weakly connected")
	}
	if got := d.String(); got != "3:[0>1 0>2 1>2]" {
		t.Errorf("String = %q", got)
	}
	u := d.Underlying()
	if u.M() != 3 {
		t.Errorf("underlying edges = %d", u.M())
	}
}

func TestDirectedIsomorphismDistinguishesOrientation(t *testing.T) {
	// FFL and 3-cycle share the same underlying triangle but are not
	// isomorphic as directed graphs.
	if Isomorphic(feedForwardLoop(), threeCycle()) {
		t.Fatal("FFL and C3 reported isomorphic")
	}
	// Relabelings of the FFL are isomorphic.
	p := feedForwardLoop().Permute([]int{2, 0, 1})
	if !Isomorphic(feedForwardLoop(), p) {
		t.Fatal("permuted FFL not isomorphic")
	}
}

func TestDirectedIsomorphismRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		d := NewDiDense(n)
		for v := 1; v < n; v++ {
			if rng.Intn(2) == 0 {
				d.AddArc(v, rng.Intn(v))
			} else {
				d.AddArc(rng.Intn(v), v)
			}
		}
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				d.AddArc(a, b)
			}
		}
		p := d.Permute(rng.Perm(n))
		return Isomorphic(d, p) && Invariant(d) == Invariant(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDirectedAutomorphisms(t *testing.T) {
	// C3 has the cyclic group of order 3 (no reflections: direction breaks
	// them).
	if got := len(Automorphisms(threeCycle(), 0)); got != 3 {
		t.Errorf("|Aut(directed C3)| = %d, want 3", got)
	}
	// FFL is rigid (regulator, intermediate, target all distinguishable).
	if got := len(Automorphisms(feedForwardLoop(), 0)); got != 1 {
		t.Errorf("|Aut(FFL)| = %d, want 1", got)
	}
	// Orbits: C3 one orbit, FFL three singletons.
	if got := Orbits(threeCycle()); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("C3 orbits = %v", got)
	}
	if got := Orbits(feedForwardLoop()); len(got) != 3 {
		t.Errorf("FFL orbits = %v", got)
	}
}

func TestClassifierDirected(t *testing.T) {
	cl := NewClassifier()
	a := cl.Classify(feedForwardLoop())
	b := cl.Classify(threeCycle())
	if a == b {
		t.Fatal("FFL and C3 classified together")
	}
	if cl.Classify(feedForwardLoop().Permute([]int{1, 2, 0})) != a {
		t.Error("relabeled FFL got a new class")
	}
	if cl.NumClasses() != 2 {
		t.Errorf("classes = %d", cl.NumClasses())
	}
}

func TestDiGraphBasics(t *testing.T) {
	g := NewDiGraph(4)
	if !g.AddArc(0, 1) || g.AddArc(0, 1) || g.AddArc(2, 2) {
		t.Error("AddArc semantics wrong")
	}
	g.AddArc(1, 0) // mutual
	g.AddArc(1, 2)
	if g.M() != 3 {
		t.Errorf("M = %d", g.M())
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) || g.HasArc(2, 1) {
		t.Error("HasArc wrong")
	}
	if g.OutDegree(1) != 2 || g.InDegree(0) != 1 {
		t.Errorf("degrees wrong")
	}
	var weak []int32
	g.weakNeighbors(1, func(w int32) { weak = append(weak, w) })
	if len(weak) != 2 { // 0 (mutual) and 2
		t.Errorf("weak neighbors of 1 = %v", weak)
	}
	if !g.RemoveArc(1, 2) || g.RemoveArc(1, 2) {
		t.Error("RemoveArc semantics wrong")
	}
}

func TestInducedDi(t *testing.T) {
	g := NewDiGraph(5)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	d := g.InducedDi([]int32{0, 1, 2})
	if !Isomorphic(d, threeCycle()) {
		t.Errorf("induced subgraph = %v", d)
	}
}

func TestRandomizePreservesDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewDiGraph(100)
	for i := 0; i < 300; i++ {
		g.AddArc(rng.Intn(100), rng.Intn(100))
	}
	r := g.Randomize(0, rng)
	if r.M() != g.M() {
		t.Fatalf("arc count changed: %d -> %d", g.M(), r.M())
	}
	for v := 0; v < 100; v++ {
		if g.OutDegree(v) != r.OutDegree(v) || g.InDegree(v) != r.InDegree(v) {
			t.Fatalf("degrees of %d changed", v)
		}
	}
}

// plantFFLNetwork builds a directed network with planted FFLs.
func plantFFLNetwork(n, ffls int, rng *rand.Rand) *DiGraph {
	g := NewDiGraph(n)
	// background chain
	for i := 0; i+1 < n; i++ {
		g.AddArc(i, i+1)
	}
	for c := 0; c < ffls; c++ {
		base := (3 * c) % (n - 3)
		g.AddArc(base, base+2) // chain already has base->base+1->base+2
	}
	return g
}

func TestFindDirectedFFL(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := plantFFLNetwork(300, 60, rng)
	ms := Find(g, motif.Config{MinSize: 3, MaxSize: 3, MinFreq: 20, Seed: 1})
	var ffl *Motif
	for _, m := range ms {
		if Isomorphic(m.Pattern, feedForwardLoop()) {
			ffl = m
		}
	}
	if ffl == nil {
		t.Fatal("FFL class not mined")
	}
	if ffl.Frequency < 50 {
		t.Errorf("FFL frequency = %d, want >= 50", ffl.Frequency)
	}
	// Occurrences embed with correct orientation.
	for _, occ := range ffl.Occurrences {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j && ffl.Pattern.HasArc(i, j) != g.HasArc(int(occ[i]), int(occ[j])) {
					t.Fatalf("occurrence %v arc mismatch", occ)
				}
			}
		}
	}
}

func TestDirectedUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := plantFFLNetwork(300, 60, rng)
	ms := Find(g, motif.Config{MinSize: 3, MaxSize: 3, MinFreq: 20, Seed: 1})
	ScoreUniqueness(g, ms, motif.UniquenessConfig{Networks: 6, CountCap: 20000, Seed: 2})
	var ffl *Motif
	for _, m := range ms {
		if Isomorphic(m.Pattern, feedForwardLoop()) {
			ffl = m
		}
	}
	if ffl == nil {
		t.Fatal("FFL missing")
	}
	if ffl.Uniqueness < 0.8 {
		t.Errorf("planted FFL uniqueness = %.2f", ffl.Uniqueness)
	}
	if got := FilterUnique(ms, 2.0); len(got) != 0 {
		t.Error("impossible filter returned motifs")
	}
}

func TestCountDirUpToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := plantFFLNetwork(120, 30, rng)
	cnt, exact := countDirUpTo(g, feedForwardLoop(), 0, 0)
	if !exact {
		t.Fatal("exhaustive count not exact")
	}
	if cnt < 30 {
		t.Errorf("FFL count = %d, want >= 30", cnt)
	}
	// The directed 3-cycle is absent from this DAG-ish construction.
	c3, exact := countDirUpTo(g, threeCycle(), 0, 0)
	if !exact || c3 != 0 {
		t.Errorf("C3 count = %d (exact=%v), want 0", c3, exact)
	}
}

func TestLabelDirectedMotif(t *testing.T) {
	// Plant FFLs whose positions carry coherent GO terms; labeling must
	// produce at least one scheme whose regulator/intermediate/target
	// labels differ by position.
	rng := rand.New(rand.NewSource(7))
	g := plantFFLNetwork(300, 60, rng)
	ms := Find(g, motif.Config{MinSize: 3, MaxSize: 3, MinFreq: 20, Seed: 1})
	var ffl *Motif
	for _, m := range ms {
		if Isomorphic(m.Pattern, feedForwardLoop()) {
			ffl = m
		}
	}
	if ffl == nil {
		t.Fatal("FFL missing")
	}
	ffl.Uniqueness = 1

	// GO: root -> three roles (regulator / intermediate / target), each
	// with two leaves.
	b := ontology.NewBuilder()
	b.AddTerm("R:root", "")
	roles := []string{"R:reg", "R:mid", "R:tgt"}
	leaves := map[string][]string{}
	for _, r := range roles {
		b.AddRelation(r, "R:root", ontology.IsA)
		for l := 0; l < 2; l++ {
			id := r + string(rune('a'+l))
			b.AddRelation(id, r, ontology.IsA)
			leaves[r] = append(leaves[r], id)
		}
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	corpus := ontology.NewCorpus(o, 300)
	// Identify each occurrence's role positions from the pattern: position
	// with out-degree 2 = regulator, in-degree 2 = target, other = middle.
	roleOf := make([]string, 3)
	for v := 0; v < 3; v++ {
		switch {
		case ffl.Pattern.OutDegree(v) == 2:
			roleOf[v] = "R:reg"
		case ffl.Pattern.InDegree(v) == 2:
			roleOf[v] = "R:tgt"
		default:
			roleOf[v] = "R:mid"
		}
	}
	for _, occ := range ffl.Occurrences {
		for v, p := range occ {
			ls := leaves[roleOf[v]]
			corpus.Annotate(int(p), o.Index(ls[rng.Intn(len(ls))]))
		}
	}
	// MinDirect above any leaf's count: no border freezing, clusters merge
	// until one scheme per motif remains.
	labeler := label.NewLabeler(corpus, label.Config{Sigma: 10, MinDirect: 100})
	labeled := Label(labeler, ffl)
	if len(labeled) == 0 {
		t.Fatal("no labeled directed motifs")
	}
	lm := labeled[0]
	if lm.Size() != 3 || lm.Frequency < 10 {
		t.Fatalf("labeled motif wrong: %s", lm.Describe(o))
	}
	// Each position's labels must sit under its role subtree.
	for v, ts := range lm.Labels {
		role := o.Index(roleOf[v])
		for _, term := range ts {
			if !o.IsAncestorOrSelf(role, int(term)) && int(term) != role {
				t.Errorf("vertex %d labeled %s outside role %s (%s)",
					v, o.ID(int(term)), roleOf[v], lm.Describe(o))
			}
		}
	}
}

func TestDiDenseMoreAccessors(t *testing.T) {
	d := NewDiDense(4)
	d.AddArc(0, 1)
	d.AddArc(2, 3)
	if d.WeaklyConnected() {
		t.Error("disjoint arcs weakly connected")
	}
	c := d.Clone()
	c.AddArc(1, 2)
	if d.HasArc(1, 2) {
		t.Error("clone shares storage")
	}
	if d.InDegree(1) != 1 || d.InDegree(0) != 0 {
		t.Errorf("in-degrees wrong")
	}
	d.AddArc(1, 1) // self loop ignored
	if d.M() != 2 {
		t.Errorf("M = %d", d.M())
	}
}

func TestDiDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized DiDense did not panic")
		}
	}()
	NewDiDense(99)
}

func TestDiGraphArcsAndClone(t *testing.T) {
	g := NewDiGraph(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	arcs := g.Arcs(nil)
	if len(arcs) != 2 {
		t.Fatalf("arcs = %v", arcs)
	}
	c := g.Clone()
	c.AddArc(2, 0)
	if g.HasArc(2, 0) {
		t.Error("clone shares storage")
	}
	if g.RemoveArc(9, 0) {
		t.Error("out-of-range remove succeeded")
	}
}

func TestLabeledDiMotifDescribe(t *testing.T) {
	b := ontology.NewBuilder()
	b.AddRelation("B", "A", ontology.IsA)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lm := &LabeledMotif{
		Pattern: feedForwardLoop(),
		Labels:  [][]int32{{int32(o.Index("B"))}, nil, nil},
	}
	s := lm.Describe(o)
	if s == "" || lm.Size() != 3 {
		t.Errorf("Describe = %q", s)
	}
}

func TestDirectedFindDegenerate(t *testing.T) {
	g := NewDiGraph(5)
	if ms := Find(g, motif.Config{MinSize: 4, MaxSize: 3, MinFreq: 1}); ms != nil {
		t.Error("inverted range")
	}
	if ms := Find(g, motif.Config{MinSize: 2, MaxSize: 3, MinFreq: 1}); len(ms) != 0 {
		t.Error("arc-less graph produced motifs")
	}
	ScoreUniqueness(g, nil, motif.UniquenessConfig{Networks: 0})
}

// Package dimotif extends the reproduction with labeled *directed* network
// motifs — the paper's stated further work ("we plan to look into mining
// labeled and directed network motifs"). It provides a directed graph
// substrate, directed isomorphism classes and symmetry groups, a directed
// beam miner with an in/out-degree-preserving null model, and a bridge that
// labels directed motifs with the existing LaMoFinder machinery.
package dimotif

import (
	"fmt"
	"math/bits"
	"strings"

	"lamofinder/internal/graph"
)

// DiDense is a small directed simple graph stored as out-adjacency bit
// rows (n <= graph.MaxDense). Used for directed motif patterns.
type DiDense struct {
	n   int
	out [graph.MaxDense]uint32
}

// NewDiDense returns an empty directed dense graph with n vertices.
//
// invariant: 0 <= n <= graph.MaxDense — the bit-row representation cannot
// hold more vertices; an out-of-range size is a programmer error.
func NewDiDense(n int) *DiDense {
	if n < 0 || n > graph.MaxDense {
		panic(fmt.Sprintf("dimotif: size %d out of range", n))
	}
	return &DiDense{n: n}
}

// N returns the vertex count.
func (d *DiDense) N() int { return d.n }

// Reset clears d back to n isolated vertices in place, letting the miner
// reuse one DiDense as scratch instead of allocating per candidate set.
//
// invariant: 0 <= n <= graph.MaxDense — same bound as NewDiDense.
func (d *DiDense) Reset(n int) {
	if n < 0 || n > graph.MaxDense {
		panic(fmt.Sprintf("dimotif: size %d out of range", n))
	}
	for i := 0; i < d.n; i++ {
		d.out[i] = 0
	}
	d.n = n
}

// AppendBits appends the raw arc-bits key of d to buf and returns the
// extended slice: the directed analogue of Dense.AppendBits, probed through
// a reused scratch buffer by the classifier's raw-shape cache.
//
// alloc-budget: 0
func (d *DiDense) AppendBits(buf []byte) []byte {
	buf = append(buf, byte(d.n))
	for i := 0; i < d.n; i++ {
		r := d.out[i]
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return buf
}

// M returns the arc count.
func (d *DiDense) M() int {
	m := 0
	for i := 0; i < d.n; i++ {
		m += bits.OnesCount32(d.out[i])
	}
	return m
}

// AddArc adds the arc u -> v; self-loops are ignored.
func (d *DiDense) AddArc(u, v int) {
	if u == v {
		return
	}
	d.out[u] |= 1 << uint(v)
}

// HasArc reports whether the arc u -> v exists.
func (d *DiDense) HasArc(u, v int) bool { return d.out[u]&(1<<uint(v)) != 0 }

// OutDegree returns the out-degree of v.
func (d *DiDense) OutDegree(v int) int { return bits.OnesCount32(d.out[v]) }

// InDegree returns the in-degree of v.
func (d *DiDense) InDegree(v int) int {
	c := 0
	for u := 0; u < d.n; u++ {
		if u != v && d.HasArc(u, v) {
			c++
		}
	}
	return c
}

// Underlying returns the undirected skeleton (u~v iff u->v or v->u).
func (d *DiDense) Underlying() *graph.Dense {
	u := graph.NewDense(d.n)
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if d.HasArc(i, j) || d.HasArc(j, i) {
				u.AddEdge(i, j)
			}
		}
	}
	return u
}

// WeaklyConnected reports whether the underlying skeleton is connected.
func (d *DiDense) WeaklyConnected() bool { return d.Underlying().Connected() }

// Permute returns the graph relabeled so new vertex i is old vertex perm[i].
func (d *DiDense) Permute(perm []int) *DiDense {
	p := NewDiDense(d.n)
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i != j && d.HasArc(perm[i], perm[j]) {
				p.AddArc(i, j)
			}
		}
	}
	return p
}

// Equal reports whether two directed graphs are identical as labeled graphs.
func (d *DiDense) Equal(o *DiDense) bool {
	if d.n != o.n {
		return false
	}
	for i := 0; i < d.n; i++ {
		if d.out[i] != o.out[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (d *DiDense) Clone() *DiDense {
	c := *d
	return &c
}

// String renders the arc list, e.g. "3:[0>1 1>2 2>0]".
func (d *DiDense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:[", d.n)
	first := true
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if d.HasArc(i, j) {
				if !first {
					b.WriteByte(' ')
				}
				first = false
				fmt.Fprintf(&b, "%d>%d", i, j)
			}
		}
	}
	b.WriteByte(']')
	return b.String()
}

// wlColorsDir computes refinement colors separating in- and out-
// neighborhood multisets: an isomorphism-invariant directed signature.
func wlColorsDir(d *DiDense) []uint64 {
	var curArr, nextArr, bufArr [graph.MaxDense]uint64
	n := d.n
	cur, next := curArr[:n], nextArr[:n]
	for v := 0; v < n; v++ {
		cur[v] = uint64(d.OutDegree(v))<<16 | uint64(d.InDegree(v))
	}
	for round := 0; round < 3; round++ {
		for v := 0; v < n; v++ {
			h := cur[v]*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
			// Out-neighbors.
			buf := bufArr[:0]
			for m := d.out[v]; m != 0; m &= m - 1 {
				buf = append(buf, cur[bits.TrailingZeros32(m)])
			}
			sortU64(buf)
			for _, c := range buf {
				h = (h ^ c) * 0x100000001b3
			}
			h = h*0x9e3779b97f4a7c15 + 0xabcdef1234567891
			// In-neighbors.
			buf = bufArr[:0]
			for u := 0; u < n; u++ {
				if u != v && d.HasArc(u, v) {
					buf = append(buf, cur[u])
				}
			}
			sortU64(buf)
			for _, c := range buf {
				h = (h ^ c) * 0x100000001b3
			}
			next[v] = h
		}
		cur, next = next, cur
	}
	out := make([]uint64, n)
	copy(out, cur)
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Invariant returns an isomorphism-invariant hash of d.
func Invariant(d *DiDense) uint64 {
	cols := wlColorsDir(d)
	sortU64(cols)
	h := uint64(d.n)*0x9e3779b97f4a7c15 + uint64(d.M())
	for _, c := range cols {
		h = (h ^ c) * 0x100000001b3
	}
	return h
}

// vf2DirMap finds an isomorphism mapping from a to b (nil if none).
func vf2DirMap(a, b *DiDense) []int {
	n := a.n
	if n != b.n || a.M() != b.M() {
		return nil
	}
	ca, cb := wlColorsDir(a), wlColorsDir(b)
	cand := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for v := 0; v < n; v++ {
			if ca[u] == cb[v] {
				m |= 1 << uint(v)
			}
		}
		if m == 0 {
			return nil
		}
		cand[u] = m
	}
	mapping := make([]int, n)
	var used uint32
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			return true
		}
		for m := cand[u] &^ used; m != 0; {
			v := bits.TrailingZeros32(m)
			m &= m - 1
			ok := true
			for p := 0; p < u; p++ {
				if a.HasArc(u, p) != b.HasArc(v, mapping[p]) ||
					a.HasArc(p, u) != b.HasArc(mapping[p], v) {
					ok = false
					break
				}
			}
			if ok {
				mapping[u] = v
				used |= 1 << uint(v)
				if rec(u + 1) {
					return true
				}
				used &^= 1 << uint(v)
			}
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	return mapping
}

// Isomorphic reports whether a and b are isomorphic directed graphs.
func Isomorphic(a, b *DiDense) bool {
	if a.n != b.n || a.M() != b.M() || Invariant(a) != Invariant(b) {
		return false
	}
	return vf2DirMap(a, b) != nil
}

// Automorphisms enumerates the automorphisms of d, up to cap (0 = no cap).
func Automorphisms(d *DiDense, cap int) [][]int {
	n := d.n
	cols := wlColorsDir(d)
	cand := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for v := 0; v < n; v++ {
			if cols[u] == cols[v] {
				m |= 1 << uint(v)
			}
		}
		cand[u] = m
	}
	var out [][]int
	mapping := make([]int, n)
	var used uint32
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			out = append(out, append([]int(nil), mapping...))
			return cap > 0 && len(out) >= cap
		}
		for m := cand[u] &^ used; m != 0; {
			v := bits.TrailingZeros32(m)
			m &= m - 1
			ok := true
			for p := 0; p < u; p++ {
				if d.HasArc(u, p) != d.HasArc(v, mapping[p]) ||
					d.HasArc(p, u) != d.HasArc(mapping[p], v) {
					ok = false
					break
				}
			}
			if ok {
				mapping[u] = v
				used |= 1 << uint(v)
				stop := rec(u + 1)
				used &^= 1 << uint(v)
				if stop {
					return true
				}
			}
		}
		return false
	}
	rec(0)
	return out
}

// Orbits returns the automorphism orbits (directed symmetry sets).
func Orbits(d *DiDense) [][]int {
	n := d.n
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, perm := range Automorphisms(d, 4096) {
		for i, img := range perm {
			ri, rj := find(i), find(img)
			if ri != rj {
				if ri > rj {
					ri, rj = rj, ri
				}
				parent[rj] = ri
			}
		}
	}
	groups := map[int][]int{}
	for v := 0; v < n; v++ {
		groups[find(v)] = append(groups[find(v)], v)
	}
	var orbits [][]int
	for r := 0; r < n; r++ {
		if g, ok := groups[r]; ok {
			orbits = append(orbits, g)
		}
	}
	return orbits
}

// Classifier interns directed graphs into isomorphism classes. Like the
// undirected graph.Classifier, identical raw arc matrices (same labeling,
// not merely isomorphic) resolve through a first-level cache probed via a
// reused scratch buffer, so repeat labeled shapes — the common case under
// beam mining — classify with zero allocations.
type Classifier struct {
	byRaw  map[string]int   // raw arc bits -> class id
	byInv  map[uint64][]int // invariant -> candidate class ids
	reps   []*DiDense
	occMap map[string][]int // raw arc bits -> rep-order mapping (see OccMapping)
	keyBuf []byte           // scratch for raw-bits lookups (no alloc on hits)
}

// NewClassifier returns an empty directed classifier.
func NewClassifier() *Classifier {
	return &Classifier{byRaw: map[string]int{}, byInv: map[uint64][]int{}}
}

// NumClasses returns the number of classes seen.
func (c *Classifier) NumClasses() int { return len(c.reps) }

// Rep returns class id's representative.
func (c *Classifier) Rep(id int) *DiDense { return c.reps[id] }

// Classify returns d's class id, allocating a new class when unseen.
func (c *Classifier) Classify(d *DiDense) int {
	c.keyBuf = d.AppendBits(c.keyBuf[:0])
	if id, ok := c.byRaw[string(c.keyBuf)]; ok {
		return id
	}
	inv := Invariant(d)
	id := -1
	for _, cid := range c.byInv[inv] {
		if vf2DirMap(c.reps[cid], d) != nil {
			id = cid
			break
		}
	}
	if id < 0 {
		id = len(c.reps)
		c.reps = append(c.reps, d.Clone())
		c.byInv[inv] = append(c.byInv[inv], id)
	}
	c.byRaw[string(c.keyBuf)] = id
	return id
}

// OccMapping returns vf2DirMap(c.Rep(id), d) for a graph d previously
// classified into class id, memoized by d's raw arc bits. Callers must
// treat the returned slice as read-only.
func (c *Classifier) OccMapping(id int, d *DiDense) []int {
	c.keyBuf = d.AppendBits(c.keyBuf[:0])
	if mp, ok := c.occMap[string(c.keyBuf)]; ok {
		return mp
	}
	mp := vf2DirMap(c.reps[id], d)
	if c.occMap == nil {
		c.occMap = map[string][]int{}
	}
	c.occMap[string(c.keyBuf)] = mp
	return mp
}

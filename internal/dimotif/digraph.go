package dimotif

import (
	"math/rand"
	"sort"
)

// DiGraph is a sparse directed simple graph (e.g. a gene regulatory
// network, the directed setting the paper's conclusion points at).
type DiGraph struct {
	out, in [][]int32
	arcs    int
}

// NewDiGraph returns a directed graph with n isolated vertices.
func NewDiGraph(n int) *DiGraph {
	return &DiGraph{out: make([][]int32, n), in: make([][]int32, n)}
}

// N returns the vertex count.
func (g *DiGraph) N() int { return len(g.out) }

// M returns the arc count.
func (g *DiGraph) M() int { return g.arcs }

// AddArc adds u -> v (self-loops and duplicates ignored); reports whether a
// new arc was added.
func (g *DiGraph) AddArc(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.out) || v >= len(g.out) {
		return false
	}
	var ok bool
	if g.out[u], ok = insertSorted32(g.out[u], int32(v)); !ok {
		return false
	}
	g.in[v], _ = insertSorted32(g.in[v], int32(u))
	g.arcs++
	return true
}

// RemoveArc removes u -> v if present.
func (g *DiGraph) RemoveArc(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.out) || v >= len(g.out) {
		return false
	}
	if !removeSorted32(&g.out[u], int32(v)) {
		return false
	}
	removeSorted32(&g.in[v], int32(u))
	g.arcs--
	return true
}

// HasArc reports whether u -> v exists.
func (g *DiGraph) HasArc(u, v int) bool {
	if u < 0 || u >= len(g.out) {
		return false
	}
	s := g.out[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= int32(v) })
	return i < len(s) && s[i] == int32(v)
}

// Out returns the sorted out-neighbors of v (owned by the graph).
func (g *DiGraph) Out(v int) []int32 { return g.out[v] }

// In returns the sorted in-neighbors of v (owned by the graph).
func (g *DiGraph) In(v int) []int32 { return g.in[v] }

// OutDegree and InDegree return the respective degrees of v.
func (g *DiGraph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *DiGraph) InDegree(v int) int { return len(g.in[v]) }

// Arcs appends every arc (u, v) to dst and returns it.
func (g *DiGraph) Arcs(dst [][2]int32) [][2]int32 {
	for u := range g.out {
		for _, v := range g.out[u] {
			dst = append(dst, [2]int32{int32(u), v})
		}
	}
	return dst
}

// Clone returns a deep copy.
func (g *DiGraph) Clone() *DiGraph {
	c := &DiGraph{out: make([][]int32, len(g.out)), in: make([][]int32, len(g.in)), arcs: g.arcs}
	for i := range g.out {
		c.out[i] = append([]int32(nil), g.out[i]...)
		c.in[i] = append([]int32(nil), g.in[i]...)
	}
	return c
}

// weakNeighbors calls f for each distinct weak neighbor of v (union of in-
// and out-neighbors, merged without duplicates).
func (g *DiGraph) weakNeighbors(v int, f func(w int32)) {
	a, b := g.out[v], g.in[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			f(a[i])
			i++
			j++
		case a[i] < b[j]:
			f(a[i])
			i++
		default:
			f(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		f(a[i])
	}
	for ; j < len(b); j++ {
		f(b[j])
	}
}

// InducedDi returns the directed induced subgraph on vs, in vs order.
func (g *DiGraph) InducedDi(vs []int32) *DiDense {
	d := NewDiDense(len(vs))
	g.FillInducedDi(d, vs)
	return d
}

// FillInducedDi resets d to the directed induced subgraph on vs, in vs
// order: the scratch-reuse variant of InducedDi for the miner's per-
// candidate loop.
func (g *DiGraph) FillInducedDi(d *DiDense, vs []int32) {
	d.Reset(len(vs))
	for i := range vs {
		for j := range vs {
			if i != j && g.HasArc(int(vs[i]), int(vs[j])) {
				d.AddArc(i, j)
			}
		}
	}
}

// Randomize returns an in/out-degree-preserving randomization via directed
// double-arc swaps: (a->b, c->d) becomes (a->d, c->b) when both new arcs
// are absent and create no self-loop. attempts defaults to 10x the arc
// count when <= 0.
func (g *DiGraph) Randomize(attempts int, rng *rand.Rand) *DiGraph {
	r := g.Clone()
	arcs := r.Arcs(nil)
	if len(arcs) < 2 {
		return r
	}
	if attempts <= 0 {
		attempts = 10 * len(arcs)
	}
	for t := 0; t < attempts; t++ {
		i, j := rng.Intn(len(arcs)), rng.Intn(len(arcs))
		if i == j {
			continue
		}
		a, b := int(arcs[i][0]), int(arcs[i][1])
		c, d := int(arcs[j][0]), int(arcs[j][1])
		if a == d || c == b || (a == c && b == d) {
			continue
		}
		if r.HasArc(a, d) || r.HasArc(c, b) {
			continue
		}
		r.RemoveArc(a, b)
		r.RemoveArc(c, d)
		r.AddArc(a, d)
		r.AddArc(c, b)
		arcs[i] = [2]int32{int32(a), int32(d)}
		arcs[j] = [2]int32{int32(c), int32(b)}
	}
	return r
}

func insertSorted32(s []int32, x int32) ([]int32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

func removeSorted32(s *[]int32, x int32) bool {
	t := *s
	i := sort.Search(len(t), func(i int) bool { return t[i] >= x })
	if i >= len(t) || t[i] != x {
		return false
	}
	*s = append(t[:i], t[i+1:]...)
	return true
}

package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket mapping at every power-of-two
// boundary: bucket i covers (2^(i-1), 2^i] microseconds, bucket 0 holds
// everything at or below 1µs, and overflow clamps to the last bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1024, 10}, {1025, 11},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << (NumBuckets - 1), NumBuckets - 1},
		{1 << (NumBuckets + 2), NumBuckets - 1}, // overflow clamps
	}
	for _, c := range cases {
		if got := bucketIndex(c.us); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.us, got, c.want)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		lo, hi := BucketBound(i-1)+1, BucketBound(i)
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Errorf("bucket %d does not cover (%d, %d]", i, lo-1, hi)
		}
	}
}

func TestHistogramRecordAndSnapshot(t *testing.T) {
	var h Histogram
	h.RecordMicros(1)
	h.RecordMicros(3)
	h.RecordMicros(100)
	h.Record(2 * time.Millisecond)
	h.Record(-5 * time.Second) // clock step clamps to zero
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.SumMicros != 1+3+100+2000+0 {
		t.Fatalf("sum = %d", s.SumMicros)
	}
	if s.Buckets[0] != 2 { // 1µs and the clamped negative
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.RecordMicros(10)
	a.RecordMicros(100)
	b.RecordMicros(1000)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 || s.SumMicros != 1110 {
		t.Fatalf("merged count=%d sum=%d", s.Count, s.SumMicros)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged buckets sum to %d", total)
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines; under
// -race (the obs package is in the race scope) this doubles as the
// lock-free-record race test, and in any build the final count must be
// exact because every increment is atomic.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.RecordMicros(rng.Int63n(1 << 22))
			}
		}(int64(w + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("buckets sum to %d, count is %d", total, s.Count)
	}
}

// TestQuantileWithinOneBucket is the property test of the ISSUE: for
// seeded random workloads, the histogram-derived p50/p90/p99 must land
// within one power-of-two bucket of the exact sorted-sample quantile.
func TestQuantileWithinOneBucket(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(5000)
		var h Histogram
		samples := make([]int64, n)
		for i := range samples {
			// Mix of tight and heavy-tailed latencies.
			us := rng.Int63n(1 << uint(4+rng.Intn(18)))
			samples[i] = us
			h.RecordMicros(us)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.50, 0.90, 0.99} {
			rank := int(q*float64(n) + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			exact := samples[rank-1]
			derived := s.Quantile(q)
			lo, hi := bucketIndex(exact), bucketIndex(derived)
			diff := hi - lo
			if diff < 0 {
				diff = -diff
			}
			if diff > 1 {
				t.Fatalf("seed %d n %d q %.2f: derived %dµs (bucket %d) vs exact %dµs (bucket %d)",
					seed, n, q, derived, hi, exact, lo)
			}
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

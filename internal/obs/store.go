package obs

import (
	"sync"
	"sync/atomic"
)

// TraceStore is the bounded ring finished traces land in, queryable by the
// /v1/traces handlers while requests keep publishing. Slots are claimed by
// an atomic ticket and guarded by per-slot mutexes taken with TryLock on
// the publish side: a writer that finds its slot held by a reader (or by a
// writer that lapped the whole ring) drops that one sample instead of
// blocking a request, so publishing is wait-free and allocation-free while
// readers still get torn-copy-proof snapshots.
type TraceStore struct {
	slots []storeSlot
	next  atomic.Uint64
}

type storeSlot struct {
	mu   sync.Mutex
	full bool
	tr   Trace
}

// DefaultTraceStoreSize is the ring capacity when the configuration
// leaves it zero. At MaxSpans fixed spans per slot this is a few MiB —
// enough recent history to debug a live incident, small enough to forget.
const DefaultTraceStoreSize = 256

// NewTraceStore builds a ring of the given capacity (<=0 selects
// DefaultTraceStoreSize).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceStoreSize
	}
	return &TraceStore{slots: make([]storeSlot, capacity)}
}

// put publishes one finished trace. Called by Tracer.Finish before the
// Trace returns to the pool; the struct copy is the hand-off.
//
// alloc-budget: 0
func (s *TraceStore) put(tr *Trace) {
	if s == nil || tr == nil {
		return
	}
	slot := &s.slots[(s.next.Add(1)-1)%uint64(len(s.slots))]
	if !slot.mu.TryLock() {
		// A reader (or a writer that lapped the ring) holds this slot;
		// losing one sample beats blocking a request.
		return
	}
	slot.tr = *tr
	slot.full = true
	slot.mu.Unlock()
}

// Cap returns the ring's capacity.
func (s *TraceStore) Cap() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// snapshot copies slot i out, returning ok only for a populated slot.
func (s *TraceStore) snapshot(i int) (Trace, bool) {
	slot := &s.slots[i]
	slot.mu.Lock()
	tr, ok := slot.tr, slot.full
	slot.mu.Unlock()
	return tr, ok
}

// Get returns the stored trace with the given ID, newest first when the
// ring holds several under one ID (a gateway trace and nothing else —
// replica traces live in the replica's own store).
func (s *TraceStore) Get(id string) (TraceOut, bool) {
	if s == nil || id == "" {
		return TraceOut{}, false
	}
	n := len(s.slots)
	next := int(s.next.Load() % uint64(n))
	for k := 0; k < n; k++ {
		i := ((next-1-k)%n + n) % n
		tr, ok := s.snapshot(i)
		if ok && tr.id == id {
			return tr.out(), true
		}
	}
	return TraceOut{}, false
}

// List returns summaries of the most recent traces, newest first, at most
// max (<=0 selects everything in the ring).
func (s *TraceStore) List(max int) []TraceSummary {
	if s == nil {
		return nil
	}
	n := len(s.slots)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]TraceSummary, 0, max)
	next := int(s.next.Load() % uint64(n))
	for k := 0; k < n && len(out) < max; k++ {
		i := ((next-1-k)%n + n) % n
		tr, ok := s.snapshot(i)
		if !ok {
			continue
		}
		out = append(out, TraceSummary{
			Trace:   tr.id,
			Root:    tr.spans[0].name,
			Spans:   tr.n,
			Dropped: tr.dropped,
			DurUS:   tr.spans[0].dur.Microseconds(),
		})
	}
	return out
}

// SpanOut is the JSON shape of one span in a stored trace. Start is the
// monotonic offset from the trace's root span, so a renderer can lay the
// tree on one timeline without trusting wall clocks.
type SpanOut struct {
	ID      int32  `json:"id"`
	Parent  int32  `json:"parent"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	RowsIn  int64  `json:"rows_in,omitempty"`
	RowsOut int64  `json:"rows_out,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// TraceOut is the JSON shape of one stored trace. RemoteParent is the
// parent span index inside the same-ID trace of the upstream process
// (propagated via X-Trace-Context), or -1 when this process was the root.
type TraceOut struct {
	Trace        string    `json:"trace"`
	RemoteParent int32     `json:"remote_parent"`
	Dropped      int32     `json:"dropped_spans,omitempty"`
	Spans        []SpanOut `json:"spans"`
}

// out converts a consistent Trace copy into its JSON shape.
func (t *Trace) out() TraceOut {
	o := TraceOut{
		Trace:        t.id,
		RemoteParent: t.remoteParent,
		Dropped:      t.dropped,
		Spans:        make([]SpanOut, t.n),
	}
	root := t.spans[0].start
	for i := int32(0); i < t.n; i++ {
		s := &t.spans[i]
		o.Spans[i] = SpanOut{
			ID:      i,
			Parent:  s.parent,
			Name:    s.name,
			Detail:  s.detail,
			RowsIn:  s.rowsIn,
			RowsOut: s.rowsOut,
			StartUS: s.start.Sub(root).Microseconds(),
			DurUS:   s.dur.Microseconds(),
		}
	}
	return o
}

package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical request tracing. A Trace is a bounded tree of spans recorded
// by ONE goroutine (handlers and the fleet router's select loop own their
// trace; concurrent work is attributed post-hoc via AddSpan), pooled by the
// Tracer so a sampled request records spans without allocating, and
// published to the TraceStore with a single struct copy the moment it
// finishes — no deferred hand-off that would keep the pooled Trace out of
// circulation.

// Propagation and sampling headers. X-Trace-Context carries
// "<traceID>:<parentSpanIndex>" from the gateway to a replica so the
// replica's handler spans attach under the gateway's per-attempt span;
// X-Trace-Sample: 1 forces sampling for one request without the client
// having to invent a request ID.
const (
	HeaderTraceContext = "X-Trace-Context"
	HeaderTraceSample  = "X-Trace-Sample"
)

// MaxSpans bounds the spans recorded per trace. The deepest real request
// shape today (gateway routing + hedged attempts + replica handler +
// query operators) is under half this; overflow increments a drop counter
// instead of growing.
const MaxSpans = 32

// NoSpan is the span index meaning "no parent" / "not recorded". Every
// span-recording method accepts it and no-ops, so unsampled requests pay
// one nil check per call site and nothing else.
const NoSpan = int32(-1)

// DefaultTraceSampleEvery is the head-sampling period when the
// configuration leaves it zero: one in every N eligible requests is
// traced, plus every request that forces sampling.
const DefaultTraceSampleEvery = 16

// span is one timed node of the trace tree. start carries the monotonic
// clock, so durations are immune to wall-clock steps.
type span struct {
	name    string
	detail  string
	rowsIn  int64
	rowsOut int64
	start   time.Time
	dur     time.Duration
	parent  int32
}

// Trace is a bounded span tree for one request. The zero Trace is unusable;
// obtain one from Tracer.Start and return it with Tracer.Finish. A nil
// *Trace is a valid no-op recorder: every method tolerates it, so
// "unsampled" needs no branches at call sites. A Trace must only be
// mutated by one goroutine at a time.
type Trace struct {
	id           string
	remoteParent int32
	n            int32
	dropped      int32
	spans        [MaxSpans]span
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span's index, or NoSpan for a nil trace.
func (t *Trace) Root() int32 {
	if t == nil {
		return NoSpan
	}
	return 0
}

// StartSpan opens a child span under parent and returns its index. When
// the trace is nil or full it returns NoSpan (counting the drop), and the
// caller's later EndSpan/SetRows calls no-op.
//
// alloc-budget: 0
func (t *Trace) StartSpan(parent int32, name string) int32 {
	if t == nil {
		return NoSpan
	}
	if int(t.n) == len(t.spans) {
		t.dropped++
		return NoSpan
	}
	i := t.n
	t.n++
	s := &t.spans[i]
	s.name = name
	s.detail = ""
	s.rowsIn = 0
	s.rowsOut = 0
	s.start = time.Now()
	s.dur = 0
	s.parent = parent
	return i
}

// EndSpan closes span i at the current monotonic clock.
//
// alloc-budget: 0
func (t *Trace) EndSpan(i int32) {
	if t == nil || i < 0 || i >= t.n {
		return
	}
	t.spans[i].dur = time.Since(t.spans[i].start)
}

// SetDetail attaches a short free-form note to span i (cancellation
// reason, upstream member, operator shape). The string is referenced, not
// copied; pass constants or strings that outlive the trace.
//
// alloc-budget: 0
func (t *Trace) SetDetail(i int32, detail string) {
	if t == nil || i < 0 || i >= t.n {
		return
	}
	t.spans[i].detail = detail
}

// SetRows records the row counts flowing through span i (query operators).
//
// alloc-budget: 0
func (t *Trace) SetRows(i int32, in, out int64) {
	if t == nil || i < 0 || i >= t.n {
		return
	}
	t.spans[i].rowsIn = in
	t.spans[i].rowsOut = out
}

// AddSpan records an already-completed span with explicit timing, for work
// measured elsewhere: aggregated query-operator busy time, a remote
// attempt whose bounds were captured by the router loop. Under parallel
// execution such spans may overlap their siblings; start must come from
// the same monotonic clock as the rest of the trace (time.Now).
//
// alloc-budget: 0
func (t *Trace) AddSpan(parent int32, name, detail string, start time.Time, dur time.Duration, rowsIn, rowsOut int64) int32 {
	i := t.StartSpan(parent, name)
	if i < 0 {
		return i
	}
	s := &t.spans[i]
	s.detail = detail
	s.start = start
	s.dur = dur
	s.rowsIn = rowsIn
	s.rowsOut = rowsOut
	return i
}

// Dropped returns how many spans were discarded after the tree filled.
func (t *Trace) Dropped() int32 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Tracer decides which requests record spans and owns the pooled traces,
// the bounded store finished traces land in, and the summary-log ring. A
// nil *Tracer never samples and all its methods no-op, so "tracing
// disabled" needs no branches at call sites.
type Tracer struct {
	every uint64 // head-sampling period; 0 = forced-only
	ctr   atomic.Uint64
	pool  sync.Pool
	store *TraceStore
	sum   *traceSummaryLog
}

// NewTracer builds a tracer. sampleEvery selects head sampling: 0 means
// DefaultTraceSampleEvery, negative disables periodic sampling (forced
// requests still trace). storeSize bounds the finished-trace ring (<=0
// selects the default). A non-nil logger gets one summary line per
// finished trace through a drop-not-block ring, exactly like the access
// log.
func NewTracer(sampleEvery, storeSize int, logger *Logger) *Tracer {
	var every uint64
	switch {
	case sampleEvery == 0:
		every = DefaultTraceSampleEvery
	case sampleEvery > 0:
		every = uint64(sampleEvery)
	}
	t := &Tracer{every: every, store: NewTraceStore(storeSize)}
	t.pool.New = func() any { return new(Trace) }
	t.sum = newTraceSummaryLog(logger, 0)
	return t
}

// Sample reports whether the next request should record spans: always when
// forced (client-supplied request ID, X-Trace-Sample, or propagated
// context), else deterministically one in every `every` requests.
//
// alloc-budget: 0
func (t *Tracer) Sample(forced bool) bool {
	if t == nil {
		return false
	}
	if forced {
		return true
	}
	return t.every > 0 && t.ctr.Add(1)%t.every == 0
}

// Start checks a pooled Trace out under the given ID and opens its root
// span. remoteParent is the parent span index inside the upstream
// (gateway) trace of the same ID, or NoSpan when this process is the
// root.
//
// alloc-budget: 0
func (t *Tracer) Start(id string, remoteParent int32, root string) *Trace {
	if t == nil {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	tr.id = id
	tr.remoteParent = remoteParent
	tr.n = 0
	tr.dropped = 0
	tr.StartSpan(NoSpan, root)
	return tr
}

// Finish closes every still-open span, publishes the trace to the store
// (one synchronous struct copy — the trace is queryable before Finish
// returns), pushes one summary record toward the log drain, returns the
// pooled Trace for reuse, and reports the root span's duration in
// microseconds (the exemplar value). The caller must not touch tr after
// Finish.
//
// alloc-budget: 0
func (t *Tracer) Finish(tr *Trace) int64 {
	if t == nil || tr == nil {
		return 0
	}
	now := time.Now()
	for i := int32(0); i < tr.n; i++ {
		s := &tr.spans[i]
		if s.dur == 0 {
			s.dur = now.Sub(s.start)
		}
	}
	us := tr.spans[0].dur.Microseconds()
	t.store.put(tr)
	t.sum.push(TraceSummary{
		Trace:   tr.id,
		Root:    tr.spans[0].name,
		Spans:   tr.n,
		Dropped: tr.dropped,
		DurUS:   us,
	})
	t.pool.Put(tr)
	return us
}

// Store exposes the finished-trace ring for the /v1/traces handlers.
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

// Close flushes and stops the summary-log drain goroutine. Safe to call
// more than once and on a nil receiver.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.sum.close()
}

// ParseTraceContext splits an X-Trace-Context value into its trace ID and
// parent span index. The parse is hand-rolled (no strconv errors) so the
// serving hot path can reject malformed headers without allocating.
//
// alloc-budget: 0
func ParseTraceContext(s string) (id string, parent int32, ok bool) {
	sep := -1
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			sep = i
			break
		}
	}
	if sep <= 0 || sep == len(s)-1 {
		return "", 0, false
	}
	if !ValidTraceID(s[:sep]) {
		return "", 0, false
	}
	var n int32
	for i := sep + 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return "", 0, false
		}
		n = n*10 + int32(c-'0')
		if n >= MaxSpans {
			return "", 0, false
		}
	}
	return s[:sep], n, true
}

// FormatTraceContext renders the header value ParseTraceContext reads.
// It allocates; only the gateway's per-attempt issue path calls it, where
// building the outbound request allocates anyway.
func FormatTraceContext(id string, parent int32) string {
	if parent < 0 {
		parent = 0
	}
	return id + ":" + strconv.Itoa(int(parent))
}

// TraceSummary is the fixed-size digest of one finished trace: what the
// summary log emits and what GET /v1/traces lists.
type TraceSummary struct {
	Trace   string `json:"trace"`
	Root    string `json:"root"`
	Spans   int32  `json:"spans"`
	Dropped int32  `json:"dropped_spans,omitempty"`
	DurUS   int64  `json:"dur_us"`
}

// traceSummaryLog mirrors AccessLog for finished traces: Finish pushes
// fixed-size summaries into a bounded ring (struct copy under a mutex —
// no I/O, no formatting) and one drain goroutine encodes them into log
// lines, so a slow log destination can never stall Tracer.Finish.
type traceSummaryLog struct {
	logger *Logger

	mu   sync.Mutex
	ring []TraceSummary
	head int
	n    int

	dropped atomic.Int64

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
	stop sync.Once

	scratch []TraceSummary // drain-goroutine-only batch buffer
}

// newTraceSummaryLog builds the ring (<=0 capacity selects 256) and starts
// its drain goroutine. A nil logger yields a nil log whose methods no-op.
func newTraceSummaryLog(logger *Logger, capacity int) *traceSummaryLog {
	if logger == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 256
	}
	l := &traceSummaryLog{
		logger:  logger,
		ring:    make([]TraceSummary, capacity),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		scratch: make([]TraceSummary, 0, capacity),
	}
	go l.drain()
	return l
}

// push enqueues one summary; it never blocks and never allocates.
//
// alloc-budget: 0
func (l *traceSummaryLog) push(rec TraceSummary) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.n == len(l.ring) {
		l.mu.Unlock()
		l.dropped.Add(1)
		return
	}
	l.ring[(l.head+l.n)%len(l.ring)] = rec
	l.n++
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// close flushes buffered summaries and stops the drain goroutine.
func (l *traceSummaryLog) close() {
	if l == nil {
		return
	}
	l.stop.Do(func() { close(l.quit) })
	<-l.done
}

func (l *traceSummaryLog) drain() {
	defer close(l.done)
	for {
		select {
		case <-l.wake:
			l.flush()
		case <-l.quit:
			l.flush()
			return
		}
	}
}

func (l *traceSummaryLog) flush() {
	l.mu.Lock()
	batch := l.scratch[:0]
	for i := 0; i < l.n; i++ {
		batch = append(batch, l.ring[(l.head+i)%len(l.ring)])
		l.ring[(l.head+i)%len(l.ring)] = TraceSummary{} // drop string refs
	}
	l.head = 0
	l.n = 0
	l.mu.Unlock()
	for i := range batch {
		l.logger.traceLine(&batch[i])
		batch[i] = TraceSummary{}
	}
	l.scratch = batch[:0]
}

// traceLine encodes one trace-summary line without allocating — the drain
// goroutine runs concurrently with requests inside the allocation-budget
// gate, so its encoding is held to the same fixed-shape standard as the
// access line.
//
// alloc-budget: 0
func (l *Logger) traceLine(rec *TraceSummary) {
	if !l.Enabled(LevelInfo) {
		return
	}
	bp := l.pool.Get().(*[]byte)
	buf := (*bp)[:0]
	if l.format == FormatJSON {
		buf = append(buf, `{"ts":"`...)
		buf = l.now().UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, `","level":"info","msg":"trace","trace":`...)
		buf = appendQuoted(buf, rec.Trace)
		buf = append(buf, `,"root":`...)
		buf = appendQuoted(buf, rec.Root)
		buf = append(buf, `,"spans":`...)
		buf = strconv.AppendInt(buf, int64(rec.Spans), 10)
		buf = append(buf, `,"dropped":`...)
		buf = strconv.AppendInt(buf, int64(rec.Dropped), 10)
		buf = append(buf, `,"dur_us":`...)
		buf = strconv.AppendInt(buf, rec.DurUS, 10)
		buf = append(buf, "}\n"...)
	} else {
		buf = append(buf, "ts="...)
		buf = l.now().UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, " level=info msg=trace trace="...)
		buf = appendLogfmtValue(buf, rec.Trace)
		buf = append(buf, " root="...)
		buf = appendLogfmtValue(buf, rec.Root)
		buf = append(buf, " spans="...)
		buf = strconv.AppendInt(buf, int64(rec.Spans), 10)
		buf = append(buf, " dropped="...)
		buf = strconv.AppendInt(buf, int64(rec.Dropped), 10)
		buf = append(buf, " dur_us="...)
		buf = strconv.AppendInt(buf, rec.DurUS, 10)
		buf = append(buf, '\n')
	}
	l.write(buf)
	*bp = buf[:0]
	l.pool.Put(bp)
}

package obs

import (
	"strconv"
	"sync"
)

// Exemplar is one "most recent traced sample" cell for a latency
// histogram: a trace ID plus its root duration, written by the serving
// hot path and rendered into OpenMetrics exemplar syntax by the /metrics
// handler. Set takes the cell's mutex with TryLock and drops the sample
// when a scrape holds it — exemplars are a debugging breadcrumb, not an
// accounting counter — so recording never blocks and never allocates
// (both fields are header copies).
type Exemplar struct {
	mu  sync.Mutex
	set bool
	id  string
	us  int64
}

// Set records a traced sample. Never blocks, never allocates.
//
// alloc-budget: 0
func (e *Exemplar) Set(id string, us int64) {
	if e == nil || id == "" {
		return
	}
	if !e.mu.TryLock() {
		return
	}
	e.id = id
	e.us = us
	e.set = true
	e.mu.Unlock()
}

// Get returns the current exemplar, if one sample has been recorded.
func (e *Exemplar) Get() (id string, us int64, ok bool) {
	if e == nil {
		return "", 0, false
	}
	e.mu.Lock()
	id, us, ok = e.id, e.us, e.set
	e.mu.Unlock()
	return id, us, ok
}

// AppendPromHistogramExemplar renders the same histogram lines as
// AppendPromHistogram, attaching the exemplar to the one bucket whose
// range contains its value, in OpenMetrics exemplar syntax:
//
//	name_bucket{le="0.001024"} 17 # {trace_id="lamod-42"} 0.000731
//
// Classic Prometheus text-format parsers treat "#" as a comment, but the
// project's /metrics endpoint only calls this variant behind an opt-in
// flag so the default exposition stays byte-compatible with what every
// existing scrape assertion expects.
func AppendPromHistogramExemplar(buf []byte, name, labels string, s HistSnapshot, ex *Exemplar) []byte {
	id, us, ok := ex.Get()
	exBucket := -1
	if ok {
		exBucket = bucketIndex(us)
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		le := "+Inf"
		if i < NumBuckets-1 {
			le = strconv.FormatFloat(float64(BucketBound(i))/1e6, 'g', -1, 64)
		}
		buf = append(buf, name...)
		buf = append(buf, "_bucket{"...)
		if labels != "" {
			buf = append(buf, labels...)
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		if i == exBucket {
			buf = append(buf, ` # {trace_id="`...)
			buf = append(buf, id...)
			buf = append(buf, `"} `...)
			buf = strconv.AppendFloat(buf, float64(us)/1e6, 'g', -1, 64)
		}
		buf = append(buf, '\n')
	}
	buf = AppendPromFloat(buf, name+"_sum", labels, float64(s.SumMicros)/1e6)
	buf = AppendPromInt(buf, name+"_count", labels, s.Count)
	return buf
}

package obs

import (
	"strconv"
	"sync/atomic"
)

// TraceSource generates request trace IDs from a prefixed counter:
// "<prefix>-1", "<prefix>-2", ... A seeded source makes generated IDs
// deterministic in tests; in production the IDs only need to be unique
// within one process, which a counter gives without coordination.
type TraceSource struct {
	prefix string
	n      atomic.Uint64
}

// NewTraceSource builds a source whose first ID is "<prefix>-<start+1>".
func NewTraceSource(prefix string, start uint64) *TraceSource {
	t := &TraceSource{prefix: prefix}
	t.n.Store(start)
	return t
}

// Next returns the next trace ID. Generating allocates the ID string; the
// zero-alloc serving contract holds when clients supply X-Request-Id, and
// generation is the fallback for clients that do not.
func (t *TraceSource) Next() string {
	return t.prefix + "-" + strconv.FormatUint(t.n.Add(1), 10)
}

// maxTraceIDLen bounds accepted client-supplied trace IDs.
const maxTraceIDLen = 64

// ValidTraceID reports whether a client-supplied X-Request-Id is safe to
// echo and log verbatim: 1-64 bytes of [0-9A-Za-z._-]. Anything else is
// replaced by a generated ID rather than sanitized, so logs never carry
// attacker-shaped strings.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

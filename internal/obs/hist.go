// Package obs is the stdlib-only observability layer of the lamod stack:
// lock-free latency histograms, leveled structured logging (JSON or
// logfmt) with a pooled encoder, a bounded access-log ring that keeps
// request logging off the serving hot path, deterministic request trace
// IDs, per-stage pipeline tracing, and Prometheus text-format rendering.
//
// Everything here is built for the daemon's zero-allocation contract: the
// operations that run per request (Histogram.Record, AccessLog.Push, the
// drain goroutine's line encoding) never allocate after warm-up, so
// instrumentation can stay on in production and in the allocation-budget
// gates. The expensive, allocating conveniences (Logger.Info with variadic
// fields, StageRecorder tables) are for startup, shutdown, and offline
// pipelines, where an allocation is free.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i counts
// samples whose microsecond value lies in (2^(i-1), 2^i]; bucket 0 holds
// everything at or below one microsecond, and the last bucket absorbs all
// overflow (2^38 µs is a bit over three days — nothing a request-deadline
// daemon can observe legitimately).
const NumBuckets = 40

// Histogram is a fixed-bucket, power-of-two latency histogram. Record is
// lock-free and allocation-free: one atomic increment per bucket, count,
// and sum, so concurrent request goroutines never contend on a mutex and
// the serving hot path stays zero-alloc. The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
}

// bucketIndex maps a microsecond sample to its bucket: ceil(log2(us)),
// clamped to the overflow bucket.
func bucketIndex(us int64) int {
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound in microseconds.
// The overflow bucket has no finite bound; it reports the largest finite
// bound so derived quantiles stay numeric.
func BucketBound(i int) int64 {
	if i >= NumBuckets-1 {
		i = NumBuckets - 1
	}
	return int64(1) << uint(i)
}

// Record adds one duration sample. Negative durations (clock steps) clamp
// to zero rather than corrupting a bucket index.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.RecordMicros(us)
}

// RecordMicros adds one sample measured in microseconds.
func (h *Histogram) RecordMicros(us int64) {
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
}

// HistSnapshot is a point-in-time copy of a Histogram. Individual loads
// are atomic but the snapshot as a whole is not a consistent cut; derived
// statistics (quantiles, rates) must come from one snapshot, never from
// two sequential reads of the live histogram.
type HistSnapshot struct {
	Buckets   [NumBuckets]int64
	Count     int64
	SumMicros int64
}

// Snapshot copies the histogram's current counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumMicros = h.sum.Load()
	return s
}

// Merge adds o's counts into s, so per-route histograms can roll up into
// one process-wide distribution.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumMicros += o.SumMicros
}

// Quantile returns the q-quantile (0 < q <= 1) in microseconds, derived
// exactly from the bucket counts: the inclusive upper bound of the bucket
// containing the nearest-rank sample. The answer is therefore within one
// power-of-two bucket of the true sorted-sample quantile (pinned by the
// property test). Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// StageStat describes one pipeline stage of an offline build: wall time,
// items processed, and the worker count the stage ran with. Busy, when
// non-zero, is the summed worker-busy time inside the stage (its
// cumulative CPU-side cost), from which WriteText derives utilization as
// Busy / (Wall × Workers).
type StageStat struct {
	Name    string
	Wall    time.Duration
	Items   int64
	Workers int
	Busy    time.Duration
}

// StageRecorder collects StageStats in recording order. A nil recorder is
// valid and records nothing, so pipelines thread one through
// unconditionally and callers opt in by passing a non-nil recorder.
type StageRecorder struct {
	mu     sync.Mutex
	stages []StageStat
}

// Record appends one finished stage.
func (r *StageRecorder) Record(s StageStat) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stages = append(r.stages, s)
	r.mu.Unlock()
}

// Stage is an in-flight stage opened by Start.
type Stage struct {
	rec   *StageRecorder
	name  string
	start time.Time
}

// Start opens a named stage; End closes it. On a nil recorder Start
// returns nil and End no-ops.
func (r *StageRecorder) Start(name string) *Stage {
	if r == nil {
		return nil
	}
	return &Stage{rec: r, name: name, start: time.Now()}
}

// End records the stage with its measured wall time.
func (s *Stage) End(items int64, workers int) {
	s.EndWithBusy(items, workers, 0)
}

// EndWithBusy is End plus a cumulative worker-busy duration, from which
// the stage table derives utilization.
func (s *Stage) EndWithBusy(items int64, workers int, busy time.Duration) {
	if s == nil {
		return
	}
	s.rec.Record(StageStat{
		Name:    s.name,
		Wall:    time.Since(s.start),
		Items:   items,
		Workers: workers,
		Busy:    busy,
	})
}

// Stages returns a copy of the recorded stages.
func (r *StageRecorder) Stages() []StageStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StageStat, len(r.stages))
	copy(out, r.stages)
	return out
}

// WriteText renders the recorded stages as the table `lamod build -stats`
// prints.
func (r *StageRecorder) WriteText(w io.Writer) error {
	return WriteStageTable(w, r.Stages())
}

// WriteStageTable renders stage stats (from a live recorder or an artifact
// snapshot) as an aligned table.
func WriteStageTable(w io.Writer, stages []StageStat) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-12s %12s %10s %8s %6s\n", "stage", "wall", "items", "workers", "util")
	for _, s := range stages {
		util := "-"
		if s.Busy > 0 && s.Workers > 0 && s.Wall > 0 {
			util = fmt.Sprintf("%.0f%%", 100*float64(s.Busy)/(float64(s.Wall)*float64(s.Workers)))
		}
		fmt.Fprintf(bw, "%-12s %12s %10d %8d %6s\n",
			s.Name, s.Wall.Round(time.Microsecond), s.Items, s.Workers, util)
	}
	return bw.Flush()
}

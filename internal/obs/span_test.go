package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(1, 8, nil)
	trace := tr.Start("t-1", NoSpan, "handler")
	if got := trace.ID(); got != "t-1" {
		t.Fatalf("ID = %q, want t-1", got)
	}
	if got := trace.Root(); got != 0 {
		t.Fatalf("Root = %d, want 0", got)
	}
	child := trace.StartSpan(trace.Root(), "child")
	trace.SetDetail(child, "note")
	trace.SetRows(child, 10, 3)
	trace.EndSpan(child)
	grand := trace.StartSpan(child, "grandchild")
	trace.EndSpan(grand)
	if us := tr.Finish(trace); us < 0 {
		t.Fatalf("Finish returned negative duration %d", us)
	}
	out, ok := tr.Store().Get("t-1")
	if !ok {
		t.Fatal("stored trace not found")
	}
	if out.Trace != "t-1" || out.RemoteParent != NoSpan {
		t.Fatalf("trace head = %+v", out)
	}
	if len(out.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(out.Spans))
	}
	if out.Spans[0].Name != "handler" || out.Spans[0].Parent != NoSpan {
		t.Fatalf("root span = %+v", out.Spans[0])
	}
	if out.Spans[1].Parent != 0 || out.Spans[1].Detail != "note" ||
		out.Spans[1].RowsIn != 10 || out.Spans[1].RowsOut != 3 {
		t.Fatalf("child span = %+v", out.Spans[1])
	}
	if out.Spans[2].Parent != child {
		t.Fatalf("grandchild parent = %d, want %d", out.Spans[2].Parent, child)
	}
	for _, s := range out.Spans {
		if s.DurUS < 0 || s.StartUS < 0 {
			t.Fatalf("negative timing in span %+v", s)
		}
	}
}

func TestTraceSpanOverflowCountsDrops(t *testing.T) {
	tr := NewTracer(1, 4, nil)
	trace := tr.Start("t-full", NoSpan, "root")
	for i := 0; i < MaxSpans+5; i++ {
		trace.StartSpan(trace.Root(), "extra")
	}
	if d := trace.Dropped(); d != 6 { // root + (MaxSpans-1) fit; 6 spill
		t.Fatalf("dropped = %d, want 6", d)
	}
	tr.Finish(trace)
	out, ok := tr.Store().Get("t-full")
	if !ok || out.Dropped != 6 || len(out.Spans) != MaxSpans {
		t.Fatalf("stored overflow trace: ok=%v dropped=%d spans=%d", ok, out.Dropped, len(out.Spans))
	}
}

func TestNilTraceAndTracerNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Sample(true) {
		t.Fatal("nil tracer sampled")
	}
	trace := tr.Start("x", NoSpan, "root")
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	i := trace.StartSpan(trace.Root(), "a") // all no-ops on nil
	trace.SetDetail(i, "d")
	trace.SetRows(i, 1, 2)
	trace.EndSpan(i)
	if us := tr.Finish(trace); us != 0 {
		t.Fatalf("nil Finish = %d", us)
	}
	if tr.Store() != nil {
		t.Fatal("nil tracer has a store")
	}
	tr.Close()
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 4, nil)
	var hits int
	for i := 0; i < 16; i++ {
		if tr.Sample(false) {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("1-in-4 sampling hit %d of 16", hits)
	}
	if !tr.Sample(true) {
		t.Fatal("forced request not sampled")
	}
	forcedOnly := NewTracer(-1, 4, nil)
	for i := 0; i < 64; i++ {
		if forcedOnly.Sample(false) {
			t.Fatal("forced-only tracer head-sampled")
		}
	}
	if !forcedOnly.Sample(true) {
		t.Fatal("forced-only tracer refused a forced request")
	}
}

func TestTraceStoreEvictionAndList(t *testing.T) {
	tr := NewTracer(1, 2, nil)
	for _, id := range []string{"a", "b", "c"} {
		trace := tr.Start(id, NoSpan, "root")
		tr.Finish(trace)
	}
	if _, ok := tr.Store().Get("a"); ok {
		t.Fatal("oldest trace should have been evicted from a 2-slot ring")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := tr.Store().Get(id); !ok {
			t.Fatalf("trace %q missing", id)
		}
	}
	list := tr.Store().List(0)
	if len(list) != 2 || list[0].Trace != "c" || list[1].Trace != "b" {
		t.Fatalf("List = %+v, want [c b]", list)
	}
	if list := tr.Store().List(1); len(list) != 1 || list[0].Trace != "c" {
		t.Fatalf("List(1) = %+v", list)
	}
}

func TestTraceStoreConcurrentPutGet(t *testing.T) {
	tr := NewTracer(1, 8, nil)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				tr.Store().Get("w-1")
				tr.Store().List(4)
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				trace := tr.Start("w-1", NoSpan, "root")
				trace.StartSpan(trace.Root(), "child")
				tr.Finish(trace)
			}
		}()
	}
	writers.Wait()
	close(stop)
	<-readerDone
	if _, ok := tr.Store().Get("w-1"); !ok {
		t.Fatal("no trace survived concurrent publishing")
	}
}

func TestParseTraceContext(t *testing.T) {
	cases := []struct {
		in     string
		id     string
		parent int32
		ok     bool
	}{
		{"gw-7:0", "gw-7", 0, true},
		{"gw-7:31", "gw-7", 31, true},
		{"abc.DEF_1-2:5", "abc.DEF_1-2", 5, true},
		{"", "", 0, false},
		{"gw-7", "", 0, false},
		{":3", "", 0, false},
		{"gw-7:", "", 0, false},
		{"gw-7:x", "", 0, false},
		{"gw-7:-1", "", 0, false},
		{"gw-7:32", "", 0, false}, // parent must index a real span slot
		{"bad id:0", "", 0, false},
		{"gw:7:3", "gw:7", 0, false}, // colon is not a valid ID byte
	}
	for _, c := range cases {
		id, parent, ok := ParseTraceContext(c.in)
		if ok != c.ok || (ok && (id != c.id || parent != c.parent)) {
			t.Errorf("ParseTraceContext(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.in, id, parent, ok, c.id, c.parent, c.ok)
		}
	}
	if got := FormatTraceContext("gw-7", 3); got != "gw-7:3" {
		t.Fatalf("FormatTraceContext = %q", got)
	}
	id, parent, ok := ParseTraceContext(FormatTraceContext("lamod-19", 12))
	if !ok || id != "lamod-19" || parent != 12 {
		t.Fatalf("round trip = (%q, %d, %v)", id, parent, ok)
	}
}

func TestExemplarSetGet(t *testing.T) {
	var e Exemplar
	if _, _, ok := e.Get(); ok {
		t.Fatal("empty exemplar returned a sample")
	}
	e.Set("t-9", 731)
	id, us, ok := e.Get()
	if !ok || id != "t-9" || us != 731 {
		t.Fatalf("Get = (%q, %d, %v)", id, us, ok)
	}
	e.Set("t-10", 42)
	if id, _, _ := e.Get(); id != "t-10" {
		t.Fatalf("Set did not overwrite: %q", id)
	}
	e.Set("", 1) // empty IDs are ignored
	if id, _, _ := e.Get(); id != "t-10" {
		t.Fatalf("empty-ID Set overwrote: %q", id)
	}
	var nilEx *Exemplar
	nilEx.Set("x", 1)
	if _, _, ok := nilEx.Get(); ok {
		t.Fatal("nil exemplar returned a sample")
	}
}

func TestAppendPromHistogramExemplar(t *testing.T) {
	var h Histogram
	h.RecordMicros(700) // bucket le=0.001024
	var e Exemplar
	e.Set("lamod-42", 700)
	out := string(AppendPromHistogramExemplar(nil, "m", `route="predict"`, h.Snapshot(), &e))
	want := `m_bucket{route="predict",le="0.001024"} 1 # {trace_id="lamod-42"} 0.0007`
	if !strings.Contains(out, want) {
		t.Fatalf("exemplar line missing:\nwant substring %q\ngot:\n%s", want, out)
	}
	// Exactly one bucket line carries the exemplar.
	if n := strings.Count(out, "trace_id="); n != 1 {
		t.Fatalf("%d exemplar annotations, want 1", n)
	}
	// Without a recorded exemplar the output matches the classic renderer.
	var empty Exemplar
	plain := string(AppendPromHistogram(nil, "m", `route="predict"`, h.Snapshot()))
	withEmpty := string(AppendPromHistogramExemplar(nil, "m", `route="predict"`, h.Snapshot(), &empty))
	if plain != withEmpty {
		t.Fatalf("empty exemplar perturbed output:\n%s\nvs\n%s", plain, withEmpty)
	}
}

func TestTraceSummaryLogDrain(t *testing.T) {
	buf := &syncBuffer{}
	logger := NewLogger(buf, LevelInfo, FormatLogfmt)
	logger.SetClock(func() time.Time { return time.Unix(1700000000, 0).UTC() })
	tr := NewTracer(1, 4, logger)
	trace := tr.Start("t-log", NoSpan, "predict")
	trace.StartSpan(trace.Root(), "score")
	tr.Finish(trace)
	tr.Close() // flushes the drain before we read the buffer
	line := buf.String()
	for _, want := range []string{"msg=trace", "trace=t-log", "root=predict", "spans=2", "dropped=0", "dur_us="} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary line missing %q:\n%s", want, line)
		}
	}
	tr.Close() // idempotent
}

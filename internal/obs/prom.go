package obs

import (
	"strconv"
)

// Prometheus text-format (version 0.0.4) rendering. The exposition format
// is just lines of `name{labels} value`, so the helpers below append
// directly into a caller-owned buffer — no client library, no registry.
// Metric names must match [a-z_]+ by project convention (the smoke test
// greps for exactly that), so keep names lowercase and digit-free.

// AppendPromHeader appends the # HELP and # TYPE preamble for a metric.
func AppendPromHeader(buf []byte, name, typ, help string) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, help...)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, typ...)
	return append(buf, '\n')
}

// AppendPromInt appends one sample line with an integer value and
// optional pre-rendered label pairs (`key="value"` without braces).
func AppendPromInt(buf []byte, name, labels string, v int64) []byte {
	buf = appendPromName(buf, name, labels)
	buf = strconv.AppendInt(buf, v, 10)
	return append(buf, '\n')
}

// AppendPromFloat appends one sample line with a float value.
func AppendPromFloat(buf []byte, name, labels string, v float64) []byte {
	buf = appendPromName(buf, name, labels)
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	return append(buf, '\n')
}

func appendPromName(buf []byte, name, labels string) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	return append(buf, ' ')
}

// AppendPromHistogram appends a full Prometheus histogram for one
// snapshot: cumulative le buckets in seconds, then _sum and _count. name
// is the bare metric name ("..._duration_seconds"); labels are extra
// pre-rendered pairs (or "") prepended before the le pair.
func AppendPromHistogram(buf []byte, name, labels string, s HistSnapshot) []byte {
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		le := "+Inf"
		if i < NumBuckets-1 {
			le = strconv.FormatFloat(float64(BucketBound(i))/1e6, 'g', -1, 64)
		}
		buf = append(buf, name...)
		buf = append(buf, "_bucket{"...)
		if labels != "" {
			buf = append(buf, labels...)
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = AppendPromFloat(buf, name+"_sum", labels, float64(s.SumMicros)/1e6)
	buf = AppendPromInt(buf, name+"_count", labels, s.Count)
	return buf
}

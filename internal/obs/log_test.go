package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins logger timestamps for byte-level assertions.
func fixedClock() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func TestLoggerJSONLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatJSON)
	l.SetClock(fixedClock)
	l.Info("serving", String("addr", "127.0.0.1:8077"), Int64("proteins", 600), Dur("elapsed", 1500*time.Microsecond))
	line := buf.String()
	want := `{"ts":"2026-08-05T12:00:00Z","level":"info","msg":"serving","addr":"127.0.0.1:8077","proteins":600,"elapsed":1500}` + "\n"
	if line != want {
		t.Fatalf("line = %q, want %q", line, want)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLoggerLogfmtLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt)
	l.SetClock(fixedClock)
	l.Info("shut down", String("why", "SIGTERM received"))
	want := `ts=2026-08-05T12:00:00Z level=info msg="shut down" why="SIGTERM received"` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLoggerLevelGating(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, FormatJSON)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("yes")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", n, buf.String())
	}
	var nilLogger *Logger
	nilLogger.Info("no-op on nil") // must not panic
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestLoggerEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatJSON)
	l.SetClock(fixedClock)
	l.Info(`quote " backslash \ newline` + "\n" + "ctrl \x01 end")
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v (%q)", err, buf.String())
	}
	if !strings.Contains(decoded["msg"].(string), `quote " backslash \`) {
		t.Fatalf("msg round-trip lost content: %q", decoded["msg"])
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError, "off": LevelOff} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
	if f, err := ParseFormat("logfmt"); err != nil || f != FormatLogfmt {
		t.Fatalf("ParseFormat(logfmt) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat accepted junk")
	}
}

func TestAccessLogDrainAndContent(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo, FormatJSON)
	l.SetClock(fixedClock)
	a := NewAccessLog(l, 16)
	a.Push(AccessRecord{
		Time: fixedClock(), TraceID: "t-1", Method: "GET",
		Route: "/v1/predict", Status: 200, Duration: 250 * time.Microsecond,
	})
	a.Push(AccessRecord{
		Time: fixedClock(), TraceID: "t-2", Method: "POST",
		Route: "/v1/predict", Status: 404, Duration: 80 * time.Microsecond,
	})
	a.Close() // flushes before stopping
	out := buf.String()
	if !strings.Contains(out, `"trace":"t-1"`) || !strings.Contains(out, `"trace":"t-2"`) {
		t.Fatalf("access lines missing trace ids: %q", out)
	}
	if !strings.Contains(out, `"status":404`) || !strings.Contains(out, `"dur_us":250`) {
		t.Fatalf("access lines missing fields: %q", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Fatalf("access line is not valid JSON: %v (%q)", err, line)
		}
	}
}

func TestAccessLogDropsWhenFull(t *testing.T) {
	// A logger over a blocked writer: the drain goroutine stalls on the
	// first record, the ring fills, and further pushes drop.
	blocked := make(chan struct{})
	l := NewLogger(writerFunc(func(p []byte) (int, error) { <-blocked; return len(p), nil }), LevelInfo, FormatJSON)
	a := NewAccessLog(l, 4)
	for i := 0; i < 32; i++ {
		a.Push(AccessRecord{TraceID: "x", Method: "GET", Route: "/v1/predict"})
	}
	if a.Dropped() == 0 {
		t.Fatal("full ring never dropped")
	}
	close(blocked)
	a.Close()
}

func TestAccessLogNilSafe(t *testing.T) {
	var a *AccessLog
	a.Push(AccessRecord{})
	a.Close()
	if a.Dropped() != 0 {
		t.Fatal("nil access log dropped something")
	}
	if got := NewAccessLog(nil, 8); got != nil {
		t.Fatal("NewAccessLog(nil logger) should be nil")
	}
}

func TestTraceSource(t *testing.T) {
	ts := NewTraceSource("r", 0)
	if a, b := ts.Next(), ts.Next(); a != "r-1" || b != "r-2" {
		t.Fatalf("trace sequence = %s, %s", a, b)
	}
	if got := NewTraceSource("lamod", 41).Next(); got != "lamod-42" {
		t.Fatalf("seeded trace = %s", got)
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"abc", "A-1_b.2", strings.Repeat("x", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "new\nline", `quo"te`, strings.Repeat("x", 65), "héllo"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
}

func TestStageRecorder(t *testing.T) {
	var r StageRecorder
	st := r.Start("census")
	time.Sleep(time.Millisecond)
	st.End(152, 4)
	r.Record(StageStat{Name: "clustering", Wall: 2 * time.Second, Items: 1840, Workers: 4, Busy: 6 * time.Second})
	got := r.Stages()
	if len(got) != 2 || got[0].Name != "census" || got[0].Items != 152 || got[0].Wall <= 0 {
		t.Fatalf("stages = %+v", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "census") || !strings.Contains(out, "clustering") || !strings.Contains(out, "75%") {
		t.Fatalf("stage table: %q", out)
	}

	var nilRec *StageRecorder
	nilRec.Record(StageStat{Name: "x"})
	nilRec.Start("y").End(0, 0)
	if nilRec.Stages() != nil {
		t.Fatal("nil recorder has stages")
	}
}

// syncBuffer is a bytes.Buffer safe for the drain goroutine + test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

var _ io.Writer = writerFunc(nil)

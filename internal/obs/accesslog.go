package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// AccessRecord is one request's access-log line, captured as plain values
// on the hot path and encoded later by the drain goroutine. The string
// fields are references (no copy is taken): method and route are
// compile-time constants in practice, and a trace ID string is immutable,
// so holding it until the drain runs is safe and allocation-free.
type AccessRecord struct {
	Time     time.Time
	TraceID  string
	Method   string
	Route    string
	Status   int
	Duration time.Duration
}

// AccessLog decouples request logging from request serving: handlers Push
// fixed-size records into a bounded ring (mutex-guarded struct copy — no
// allocation, no I/O, no formatting) and a single drain goroutine encodes
// and writes them. When the ring is full the record is dropped and
// counted, never blocking a request on a slow log destination.
type AccessLog struct {
	logger *Logger

	mu   sync.Mutex
	ring []AccessRecord
	head int
	n    int

	dropped atomic.Int64

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
	stop sync.Once

	scratch []AccessRecord // drain-goroutine-only batch buffer
}

// NewAccessLog builds a ring of the given capacity (<=0 selects 1024) and
// starts its drain goroutine. Close stops the goroutine after flushing.
// A nil logger yields a nil AccessLog, whose methods all no-op, so "logging
// disabled" needs no branches at call sites.
func NewAccessLog(logger *Logger, capacity int) *AccessLog {
	if logger == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 1024
	}
	a := &AccessLog{
		logger:  logger,
		ring:    make([]AccessRecord, capacity),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		scratch: make([]AccessRecord, 0, capacity),
	}
	go a.drain()
	return a
}

// Push enqueues one record; it never blocks and never allocates. Full ring
// drops the record and bumps the drop counter.
func (a *AccessLog) Push(rec AccessRecord) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.n == len(a.ring) {
		a.mu.Unlock()
		a.dropped.Add(1)
		return
	}
	a.ring[(a.head+a.n)%len(a.ring)] = rec
	a.n++
	a.mu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// Dropped returns the number of records lost to a full ring.
func (a *AccessLog) Dropped() int64 {
	if a == nil {
		return 0
	}
	return a.dropped.Load()
}

// Close flushes buffered records and stops the drain goroutine. Safe to
// call more than once and on a nil receiver.
func (a *AccessLog) Close() {
	if a == nil {
		return
	}
	a.stop.Do(func() { close(a.quit) })
	<-a.done
}

func (a *AccessLog) drain() {
	defer close(a.done)
	for {
		select {
		case <-a.wake:
			a.flush()
		case <-a.quit:
			a.flush()
			return
		}
	}
}

// flush pops every buffered record into the drain-only scratch batch and
// encodes them outside the lock, so a slow writer never stalls Push.
func (a *AccessLog) flush() {
	a.mu.Lock()
	batch := a.scratch[:0]
	for i := 0; i < a.n; i++ {
		batch = append(batch, a.ring[(a.head+i)%len(a.ring)])
		a.ring[(a.head+i)%len(a.ring)] = AccessRecord{} // drop string refs
	}
	a.head = 0
	a.n = 0
	a.mu.Unlock()
	for i := range batch {
		a.logger.access(&batch[i])
		batch[i] = AccessRecord{}
	}
	a.scratch = batch[:0]
}

// access encodes one access line without allocating: every value appends
// into the pooled buffer through fixed-shape code, never fmt or variadic
// fields. This is the path the serve alloc-budget gate measures with
// logging enabled.
//
// alloc-budget: 0
func (l *Logger) access(rec *AccessRecord) {
	if !l.Enabled(LevelInfo) {
		return
	}
	bp := l.pool.Get().(*[]byte)
	buf := (*bp)[:0]
	if l.format == FormatJSON {
		buf = append(buf, `{"ts":"`...)
		buf = rec.Time.UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, `","level":"info","msg":"access","trace":`...)
		buf = appendQuoted(buf, rec.TraceID)
		buf = append(buf, `,"method":`...)
		buf = appendQuoted(buf, rec.Method)
		buf = append(buf, `,"route":`...)
		buf = appendQuoted(buf, rec.Route)
		buf = append(buf, `,"status":`...)
		buf = strconv.AppendInt(buf, int64(rec.Status), 10)
		buf = append(buf, `,"dur_us":`...)
		buf = strconv.AppendInt(buf, rec.Duration.Microseconds(), 10)
		buf = append(buf, "}\n"...)
	} else {
		buf = append(buf, "ts="...)
		buf = rec.Time.UTC().AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, " level=info msg=access trace="...)
		buf = appendLogfmtValue(buf, rec.TraceID)
		buf = append(buf, " method="...)
		buf = appendLogfmtValue(buf, rec.Method)
		buf = append(buf, " route="...)
		buf = appendLogfmtValue(buf, rec.Route)
		buf = append(buf, " status="...)
		buf = strconv.AppendInt(buf, int64(rec.Status), 10)
		buf = append(buf, " dur_us="...)
		buf = strconv.AppendInt(buf, rec.Duration.Microseconds(), 10)
		buf = append(buf, '\n')
	}
	l.write(buf)
	*bp = buf[:0]
	l.pool.Put(bp)
}

package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level orders log severities. LevelOff disables every message.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("unknown log level %q (want debug, info, warn, error, or off)", s)
}

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// Format selects the line encoding.
type Format int8

const (
	FormatJSON Format = iota
	FormatLogfmt
)

// ParseFormat reads a -log-format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "logfmt":
		return FormatLogfmt, nil
	}
	return FormatJSON, fmt.Errorf("unknown log format %q (want json or logfmt)", s)
}

// Field is one key/value pair of a structured log line. Construct fields
// with String/Int64/Dur so the encoder never reflects.
type Field struct {
	Key  string
	str  string
	num  int64
	kind uint8 // 0 = string, 1 = int64, 2 = duration-in-µs
}

// String builds a string-valued field.
func String(k, v string) Field { return Field{Key: k, str: v} }

// Int64 builds an integer-valued field.
func Int64(k string, v int64) Field { return Field{Key: k, num: v, kind: 1} }

// Dur builds a duration field, encoded as integer microseconds.
func Dur(k string, d time.Duration) Field { return Field{Key: k, num: d.Microseconds(), kind: 2} }

// Logger writes leveled structured lines (one per call) to a single
// writer. Lines are encoded into pooled buffers and written under one
// mutex, so concurrent goroutines never interleave bytes. A nil *Logger is
// a valid no-op logger, which lets call sites skip nil checks.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	format Format
	pool   sync.Pool
	// now is the timestamp source; tests pin it for deterministic lines.
	now func() time.Time
}

// NewLogger builds a logger. w must tolerate concurrent Write calls being
// serialized by the logger's mutex (os.File and bytes.Buffer both do).
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{
		w:      w,
		level:  level,
		format: format,
		pool:   sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }},
		now:    time.Now,
	}
}

// SetClock replaces the timestamp source (tests only).
func (l *Logger) SetClock(now func() time.Time) { l.now = now }

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level && l.level != LevelOff }

// Debug, Info, Warn and Error emit one structured line at their level.
func (l *Logger) Debug(msg string, fields ...Field) { l.emit(LevelDebug, msg, fields) }
func (l *Logger) Info(msg string, fields ...Field)  { l.emit(LevelInfo, msg, fields) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.emit(LevelWarn, msg, fields) }
func (l *Logger) Error(msg string, fields ...Field) { l.emit(LevelError, msg, fields) }

func (l *Logger) emit(lv Level, msg string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	bp := l.pool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = l.head(buf, lv, msg)
	for _, f := range fields {
		buf = l.field(buf, f)
	}
	buf = append(buf, l.tail()...)
	l.write(buf)
	*bp = buf[:0]
	l.pool.Put(bp)
}

// head opens a line: timestamp, level, msg.
func (l *Logger) head(buf []byte, lv Level, msg string) []byte {
	ts := l.now().UTC()
	if l.format == FormatJSON {
		buf = append(buf, `{"ts":"`...)
		buf = ts.AppendFormat(buf, time.RFC3339Nano)
		buf = append(buf, `","level":"`...)
		buf = append(buf, lv.String()...)
		buf = append(buf, `","msg":`...)
		buf = appendQuoted(buf, msg)
		return buf
	}
	buf = append(buf, "ts="...)
	buf = ts.AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, " level="...)
	buf = append(buf, lv.String()...)
	buf = append(buf, " msg="...)
	buf = appendLogfmtValue(buf, msg)
	return buf
}

func (l *Logger) field(buf []byte, f Field) []byte {
	if l.format == FormatJSON {
		buf = append(buf, ',')
		buf = appendQuoted(buf, f.Key)
		buf = append(buf, ':')
		switch f.kind {
		case 0:
			buf = appendQuoted(buf, f.str)
		default:
			buf = strconv.AppendInt(buf, f.num, 10)
		}
		return buf
	}
	buf = append(buf, ' ')
	buf = append(buf, f.Key...)
	buf = append(buf, '=')
	switch f.kind {
	case 0:
		buf = appendLogfmtValue(buf, f.str)
	default:
		buf = strconv.AppendInt(buf, f.num, 10)
	}
	return buf
}

func (l *Logger) tail() string {
	if l.format == FormatJSON {
		return "}\n"
	}
	return "\n"
}

func (l *Logger) write(buf []byte) {
	l.mu.Lock()
	// A failed log write has nowhere to be reported; the next line retries.
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

const logHex = "0123456789abcdef"

// appendQuoted appends s as a JSON string. Only the escapes a JSON parser
// requires (quote, backslash, control bytes); multi-byte UTF-8 passes
// through verbatim, which every JSON decoder accepts.
func appendQuoted(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"', '\\':
			buf = append(buf, '\\', c)
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', logHex[c>>4], logHex[c&0xF])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendLogfmtValue appends s, quoting it only when it contains a space,
// an equals sign, a quote, or a control byte.
func appendLogfmtValue(buf []byte, s string) []byte {
	needQuote := len(s) == 0
	for i := 0; i < len(s) && !needQuote; i++ {
		c := s[i]
		if c <= ' ' || c == '=' || c == '"' {
			needQuote = true
		}
	}
	if !needQuote {
		return append(buf, s...)
	}
	return appendQuoted(buf, s)
}

package motif

import (
	"math"
	"math/rand"
	"sort"

	"lamofinder/internal/graph"
	"lamofinder/internal/par"
)

// RandESUConfig controls the RAND-ESU sampling estimator (Wernicke 2005,
// the sampling mode of FANMOD; Kashtan et al.'s mfinder pioneered the
// approach the paper cites as Task-1 baseline).
type RandESUConfig struct {
	// K is the subgraph size to sample.
	K int
	// Probabilities holds the per-depth retention probabilities q_d for
	// depths 0..K-1; each enumeration branch at depth d survives with
	// probability q_d, so a leaf is visited with probability prod(q_d).
	// Empty selects uniform probabilities from SampleFraction.
	Probabilities []float64
	// SampleFraction, when Probabilities is empty, sets prod(q_d): the
	// expected fraction of all size-K subgraphs visited. The last levels
	// get the small probabilities, as Wernicke recommends.
	SampleFraction float64
	Seed           int64
	// Parallelism caps the concurrent root-chunk workers
	// (0 = runtime.GOMAXPROCS(0)). Each fixed-size root chunk draws from
	// its own RNG stream derived from Seed and the chunk index, so the
	// sample — not just its distribution — is identical at any setting.
	Parallelism int
}

// Concentration is a sampled estimate of one pattern class's share of all
// connected size-K subgraphs.
type Concentration struct {
	Pattern *graph.Dense
	// Count is the number of sampled occurrences of the class.
	Count int
	// Concentration is Count over all sampled size-K subgraphs.
	Concentration float64
	// EstimatedTotal extrapolates the class's absolute frequency by the
	// sampling probability.
	EstimatedTotal float64
}

// chunkSample is one root chunk's private tally of sampled leaves. Class
// ids are dense and first-seen ordered, so the counts slice doubles as the
// first-seen order — no map, no separate order list.
type chunkSample struct {
	cl     *graph.Classifier
	counts []int // indexed by class id
	total  int
}

// SampleConcentrations estimates per-class subgraph concentrations with the
// RAND-ESU tree-sampling scheme: the exact ESU enumeration tree is pruned
// randomly but unbiasedly, each surviving leaf contributing one sample.
// Root vertices are partitioned into fixed-size chunks sampled
// concurrently; chunk c prunes with its own rand.New(rand.NewSource(Seed +
// c*prime)) stream, and per-chunk tallies merge in chunk order, so the
// estimate is deterministic and independent of the worker count.
//
// The pruned tree walks the same arena-scratch kernels as the exact census;
// the per-chunk RNG consumes one draw per popped extension entry in exactly
// the enumeration order, so the sample is bit-identical to the historical
// map-based formulation.
//
// invariant: len(cfg.Probabilities), when set, equals cfg.K — one retention
// probability per tree depth. A mismatched configuration is a programmer
// error; defaults are derived when the slice is empty.
func SampleConcentrations(g *graph.Graph, cfg RandESUConfig) []Concentration {
	k := cfg.K
	if k < 2 {
		return nil
	}
	probs := cfg.Probabilities
	if len(probs) == 0 {
		frac := cfg.SampleFraction
		if frac <= 0 || frac > 1 {
			frac = 0.1
		}
		probs = defaultProbs(k, frac)
	}
	if len(probs) != k {
		panic("motif: RAND-ESU needs one probability per depth")
	}
	leafProb := 1.0
	for _, p := range probs {
		leafProb *= p
	}

	n := g.N()
	csr, bits := graph.NewCSR(g), graph.NewAdjBits(g)
	chunks := make([]*chunkSample, par.NumChunks(n, esuRootChunk))
	par.Chunks(n, esuRootChunk, par.Workers(cfg.Parallelism), func(c, lo, hi int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*0x9e3779b9))
		cs := &chunkSample{cl: graph.NewClassifier()}
		smp := esuSampler{s: newESUScratch(csr, bits, k), probs: probs, rng: rng}
		var d graph.Dense
		smp.visit = func(vs []int32) {
			fillInduced(&d, bits, vs)
			id := cs.cl.Classify(&d)
			if id == len(cs.counts) {
				cs.counts = append(cs.counts, 0)
			}
			cs.counts[id]++
			cs.total++
		}
		for v := lo; v < hi; v++ {
			smp.sampleRoot(int32(v))
		}
		chunks[c] = cs
	})

	// Chunk-ordered merge into one classifier.
	cl := graph.NewClassifier()
	var counts []int // indexed by global class id, in first-seen order
	total := 0
	for _, cs := range chunks {
		for lid, cnt := range cs.counts {
			gid := cl.Classify(cs.cl.Rep(lid))
			if gid == len(counts) {
				counts = append(counts, 0)
			}
			counts[gid] += cnt
		}
		total += cs.total
	}

	out := make([]Concentration, 0, len(counts))
	for id, c := range counts {
		conc := Concentration{
			Pattern: cl.Rep(id),
			Count:   c,
		}
		if total > 0 {
			conc.Concentration = float64(c) / float64(total)
		}
		if leafProb > 0 {
			conc.EstimatedTotal = float64(c) / leafProb
		}
		out = append(out, conc)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// defaultProbs spreads the sampling fraction over the last levels: the
// first half of the tree is explored fully, the remaining levels share the
// fraction geometrically (Wernicke's recommendation keeps the samples
// well spread across the tree).
func defaultProbs(k int, frac float64) []float64 {
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1
	}
	// Distribute frac over the deeper half.
	deep := k / 2
	if deep == 0 {
		deep = 1
	}
	per := math.Pow(frac, 1/float64(deep))
	for i := k - deep; i < k; i++ {
		probs[i] = per
	}
	return probs
}

// esuSampler prunes the ESU tree with per-depth retention probabilities,
// walking the same scratch arena as the exact enumeration. Depth d is the
// number of vertices already chosen; adding the (d+1)-th consumes one RNG
// draw and survives when it falls below probs[d].
type esuSampler struct {
	s     *esuScratch
	probs []float64
	rng   *rand.Rand
	visit func(vs []int32)
}

// sampleRoot decides the root's own retention, then samples its subtree.
func (sp *esuSampler) sampleRoot(v int32) {
	if sp.rng.Float64() >= sp.probs[0] {
		return
	}
	s := sp.s
	row := s.g.Neighbors(int(v))
	i := sort.Search(len(row), func(i int) bool { return row[i] > v })
	ext := row[i:]
	s.grow(len(ext))
	copy(s.ext, ext)
	s.top = len(ext)

	s.sub = append(s.sub[:0], v)
	cov := s.coveredAt(1)
	for i := range cov {
		cov[i] = 0
	}
	s.bits.OrRowInto(cov, int(v))
	sp.sampleExtend(0, s.top)
}

// sampleExtend mirrors esuScratch.extend with a retention draw per popped
// extension entry. The draw happens before the survival test on every pop —
// exactly the historical consumption order, which keeps chunk RNG streams
// (and therefore the sampled set) byte-identical across refactors.
func (sp *esuSampler) sampleExtend(extLo, extHi int) {
	s := sp.s
	if len(s.sub) == s.k {
		sp.visit(s.sortedSub())
		return
	}
	depth := len(s.sub)
	root := int(s.sub[0])
	for extHi > extLo {
		w := s.ext[extHi-1]
		extHi--
		if sp.rng.Float64() >= sp.probs[depth] {
			continue
		}
		cnt := s.bits.ExclusiveInto(s.cand, s.coveredAt(depth), int(w), root)
		childLo := s.top
		childHi := childLo + (extHi - extLo) + cnt
		s.grow(childHi)
		copy(s.ext[childLo:], s.ext[extLo:extHi])
		p := childLo + (extHi - extLo)
		for u := nextBit(s.cand, 0); u >= 0; u = nextBit(s.cand, u+1) {
			s.ext[p] = int32(u)
			p++
		}
		s.sub = append(s.sub, w)
		cov, next := s.coveredAt(depth), s.coveredAt(depth+1)
		copy(next, cov)
		s.bits.OrRowInto(next, int(w))
		s.top = childHi
		sp.sampleExtend(childLo, childHi)
		s.top = childLo
		s.sub = s.sub[:depth]
	}
}

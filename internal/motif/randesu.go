package motif

import (
	"math"
	"math/rand"
	"sort"

	"lamofinder/internal/graph"
	"lamofinder/internal/par"
)

// RandESUConfig controls the RAND-ESU sampling estimator (Wernicke 2005,
// the sampling mode of FANMOD; Kashtan et al.'s mfinder pioneered the
// approach the paper cites as Task-1 baseline).
type RandESUConfig struct {
	// K is the subgraph size to sample.
	K int
	// Probabilities holds the per-depth retention probabilities q_d for
	// depths 0..K-1; each enumeration branch at depth d survives with
	// probability q_d, so a leaf is visited with probability prod(q_d).
	// Empty selects uniform probabilities from SampleFraction.
	Probabilities []float64
	// SampleFraction, when Probabilities is empty, sets prod(q_d): the
	// expected fraction of all size-K subgraphs visited. The last levels
	// get the small probabilities, as Wernicke recommends.
	SampleFraction float64
	Seed           int64
	// Parallelism caps the concurrent root-chunk workers
	// (0 = runtime.GOMAXPROCS(0)). Each fixed-size root chunk draws from
	// its own RNG stream derived from Seed and the chunk index, so the
	// sample — not just its distribution — is identical at any setting.
	Parallelism int
}

// Concentration is a sampled estimate of one pattern class's share of all
// connected size-K subgraphs.
type Concentration struct {
	Pattern *graph.Dense
	// Count is the number of sampled occurrences of the class.
	Count int
	// Concentration is Count over all sampled size-K subgraphs.
	Concentration float64
	// EstimatedTotal extrapolates the class's absolute frequency by the
	// sampling probability.
	EstimatedTotal float64
}

// chunkSample is one root chunk's private tally of sampled leaves.
type chunkSample struct {
	cl     *graph.Classifier
	order  []int
	counts map[int]int
	total  int
}

// SampleConcentrations estimates per-class subgraph concentrations with the
// RAND-ESU tree-sampling scheme: the exact ESU enumeration tree is pruned
// randomly but unbiasedly, each surviving leaf contributing one sample.
// Root vertices are partitioned into fixed-size chunks sampled
// concurrently; chunk c prunes with its own rand.New(rand.NewSource(Seed +
// c*prime)) stream, and per-chunk tallies merge in chunk order, so the
// estimate is deterministic and independent of the worker count.
//
// invariant: len(cfg.Probabilities), when set, equals cfg.K — one retention
// probability per tree depth. A mismatched configuration is a programmer
// error; defaults are derived when the slice is empty.
func SampleConcentrations(g *graph.Graph, cfg RandESUConfig) []Concentration {
	k := cfg.K
	if k < 2 {
		return nil
	}
	probs := cfg.Probabilities
	if len(probs) == 0 {
		frac := cfg.SampleFraction
		if frac <= 0 || frac > 1 {
			frac = 0.1
		}
		probs = defaultProbs(k, frac)
	}
	if len(probs) != k {
		panic("motif: RAND-ESU needs one probability per depth")
	}
	leafProb := 1.0
	for _, p := range probs {
		leafProb *= p
	}

	n := g.N()
	chunks := make([]*chunkSample, par.NumChunks(n, esuRootChunk))
	par.Chunks(n, esuRootChunk, par.Workers(cfg.Parallelism), func(c, lo, hi int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*0x9e3779b9))
		cs := &chunkSample{cl: graph.NewClassifier(), counts: map[int]int{}}
		sampleESURange(g, k, lo, hi, probs, rng, func(vs []int32) {
			d := g.Induced(vs)
			id := cs.cl.Classify(d)
			if cs.counts[id] == 0 {
				cs.order = append(cs.order, id)
			}
			cs.counts[id]++
			cs.total++
		})
		chunks[c] = cs
	})

	// Chunk-ordered merge into one classifier.
	cl := graph.NewClassifier()
	counts := map[int]int{}
	var order []int
	total := 0
	for _, cs := range chunks {
		for _, lid := range cs.order {
			gid := cl.Classify(cs.cl.Rep(lid))
			if counts[gid] == 0 {
				order = append(order, gid)
			}
			counts[gid] += cs.counts[lid]
		}
		total += cs.total
	}

	out := make([]Concentration, 0, len(order))
	for _, id := range order {
		c := counts[id]
		conc := Concentration{
			Pattern: cl.Rep(id),
			Count:   c,
		}
		if total > 0 {
			conc.Concentration = float64(c) / float64(total)
		}
		if leafProb > 0 {
			conc.EstimatedTotal = float64(c) / leafProb
		}
		out = append(out, conc)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// defaultProbs spreads the sampling fraction over the last levels: the
// first half of the tree is explored fully, the remaining levels share the
// fraction geometrically (Wernicke's recommendation keeps the samples
// well spread across the tree).
func defaultProbs(k int, frac float64) []float64 {
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1
	}
	// Distribute frac over the deeper half.
	deep := k / 2
	if deep == 0 {
		deep = 1
	}
	per := math.Pow(frac, 1/float64(deep))
	for i := k - deep; i < k; i++ {
		probs[i] = per
	}
	return probs
}

// sampleESURange is enumerateESURange with per-depth random pruning over
// the roots in [lo, hi). Depth d is the number of vertices already chosen;
// adding the (d+1)-th survives with probability probs[d]. All randomness
// comes from the injected rng, so a chunk's sample depends only on its own
// stream.
func sampleESURange(g *graph.Graph, k, lo, hi int, probs []float64, rng *rand.Rand, visit func(vs []int32)) {
	sub := make([]int32, 0, k)

	var extend func(ext []int32, root int32)
	extend = func(ext []int32, root int32) {
		if len(sub) == k {
			vs := append([]int32(nil), sub...)
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			visit(vs)
			return
		}
		for len(ext) > 0 {
			w := ext[len(ext)-1]
			ext = ext[:len(ext)-1]
			if rng.Float64() >= probs[len(sub)] {
				continue
			}
			next := append([]int32(nil), ext...)
			for _, u := range g.Neighbors(int(w)) {
				if u <= root || contains(sub, u) || u == w {
					continue
				}
				excl := true
				for _, s := range sub {
					if g.HasEdge(int(u), int(s)) {
						excl = false
						break
					}
				}
				if excl && !contains(next, u) {
					next = append(next, u)
				}
			}
			sub = append(sub, w)
			extend(next, root)
			sub = sub[:len(sub)-1]
		}
	}

	for v := lo; v < hi; v++ {
		if rng.Float64() >= probs[0] {
			continue
		}
		var ext []int32
		for _, u := range g.Neighbors(v) {
			if u > int32(v) {
				ext = append(ext, u)
			}
		}
		sub = append(sub[:0], int32(v))
		extend(ext, int32(v))
	}
}

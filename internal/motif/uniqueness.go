package motif

import (
	"math/rand"

	"lamofinder/internal/graph"
	"lamofinder/internal/par"
	"lamofinder/internal/randnet"
)

// UniquenessConfig controls the randomized-network null-model test.
type UniquenessConfig struct {
	// Networks is the number of degree-preserving randomizations (Milo et
	// al. use 100..1000; 10-50 suffices for screening).
	Networks int
	// MaxSteps bounds the per-pattern matcher effort in each randomized
	// network. A round whose budget is exhausted after finding at least one
	// match cannot be certified and counts as a loss; a round that explored
	// the whole budget without completing a single embedding counts as a
	// win — for meso-scale patterns exhaustive refutation is infeasible,
	// and an empty exhaustive-size sample is strong rarity evidence (the
	// same compromise NeMoFinder's approximate counting makes).
	MaxSteps int64
	// CountCap bounds how many randomized-network matches are counted per
	// pattern. Patterns whose real frequency exceeds the cap cannot be
	// certified unique (the round counts as a loss when the randomized
	// count also reaches the cap) — ultra-common patterns such as short
	// paths are never motifs, and counting their six-digit frequencies
	// exactly would dominate the run time. 0 means no cap.
	CountCap int
	// Seed drives the randomizations.
	Seed int64
	// Parallelism caps the concurrent per-network workers
	// (0 = runtime.GOMAXPROCS(0)). Results are identical at any setting:
	// each network derives its own RNG stream from Seed and writes to its
	// own slot.
	Parallelism int
}

// DefaultUniquenessConfig returns a screening-strength null model.
func DefaultUniquenessConfig() UniquenessConfig {
	return UniquenessConfig{Networks: 20, MaxSteps: 2_000_000, CountCap: 20_000, Seed: 7}
}

// ScoreUniqueness fills in Uniqueness for each motif: the fraction of
// randomized networks whose pattern frequency does not exceed the real
// frequency. The matcher counts distinct vertex sets and stops as soon as
// the randomized count exceeds the real one, so typical cost per network is
// small. Networks are processed in parallel (one goroutine per GOMAXPROCS
// worker); each randomization derives its own seed from cfg.Seed, so
// results are deterministic regardless of worker count.
func ScoreUniqueness(g *graph.Graph, motifs []*Motif, cfg UniquenessConfig) {
	if cfg.Networks <= 0 {
		return
	}
	winsPerNet := make([][]int, cfg.Networks)
	par.Do(cfg.Networks, par.Workers(cfg.Parallelism), func(r int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*0x9e3779b9))
		rnet := randnet.Randomize(g, rng)
		adj := graph.NewAdjBits(rnet)
		wins := make([]int, len(motifs))
		for i, m := range motifs {
			// Count up to Frequency+1 sets (capped): if the randomized
			// network has more sets than the real one, the round is
			// lost.
			limit := m.Frequency + 1
			if cfg.CountCap > 0 && limit > cfg.CountCap {
				limit = cfg.CountCap
			}
			cnt, exact := graph.CountInducedUpToAdj(rnet, adj, m.Pattern, limit, cfg.MaxSteps)
			if !exact {
				if cnt == 0 {
					// Budget exhausted without completing one embedding:
					// the pattern is rare in the randomized network.
					wins[i]++
				}
				continue // otherwise: cannot certify this round
			}
			if cnt >= limit && limit <= m.Frequency {
				// Hit the count cap below the real frequency: cannot
				// certify.
				continue
			}
			if cnt <= m.Frequency {
				wins[i]++
			}
		}
		winsPerNet[r] = wins
	})
	for i, m := range motifs {
		total := 0
		for r := range winsPerNet {
			total += winsPerNet[r][i]
		}
		m.Uniqueness = float64(total) / float64(cfg.Networks)
	}
}

// FilterUnique returns the motifs with Uniqueness >= minUniq, preserving
// order. Motifs never scored (Uniqueness < 0) are dropped.
func FilterUnique(motifs []*Motif, minUniq float64) []*Motif {
	var out []*Motif
	for _, m := range motifs {
		if m.Uniqueness >= minUniq {
			out = append(out, m)
		}
	}
	return out
}

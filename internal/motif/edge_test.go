package motif

import (
	"testing"

	"lamofinder/internal/graph"
)

func TestFindEmptyGraph(t *testing.T) {
	g := graph.New(10)
	ms := Find(g, Config{MinSize: 3, MaxSize: 5, MinFreq: 1})
	if len(ms) != 0 {
		t.Errorf("edgeless graph produced %d motifs", len(ms))
	}
}

func TestFindInvalidSizeRange(t *testing.T) {
	g := ring(10)
	if ms := Find(g, Config{MinSize: 6, MaxSize: 3, MinFreq: 1}); ms != nil {
		t.Errorf("inverted size range produced %v", ms)
	}
}

func TestFindEdgeClassOnly(t *testing.T) {
	g := ring(20)
	ms := Find(g, Config{MinSize: 2, MaxSize: 2, MinFreq: 1})
	if len(ms) != 1 || ms[0].Size() != 2 || ms[0].Frequency != 20 {
		t.Fatalf("edge class wrong: %v", ms)
	}
}

func TestFindMinSizeClampedToTwo(t *testing.T) {
	g := ring(10)
	ms := Find(g, Config{MinSize: 0, MaxSize: 2, MinFreq: 1})
	if len(ms) != 1 || ms[0].Size() != 2 {
		t.Fatalf("clamped MinSize wrong: %v", ms)
	}
}

func TestEnumerateESUZeroAndOne(t *testing.T) {
	g := ring(5)
	count := 0
	EnumerateESU(g, 0, func(vs []int32) bool { count++; return true })
	if count != 0 {
		t.Errorf("k=0 visited %d", count)
	}
	EnumerateESU(g, 1, func(vs []int32) bool { count++; return true })
	if count != 5 {
		t.Errorf("k=1 visited %d, want 5", count)
	}
}

func TestEnumerateESULargerThanGraph(t *testing.T) {
	g := ring(4)
	count := 0
	EnumerateESU(g, 5, func(vs []int32) bool { count++; return true })
	if count != 0 {
		t.Errorf("k>n visited %d", count)
	}
}

func TestScoreUniquenessZeroNetworks(t *testing.T) {
	g := ring(10)
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 1})
	ScoreUniqueness(g, ms, UniquenessConfig{Networks: 0})
	for _, m := range ms {
		if m.Uniqueness != -1 {
			t.Errorf("uniqueness touched with 0 networks: %v", m.Uniqueness)
		}
	}
}

func TestUniquenessCountCapBitesCommonPatterns(t *testing.T) {
	// A pattern more frequent than the cap cannot be certified unique.
	g := ring(200) // P3 occurs 200 times
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 1})
	if len(ms) != 1 {
		t.Fatalf("classes = %d", len(ms))
	}
	ScoreUniqueness(g, ms, UniquenessConfig{Networks: 4, CountCap: 50, Seed: 1})
	if ms[0].Uniqueness != 0 {
		t.Errorf("capped pattern certified: uniq = %v", ms[0].Uniqueness)
	}
}

func TestUniquenessStepBudgetSemantics(t *testing.T) {
	// A tiny budget that still finds at least one match cannot certify the
	// round (loss); a budget exhausted on zero matches counts as a win
	// (rarity evidence). Paths exist abundantly in any ring randomization:
	// with a budget big enough to find one, the path round must be a loss.
	g := ring(100)
	for c := 0; c < 20; c++ {
		g.AddEdge(5*c, 5*c+2)
	}
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 10})
	var path *Motif
	for _, m := range ms {
		if m.Pattern.M() == 2 {
			path = m
		}
	}
	if path == nil {
		t.Fatal("path class missing")
	}
	// Budget of 50 steps: enough to complete a few path embeddings, not
	// enough to count them all (frequency is in the hundreds).
	ScoreUniqueness(g, []*Motif{path}, UniquenessConfig{Networks: 3, MaxSteps: 50, Seed: 1})
	if path.Uniqueness != 0 {
		t.Errorf("budget-starved common pattern certified: %v", path)
	}
}

func TestReservoirFrequencyIsLowerBound(t *testing.T) {
	// Growth happens only from stored occurrences, so with a cap the deeper
	// levels' frequencies are lower bounds on the true counts — never
	// higher, and never below the stored list length.
	g := ring(100)
	capped := Find(g, Config{MinSize: 3, MaxSize: 4, MinFreq: 1, MaxOccPerClass: 10, Seed: 1})
	full := Find(g, Config{MinSize: 3, MaxSize: 4, MinFreq: 1, Seed: 1})
	if len(capped) != len(full) {
		t.Fatalf("class counts differ: %d vs %d", len(capped), len(full))
	}
	for i := range capped {
		if capped[i].Frequency > full[i].Frequency {
			t.Errorf("class %d capped frequency %d exceeds exact %d",
				i, capped[i].Frequency, full[i].Frequency)
		}
		if capped[i].Frequency < len(capped[i].Occurrences) {
			t.Errorf("class %d frequency %d below stored occurrences %d",
				i, capped[i].Frequency, len(capped[i].Occurrences))
		}
		if len(capped[i].Occurrences) > 10 {
			t.Errorf("class %d kept %d occurrences", i, len(capped[i].Occurrences))
		}
	}
	// At size 3 (grown from the uncapped edge level... the edge level is
	// also subsampled), the exact miner must count all 100 paths.
	if full[0].Size() == 3 && full[0].Frequency != 100 {
		t.Errorf("exact P3 frequency = %d, want 100", full[0].Frequency)
	}
}

func TestReservoirOccurrencesValid(t *testing.T) {
	// Reservoir-sampled occurrences must still be valid embeddings.
	g := ring(60)
	for c := 0; c < 12; c++ {
		g.AddEdge(3*c, 3*c+2)
	}
	ms := Find(g, Config{MinSize: 3, MaxSize: 4, MinFreq: 5, MaxOccPerClass: 7, Seed: 2})
	for _, m := range ms {
		for _, occ := range m.Occurrences {
			if occ == nil {
				t.Fatalf("nil occurrence slot in %v", m)
			}
			k := m.Size()
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if m.Pattern.HasEdge(i, j) != g.HasEdge(int(occ[i]), int(occ[j])) {
						t.Fatalf("occurrence %v does not embed %v", occ, m.Pattern)
					}
				}
			}
		}
	}
}

func TestScoreZPlantedTriangles(t *testing.T) {
	// Planted triangles on a ring: strongly positive z-score.
	g := ring(300)
	for c := 0; c < 40; c++ {
		g.AddEdge(3*c, 3*c+2)
	}
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 30})
	var tri *Motif
	for _, m := range ms {
		if m.Pattern.M() == 3 {
			tri = m
		}
	}
	if tri == nil {
		t.Fatal("triangle class missing")
	}
	zs := ScoreZ(g, []*Motif{tri}, UniquenessConfig{Networks: 8, Seed: 4})
	z := zs[0]
	if !z.Exact {
		t.Error("counts should resolve exactly at this scale")
	}
	if z.Z < 2 {
		t.Errorf("planted triangle z = %v, want >> 0 (mean %v std %v)", z.Z, z.RandMean, z.RandStd)
	}
}

func TestScoreZNoNetworks(t *testing.T) {
	g := ring(10)
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 1})
	zs := ScoreZ(g, ms, UniquenessConfig{})
	if len(zs) != len(ms) || zs[0].Z != 0 {
		t.Errorf("zero-network z-scores: %v", zs)
	}
}

func TestBeamKeepsDenseClasses(t *testing.T) {
	// A network with abundant generic paths plus planted 4-cliques: with a
	// tiny beam, the density half must keep the clique class alive even
	// though many path-ish classes are more frequent.
	g := graph.New(400)
	for i := 0; i < 400; i++ {
		g.AddEdge(i, (i+1)%400)
		g.AddEdge(i, (i+7)%400) // extra generic structure
	}
	for c := 0; c < 20; c++ {
		base := c * 9
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	ms := Find(g, Config{MinSize: 4, MaxSize: 4, MinFreq: 15, BeamWidth: 4,
		MaxOccPerClass: 200, DenseBeamFraction: 0.5, Seed: 1})
	found := false
	for _, m := range ms {
		if m.Size() == 4 && m.Pattern.M() == 6 {
			found = true
		}
	}
	if !found {
		t.Error("dense 4-clique class lost under a tiny beam")
	}
}

package motif

import (
	"math"
	"math/rand"

	"lamofinder/internal/graph"
	"lamofinder/internal/randnet"
)

// ZScore holds the Milo-style over-representation statistics of one motif:
// Z = (realCount - mean(randCount)) / std(randCount). The paper's
// uniqueness fraction is a coarser variant of the same null-model idea;
// z-scores are the field's standard and provided as an extension.
type ZScore struct {
	Real     int
	RandMean float64
	RandStd  float64
	Z        float64
	// Exact reports whether every randomized count resolved within the
	// step/count budget; inexact rows should be read as bounds.
	Exact bool
}

// ScoreZ computes z-scores for each motif against cfg.Networks randomized
// networks. Counting uses the same caps as ScoreUniqueness; randomized
// counts are capped at CountCap (so ultra-common patterns get truncated,
// conservative z-scores).
func ScoreZ(g *graph.Graph, motifs []*Motif, cfg UniquenessConfig) []ZScore {
	out := make([]ZScore, len(motifs))
	if cfg.Networks <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	counts := make([][]float64, len(motifs))
	exact := make([]bool, len(motifs))
	for i := range exact {
		exact[i] = true
	}
	for r := 0; r < cfg.Networks; r++ {
		rnet := randnet.Randomize(g, rng)
		for i, m := range motifs {
			limit := 0
			if cfg.CountCap > 0 {
				limit = cfg.CountCap
			}
			cnt, ok := graph.CountInducedUpTo(rnet, m.Pattern, limit, cfg.MaxSteps)
			if !ok {
				exact[i] = false
			}
			counts[i] = append(counts[i], float64(cnt))
		}
	}
	for i, m := range motifs {
		mean, std := meanStd(counts[i])
		z := 0.0
		switch {
		case std > 0:
			z = (float64(m.Frequency) - mean) / std
		case float64(m.Frequency) > mean:
			z = math.Inf(1)
		case float64(m.Frequency) < mean:
			z = math.Inf(-1)
		}
		out[i] = ZScore{
			Real:     m.Frequency,
			RandMean: mean,
			RandStd:  std,
			Z:        z,
			Exact:    exact[i],
		}
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

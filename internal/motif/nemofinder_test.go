package motif

import (
	"math/rand"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/randnet"
)

func TestTreeCanonicalKeyBasics(t *testing.T) {
	// Paths of equal length are isomorphic; a path and a star of the same
	// size are not.
	path := graph.NewDense(4)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	path.AddEdge(2, 3)
	path2 := graph.NewDense(4)
	path2.AddEdge(3, 1)
	path2.AddEdge(1, 0)
	path2.AddEdge(0, 2)
	star := graph.NewDense(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	k1, ok1 := graph.TreeCanonicalKey(path)
	k2, ok2 := graph.TreeCanonicalKey(path2)
	k3, ok3 := graph.TreeCanonicalKey(star)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("trees not recognized")
	}
	if k1 != k2 {
		t.Errorf("isomorphic paths: %q vs %q", k1, k2)
	}
	if k1 == k3 {
		t.Error("path and star share tree key")
	}
	// Non-trees rejected.
	tri := graph.NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if _, ok := graph.TreeCanonicalKey(tri); ok {
		t.Error("cycle accepted as tree")
	}
	disc := graph.NewDense(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, ok := graph.TreeCanonicalKey(disc); ok {
		t.Error("forest accepted as tree")
	}
}

func TestTreeCanonicalKeyMatchesIsomorphism(t *testing.T) {
	// Property: for random trees, AHU keys agree with general isomorphism.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(9)
		a := randomTree(n, rng)
		b := randomTree(n, rng)
		ka, _ := graph.TreeCanonicalKey(a)
		kb, _ := graph.TreeCanonicalKey(b)
		if (ka == kb) != graph.Isomorphic(a, b) {
			t.Fatalf("trial %d: AHU (%v) disagrees with isomorphism (%v)\n%v\n%v",
				trial, ka == kb, graph.Isomorphic(a, b), a, b)
		}
		// Permuted copies share the key.
		p := a.Permute(rng.Perm(n))
		kp, _ := graph.TreeCanonicalKey(p)
		if ka != kp {
			t.Fatalf("trial %d: permuted tree key differs", trial)
		}
	}
}

func randomTree(n int, rng *rand.Rand) *graph.Dense {
	d := graph.NewDense(n)
	for v := 1; v < n; v++ {
		d.AddEdge(v, rng.Intn(v))
	}
	return d
}

func TestSpanningTree(t *testing.T) {
	d := graph.NewDense(5)
	for i := 0; i < 5; i++ {
		d.AddEdge(i, (i+1)%5)
	}
	d.AddEdge(0, 2)
	st := d.SpanningTree()
	if !st.IsTree() {
		t.Fatalf("spanning tree is not a tree: %v", st)
	}
	// Every tree edge must be a graph edge.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if st.HasEdge(i, j) && !d.HasEdge(i, j) {
				t.Errorf("phantom tree edge (%d,%d)", i, j)
			}
		}
	}
}

func TestNeMoFindMatchesCensusSmall(t *testing.T) {
	// With no caps, NeMoFind must report exactly the classes and
	// frequencies of the exact ESU census.
	rng := rand.New(rand.NewSource(25))
	g := randnet.ErdosRenyi(50, 100, rng)
	for k := 3; k <= 4; k++ {
		nemo := NeMoFind(g, NeMoConfig{MinSize: k, MaxSize: k, MinFreq: 1, Seed: 1})
		exact := CensusESU(g, k, 0)
		if len(nemo) != len(exact) {
			t.Fatalf("k=%d: NeMo %d classes, census %d", k, len(nemo), len(exact))
		}
		exactBy := map[uint64]int{}
		for _, m := range exact {
			exactBy[graph.Invariant(m.Pattern)] += m.Frequency
		}
		for _, m := range nemo {
			if got, want := m.Frequency, exactBy[graph.Invariant(m.Pattern)]; got != want {
				t.Errorf("k=%d pattern %v: NeMo freq %d, census %d", k, m.Pattern, got, want)
			}
		}
	}
}

func TestNeMoFindPlantedCliques(t *testing.T) {
	g := graph.New(300)
	for i := 0; i < 300; i++ {
		g.AddEdge(i, (i+1)%300)
	}
	for c := 0; c < 25; c++ {
		base := c * 5
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	ms := NeMoFind(g, NeMoConfig{MinSize: 4, MaxSize: 4, MinFreq: 20, MaxTreeClasses: 50, MaxOccPerTree: 500, Seed: 1})
	var clique *Motif
	for _, m := range ms {
		if m.Pattern.M() == 6 {
			clique = m
		}
	}
	if clique == nil {
		t.Fatal("planted 4-clique not found by NeMoFind")
	}
	if clique.Frequency < 25 {
		t.Errorf("clique frequency = %d", clique.Frequency)
	}
}

func TestNeMoFindDegenerate(t *testing.T) {
	if ms := NeMoFind(graph.New(5), NeMoConfig{MinSize: 3, MaxSize: 2, MinFreq: 1}); ms != nil {
		t.Error("inverted range")
	}
	g := ring(10)
	ms := NeMoFind(g, NeMoConfig{MinSize: 2, MaxSize: 2, MinFreq: 1})
	if len(ms) != 1 || ms[0].Frequency != 10 {
		t.Errorf("edge level wrong: %v", ms)
	}
}

package motif

import (
	"lamofinder/internal/graph"
)

// This file holds the arena scratch shared by the mining hot paths: the
// ESU enumeration kernels and the beam miner reuse these structures across
// every subgraph of a work chunk, so the steady-state inner loops perform
// zero allocations (see DESIGN.md §13 "Mining memory layout"). The same
// index-addressed, reuse-across-iterations pattern drove the serve path to
// 0 allocs/op.

// esuScratch is the per-worker arena for the ESU enumeration kernels: the
// growing subgraph, the depth-stacked "covered" masks (subgraph membership
// plus everything adjacent to it), a flat extension-set arena, and a
// reusable candidate mask plus sorted-output buffer. One esuScratch serves
// every subgraph enumerated by a chunk; nothing inside it escapes.
type esuScratch struct {
	g    *graph.CSR
	bits *graph.AdjBits

	sub     []int32  // current subgraph, insertion order (sub[0] is the root)
	vs      []int32  // sorted copy handed to visit callbacks; reused per leaf
	covered []uint64 // (k+1) stacked masks of stride words; segment d serves depth d
	cand    []uint64 // exclusive-neighborhood candidate mask (stride words)
	ext     []int32  // extension-set arena; [lo,hi) segments per recursion level
	top     int      // arena high-water mark of the live segments
	stride  int
	k       int
}

// newESUScratch sizes an arena for size-k enumeration over the given views.
func newESUScratch(csr *graph.CSR, bits *graph.AdjBits, k int) *esuScratch {
	stride := bits.Stride()
	return &esuScratch{
		g:       csr,
		bits:    bits,
		sub:     make([]int32, 0, k),
		vs:      make([]int32, k),
		covered: make([]uint64, (k+1)*stride),
		cand:    make([]uint64, stride),
		ext:     make([]int32, 0, 256),
		stride:  stride,
		k:       k,
	}
}

// coveredAt returns the stacked covered-mask segment for depth d.
func (s *esuScratch) coveredAt(d int) []uint64 {
	return s.covered[d*s.stride : (d+1)*s.stride]
}

// grow ensures the extension arena holds at least n entries, preserving the
// live segments below top.
func (s *esuScratch) grow(n int) {
	if n <= cap(s.ext) {
		s.ext = s.ext[:cap(s.ext)]
		return
	}
	ns := make([]int32, n+n/2)
	copy(ns, s.ext[:s.top])
	s.ext = ns
}

// sortedSub insertion-sorts the current subgraph into the reusable vs
// buffer and returns it. Motif sizes are tiny (k <= 20), where insertion
// sort beats sort.Slice and — unlike sort.Slice — performs no allocation.
//
// alloc-budget: 0
func (s *esuScratch) sortedSub() []int32 {
	vs := s.vs[:len(s.sub)]
	copy(vs, s.sub)
	insertionSort32(vs)
	return vs
}

// insertionSort32 sorts a short int32 slice ascending in place.
//
// alloc-budget: 0
func insertionSort32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fillInduced resets d to the induced subgraph of the (sorted) vertex set
// vs, answering edge queries from the adjacency bitmap — no per-subgraph
// Dense allocation and no binary searches. (Not alloc-budget-annotated:
// Reset's out-of-range panic formats its message.)
func fillInduced(d *graph.Dense, bits *graph.AdjBits, vs []int32) {
	d.Reset(len(vs))
	for i := 1; i < len(vs); i++ {
		for j := 0; j < i; j++ {
			if bits.Has(int(vs[i]), int(vs[j])) {
				d.AddEdge(i, j)
			}
		}
	}
}

// The epoch-stamped vertex-set dedup table and the occurrence slab arena
// live in the graph package (graph.VSetDedup, graph.OccArena) so the
// directed miner shares them.

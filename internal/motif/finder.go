package motif

import (
	"math/rand"
	"sort"

	"lamofinder/internal/graph"
)

// Config controls the meso-scale miner.
type Config struct {
	// MinSize and MaxSize bound the pattern sizes reported (inclusive).
	// NeMoFinder-style runs use 3..20.
	MinSize, MaxSize int
	// MinFreq is the frequency threshold: patterns with fewer distinct
	// vertex sets are pruned (the paper uses 100 on the BIND network).
	MinFreq int
	// BeamWidth caps the number of pattern classes carried to the next
	// level (highest frequency first). 0 means no cap. NeMoFinder prunes by
	// repeated trees; we prune by beam, an approximation documented in
	// DESIGN.md.
	BeamWidth int
	// MaxOccPerClass caps the stored (and grown) occurrence list per class
	// by reservoir sampling. 0 means unlimited. Capping bounds memory and
	// time at meso-scale; because levels grow only from stored occurrences,
	// deeper levels' frequencies become lower bounds under a cap.
	MaxOccPerClass int
	// DenseBeamFraction is the share of beam slots reserved for the densest
	// (most-edge) classes rather than the most frequent. Density is a cheap
	// proxy for over-representation: at meso-scale, pure frequency floods
	// the beam with generic tree-like shapes while complex-like motifs
	// starve. 0 selects purely by frequency; 0.5 is a good meso-scale
	// setting.
	DenseBeamFraction float64
	// Seed drives occurrence subsampling when lists overflow.
	Seed int64
}

// DefaultConfig mirrors the paper's mining setup at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		MinSize:           3,
		MaxSize:           20,
		MinFreq:           100,
		BeamWidth:         60,
		MaxOccPerClass:    400,
		DenseBeamFraction: 0.5,
		Seed:              1,
	}
}

// classState is a pattern class being grown at the current level.
type classState struct {
	pattern *graph.Dense
	str     string    // pattern.String(), cached for the selection sorts
	occs    [][]int32 // pattern-ordered occurrences
	freq    int       // distinct vertex sets seen (may exceed len(occs))
}

// patStr returns the cached pattern edge-list string, used as the final
// tiebreak of the beam-selection sorts. Distinct classes have distinct
// representative labelings, hence distinct strings, so the comparators are
// total orders; caching keeps String() out of the O(n log n) comparison
// path.
func (cs *classState) patStr() string {
	if cs.str == "" {
		cs.str = cs.pattern.String()
	}
	return cs.str
}

// Find mines frequent connected patterns of g level-by-level: every class's
// occurrences are extended by one adjacent vertex, regrouped by isomorphism
// class, pruned by MinFreq, and capped by BeamWidth. It returns all classes
// in [MinSize, MaxSize] meeting MinFreq, smallest size first, most frequent
// first within a size. Uniqueness is left at -1; see ScoreUniqueness.
//
// The per-candidate loop is allocation-free in steady state: candidate
// vertex sets dedup through an epoch-stamped hash set, induced subgraphs
// fill a reused scratch Dense, classifier lookups probe through scratch
// buffers, and stored occurrences carve from a slab arena (reservoir
// replacement overwrites the evicted slot in place). See DESIGN.md §13.
func Find(g *graph.Graph, cfg Config) []*Motif {
	if cfg.MinSize < 2 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.MinSize {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Adjacency bit matrix for O(1) edge tests during induced-subgraph
	// construction (the hottest inner loop at meso-scale).
	bits := graph.NewAdjBits(g)

	// Level 2: the single-edge class.
	var arena graph.OccArena
	edgeClass := &classState{pattern: edgePattern()}
	var ebuf [2]int32
	for _, e := range g.Edges(nil) {
		ebuf[0], ebuf[1] = e[0], e[1]
		edgeClass.occs = append(edgeClass.occs, arena.Take(ebuf[:]))
	}
	edgeClass.freq = len(edgeClass.occs)
	level := []*classState{edgeClass}
	subsample(edgeClass, cfg.MaxOccPerClass, rng)

	var out []*Motif
	emit := func(cs *classState, size int) {
		if size >= cfg.MinSize && cs.freq >= cfg.MinFreq {
			out = append(out, &Motif{
				Pattern:     cs.pattern,
				Occurrences: cs.occs,
				Frequency:   cs.freq,
				Uniqueness:  -1,
			})
		}
	}
	if cfg.MinSize <= 2 && edgeClass.freq >= cfg.MinFreq {
		emit(edgeClass, 2)
	}

	var seenSets graph.VSetDedup
	var d graph.Dense
	for size := 3; size <= cfg.MaxSize && len(level) > 0; size++ {
		cl := graph.NewClassifier()
		var next []*classState // indexed by class id (dense, first-seen order)
		seenSets.Reset(size)
		sortedOcc := make([]int32, 0, size)
		vsBuf := make([]int32, size)
		for _, cs := range level {
			for _, occ := range cs.occs {
				sortedOcc = append(sortedOcc[:0], occ...)
				insertionSort32(sortedOcc)
				for _, v := range occ {
					for _, w := range g.Neighbors(int(v)) {
						if contains(occ, w) {
							continue
						}
						// Build the sorted candidate set (sortedOcc with w
						// inserted) and dedup it by exact content.
						vs := vsBuf
						pos := 0
						for pos < len(sortedOcc) && sortedOcc[pos] < w {
							vs[pos] = sortedOcc[pos]
							pos++
						}
						vs[pos] = w
						copy(vs[pos+1:], sortedOcc[pos:])
						if !seenSets.Insert(vs) {
							continue
						}
						fillInduced(&d, bits, vs)
						id := cl.Classify(&d)
						if id == len(next) {
							next = append(next, &classState{pattern: cl.Rep(id)})
						}
						ns := next[id]
						ns.freq++
						// Reservoir-sample the occurrence list so the kept
						// occurrences are an unbiased sample of all distinct
						// vertex sets, not just the first ones discovered.
						// A replacement overwrites the evicted slot's slice
						// in place — same width, no allocation.
						var no []int32
						if cfg.MaxOccPerClass == 0 || len(ns.occs) < cfg.MaxOccPerClass {
							no = arena.Take(vs)
							ns.occs = append(ns.occs, no)
						} else if r := rng.Intn(ns.freq); r < cfg.MaxOccPerClass {
							no = ns.occs[r]
						}
						if no != nil {
							mp := cl.OccMapping(id, &d)
							for i := range vs {
								no[i] = vs[mp[i]]
							}
						}
					}
				}
			}
		}
		// Prune and select the beam. Half the slots go to the most frequent
		// classes, half to the densest (most edges): density is the best
		// cheap proxy for over-representation, and pure frequency selection
		// floods the beam with generic tree-like shapes at meso-scale while
		// the complex-like motifs (the ones that survive the null model)
		// starve.
		var kept []*classState
		for _, ns := range next {
			if ns.freq >= cfg.MinFreq {
				kept = append(kept, ns)
			}
		}
		byFreq := func(i, j int) bool {
			if kept[i].freq != kept[j].freq {
				return kept[i].freq > kept[j].freq
			}
			return kept[i].patStr() < kept[j].patStr()
		}
		sort.Slice(kept, byFreq)
		if cfg.BeamWidth > 0 && len(kept) > cfg.BeamWidth {
			half := cfg.BeamWidth - int(float64(cfg.BeamWidth)*cfg.DenseBeamFraction)
			selected := make([]*classState, 0, cfg.BeamWidth)
			selected = append(selected, kept[:half]...)
			// The density slots: rank the remaining classes by edge count
			// and fill the rest of the beam. kept[half:] is disjoint from
			// the frequency picks, so no membership check is needed.
			rest := append([]*classState(nil), kept[half:]...)
			sort.Slice(rest, func(i, j int) bool {
				mi, mj := rest[i].pattern.M(), rest[j].pattern.M()
				if mi != mj {
					return mi > mj
				}
				if rest[i].freq != rest[j].freq {
					return rest[i].freq > rest[j].freq
				}
				return rest[i].patStr() < rest[j].patStr()
			})
			if room := cfg.BeamWidth - len(selected); room < len(rest) {
				rest = rest[:room]
			}
			selected = append(selected, rest...)
			kept = selected
			sort.Slice(kept, byFreq)
		}
		for _, ns := range kept {
			emit(ns, size)
		}
		level = kept
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Frequency > out[j].Frequency
	})
	return out
}

// subsample truncates the occurrence list to max items chosen uniformly.
func subsample(cs *classState, max int, rng *rand.Rand) {
	if max <= 0 || len(cs.occs) <= max {
		return
	}
	rng.Shuffle(len(cs.occs), func(i, j int) {
		cs.occs[i], cs.occs[j] = cs.occs[j], cs.occs[i]
	})
	cs.occs = cs.occs[:max]
}

func edgePattern() *graph.Dense {
	d := graph.NewDense(2)
	d.AddEdge(0, 1)
	return d
}

package motif

import (
	"math/rand"
	"sort"

	"lamofinder/internal/graph"
)

// Config controls the meso-scale miner.
type Config struct {
	// MinSize and MaxSize bound the pattern sizes reported (inclusive).
	// NeMoFinder-style runs use 3..20.
	MinSize, MaxSize int
	// MinFreq is the frequency threshold: patterns with fewer distinct
	// vertex sets are pruned (the paper uses 100 on the BIND network).
	MinFreq int
	// BeamWidth caps the number of pattern classes carried to the next
	// level (highest frequency first). 0 means no cap. NeMoFinder prunes by
	// repeated trees; we prune by beam, an approximation documented in
	// DESIGN.md.
	BeamWidth int
	// MaxOccPerClass caps the stored (and grown) occurrence list per class
	// by reservoir sampling. 0 means unlimited. Capping bounds memory and
	// time at meso-scale; because levels grow only from stored occurrences,
	// deeper levels' frequencies become lower bounds under a cap.
	MaxOccPerClass int
	// DenseBeamFraction is the share of beam slots reserved for the densest
	// (most-edge) classes rather than the most frequent. Density is a cheap
	// proxy for over-representation: at meso-scale, pure frequency floods
	// the beam with generic tree-like shapes while complex-like motifs
	// starve. 0 selects purely by frequency; 0.5 is a good meso-scale
	// setting.
	DenseBeamFraction float64
	// Seed drives occurrence subsampling when lists overflow.
	Seed int64
}

// DefaultConfig mirrors the paper's mining setup at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		MinSize:           3,
		MaxSize:           20,
		MinFreq:           100,
		BeamWidth:         60,
		MaxOccPerClass:    400,
		DenseBeamFraction: 0.5,
		Seed:              1,
	}
}

// classState is a pattern class being grown at the current level.
type classState struct {
	pattern *graph.Dense
	occs    [][]int32 // pattern-ordered occurrences
	freq    int       // distinct vertex sets seen (may exceed len(occs))
}

// Find mines frequent connected patterns of g level-by-level: every class's
// occurrences are extended by one adjacent vertex, regrouped by isomorphism
// class, pruned by MinFreq, and capped by BeamWidth. It returns all classes
// in [MinSize, MaxSize] meeting MinFreq, smallest size first, most frequent
// first within a size. Uniqueness is left at -1; see ScoreUniqueness.
func Find(g *graph.Graph, cfg Config) []*Motif {
	if cfg.MinSize < 2 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.MinSize {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Adjacency bit matrix for O(1) edge tests during induced-subgraph
	// construction (the hottest inner loop at meso-scale).
	words := (g.N() + 63) / 64
	bitadj := make([]uint64, g.N()*words)
	for u := 0; u < g.N(); u++ {
		row := bitadj[u*words : (u+1)*words]
		for _, v := range g.Neighbors(u) {
			row[v>>6] |= 1 << uint(v&63)
		}
	}
	hasEdge := func(u, v int32) bool {
		return bitadj[int(u)*words+int(v>>6)]&(1<<uint(v&63)) != 0
	}
	induced := func(vs []int32) *graph.Dense {
		d := graph.NewDense(len(vs))
		for i := 1; i < len(vs); i++ {
			for j := 0; j < i; j++ {
				if hasEdge(vs[i], vs[j]) {
					d.AddEdge(i, j)
				}
			}
		}
		return d
	}

	// Level 2: the single-edge class.
	edgeClass := &classState{pattern: edgePattern()}
	for _, e := range g.Edges(nil) {
		edgeClass.occs = append(edgeClass.occs, []int32{e[0], e[1]})
	}
	edgeClass.freq = len(edgeClass.occs)
	level := []*classState{edgeClass}
	subsample(edgeClass, cfg.MaxOccPerClass, rng)

	var out []*Motif
	emit := func(cs *classState, size int) {
		if size >= cfg.MinSize && cs.freq >= cfg.MinFreq {
			out = append(out, &Motif{
				Pattern:     cs.pattern,
				Occurrences: cs.occs,
				Frequency:   cs.freq,
				Uniqueness:  -1,
			})
		}
	}
	if cfg.MinSize <= 2 && edgeClass.freq >= cfg.MinFreq {
		emit(edgeClass, 2)
	}

	for size := 3; size <= cfg.MaxSize && len(level) > 0; size++ {
		cl := graph.NewClassifier()
		next := map[int]*classState{}
		seenSets := map[string]bool{}
		sortedOcc := make([]int32, 0, size)
		keyBuf := make([]byte, 4*size)
		vsBuf := make([]int32, size)
		for _, cs := range level {
			for _, occ := range cs.occs {
				sortedOcc = append(sortedOcc[:0], occ...)
				sort.Slice(sortedOcc, func(i, j int) bool { return sortedOcc[i] < sortedOcc[j] })
				for _, v := range occ {
					for _, w := range g.Neighbors(int(v)) {
						if contains(occ, w) {
							continue
						}
						// Build the sorted candidate set (sortedOcc with w
						// inserted) and its dedup key without allocating.
						vs := vsBuf
						pos := 0
						for pos < len(sortedOcc) && sortedOcc[pos] < w {
							vs[pos] = sortedOcc[pos]
							pos++
						}
						vs[pos] = w
						copy(vs[pos+1:], sortedOcc[pos:])
						for i, x := range vs {
							keyBuf[4*i] = byte(x)
							keyBuf[4*i+1] = byte(x >> 8)
							keyBuf[4*i+2] = byte(x >> 16)
							keyBuf[4*i+3] = byte(x >> 24)
						}
						if seenSets[string(keyBuf)] {
							continue
						}
						seenSets[string(keyBuf)] = true
						d := induced(vs)
						id := cl.Classify(d)
						ns := next[id]
						if ns == nil {
							ns = &classState{pattern: cl.Rep(id)}
							next[id] = ns
						}
						ns.freq++
						// Reservoir-sample the occurrence list so the kept
						// occurrences are an unbiased sample of all distinct
						// vertex sets, not just the first ones discovered.
						slot := -1
						if cfg.MaxOccPerClass == 0 || len(ns.occs) < cfg.MaxOccPerClass {
							slot = len(ns.occs)
							ns.occs = append(ns.occs, nil)
						} else if r := rng.Intn(ns.freq); r < cfg.MaxOccPerClass {
							slot = r
						}
						if slot >= 0 {
							mp := cl.OccMapping(id, d)
							no := make([]int32, len(vs))
							for i := range vs {
								no[i] = vs[mp[i]]
							}
							ns.occs[slot] = no
						}
					}
				}
			}
		}
		// Prune and select the beam. Half the slots go to the most frequent
		// classes, half to the densest (most edges): density is the best
		// cheap proxy for over-representation, and pure frequency selection
		// floods the beam with generic tree-like shapes at meso-scale while
		// the complex-like motifs (the ones that survive the null model)
		// starve.
		var kept []*classState
		for _, ns := range next {
			if ns.freq >= cfg.MinFreq {
				kept = append(kept, ns)
			}
		}
		byFreq := func(i, j int) bool {
			if kept[i].freq != kept[j].freq {
				return kept[i].freq > kept[j].freq
			}
			return kept[i].pattern.String() < kept[j].pattern.String()
		}
		sort.Slice(kept, byFreq)
		if cfg.BeamWidth > 0 && len(kept) > cfg.BeamWidth {
			half := cfg.BeamWidth - int(float64(cfg.BeamWidth)*cfg.DenseBeamFraction)
			selected := make([]*classState, 0, cfg.BeamWidth)
			chosen := map[*classState]bool{}
			for _, ns := range kept[:half] {
				selected = append(selected, ns)
				chosen[ns] = true
			}
			rest := append([]*classState(nil), kept[half:]...)
			sort.Slice(rest, func(i, j int) bool {
				mi, mj := rest[i].pattern.M(), rest[j].pattern.M()
				if mi != mj {
					return mi > mj
				}
				if rest[i].freq != rest[j].freq {
					return rest[i].freq > rest[j].freq
				}
				return rest[i].pattern.String() < rest[j].pattern.String()
			})
			for _, ns := range rest {
				if len(selected) >= cfg.BeamWidth {
					break
				}
				if !chosen[ns] {
					selected = append(selected, ns)
				}
			}
			kept = selected
			sort.Slice(kept, byFreq)
		}
		for _, ns := range kept {
			emit(ns, size)
		}
		level = kept
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Frequency > out[j].Frequency
	})
	return out
}

// subsample truncates the occurrence list to max items chosen uniformly.
func subsample(cs *classState, max int, rng *rand.Rand) {
	if max <= 0 || len(cs.occs) <= max {
		return
	}
	rng.Shuffle(len(cs.occs), func(i, j int) {
		cs.occs[i], cs.occs[j] = cs.occs[j], cs.occs[i]
	})
	cs.occs = cs.occs[:max]
}

func edgePattern() *graph.Dense {
	d := graph.NewDense(2)
	d.AddEdge(0, 1)
	return d
}

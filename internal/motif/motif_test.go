package motif

import (
	"math/rand"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/randnet"
)

// ring returns a cycle graph of n vertices.
func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestEnumerateESUCountsCycle(t *testing.T) {
	// In C10, connected size-3 sets are exactly the 10 paths of 3
	// consecutive vertices.
	g := ring(10)
	count := 0
	EnumerateESU(g, 3, func(vs []int32) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("ESU size-3 sets in C10 = %d, want 10", count)
	}
}

func TestEnumerateESUCompleteGraph(t *testing.T) {
	// K5: every 3-subset is connected -> C(5,3) = 10.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
		}
	}
	count := 0
	seen := map[string]bool{}
	EnumerateESU(g, 3, func(vs []int32) bool {
		k := setKey(vs)
		if seen[k] {
			t.Fatalf("duplicate set %v", vs)
		}
		seen[k] = true
		count++
		return true
	})
	if count != 10 {
		t.Errorf("ESU size-3 sets in K5 = %d, want 10", count)
	}
}

func TestEnumerateESUEarlyStop(t *testing.T) {
	g := ring(50)
	count := 0
	EnumerateESU(g, 3, func(vs []int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop ignored: %d", count)
	}
}

func TestEnumerateESUMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randnet.ErdosRenyi(12, 20, rng)
		for k := 2; k <= 4; k++ {
			esu := 0
			EnumerateESU(g, k, func(vs []int32) bool { esu++; return true })
			want := bruteForceConnectedSets(g, k)
			if esu != want {
				t.Fatalf("trial %d k=%d: ESU=%d brute=%d", trial, k, esu, want)
			}
		}
	}
}

// bruteForceConnectedSets counts connected induced size-k subgraph vertex
// sets by enumerating all subsets.
func bruteForceConnectedSets(g *graph.Graph, k int) int {
	n := g.N()
	count := 0
	var vs []int32
	var rec func(start int)
	rec = func(start int) {
		if len(vs) == k {
			if g.Induced(vs).Connected() {
				count++
			}
			return
		}
		for v := start; v < n; v++ {
			vs = append(vs, int32(v))
			rec(v + 1)
			vs = vs[:len(vs)-1]
		}
	}
	rec(0)
	return count
}

func TestCensusESUTriangleVsPath(t *testing.T) {
	// Triangle with a tail: 0-1-2-0, 2-3.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	ms := CensusESU(g, 3, 0)
	if len(ms) != 2 {
		t.Fatalf("classes = %d, want 2 (triangle, path)", len(ms))
	}
	// Frequencies: paths {0,1,3? no}: connected 3-sets: {0,1,2} triangle,
	// {0,2,3} path, {1,2,3} path -> path freq 2, triangle freq 1.
	if ms[0].Frequency != 2 || ms[1].Frequency != 1 {
		t.Errorf("frequencies = %d,%d want 2,1", ms[0].Frequency, ms[1].Frequency)
	}
	if ms[0].Pattern.M() != 2 || ms[1].Pattern.M() != 3 {
		t.Errorf("patterns wrong: %v %v", ms[0].Pattern, ms[1].Pattern)
	}
}

func TestCensusOccurrenceOrderMatchesPattern(t *testing.T) {
	// Star S3: center 0, leaves 1..3. Size-3 subgraphs are paths with the
	// center in the middle. Occurrence order must map pattern roles.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ms := CensusESU(g, 3, 0)
	if len(ms) != 1 {
		t.Fatalf("classes = %d", len(ms))
	}
	m := ms[0]
	for k, occ := range m.Occurrences {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				pe := m.Pattern.HasEdge(i, j)
				ge := g.HasEdge(int(occ[i]), int(occ[j]))
				if pe != ge {
					t.Fatalf("occurrence %d: edge (%d,%d) mismatch", k, i, j)
				}
			}
		}
	}
}

func TestFindOnPlantedCliques(t *testing.T) {
	// A sparse background plus many planted 4-cliques: the miner must
	// report the 4-clique class with at least the planted frequency.
	rng := rand.New(rand.NewSource(5))
	g := graph.New(400)
	// background ring
	for i := 0; i < 400; i++ {
		g.AddEdge(i, (i+1)%400)
	}
	// 30 disjoint 4-cliques over vertices 0..119
	for c := 0; c < 30; c++ {
		base := c * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	_ = rng
	cfg := Config{MinSize: 3, MaxSize: 4, MinFreq: 25, BeamWidth: 0, MaxOccPerClass: 0, Seed: 1}
	ms := Find(g, cfg)
	var clique4 *Motif
	for _, m := range ms {
		if m.Size() == 4 && m.Pattern.M() == 6 {
			clique4 = m
		}
	}
	if clique4 == nil {
		t.Fatal("planted 4-clique class not found")
	}
	if clique4.Frequency < 30 {
		t.Errorf("4-clique frequency = %d, want >= 30", clique4.Frequency)
	}
	// Occurrences must be genuine cliques.
	for _, occ := range clique4.Occurrences {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if !g.HasEdge(int(occ[i]), int(occ[j])) {
					t.Fatalf("non-clique occurrence %v", occ)
				}
			}
		}
	}
}

func TestFindFrequencyMatchesESUWhenUncapped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randnet.ErdosRenyi(60, 120, rng)
	cfg := Config{MinSize: 3, MaxSize: 4, MinFreq: 1, BeamWidth: 0, MaxOccPerClass: 0, Seed: 1}
	mined := Find(g, cfg)
	for _, k := range []int{3, 4} {
		exact := CensusESU(g, k, 0)
		exactBy := map[string]int{}
		for _, m := range exact {
			exactBy[graph.CanonicalKey(m.Pattern)] = m.Frequency
		}
		for _, m := range mined {
			if m.Size() != k {
				continue
			}
			key := graph.CanonicalKey(m.Pattern)
			if exactBy[key] != m.Frequency {
				t.Errorf("k=%d pattern %v: mined freq %d, exact %d",
					k, m.Pattern, m.Frequency, exactBy[key])
			}
			delete(exactBy, key)
		}
		for key, f := range exactBy {
			t.Errorf("k=%d: exact class %x freq %d missed by miner", k, key, f)
		}
	}
}

func TestFindRespectsMinFreq(t *testing.T) {
	g := ring(30)
	cfg := Config{MinSize: 3, MaxSize: 5, MinFreq: 31, BeamWidth: 0, Seed: 1}
	if ms := Find(g, cfg); len(ms) != 0 {
		t.Errorf("threshold above any frequency still returned %d motifs", len(ms))
	}
	cfg.MinFreq = 30
	ms := Find(g, cfg)
	if len(ms) != 3 { // P3, P4, P5 paths each occur 30 times
		t.Errorf("got %d classes, want 3", len(ms))
	}
}

func TestFindBeamCapsClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randnet.ErdosRenyi(80, 240, rng)
	cfg := Config{MinSize: 4, MaxSize: 4, MinFreq: 2, BeamWidth: 3, MaxOccPerClass: 50, Seed: 1}
	ms := Find(g, cfg)
	if len(ms) > 3 {
		t.Errorf("beam width 3 exceeded: %d classes", len(ms))
	}
	for _, m := range ms {
		if len(m.Occurrences) > 50 {
			t.Errorf("occurrence cap exceeded: %d", len(m.Occurrences))
		}
		if m.Frequency < len(m.Occurrences) {
			t.Errorf("frequency %d < stored occurrences %d", m.Frequency, len(m.Occurrences))
		}
	}
}

func TestScoreUniquenessPlantedVsRandom(t *testing.T) {
	// Planted triangles in a sparse graph should be unique; in a dense
	// random graph triangles are expected and score low.
	g := graph.New(300)
	for i := 0; i < 300; i++ {
		g.AddEdge(i, (i+1)%300)
	}
	for c := 0; c < 40; c++ {
		base := 3 * c
		g.AddEdge(base, base+2) // close a triangle on the ring
	}
	ms := Find(g, Config{MinSize: 3, MaxSize: 3, MinFreq: 30, BeamWidth: 0, Seed: 1})
	var tri *Motif
	for _, m := range ms {
		if m.Pattern.M() == 3 {
			tri = m
		}
	}
	if tri == nil {
		t.Fatal("triangle class missing")
	}
	ScoreUniqueness(g, []*Motif{tri}, UniquenessConfig{Networks: 10, MaxSteps: 0, Seed: 3})
	if tri.Uniqueness < 0.9 {
		t.Errorf("planted triangle uniqueness = %.2f, want >= 0.9", tri.Uniqueness)
	}
}

func TestFilterUnique(t *testing.T) {
	ms := []*Motif{
		{Uniqueness: 0.99},
		{Uniqueness: 0.5},
		{Uniqueness: -1},
	}
	out := FilterUnique(ms, 0.95)
	if len(out) != 1 || out[0].Uniqueness != 0.99 {
		t.Errorf("filter wrong: %v", out)
	}
}

func TestMotifAccessors(t *testing.T) {
	p := graph.NewDense(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	m := &Motif{Pattern: p, Occurrences: [][]int32{{9, 4, 7}}, Frequency: 1, Uniqueness: 0.5}
	if m.Size() != 3 {
		t.Errorf("Size = %d", m.Size())
	}
	vs := m.VertexSet(0)
	if vs[0] != 4 || vs[1] != 7 || vs[2] != 9 {
		t.Errorf("VertexSet = %v", vs)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

package motif

import (
	"math/bits"
	"sort"

	"lamofinder/internal/graph"
	"lamofinder/internal/par"
)

// EnumerateESU enumerates every connected vertex set of size k exactly once
// (Wernicke's ESU algorithm, the core of FANMOD) and calls visit with the
// sorted vertex set. The slice passed to visit is scratch reused across
// subgraphs: copy it if it must outlive the call. visit may return false to
// stop the enumeration early.
func EnumerateESU(g *graph.Graph, k int, visit func(vs []int32) bool) {
	if k <= 0 {
		return
	}
	csr, bits := graph.NewCSR(g), graph.NewAdjBits(g)
	enumerateESURange(newESUScratch(csr, bits, k), 0, g.N(), visit)
}

// enumerateESURange enumerates every connected k-set whose ESU root (the
// set's smallest vertex) lies in [lo, hi), in ascending root order. The
// union over a partition of [0, n) is exactly the full enumeration, which
// is what lets the census fan roots out to workers. It reports whether the
// enumeration ran to completion (visit never returned false).
//
// The ranges, candidate order, and visit order are identical to the
// original map-and-slice formulation (TestCensusESUMatchesReference pins
// this); only the memory behavior changed — extension sets live in the
// scratch arena, exclusive neighborhoods come from word-level bitset
// kernels, and the inner loops are allocation-free.
func enumerateESURange(s *esuScratch, lo, hi int, visit func(vs []int32) bool) bool {
	for v := lo; v < hi; v++ {
		if !s.enumerateRoot(int32(v), visit) {
			return false
		}
	}
	return true
}

// enumerateRoot enumerates every connected k-set rooted at v (v is the
// minimum vertex of each set).
func (s *esuScratch) enumerateRoot(v int32, visit func(vs []int32) bool) bool {
	// Root extension set: neighbors of v greater than v, ascending.
	row := s.g.Neighbors(int(v))
	i := sort.Search(len(row), func(i int) bool { return row[i] > v })
	ext := row[i:]
	s.grow(len(ext))
	copy(s.ext, ext)
	s.top = len(ext)

	s.sub = append(s.sub[:0], v)
	// Depth-1 covered mask: the root and everything adjacent to it.
	cov := s.coveredAt(1)
	for i := range cov {
		cov[i] = 0
	}
	s.bits.OrRowInto(cov, int(v))
	return s.extend(0, s.top, visit)
}

// extend is the ESU recursion: consume the extension segment [extLo, extHi)
// of the arena back to front, building each child's extension segment at
// the arena top from the parent's remainder plus w's exclusive neighbors.
//
// The classic formulation re-checks each candidate against the subgraph,
// the extension set, and w; with the covered mask those checks collapse
// into one word-level and-not (see graph.AdjBits.ExclusiveInto) — an
// exclusive neighbor is never in the extension set, because every
// extension entry is adjacent to the current subgraph by construction.
func (s *esuScratch) extend(extLo, extHi int, visit func(vs []int32) bool) bool {
	if len(s.sub) == s.k {
		return visit(s.sortedSub())
	}
	depth := len(s.sub)
	root := int(s.sub[0])
	for extHi > extLo {
		w := s.ext[extHi-1]
		extHi--
		// Child extension = parent remainder + exclusive neighbors of w.
		cnt := s.bits.ExclusiveInto(s.cand, s.coveredAt(depth), int(w), root)
		childLo := s.top
		childHi := childLo + (extHi - extLo) + cnt
		s.grow(childHi)
		copy(s.ext[childLo:], s.ext[extLo:extHi])
		p := childLo + (extHi - extLo)
		for u := nextBit(s.cand, 0); u >= 0; u = nextBit(s.cand, u+1) {
			s.ext[p] = int32(u)
			p++
		}
		// Push w: stack the next covered mask and recurse.
		s.sub = append(s.sub, w)
		cov, next := s.coveredAt(depth), s.coveredAt(depth+1)
		copy(next, cov)
		s.bits.OrRowInto(next, int(w))
		s.top = childHi
		ok := s.extend(childLo, childHi, visit)
		s.top = childLo
		s.sub = s.sub[:depth]
		if !ok {
			return false
		}
	}
	return true
}

// nextBit returns the smallest set bit >= from in the word mask, or -1.
//
// alloc-budget: 0
func nextBit(words []uint64, from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(words) {
		return -1
	}
	w := words[wi] >> uint(from&63) << uint(from&63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(words) {
			return -1
		}
		w = words[wi]
	}
}

// esuRootChunk is the fixed number of ESU roots per work chunk. Chunk
// boundaries depend only on the graph size — never on the worker count —
// so chunk-ordered merging yields the same census at any parallelism.
const esuRootChunk = 64

// chunkCensus is one root chunk's private census: a local classifier plus
// per-class frequencies and capped occurrence lists. The classifier assigns
// ids densely in first-seen order, so the motifs slice is both the by-class
// index and the enumeration order — no map, no separate order list.
type chunkCensus struct {
	cl     *graph.Classifier
	motifs []*Motif // indexed by class id
}

// CensusESU counts, per isomorphism class, the connected induced size-k
// subgraphs of g, returning class representatives with frequencies and up to
// maxOcc stored occurrences per class (0 = store all). This is the exact
// small-k counterpart of the meso-scale miner. Roots are processed on
// GOMAXPROCS workers; see CensusESUParallel.
func CensusESU(g *graph.Graph, k, maxOcc int) []*Motif {
	return CensusESUParallel(g, k, maxOcc, 0)
}

// CensusESUParallel is CensusESU with an explicit worker count
// (0 = runtime.GOMAXPROCS(0)). Root vertices are partitioned into
// fixed-size chunks enumerated concurrently, each into a private census;
// the per-chunk results then merge serially in chunk order. Because the
// chunking is worker-independent and the merge is ordered, the output —
// class order, frequencies, and the identity and order of stored
// occurrences — is the same at every parallelism level.
//
// The CSR and adjacency-bitmap views are built once and shared read-only
// by every chunk worker; each worker owns an esuScratch arena and a
// scratch Dense, so the per-subgraph loop allocates nothing.
func CensusESUParallel(g *graph.Graph, k, maxOcc, workers int) []*Motif {
	if k <= 0 {
		return nil
	}
	n := g.N()
	csr, bits := graph.NewCSR(g), graph.NewAdjBits(g)
	chunks := make([]*chunkCensus, par.NumChunks(n, esuRootChunk))
	par.Chunks(n, esuRootChunk, workers, func(c, lo, hi int) {
		cc := &chunkCensus{cl: graph.NewClassifier()}
		scratch := newESUScratch(csr, bits, k)
		var d graph.Dense
		var arena graph.OccArena
		enumerateESURange(scratch, lo, hi, func(vs []int32) bool {
			fillInduced(&d, bits, vs)
			id := cc.cl.Classify(&d)
			if id == len(cc.motifs) {
				cc.motifs = append(cc.motifs, &Motif{Pattern: cc.cl.Rep(id), Uniqueness: -1})
			}
			m := cc.motifs[id]
			m.Frequency++
			if maxOcc == 0 || len(m.Occurrences) < maxOcc {
				mp := cc.cl.OccMapping(id, &d)
				occ := arena.Take(vs)
				for i := range vs {
					occ[i] = vs[mp[i]]
				}
				m.Occurrences = append(m.Occurrences, occ)
			}
			return true
		})
		chunks[c] = cc
	})

	// Ordered merge: a global classifier assigns ids in chunk-then-first-seen
	// order (= enumeration order), and each local occurrence list is
	// translated from the local representative's vertex order to the global
	// one before concatenation.
	cl := graph.NewClassifier()
	var byClass []*Motif // indexed by global class id, in first-seen order
	for _, cc := range chunks {
		for _, lm := range cc.motifs {
			gid := cl.Classify(lm.Pattern)
			if gid == len(byClass) {
				byClass = append(byClass, &Motif{Pattern: cl.Rep(gid), Uniqueness: -1})
			}
			gm := byClass[gid]
			gm.Frequency += lm.Frequency
			if len(lm.Occurrences) == 0 || (maxOcc != 0 && len(gm.Occurrences) >= maxOcc) {
				continue
			}
			remap := graph.IsoMapping(gm.Pattern, lm.Pattern)
			for _, occ := range lm.Occurrences {
				if maxOcc != 0 && len(gm.Occurrences) >= maxOcc {
					break
				}
				no := make([]int32, len(occ))
				for i := range no {
					no[i] = occ[remap[i]]
				}
				gm.Occurrences = append(gm.Occurrences, no)
			}
		}
	}
	out := append([]*Motif(nil), byClass...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Frequency > out[j].Frequency })
	return out
}

func contains(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

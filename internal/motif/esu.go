package motif

import (
	"sort"

	"lamofinder/internal/graph"
)

// EnumerateESU enumerates every connected vertex set of size k exactly once
// (Wernicke's ESU algorithm, the core of FANMOD) and calls visit with the
// sorted vertex set. visit may return false to stop the enumeration early.
func EnumerateESU(g *graph.Graph, k int, visit func(vs []int32) bool) {
	if k <= 0 {
		return
	}
	n := g.N()
	sub := make([]int32, 0, k)
	stopped := false

	var extend func(ext []int32, root int32)
	extend = func(ext []int32, root int32) {
		if stopped {
			return
		}
		if len(sub) == k {
			vs := append([]int32(nil), sub...)
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			if !visit(vs) {
				stopped = true
			}
			return
		}
		// Iterate over a private copy: we shrink ext as we consume choices
		// to maintain ESU's "each set once" guarantee.
		for len(ext) > 0 {
			w := ext[len(ext)-1]
			ext = ext[:len(ext)-1]
			// Build the extension for the recursive call: ext plus the
			// exclusive neighbors of w (neighbors > root not adjacent to
			// the current subgraph).
			next := append([]int32(nil), ext...)
			for _, u := range g.Neighbors(int(w)) {
				if u <= root {
					continue
				}
				if contains(sub, u) || u == w {
					continue
				}
				// u must not be adjacent to any current subgraph vertex
				// (otherwise it is already in some extension set).
				excl := true
				for _, s := range sub {
					if g.HasEdge(int(u), int(s)) {
						excl = false
						break
					}
				}
				if excl && !contains(next, u) {
					next = append(next, u)
				}
			}
			sub = append(sub, w)
			extend(next, root)
			sub = sub[:len(sub)-1]
			if stopped {
				return
			}
		}
	}

	for v := 0; v < n; v++ {
		var ext []int32
		for _, u := range g.Neighbors(v) {
			if u > int32(v) {
				ext = append(ext, u)
			}
		}
		sub = append(sub[:0], int32(v))
		extend(ext, int32(v))
		if stopped {
			return
		}
	}
}

func contains(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// CensusESU counts, per isomorphism class, the connected induced size-k
// subgraphs of g, returning class representatives with frequencies and up to
// maxOcc stored occurrences per class (0 = store all). This is the exact
// small-k counterpart of the meso-scale miner.
func CensusESU(g *graph.Graph, k, maxOcc int) []*Motif {
	cl := graph.NewClassifier()
	byClass := map[int]*Motif{}
	EnumerateESU(g, k, func(vs []int32) bool {
		d := g.Induced(vs)
		id := cl.Classify(d)
		m := byClass[id]
		if m == nil {
			m = &Motif{Pattern: cl.Rep(id), Uniqueness: -1}
			byClass[id] = m
		}
		m.Frequency++
		if maxOcc == 0 || len(m.Occurrences) < maxOcc {
			mp := graph.IsoMapping(m.Pattern, d)
			occ := make([]int32, len(vs))
			for i := range vs {
				occ[i] = vs[mp[i]]
			}
			m.Occurrences = append(m.Occurrences, occ)
		}
		return true
	})
	out := make([]*Motif, 0, len(byClass))
	for _, m := range byClass {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frequency > out[j].Frequency })
	return out
}

package motif

import (
	"sort"

	"lamofinder/internal/graph"
	"lamofinder/internal/par"
)

// EnumerateESU enumerates every connected vertex set of size k exactly once
// (Wernicke's ESU algorithm, the core of FANMOD) and calls visit with the
// sorted vertex set. visit may return false to stop the enumeration early.
func EnumerateESU(g *graph.Graph, k int, visit func(vs []int32) bool) {
	if k <= 0 {
		return
	}
	enumerateESURange(g, k, 0, g.N(), visit)
}

// enumerateESURange enumerates every connected k-set whose ESU root (the
// set's smallest vertex) lies in [lo, hi), in ascending root order. The
// union over a partition of [0, n) is exactly the full enumeration, which
// is what lets the census fan roots out to workers. It reports whether the
// enumeration ran to completion (visit never returned false).
func enumerateESURange(g *graph.Graph, k, lo, hi int, visit func(vs []int32) bool) bool {
	sub := make([]int32, 0, k)
	stopped := false

	var extend func(ext []int32, root int32)
	extend = func(ext []int32, root int32) {
		if stopped {
			return
		}
		if len(sub) == k {
			vs := append([]int32(nil), sub...)
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			if !visit(vs) {
				stopped = true
			}
			return
		}
		// Iterate over a private copy: we shrink ext as we consume choices
		// to maintain ESU's "each set once" guarantee.
		for len(ext) > 0 {
			w := ext[len(ext)-1]
			ext = ext[:len(ext)-1]
			// Build the extension for the recursive call: ext plus the
			// exclusive neighbors of w (neighbors > root not adjacent to
			// the current subgraph).
			next := append([]int32(nil), ext...)
			for _, u := range g.Neighbors(int(w)) {
				if u <= root {
					continue
				}
				if contains(sub, u) || u == w {
					continue
				}
				// u must not be adjacent to any current subgraph vertex
				// (otherwise it is already in some extension set).
				excl := true
				for _, s := range sub {
					if g.HasEdge(int(u), int(s)) {
						excl = false
						break
					}
				}
				if excl && !contains(next, u) {
					next = append(next, u)
				}
			}
			sub = append(sub, w)
			extend(next, root)
			sub = sub[:len(sub)-1]
			if stopped {
				return
			}
		}
	}

	for v := lo; v < hi; v++ {
		var ext []int32
		for _, u := range g.Neighbors(v) {
			if u > int32(v) {
				ext = append(ext, u)
			}
		}
		sub = append(sub[:0], int32(v))
		extend(ext, int32(v))
		if stopped {
			return false
		}
	}
	return true
}

func contains(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// esuRootChunk is the fixed number of ESU roots per work chunk. Chunk
// boundaries depend only on the graph size — never on the worker count —
// so chunk-ordered merging yields the same census at any parallelism.
const esuRootChunk = 64

// chunkCensus is one root chunk's private census: a local classifier plus
// per-class frequencies and capped occurrence lists, with class ids in
// first-seen enumeration order.
type chunkCensus struct {
	cl     *graph.Classifier
	order  []int
	motifs map[int]*Motif
}

// CensusESU counts, per isomorphism class, the connected induced size-k
// subgraphs of g, returning class representatives with frequencies and up to
// maxOcc stored occurrences per class (0 = store all). This is the exact
// small-k counterpart of the meso-scale miner. Roots are processed on
// GOMAXPROCS workers; see CensusESUParallel.
func CensusESU(g *graph.Graph, k, maxOcc int) []*Motif {
	return CensusESUParallel(g, k, maxOcc, 0)
}

// CensusESUParallel is CensusESU with an explicit worker count
// (0 = runtime.GOMAXPROCS(0)). Root vertices are partitioned into
// fixed-size chunks enumerated concurrently, each into a private census;
// the per-chunk results then merge serially in chunk order. Because the
// chunking is worker-independent and the merge is ordered, the output —
// class order, frequencies, and the identity and order of stored
// occurrences — is the same at every parallelism level.
func CensusESUParallel(g *graph.Graph, k, maxOcc, workers int) []*Motif {
	if k <= 0 {
		return nil
	}
	n := g.N()
	chunks := make([]*chunkCensus, par.NumChunks(n, esuRootChunk))
	par.Chunks(n, esuRootChunk, workers, func(c, lo, hi int) {
		cc := &chunkCensus{cl: graph.NewClassifier(), motifs: map[int]*Motif{}}
		enumerateESURange(g, k, lo, hi, func(vs []int32) bool {
			d := g.Induced(vs)
			id := cc.cl.Classify(d)
			m := cc.motifs[id]
			if m == nil {
				m = &Motif{Pattern: cc.cl.Rep(id), Uniqueness: -1}
				cc.motifs[id] = m
				cc.order = append(cc.order, id)
			}
			m.Frequency++
			if maxOcc == 0 || len(m.Occurrences) < maxOcc {
				mp := cc.cl.OccMapping(id, d)
				occ := make([]int32, len(vs))
				for i := range vs {
					occ[i] = vs[mp[i]]
				}
				m.Occurrences = append(m.Occurrences, occ)
			}
			return true
		})
		chunks[c] = cc
	})

	// Ordered merge: a global classifier assigns ids in chunk-then-first-seen
	// order (= enumeration order), and each local occurrence list is
	// translated from the local representative's vertex order to the global
	// one before concatenation.
	cl := graph.NewClassifier()
	byClass := map[int]*Motif{}
	var order []int
	for _, cc := range chunks {
		for _, lid := range cc.order {
			lm := cc.motifs[lid]
			gid := cl.Classify(lm.Pattern)
			gm := byClass[gid]
			if gm == nil {
				gm = &Motif{Pattern: cl.Rep(gid), Uniqueness: -1}
				byClass[gid] = gm
				order = append(order, gid)
			}
			gm.Frequency += lm.Frequency
			if len(lm.Occurrences) == 0 || (maxOcc != 0 && len(gm.Occurrences) >= maxOcc) {
				continue
			}
			remap := graph.IsoMapping(gm.Pattern, lm.Pattern)
			for _, occ := range lm.Occurrences {
				if maxOcc != 0 && len(gm.Occurrences) >= maxOcc {
					break
				}
				no := make([]int32, len(occ))
				for i := range no {
					no[i] = occ[remap[i]]
				}
				gm.Occurrences = append(gm.Occurrences, no)
			}
		}
	}
	out := make([]*Motif, 0, len(order))
	for _, gid := range order {
		out = append(out, byClass[gid])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Frequency > out[j].Frequency })
	return out
}

package motif

import (
	"math"
	"math/rand"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/randnet"
)

func TestSampleConcentrationsFullProbabilityMatchesCensus(t *testing.T) {
	// With all probabilities 1, RAND-ESU degenerates to exact ESU.
	rng := rand.New(rand.NewSource(13))
	g := randnet.ErdosRenyi(40, 80, rng)
	probs := []float64{1, 1, 1}
	cs := SampleConcentrations(g, RandESUConfig{K: 3, Probabilities: probs, Seed: 1})
	exact := CensusESU(g, 3, 0)
	if len(cs) != len(exact) {
		t.Fatalf("classes %d vs %d", len(cs), len(exact))
	}
	byKey := map[string]int{}
	for _, m := range exact {
		byKey[graph.CanonicalKey(m.Pattern)] = m.Frequency
	}
	for _, c := range cs {
		want := byKey[graph.CanonicalKey(c.Pattern)]
		if c.Count != want {
			t.Errorf("class %v count %d, exact %d", c.Pattern, c.Count, want)
		}
		if math.Abs(c.EstimatedTotal-float64(want)) > 1e-9 {
			t.Errorf("class %v estimate %v, exact %d", c.Pattern, c.EstimatedTotal, want)
		}
	}
}

func TestSampleConcentrationsEstimatesUnbiased(t *testing.T) {
	// Average the extrapolated totals over seeds; they should approach the
	// exact count within a loose tolerance.
	rng := rand.New(rand.NewSource(14))
	g := randnet.BarabasiAlbert(150, 3, 2, rng)
	exact := CensusESU(g, 3, 0)
	exactBy := map[string]float64{}
	var totalExact float64
	for _, m := range exact {
		exactBy[graph.CanonicalKey(m.Pattern)] = float64(m.Frequency)
		totalExact += float64(m.Frequency)
	}
	est := map[string]float64{}
	const runs = 30
	for seed := int64(0); seed < runs; seed++ {
		for _, c := range SampleConcentrations(g, RandESUConfig{
			K: 3, SampleFraction: 0.3, Seed: seed,
		}) {
			est[graph.CanonicalKey(c.Pattern)] += c.EstimatedTotal / runs
		}
	}
	for key, want := range exactBy {
		if want < 50 {
			continue // rare classes: sampling noise dominates
		}
		got := est[key]
		if math.Abs(got-want)/want > 0.35 {
			t.Errorf("class %x: estimated %.0f, exact %.0f", key, got, want)
		}
	}
}

func TestSampleConcentrationsShareSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randnet.ErdosRenyi(80, 200, rng)
	cs := SampleConcentrations(g, RandESUConfig{K: 4, SampleFraction: 0.2, Seed: 9})
	if len(cs) == 0 {
		t.Fatal("no samples")
	}
	sum := 0.0
	for _, c := range cs {
		if c.Concentration < 0 || c.Concentration > 1 {
			t.Errorf("concentration out of range: %v", c.Concentration)
		}
		sum += c.Concentration
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("concentrations sum to %v", sum)
	}
}

func TestSampleConcentrationsDegenerate(t *testing.T) {
	g := ring(10)
	if cs := SampleConcentrations(g, RandESUConfig{K: 1}); cs != nil {
		t.Error("K=1 should return nil")
	}
	// Zero sampling fraction falls back to the default 0.1.
	cs := SampleConcentrations(g, RandESUConfig{K: 3, SampleFraction: -1, Seed: 2})
	for _, c := range cs {
		if c.Count <= 0 {
			t.Errorf("non-positive count: %+v", c)
		}
	}
}

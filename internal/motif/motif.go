// Package motif discovers network motifs: connected subgraph patterns that
// repeat in a network (frequency) and are over-represented relative to
// degree-preserving random networks (uniqueness). It provides an exact ESU
// enumerator (the mfinder/FANMOD baseline) for small sizes and a beam-style
// frequent-subgraph miner that reaches the meso-scale sizes (up to 20
// vertices) that NeMoFinder targets, keeping the occurrence lists the
// labeling stage needs.
package motif

import (
	"fmt"
	"sort"

	"lamofinder/internal/graph"
)

// Motif is a discovered pattern with the occurrences that support it.
type Motif struct {
	// Pattern is the class representative; occurrence vertex order follows
	// the pattern's vertex order.
	Pattern *graph.Dense
	// Occurrences holds, per occurrence, the graph vertex assigned to each
	// pattern vertex: Occurrences[k][i] plays the role of pattern vertex i.
	Occurrences [][]int32
	// Frequency is the number of distinct vertex sets observed for the
	// pattern (may exceed len(Occurrences) when lists are capped).
	Frequency int
	// Uniqueness is the fraction of randomized networks in which the real
	// frequency is >= the randomized frequency (set by ScoreUniqueness;
	// -1 until then).
	Uniqueness float64
}

// Size returns the number of vertices of the motif pattern.
func (m *Motif) Size() int { return m.Pattern.N() }

// String summarizes the motif.
func (m *Motif) String() string {
	return fmt.Sprintf("motif%s freq=%d uniq=%.2f", m.Pattern, m.Frequency, m.Uniqueness)
}

// VertexSet returns occurrence k's vertices sorted ascending.
func (m *Motif) VertexSet(k int) []int32 {
	vs := append([]int32(nil), m.Occurrences[k]...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// setKey encodes a sorted vertex set as a map key.
func setKey(vs []int32) string {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

package motif

import (
	"math/rand"
	"sort"

	"lamofinder/internal/graph"
)

// NeMoConfig controls the NeMoFinder-style miner: repeated-tree driven
// discovery (Chen et al., SIGKDD 2006 — the miner the ICDE paper feeds
// into LaMoFinder).
type NeMoConfig struct {
	MinSize, MaxSize int
	// MinFreq is the frequency threshold for both trees and subgraph
	// classes.
	MinFreq int
	// MaxTreeClasses caps the repeated-tree classes carried per level (by
	// frequency); 0 = unlimited.
	MaxTreeClasses int
	// MaxOccPerTree caps each tree class's stored occurrence list
	// (reservoir sampled); 0 = unlimited.
	MaxOccPerTree int
	Seed          int64
}

// DefaultNeMoConfig mirrors the SIGKDD paper's setup at laptop scale.
func DefaultNeMoConfig() NeMoConfig {
	return NeMoConfig{
		MinSize:        3,
		MaxSize:        12,
		MinFreq:        30,
		MaxTreeClasses: 120,
		MaxOccPerTree:  400,
		Seed:           1,
	}
}

// NeMoFind mines frequent connected subgraph classes by the repeated-tree
// strategy: size-k trees are grown level-wise and grouped by their AHU
// canonical form (linear-time, unlike general canonicalization); every
// connected subgraph has a spanning tree, so the vertex sets supporting
// frequent trees are exactly the candidate occurrences of frequent
// subgraph classes, which are then grouped by induced isomorphism class.
// Compared to the beam miner (Find), pruning happens in the cheap tree
// domain and general-graph classification is deferred to reporting.
func NeMoFind(g *graph.Graph, cfg NeMoConfig) []*Motif {
	if cfg.MinSize < 2 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.MinSize {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// treeClass tracks one repeated-tree class: its occurrences are vertex
	// sets whose spanning tree (the grown one) has this shape.
	type treeClass struct {
		key  string
		occs [][]int32 // sorted vertex sets
		freq int
	}

	// Level 2: the single edge tree.
	edgeKey, _ := graph.TreeCanonicalKey(edgePattern())
	lvl := map[string]*treeClass{}
	ec := &treeClass{key: edgeKey}
	for _, e := range g.Edges(nil) {
		ec.occs = append(ec.occs, []int32{e[0], e[1]})
	}
	ec.freq = len(ec.occs)
	if cfg.MaxOccPerTree > 0 && len(ec.occs) > cfg.MaxOccPerTree {
		rng.Shuffle(len(ec.occs), func(i, j int) { ec.occs[i], ec.occs[j] = ec.occs[j], ec.occs[i] })
		ec.occs = ec.occs[:cfg.MaxOccPerTree]
	}
	lvl[edgeKey] = ec

	var out []*Motif
	report := func(classes map[string]*treeClass, size int) {
		if size < cfg.MinSize {
			return
		}
		// Group all supporting vertex sets by induced subgraph class.
		cl := graph.NewClassifier()
		byClass := map[int]*Motif{}
		seen := map[string]bool{}
		for _, tc := range classes {
			for _, vs := range tc.occs {
				k := setKey(vs)
				if seen[k] {
					continue
				}
				seen[k] = true
				d := g.Induced(vs)
				id := cl.Classify(d)
				m := byClass[id]
				if m == nil {
					m = &Motif{Pattern: cl.Rep(id), Uniqueness: -1}
					byClass[id] = m
				}
				m.Frequency++
				mp := cl.OccMapping(id, d)
				occ := make([]int32, len(vs))
				for i := range vs {
					occ[i] = vs[mp[i]]
				}
				m.Occurrences = append(m.Occurrences, occ)
			}
		}
		for _, m := range byClass {
			if m.Frequency >= cfg.MinFreq {
				out = append(out, m)
			}
		}
	}
	report(lvl, 2)

	for size := 3; size <= cfg.MaxSize && len(lvl) > 0; size++ {
		next := map[string]*treeClass{}
		seenSets := map[string]bool{}
		for _, tc := range lvl {
			for _, occ := range tc.occs {
				for _, v := range occ {
					for _, w := range g.Neighbors(int(v)) {
						if contains(occ, w) {
							continue
						}
						vs := make([]int32, 0, size)
						vs = append(vs, occ...)
						vs = append(vs, w)
						sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
						k := setKey(vs)
						if seenSets[k] {
							continue
						}
						seenSets[k] = true
						// The grown spanning tree: a BFS tree of the induced
						// subgraph (cheap, deterministic per set).
						tree := g.Induced(vs).SpanningTree()
						key, ok := graph.TreeCanonicalKey(tree)
						if !ok {
							continue // disconnected set cannot happen by construction
						}
						nc := next[key]
						if nc == nil {
							nc = &treeClass{key: key}
							next[key] = nc
						}
						nc.freq++
						if cfg.MaxOccPerTree == 0 || len(nc.occs) < cfg.MaxOccPerTree {
							nc.occs = append(nc.occs, vs)
						} else if r := rng.Intn(nc.freq); r < cfg.MaxOccPerTree {
							nc.occs[r] = vs
						}
					}
				}
			}
		}
		// Prune infrequent trees; cap classes by frequency.
		var kept []*treeClass
		for _, nc := range next {
			if nc.freq >= cfg.MinFreq {
				kept = append(kept, nc)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].freq != kept[j].freq {
				return kept[i].freq > kept[j].freq
			}
			return kept[i].key < kept[j].key
		})
		if cfg.MaxTreeClasses > 0 && len(kept) > cfg.MaxTreeClasses {
			kept = kept[:cfg.MaxTreeClasses]
		}
		lvl = map[string]*treeClass{}
		for _, nc := range kept {
			lvl[nc.key] = nc
		}
		report(lvl, size)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Frequency > out[j].Frequency
	})
	return out
}

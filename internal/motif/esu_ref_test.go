package motif

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/randnet"
)

// refEnumerateESU is the historical map-and-slice formulation of the ESU
// enumeration, kept verbatim as the reference oracle for the arena/bitset
// kernels: the rewrite must reproduce its visit sequence — sets AND order —
// exactly, because enumeration order drives class ids, capped occurrence
// identity, and RNG stream consumption throughout the miner.
func refEnumerateESU(g *graph.Graph, k, lo, hi int, visit func(vs []int32) bool) bool {
	sub := make([]int32, 0, k)
	stopped := false

	var extend func(ext []int32, root int32)
	extend = func(ext []int32, root int32) {
		if stopped {
			return
		}
		if len(sub) == k {
			vs := append([]int32(nil), sub...)
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			if !visit(vs) {
				stopped = true
			}
			return
		}
		for len(ext) > 0 {
			w := ext[len(ext)-1]
			ext = ext[:len(ext)-1]
			next := append([]int32(nil), ext...)
			for _, u := range g.Neighbors(int(w)) {
				if u <= root {
					continue
				}
				if contains(sub, u) || u == w {
					continue
				}
				excl := true
				for _, s := range sub {
					if g.HasEdge(int(u), int(s)) {
						excl = false
						break
					}
				}
				if excl && !contains(next, u) {
					next = append(next, u)
				}
			}
			sub = append(sub, w)
			extend(next, root)
			sub = sub[:len(sub)-1]
			if stopped {
				return
			}
		}
	}

	for v := lo; v < hi; v++ {
		var ext []int32
		for _, u := range g.Neighbors(v) {
			if u > int32(v) {
				ext = append(ext, u)
			}
		}
		sub = append(sub[:0], int32(v))
		extend(ext, int32(v))
		if stopped {
			return false
		}
	}
	return true
}

// enumSignature serializes an enumeration's visit sequence.
func enumSignature(visits [][]int32) string {
	var b strings.Builder
	for _, vs := range visits {
		fmt.Fprintf(&b, "%v;", vs)
	}
	return b.String()
}

// censusSignature serializes a census byte-for-byte: pattern, frequency,
// and every stored occurrence in order.
func censusSignature(ms []*Motif) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%s f=%d occs=%v\n", m.Pattern.String(), m.Frequency, m.Occurrences)
	}
	return b.String()
}

// TestESUEnumerationMatchesReference drives the arena/bitset enumeration
// and the historical reference over 50 random Erdős–Rényi graphs and
// requires identical visit sequences, for every size in 3..5.
func TestESUEnumerationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(40)
		m := n + rng.Intn(3*n)
		g := randnet.ErdosRenyi(n, m, rng)
		for k := 3; k <= 5; k++ {
			var got, want [][]int32
			EnumerateESU(g, k, func(vs []int32) bool {
				got = append(got, append([]int32(nil), vs...))
				return true
			})
			refEnumerateESU(g, k, 0, g.N(), func(vs []int32) bool {
				want = append(want, vs)
				return true
			})
			gs, ws := enumSignature(got), enumSignature(want)
			if gs != ws {
				t.Fatalf("trial %d k=%d: enumeration diverged from reference\n got: %.200s\nwant: %.200s", trial, k, gs, ws)
			}
		}
	}
}

// refCensusESU is the historical census, reconstructed serially: the
// reference enumerator runs per fixed-size root chunk into a private
// map-keyed census, and chunks merge in order — exactly the map-era
// CensusESUParallel minus the concurrency.
func refCensusESU(g *graph.Graph, k, maxOcc int) []*Motif {
	type refChunk struct {
		cl     *graph.Classifier
		order  []int
		motifs map[int]*Motif
	}
	n := g.N()
	var chunks []*refChunk
	for lo := 0; lo < n; lo += esuRootChunk {
		hi := lo + esuRootChunk
		if hi > n {
			hi = n
		}
		cc := &refChunk{cl: graph.NewClassifier(), motifs: map[int]*Motif{}}
		refEnumerateESU(g, k, lo, hi, func(vs []int32) bool {
			d := g.Induced(vs)
			id := cc.cl.Classify(d)
			m := cc.motifs[id]
			if m == nil {
				m = &Motif{Pattern: cc.cl.Rep(id), Uniqueness: -1}
				cc.motifs[id] = m
				cc.order = append(cc.order, id)
			}
			m.Frequency++
			if maxOcc == 0 || len(m.Occurrences) < maxOcc {
				mp := cc.cl.OccMapping(id, d)
				occ := make([]int32, len(vs))
				for i := range vs {
					occ[i] = vs[mp[i]]
				}
				m.Occurrences = append(m.Occurrences, occ)
			}
			return true
		})
		chunks = append(chunks, cc)
	}

	cl := graph.NewClassifier()
	byClass := map[int]*Motif{}
	var order []int
	for _, cc := range chunks {
		for _, lid := range cc.order {
			lm := cc.motifs[lid]
			gid := cl.Classify(lm.Pattern)
			gm := byClass[gid]
			if gm == nil {
				gm = &Motif{Pattern: cl.Rep(gid), Uniqueness: -1}
				byClass[gid] = gm
				order = append(order, gid)
			}
			gm.Frequency += lm.Frequency
			if len(lm.Occurrences) == 0 || (maxOcc != 0 && len(gm.Occurrences) >= maxOcc) {
				continue
			}
			remap := graph.IsoMapping(gm.Pattern, lm.Pattern)
			for _, occ := range lm.Occurrences {
				if maxOcc != 0 && len(gm.Occurrences) >= maxOcc {
					break
				}
				no := make([]int32, len(occ))
				for i := range no {
					no[i] = occ[remap[i]]
				}
				gm.Occurrences = append(gm.Occurrences, no)
			}
		}
	}
	out := make([]*Motif, 0, len(order))
	for _, gid := range order {
		out = append(out, byClass[gid])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Frequency > out[j].Frequency })
	return out
}

// TestCensusESUMatchesReference builds the census over 50 random
// Erdős–Rényi graphs at every parallelism in {1, 2, 3, GOMAXPROCS} and
// under a shrunken GOMAXPROCS, and requires results byte-identical to the
// reconstructed map-era census: same classes in the same order, same
// frequencies, and the same capped occurrence lists. Some trials exceed
// the 64-root chunk size so the multi-chunk merge path is exercised too.
func TestCensusESUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(40)
		if trial%5 == 0 {
			n += 80 // multi-chunk: spans more than one 64-root chunk
		}
		m := n + rng.Intn(3*n)
		g := randnet.ErdosRenyi(n, m, rng)
		k := 3 + trial%3
		maxOcc := trial % 4 * 5 // exercise uncapped (0) and capped lists

		want := censusSignature(refCensusESU(g, k, maxOcc))

		workers := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
		for _, w := range workers {
			got := censusSignature(CensusESUParallel(g, k, maxOcc, w))
			if got != want {
				t.Fatalf("trial %d k=%d maxOcc=%d workers=%d: census diverged from reference\n got: %.300s\nwant: %.300s",
					trial, k, maxOcc, w, got, want)
			}
		}
		if trial%10 == 0 {
			prev := runtime.GOMAXPROCS(2)
			got := censusSignature(CensusESU(g, k, maxOcc))
			runtime.GOMAXPROCS(prev)
			if got != want {
				t.Fatalf("trial %d k=%d maxOcc=%d GOMAXPROCS=2: census diverged from reference", trial, k, maxOcc)
			}
		}
	}
}

package ontology

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomWeights returns arbitrary (not necessarily monotone) weights; the
// index must agree with the brute-force LCA under any weight vector.
func randomWeights(n int, rng *rand.Rand) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	return w
}

// checkParity compares the index against the ontology's brute-force
// LCA/Lin/Resnik on every term pair (floats must match exactly: the index
// replays the same arithmetic on the same LCA term).
func checkParity(t *testing.T, o *Ontology, w Weights, x *LCAIndex) {
	t.Helper()
	n := o.NumTerms()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			want := o.LCA(w, a, b)
			if got := x.LCA(a, b); got != want {
				t.Fatalf("LCA(%d,%d): index %d, brute %d", a, b, got, want)
			}
			if got, want := x.Lin(a, b), o.Lin(w, a, b); got != want {
				t.Fatalf("Lin(%d,%d): index %v, brute %v", a, b, got, want)
			}
			if got, want := x.Resnik(a, b), o.Resnik(w, a, b); got != want {
				t.Fatalf("Resnik(%d,%d): index %v, brute %v", a, b, got, want)
			}
		}
	}
}

func TestLCAIndexMatchesBruteDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		cfg := DefaultSyntheticConfig("X", 40+rng.Intn(60))
		o := Synthetic(cfg, rng) // MultiParentProb 0.15: a true DAG
		var w Weights
		if trial%2 == 0 {
			direct := make([]int, o.NumTerms())
			for i := 0; i < o.NumTerms(); i++ {
				direct[i] = rng.Intn(5)
			}
			w = o.ComputeWeights(direct)
		} else {
			w = randomWeights(o.NumTerms(), rng)
		}
		checkParity(t, o, w, NewLCAIndex(o, w))
	}
}

func TestLCAIndexMatchesBruteForest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		cfg := DefaultSyntheticConfig("T", 40+rng.Intn(60))
		cfg.MultiParentProb = 0 // every term has exactly one parent: a tree
		o := Synthetic(cfg, rng)
		x := NewLCAIndex(o, randomWeights(o.NumTerms(), rng))
		if !x.forest {
			t.Fatal("single-parent ontology should take the forest fast path")
		}
		checkParity(t, o, x.w, x)
	}
}

func TestLCAIndexMultiRootForest(t *testing.T) {
	// Two disjoint trees: cross-tree pairs share no ancestor (LCA -1).
	b := NewBuilder()
	for i := 0; i < 8; i++ {
		b.AddTerm(fmt.Sprintf("A:%d", i), "")
	}
	for _, e := range [][2]int{{1, 0}, {2, 0}, {3, 1}, {5, 4}, {6, 4}, {7, 5}} {
		b.AddRelation(fmt.Sprintf("A:%d", e[0]), fmt.Sprintf("A:%d", e[1]), IsA)
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := NewLCAIndex(o, randomWeights(o.NumTerms(), rng))
	if !x.forest {
		t.Fatal("expected forest fast path")
	}
	if got := x.LCA(3, 7); got != -1 {
		t.Fatalf("cross-tree LCA = %d, want -1", got)
	}
	checkParity(t, o, x.w, x)
}

func TestAncestorsSharedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := Synthetic(DefaultSyntheticConfig("S", 80), rng)
	for tm := 0; tm < o.NumTerms(); tm++ {
		a1, a2 := o.Ancestors(tm), o.Ancestors(tm)
		if len(a1) != len(a2) {
			t.Fatalf("term %d: inconsistent ancestor lists", tm)
		}
		if len(a1) > 0 && &a1[0] != &a2[0] {
			t.Fatalf("term %d: Ancestors should return the shared precomputed slice", tm)
		}
		// Content parity with the bitset.
		want := 0
		o.anc[tm].each(func(x int) {
			if x == tm {
				return
			}
			if a1[want] != x {
				t.Fatalf("term %d: ancestor %d != bitset %d", tm, a1[want], x)
			}
			want++
		})
		if want != len(a1) {
			t.Fatalf("term %d: %d ancestors, bitset has %d", tm, len(a1), want)
		}
	}
}

// fuzzOntology derives a small DAG from raw bytes: term i's parent is
// data-chosen among earlier terms (acyclic by construction), with an
// optional second parent, and weights come from the remaining bytes.
func fuzzOntology(data []byte) (*Ontology, Weights) {
	if len(data) < 2 {
		return nil, nil
	}
	n := 2 + int(data[0])%22
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddTerm(fmt.Sprintf("F:%d", i), "")
	}
	k := 1
	next := func() int {
		if k >= len(data) {
			return 0
		}
		v := int(data[k])
		k++
		return v
	}
	for i := 1; i < n; i++ {
		p := next() % i
		b.AddRelation(fmt.Sprintf("F:%d", i), fmt.Sprintf("F:%d", p), IsA)
		if next()%4 == 0 { // second parent: exercise the DAG path
			if p2 := next() % i; p2 != p {
				b.AddRelation(fmt.Sprintf("F:%d", i), fmt.Sprintf("F:%d", p2), IsA)
			}
		}
	}
	o, err := b.Build()
	if err != nil {
		return nil, nil // unreachable: parents always precede children
	}
	w := make(Weights, n)
	for i := range w {
		w[i] = float64(next()) / 255
	}
	return o, w
}

// FuzzLCAIndex cross-checks the RMQ/packed-list index against an
// independent brute-force walk over the ancestor DAG.
func FuzzLCAIndex(f *testing.F) {
	f.Add([]byte{0, 1})
	f.Add([]byte{5, 0, 0, 1, 1, 0, 2, 200, 100, 50, 25, 12})
	f.Add([]byte{20, 0, 0, 1, 3, 0, 2, 0, 5, 1, 0, 3, 0, 7, 2, 1, 9, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 77})
	f.Add([]byte{9, 0, 1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 1, 8, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, w := fuzzOntology(data)
		if o == nil {
			return
		}
		x := NewLCAIndex(o, w)
		n := o.NumTerms()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				// Brute force: lexicographic (weight, index) min over the
				// explicit common-ancestor set, built by slice walks (no
				// shared code with either fast path).
				best := -1
				for _, c := range append(o.Ancestors(a), a) {
					if c != b && !o.IsAncestorOrSelf(c, b) {
						continue
					}
					if best < 0 || w[c] < w[best] || (w[c] == w[best] && c < best) {
						best = c
					}
				}
				if got := x.LCA(a, b); got != best {
					t.Fatalf("LCA(%d,%d): index %d, brute %d", a, b, got, best)
				}
				if got, want := x.Lin(a, b), o.Lin(w, a, b); got != want {
					t.Fatalf("Lin(%d,%d): index %v, brute %v", a, b, got, want)
				}
			}
		}
	})
}

package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseOBO reads a minimal subset of the OBO flat-file format — [Term]
// stanzas with id, name, is_a and relationship: part_of lines — and builds
// an Ontology. Obsolete terms (is_obsolete: true) are skipped.
func ParseOBO(r io.Reader) (*Ontology, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	type stanza struct {
		id, name string
		altIDs   []string
		isA      []string
		partOf   []string
		obsolete bool
	}
	altOf := map[string]string{} // alt_id -> primary id
	var cur *stanza
	inTerm := false
	flush := func() {
		if cur == nil || cur.id == "" || cur.obsolete {
			cur = nil
			return
		}
		b.AddTerm(cur.id, cur.name)
		for _, a := range cur.altIDs {
			altOf[a] = cur.id
		}
		for _, p := range cur.isA {
			b.AddRelation(cur.id, p, IsA)
		}
		for _, p := range cur.partOf {
			b.AddRelation(cur.id, p, PartOf)
		}
		cur = nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			flush()
			inTerm = line == "[Term]"
			if inTerm {
				cur = &stanza{}
			}
			continue
		}
		if !inTerm || cur == nil {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("obo: line %d: missing ':' in %q", lineNo, line)
		}
		val = strings.TrimSpace(val)
		// Strip trailing comments ("GO:0001 ! some name").
		if i := strings.Index(val, "!"); i >= 0 {
			val = strings.TrimSpace(val[:i])
		}
		switch strings.TrimSpace(key) {
		case "id":
			cur.id = val
		case "alt_id":
			cur.altIDs = append(cur.altIDs, val)
		case "name":
			cur.name = val
		case "is_a":
			cur.isA = append(cur.isA, val)
		case "is_obsolete":
			cur.obsolete = val == "true"
		case "relationship":
			rel, target, ok := strings.Cut(val, " ")
			if ok && strings.TrimSpace(rel) == "part_of" {
				cur.partOf = append(cur.partOf, strings.TrimSpace(target))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obo: %w", err)
	}
	flush()
	o, err := b.Build()
	if err != nil {
		return nil, err
	}
	for alt, primary := range altOf {
		o.addAlias(alt, primary)
	}
	return o, nil
}

// WriteOBO serializes the ontology in the minimal OBO subset understood by
// ParseOBO, with terms in index order.
func WriteOBO(w io.Writer, o *Ontology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "format-version: 1.2")
	for t := 0; t < o.NumTerms(); t++ {
		fmt.Fprintln(bw)
		fmt.Fprintln(bw, "[Term]")
		fmt.Fprintf(bw, "id: %s\n", o.ID(t))
		if o.Name(t) != "" {
			fmt.Fprintf(bw, "name: %s\n", o.Name(t))
		}
		parents := o.Parents(t)
		rels := o.ParentRels(t)
		idx := make([]int, len(parents))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return parents[idx[a]] < parents[idx[b]] })
		for _, i := range idx {
			if rels[i] == PartOf {
				fmt.Fprintf(bw, "relationship: part_of %s\n", o.ID(parents[i]))
			} else {
				fmt.Fprintf(bw, "is_a: %s\n", o.ID(parents[i]))
			}
		}
	}
	return bw.Flush()
}

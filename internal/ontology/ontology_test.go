package ontology

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1 builds the paper's Figure-1 example DAG (with the G08 is-a G05
// edge required by the text, Table 3 and Table 4 — see DESIGN.md for the
// Table 1 inconsistency this implies).
func figure1(t *testing.T) *Ontology {
	t.Helper()
	b := NewBuilder()
	for i := 1; i <= 11; i++ {
		b.AddTerm(gid(i), "")
	}
	rel := func(c, p int, r RelType) { b.AddRelation(gid(c), gid(p), r) }
	rel(2, 1, IsA)
	rel(3, 1, IsA)
	rel(4, 2, IsA)
	rel(5, 2, IsA)
	rel(5, 3, IsA)
	rel(6, 3, PartOf)
	rel(8, 3, IsA)
	rel(7, 4, IsA)
	rel(8, 4, IsA)
	rel(8, 5, IsA)
	rel(9, 5, IsA)
	rel(10, 5, IsA)
	rel(11, 5, IsA)
	rel(9, 6, PartOf)
	rel(10, 7, IsA)
	rel(10, 8, IsA)
	rel(11, 8, IsA)
	o, err := b.Build()
	if err != nil {
		t.Fatalf("figure1 build: %v", err)
	}
	return o
}

func gid(i int) string {
	return "G" + string([]byte{byte('0' + i/10), byte('0' + i%10)})
}

// figure1Direct is the "Num. of proteins annotated with t" column of Table 1.
func figure1Direct(o *Ontology) []int {
	counts := map[string]int{
		"G01": 0, "G02": 0, "G03": 20, "G04": 100, "G05": 70, "G06": 150,
		"G07": 10, "G08": 25, "G09": 100, "G10": 90, "G11": 20,
	}
	d := make([]int, o.NumTerms())
	for id, c := range counts {
		d[o.Index(id)] = c
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	i := b.AddTerm("A", "alpha")
	j := b.AddTerm("A", "") // merged
	if i != j {
		t.Fatalf("duplicate term got new index")
	}
	b.AddRelation("B", "A", IsA)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if o.NumTerms() != 2 || o.Name(o.Index("A")) != "alpha" {
		t.Errorf("terms=%d name=%q", o.NumTerms(), o.Name(o.Index("A")))
	}
	if o.Index("missing") != -1 {
		t.Error("missing term index should be -1")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder()
	b.AddRelation("A", "B", IsA)
	b.AddRelation("B", "C", IsA)
	b.AddRelation("C", "A", IsA)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestBuildRejectsSelfRelation(t *testing.T) {
	b := NewBuilder()
	b.AddRelation("A", "A", IsA)
	if _, err := b.Build(); err == nil {
		t.Fatal("self relation accepted")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	o := figure1(t)
	g10 := o.Index("G10")
	anc := o.Ancestors(g10)
	want := map[string]bool{"G01": true, "G02": true, "G03": true, "G04": true,
		"G05": true, "G07": true, "G08": true}
	if len(anc) != len(want) {
		t.Fatalf("ancestors of G10: got %d, want %d", len(anc), len(want))
	}
	for _, a := range anc {
		if !want[o.ID(a)] {
			t.Errorf("unexpected ancestor %s", o.ID(a))
		}
	}
	desc := o.Descendants(o.Index("G05"))
	wantD := map[string]bool{"G08": true, "G09": true, "G10": true, "G11": true}
	if len(desc) != len(wantD) {
		t.Fatalf("descendants of G05: %d, want %d", len(desc), len(wantD))
	}
	if !o.IsAncestorOrSelf(o.Index("G05"), o.Index("G10")) {
		t.Error("G05 should be ancestor of G10")
	}
	if o.IsAncestorOrSelf(o.Index("G10"), o.Index("G05")) {
		t.Error("G10 is not an ancestor of G05")
	}
}

func TestTable1WeightsExact(t *testing.T) {
	// Reproduces Table 1 of the paper. Two known deviations follow from the
	// G08 is-a G05 edge that Tables 3/4 require: G05's inclusive count is
	// 305 (paper prints 280) and its weight 0.52 (paper prints 0.48); G02's
	// row is unaffected. All other rows must match exactly.
	o := figure1(t)
	direct := figure1Direct(o)
	incl := o.InclusiveCounts(direct)
	w := o.ComputeWeights(direct)
	wantIncl := map[string]int{
		"G01": 585, "G02": 415, "G03": 475, "G04": 245, "G05": 305,
		"G06": 250, "G07": 100, "G08": 135, "G09": 100, "G10": 90, "G11": 20,
	}
	wantW := map[string]float64{
		"G01": 1.00, "G02": 0.71, "G03": 0.81, "G04": 0.42, "G05": 0.52,
		"G06": 0.43, "G07": 0.17, "G08": 0.23, "G09": 0.17, "G10": 0.15, "G11": 0.03,
	}
	for id, want := range wantIncl {
		if got := incl[o.Index(id)]; got != want {
			t.Errorf("inclusive count %s = %d, want %d", id, got, want)
		}
	}
	for id, want := range wantW {
		if got := w[o.Index(id)]; math.Abs(got-want) > 0.005 {
			t.Errorf("weight %s = %.4f, want %.2f", id, got, want)
		}
	}
}

func TestInformativeAndBorderFC(t *testing.T) {
	o := figure1(t)
	direct := figure1Direct(o)
	inf := o.InformativeFC(direct, 30)
	wantInf := map[string]bool{"G04": true, "G05": true, "G06": true, "G09": true, "G10": true}
	if len(inf) != len(wantInf) {
		t.Fatalf("informative FC: %d, want %d", len(inf), len(wantInf))
	}
	for _, t2 := range inf {
		if !wantInf[o.ID(t2)] {
			t.Errorf("unexpected informative FC %s", o.ID(t2))
		}
	}
	border := o.BorderInformativeFC(direct, 30)
	wantB := map[string]bool{"G04": true, "G05": true, "G06": true}
	if len(border) != len(wantB) {
		t.Fatalf("border informative FC: %v", idsOf(o, border))
	}
	for _, t2 := range border {
		if !wantB[o.ID(t2)] {
			t.Errorf("unexpected border FC %s", o.ID(t2))
		}
	}
}

func TestLabelSpace(t *testing.T) {
	o := figure1(t)
	direct := figure1Direct(o)
	space := o.LabelSpace(direct, 30)
	// Border = G04,G05,G06; descendants add G07..G11 and G09.
	want := map[string]bool{"G04": true, "G05": true, "G06": true, "G07": true,
		"G08": true, "G09": true, "G10": true, "G11": true}
	for i := 0; i < o.NumTerms(); i++ {
		if space[i] != want[o.ID(i)] {
			t.Errorf("label space %s = %v, want %v", o.ID(i), space[i], want[o.ID(i)])
		}
	}
}

func TestLCATable4Rows(t *testing.T) {
	// Table 4 of the paper: minimum common father labels per vertex.
	o := figure1(t)
	w := o.ComputeWeights(figure1Direct(o))
	lca := func(a, b string) string {
		r := o.LCA(w, o.Index(a), o.Index(b))
		return o.ID(r)
	}
	cases := []struct{ a, b, want string }{
		{"G04", "G09", "G02"}, // row 1
		{"G09", "G09", "G09"},
		{"G10", "G09", "G05"},
		{"G03", "G10", "G03"}, // row 2
		{"G03", "G11", "G03"},
		{"G10", "G10", "G10"},
		{"G10", "G11", "G08"},
		{"G08", "G03", "G03"}, // row 3
		{"G08", "G05", "G05"},
		{"G08", "G07", "G04"},
		{"G07", "G05", "G02"}, // row 4
		{"G09", "G05", "G05"},
	}
	for _, c := range cases {
		if got := lca(c.a, c.b); got != c.want {
			t.Errorf("LCA(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestAllMinimalCommonAncestors(t *testing.T) {
	o := figure1(t)
	// G10 and G11 share ancestors {G05, G08, ...}; minimal frontier: G05 is
	// an ancestor of G08? No: G08 is a child of G05, so G08 is below G05 and
	// the minimal set is {G08}.
	ms := o.AllMinimalCommonAncestors(o.Index("G10"), o.Index("G11"))
	if len(ms) != 1 || o.ID(ms[0]) != "G08" {
		t.Errorf("minimal common ancestors of G10,G11 = %v", idsOf(o, ms))
	}
	// G07 and G09: common ancestors {G01, G02}; minimal = {G02}.
	ms = o.AllMinimalCommonAncestors(o.Index("G07"), o.Index("G09"))
	if len(ms) != 1 || o.ID(ms[0]) != "G02" {
		t.Errorf("minimal common ancestors of G07,G09 = %v", idsOf(o, ms))
	}
}

func TestLinSimilarityProperties(t *testing.T) {
	o := figure1(t)
	w := o.ComputeWeights(figure1Direct(o))
	g9, g8, g10 := o.Index("G09"), o.Index("G08"), o.Index("G10")
	if got := o.Lin(w, g9, g9); got != 1 {
		t.Errorf("Lin(t,t) = %v, want 1", got)
	}
	if got := o.Lin(w, g9, g8); got != o.Lin(w, g8, g9) {
		t.Error("Lin not symmetric")
	}
	// G10 and G07: G07 is an ancestor of G10 with low weight -> high sim.
	g7 := o.Index("G07")
	hi := o.Lin(w, g10, g7)
	// G09 and G07 share only G02 -> low sim.
	lo := o.Lin(w, g9, g7)
	if hi <= lo {
		t.Errorf("Lin ordering wrong: parent-child %.3f <= remote %.3f", hi, lo)
	}
	for _, pair := range [][2]int{{g9, g8}, {g10, g7}, {g9, g7}} {
		v := o.Lin(w, pair[0], pair[1])
		if v < 0 || v > 1 {
			t.Errorf("Lin out of range: %v", v)
		}
	}
}

func TestLinValueSpotCheck(t *testing.T) {
	// Hand-computed: ST(G10,G07): lca=G07 (w=100/585).
	o := figure1(t)
	w := o.ComputeWeights(figure1Direct(o))
	wa := 90.0 / 585
	wb := 100.0 / 585
	want := 2 * math.Log(wb) / (math.Log(wa) + math.Log(wb))
	got := o.Lin(w, o.Index("G10"), o.Index("G07"))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Lin(G10,G07) = %v, want %v", got, want)
	}
}

func TestLinRootIsZero(t *testing.T) {
	o := figure1(t)
	w := o.ComputeWeights(figure1Direct(o))
	// G04 and G06 share only G01/G03? G04 anc: G02,G01; G06 anc: G03,G01.
	// Common: G01 (weight 1) -> ST = 0.
	if got := o.Lin(w, o.Index("G04"), o.Index("G06")); got != 0 {
		t.Errorf("Lin through root = %v, want 0", got)
	}
}

func TestCorpusBasics(t *testing.T) {
	o := figure1(t)
	c := NewCorpus(o, 3)
	c.Annotate(0, o.Index("G04"))
	c.Annotate(0, o.Index("G04")) // dup ignored
	c.Annotate(0, o.Index("G09"))
	c.Annotate(2, o.Index("G10"))
	if got := len(c.Terms(0)); got != 2 {
		t.Errorf("protein 0 has %d terms, want 2", got)
	}
	if c.Annotated(1) {
		t.Error("protein 1 should be unannotated")
	}
	if c.NumAnnotated() != 2 {
		t.Errorf("NumAnnotated = %d", c.NumAnnotated())
	}
	dc := c.DirectCounts()
	if dc[o.Index("G04")] != 1 || dc[o.Index("G10")] != 1 {
		t.Errorf("direct counts wrong: %v", dc)
	}
	cl := c.Clone()
	cl.Annotate(1, o.Index("G05"))
	if c.Annotated(1) {
		t.Error("clone shares storage")
	}
}

func TestMeanTermsPerProtein(t *testing.T) {
	o := figure1(t)
	c := NewCorpus(o, 2)
	c.Annotate(0, o.Index("G10")) // G10 + 7 ancestors = 8 terms
	if got := c.MeanTermsPerProtein(); math.Abs(got-8) > 1e-9 {
		t.Errorf("mean terms = %v, want 8", got)
	}
}

func TestOBORoundTrip(t *testing.T) {
	o := figure1(t)
	var sb strings.Builder
	if err := WriteOBO(&sb, o); err != nil {
		t.Fatal(err)
	}
	o2, err := ParseOBO(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if o2.NumTerms() != o.NumTerms() {
		t.Fatalf("terms: %d vs %d", o2.NumTerms(), o.NumTerms())
	}
	for i := 0; i < o.NumTerms(); i++ {
		id := o.ID(i)
		j := o2.Index(id)
		if j < 0 {
			t.Fatalf("term %s lost", id)
		}
		if len(o.Parents(i)) != len(o2.Parents(j)) {
			t.Errorf("term %s parent count differs", id)
		}
	}
	// Relation types survive.
	g6 := o2.Index("G06")
	if o2.ParentRels(g6)[0] != PartOf {
		t.Error("part_of relation lost in round trip")
	}
}

func TestParseOBOSkipsObsolete(t *testing.T) {
	src := `format-version: 1.2

[Term]
id: X:1
name: live

[Term]
id: X:2
name: dead
is_obsolete: true

[Typedef]
id: part_of
`
	o, err := ParseOBO(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if o.Index("X:2") != -1 || o.Index("X:1") == -1 {
		t.Errorf("obsolete handling wrong: %v %v", o.Index("X:1"), o.Index("X:2"))
	}
}

func TestParseOBOComments(t *testing.T) {
	src := `[Term]
id: X:1

[Term]
id: X:3

[Term]
id: X:2
is_a: X:1 ! the root
relationship: part_of X:3 ! comment stripped
`
	o, err := ParseOBO(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	x2 := o.Index("X:2")
	if len(o.Parents(x2)) != 2 {
		t.Fatalf("X:2 has %d parents, want 2", len(o.Parents(x2)))
	}
	// Duplicate (child,parent) pairs are deduped even across relation types.
	src2 := src + "is_a: X:3\n"
	o2, err := ParseOBO(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(o2.Parents(o2.Index("X:2"))); got != 2 {
		t.Errorf("duplicate parent pair not deduped: %d parents", got)
	}
}

func TestSyntheticOntologyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := Synthetic(DefaultSyntheticConfig("BP", 500), rng)
	if o.NumTerms() != 500 {
		t.Fatalf("terms = %d", o.NumTerms())
	}
	roots := o.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}
	// Every term reaches the root.
	for t2 := 1; t2 < o.NumTerms(); t2++ {
		if !o.IsAncestorOrSelf(0, t2) {
			t.Fatalf("term %d does not reach root", t2)
		}
	}
	if len(o.Leaves()) < 100 {
		t.Errorf("too few leaves: %d", len(o.Leaves()))
	}
}

func TestSyntheticAnnotationCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	o := Synthetic(DefaultSyntheticConfig("BP", 300), rng)
	c := NewCorpus(o, 1000)
	AnnotateRandom(c, 0.85, 1.5, rng)
	cov := float64(c.NumAnnotated()) / 1000
	if cov < 0.80 || cov > 0.90 {
		t.Errorf("coverage = %.3f, want ~0.85", cov)
	}
	if m := c.MeanTermsPerProtein(); m < 3 {
		t.Errorf("mean inherited terms = %.2f, want >= 3", m)
	}
}

func TestWeightsMonotoneUpDAG(t *testing.T) {
	// Property: a parent's weight is >= each child's weight.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := Synthetic(DefaultSyntheticConfig("X", 120), rng)
		c := NewCorpus(o, 400)
		AnnotateRandom(c, 0.9, 2, rng)
		w := o.ComputeWeights(c.DirectCounts())
		for t2 := 0; t2 < o.NumTerms(); t2++ {
			for _, p := range o.Parents(t2) {
				if w[p] < w[t2]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLCAWithLowestWeight(t *testing.T) {
	// Property: the LCA is a common ancestor and no common ancestor has a
	// strictly smaller weight.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := Synthetic(DefaultSyntheticConfig("X", 80), rng)
		c := NewCorpus(o, 300)
		AnnotateRandom(c, 0.9, 2, rng)
		w := o.ComputeWeights(c.DirectCounts())
		for trial := 0; trial < 30; trial++ {
			a, b := rng.Intn(80), rng.Intn(80)
			l := o.LCA(w, a, b)
			if l < 0 {
				return false // single-rooted: must share the root
			}
			if !o.IsAncestorOrSelf(l, a) || !o.IsAncestorOrSelf(l, b) {
				return false
			}
			for t2 := 0; t2 < 80; t2++ {
				if o.IsAncestorOrSelf(t2, a) && o.IsAncestorOrSelf(t2, b) && w[t2] < w[l]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func idsOf(o *Ontology, ts []int) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = o.ID(t)
	}
	return out
}

func TestResnikSimilarity(t *testing.T) {
	o := figure1(t)
	w := o.ComputeWeights(figure1Direct(o))
	g9, g8, g7, g10 := o.Index("G09"), o.Index("G08"), o.Index("G07"), o.Index("G10")
	// Root-only common ancestor: IC 0.
	if got := o.Resnik(w, o.Index("G04"), o.Index("G06")); got != 0 {
		t.Errorf("Resnik through root = %v", got)
	}
	// Deeper common ancestors score higher: lca(G10,G07)=G07 is more
	// specific than lca(G09,G08)=G05.
	if o.Resnik(w, g10, g7) <= o.Resnik(w, g9, g8) {
		t.Errorf("Resnik ordering wrong: %v <= %v",
			o.Resnik(w, g10, g7), o.Resnik(w, g9, g8))
	}
	// Exact value: -ln w(G05) for the G08/G09 pair.
	want := -math.Log(w[o.Index("G05")])
	if got := o.Resnik(w, g9, g8); math.Abs(got-want) > 1e-12 {
		t.Errorf("Resnik(G09,G08) = %v, want %v", got, want)
	}
	// Symmetric.
	if o.Resnik(w, g9, g8) != o.Resnik(w, g8, g9) {
		t.Error("Resnik not symmetric")
	}
}

func TestParseOBOAltIDs(t *testing.T) {
	src := `[Term]
id: X:1
alt_id: X:9
alt_id: X:8

[Term]
id: X:2
is_a: X:1
`
	o, err := ParseOBO(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if o.Index("X:9") != o.Index("X:1") || o.Index("X:8") != o.Index("X:1") {
		t.Errorf("alt_id not aliased: %d %d vs %d", o.Index("X:9"), o.Index("X:8"), o.Index("X:1"))
	}
	if o.Index("X:2") == o.Index("X:1") {
		t.Error("distinct terms merged")
	}
}

func TestGeneralizeToSlim(t *testing.T) {
	o := figure1(t)
	targets := []int{o.Index("G04"), o.Index("G05"), o.Index("G06")}
	// G10 descends from both G04 (via G07/G08) and G05.
	got := o.GeneralizeTo(o.Index("G10"), targets)
	if len(got) != 2 {
		t.Fatalf("GeneralizeTo(G10) = %v", idsOf(o, got))
	}
	// G09 descends from G05 and G06.
	got = o.GeneralizeTo(o.Index("G09"), targets)
	want := map[string]bool{"G05": true, "G06": true}
	for _, g := range got {
		if !want[o.ID(g)] {
			t.Errorf("unexpected slim target %s", o.ID(g))
		}
	}
	// A target maps to itself.
	got = o.GeneralizeTo(o.Index("G04"), targets)
	if len(got) != 1 || o.ID(got[0]) != "G04" {
		t.Errorf("self mapping = %v", idsOf(o, got))
	}
	// G03 is above every target: no cover.
	if got := o.GeneralizeTo(o.Index("G03"), targets); len(got) != 0 {
		t.Errorf("uncovered term mapped: %v", idsOf(o, got))
	}
}

func TestSlimCorpus(t *testing.T) {
	o := figure1(t)
	c := NewCorpus(o, 3)
	c.Annotate(0, o.Index("G10"))
	c.Annotate(1, o.Index("G03")) // above the slim: lost
	targets := []int{o.Index("G04"), o.Index("G05"), o.Index("G06")}
	s := SlimCorpus(c, targets)
	if got := len(s.Terms(0)); got != 2 {
		t.Errorf("protein 0 slim terms = %d, want 2", got)
	}
	if s.Annotated(1) {
		t.Error("above-slim annotation survived")
	}
	if s.Annotated(2) {
		t.Error("unannotated protein gained terms")
	}
}

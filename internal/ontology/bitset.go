package ontology

import "math/bits"

// bitset is a fixed-capacity bit vector used for ancestor sets.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b bitset) set(i int)      { b.words[i>>6] |= 1 << uint(i&63) }
func (b bitset) get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) or(o bitset) {
	for i := range o.words {
		b.words[i] |= o.words[i]
	}
}

func (b bitset) and(o bitset) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

func (b bitset) clone() bitset {
	c := bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// each calls f for every set bit in ascending order.
func (b bitset) each(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			f(i)
		}
	}
}

// eachAnd calls f for every bit set in both b and o, in ascending order,
// without materializing the intersection. This is the allocation-free
// core of the LCA lookups on the precomputed ancestor bitsets: the hot
// label-similarity path intersects ancestor sets millions of times, and
// clone()+and()+each() would allocate a fresh word slice per call.
func (b bitset) eachAnd(o bitset, f func(i int)) {
	words := b.words
	if len(o.words) < len(words) {
		words = words[:len(o.words)]
	}
	for wi := range words {
		w := words[wi] & o.words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			f(i)
		}
	}
}

func (b bitset) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

package ontology

import (
	"math"
	"math/bits"
)

// LCAIndex answers min-weight lowest-common-ancestor queries for a fixed
// (ontology, weights) pair without walking ancestor sets per query. It
// returns exactly what Ontology.LCA returns — the common ancestor
// minimizing (weight, term index) lexicographically, or -1 when the terms
// share no ancestor — but:
//
//   - On forest-shaped ontologies (every term has at most one parent, e.g.
//     the MIPS FunCat tree), queries are O(1): the tree LCA comes from an
//     Euler tour plus a sparse-table range-minimum query, and a precomputed
//     prefix minimum over each root chain turns the tree LCA into the
//     min-weight common ancestor.
//   - On general DAGs (GO terms can have several parents), each term's
//     ancestors-including-self are packed flat, sorted by (weight, index);
//     a query scans the shorter list and probes the other term's ancestor
//     bitset, so the first hit is the answer. Because weights grow toward
//     the roots, the minimum is typically found within the first few
//     probes.
//
// The index is immutable after construction and safe for concurrent use.
type LCAIndex struct {
	o *Ontology
	w Weights

	// Forest fast path (nil sparse table means DAG path).
	forest bool
	first  []int32   // term -> first Euler-tour position
	euler  []int32   // tour position -> term
	edepth []int32   // tour position -> depth
	sparse [][]int32 // sparse[j][i] = position of min depth in [i, i+2^j)
	upMin  []int32   // term -> (weight, index)-min over its root chain
	root   []int32   // term -> tree root (forest component)

	// DAG path: CSR-packed ancestor lists, each sorted by (weight, index).
	ancOff    []int32
	ancSorted []int32
}

// NewLCAIndex builds the index for o under weights w. Construction is
// O(n log n) on forests and O(sum |ancestors| log) on DAGs; both are far
// below one all-pairs LCA sweep, which is what the label-similarity layer
// effectively performs.
func NewLCAIndex(o *Ontology, w Weights) *LCAIndex {
	x := &LCAIndex{o: o, w: w}
	forest := true
	for t := range o.parents {
		if len(o.parents[t]) > 1 {
			forest = false
			break
		}
	}
	if forest {
		x.buildForest()
	} else {
		x.buildDAG()
	}
	return x
}

// Ontology returns the ontology the index was built over.
func (x *LCAIndex) Ontology() *Ontology { return x.o }

// Weights returns the weights the index was built with.
func (x *LCAIndex) Weights() Weights { return x.w }

// better returns whichever of u, v has the lexicographically smaller
// (weight, index) — the same tie-break Ontology.LCA's ascending scan with
// strict improvement produces.
//
// alloc-budget: 0
func (x *LCAIndex) better(u, v int32) int32 {
	wu, wv := x.w[u], x.w[v]
	if wu < wv || (wu == wv && u < v) {
		return u
	}
	return v
}

func (x *LCAIndex) buildForest() {
	o := x.o
	n := len(o.ids)
	x.forest = true
	x.first = make([]int32, n)
	x.upMin = make([]int32, n)
	x.root = make([]int32, n)
	depth := make([]int32, n)
	x.euler = make([]int32, 0, 2*n)
	x.edepth = make([]int32, 0, 2*n)

	// Iterative Euler tour per root: a term is appended on entry and again
	// after each child returns, so any tree LCA is the minimum-depth term
	// between the two first occurrences.
	type frame struct{ t, ci int }
	var stk []frame
	for r := 0; r < n; r++ {
		if len(o.parents[r]) != 0 {
			continue
		}
		depth[r] = 0
		x.root[r] = int32(r)
		x.upMin[r] = int32(r)
		x.first[r] = int32(len(x.euler))
		x.euler = append(x.euler, int32(r))
		x.edepth = append(x.edepth, 0)
		stk = append(stk[:0], frame{r, 0})
		for len(stk) > 0 {
			f := &stk[len(stk)-1]
			if f.ci < len(o.childs[f.t]) {
				c := o.childs[f.t][f.ci]
				f.ci++
				depth[c] = depth[f.t] + 1
				x.root[c] = int32(r)
				x.upMin[c] = x.better(x.upMin[f.t], int32(c))
				x.first[c] = int32(len(x.euler))
				x.euler = append(x.euler, int32(c))
				x.edepth = append(x.edepth, depth[c])
				stk = append(stk, frame{c, 0})
				continue
			}
			stk = stk[:len(stk)-1]
			if len(stk) > 0 {
				p := stk[len(stk)-1].t
				x.euler = append(x.euler, int32(p))
				x.edepth = append(x.edepth, depth[p])
			}
		}
	}

	// Sparse table over tour positions: levels double the window width.
	m := len(x.euler)
	if m == 0 {
		return
	}
	levels := bits.Len(uint(m))
	x.sparse = make([][]int32, levels)
	base := make([]int32, m)
	for i := range base {
		base[i] = int32(i)
	}
	x.sparse[0] = base
	for j := 1; j < levels; j++ {
		width := 1 << j
		prev := x.sparse[j-1]
		row := make([]int32, m-width+1)
		for i := range row {
			a, b := prev[i], prev[i+width/2]
			if x.edepth[b] < x.edepth[a] {
				a = b
			}
			row[i] = a
		}
		x.sparse[j] = row
	}
}

func (x *LCAIndex) buildDAG() {
	o := x.o
	n := len(o.ids)
	x.ancOff = make([]int32, n+1)
	total := 0
	for t := 0; t < n; t++ {
		total += o.anc[t].count()
	}
	x.ancSorted = make([]int32, 0, total)
	for t := 0; t < n; t++ {
		start := len(x.ancSorted)
		o.anc[t].each(func(a int) { x.ancSorted = append(x.ancSorted, int32(a)) })
		seg := x.ancSorted[start:]
		// Insertion sort by (weight, index): ancestor lists are short
		// (ontology depth times the multi-parent factor), and the input is
		// already index-sorted, which insertion sort exploits on ties.
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && x.better(seg[j-1], seg[j]) == seg[j]; j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
		x.ancOff[t+1] = int32(len(x.ancSorted))
	}
}

// treeLCA returns the forest lowest common ancestor of a and b, or -1 when
// they lie in different trees.
//
// alloc-budget: 0
func (x *LCAIndex) treeLCA(a, b int) int32 {
	if x.root[a] != x.root[b] {
		return -1
	}
	l, r := x.first[a], x.first[b]
	if l > r {
		l, r = r, l
	}
	k := bits.Len(uint(r-l+1)) - 1
	p, q := x.sparse[k][l], x.sparse[k][int(r)-(1<<k)+1]
	if x.edepth[q] < x.edepth[p] {
		p = q
	}
	return x.euler[p]
}

// LCA returns the common ancestor of ta and tb with the minimum
// (weight, index), or -1 when the terms share no ancestor. It agrees with
// Ontology.LCA under the index's weights on every input.
//
// alloc-budget: 0
func (x *LCAIndex) LCA(ta, tb int) int {
	if x.forest {
		// Common ancestors form the chain from the tree LCA to the root;
		// upMin carries the chain's (weight, index) minimum.
		t := x.treeLCA(ta, tb)
		if t < 0 {
			return -1
		}
		return int(x.upMin[t])
	}
	la := x.ancSorted[x.ancOff[ta]:x.ancOff[ta+1]]
	lb := x.ancSorted[x.ancOff[tb]:x.ancOff[tb+1]]
	probe := x.o.anc[tb]
	if len(lb) < len(la) {
		la, probe = lb, x.o.anc[ta]
	}
	for _, t := range la {
		if probe.get(int(t)) {
			return int(t)
		}
	}
	return -1
}

// Lin returns the Lin similarity of ta and tb under the index's weights,
// identical to Ontology.Lin (same LCA, same guards, same arithmetic) but
// without the per-query ancestor-set walk.
//
// alloc-budget: 0
func (x *LCAIndex) Lin(ta, tb int) float64 {
	if ta == tb {
		return 1
	}
	lca := x.LCA(ta, tb)
	if lca < 0 {
		return 0
	}
	w := x.w
	wl, wa, wb := w[lca], w[ta], w[tb]
	if wa <= 0 || wb <= 0 || wl <= 0 {
		return 0
	}
	den := math.Log(wa) + math.Log(wb)
	if den == 0 { // both terms carry the full corpus; indistinguishable
		return 1
	}
	st := 2 * math.Log(wl) / den
	if st <= 0 {
		return 0 // also normalizes the -0 arising when the LCA is a root
	}
	if st > 1 {
		return 1
	}
	return st
}

// Resnik returns the Resnik similarity of ta and tb under the index's
// weights, identical to Ontology.Resnik.
//
// alloc-budget: 0
func (x *LCAIndex) Resnik(ta, tb int) float64 {
	lca := x.LCA(ta, tb)
	if lca < 0 || x.w[lca] <= 0 {
		return 0
	}
	ic := -math.Log(x.w[lca])
	if ic < 0 {
		return 0
	}
	return ic
}

package ontology

import (
	"fmt"
	"math"
	"math/rand"
)

// SyntheticConfig controls GO-like DAG generation.
type SyntheticConfig struct {
	Prefix          string  // term id prefix, e.g. "BP" -> "BP:0000042"
	Terms           int     // total number of terms (>= 1)
	Branching       float64 // mean children per internal term (level growth)
	MultiParentProb float64 // chance of an extra parent (GO terms can have several)
	PartOfProb      float64 // chance an edge is part_of instead of is_a
}

// DefaultSyntheticConfig mimics a single GO branch at yeast scale.
func DefaultSyntheticConfig(prefix string, terms int) SyntheticConfig {
	return SyntheticConfig{
		Prefix:          prefix,
		Terms:           terms,
		Branching:       3.5,
		MultiParentProb: 0.15,
		PartOfProb:      0.2,
	}
}

// Synthetic generates a GO-like ontology branch: a rooted DAG whose level
// sizes grow geometrically, with occasional multi-parent terms and part-of
// edges. Term ids are Prefix:%07d in breadth-first order; index 0 is the
// root.
//
// invariant: the generated relation set is acyclic by construction (edges
// only point to shallower levels), so Build cannot fail; a failure would be
// a bug in this generator.
func Synthetic(cfg SyntheticConfig, rng *rand.Rand) *Ontology {
	if cfg.Terms < 1 {
		cfg.Terms = 1
	}
	if cfg.Branching < 1.1 {
		cfg.Branching = 1.1
	}
	b := NewBuilder()
	id := func(i int) string { return fmt.Sprintf("%s:%07d", cfg.Prefix, i) }
	b.AddTerm(id(0), cfg.Prefix+" root")

	// Levels of term indices; root is level 0.
	levels := [][]int{{0}}
	next := 1
	for next < cfg.Terms {
		prev := levels[len(levels)-1]
		size := int(float64(len(prev)) * cfg.Branching)
		if size < 2 {
			size = 2
		}
		if next+size > cfg.Terms {
			size = cfg.Terms - next
		}
		var lvl []int
		for k := 0; k < size; k++ {
			t := next
			next++
			b.AddTerm(id(t), fmt.Sprintf("%s term %d", cfg.Prefix, t))
			rel := IsA
			if rng.Float64() < cfg.PartOfProb {
				rel = PartOf
			}
			parent := prev[rng.Intn(len(prev))]
			b.AddRelation(id(t), id(parent), rel)
			if rng.Float64() < cfg.MultiParentProb {
				// Extra parent from any shallower level (not the same term).
				pl := levels[rng.Intn(len(levels))]
				p2 := pl[rng.Intn(len(pl))]
				if p2 != parent {
					rel2 := IsA
					if rng.Float64() < cfg.PartOfProb {
						rel2 = PartOf
					}
					b.AddRelation(id(t), id(p2), rel2)
				}
			}
			lvl = append(lvl, t)
		}
		levels = append(levels, lvl)
	}
	o, err := b.Build()
	if err != nil {
		// The construction above only adds child->shallower-level edges,
		// so a cycle is impossible; any failure is a programming error.
		panic(err)
	}
	return o
}

// Leaves returns the terms with no children.
func (o *Ontology) Leaves() []int {
	var out []int
	for t := range o.childs {
		if len(o.childs[t]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// AnnotateRandom fills corpus c with random direct annotations: each
// protein is annotated with probability coverage; annotated proteins get
// 1 + Poisson(meanExtra) direct terms drawn uniformly from the ontology's
// leaf terms (specific annotations, as biologists record them).
func AnnotateRandom(c *Corpus, coverage, meanExtra float64, rng *rand.Rand) {
	leaves := c.o.Leaves()
	if len(leaves) == 0 {
		return
	}
	for p := 0; p < c.NumProteins(); p++ {
		if rng.Float64() >= coverage {
			continue
		}
		k := 1 + poisson(meanExtra, rng)
		for i := 0; i < k; i++ {
			c.Annotate(p, leaves[rng.Intn(len(leaves))])
		}
	}
}

// poisson draws from a Poisson distribution with the given mean (Knuth).
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

package ontology

import "sort"

// Corpus holds the direct GO annotations of a set of proteins against one
// ontology. Protein indices are dense (0..NumProteins-1) and normally
// correspond to vertex ids of the PPI graph.
type Corpus struct {
	o     *Ontology
	terms [][]int32 // protein -> sorted unique direct term indices
}

// NewCorpus returns an empty annotation corpus for n proteins.
func NewCorpus(o *Ontology, n int) *Corpus {
	return &Corpus{o: o, terms: make([][]int32, n)}
}

// Ontology returns the ontology the corpus annotates against.
func (c *Corpus) Ontology() *Ontology { return c.o }

// NumProteins returns the number of proteins in the corpus.
func (c *Corpus) NumProteins() int { return len(c.terms) }

// Annotate records that protein p is directly annotated with term t.
// Duplicate annotations are ignored.
func (c *Corpus) Annotate(p, t int) {
	s := c.terms[p]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= int32(t) })
	if i < len(s) && s[i] == int32(t) {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = int32(t)
	c.terms[p] = s
}

// Terms returns the sorted direct annotation terms of protein p. The slice
// is owned by the corpus and must not be modified.
func (c *Corpus) Terms(p int) []int32 { return c.terms[p] }

// Annotated reports whether protein p has at least one direct annotation.
func (c *Corpus) Annotated(p int) bool { return len(c.terms[p]) > 0 }

// NumAnnotated returns the number of proteins with at least one annotation.
func (c *Corpus) NumAnnotated() int {
	n := 0
	for _, ts := range c.terms {
		if len(ts) > 0 {
			n++
		}
	}
	return n
}

// DirectCounts returns, per term, the number of proteins directly annotated
// with it (annotation occurrences; each protein-term pair counts once).
func (c *Corpus) DirectCounts() []int {
	counts := make([]int, c.o.NumTerms())
	for _, ts := range c.terms {
		for _, t := range ts {
			counts[t]++
		}
	}
	return counts
}

// MeanTermsPerProtein returns the average number of annotation terms per
// annotated protein, counting inherited ancestor terms, mirroring the
// paper's "average of 9.34 GO terms" statistic for yeast.
func (c *Corpus) MeanTermsPerProtein() float64 {
	total, n := 0, 0
	seen := newBitset(c.o.NumTerms())
	for _, ts := range c.terms {
		if len(ts) == 0 {
			continue
		}
		for i := range seen.words {
			seen.words[i] = 0
		}
		for _, t := range ts {
			seen.or(c.o.anc[int(t)])
		}
		total += seen.count()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Clone returns a deep copy of the corpus.
func (c *Corpus) Clone() *Corpus {
	n := &Corpus{o: c.o, terms: make([][]int32, len(c.terms))}
	for i, ts := range c.terms {
		n.terms[i] = append([]int32(nil), ts...)
	}
	return n
}

// Package ontology implements the Gene Ontology substrate of the paper: a
// directed acyclic graph of terms related by "is-a" and "part-of" edges,
// genome-specific term weights (Lord et al. 2002), informative and border
// informative functional classes (Zhou et al. 2002), minimum-weight lowest
// common ancestors, and Lin (1998) information-theoretic term similarity.
package ontology

import (
	"fmt"
	"math"
	"sort"
)

// RelType is the kind of child-to-parent relation in the GO DAG.
type RelType uint8

// Relation kinds, mirroring the two GO edge types the paper uses.
const (
	IsA RelType = iota
	PartOf
)

// String returns the OBO-style name of the relation.
func (r RelType) String() string {
	if r == PartOf {
		return "part_of"
	}
	return "is_a"
}

// Builder accumulates terms and relations and validates them into an
// immutable Ontology.
type Builder struct {
	ids    []string
	names  []string
	index  map[string]int
	pEdges [][2]int // child, parent (term indices)
	pRels  []RelType
}

// NewBuilder returns an empty ontology builder.
func NewBuilder() *Builder {
	return &Builder{index: map[string]int{}}
}

// AddTerm registers a term id with a human-readable name; repeated ids are
// merged (the first non-empty name wins). It returns the term's index.
func (b *Builder) AddTerm(id, name string) int {
	if i, ok := b.index[id]; ok {
		if b.names[i] == "" {
			b.names[i] = name
		}
		return i
	}
	i := len(b.ids)
	b.ids = append(b.ids, id)
	b.names = append(b.names, name)
	b.index[id] = i
	return i
}

// AddRelation records that child is related to parent (is-a or part-of).
// Unknown ids are created implicitly.
func (b *Builder) AddRelation(child, parent string, rel RelType) {
	c := b.AddTerm(child, "")
	p := b.AddTerm(parent, "")
	b.pEdges = append(b.pEdges, [2]int{c, p})
	b.pRels = append(b.pRels, rel)
}

// Build validates the accumulated structure (acyclic, no self-relations)
// and returns the immutable Ontology.
func (b *Builder) Build() (*Ontology, error) {
	n := len(b.ids)
	o := &Ontology{
		ids:     append([]string(nil), b.ids...),
		names:   append([]string(nil), b.names...),
		index:   make(map[string]int, n),
		parents: make([][]int, n),
		prels:   make([][]RelType, n),
		childs:  make([][]int, n),
	}
	for id, i := range b.index {
		o.index[id] = i
	}
	seen := make(map[[2]int]bool, len(b.pEdges))
	for k, e := range b.pEdges {
		c, p := e[0], e[1]
		if c == p {
			return nil, fmt.Errorf("ontology: self relation on term %q", b.ids[c])
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		o.parents[c] = append(o.parents[c], p)
		o.prels[c] = append(o.prels[c], b.pRels[k])
		o.childs[p] = append(o.childs[p], c)
	}
	topo, err := o.topoSort()
	if err != nil {
		return nil, err
	}
	o.topo = topo
	o.buildAncestors()
	return o, nil
}

// Ontology is an immutable GO-style DAG. Terms are referenced by dense
// integer indices; use Index/ID to convert.
type Ontology struct {
	ids     []string
	names   []string
	index   map[string]int
	parents [][]int
	prels   [][]RelType
	childs  [][]int
	topo    []int    // parents before children
	anc     []bitset // ancestors including self
	ancList [][]int  // proper ancestors, ascending, one shared backing array
}

// NumTerms returns the number of terms.
func (o *Ontology) NumTerms() int { return len(o.ids) }

// ID returns the identifier of term t.
func (o *Ontology) ID(t int) string { return o.ids[t] }

// Name returns the display name of term t (may be empty).
func (o *Ontology) Name(t int) string { return o.names[t] }

// Index returns the index of the term with the given id, or -1.
func (o *Ontology) Index(id string) int {
	if i, ok := o.index[id]; ok {
		return i
	}
	return -1
}

// Parents returns the parent indices of t. The slice is owned by the
// ontology and must not be modified.
func (o *Ontology) Parents(t int) []int { return o.parents[t] }

// ParentRels returns, parallel to Parents, the relation type of each edge.
func (o *Ontology) ParentRels(t int) []RelType { return o.prels[t] }

// Children returns the child indices of t.
func (o *Ontology) Children(t int) []int { return o.childs[t] }

// Roots returns all terms with no parents.
func (o *Ontology) Roots() []int {
	var rs []int
	for t := range o.parents {
		if len(o.parents[t]) == 0 {
			rs = append(rs, t)
		}
	}
	return rs
}

func (o *Ontology) topoSort() ([]int, error) {
	n := len(o.ids)
	indeg := make([]int, n) // number of parents not yet placed
	for t := 0; t < n; t++ {
		indeg[t] = len(o.parents[t])
	}
	queue := make([]int, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	topo := make([]int, 0, n)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		topo = append(topo, t)
		for _, c := range o.childs[t] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("ontology: cycle detected (%d of %d terms sorted)", len(topo), n)
	}
	return topo, nil
}

func (o *Ontology) buildAncestors() {
	n := len(o.ids)
	o.anc = make([]bitset, n)
	for _, t := range o.topo { // parents first
		bs := newBitset(n)
		bs.set(t)
		for _, p := range o.parents[t] {
			bs.or(o.anc[p])
		}
		o.anc[t] = bs
	}
	// Flat-pack the proper-ancestor lists once so Ancestors can hand out
	// shared subslices instead of materializing a fresh slice per call
	// (the labeler walks these on its border-marking pass).
	total := 0
	for t := 0; t < n; t++ {
		total += o.anc[t].count() - 1
	}
	flat := make([]int, total)
	o.ancList = make([][]int, n)
	pos := 0
	for t := 0; t < n; t++ {
		start := pos
		o.anc[t].each(func(a int) {
			if a != t {
				flat[pos] = a
				pos++
			}
		})
		o.ancList[t] = flat[start:pos:pos]
	}
}

// IsAncestorOrSelf reports whether a is an ancestor of d or a == d.
func (o *Ontology) IsAncestorOrSelf(a, d int) bool { return o.anc[d].get(a) }

// Ancestors returns the ancestors of t (excluding t), sorted ascending.
// The slice is precomputed and shared across calls: it is owned by the
// ontology and must be treated as read-only (copy before modifying).
//
// alloc-budget: 0
func (o *Ontology) Ancestors(t int) []int { return o.ancList[t] }

// Descendants returns the descendants of t (excluding t), sorted ascending.
func (o *Ontology) Descendants(t int) []int {
	var out []int
	for d := 0; d < len(o.ids); d++ {
		if d != t && o.anc[d].get(t) {
			out = append(out, d)
		}
	}
	return out
}

// Weights holds the genome-specific weight w(t) of each term: the fraction
// of annotation occurrences falling on t or any of its descendants
// (Lord et al.). Roots of a single-rooted ontology get weight 1.
type Weights []float64

// ComputeWeights derives term weights from direct annotation-occurrence
// counts (one count per protein-term annotation pair).
//
// invariant: len(direct) equals the ontology's term count — the counts are
// indexed by term; a mismatched slice is a caller bug, not a data state.
func (o *Ontology) ComputeWeights(direct []int) Weights {
	n := len(o.ids)
	if len(direct) != n {
		panic("ontology: direct count length mismatch")
	}
	incl := make([]int64, n)
	// Inclusive count via descendant sets: incl(t) = sum of direct counts
	// over t and all distinct descendants. Iterate terms; add direct[d] to
	// every ancestor of d (including d).
	for d := 0; d < n; d++ {
		if direct[d] == 0 {
			continue
		}
		o.anc[d].each(func(a int) { incl[a] += int64(direct[d]) })
	}
	var total int64
	for _, c := range direct {
		total += int64(c)
	}
	w := make(Weights, n)
	if total == 0 {
		return w
	}
	for t := 0; t < n; t++ {
		w[t] = float64(incl[t]) / float64(total)
	}
	return w
}

// InclusiveCounts returns, for each term, the total annotation occurrences
// on the term or any descendant — the "Num of proteins annotated with t and
// its descendants" column of the paper's Table 1.
func (o *Ontology) InclusiveCounts(direct []int) []int {
	n := len(o.ids)
	incl := make([]int, n)
	for d := 0; d < n; d++ {
		if direct[d] == 0 {
			continue
		}
		o.anc[d].each(func(a int) { incl[a] += direct[d] })
	}
	return incl
}

// InformativeFC returns the terms with at least minDirect directly annotated
// proteins (Zhou et al. use 30).
func (o *Ontology) InformativeFC(direct []int, minDirect int) []int {
	var out []int
	for t, c := range direct {
		if c >= minDirect {
			out = append(out, t)
		}
	}
	return out
}

// BorderInformativeFC returns the informative FC that have no informative
// proper ancestor: the most general usable labels.
func (o *Ontology) BorderInformativeFC(direct []int, minDirect int) []int {
	informative := make([]bool, len(o.ids))
	for t, c := range direct {
		informative[t] = c >= minDirect
	}
	var out []int
	for t := range o.ids {
		if !informative[t] {
			continue
		}
		ok := true
		o.anc[t].each(func(a int) {
			if a != t && informative[a] {
				ok = false
			}
		})
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// LabelSpace returns the set of terms eligible as motif labels: each border
// informative FC and all of their descendants (the paper's label set T),
// as a membership bitmap.
func (o *Ontology) LabelSpace(direct []int, minDirect int) []bool {
	border := o.BorderInformativeFC(direct, minDirect)
	inSpace := make([]bool, len(o.ids))
	for _, b := range border {
		inSpace[b] = true
		for _, d := range o.Descendants(b) {
			inSpace[d] = true
		}
	}
	return inSpace
}

// LCA returns the lowest common ancestor of ta and tb: the common ancestor
// (terms count as their own ancestors) with the minimum weight, i.e. the
// most specific shared term. Ties break toward the smaller index. It
// returns -1 when the terms share no ancestor (distinct ontology roots).
func (o *Ontology) LCA(w Weights, ta, tb int) int {
	best := -1
	bw := math.Inf(1)
	o.anc[ta].eachAnd(o.anc[tb], func(t int) {
		if w[t] < bw {
			best, bw = t, w[t]
		}
	})
	return best
}

// AllMinimalCommonAncestors returns every common ancestor of ta and tb that
// has no common-ancestor descendant — the full frontier of "minimum common
// father" terms, used by the least-general labeling scheme.
func (o *Ontology) AllMinimalCommonAncestors(ta, tb int) []int {
	var cand []int
	o.anc[ta].eachAnd(o.anc[tb], func(t int) { cand = append(cand, t) })
	var out []int
	for _, t := range cand {
		minimal := true
		for _, u := range cand {
			if u != t && o.anc[u].get(t) { // t is a proper ancestor of u
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// Lin returns the Lin (1998) similarity between ta and tb under weights w:
// ST(ta,tb) = 2 ln w(lca) / (ln w(ta) + ln w(tb)), in [0,1].
// Identical terms score 1; terms whose only shared ancestor is the root
// (weight 1) score 0; unrelated roots score 0.
func (o *Ontology) Lin(w Weights, ta, tb int) float64 {
	if ta == tb {
		return 1
	}
	lca := o.LCA(w, ta, tb)
	if lca < 0 {
		return 0
	}
	wl, wa, wb := w[lca], w[ta], w[tb]
	if wa <= 0 || wb <= 0 || wl <= 0 {
		return 0
	}
	den := math.Log(wa) + math.Log(wb)
	if den == 0 { // both terms carry the full corpus; indistinguishable
		return 1
	}
	st := 2 * math.Log(wl) / den
	if st <= 0 {
		return 0 // also normalizes the -0 arising when the LCA is a root
	}
	if st > 1 {
		return 1
	}
	return st
}

// Resnik returns the Resnik (1995) similarity between ta and tb under
// weights w: the information content -ln w(lca) of the lowest common
// ancestor. Lord et al. evaluated GO semantic similarity with this measure
// before the paper adopted Lin's normalized variant; it is unbounded above
// (more specific shared ancestors score higher) and 0 when the terms only
// share a root.
func (o *Ontology) Resnik(w Weights, ta, tb int) float64 {
	lca := o.LCA(w, ta, tb)
	if lca < 0 || w[lca] <= 0 {
		return 0
	}
	ic := -math.Log(w[lca])
	if ic < 0 {
		return 0
	}
	return ic
}

// GeneralizeTo maps a term onto a target slim set: the targets that are
// ancestors-or-self of the term. This is the paper's footnote-1 operation
// ("we generalized all function annotations to the top 13 key functions")
// and the standard GO-slim mapping. The result is sorted and deduplicated;
// empty when no target covers the term.
func (o *Ontology) GeneralizeTo(term int, targets []int) []int {
	var out []int
	for _, tgt := range targets {
		if o.IsAncestorOrSelf(tgt, term) {
			out = append(out, tgt)
		}
	}
	sort.Ints(out)
	return out
}

// SlimCorpus rewrites a corpus onto a slim target set: each protein's
// annotations become the covering targets of its direct terms. Proteins
// whose terms fall outside every target subtree end up unannotated.
func SlimCorpus(c *Corpus, targets []int) *Corpus {
	o := c.Ontology()
	out := NewCorpus(o, c.NumProteins())
	for p := 0; p < c.NumProteins(); p++ {
		for _, t := range c.Terms(p) {
			for _, g := range o.GeneralizeTo(int(t), targets) {
				out.Annotate(p, g)
			}
		}
	}
	return out
}

// addAlias makes Index resolve the alternative id to the primary term
// (OBO alt_id support). Existing primary ids are never overridden.
func (o *Ontology) addAlias(alt, primary string) {
	if _, exists := o.index[alt]; exists {
		return
	}
	if i, ok := o.index[primary]; ok {
		o.index[alt] = i
	}
}

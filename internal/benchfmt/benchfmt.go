// Package benchfmt defines the benchmark trajectory schema shared by the
// tools that write BENCH_<date>.json snapshots (cmd/benchjson parses
// `go test -bench` output; cmd/lamoload reports serve latency), so every
// trajectory point — microbenchmark or load test — is comparable under one
// format.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: a named measurement in ns/op plus the
// optional -benchmem columns.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is one dated trajectory point.
type Snapshot struct {
	Date       string    `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Command    string    `json:"command,omitempty"`
	Baseline   *Baseline `json:"baseline,omitempty"`
	Results    []Result  `json:"results"`
}

// Baseline records which prior snapshot this one was diffed against and the
// per-benchmark deltas, so a committed BENCH_*.json carries its own
// before/after story (EXPERIMENTS.md quotes these numbers).
type Baseline struct {
	File   string  `json:"file"`
	Date   string  `json:"date,omitempty"`
	Deltas []Delta `json:"deltas"`
}

// Delta is one benchmark's change versus the baseline, in percent:
// (new - old) / old * 100, so negative is an improvement. Memory columns
// are only present when both runs recorded them.
type Delta struct {
	Name      string   `json:"name"`
	NsPct     float64  `json:"ns_pct"`
	BytesPct  *float64 `json:"bytes_pct,omitempty"`
	AllocsPct *float64 `json:"allocs_pct,omitempty"`
}

// Diff compares results against a baseline snapshot, matching benchmarks by
// name (first occurrence wins on duplicates) and skipping benchmarks absent
// from either side. file labels where the baseline came from.
func Diff(base *Snapshot, file string, results []Result) *Baseline {
	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		if _, ok := old[r.Name]; !ok {
			old[r.Name] = r
		}
	}
	b := &Baseline{File: file, Date: base.Date}
	for _, r := range results {
		o, ok := old[r.Name]
		if !ok || o.NsPerOp == 0 {
			continue
		}
		d := Delta{Name: r.Name, NsPct: pct(r.NsPerOp, o.NsPerOp)}
		if o.BytesPerOp > 0 {
			p := pct(float64(r.BytesPerOp), float64(o.BytesPerOp))
			d.BytesPct = &p
		}
		if o.AllocsOp > 0 {
			p := pct(float64(r.AllocsOp), float64(o.AllocsOp))
			d.AllocsPct = &p
		}
		b.Deltas = append(b.Deltas, d)
	}
	return b
}

func pct(new, old float64) float64 {
	return math.Round((new-old)/old*100*10) / 10 // one decimal place
}

// ReadFile loads a snapshot from disk.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// LatestSnapshot returns the lexically greatest BENCH_*.json in dir other
// than exclude (dated names sort chronologically), or "" when none exists.
func LatestSnapshot(dir, exclude string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if name == exclude {
			continue
		}
		if name > best {
			best = name
		}
	}
	if best == "" {
		return "", nil
	}
	return filepath.Join(dir, best), nil
}

// NewSnapshot stamps a snapshot with today's date and the running
// toolchain/host facts.
func NewSnapshot(command string, results []Result) Snapshot {
	return Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    command,
		Results:    results,
	}
}

// Marshal renders the snapshot as indented JSON with a trailing newline —
// the on-disk BENCH_*.json form.
func (s *Snapshot) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the snapshot to path, or to stdout when path is "-".
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// MergeFile appends results to the snapshot stored at path, preserving its
// date and provenance fields. The command strings are joined so the merged
// file still says how each half was produced.
func MergeFile(path, command string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if command != "" {
		if snap.Command != "" {
			snap.Command += "; "
		}
		snap.Command += command
	}
	snap.Results = append(snap.Results, results...)
	return snap.WriteFile(path)
}

// ParseBench extracts Benchmark lines from `go test -bench` output:
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		res := Result{Procs: 1}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Procs = p
				res.Name = res.Name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res.Iterations = iters
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res.NsPerOp = ns
		for i := 3; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				res.AllocsOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// Package benchfmt defines the benchmark trajectory schema shared by the
// tools that write BENCH_<date>.json snapshots (cmd/benchjson parses
// `go test -bench` output; cmd/lamoload reports serve latency), so every
// trajectory point — microbenchmark or load test — is comparable under one
// format.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: a named measurement in ns/op plus the
// optional -benchmem columns.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is one dated trajectory point.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Command    string   `json:"command,omitempty"`
	Results    []Result `json:"results"`
}

// NewSnapshot stamps a snapshot with today's date and the running
// toolchain/host facts.
func NewSnapshot(command string, results []Result) Snapshot {
	return Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    command,
		Results:    results,
	}
}

// Marshal renders the snapshot as indented JSON with a trailing newline —
// the on-disk BENCH_*.json form.
func (s *Snapshot) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the snapshot to path, or to stdout when path is "-".
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// MergeFile appends results to the snapshot stored at path, preserving its
// date and provenance fields. The command strings are joined so the merged
// file still says how each half was produced.
func MergeFile(path, command string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if command != "" {
		if snap.Command != "" {
			snap.Command += "; "
		}
		snap.Command += command
	}
	snap.Results = append(snap.Results, results...)
	return snap.WriteFile(path)
}

// ParseBench extracts Benchmark lines from `go test -bench` output:
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		res := Result{Procs: 1}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Procs = p
				res.Name = res.Name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res.Iterations = iters
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res.NsPerOp = ns
		for i := 3; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				res.AllocsOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	log := `
goos: linux
goarch: amd64
pkg: lamofinder/internal/serve
BenchmarkHandlerPredictIndexed-8  	 2396444	       503.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkTopKHeap-4   	  186000	      6409 ns/op	     160 B/op	       1 allocs/op
BenchmarkNoMem   	     100	  15953524 ns/op
BenchmarkBadLine	garbage	fields here
PASS
ok  	lamofinder/internal/serve	4.3s
`
	got, err := ParseBench(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkHandlerPredictIndexed", Procs: 8, Iterations: 2396444, NsPerOp: 503.1},
		{Name: "BenchmarkTopKHeap", Procs: 4, Iterations: 186000, NsPerOp: 6409, BytesPerOp: 160, AllocsOp: 1},
		{Name: "BenchmarkNoMem", Procs: 1, Iterations: 100, NsPerOp: 15953524},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseBench:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")

	snap := NewSnapshot("go test -bench .", []Result{
		{Name: "BenchmarkA", Procs: 1, Iterations: 10, NsPerOp: 100},
	})
	if snap.Date == "" || snap.GoVersion == "" || snap.NumCPU <= 0 {
		t.Fatalf("NewSnapshot left provenance empty: %+v", snap)
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	loadResults := []Result{
		{Name: "LoadPredict/p50", Procs: 1, Iterations: 500, NsPerOp: 40000},
		{Name: "LoadPredict/p99", Procs: 1, Iterations: 500, NsPerOp: 90000},
	}
	if err := MergeFile(path, "lamoload -n 500", loadResults); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var merged Snapshot
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Date != snap.Date {
		t.Fatalf("merge changed the date: %q vs %q", merged.Date, snap.Date)
	}
	if want := "go test -bench .; lamoload -n 500"; merged.Command != want {
		t.Fatalf("merged command %q, want %q", merged.Command, want)
	}
	if len(merged.Results) != 3 || merged.Results[1].Name != "LoadPredict/p50" {
		t.Fatalf("merged results: %+v", merged.Results)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("snapshot file missing trailing newline")
	}
}

func TestMergeFileErrors(t *testing.T) {
	if err := MergeFile(filepath.Join(t.TempDir(), "absent.json"), "x", nil); err == nil {
		t.Fatal("merge into a missing file did not fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeFile(bad, "x", nil); err == nil {
		t.Fatal("merge into malformed JSON did not fail")
	}
}

func TestDiffPercentages(t *testing.T) {
	base := &Snapshot{
		Date: "2026-08-05",
		Results: []Result{
			{Name: "BenchmarkMiner", NsPerOp: 2000, BytesPerOp: 1000, AllocsOp: 200},
			{Name: "BenchmarkOnlyOld", NsPerOp: 10},
			{Name: "BenchmarkNoMem", NsPerOp: 100},
		},
	}
	cur := []Result{
		{Name: "BenchmarkMiner", NsPerOp: 1000, BytesPerOp: 500, AllocsOp: 10},
		{Name: "BenchmarkNoMem", NsPerOp: 150},
		{Name: "BenchmarkOnlyNew", NsPerOp: 5},
	}
	d := Diff(base, "BENCH_2026-08-05.json", cur)
	if d.File != "BENCH_2026-08-05.json" || d.Date != "2026-08-05" {
		t.Fatalf("baseline provenance: %+v", d)
	}
	if len(d.Deltas) != 2 {
		t.Fatalf("want 2 deltas (unmatched benchmarks skipped), got %+v", d.Deltas)
	}
	m := d.Deltas[0]
	if m.Name != "BenchmarkMiner" || m.NsPct != -50 {
		t.Fatalf("miner ns delta: %+v", m)
	}
	if m.BytesPct == nil || *m.BytesPct != -50 || m.AllocsPct == nil || *m.AllocsPct != -95 {
		t.Fatalf("miner mem deltas: %+v", m)
	}
	n := d.Deltas[1]
	if n.Name != "BenchmarkNoMem" || n.NsPct != 50 || n.BytesPct != nil || n.AllocsPct != nil {
		t.Fatalf("no-mem delta: %+v", n)
	}
}

func TestLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_2026-08-04-pre.json", "BENCH_2026-08-05-post.json",
		"BENCH_2026-08-08.json", "notes.json", "BENCH_raw.txt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The output file itself must be excluded so a rerun never diffs
	// against its own previous write.
	got, err := LatestSnapshot(dir, "BENCH_2026-08-08.json")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-05-post.json" {
		t.Fatalf("latest = %q", got)
	}
	empty := t.TempDir()
	if got, err := LatestSnapshot(empty, ""); err != nil || got != "" {
		t.Fatalf("empty dir: %q, %v", got, err)
	}
}

func TestSnapshotBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	p := -12.5
	snap := Snapshot{
		Date:    "2026-08-08",
		Results: []Result{{Name: "B", NsPerOp: 1}},
		Baseline: &Baseline{
			File:   "BENCH_old.json",
			Deltas: []Delta{{Name: "B", NsPct: 3, AllocsPct: &p}},
		},
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Baseline == nil || back.Baseline.File != "BENCH_old.json" ||
		len(back.Baseline.Deltas) != 1 || *back.Baseline.Deltas[0].AllocsPct != -12.5 {
		t.Fatalf("baseline round trip: %+v", back.Baseline)
	}
}

package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	log := `
goos: linux
goarch: amd64
pkg: lamofinder/internal/serve
BenchmarkHandlerPredictIndexed-8  	 2396444	       503.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkTopKHeap-4   	  186000	      6409 ns/op	     160 B/op	       1 allocs/op
BenchmarkNoMem   	     100	  15953524 ns/op
BenchmarkBadLine	garbage	fields here
PASS
ok  	lamofinder/internal/serve	4.3s
`
	got, err := ParseBench(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkHandlerPredictIndexed", Procs: 8, Iterations: 2396444, NsPerOp: 503.1},
		{Name: "BenchmarkTopKHeap", Procs: 4, Iterations: 186000, NsPerOp: 6409, BytesPerOp: 160, AllocsOp: 1},
		{Name: "BenchmarkNoMem", Procs: 1, Iterations: 100, NsPerOp: 15953524},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseBench:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")

	snap := NewSnapshot("go test -bench .", []Result{
		{Name: "BenchmarkA", Procs: 1, Iterations: 10, NsPerOp: 100},
	})
	if snap.Date == "" || snap.GoVersion == "" || snap.NumCPU <= 0 {
		t.Fatalf("NewSnapshot left provenance empty: %+v", snap)
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	loadResults := []Result{
		{Name: "LoadPredict/p50", Procs: 1, Iterations: 500, NsPerOp: 40000},
		{Name: "LoadPredict/p99", Procs: 1, Iterations: 500, NsPerOp: 90000},
	}
	if err := MergeFile(path, "lamoload -n 500", loadResults); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var merged Snapshot
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Date != snap.Date {
		t.Fatalf("merge changed the date: %q vs %q", merged.Date, snap.Date)
	}
	if want := "go test -bench .; lamoload -n 500"; merged.Command != want {
		t.Fatalf("merged command %q, want %q", merged.Command, want)
	}
	if len(merged.Results) != 3 || merged.Results[1].Name != "LoadPredict/p50" {
		t.Fatalf("merged results: %+v", merged.Results)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("snapshot file missing trailing newline")
	}
}

func TestMergeFileErrors(t *testing.T) {
	if err := MergeFile(filepath.Join(t.TempDir(), "absent.json"), "x", nil); err == nil {
		t.Fatal("merge into a missing file did not fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeFile(bad, "x", nil); err == nil {
		t.Fatal("merge into malformed JSON did not fail")
	}
}

package artifact

import (
	"fmt"

	"lamofinder/internal/par"
	"lamofinder/internal/predict"
)

// ScoreIndex is the build-time score index introduced by format version 2:
// the dense protein×function Eq.-5 score matrix plus the full ranking of
// every protein, both computed once at `lamod build` time. A serving
// process answers a prediction from the index with two slice reads — no
// scoring, no sorting, no allocation — and a v1 artifact without an index
// simply falls back to on-demand scoring.
//
// The index is derived state: it is a pure function of the rest of the
// artifact (the same scorer constructor every offline consumer uses), so
// an indexed and an unindexed artifact of the same model serve identical
// bytes. It is nevertheless carried inside the checksummed payload, not
// recomputed at load, because recomputing would put the expensive half of
// Eq. 5 back on the serving path the index exists to remove.
type ScoreIndex struct {
	numFunctions int
	// scores[p*numFunctions+f] is protein p's score for function f.
	scores []float64
	// ranked[p] is protein p's full ranking — predict.TopK(row p, 0) —
	// with scores materialized, so serving top-k is a subslice.
	ranked [][]predict.Ranked
}

// NumProteins returns the number of indexed proteins.
func (ix *ScoreIndex) NumProteins() int {
	if ix.numFunctions == 0 {
		return 0
	}
	return len(ix.scores) / ix.numFunctions
}

// Row returns protein p's dense score vector. The slice aliases the index
// and must be treated read-only.
func (ix *ScoreIndex) Row(p int) []float64 {
	return ix.scores[p*ix.numFunctions : (p+1)*ix.numFunctions]
}

// Ranking returns protein p's full descending ranking (positive scores
// only, ties toward the smaller function index). The slice aliases the
// index and must be treated read-only; a top-k answer is Ranking(p)[:k].
//
// alloc-budget: 0
func (ix *ScoreIndex) Ranking(p int) []predict.Ranked {
	return ix.ranked[p]
}

// BuildIndex scores every protein on the worker pool and attaches the
// result as the artifact's score index, upgrading its encoded form to
// format version 2. parallelism <= 0 uses GOMAXPROCS workers; the result
// is identical at any setting because each protein writes only its own
// row and ranking slot.
func (a *Artifact) BuildIndex(parallelism int) {
	scorer := a.NewScorer()
	n, nf := a.Graph.N(), a.NumFunctions
	ix := &ScoreIndex{
		numFunctions: nf,
		scores:       make([]float64, n*nf),
		ranked:       make([][]predict.Ranked, n),
	}
	par.Do(n, par.Workers(parallelism), func(p int) {
		row := scorer.Scores(p)
		copy(ix.scores[p*nf:(p+1)*nf], row)
		ix.ranked[p] = predict.TopK(row, 0)
	})
	a.Index = ix
	a.digest = "" // the encoded form (and so the identity) changed
}

// encodeIndex appends the score-index section (format v2 only).
func (a *Artifact) encodeIndex(e *enc) error {
	ix := a.Index
	n := a.Graph.N()
	if ix.numFunctions != a.NumFunctions || len(ix.scores) != n*a.NumFunctions || len(ix.ranked) != n {
		return fmt.Errorf("artifact: score index shape %d×%d does not match model %d×%d",
			len(ix.ranked), ix.numFunctions, n, a.NumFunctions)
	}
	e.u32(uint32(ix.numFunctions))
	for _, s := range ix.scores {
		e.f64(s)
	}
	for p := 0; p < n; p++ {
		rk := ix.ranked[p]
		e.u32(uint32(len(rk)))
		for _, r := range rk {
			e.u32(uint32(r.Function))
		}
	}
	return nil
}

// decodeIndex reads and validates the score-index section. The stored
// rankings are only function ids; scores come from the matrix, and the
// section is rejected unless each ranking is exactly predict.TopK of its
// row — complete over the positive scores, strictly ordered by descending
// score with ties toward the smaller function index.
func decodeIndex(d *dec, a *Artifact) (*ScoreIndex, error) {
	n := a.Graph.N()
	nf := d.count(0)
	if d.err == nil && nf != a.NumFunctions {
		d.fail("score index covers %d functions, model has %d", nf, a.NumFunctions)
	}
	if d.err != nil {
		return nil, d.err
	}
	ix := &ScoreIndex{numFunctions: nf}
	if got, want := len(d.b)-d.off, 8*n*nf; got < want {
		return nil, fmt.Errorf("artifact: score matrix needs %d bytes, %d remain", want, got)
	}
	ix.scores = make([]float64, n*nf)
	for i := range ix.scores {
		ix.scores[i] = d.f64()
	}
	ix.ranked = make([][]predict.Ranked, n)
	for p := 0; p < n && d.err == nil; p++ {
		row := ix.Row(p)
		positive := 0
		for _, s := range row {
			if s > 0 {
				positive++
			}
		}
		c := d.count(4)
		if d.err == nil && c != positive {
			d.fail("protein %d ranking lists %d functions, row has %d positive scores", p, c, positive)
		}
		rk := make([]predict.Ranked, 0, c)
		for i := 0; i < c && d.err == nil; i++ {
			f := d.index(nf, "ranked function")
			if d.err != nil {
				break
			}
			cur := predict.Ranked{Function: f, Score: row[f]}
			if cur.Score <= 0 {
				d.fail("protein %d ranks function %d with non-positive score", p, f)
				break
			}
			if i > 0 && !rankedBefore(rk[i-1], cur) {
				d.fail("protein %d ranking out of order at position %d", p, i)
				break
			}
			rk = append(rk, cur)
		}
		ix.ranked[p] = rk
	}
	if d.err != nil {
		return nil, d.err
	}
	return ix, nil
}

// rankedBefore mirrors predict's ranking order (descending score, ties to
// the smaller function index) for index validation.
func rankedBefore(a, b predict.Ranked) bool {
	if a.Score > b.Score {
		return true
	}
	if a.Score < b.Score {
		return false
	}
	return a.Function < b.Function
}

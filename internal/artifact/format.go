package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"time"

	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/obs"
	"lamofinder/internal/ontology"
)

// On-disk layout (all integers little-endian):
//
//	offset 0   magic   "LAMOART\n" (8 bytes)
//	offset 8   version uint32 (1, 2, 3 or 4)
//	offset 12  plen    uint64 — payload length
//	offset 20  payload plen bytes, canonical encoding of the Artifact
//	offset 20+plen     [versions 3/4 only] build-stats section
//	trailing 32 bytes  SHA-256 digest of every preceding byte
//
// A version-2 payload is the version-1 payload followed by the score-index
// section (see index.go): the dense protein×function score matrix and the
// per-protein full rankings precomputed at build time. Versions 3 and 4
// are versions 1 and 2 with a build-stats section (per-stage wall time,
// item counts and worker utilization from the mining pipeline) appended
// after the payload. Encode picks the lowest version that represents the
// artifact — index and stats each bump it — so every model still has
// exactly one canonical byte form and save→load→save stays byte-identical
// in all four formats.
//
// The payload encoding is a pure function of the Artifact's contents —
// every list is written in its canonical in-memory order (adjacency and
// annotation lists are kept sorted by their owners) and no map is ever
// iterated — so identical models produce identical bytes, and the digest
// doubles as a model identity for caches and client pinning. Build stats
// carry wall-clock measurements that differ between otherwise identical
// builds, so the identity digest is computed over header+payload only
// (for versions 1 and 2 that is exactly the stored trailer, preserving
// historical digests); the trailer still covers the stats section, so
// tampering with stats is detected even though it cannot change identity.

// Magic identifies a lamod artifact file.
const Magic = "LAMOART\n"

// Version1 is the unindexed format: model payload only.
const Version1 = 1

// Version is the indexed format, written for artifacts carrying a score
// index but no build stats.
const Version = 2

// Version3 and Version4 mirror versions 1 and 2 with a build-stats
// section appended after the payload. Load accepts versions 1-4.
const (
	Version3 = 3
	Version4 = 4
)

const headerLen = len(Magic) + 4 + 8

// maxCount caps any single length field read from an untrusted file, on
// top of the remaining-bytes check, so a corrupt length cannot force a
// multi-gigabyte allocation before the digest even gets verified.
const maxCount = 1 << 28

// Encode renders the artifact to its canonical byte form (header, payload,
// optional stats section, digest) and caches the identity digest.
func (a *Artifact) Encode() ([]byte, error) {
	e := &enc{}
	if err := a.encodePayload(e); err != nil {
		return nil, err
	}
	version := uint32(Version1)
	if a.Index != nil {
		version = Version
		if err := a.encodeIndex(e); err != nil {
			return nil, err
		}
	}
	if len(a.Stats) > 0 {
		version += 2 // 1→3, 2→4
	}
	out := make([]byte, 0, headerLen+len(e.buf)+sha256.Size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(e.buf)))
	out = append(out, e.buf...)
	// Identity stops at the payload: stats carry wall-clock noise that must
	// not distinguish otherwise identical models.
	id := sha256.Sum256(out)
	a.digest = hex.EncodeToString(id[:])
	if len(a.Stats) > 0 {
		se := &enc{}
		encodeStats(se, a.Stats)
		out = append(out, se.buf...)
	}
	sum := sha256.Sum256(out)
	out = append(out, sum[:]...)
	return out, nil
}

// Save writes the encoded artifact to w.
func (a *Artifact) Save(w io.Writer) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("artifact: write: %w", err)
	}
	return nil
}

// Load reads an artifact from r, verifying magic, version and digest.
func Load(r io.Reader) (*Artifact, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("artifact: read: %w", err)
	}
	return Decode(b)
}

// Decode verifies and decodes one encoded artifact.
func Decode(b []byte) (*Artifact, error) {
	if len(b) < headerLen+sha256.Size {
		return nil, fmt.Errorf("artifact: file truncated (%d bytes)", len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("artifact: not a lamod artifact (bad magic)")
	}
	version := binary.LittleEndian.Uint32(b[len(Magic):])
	if version < Version1 || version > Version4 {
		return nil, fmt.Errorf("artifact: format version %d, this build reads versions %d-%d", version, Version1, Version4)
	}
	hasStats := version >= Version3
	hasIndex := version == Version || version == Version4
	body := uint64(len(b) - headerLen - sha256.Size)
	plen := binary.LittleEndian.Uint64(b[len(Magic)+4:])
	if hasStats && plen >= body {
		return nil, fmt.Errorf("artifact: payload length %d leaves no stats section in %d-byte file", plen, len(b))
	}
	if !hasStats && plen != body {
		return nil, fmt.Errorf("artifact: payload length %d does not match file size %d", plen, len(b))
	}
	sum := sha256.Sum256(b[:len(b)-sha256.Size])
	var stored [sha256.Size]byte
	copy(stored[:], b[len(b)-sha256.Size:])
	if sum != stored {
		return nil, fmt.Errorf("artifact: digest mismatch — file corrupt or tampered")
	}
	d := &dec{b: b[headerLen : headerLen+int(plen)]}
	a, err := decodePayload(d)
	if err != nil {
		return nil, err
	}
	if hasIndex {
		ix, err := decodeIndex(d, a)
		if err != nil {
			return nil, err
		}
		a.Index = ix
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("artifact: %d trailing payload bytes", len(d.b)-d.off)
	}
	if hasStats {
		sd := &dec{b: b[headerLen+int(plen) : len(b)-sha256.Size]}
		a.Stats, err = decodeStats(sd)
		if err != nil {
			return nil, err
		}
		if sd.off != len(sd.b) {
			return nil, fmt.Errorf("artifact: %d trailing stats bytes", len(sd.b)-sd.off)
		}
	}
	id := sha256.Sum256(b[:headerLen+int(plen)])
	a.digest = hex.EncodeToString(id[:])
	return a, nil
}

func (a *Artifact) encodePayload(e *enc) error {
	e.str(a.Dataset)
	e.str(a.Note)

	// Network: names, then edges in the graph's canonical (u<v ascending)
	// order.
	n := a.Graph.N()
	e.u32(uint32(n))
	for v := 0; v < n; v++ {
		e.str(a.Graph.Name(v))
	}
	edges := a.Graph.Edges(nil)
	e.u32(uint32(len(edges)))
	for _, ed := range edges {
		e.u32(uint32(ed[0]))
		e.u32(uint32(ed[1]))
	}

	// Task functions.
	e.u32(uint32(a.NumFunctions))
	for _, name := range a.FunctionNames {
		e.str(name)
	}
	if len(a.Functions) != n {
		return fmt.Errorf("artifact: %d function rows for %d proteins", len(a.Functions), n)
	}
	for _, fs := range a.Functions {
		e.u32(uint32(len(fs)))
		for _, f := range fs {
			e.u32(uint32(f))
		}
	}

	// Ontology slice: terms in index order, then parent edges in each
	// term's stored order.
	nt := a.Ontology.NumTerms()
	e.u32(uint32(nt))
	for t := 0; t < nt; t++ {
		e.str(a.Ontology.ID(t))
		e.str(a.Ontology.Name(t))
	}
	for t := 0; t < nt; t++ {
		parents := a.Ontology.Parents(t)
		rels := a.Ontology.ParentRels(t)
		e.u32(uint32(len(parents)))
		for i, p := range parents {
			e.u32(uint32(p))
			e.u8(uint8(rels[i]))
		}
	}

	// Term weights.
	if len(a.Weights) != nt {
		return fmt.Errorf("artifact: %d weights for %d terms", len(a.Weights), nt)
	}
	for _, w := range a.Weights {
		e.f64(w)
	}

	// Corpus: per-protein sorted direct term lists.
	if a.Corpus.NumProteins() != n {
		return fmt.Errorf("artifact: corpus covers %d proteins, network has %d", a.Corpus.NumProteins(), n)
	}
	for p := 0; p < n; p++ {
		ts := a.Corpus.Terms(p)
		e.u32(uint32(len(ts)))
		for _, t := range ts {
			e.u32(uint32(t))
		}
	}

	// Border informative FC.
	e.u32(uint32(a.MinDirect))
	e.u32(uint32(len(a.Border)))
	for _, t := range a.Border {
		e.u32(uint32(t))
	}

	// Labeled motifs.
	e.u32(uint32(len(a.Motifs)))
	for _, lm := range a.Motifs {
		nv := lm.Size()
		e.u8(uint8(nv))
		var medges [][2]int
		for j := 0; j < nv; j++ {
			for i := 0; i < j; i++ {
				if lm.Pattern.HasEdge(i, j) {
					medges = append(medges, [2]int{i, j})
				}
			}
		}
		e.u32(uint32(len(medges)))
		for _, ed := range medges {
			e.u8(uint8(ed[0]))
			e.u8(uint8(ed[1]))
		}
		for v := 0; v < nv; v++ {
			ts := lm.Labels[v]
			e.u32(uint32(len(ts)))
			for _, t := range ts {
				e.u32(uint32(t))
			}
		}
		e.u32(uint32(len(lm.Occurrences)))
		for _, occ := range lm.Occurrences {
			for _, p := range occ {
				e.u32(uint32(p))
			}
		}
		e.u32(uint32(lm.Frequency))
		e.f64(lm.Uniqueness)
	}
	return nil
}

func decodePayload(d *dec) (*Artifact, error) {
	a := &Artifact{}
	a.Dataset = d.str()
	a.Note = d.str()

	n := d.count(1)
	if d.err != nil {
		return nil, d.err
	}
	a.Graph = graph.New(n)
	for v := 0; v < n; v++ {
		a.Graph.SetName(v, d.str())
	}
	m := d.count(8)
	for i := 0; i < m && d.err == nil; i++ {
		u := d.index(n, "edge endpoint")
		v := d.index(n, "edge endpoint")
		if d.err == nil && !a.Graph.AddEdge(u, v) {
			d.fail("duplicate or degenerate edge {%d,%d}", u, v)
		}
	}

	a.NumFunctions = d.count(4)
	for f := 0; f < a.NumFunctions && d.err == nil; f++ {
		a.FunctionNames = append(a.FunctionNames, d.str())
	}
	a.Functions = make([][]int, n)
	for p := 0; p < n && d.err == nil; p++ {
		c := d.count(4)
		for i := 0; i < c && d.err == nil; i++ {
			a.Functions[p] = append(a.Functions[p], d.index(a.NumFunctions, "function"))
		}
	}

	nt := d.count(8)
	b := ontology.NewBuilder()
	ids := make([]string, nt)
	for t := 0; t < nt && d.err == nil; t++ {
		ids[t] = d.str()
		b.AddTerm(ids[t], d.str())
	}
	type rel struct {
		child, parent int
		typ           ontology.RelType
	}
	var rels []rel
	for t := 0; t < nt && d.err == nil; t++ {
		pc := d.count(5)
		for i := 0; i < pc && d.err == nil; i++ {
			p := d.index(nt, "parent term")
			typ := ontology.RelType(d.u8())
			if typ != ontology.IsA && typ != ontology.PartOf {
				d.fail("unknown relation type %d", typ)
			}
			rels = append(rels, rel{t, p, typ})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	for _, r := range rels {
		b.AddRelation(ids[r.child], ids[r.parent], r.typ)
	}
	o, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if o.NumTerms() != nt {
		return nil, fmt.Errorf("artifact: duplicate term ids collapse %d terms to %d", nt, o.NumTerms())
	}
	a.Ontology = o

	a.Weights = make(ontology.Weights, nt)
	for t := 0; t < nt && d.err == nil; t++ {
		a.Weights[t] = d.f64()
	}

	a.Corpus = ontology.NewCorpus(o, n)
	for p := 0; p < n && d.err == nil; p++ {
		c := d.count(4)
		prev := -1
		for i := 0; i < c && d.err == nil; i++ {
			t := d.index(nt, "annotation term")
			if t <= prev {
				d.fail("annotation terms of protein %d not strictly ascending", p)
			}
			prev = t
			a.Corpus.Annotate(p, t)
		}
	}

	a.MinDirect = d.count(0)
	bc := d.count(4)
	for i := 0; i < bc && d.err == nil; i++ {
		a.Border = append(a.Border, d.index(nt, "border term"))
	}

	nm := d.count(8)
	for mi := 0; mi < nm && d.err == nil; mi++ {
		nv := int(d.u8())
		if nv <= 0 || nv > graph.MaxDense {
			d.fail("motif %d size %d out of range", mi, nv)
			break
		}
		lm := &label.LabeledMotif{Pattern: graph.NewDense(nv), Labels: make([][]int32, nv)}
		ec := d.count(2)
		for i := 0; i < ec && d.err == nil; i++ {
			u := int(d.u8())
			v := int(d.u8())
			if u >= v || v >= nv {
				d.fail("motif %d edge {%d,%d} out of range", mi, u, v)
				break
			}
			lm.Pattern.AddEdge(u, v)
		}
		for v := 0; v < nv && d.err == nil; v++ {
			lc := d.count(4)
			for i := 0; i < lc && d.err == nil; i++ {
				lm.Labels[v] = append(lm.Labels[v], int32(d.index(nt, "label term")))
			}
		}
		oc := d.count(4 * nv)
		for i := 0; i < oc && d.err == nil; i++ {
			occ := make([]int32, nv)
			for v := 0; v < nv && d.err == nil; v++ {
				occ[v] = int32(d.index(n, "occurrence protein"))
			}
			lm.Occurrences = append(lm.Occurrences, occ)
		}
		lm.Frequency = d.count(0)
		lm.Uniqueness = d.f64()
		if d.err == nil {
			a.Motifs = append(a.Motifs, lm)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return a, nil
}

// encodeStats renders the build-stats section: stage count, then per
// stage its name, wall and busy nanoseconds, item count and worker count.
func encodeStats(e *enc, stats []obs.StageStat) {
	e.u32(uint32(len(stats)))
	for _, s := range stats {
		e.str(s.Name)
		e.u64(uint64(s.Wall.Nanoseconds()))
		e.u64(uint64(s.Items))
		e.u32(uint32(s.Workers))
		e.u64(uint64(s.Busy.Nanoseconds()))
	}
}

// statMinWidth is the smallest possible encoded stage: empty name (4-byte
// length) + wall + items + workers + busy.
const statMinWidth = 4 + 8 + 8 + 4 + 8

func decodeStats(d *dec) ([]obs.StageStat, error) {
	c := d.count(statMinWidth)
	stats := make([]obs.StageStat, 0, c)
	for i := 0; i < c && d.err == nil; i++ {
		var s obs.StageStat
		s.Name = d.str()
		s.Wall = time.Duration(d.u64())
		s.Items = int64(d.u64())
		s.Workers = int(d.u32())
		s.Busy = time.Duration(d.u64())
		if d.err == nil {
			stats = append(stats, s)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return stats, nil
}

// enc is a little-endian append-only payload encoder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// dec is a bounds-checked payload decoder with a latched first error, so
// decode loops can run without per-read error plumbing.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("artifact: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("payload truncated at offset %d", d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) f64() float64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s))
}

func (d *dec) str() string {
	n := d.u32()
	if n > maxCount {
		d.fail("string length %d exceeds limit", n)
		return ""
	}
	return string(d.take(int(n)))
}

// count reads a list length and validates it against the remaining payload,
// given each element occupies at least minWidth bytes (0 = the value is a
// plain non-negative integer, not a length).
func (d *dec) count(minWidth int) int {
	v := d.u32()
	if v > maxCount {
		d.fail("count %d exceeds limit", v)
		return 0
	}
	if minWidth > 0 && int(v)*minWidth > len(d.b)-d.off {
		d.fail("count %d at offset %d overruns payload", v, d.off)
		return 0
	}
	return int(v)
}

// index reads one index and validates it against an exclusive bound.
func (d *dec) index(n int, what string) int {
	v := d.u32()
	if d.err == nil && int(v) >= n {
		d.fail("%s %d out of range [0,%d)", what, v, n)
		return 0
	}
	return int(v)
}

package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
	"time"

	"lamofinder/internal/obs"
)

func testStats() []obs.StageStat {
	return []obs.StageStat{
		{Name: "census", Wall: 120 * time.Millisecond, Items: 152, Workers: 4},
		{Name: "uniqueness", Wall: 40 * time.Millisecond, Items: 31, Workers: 4},
		{Name: "labeling", Wall: 800 * time.Millisecond, Items: 31, Workers: 4, Busy: 2400 * time.Millisecond},
		{Name: "clustering", Wall: 2100 * time.Millisecond, Items: 1840, Workers: 4},
	}
}

// TestStatsRoundTrip covers both stats-carrying formats: version 3
// (unindexed) and version 4 (indexed). Stats must survive
// save→load→save byte-identically.
func TestStatsRoundTrip(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		a := testArtifact(t)
		if indexed {
			a.BuildIndex(2)
		}
		a.Stats = testStats()
		first, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		want := uint32(Version3)
		if indexed {
			want = Version4
		}
		if v := fileVersion(first); v != want {
			t.Fatalf("indexed=%v encoded as version %d, want %d", indexed, v, want)
		}
		loaded, err := Decode(first)
		if err != nil {
			t.Fatal(err)
		}
		if len(loaded.Stats) != len(a.Stats) {
			t.Fatalf("loaded %d stages, want %d", len(loaded.Stats), len(a.Stats))
		}
		for i, s := range loaded.Stats {
			if s != a.Stats[i] {
				t.Fatalf("stage %d = %+v, want %+v", i, s, a.Stats[i])
			}
		}
		if indexed && loaded.Index == nil {
			t.Fatal("index lost on stats-carrying artifact")
		}
		second, err := loaded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("save→load→save not byte-identical with stats (indexed=%v)", indexed)
		}
	}
}

// TestStatsExcludedFromIdentity is the determinism property the layout was
// designed for: two builds of the same model whose stages took different
// wall times must report the same digest, and dropping the stats entirely
// only changes the digest through the version field, never the payload.
func TestStatsExcludedFromIdentity(t *testing.T) {
	a := testArtifact(t)
	a.Stats = testStats()
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}

	b := testArtifact(t)
	b.Stats = []obs.StageStat{{Name: "census", Wall: 987 * time.Millisecond, Items: 152, Workers: 8}}
	d2, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("wall-time noise changed model identity: %s vs %s", d1, d2)
	}

	// A loaded stats-carrying artifact reports the same identity it was
	// encoded with.
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := loaded.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if ld != d1 {
		t.Fatalf("loaded identity %s, encoded identity %s", ld, d1)
	}
}

// TestStatsTamperDetected: the identity digest excludes stats, but the
// file trailer does not — flipping any stats byte must be rejected.
func TestStatsTamperDetected(t *testing.T) {
	a := testArtifact(t)
	a.Stats = testStats()
	good, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	plen := binary.LittleEndian.Uint64(good[len(Magic)+4:])
	statsStart := headerLen + int(plen)
	statsEnd := len(good) - 32
	if statsStart >= statsEnd {
		t.Fatalf("no stats section in encoded bytes (plen=%d len=%d)", plen, len(good))
	}
	for off := statsStart; off < statsEnd; off += 3 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if _, err := Decode(bad); err == nil {
			t.Fatalf("accepted artifact with tampered stats byte at offset %d", off)
		}
	}
}

// TestStatsEmptyKeepsLegacyFormat: artifacts without stats must emit
// exactly the historical version 1/2 bytes, so PR 3/4 artifacts and their
// digests are untouched.
func TestStatsEmptyKeepsLegacyFormat(t *testing.T) {
	a := testArtifact(t)
	if v := mustEncodeVersion(t, a); v != Version1 {
		t.Fatalf("plain artifact encoded as version %d", v)
	}
	a.BuildIndex(1)
	if v := mustEncodeVersion(t, a); v != Version {
		t.Fatalf("indexed artifact encoded as version %d", v)
	}

	// Stats set then cleared: bytes identical to never having stats.
	b := testArtifact(t)
	withNever, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c := testArtifact(t)
	c.Stats = testStats()
	if _, err := c.Encode(); err != nil {
		t.Fatal(err)
	}
	c.Stats = nil
	withCleared, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withNever, withCleared) {
		t.Fatal("clearing stats does not restore the legacy byte form")
	}
}

func mustEncodeVersion(t *testing.T, a *Artifact) uint32 {
	t.Helper()
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return fileVersion(b)
}

// TestStatsSectionValidation exercises the stats decoder's bounds checks
// directly: a truncated or oversized stats section must be refused even
// when the trailer is recomputed to match.
func TestStatsSectionValidation(t *testing.T) {
	a := testArtifact(t)
	a.Stats = testStats()
	good, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	plen := binary.LittleEndian.Uint64(good[len(Magic)+4:])
	statsStart := headerLen + int(plen)

	// Truncate the stats section mid-stage and re-seal the trailer.
	trunc := append([]byte(nil), good[:len(good)-32-10]...)
	trunc = seal(trunc)
	if _, err := Decode(trunc); err == nil {
		t.Fatal("accepted truncated stats section")
	}

	// Inflate the declared stage count and re-seal.
	inflated := append([]byte(nil), good[:len(good)-32]...)
	binary.LittleEndian.PutUint32(inflated[statsStart:], 1<<30)
	inflated = seal(inflated)
	if _, err := Decode(inflated); err == nil {
		t.Fatal("accepted stats section with runaway stage count")
	}

	// A version-3 file whose plen swallows the whole body leaves no room
	// for stats at all.
	nostats := append([]byte(nil), good[:statsStart]...)
	nostats = seal(nostats)
	if _, err := Decode(nostats); err == nil {
		t.Fatal("accepted stats-version file with empty stats section")
	}
}

// seal appends a fresh SHA-256 trailer so validation tests reach the
// structural checks behind the digest gate.
func seal(b []byte) []byte {
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

package artifact

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/ontology"
	"lamofinder/internal/predict"
)

// testArtifact hand-builds a small but fully populated artifact: a 6-protein
// network, a 5-term ontology slice, annotations, and one labeled triangle
// motif with two occurrences.
func testArtifact(t *testing.T) *Artifact {
	t.Helper()
	b := ontology.NewBuilder()
	b.AddTerm("T:root", "root")
	b.AddTerm("T:a", "alpha")
	b.AddTerm("T:b", "beta")
	b.AddTerm("T:a1", "alpha leaf")
	b.AddTerm("T:b1", "beta leaf")
	b.AddRelation("T:a", "T:root", ontology.IsA)
	b.AddRelation("T:b", "T:root", ontology.PartOf)
	b.AddRelation("T:a1", "T:a", ontology.IsA)
	b.AddRelation("T:b1", "T:b", ontology.IsA)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	g := graph.New(6)
	for v := 0; v < 6; v++ {
		g.SetName(v, []string{"p1", "p2", "p3", "p4", "p5", "p6"}[v])
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		g.AddEdge(e[0], e[1])
	}

	task := predict.NewTask(g, 2)
	task.Functions[0] = []int{0}
	task.Functions[1] = []int{0, 1}
	task.Functions[3] = []int{1}
	task.Functions[5] = []int{0}

	corpus := ontology.NewCorpus(o, 6)
	corpus.Annotate(0, o.Index("T:a1"))
	corpus.Annotate(1, o.Index("T:a"))
	corpus.Annotate(1, o.Index("T:b1"))
	corpus.Annotate(3, o.Index("T:b"))
	corpus.Annotate(5, o.Index("T:a1"))

	tri := graph.NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	lm := &label.LabeledMotif{
		Pattern: tri,
		Labels: [][]int32{
			{int32(o.Index("T:a"))},
			{int32(o.Index("T:a1")), int32(o.Index("T:b"))},
			nil,
		},
		Occurrences: [][]int32{{0, 1, 2}, {3, 4, 5}},
		Frequency:   2,
		Uniqueness:  0.875,
	}

	a, err := Build("unit-test", "handcrafted fixture",
		task, []string{"T:a", "T:b"}, corpus, corpus.DirectCounts(), 1,
		[]*label.LabeledMotif{lm})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRoundTripByteIdentical(t *testing.T) {
	a := testArtifact(t)
	first, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("save→load→save not byte-identical: %d vs %d bytes", len(first), len(second))
	}
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest mismatch: %q vs %q", d1, d2)
	}

	// Spot-check the reconstructed model.
	if loaded.Dataset != "unit-test" || loaded.MinDirect != 1 {
		t.Fatalf("metadata lost: %+v", loaded)
	}
	if loaded.Graph.N() != 6 || loaded.Graph.M() != 7 || loaded.Graph.Name(2) != "p3" {
		t.Fatalf("network lost: n=%d m=%d", loaded.Graph.N(), loaded.Graph.M())
	}
	if loaded.Ontology.NumTerms() != 5 || loaded.Ontology.Index("T:b1") != a.Ontology.Index("T:b1") {
		t.Fatal("ontology term indexing changed across round trip")
	}
	if len(loaded.Motifs) != 1 || loaded.Motifs[0].Frequency != 2 ||
		loaded.Motifs[0].Uniqueness != 0.875 ||
		!loaded.Motifs[0].Pattern.HasEdge(0, 2) {
		t.Fatalf("motif lost: %+v", loaded.Motifs)
	}
	if got, want := loaded.Weights[loaded.Ontology.Index("T:root")], 1.0; got != want {
		t.Fatalf("root weight %v, want %v", got, want)
	}
}

func TestScorerMatchesDirectConstruction(t *testing.T) {
	a := testArtifact(t)
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	direct := a.NewScorer()
	viaFile := loaded.NewScorer()
	for p := 0; p < a.Graph.N(); p++ {
		ds, fs := direct.Scores(p), viaFile.Scores(p)
		for f := range ds {
			if ds[f] != fs[f] {
				t.Fatalf("protein %d function %d: direct %v vs loaded %v", p, f, ds[f], fs[f])
			}
		}
	}
}

func TestTamperDetection(t *testing.T) {
	a := testArtifact(t)
	good, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("pristine bytes rejected: %v", err)
	}
	// Flip one bit at a sample of offsets across header, payload and digest;
	// every variant must be rejected.
	for off := 0; off < len(good); off += 7 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("accepted artifact with flipped bit at offset %d", off)
		}
	}
	if _, err := Decode(good[:len(good)-5]); err == nil {
		t.Fatal("accepted truncated artifact")
	}
	if _, err := Decode(good[:10]); err == nil {
		t.Fatal("accepted header-only artifact")
	}
}

func TestVersionAndMagicErrors(t *testing.T) {
	a := testArtifact(t)
	good, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(Magic)] = 9 // version
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not refused: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("foreign magic not refused: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "model.lamo")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), orig) {
		t.Fatal("file round trip not byte-identical")
	}
}

func TestBuildValidation(t *testing.T) {
	a := testArtifact(t)
	task := a.Task()
	task.Functions[0] = []int{99}
	if _, err := Build("x", "", task, a.FunctionNames, a.Corpus,
		a.Corpus.DirectCounts(), 1, a.Motifs); err == nil {
		t.Fatal("Build accepted out-of-range function id")
	}
	task.Functions[0] = []int{0}
	if _, err := Build("x", "", task, []string{"only-one"}, a.Corpus,
		a.Corpus.DirectCounts(), 1, a.Motifs); err == nil {
		t.Fatal("Build accepted mismatched function names")
	}
	bad := &label.LabeledMotif{Pattern: graph.NewDense(2), Labels: make([][]int32, 2),
		Occurrences: [][]int32{{0, 99}}}
	if _, err := Build("x", "", task, a.FunctionNames, a.Corpus,
		a.Corpus.DirectCounts(), 1, []*label.LabeledMotif{bad}); err == nil {
		t.Fatal("Build accepted occurrence naming an unknown protein")
	}
}

package artifact

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"lamofinder/internal/predict"
)

// fileVersion reads the format version out of encoded artifact bytes.
func fileVersion(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b[len(Magic):])
}

func TestEncodeVersionTracksIndex(t *testing.T) {
	a := testArtifact(t)
	plain, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := fileVersion(plain); v != Version1 {
		t.Fatalf("unindexed artifact encoded as version %d, want %d", v, Version1)
	}
	a.BuildIndex(2)
	indexed, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := fileVersion(indexed); v != Version {
		t.Fatalf("indexed artifact encoded as version %d, want %d", v, Version)
	}
	if len(indexed) <= len(plain) {
		t.Fatalf("index section added no bytes: %d vs %d", len(indexed), len(plain))
	}
}

func TestIndexRoundTripByteIdentical(t *testing.T) {
	a := testArtifact(t)
	a.BuildIndex(3)
	first, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Index == nil {
		t.Fatal("index lost across round trip")
	}
	second, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("v2 save→load→save not byte-identical: %d vs %d bytes", len(first), len(second))
	}

	// The reconstructed index must replay the scorer exactly.
	scorer := a.NewScorer()
	for p := 0; p < a.Graph.N(); p++ {
		row := scorer.Scores(p)
		if !reflect.DeepEqual(loaded.Index.Row(p), row) {
			t.Fatalf("protein %d: index row %v, scorer %v", p, loaded.Index.Row(p), row)
		}
		if want := predict.TopK(row, 0); !reflect.DeepEqual(loaded.Index.Ranking(p), want) {
			t.Fatalf("protein %d: index ranking %v, TopK %v", p, loaded.Index.Ranking(p), want)
		}
	}
}

// TestV1ArtifactStillLoads pins backward compatibility: version-1 bytes
// (what every pre-index build wrote) decode into a working, unindexed
// artifact.
func TestV1ArtifactStillLoads(t *testing.T) {
	a := testArtifact(t)
	v1, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if fileVersion(v1) != Version1 {
		t.Fatalf("fixture encoded as version %d", fileVersion(v1))
	}
	loaded, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 artifact refused: %v", err)
	}
	if loaded.Index != nil {
		t.Fatal("v1 artifact decoded with an index")
	}
	if loaded.NewScorer().Coverage() == 0 {
		t.Fatal("v1 artifact lost its motifs")
	}
}

// TestIndexTamperRejected flips bits across the index section (the bytes a
// v1 payload does not have) and requires every variant to be rejected by
// the digest check.
func TestIndexTamperRejected(t *testing.T) {
	a := testArtifact(t)
	plainLen := func() int {
		b, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return len(b)
	}()
	a.BuildIndex(1)
	good, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The index section occupies the payload bytes beyond the v1 encoding.
	for off := plainLen - 40; off < len(good); off += 3 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x08
		if _, err := Decode(bad); err == nil {
			t.Fatalf("accepted artifact with tampered index byte at offset %d", off)
		}
	}
}

// TestIndexConsistencyValidated re-signs artifacts whose index disagrees
// with the score matrix — a forgery the digest cannot catch because the
// digest is recomputed — and requires the decoder's semantic checks to
// reject them.
func TestIndexConsistencyValidated(t *testing.T) {
	mutate := func(t *testing.T, f func(ix *ScoreIndex) bool, wantErr string) {
		t.Helper()
		a := testArtifact(t)
		a.BuildIndex(1)
		if !f(a.Index) {
			t.Skip("fixture shape cannot express this mutation")
		}
		a.digest = ""
		b, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Decode(b)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("inconsistent index not rejected: %v", err)
		}
	}

	mutate(t, func(ix *ScoreIndex) bool {
		// Swap the two best entries of some protein: order violation.
		for p := range ix.ranked {
			if len(ix.ranked[p]) >= 2 {
				rk := ix.ranked[p]
				rk[0], rk[1] = rk[1], rk[0]
				return true
			}
		}
		return false
	}, "out of order")

	mutate(t, func(ix *ScoreIndex) bool {
		// Drop a ranked entry: ranking no longer covers the positive row.
		for p := range ix.ranked {
			if len(ix.ranked[p]) >= 1 {
				ix.ranked[p] = ix.ranked[p][:len(ix.ranked[p])-1]
				return true
			}
		}
		return false
	}, "positive scores")
}

// TestDigestChangesIffIndexChanges: attaching the index changes the model
// identity, rebuilding the same index does not, and rebuilding at a
// different parallelism does not either.
func TestDigestChangesIffIndexChanges(t *testing.T) {
	digest := func(t *testing.T, build func(a *Artifact)) string {
		t.Helper()
		a := testArtifact(t)
		if build != nil {
			build(a)
		}
		d, err := a.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain := digest(t, nil)
	ix1 := digest(t, func(a *Artifact) { a.BuildIndex(1) })
	ix4 := digest(t, func(a *Artifact) { a.BuildIndex(4) })
	if plain == ix1 {
		t.Fatal("digest unchanged by adding the score index")
	}
	if ix1 != ix4 {
		t.Fatalf("index digest depends on build parallelism: %s vs %s", ix1, ix4)
	}
	// Dropping the index restores the v1 identity.
	a := testArtifact(t)
	a.BuildIndex(2)
	a.Index = nil
	a.digest = ""
	d, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d != plain {
		t.Fatalf("dropping the index did not restore the v1 digest: %s vs %s", d, plain)
	}
}

// Package artifact implements the lamod model artifact: a versioned,
// checksummed, byte-deterministic snapshot of everything the serving
// daemon needs to answer function-prediction queries — the annotated
// interaction network, the GO slice with its genome-specific term weights
// and border informative FC, and the mined labeled motifs with their
// conforming occurrence sets.
//
// The expensive half of the paper's pipeline (mining, uniqueness testing,
// LaMoFinder labeling) runs once in `lamod build` and is compiled into an
// immutable file; `lamod serve` then loads the file read-only and scores
// arbitrarily many queries against it. Save and Load round-trip
// byte-identically (save→load→save produces the same bytes), and Load
// refuses files with a foreign magic, a mismatched format version, or a
// payload whose SHA-256 digest does not match the recorded one.
package artifact

import (
	"fmt"
	"os"

	"lamofinder/internal/graph"
	"lamofinder/internal/label"
	"lamofinder/internal/obs"
	"lamofinder/internal/ontology"
	"lamofinder/internal/predict"
)

// Artifact is the in-memory form of one lamod model snapshot. All fields
// are treated as immutable once built or loaded; the serving daemon shares
// one Artifact across every request goroutine.
type Artifact struct {
	// Dataset names the data the model was built from; Note carries a
	// free-form build annotation (config fingerprint, operator comment).
	Dataset string
	Note    string

	// Graph is the PPI network with protein names attached.
	Graph *graph.Graph
	// NumFunctions and Functions mirror predict.Task: per-protein category
	// ids. FunctionNames[f] is the display name of category f (for the MIPS
	// benchmark, the GO term id of the category subtree root).
	NumFunctions  int
	FunctionNames []string
	Functions     [][]int

	// Ontology is the GO slice the motifs were labeled against, with the
	// direct annotation Corpus and the genome-specific term Weights.
	Ontology *ontology.Ontology
	Weights  ontology.Weights
	Corpus   *ontology.Corpus
	// MinDirect is the informative-FC threshold the border was derived
	// with; Border lists the border informative FC term indices.
	MinDirect int
	Border    []int

	// Motifs are the mined labeled motifs with their occurrence sets.
	Motifs []*label.LabeledMotif

	// Index is the optional build-time score index (see ScoreIndex). When
	// present the artifact encodes as format version 2 and the daemon
	// serves predictions without scoring; when nil it encodes as version 1
	// and the daemon scores on demand.
	Index *ScoreIndex

	// Stats optionally records per-stage build telemetry (wall time, item
	// counts, worker utilization) from the mining pipeline. Stats are
	// stored after the payload (format versions 3/4) and excluded from the
	// identity digest, so two builds of the same model keep one digest
	// regardless of how long each stage took.
	Stats []obs.StageStat

	digest string // hex SHA-256 of header+payload, cached by Encode/Load
}

// Build assembles and validates an artifact from pipeline outputs. direct
// holds the per-term direct annotation counts that weights and the border
// informative FC are derived from — usually corpus.DirectCounts(), but a
// whole-genome census for fixtures like the paper's worked example.
func Build(dataset, note string, task *predict.Task, functionNames []string,
	corpus *ontology.Corpus, direct []int, minDirect int,
	motifs []*label.LabeledMotif) (*Artifact, error) {
	n := task.Network.N()
	o := corpus.Ontology()
	if corpus.NumProteins() != n {
		return nil, fmt.Errorf("artifact: corpus covers %d proteins, network has %d", corpus.NumProteins(), n)
	}
	if len(functionNames) != task.NumFunctions {
		return nil, fmt.Errorf("artifact: %d function names for %d functions", len(functionNames), task.NumFunctions)
	}
	if len(direct) != o.NumTerms() {
		return nil, fmt.Errorf("artifact: %d direct counts for %d terms", len(direct), o.NumTerms())
	}
	for p, fs := range task.Functions {
		for _, f := range fs {
			if f < 0 || f >= task.NumFunctions {
				return nil, fmt.Errorf("artifact: protein %d carries function %d outside [0,%d)", p, f, task.NumFunctions)
			}
		}
	}
	for mi, lm := range motifs {
		nv := lm.Size()
		if len(lm.Labels) != nv {
			return nil, fmt.Errorf("artifact: motif %d has %d label rows for %d vertices", mi, len(lm.Labels), nv)
		}
		for _, ts := range lm.Labels {
			for _, t := range ts {
				if int(t) < 0 || int(t) >= o.NumTerms() {
					return nil, fmt.Errorf("artifact: motif %d labels unknown term %d", mi, t)
				}
			}
		}
		for _, occ := range lm.Occurrences {
			if len(occ) != nv {
				return nil, fmt.Errorf("artifact: motif %d has a %d-vertex occurrence for %d vertices", mi, len(occ), nv)
			}
			for _, p := range occ {
				if int(p) < 0 || int(p) >= n {
					return nil, fmt.Errorf("artifact: motif %d occurrence names protein %d outside [0,%d)", mi, p, n)
				}
			}
		}
	}
	return &Artifact{
		Dataset:       dataset,
		Note:          note,
		Graph:         task.Network,
		NumFunctions:  task.NumFunctions,
		FunctionNames: functionNames,
		Functions:     task.Functions,
		Ontology:      o,
		Weights:       o.ComputeWeights(direct),
		Corpus:        corpus,
		MinDirect:     minDirect,
		Border:        o.BorderInformativeFC(direct, minDirect),
		Motifs:        motifs,
	}, nil
}

// Task reconstructs the prediction task the artifact snapshots. The task
// shares the artifact's backing slices, so it must be treated read-only.
func (a *Artifact) Task() *predict.Task {
	return &predict.Task{
		Network:      a.Graph,
		NumFunctions: a.NumFunctions,
		Functions:    a.Functions,
	}
}

// NewScorer constructs the labeled-motif predictor over the snapshot — the
// same constructor the Figure-9 experiment uses, so served scores are
// bitwise-identical to the offline pipeline's.
func (a *Artifact) NewScorer() *predict.LabeledMotif {
	return label.NewScorer(a.Task(), a.Motifs)
}

// Digest returns the hex SHA-256 of the artifact's encoded form, encoding
// on first use. Loaded artifacts carry the verified on-disk digest.
func (a *Artifact) Digest() (string, error) {
	if a.digest == "" {
		if _, err := a.Encode(); err != nil {
			return "", err
		}
	}
	return a.digest, nil
}

// SaveFile encodes the artifact to path (0644, truncating).
func (a *Artifact) SaveFile(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadFile reads and verifies an artifact file.
func LoadFile(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

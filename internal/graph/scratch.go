package graph

// This file holds allocation-avoiding scratch structures shared by the
// mining hot paths (undirected and directed miners alike): an epoch-stamped
// vertex-set dedup table and a slab arena for stored occurrences. See
// DESIGN.md §13 "Mining memory layout".

// VSetDedup is an exact, epoch-stamped hash set of fixed-width vertex sets
// (the beam miners' per-level "seen candidate sets"). Keys live in a flat
// arena; table slots carry the epoch of their last write, so advancing the
// epoch resets the set in O(1) with no map clear and no re-zeroing. Probes
// compare full keys — a hash collision can cost a probe, never a wrong
// dedup — so a miner's output is exactly that of the map[string]bool it
// replaces.
type VSetDedup struct {
	slots []vsetSlot
	mask  uint32
	keys  []int32 // flat arena of consecutive k-tuples
	k     int
	n     int    // live keys this epoch
	epoch uint32 // 0 is never a live epoch (slot zero value is dead)
}

type vsetSlot struct {
	epoch uint32
	ref   uint32 // key index + 1
}

// Reset starts a new epoch for sets of width k, invalidating every slot.
func (d *VSetDedup) Reset(k int) {
	d.k = k
	d.n = 0
	d.keys = d.keys[:0]
	d.epoch++
	if len(d.slots) == 0 {
		d.slots = make([]vsetSlot, 1024)
		d.mask = 1023
	}
}

// vsetHash mixes a vertex set with FNV-1a over its int32 words.
//
// alloc-budget: 0
func vsetHash(vs []int32) uint32 {
	h := uint32(2166136261)
	for _, v := range vs {
		h = (h ^ uint32(v)) * 16777619
	}
	return h
}

// Insert adds vs (width k, as set by Reset) and reports whether it was new
// this epoch. Steady state performs zero allocations; the arena and table
// grow geometrically.
func (d *VSetDedup) Insert(vs []int32) bool {
	if 2*(d.n+1) > len(d.slots) {
		d.rehash()
	}
	h := vsetHash(vs)
	i := h & d.mask
	for {
		sl := d.slots[i]
		if sl.epoch != d.epoch || sl.ref == 0 {
			break // dead slot: vs is new
		}
		if d.equalAt(int(sl.ref-1), vs) {
			return false
		}
		i = (i + 1) & d.mask
	}
	d.keys = append(d.keys, vs...)
	d.n++
	d.slots[i] = vsetSlot{epoch: d.epoch, ref: uint32(d.n)}
	return true
}

// equalAt compares stored key idx against vs.
//
// alloc-budget: 0
func (d *VSetDedup) equalAt(idx int, vs []int32) bool {
	key := d.keys[idx*d.k : idx*d.k+d.k]
	for i := range vs {
		if key[i] != vs[i] {
			return false
		}
	}
	return true
}

// rehash doubles the table and reinserts the live keys.
func (d *VSetDedup) rehash() {
	old := d.slots
	d.slots = make([]vsetSlot, 2*len(old))
	d.mask = uint32(len(d.slots) - 1)
	for _, sl := range old {
		if sl.epoch != d.epoch || sl.ref == 0 {
			continue
		}
		key := d.keys[int(sl.ref-1)*d.k : int(sl.ref-1)*d.k+d.k]
		i := vsetHash(key) & d.mask
		for d.slots[i].epoch == d.epoch && d.slots[i].ref != 0 {
			i = (i + 1) & d.mask
		}
		d.slots[i] = sl
	}
}

// OccArena carves fixed-width occurrence slices out of slab-allocated
// blocks: one allocation per slab instead of one per stored occurrence.
// Carved slices are capacity-capped, so a later slab growth can never
// alias them.
type OccArena struct {
	slab []int32
	used int
}

// Take returns a new slice holding a copy of vs, carved from the arena.
func (a *OccArena) Take(vs []int32) []int32 {
	k := len(vs)
	if a.used+k > len(a.slab) {
		size := 4096
		if k > size {
			size = k
		}
		a.slab = make([]int32, size)
		a.used = 0
	}
	out := a.slab[a.used : a.used+k : a.used+k]
	a.used += k
	copy(out, vs)
	return out
}

package graph

import "math/bits"

// vf2DenseIso reports whether two equally sized dense graphs are isomorphic,
// using a VF2-style backtracking search seeded with WL color compatibility.
func vf2DenseIso(a, b *Dense) bool {
	n := a.n
	if n != b.n {
		return false
	}
	var caArr, cbArr [MaxDense]uint64
	wlColors(a, &caArr)
	wlColors(b, &cbArr)
	ca, cb := caArr[:n], cbArr[:n]
	// Candidate sets: vertex u of a may map only to vertices of b with the
	// same color.
	cand := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for v := 0; v < n; v++ {
			if ca[u] == cb[v] {
				m |= 1 << uint(v)
			}
		}
		if m == 0 {
			return false
		}
		cand[u] = m
	}
	mapping := make([]int, n)
	var usedB uint32
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			return true
		}
		for m := cand[u] &^ usedB; m != 0; {
			v := bits.TrailingZeros32(m)
			m &= m - 1
			ok := true
			for p := 0; p < u; p++ {
				if a.HasEdge(u, p) != b.HasEdge(v, mapping[p]) {
					ok = false
					break
				}
			}
			if ok {
				mapping[u] = v
				usedB |= 1 << uint(v)
				if rec(u + 1) {
					return true
				}
				usedB &^= 1 << uint(v)
			}
		}
		return false
	}
	return rec(0)
}

// Automorphisms enumerates the automorphisms of d (as permutations:
// perm[i] = image of vertex i), up to the given cap (0 = no cap). The
// identity is always included.
func Automorphisms(d *Dense, cap int) [][]int {
	n := d.n
	var colArr [MaxDense]uint64
	wlColors(d, &colArr)
	cols := colArr[:n]
	cand := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for v := 0; v < n; v++ {
			if cols[u] == cols[v] {
				m |= 1 << uint(v)
			}
		}
		cand[u] = m
	}
	var out [][]int
	mapping := make([]int, n)
	var usedB uint32
	var rec func(u int) bool // returns true to abort (cap reached)
	rec = func(u int) bool {
		if u == n {
			out = append(out, append([]int(nil), mapping...))
			return cap > 0 && len(out) >= cap
		}
		for m := cand[u] &^ usedB; m != 0; {
			v := bits.TrailingZeros32(m)
			m &= m - 1
			ok := true
			for p := 0; p < u; p++ {
				if d.HasEdge(u, p) != d.HasEdge(v, mapping[p]) {
					ok = false
					break
				}
			}
			if ok {
				mapping[u] = v
				usedB |= 1 << uint(v)
				stop := rec(u + 1)
				usedB &^= 1 << uint(v)
				if stop {
					return true
				}
			}
		}
		return false
	}
	rec(0)
	return out
}

// Orbits returns the automorphism orbits of d: the partition of vertices
// into the paper's "symmetric vertex sets". Vertices in the same orbit can
// be interchanged by some automorphism. Orbits are returned sorted by their
// smallest member; singleton orbits are included.
func Orbits(d *Dense) [][]int {
	n := d.n
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	// A generous cap: the orbit partition usually converges from few
	// automorphisms; 4096 covers highly symmetric meso-scale motifs.
	for _, perm := range Automorphisms(d, 4096) {
		for i, img := range perm {
			union(i, img)
		}
	}
	groups := map[int][]int{}
	for v := 0; v < n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	orbits := make([][]int, 0, len(groups))
	for r := 0; r < n; r++ {
		if g, ok := groups[r]; ok {
			orbits = append(orbits, g)
		}
	}
	return orbits
}

// AutomorphismCount returns the order of the automorphism group of d,
// capped at the given limit (0 = no cap).
func AutomorphismCount(d *Dense, cap int) int {
	return len(Automorphisms(d, cap))
}

// CountInducedUpTo counts vertex sets of g whose induced subgraph is
// isomorphic to pattern, stopping as soon as the count reaches limit
// (limit <= 0 means count exhaustively). Counting is by distinct vertex
// sets: the number of matched mappings is divided by |Aut(pattern)|.
// maxSteps bounds the number of backtracking extensions (0 = unbounded);
// when the budget is exhausted the count found so far is returned with
// exact = false.
func CountInducedUpTo(g *Graph, pattern *Dense, limit int, maxSteps int64) (count int, exact bool) {
	return CountInducedUpToAdj(g, nil, pattern, limit, maxSteps)
}

// CountInducedUpToAdj is CountInducedUpTo with a prebuilt adjacency bitmap
// for g (may be nil). Callers that count many patterns against the same
// graph build the bitmap once and skip the per-edge-test binary search.
func CountInducedUpToAdj(g *Graph, adj *AdjBits, pattern *Dense, limit int, maxSteps int64) (count int, exact bool) {
	aut := AutomorphismCount(pattern, 0)
	mappings, exact := countMappings(g, adj, pattern, int64(limit)*int64(aut), maxSteps)
	return int(mappings / int64(aut)), exact
}

// countMappings counts injective induced-isomorphism mappings of pattern
// into g, stopping at mapLimit (<= 0: exhaustive) or after maxSteps
// extensions. adj, when non-nil, must be NewAdjBits(g).
func countMappings(g *Graph, adj *AdjBits, pattern *Dense, mapLimit int64, maxSteps int64) (int64, bool) {
	k := pattern.n
	if k == 0 {
		return 0, true
	}
	// Order pattern vertices so each (after the first) attaches to a prior
	// one; assumes pattern is connected (motifs are).
	order, prior := connectedOrder(pattern)
	pdeg := make([]int, k)
	for i := 0; i < k; i++ {
		pdeg[i] = pattern.Degree(i)
	}
	// Precompute, per position, which earlier positions must be adjacent /
	// non-adjacent in the graph (induced matching).
	adjPrev := make([][]int, k)  // positions p < pos with a pattern edge
	nadjPrev := make([][]int, k) // positions p < pos without one
	for pos := 0; pos < k; pos++ {
		u := order[pos]
		for p := 0; p < pos; p++ {
			if pattern.HasEdge(u, order[p]) {
				adjPrev[pos] = append(adjPrev[pos], p)
			} else {
				nadjPrev[pos] = append(nadjPrev[pos], p)
			}
		}
	}
	hasEdge := g.HasEdge
	if adj != nil {
		hasEdge = adj.Has
	}
	mapped := make([]int, k) // position -> graph vertex
	usedG := make([]bool, g.N())
	var cnt, steps int64
	exhausted := false

	var rec func(pos int)
	rec = func(pos int) {
		if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
			return
		}
		if pos == k {
			cnt++
			return
		}
		u := order[pos]
		try := func(gv int) {
			if usedG[gv] || g.Degree(gv) < pdeg[u] {
				return
			}
			steps++
			if maxSteps > 0 && steps > maxSteps {
				exhausted = true
				return
			}
			for _, p := range adjPrev[pos] {
				if !hasEdge(gv, mapped[p]) {
					return
				}
			}
			for _, p := range nadjPrev[pos] {
				if hasEdge(gv, mapped[p]) {
					return
				}
			}
			mapped[pos] = gv
			usedG[gv] = true
			rec(pos + 1)
			usedG[gv] = false
		}
		if pos == 0 {
			for gv := 0; gv < g.N(); gv++ {
				if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
					return
				}
				try(gv)
			}
			return
		}
		anchor := mapped[prior[pos]]
		for _, gv := range g.Neighbors(anchor) {
			if exhausted || (mapLimit > 0 && cnt >= mapLimit) {
				return
			}
			try(int(gv))
		}
	}
	rec(0)
	if mapLimit > 0 && cnt >= mapLimit {
		return cnt, true // reached the requested limit; exact up to the cap
	}
	return cnt, !exhausted
}

// connectedOrder returns an order of pattern vertices such that every vertex
// after the first is adjacent to an earlier one, plus for each position the
// index (into order) of one earlier neighbor.
func connectedOrder(pattern *Dense) (order []int, prior []int) {
	k := pattern.n
	order = make([]int, 0, k)
	prior = make([]int, k)
	inOrder := make([]int, k) // vertex -> position+1, 0 = absent
	// Start from the max-degree vertex for better pruning.
	start := 0
	for v := 1; v < k; v++ {
		if pattern.Degree(v) > pattern.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	inOrder[start] = 1
	for len(order) < k {
		bestV, bestAnchor, bestDeg := -1, -1, -1
		for v := 0; v < k; v++ {
			if inOrder[v] != 0 {
				continue
			}
			for pos, w := range order {
				if pattern.HasEdge(v, w) {
					if pattern.Degree(v) > bestDeg {
						bestV, bestAnchor, bestDeg = v, pos, pattern.Degree(v)
					}
					break
				}
			}
		}
		if bestV < 0 { // disconnected pattern: append arbitrary remaining
			for v := 0; v < k; v++ {
				if inOrder[v] == 0 {
					bestV, bestAnchor = v, 0
					break
				}
			}
		}
		prior[len(order)] = bestAnchor
		order = append(order, bestV)
		inOrder[bestV] = len(order)
	}
	return order, prior
}

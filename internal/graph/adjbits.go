package graph

// AdjBits is a dense adjacency bitmap over a Graph's vertices, answering
// HasEdge in one word load instead of a binary search of the sorted
// neighbor list. The uniqueness matcher builds one per randomized network
// and reuses it across every pattern counted there; at the paper's network
// scale (~4k vertices) a bitmap costs ~2 MB, amortized over dozens of
// patterns.
type AdjBits struct {
	n      int
	stride int // words per row
	words  []uint64
}

// NewAdjBits builds the adjacency bitmap of g.
func NewAdjBits(g *Graph) *AdjBits {
	n := g.N()
	stride := (n + 63) / 64
	a := &AdjBits{n: n, stride: stride, words: make([]uint64, n*stride)}
	for u := 0; u < n; u++ {
		row := a.words[u*stride : (u+1)*stride]
		for _, v := range g.Neighbors(u) {
			row[v>>6] |= 1 << uint(v&63)
		}
	}
	return a
}

// Has reports whether the edge {u, v} exists.
func (a *AdjBits) Has(u, v int) bool {
	return a.words[u*a.stride+v>>6]&(1<<uint(v&63)) != 0
}

package graph

import "math/bits"

// AdjBits is a dense adjacency bitmap over a Graph's vertices, answering
// HasEdge in one word load instead of a binary search of the sorted
// neighbor list. The uniqueness matcher builds one per randomized network
// and reuses it across every pattern counted there; the ESU census and the
// beam miner build one per mining pass and run their exclusive-neighborhood
// kernels on its rows. At the paper's network scale (~4k vertices) a bitmap
// costs ~2 MB, amortized over dozens of patterns.
type AdjBits struct {
	n      int
	stride int // words per row
	words  []uint64
}

// NewAdjBits builds the adjacency bitmap of g.
func NewAdjBits(g *Graph) *AdjBits {
	n := g.N()
	stride := (n + 63) / 64
	a := &AdjBits{n: n, stride: stride, words: make([]uint64, n*stride)}
	for u := 0; u < n; u++ {
		row := a.words[u*stride : (u+1)*stride]
		for _, v := range g.Neighbors(u) {
			row[v>>6] |= 1 << uint(v&63)
		}
	}
	return a
}

// Has reports whether the edge {u, v} exists.
func (a *AdjBits) Has(u, v int) bool {
	return a.words[u*a.stride+v>>6]&(1<<uint(v&63)) != 0
}

// Stride returns the number of 64-bit words per adjacency row.
func (a *AdjBits) Stride() int { return a.stride }

// Row returns the adjacency row of u as a word slice (read-only).
//
// alloc-budget: 0
func (a *AdjBits) Row(u int) []uint64 {
	return a.words[u*a.stride : (u+1)*a.stride]
}

// AndCount returns |N(u) ∩ N(v)|: the popcount of the intersection of the
// two adjacency rows, without materializing it.
//
// alloc-budget: 0
func (a *AdjBits) AndCount(u, v int) int {
	ru := a.words[u*a.stride : (u+1)*a.stride]
	rv := a.words[v*a.stride : (v+1)*a.stride]
	c := 0
	for i := range ru {
		c += bits.OnesCount64(ru[i] & rv[i])
	}
	return c
}

// NextSet returns the smallest neighbor of u that is >= from, or -1 when
// the row has no set bit at or beyond from. It is the word-level cursor the
// enumeration kernels use to walk a row in ascending order without
// materializing a neighbor list.
//
// alloc-budget: 0
func (a *AdjBits) NextSet(u, from int) int {
	if from < 0 {
		from = 0
	}
	if from >= a.n {
		return -1
	}
	row := a.words[u*a.stride : (u+1)*a.stride]
	wi := from >> 6
	w := row[wi] >> uint(from&63) << uint(from&63) // clear bits below from
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(row) {
			return -1
		}
		w = row[wi]
	}
}

// ExclusiveInto writes into dst the exclusive-neighborhood word mask of w:
// row(w) with every bit <= root and every bit of covered cleared. covered
// is the union of the current subgraph's membership and adjacency masks, so
// the surviving bits are exactly ESU's extension candidates — neighbors of
// w above the root that are neither in the subgraph nor adjacent to it.
// dst and covered must both have Stride() words. It returns the number of
// surviving candidates.
//
// alloc-budget: 0
func (a *AdjBits) ExclusiveInto(dst, covered []uint64, w, root int) int {
	row := a.words[w*a.stride : (w+1)*a.stride]
	rw := root >> 6
	cnt := 0
	for i := rw; i < len(row); i++ {
		m := row[i] &^ covered[i]
		if i == rw {
			m &^= 1<<uint(root&63+1) - 1 // clear bits <= root
		}
		dst[i] = m
		cnt += bits.OnesCount64(m)
	}
	for i := 0; i < rw && i < len(dst); i++ {
		dst[i] = 0
	}
	return cnt
}

// OrRowInto ORs the adjacency row of u plus u's own membership bit into
// acc: one step of maintaining the "covered" mask (subgraph vertices and
// everything adjacent to them) as the enumeration pushes u.
//
// alloc-budget: 0
func (a *AdjBits) OrRowInto(acc []uint64, u int) {
	row := a.words[u*a.stride : (u+1)*a.stride]
	for i := range row {
		acc[i] |= row[i]
	}
	acc[u>>6] |= 1 << uint(u&63)
}

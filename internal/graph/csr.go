package graph

// CSR is a compressed-sparse-row view of a Graph's adjacency: one flat
// targets slice addressed through per-vertex offsets. The per-vertex slice
// headers of Graph.adj spread neighbor lists across the heap; the census
// and the beam miner walk every neighbor list of the network thousands of
// times per level, and the CSR layout turns that walk into a linear scan
// of two contiguous arrays. Built once per mining pass and shared
// read-only across worker goroutines.
type CSR struct {
	offsets []int32 // len n+1; neighbors of v are targets[offsets[v]:offsets[v+1]]
	targets []int32 // sorted within each row, matching Graph.Neighbors order
}

// NewCSR flattens g's adjacency into a CSR view. The view is a snapshot:
// later mutations of g are not reflected.
func NewCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		offsets: make([]int32, n+1),
		targets: make([]int32, 0, 2*g.M()),
	}
	for v := 0; v < n; v++ {
		c.offsets[v] = int32(len(c.targets))
		c.targets = append(c.targets, g.Neighbors(v)...)
	}
	c.offsets[n] = int32(len(c.targets))
	return c
}

// N returns the vertex count.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// Neighbors returns the sorted neighbor row of v as a subslice of the
// shared targets array. Callers must treat it as read-only.
//
// alloc-budget: 0
func (c *CSR) Neighbors(v int) []int32 {
	return c.targets[c.offsets[v]:c.offsets[v+1]]
}

// Degree returns the number of neighbors of v.
//
// alloc-budget: 0
func (c *CSR) Degree(v int) int {
	return int(c.offsets[v+1] - c.offsets[v])
}

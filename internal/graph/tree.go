package graph

import (
	"sort"
	"strings"
)

// IsTree reports whether d is a tree (connected, n-1 edges).
func (d *Dense) IsTree() bool {
	return d.n > 0 && d.M() == d.n-1 && d.Connected()
}

// TreeCanonicalKey returns the AHU canonical encoding of a free tree: two
// trees get the same key iff they are isomorphic. The second result is
// false when d is not a tree. NeMoFinder's "repeated trees" are grouped by
// this key, which is computable in linear time — unlike general canonical
// forms.
func TreeCanonicalKey(d *Dense) (string, bool) {
	if !d.IsTree() {
		return "", false
	}
	if d.n == 1 {
		return "()", true
	}
	// Free-tree canonical form: root at the tree's center(s) and take the
	// lexicographically smaller AHU encoding.
	centers := treeCenters(d)
	best := ""
	for _, c := range centers {
		enc := ahuEncode(d, c)
		if best == "" || enc < best {
			best = enc
		}
	}
	return best, true
}

// treeCenters returns the 1 or 2 centers of a tree: peel leaves layer by
// layer until at most two vertices remain.
func treeCenters(d *Dense) []int {
	n := d.n
	deg := make([]int, n)
	removed := make([]bool, n)
	var leaves []int
	for v := 0; v < n; v++ {
		deg[v] = d.Degree(v)
		if deg[v] <= 1 {
			leaves = append(leaves, v)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		for _, v := range leaves {
			removed[v] = true
			remaining--
			for w := 0; w < n; w++ {
				if w != v && !removed[w] && d.HasEdge(v, w) {
					deg[w]--
					if deg[w] == 1 {
						next = append(next, w)
					}
				}
			}
		}
		leaves = next
	}
	var centers []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			centers = append(centers, v)
		}
	}
	return centers
}

// ahuEncode returns the AHU parenthesis encoding of the tree rooted at
// root: each subtree encodes as "(" + sorted child encodings + ")".
func ahuEncode(d *Dense, root int) string {
	var rec func(v, parent int) string
	rec = func(v, parent int) string {
		var childs []string
		for w := 0; w < d.n; w++ {
			if w != v && w != parent && d.HasEdge(v, w) {
				childs = append(childs, rec(w, v))
			}
		}
		sort.Strings(childs)
		return "(" + strings.Join(childs, "") + ")"
	}
	return rec(root, -1)
}

// SpanningTree returns a BFS spanning tree of a connected dense graph as a
// new Dense holding only the tree edges (rooted at vertex 0's BFS order).
func (d *Dense) SpanningTree() *Dense {
	t := NewDense(d.n)
	if d.n == 0 {
		return t
	}
	visited := make([]bool, d.n)
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < d.n; w++ {
			if w != v && d.HasEdge(v, w) && !visited[w] {
				visited[w] = true
				t.AddEdge(v, w)
				queue = append(queue, w)
			}
		}
	}
	return t
}

package graph

import "math/bits"

// IsoMapping returns a vertex mapping m (m[i] = vertex of b corresponding to
// vertex i of a) witnessing an isomorphism between a and b, or nil if none
// exists. The motif miner uses it to express each occurrence in the class
// representative's vertex order.
func IsoMapping(a, b *Dense) []int {
	n := a.n
	if n != b.n || a.M() != b.M() {
		return nil
	}
	var caArr, cbArr [MaxDense]uint64
	wlColors(a, &caArr)
	wlColors(b, &cbArr)
	ca, cb := caArr[:n], cbArr[:n]
	cand := make([]uint32, n)
	for u := 0; u < n; u++ {
		var m uint32
		for v := 0; v < n; v++ {
			if ca[u] == cb[v] {
				m |= 1 << uint(v)
			}
		}
		if m == 0 {
			return nil
		}
		cand[u] = m
	}
	mapping := make([]int, n)
	var usedB uint32
	var rec func(u int) bool
	rec = func(u int) bool {
		if u == n {
			return true
		}
		for m := cand[u] &^ usedB; m != 0; {
			v := bits.TrailingZeros32(m)
			m &= m - 1
			ok := true
			for p := 0; p < u; p++ {
				if a.HasEdge(u, p) != b.HasEdge(v, mapping[p]) {
					ok = false
					break
				}
			}
			if ok {
				mapping[u] = v
				usedB |= 1 << uint(v)
				if rec(u + 1) {
					return true
				}
				usedB &^= 1 << uint(v)
			}
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	return mapping
}

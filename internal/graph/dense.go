package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxDense is the maximum vertex count of a Dense graph. Motif patterns in
// the paper top out at 20 vertices, comfortably inside this bound.
const MaxDense = 32

// Dense is a small undirected simple graph stored as a bit adjacency matrix,
// used for motif patterns (n <= MaxDense).
type Dense struct {
	n    int
	rows [MaxDense]uint32
}

// NewDense returns an empty dense graph with n vertices.
//
// invariant: 0 <= n <= MaxDense — the bit-matrix representation cannot hold
// more vertices; an out-of-range size is a programmer error, like a
// negative make() length.
func NewDense(n int) *Dense {
	if n < 0 || n > MaxDense {
		panic(fmt.Sprintf("graph: dense graph size %d out of range [0,%d]", n, MaxDense))
	}
	return &Dense{n: n}
}

// N returns the number of vertices.
func (d *Dense) N() int { return d.n }

// Reset clears d back to n isolated vertices in place, letting enumeration
// loops reuse one Dense as scratch instead of allocating per subgraph.
//
// invariant: 0 <= n <= MaxDense — same bound as NewDense.
func (d *Dense) Reset(n int) {
	if n < 0 || n > MaxDense {
		panic(fmt.Sprintf("graph: dense graph size %d out of range [0,%d]", n, MaxDense))
	}
	for i := 0; i < d.n; i++ {
		d.rows[i] = 0
	}
	d.n = n
}

// M returns the number of edges.
func (d *Dense) M() int {
	m := 0
	for i := 0; i < d.n; i++ {
		m += bits.OnesCount32(d.rows[i])
	}
	return m / 2
}

// AddEdge adds the undirected edge {u, v}; self-loops are ignored.
func (d *Dense) AddEdge(u, v int) {
	if u == v {
		return
	}
	d.rows[u] |= 1 << uint(v)
	d.rows[v] |= 1 << uint(u)
}

// HasEdge reports whether the edge {u, v} exists.
func (d *Dense) HasEdge(u, v int) bool {
	return d.rows[u]&(1<<uint(v)) != 0
}

// Row returns the adjacency bitmask of vertex v.
func (d *Dense) Row(v int) uint32 { return d.rows[v] }

// Degree returns the degree of vertex v.
func (d *Dense) Degree(v int) int { return bits.OnesCount32(d.rows[v]) }

// DegreeSequence returns the vertex degrees sorted descending.
func (d *Dense) DegreeSequence() []int {
	ds := make([]int, d.n)
	for i := 0; i < d.n; i++ {
		ds[i] = d.Degree(i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// Connected reports whether the graph is connected (true for n <= 1).
func (d *Dense) Connected() bool {
	if d.n <= 1 {
		return true
	}
	var seen uint32 = 1
	frontier := uint32(1)
	for frontier != 0 {
		var next uint32
		for f := frontier; f != 0; {
			v := bits.TrailingZeros32(f)
			f &= f - 1
			next |= d.rows[v]
		}
		frontier = next &^ seen
		seen |= frontier
	}
	return seen == (uint32(1)<<uint(d.n))-1
}

// Clone returns a copy of d.
func (d *Dense) Clone() *Dense {
	c := *d
	return &c
}

// Permute returns the graph relabeled so that new vertex i is old vertex
// perm[i].
func (d *Dense) Permute(perm []int) *Dense {
	p := NewDense(d.n)
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if d.HasEdge(perm[i], perm[j]) {
				p.AddEdge(i, j)
			}
		}
	}
	return p
}

// Equal reports whether d and o are identical labeled graphs.
func (d *Dense) Equal(o *Dense) bool {
	if d.n != o.n {
		return false
	}
	for i := 0; i < d.n; i++ {
		if d.rows[i] != o.rows[i] {
			return false
		}
	}
	return true
}

// Sparse converts d to a sparse Graph.
func (d *Dense) Sparse() *Graph {
	g := New(d.n)
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if d.HasEdge(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// String renders the edge list, e.g. "5:[0-1 1-2 2-3 3-4 4-0]".
func (d *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:[", d.n)
	first := true
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if d.HasEdge(i, j) {
				if !first {
					b.WriteByte(' ')
				}
				first = false
				fmt.Fprintf(&b, "%d-%d", i, j)
			}
		}
	}
	b.WriteByte(']')
	return b.String()
}

// bitsKey packs the upper-triangle adjacency bits into a comparable string,
// suitable as a map key for a fixed vertex labeling.
func (d *Dense) bitsKey() string {
	return string(d.AppendBits(make([]byte, 0, d.n*4+1)))
}

// AppendBits appends the raw adjacency-bits key of d to buf and returns the
// extended slice. Classifier lookups use it with a reused scratch buffer so
// the per-subgraph hot path performs zero allocations; bitsKey is the
// allocating convenience wrapper.
//
// alloc-budget: 0
func (d *Dense) AppendBits(buf []byte) []byte {
	buf = append(buf, byte(d.n))
	for i := 0; i < d.n; i++ {
		r := d.rows[i]
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return buf
}

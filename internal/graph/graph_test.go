package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(5)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false, want true")
	}
	if g.AddEdge(1, 0) {
		t.Error("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop accepted")
	}
	if g.AddEdge(0, 7) {
		t.Error("out-of-range edge accepted")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge existing = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge missing = true")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.M() != 1 {
		t.Errorf("graph state wrong after removal: M=%d", g.M())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		g.AddEdge(0, v)
	}
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
	if g.Degree(0) != 5 {
		t.Errorf("Degree(0) = %d, want 5", g.Degree(0))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("clone shares storage with original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Errorf("edge counts: clone=%d orig=%d", c.M(), g.M())
	}
}

func TestInduced(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	d := g.Induced([]int32{0, 1, 2})
	if d.M() != 3 || !d.Connected() {
		t.Errorf("induced triangle wrong: %v", d)
	}
	d2 := g.Induced([]int32{0, 3})
	if d2.M() != 0 {
		t.Errorf("induced on non-adjacent pair has %d edges", d2.M())
	}
}

func TestNames(t *testing.T) {
	g := New(2)
	if got := g.Name(1); got != "v1" {
		t.Errorf("default name = %q", got)
	}
	g.SetName(1, "YAL001C")
	if got := g.Name(1); got != "YAL001C" {
		t.Errorf("name = %q", got)
	}
	v := g.AddVertex()
	if v != 2 || g.Name(2) != "v2" {
		t.Errorf("AddVertex -> %d name %q", v, g.Name(2))
	}
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 0)
	if d.M() != 4 {
		t.Errorf("M = %d, want 4", d.M())
	}
	if !d.Connected() {
		t.Error("4-cycle reported disconnected")
	}
	if d.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", d.Degree(0))
	}
	ds := d.DegreeSequence()
	for _, x := range ds {
		if x != 2 {
			t.Errorf("degree sequence %v, want all 2s", ds)
		}
	}
}

func TestDenseDisconnected(t *testing.T) {
	d := NewDense(4)
	d.AddEdge(0, 1)
	d.AddEdge(2, 3)
	if d.Connected() {
		t.Error("two disjoint edges reported connected")
	}
}

func TestDensePermute(t *testing.T) {
	d := NewDense(3)
	d.AddEdge(0, 1) // path 0-1, isolated 2
	p := d.Permute([]int{2, 1, 0})
	if !p.HasEdge(1, 2) || p.HasEdge(0, 1) {
		t.Errorf("permute wrong: %v", p)
	}
}

func TestDenseSparseRoundTrip(t *testing.T) {
	d := NewDense(5)
	d.AddEdge(0, 2)
	d.AddEdge(2, 4)
	d.AddEdge(1, 3)
	s := d.Sparse()
	if s.M() != d.M() || s.N() != d.N() {
		t.Fatalf("round trip sizes differ")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if d.HasEdge(i, j) != s.HasEdge(i, j) {
				t.Fatalf("edge (%d,%d) differs", i, j)
			}
		}
	}
}

func TestCanonicalKeyIsomorphicPaths(t *testing.T) {
	// Path 0-1-2-3 vs path relabeled arbitrarily.
	a := NewDense(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	b := NewDense(4)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	b.AddEdge(3, 1)
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("isomorphic paths got different canonical keys")
	}
	// Star is not isomorphic to the path.
	c := NewDense(4)
	c.AddEdge(0, 1)
	c.AddEdge(0, 2)
	c.AddEdge(0, 3)
	if CanonicalKey(a) == CanonicalKey(c) {
		t.Error("path and star share canonical key")
	}
}

func TestCanonicalKeyRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6) // 3..8
		d := NewDense(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					d.AddEdge(i, j)
				}
			}
		}
		perm := rng.Perm(n)
		p := d.Permute(perm)
		if CanonicalKey(d) != CanonicalKey(p) {
			t.Fatalf("trial %d: canonical keys differ for permuted copies of %v", trial, d)
		}
	}
}

func TestIsomorphicLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 9 + rng.Intn(10) // beyond exact-canonical range
		d := NewDense(n)
		// random connected-ish graph
		for i := 1; i < n; i++ {
			d.AddEdge(i, rng.Intn(i))
		}
		for e := 0; e < n; e++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		p := d.Permute(rng.Perm(n))
		if !Isomorphic(d, p) {
			t.Fatalf("trial %d: permuted copy not isomorphic", trial)
		}
	}
}

func TestNotIsomorphic(t *testing.T) {
	a := NewDense(5) // 5-cycle
	for i := 0; i < 5; i++ {
		a.AddEdge(i, (i+1)%5)
	}
	b := NewDense(5) // path + chord elsewhere, same edge count
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(0, 2)
	if Isomorphic(a, b) {
		t.Error("cycle and tadpole reported isomorphic")
	}
}

func TestClassifier(t *testing.T) {
	cl := NewClassifier()
	tri := NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	path := NewDense(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	id1 := cl.Classify(tri)
	id2 := cl.Classify(path)
	if id1 == id2 {
		t.Fatal("triangle and path classified together")
	}
	// Relabeled triangle maps to the same class.
	tri2 := NewDense(3)
	tri2.AddEdge(2, 1)
	tri2.AddEdge(1, 0)
	tri2.AddEdge(0, 2)
	if cl.Classify(tri2) != id1 {
		t.Error("relabeled triangle got a new class")
	}
	if cl.NumClasses() != 2 {
		t.Errorf("NumClasses = %d, want 2", cl.NumClasses())
	}
	if cl.Rep(id1).M() != 3 {
		t.Errorf("representative wrong: %v", cl.Rep(id1))
	}
}

func TestClassifierMesoScale(t *testing.T) {
	cl := NewClassifier()
	rng := rand.New(rand.NewSource(3))
	n := 12
	d := NewDense(n)
	for i := 1; i < n; i++ {
		d.AddEdge(i, rng.Intn(i))
	}
	id := cl.Classify(d)
	for trial := 0; trial < 20; trial++ {
		p := d.Permute(rng.Perm(n))
		if cl.Classify(p) != id {
			t.Fatalf("trial %d: permuted meso-scale pattern reclassified", trial)
		}
	}
}

func TestAutomorphismsCycle(t *testing.T) {
	// 4-cycle has dihedral group of order 8.
	d := NewDense(4)
	for i := 0; i < 4; i++ {
		d.AddEdge(i, (i+1)%4)
	}
	auts := Automorphisms(d, 0)
	if len(auts) != 8 {
		t.Errorf("|Aut(C4)| = %d, want 8", len(auts))
	}
}

func TestOrbitsCycleWithPendant(t *testing.T) {
	// Triangle 0-1-2 with pendant 3 attached to 0: orbits {0}, {1,2}, {3}.
	d := NewDense(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	d.AddEdge(0, 3)
	orbits := Orbits(d)
	if len(orbits) != 3 {
		t.Fatalf("orbits = %v, want 3 sets", orbits)
	}
	// The 2-element orbit must be {1,2}.
	found := false
	for _, o := range orbits {
		if len(o) == 2 && o[0] == 1 && o[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("orbit {1,2} missing: %v", orbits)
	}
}

func TestOrbitsFourCycle(t *testing.T) {
	// The paper's motif g (Figure 2) is the 4-cycle with symmetry sets
	// {v1,v3} and {v2,v4}; as one orbit structure, C4's vertex orbit is all 4
	// vertices. With the paper's labeling the relevant sets are the two
	// antipodal pairs; our Orbits returns the full automorphism orbit.
	d := NewDense(4)
	for i := 0; i < 4; i++ {
		d.AddEdge(i, (i+1)%4)
	}
	orbits := Orbits(d)
	if len(orbits) != 1 || len(orbits[0]) != 4 {
		t.Errorf("C4 orbits = %v, want one orbit of size 4", orbits)
	}
}

func TestCountInducedTriangles(t *testing.T) {
	// K4 contains 4 triangles as induced subgraphs... but in K4 every
	// 3-subset induces a triangle, so 4.
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	tri := NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	n, exact := CountInducedUpTo(g, tri, 0, 0)
	if !exact || n != 4 {
		t.Errorf("triangles in K4 = %d (exact=%v), want 4", n, exact)
	}
	// Path of 3 is NOT induced anywhere in K4.
	path := NewDense(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	n, _ = CountInducedUpTo(g, path, 0, 0)
	if n != 0 {
		t.Errorf("induced P3 in K4 = %d, want 0", n)
	}
}

func TestCountInducedLimit(t *testing.T) {
	// Large cycle: count 2-paths with a small limit; should stop early.
	g := New(100)
	for i := 0; i < 100; i++ {
		g.AddEdge(i, (i+1)%100)
	}
	path := NewDense(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	n, _ := CountInducedUpTo(g, path, 5, 0)
	if n < 5 {
		t.Errorf("count with limit = %d, want >= 5", n)
	}
	full, exact := CountInducedUpTo(g, path, 0, 0)
	if !exact || full != 100 {
		t.Errorf("P3 count in C100 = %d (exact=%v), want 100", full, exact)
	}
}

func TestCountInducedStepBudget(t *testing.T) {
	g := New(60)
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			g.AddEdge(i, j)
		}
	}
	tri := NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	_, exact := CountInducedUpTo(g, tri, 0, 100)
	if exact {
		t.Error("tiny step budget reported exact on K60")
	}
}

func TestInvariantMatchesIsomorphism(t *testing.T) {
	// Property: permuting never changes the invariant.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		d := NewDense(n)
		for i := 1; i < n; i++ {
			d.AddEdge(i, rng.Intn(i))
		}
		for e := 0; e < n/2; e++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		p := d.Permute(rng.Perm(n))
		return Invariant(d) == Invariant(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDegreeSequenceInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		d := NewDense(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					d.AddEdge(i, j)
				}
			}
		}
		p := d.Permute(rng.Perm(n))
		a, b := d.DegreeSequence(), p.DegreeSequence()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgesList(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	es := g.Edges(nil)
	if len(es) != 3 {
		t.Fatalf("Edges returned %d, want 3", len(es))
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered", e)
		}
	}
}

func TestDenseString(t *testing.T) {
	d := NewDense(3)
	d.AddEdge(0, 1)
	if got := d.String(); got != "3:[0-1]" {
		t.Errorf("String() = %q", got)
	}
}

func TestDenseRowEqualAndSequence(t *testing.T) {
	a := NewDense(3)
	a.AddEdge(0, 1)
	if a.Row(0)&(1<<1) == 0 {
		t.Error("Row(0) missing bit for vertex 1")
	}
	b := NewDense(3)
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Error("identical graphs not Equal")
	}
	b.AddEdge(1, 2)
	if a.Equal(b) {
		t.Error("different graphs Equal")
	}
	if a.Equal(NewDense(4)) {
		t.Error("different sizes Equal")
	}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ds := g.DegreeSequence()
	if ds[0] != 3 || ds[3] != 1 {
		t.Errorf("degree sequence = %v", ds)
	}
}

func TestNewDensePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(33) did not panic")
		}
	}()
	NewDense(MaxDense + 1)
}

func TestIsoMappingWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		a := NewDense(n)
		for v := 1; v < n; v++ {
			a.AddEdge(v, rng.Intn(v))
		}
		a.AddEdge(rng.Intn(n), rng.Intn(n))
		b := a.Permute(rng.Perm(n))
		m := IsoMapping(a, b)
		if m == nil {
			t.Fatalf("trial %d: no mapping for permuted copy", trial)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if a.HasEdge(i, j) != b.HasEdge(m[i], m[j]) {
					t.Fatalf("trial %d: mapping not an isomorphism", trial)
				}
			}
		}
	}
	// Non-isomorphic graphs get nil.
	tri := NewDense(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	path := NewDense(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	if IsoMapping(tri, path) != nil {
		t.Error("mapping between non-isomorphic graphs")
	}
}

func TestTreeHelpersInPackage(t *testing.T) {
	p4 := NewDense(4)
	p4.AddEdge(0, 1)
	p4.AddEdge(1, 2)
	p4.AddEdge(2, 3)
	if !p4.IsTree() {
		t.Error("P4 not a tree")
	}
	k, ok := TreeCanonicalKey(p4)
	if !ok || k == "" {
		t.Fatalf("tree key: %q %v", k, ok)
	}
	// Single vertex.
	one := NewDense(1)
	if k1, ok := TreeCanonicalKey(one); !ok || k1 != "()" {
		t.Errorf("singleton key = %q %v", k1, ok)
	}
	// Even path has two centers; odd path one — keys still canonical.
	p5 := NewDense(5)
	for i := 0; i < 4; i++ {
		p5.AddEdge(i, i+1)
	}
	if _, ok := TreeCanonicalKey(p5); !ok {
		t.Error("P5 rejected")
	}
	st := p5.SpanningTree()
	if !st.IsTree() || !st.Equal(p5) {
		t.Errorf("spanning tree of a tree should be itself: %v", st)
	}
	if NewDense(0).IsTree() {
		t.Error("empty graph is not a tree")
	}
}

func TestIsomorphicViaInvariantPath(t *testing.T) {
	// Large graphs route through vf2DenseIso; ensure mismatched edge counts
	// short-circuit.
	a := NewDense(12)
	b := NewDense(12)
	for v := 1; v < 12; v++ {
		a.AddEdge(v, v-1)
		b.AddEdge(v, v-1)
	}
	b.AddEdge(0, 5)
	if Isomorphic(a, b) {
		t.Error("different edge counts isomorphic")
	}
}

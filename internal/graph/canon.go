package graph

import (
	"math/bits"
	"sort"
)

// canonExactMax is the largest vertex count for which CanonicalKey computes
// an exact canonical form by (pruned) permutation search. Above this size,
// pattern classes are resolved by invariant hashing plus explicit
// isomorphism checks (see Classifier).
const canonExactMax = 8

// wlColors returns per-vertex colors from iterated Weisfeiler-Leman style
// refinement: an isomorphism-invariant vertex signature. It is the hottest
// function in meso-scale mining, so it works in stack buffers and performs
// a single result allocation.
func wlColors(d *Dense) []uint64 {
	var curArr, nextArr, neighArr [MaxDense]uint64
	n := d.n
	cur, next := curArr[:n], nextArr[:n]
	for v := 0; v < n; v++ {
		cur[v] = uint64(bits.OnesCount32(d.rows[v]))
	}
	for round := 0; round < 3; round++ {
		for v := 0; v < n; v++ {
			neigh := neighArr[:0]
			for m := d.rows[v]; m != 0; m &= m - 1 {
				neigh = append(neigh, cur[bits.TrailingZeros32(m)])
			}
			sortUint64(neigh)
			h := cur[v]*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
			for _, c := range neigh {
				h = (h ^ c) * 0x100000001b3
			}
			next[v] = h
		}
		cur, next = next, cur
	}
	out := make([]uint64, n)
	copy(out, cur)
	return out
}

// sortUint64 sorts a short slice in place (insertion sort; motif patterns
// have at most MaxDense entries).
func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Invariant returns an isomorphism-invariant hash of d. Two isomorphic
// graphs always share an invariant; two graphs with the same invariant are
// usually, but not necessarily, isomorphic.
func Invariant(d *Dense) uint64 {
	cols := wlColors(d)
	sortUint64(cols)
	h := uint64(d.n)*0x9e3779b97f4a7c15 + uint64(d.M())
	for _, c := range cols {
		h = (h ^ c) * 0x100000001b3
	}
	return h
}

// CanonicalKey returns a string that is identical for isomorphic graphs and
// distinct for non-isomorphic ones, for graphs with at most canonExactMax
// vertices. It panics for larger graphs; use Classifier for those.
//
// invariant: d.n <= canonExactMax — exact canonical search is factorial in
// the vertex count, so a larger input is a caller bug (the miner routes
// meso-scale patterns through Classifier), never a data-dependent state.
func CanonicalKey(d *Dense) string {
	if d.n > canonExactMax {
		panic("graph: CanonicalKey limited to 8 vertices; use Classifier")
	}
	// Group vertices into invariant color classes; the canonical permutation
	// orders classes by (count, color) and permutes only within classes.
	cols := wlColors(d)
	best := canonSearch(d, cols)
	return best.bitsKey()
}

// canonSearch finds the lexicographically minimal relabeling of d that is
// compatible with the color classes.
func canonSearch(d *Dense, cols []uint64) *Dense {
	n := d.n
	// Order vertices into cells: vertices sharing a color are interchangeable
	// candidates for the same canonical positions.
	type cell struct {
		color uint64
		verts []int
	}
	byColor := map[uint64][]int{}
	for v, c := range cols {
		byColor[c] = append(byColor[c], v)
	}
	cells := make([]cell, 0, len(byColor))
	for c, vs := range byColor {
		cells = append(cells, cell{c, vs})
	}
	sort.Slice(cells, func(i, j int) bool {
		if len(cells[i].verts) != len(cells[j].verts) {
			return len(cells[i].verts) < len(cells[j].verts)
		}
		return cells[i].color < cells[j].color
	})
	pool := make([][]int, 0, n) // candidate vertex pool per canonical position
	for _, c := range cells {
		for range c.verts {
			pool = append(pool, c.verts)
		}
	}

	// The canonical form is the lexicographically minimal sequence of
	// lower-triangle rows: curRows[pos] holds the adjacency bits of the
	// vertex placed at position pos toward positions 0..pos-1.
	perm := make([]int, n)
	used := make([]bool, n)
	curRows := make([]uint32, n)
	var bestRows []uint32

	var rec func(pos int, tight bool)
	rec = func(pos int, tight bool) {
		if pos == n {
			if bestRows == nil {
				bestRows = append([]uint32(nil), curRows...)
			} else if lexLess(curRows, bestRows) {
				copy(bestRows, curRows)
			}
			return
		}
		for _, v := range pool[pos] {
			if used[v] {
				continue
			}
			var row uint32
			for p := 0; p < pos; p++ {
				if d.HasEdge(v, perm[p]) {
					row |= 1 << uint(p)
				}
			}
			nt := tight
			if bestRows != nil && tight {
				if row > bestRows[pos] {
					continue // lexicographically worse; prune
				}
				nt = row == bestRows[pos]
			}
			perm[pos] = v
			used[v] = true
			curRows[pos] = row
			rec(pos+1, nt)
			used[v] = false
		}
	}
	rec(0, true)

	best := NewDense(n)
	for i := 0; i < n; i++ {
		for p := 0; p < i; p++ {
			if bestRows[i]&(1<<uint(p)) != 0 {
				best.AddEdge(i, p)
			}
		}
	}
	return best
}

// lexLess reports whether row sequence a is lexicographically smaller than b.
func lexLess(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Isomorphic reports whether a and b are isomorphic.
func Isomorphic(a, b *Dense) bool {
	if a.n != b.n || a.M() != b.M() {
		return false
	}
	if Invariant(a) != Invariant(b) {
		return false
	}
	if a.n <= canonExactMax {
		return CanonicalKey(a) == CanonicalKey(b)
	}
	return vf2DenseIso(a, b)
}

// Classifier interns dense graphs into isomorphism classes. It is the
// mechanism the motif miner uses to group subgraph occurrences by pattern,
// combining exact canonical keys (small graphs) with invariant buckets
// resolved by VF2 (meso-scale graphs).
type Classifier struct {
	byRaw  map[string]int   // raw (uncanonicalized) adjacency bits -> class id
	byKey  map[string]int   // exact canonical key -> class id (n <= canonExactMax)
	byInv  map[uint64][]int // invariant -> candidate class ids (n > canonExactMax)
	reps   []*Dense         // class id -> representative
	occMap map[string][]int // raw adjacency bits -> rep-order mapping (see OccMapping)
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{byRaw: map[string]int{}, byKey: map[string]int{}, byInv: map[uint64][]int{}}
}

// NumClasses returns the number of distinct isomorphism classes seen.
func (c *Classifier) NumClasses() int { return len(c.reps) }

// Rep returns the representative graph of class id.
func (c *Classifier) Rep(id int) *Dense { return c.reps[id] }

// Classify returns the isomorphism class id of d, allocating a new class if
// d is not isomorphic to any previously classified graph.
//
// Identical raw adjacency matrices (same vertex labeling, not merely
// isomorphic) are resolved through a first-level cache: subgraph
// enumeration presents the same few labeled shapes over and over, and the
// raw-bits lookup skips the canonical search entirely on those hits. The
// cache is an implementation detail — it cannot change any class id, only
// the cost of computing it.
func (c *Classifier) Classify(d *Dense) int {
	raw := d.bitsKey()
	if id, ok := c.byRaw[raw]; ok {
		return id
	}
	id := c.classifySlow(d)
	c.byRaw[raw] = id
	return id
}

// OccMapping returns IsoMapping(c.Rep(id), d) for a graph d previously
// classified into class id, memoized by d's raw adjacency bits: identical
// labeled graphs always yield the identical mapping, and enumeration
// presents the same labeled shapes repeatedly. Callers must treat the
// returned slice as read-only.
func (c *Classifier) OccMapping(id int, d *Dense) []int {
	raw := d.bitsKey()
	if mp, ok := c.occMap[raw]; ok {
		return mp
	}
	mp := IsoMapping(c.reps[id], d)
	if c.occMap == nil {
		c.occMap = map[string][]int{}
	}
	c.occMap[raw] = mp
	return mp
}

// classifySlow is Classify without the raw-bits shortcut: canonical keys for
// small graphs, invariant buckets plus VF2 for meso-scale ones.
func (c *Classifier) classifySlow(d *Dense) int {
	if d.n <= canonExactMax {
		k := CanonicalKey(d)
		if id, ok := c.byKey[k]; ok {
			return id
		}
		id := len(c.reps)
		c.reps = append(c.reps, d.Clone())
		c.byKey[k] = id
		return id
	}
	inv := Invariant(d)
	for _, id := range c.byInv[inv] {
		if vf2DenseIso(c.reps[id], d) {
			return id
		}
	}
	id := len(c.reps)
	c.reps = append(c.reps, d.Clone())
	c.byInv[inv] = append(c.byInv[inv], id)
	return id
}

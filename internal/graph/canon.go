package graph

import (
	"math/bits"
)

// canonExactMax is the largest vertex count for which CanonicalKey computes
// an exact canonical form by (pruned) permutation search. Above this size,
// pattern classes are resolved by invariant hashing plus explicit
// isomorphism checks (see Classifier).
const canonExactMax = 8

// wlColors fills out with per-vertex colors from iterated Weisfeiler-Leman
// style refinement: an isomorphism-invariant vertex signature. It is the
// hottest function in meso-scale mining, so it works entirely in stack and
// caller-provided buffers and performs no allocation.
//
// alloc-budget: 0
func wlColors(d *Dense, out *[MaxDense]uint64) {
	var curArr, nextArr, neighArr [MaxDense]uint64
	n := d.n
	cur, next := curArr[:n], nextArr[:n]
	for v := 0; v < n; v++ {
		cur[v] = uint64(bits.OnesCount32(d.rows[v]))
	}
	for round := 0; round < 3; round++ {
		for v := 0; v < n; v++ {
			neigh := neighArr[:0]
			for m := d.rows[v]; m != 0; m &= m - 1 {
				neigh = append(neigh, cur[bits.TrailingZeros32(m)])
			}
			sortUint64(neigh)
			h := cur[v]*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
			for _, c := range neigh {
				h = (h ^ c) * 0x100000001b3
			}
			next[v] = h
		}
		cur, next = next, cur
	}
	copy(out[:n], cur)
}

// sortUint64 sorts a short slice in place (insertion sort; motif patterns
// have at most MaxDense entries).
func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Invariant returns an isomorphism-invariant hash of d. Two isomorphic
// graphs always share an invariant; two graphs with the same invariant are
// usually, but not necessarily, isomorphic.
//
// alloc-budget: 0
func Invariant(d *Dense) uint64 {
	var colArr [MaxDense]uint64
	wlColors(d, &colArr)
	cols := colArr[:d.n]
	sortUint64(cols)
	h := uint64(d.n)*0x9e3779b97f4a7c15 + uint64(d.M())
	for _, c := range cols {
		h = (h ^ c) * 0x100000001b3
	}
	return h
}

// CanonicalKey returns a string that is identical for isomorphic graphs and
// distinct for non-isomorphic ones, for graphs with at most canonExactMax
// vertices. It panics for larger graphs; use Classifier for those.
//
// invariant: d.n <= canonExactMax — exact canonical search is factorial in
// the vertex count, so a larger input is a caller bug (the miner routes
// meso-scale patterns through Classifier), never a data-dependent state.
func CanonicalKey(d *Dense) string {
	if d.n > canonExactMax {
		panic("graph: CanonicalKey limited to 8 vertices; use Classifier")
	}
	var rows [canonExactMax]uint32
	canonRows(d, &rows)
	best := NewDense(d.n)
	for i := 0; i < d.n; i++ {
		for p := 0; p < i; p++ {
			if rows[i]&(1<<uint(p)) != 0 {
				best.AddEdge(i, p)
			}
		}
	}
	return best.bitsKey()
}

// canonState is the stack-resident state of the canonical permutation
// search. Everything is fixed-size arrays and bitmasks so a search performs
// zero heap allocations — it runs once per classifier miss, which under
// meso-scale mining is once per distinct labeled shape.
type canonState struct {
	d        *Dense
	n        int
	vorder   [canonExactMax]int // vertices sorted by (cell size, color, id)
	runEnd   [canonExactMax]int // end of the color run containing position i
	runStart [canonExactMax]int
	perm     [canonExactMax]int
	curRows  [canonExactMax]uint32
	bestRows [canonExactMax]uint32
	used     uint32 // vertex bitmask
	haveBest bool
}

// canonRows computes the canonical form of d (n <= canonExactMax) into
// rows: the lexicographically minimal sequence of lower-triangle adjacency
// rows over all permutations compatible with the invariant color classes.
// rows[pos] holds the adjacency bits of the vertex placed at pos toward
// positions 0..pos-1.
func canonRows(d *Dense, rows *[canonExactMax]uint32) {
	n := d.n
	var colArr [MaxDense]uint64
	wlColors(d, &colArr)
	cols := colArr[:n]

	// Group vertices into cells: vertices sharing a color are
	// interchangeable candidates for the same canonical positions. Cells
	// are ordered by (size, color); within a cell, ascending vertex id.
	var st canonState
	st.d, st.n = d, n
	var size [canonExactMax]int
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if cols[u] == cols[v] {
				size[v]++
			}
		}
		st.vorder[v] = v
	}
	vless := func(a, b int) bool {
		if size[a] != size[b] {
			return size[a] < size[b]
		}
		if cols[a] != cols[b] {
			return cols[a] < cols[b]
		}
		return a < b
	}
	vo := st.vorder[:n]
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vless(vo[j], vo[j-1]); j-- {
			vo[j], vo[j-1] = vo[j-1], vo[j]
		}
	}
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && cols[vo[hi]] == cols[vo[lo]] {
			hi++
		}
		for i := lo; i < hi; i++ {
			st.runStart[i], st.runEnd[i] = lo, hi
		}
		lo = hi
	}

	st.rec(0, true)
	*rows = st.bestRows
}

func (st *canonState) rec(pos int, tight bool) {
	if pos == st.n {
		if !st.haveBest {
			st.bestRows = st.curRows
			st.haveBest = true
		} else if lexLess(st.curRows[:st.n], st.bestRows[:st.n]) {
			st.bestRows = st.curRows
		}
		return
	}
	for i := st.runStart[pos]; i < st.runEnd[pos]; i++ {
		v := st.vorder[i]
		if st.used&(1<<uint(v)) != 0 {
			continue
		}
		var row uint32
		for p := 0; p < pos; p++ {
			if st.d.HasEdge(v, st.perm[p]) {
				row |= 1 << uint(p)
			}
		}
		nt := tight
		if st.haveBest && tight {
			if row > st.bestRows[pos] {
				continue // lexicographically worse; prune
			}
			nt = row == st.bestRows[pos]
		}
		st.perm[pos] = v
		st.used |= 1 << uint(v)
		st.curRows[pos] = row
		st.rec(pos+1, nt)
		st.used &^= 1 << uint(v)
	}
}

// canonCode packs a canonical row sequence into one comparable word:
// position rows in the low seven bytes (row 0 is always empty), the vertex
// count in the top byte. For n <= canonExactMax = 8 every row fits its
// byte, so the packing is injective — equal codes mean isomorphic graphs.
//
// alloc-budget: 0
func canonCode(n int, rows *[canonExactMax]uint32) uint64 {
	code := uint64(n) << 56
	for i := 1; i < n; i++ {
		code |= uint64(rows[i]) << (8 * (i - 1))
	}
	return code
}

// lexLess reports whether row sequence a is lexicographically smaller than b.
func lexLess(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Isomorphic reports whether a and b are isomorphic.
func Isomorphic(a, b *Dense) bool {
	if a.n != b.n || a.M() != b.M() {
		return false
	}
	if Invariant(a) != Invariant(b) {
		return false
	}
	if a.n <= canonExactMax {
		return CanonicalKey(a) == CanonicalKey(b)
	}
	return vf2DenseIso(a, b)
}

// Classifier interns dense graphs into isomorphism classes. It is the
// mechanism the motif miner uses to group subgraph occurrences by pattern,
// combining exact canonical keys (small graphs) with invariant buckets
// resolved by VF2 (meso-scale graphs).
type Classifier struct {
	byRaw  map[string]int   // raw (uncanonicalized) adjacency bits -> class id
	byKey  map[uint64]int   // packed canonical code -> class id (n <= canonExactMax)
	byInv  map[uint64][]int // invariant -> candidate class ids (n > canonExactMax)
	reps   []*Dense         // class id -> representative
	occMap map[string][]int // raw adjacency bits -> rep-order mapping (see OccMapping)
	keyBuf []byte           // scratch for raw-bits lookups (no alloc on hits)
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{byRaw: map[string]int{}, byKey: map[uint64]int{}, byInv: map[uint64][]int{}}
}

// NumClasses returns the number of distinct isomorphism classes seen.
func (c *Classifier) NumClasses() int { return len(c.reps) }

// Rep returns the representative graph of class id.
func (c *Classifier) Rep(id int) *Dense { return c.reps[id] }

// Classify returns the isomorphism class id of d, allocating a new class if
// d is not isomorphic to any previously classified graph.
//
// Identical raw adjacency matrices (same vertex labeling, not merely
// isomorphic) are resolved through a first-level cache: subgraph
// enumeration presents the same few labeled shapes over and over, and the
// raw-bits lookup skips the canonical search entirely on those hits. The
// cache is an implementation detail — it cannot change any class id, only
// the cost of computing it.
// The raw key is built in a reused scratch buffer: the map lookup through
// string(buf) compiles to an alloc-free probe, so steady-state hits cost
// zero allocations; only a first-seen labeled shape pays the string copy.
func (c *Classifier) Classify(d *Dense) int {
	c.keyBuf = d.AppendBits(c.keyBuf[:0])
	if id, ok := c.byRaw[string(c.keyBuf)]; ok {
		return id
	}
	id := c.classifySlow(d)
	c.byRaw[string(c.keyBuf)] = id
	return id
}

// OccMapping returns IsoMapping(c.Rep(id), d) for a graph d previously
// classified into class id, memoized by d's raw adjacency bits: identical
// labeled graphs always yield the identical mapping, and enumeration
// presents the same labeled shapes repeatedly. Callers must treat the
// returned slice as read-only.
// Like Classify, the raw-bits memo is probed through the scratch buffer, so
// repeat shapes — the overwhelmingly common case under enumeration — cost
// zero allocations.
func (c *Classifier) OccMapping(id int, d *Dense) []int {
	c.keyBuf = d.AppendBits(c.keyBuf[:0])
	if mp, ok := c.occMap[string(c.keyBuf)]; ok {
		return mp
	}
	mp := IsoMapping(c.reps[id], d)
	if c.occMap == nil {
		c.occMap = map[string][]int{}
	}
	c.occMap[string(c.keyBuf)] = mp
	return mp
}

// classifySlow is Classify without the raw-bits shortcut: canonical keys for
// small graphs, invariant buckets plus VF2 for meso-scale ones.
func (c *Classifier) classifySlow(d *Dense) int {
	if d.n <= canonExactMax {
		var rows [canonExactMax]uint32
		canonRows(d, &rows)
		k := canonCode(d.n, &rows)
		if id, ok := c.byKey[k]; ok {
			return id
		}
		id := len(c.reps)
		c.reps = append(c.reps, d.Clone())
		c.byKey[k] = id
		return id
	}
	inv := Invariant(d)
	for _, id := range c.byInv[inv] {
		if vf2DenseIso(c.reps[id], d) {
			return id
		}
	}
	id := len(c.reps)
	c.reps = append(c.reps, d.Clone())
	c.byInv[inv] = append(c.byInv[inv], id)
	return id
}

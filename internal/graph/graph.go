// Package graph provides the undirected-graph substrate used throughout the
// LaMoFinder reproduction: a sparse simple graph for whole interactomes, a
// dense bit-matrix graph for small motif patterns, subgraph isomorphism
// (VF2), canonical codes for pattern classes, and automorphism orbits
// (the paper's "symmetric vertex sets").
package graph

import (
	"fmt"
	"sort"
)

// Graph is a sparse undirected simple graph over vertices 0..N-1.
// The zero value is an empty graph; use New to preallocate vertices.
type Graph struct {
	adj   [][]int32
	edges int
	names []string
	// sorted tracks whether each adjacency list is sorted ascending,
	// which HasEdge relies on. AddEdge keeps lists sorted.
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddVertex appends a new isolated vertex and returns its id.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	if g.names != nil {
		g.names = append(g.names, "")
	}
	return len(g.adj) - 1
}

// SetName associates a display name (e.g. a protein identifier) with vertex v.
func (g *Graph) SetName(v int, name string) {
	if g.names == nil {
		g.names = make([]string, len(g.adj))
	}
	g.names[v] = name
}

// Name returns the display name of vertex v, or "v<i>" if none was set.
func (g *Graph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// insertSorted inserts x into s keeping ascending order; returns false if x
// was already present.
func insertSorted(s []int32, x int32) ([]int32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicate edges are
// ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	var ok bool
	if g.adj[u], ok = insertSorted(g.adj[u], int32(v)); !ok {
		return false
	}
	g.adj[v], _ = insertSorted(g.adj[v], int32(u))
	g.edges++
	return true
}

// RemoveEdge removes the undirected edge {u, v} if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	if !removeSorted(&g.adj[u], int32(v)) {
		return false
	}
	removeSorted(&g.adj[v], int32(u))
	g.edges--
	return true
}

func removeSorted(s *[]int32, x int32) bool {
	t := *s
	i := sort.Search(len(t), func(i int) bool { return t[i] >= x })
	if i >= len(t) || t[i] != x {
		return false
	}
	*s = append(t[:i], t[i+1:]...)
	return true
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	s := g.adj[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= int32(v) })
	return i < len(s) && s[i] == int32(v)
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Edges appends every edge (u < v) to dst and returns it.
func (g *Graph) Edges(dst [][2]int32) [][2]int32 {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				dst = append(dst, [2]int32{int32(u), v})
			}
		}
	}
	return dst
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), edges: g.edges}
	for i, a := range g.adj {
		c.adj[i] = append([]int32(nil), a...)
	}
	if g.names != nil {
		c.names = append([]string(nil), g.names...)
	}
	return c
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, len(g.adj))
	for i := range g.adj {
		ds[i] = len(g.adj[i])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// ConnectedComponents returns the vertex sets of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	var stack []int
	for s := range g.adj {
		if seen[s] {
			continue
		}
		var comp []int
		stack = append(stack[:0], s)
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, int(w))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Induced returns the dense induced subgraph on the given vertices, in the
// given vertex order. It panics if len(vs) exceeds MaxDense.
func (g *Graph) Induced(vs []int32) *Dense {
	d := NewDense(len(vs))
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(int(vs[i]), int(vs[j])) {
				d.AddEdge(i, j)
			}
		}
	}
	return d
}

package randnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lamofinder/internal/graph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(50, 100, rng)
	if g.N() != 50 || g.M() != 100 {
		t.Errorf("G(50,100): N=%d M=%d", g.N(), g.M())
	}
}

func TestErdosRenyiSaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(4, 1000, rng)
	if g.M() != 6 {
		t.Errorf("complete K4 expected, got M=%d", g.M())
	}
}

func TestErdosRenyiDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// n < 2 has no vertex pair: the edge request must be ignored rather
	// than spin forever rejecting self-loops.
	for _, n := range []int{-1, 0, 1} {
		g := ErdosRenyi(n, 10, rng)
		if g.M() != 0 {
			t.Errorf("ErdosRenyi(%d, 10): M=%d, want 0", n, g.M())
		}
		if want := max(n, 0); g.N() != want {
			t.Errorf("ErdosRenyi(%d, 10): N=%d, want %d", n, g.N(), want)
		}
	}
	// No self-loops or duplicates survive in a dense draw.
	g := ErdosRenyi(5, 10, rng)
	if g.M() != 10 {
		t.Errorf("G(5,10): M=%d, want 10 (complete K5)", g.M())
	}
	for v := 0; v < 5; v++ {
		if g.HasEdge(v, v) {
			t.Errorf("self-loop at %d", v)
		}
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := BarabasiAlbert(500, 3, 2, rng)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Every non-seed vertex attaches at least once.
	for v := 3; v < 500; v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
	// Preferential attachment produces a hub: max degree well above average.
	maxDeg := 0
	for v := 0; v < 500; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2.0 * float64(g.M()) / 500.0
	if float64(maxDeg) < 3*avg {
		t.Errorf("no hub: max degree %d vs average %.1f", maxDeg, avg)
	}
}

func TestDuplicationDivergenceConnectedEnough(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := DuplicationDivergence(300, 0.4, 0.3, rng)
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 2; v < 300; v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
	comps := g.ConnectedComponents()
	if len(comps[0]) < 250 {
		t.Errorf("giant component only %d/300", len(comps[0]))
	}
}

func TestSwitchEdgesPreservesDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := BarabasiAlbert(200, 3, 2, rng)
	r := Randomize(g, rng)
	if r.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", g.M(), r.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != r.Degree(v) {
			t.Fatalf("degree of %d changed: %d -> %d", v, g.Degree(v), r.Degree(v))
		}
	}
}

func TestSwitchEdgesActuallyRewires(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := BarabasiAlbert(200, 3, 2, rng)
	r := Randomize(g, rng)
	changed := 0
	for _, e := range g.Edges(nil) {
		if !r.HasEdge(int(e[0]), int(e[1])) {
			changed++
		}
	}
	if changed < g.M()/4 {
		t.Errorf("only %d/%d edges rewired", changed, g.M())
	}
}

func TestSwitchEdgesNoSelfOrDuplicate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(30, 60, rng)
		r := Randomize(g, rng)
		// simple-graph invariants: no self loop is representable; check
		// degree preservation and edge count as proxies.
		if r.M() != g.M() {
			return false
		}
		for v := 0; v < 30; v++ {
			if r.Degree(v) != g.Degree(v) {
				return false
			}
			if r.HasEdge(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSwitchEdgesTinyGraph(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	rng := rand.New(rand.NewSource(7))
	r := SwitchEdges(g, 100, rng)
	if r.M() != 1 || !r.HasEdge(0, 1) {
		t.Error("single-edge graph should be unchanged")
	}
}

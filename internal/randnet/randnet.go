// Package randnet generates random networks: the degree-preserving null
// model used for motif uniqueness testing (Milo et al.), and generative
// models (Erdős–Rényi, Barabási–Albert, duplication-divergence) used to
// synthesize PPI-like interactomes.
package randnet

import (
	"math/rand"

	"lamofinder/internal/graph"
)

// ErdosRenyi returns a G(n, m) random simple graph with exactly m edges
// (or fewer if m exceeds the number of vertex pairs).
func ErdosRenyi(n, m int, rng *rand.Rand) *graph.Graph {
	if n < 2 {
		// No vertex pair exists, so the rejection loop below could never
		// terminate for m > 0.
		return graph.New(max(n, 0))
	}
	g := graph.New(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// connected seed of m0 vertices, each new vertex attaches to mAttach
// existing vertices chosen proportionally to degree.
func BarabasiAlbert(n, m0, mAttach int, rng *rand.Rand) *graph.Graph {
	if m0 < 2 {
		m0 = 2
	}
	if m0 > n {
		m0 = n
	}
	if mAttach < 1 {
		mAttach = 1
	}
	g := graph.New(n)
	// Repeated-vertex list implements preferential attachment in O(1).
	var urn []int
	for v := 1; v < m0; v++ {
		g.AddEdge(v-1, v)
		urn = append(urn, v-1, v)
	}
	for v := m0; v < n; v++ {
		added := 0
		for attempt := 0; added < mAttach && attempt < 20*mAttach; attempt++ {
			var target int
			if len(urn) == 0 {
				target = rng.Intn(v)
			} else {
				target = urn[rng.Intn(len(urn))]
			}
			if g.AddEdge(v, target) {
				urn = append(urn, v, target)
				added++
			}
		}
	}
	return g
}

// DuplicationDivergence grows a PPI-like network by gene duplication: each
// new vertex copies a random template's edges, keeping each with probability
// retain, and attaches to the template itself with probability pAttach.
// This model reproduces the heavy-tailed, locally clustered topology of
// experimentally derived interactomes.
func DuplicationDivergence(n int, retain, pAttach float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	if n >= 2 {
		g.AddEdge(0, 1)
	}
	for v := 2; v < n; v++ {
		tpl := rng.Intn(v)
		for _, w := range g.Neighbors(tpl) {
			if rng.Float64() < retain {
				g.AddEdge(v, int(w))
			}
		}
		if rng.Float64() < pAttach {
			g.AddEdge(v, tpl)
		}
		if g.Degree(v) == 0 { // keep the network from fragmenting
			g.AddEdge(v, tpl)
		}
	}
	return g
}

// SwitchEdges returns a randomized copy of g with the same degree sequence,
// produced by attempted double-edge swaps: pick edges {a,b}, {c,d} and
// rewire to {a,d}, {c,b} when that creates no duplicate or self edge.
// attempts is the number of swap attempts; Milo et al. recommend on the
// order of 10x the edge count, which QD(g, rng) uses.
func SwitchEdges(g *graph.Graph, attempts int, rng *rand.Rand) *graph.Graph {
	r := g.Clone()
	edges := r.Edges(nil)
	if len(edges) < 2 {
		return r
	}
	for t := 0; t < attempts; t++ {
		i, j := rng.Intn(len(edges)), rng.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := int(edges[i][0]), int(edges[i][1])
		c, d := int(edges[j][0]), int(edges[j][1])
		if rng.Intn(2) == 0 {
			b, a = a, b
		}
		// Proposed rewiring: {a,d}, {c,b}.
		if a == d || c == b || a == c || b == d {
			continue
		}
		if r.HasEdge(a, d) || r.HasEdge(c, b) {
			continue
		}
		r.RemoveEdge(a, b)
		r.RemoveEdge(c, d)
		r.AddEdge(a, d)
		r.AddEdge(c, b)
		edges[i] = orient(a, d)
		edges[j] = orient(c, b)
	}
	return r
}

func orient(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// Randomize returns a degree-preserving randomization of g using 10*M swap
// attempts, the conventional setting for motif null models.
func Randomize(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	return SwitchEdges(g, 10*g.M(), rng)
}

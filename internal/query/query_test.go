package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"lamofinder/internal/artifact"
	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
)

// plantedMotifs converts the benchmark's planted templates into
// labeled-motif fixtures: the ground-truth occurrence sets with full
// frequency and a fixed high uniqueness, vertices left unlabeled. Eq.-5
// scoring consumes only topology, occurrences, frequency, and uniqueness
// — vertex labels feed the labeling pipeline, not the predictor — so
// these fixtures score exactly like mined motifs while skipping ESU and
// LaMoFinder entirely, which makes a full-size serving artifact cheap
// enough for unit tests and benchmarks.
func plantedMotifs(m *dataset.MIPS) []*label.LabeledMotif {
	motifs := make([]*label.LabeledMotif, 0, len(m.Planted))
	for _, pt := range m.Planted {
		if len(pt.Instances) == 0 {
			continue
		}
		motifs = append(motifs, &label.LabeledMotif{
			Pattern:     pt.Pattern,
			Labels:      make([][]int32, pt.Pattern.N()),
			Occurrences: pt.Instances,
			Frequency:   len(pt.Instances),
			Uniqueness:  0.9,
		})
	}
	return motifs
}

// mipsArtifact builds the full-size (1877-protein) indexed serving
// artifact from the synthetic MIPS benchmark, using the planted templates
// as ready-made labeled motifs. At 1877 proteins the engine spans two
// BatchSize batches, so chunked execution and batch-boundary determinism
// are actually exercised. Built once and shared read-only.
var mipsArtifact = sync.OnceValue(func() *artifact.Artifact {
	m := dataset.NewMIPS(dataset.DefaultMIPSConfig())
	art, err := artifact.Build("mips-synthetic", "query test fixture",
		m.Task, m.CategoryNames(), m.Corpus, m.Corpus.DirectCounts(), 30, plantedMotifs(m))
	if err != nil {
		panic(err)
	}
	art.BuildIndex(0)
	return art
})

var mipsView = sync.OnceValue(func() *View {
	v, err := NewView(mipsArtifact(), 0)
	if err != nil {
		panic(err)
	}
	return v
})

// response is the decoded /v1/query body shape.
type response struct {
	Artifact string            `json:"artifact"`
	Columns  []string          `json:"columns"`
	RowCount int               `json:"row_count"`
	Rows     []json.RawMessage `json:"rows"`
}

func run(t *testing.T, v *View, p *Plan, parallelism int) ([]byte, *response) {
	t.Helper()
	res, fe := Execute(v, p, parallelism)
	if fe != nil {
		t.Fatalf("execute: %v", fe)
	}
	body := res.Bytes()
	var dec response
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatalf("response does not parse: %v\n%s", err, body)
	}
	if dec.RowCount != len(dec.Rows) {
		t.Fatalf("row_count %d but %d rows", dec.RowCount, len(dec.Rows))
	}
	if dec.RowCount != res.RowCount() {
		t.Fatalf("RowCount() %d but body says %d", res.RowCount(), dec.RowCount)
	}
	return body, &dec
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		plan  Plan
		field string
	}{
		{"bad scan", Plan{Scan: "motifs"}, "scan"},
		{"bad group", Plan{GroupBy: "degree"}, "group_by"},
		{"negative topk", Plan{TopK: -1}, "topk"},
		{"bad op", Plan{Filter: []Predicate{{Field: "degree", Op: "like"}}}, "filter[0].op"},
		{"bad field", Plan{Filter: []Predicate{{Field: "mass", Op: "ge"}}}, "filter[0].field"},
		{"degree missing value", Plan{Filter: []Predicate{{Field: "degree", Op: "ge"}}}, "filter[0].value"},
		{"degree in", Plan{Filter: []Predicate{{Field: "degree", Op: "in"}}}, "filter[0].op"},
		{"score eq", Plan{Filter: []Predicate{{Field: "score", Op: "eq", Value: f(0.5)}}}, "filter[0].op"},
		{"score missing value", Plan{Filter: []Predicate{{Field: "score", Op: "ge"}}}, "filter[0].value"},
		{"annotated lt", Plan{Filter: []Predicate{{Field: "annotated", Op: "lt", Bool: b(true)}}}, "filter[0].op"},
		{"annotated missing bool", Plan{Filter: []Predicate{{Field: "annotated", Op: "eq"}}}, "filter[0].bool"},
		{"protein ge", Plan{Filter: []Predicate{{Field: "protein", Op: "ge", Names: []string{"x"}}}}, "filter[0].op"},
		{"protein empty", Plan{Filter: []Predicate{{Field: "protein", Op: "in"}}}, "filter[0].names"},
		{"bad column", Plan{Project: []string{"protein", "mass"}}, "project[1]"},
	}
	for _, tc := range cases {
		fe := tc.plan.Validate()
		if fe == nil {
			t.Errorf("%s: validated clean, want error on %s", tc.name, tc.field)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: error on field %q (%s), want %q", tc.name, fe.Field, fe.Reason, tc.field)
		}
		if fe.Reason == "" || !strings.Contains(fe.Error(), fe.Field) {
			t.Errorf("%s: malformed error %q", tc.name, fe.Error())
		}
	}
	good := Plan{
		Scan: "proteins",
		Filter: []Predicate{
			{Field: "degree", Op: "ge", Value: f(2)},
			{Field: "annotated", Op: "eq", Bool: b(false)},
			{Field: "score", Op: "gt", Value: f(0.1)},
			{Field: "protein", Op: "in", Names: []string{"M0001"}},
		},
		TopK:    3,
		Project: []string{"protein", "degree", "function", "name", "score"},
	}
	if fe := good.Validate(); fe != nil {
		t.Fatalf("good plan rejected: %v", fe)
	}
}

func f(x float64) *float64 { return &x }
func b(x bool) *bool       { return &x }

func TestUnknownProteinIsFieldError(t *testing.T) {
	v := mipsView()
	_, fe := Execute(v, &Plan{Filter: []Predicate{
		{Field: "protein", Op: "in", Names: []string{"M0001", "NOSUCH"}},
	}}, 1)
	if fe == nil {
		t.Fatal("unknown protein accepted")
	}
	if fe.Field != "filter[0].names[1]" {
		t.Fatalf("error field %q, want filter[0].names[1]", fe.Field)
	}
}

// TestScanMatchesRankings pins the unfiltered scan to the per-protein
// rankings the artifact index already guarantees: every protein's rows, in
// protein order, each row [name, function, score].
func TestScanMatchesRankings(t *testing.T) {
	v := mipsView()
	_, dec := run(t, v, &Plan{}, 0)
	if dec.Artifact != v.Digest() {
		t.Fatalf("artifact %q, want %q", dec.Artifact, v.Digest())
	}
	want := 0
	for p := 0; p < v.NumProteins(); p++ {
		want += len(v.Ranking(p))
	}
	if dec.RowCount != want {
		t.Fatalf("scan emitted %d rows, rankings hold %d", dec.RowCount, want)
	}
	ri := 0
	for p := 0; p < v.NumProteins(); p++ {
		for _, r := range v.Ranking(p) {
			var row struct {
				name  string
				fn    int
				score float64
			}
			var raw []json.RawMessage
			if err := json.Unmarshal(dec.Rows[ri], &raw); err != nil || len(raw) != 3 {
				t.Fatalf("row %d: %v (%s)", ri, err, dec.Rows[ri])
			}
			mustUnmarshal(t, raw[0], &row.name)
			mustUnmarshal(t, raw[1], &row.fn)
			mustUnmarshal(t, raw[2], &row.score)
			if row.name != v.Name(p) || row.fn != r.Function || row.score != r.Score {
				t.Fatalf("row %d = [%s %d %v], want [%s %d %v]",
					ri, row.name, row.fn, row.score, v.Name(p), r.Function, r.Score)
			}
			ri++
		}
	}
}

func mustUnmarshal(t *testing.T, raw json.RawMessage, into any) {
	t.Helper()
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

// TestFilteredTopKMatchesBruteForce cross-checks a filtered per-protein
// top-k plan against a direct loop over the view's accessors.
func TestFilteredTopKMatchesBruteForce(t *testing.T) {
	v := mipsView()
	const minDeg, k = 3, 2
	plan := &Plan{
		Filter: []Predicate{
			{Field: "degree", Op: "ge", Value: f(minDeg)},
			{Field: "annotated", Op: "eq", Bool: b(false)},
		},
		TopK:    k,
		Project: []string{"protein", "degree", "score"},
	}
	_, dec := run(t, v, plan, 0)
	type row struct {
		name  string
		deg   int
		score float64
	}
	var want []row
	for p := 0; p < v.NumProteins(); p++ {
		if v.Degree(p) < minDeg || v.Annotated(p) {
			continue
		}
		rk := v.Ranking(p)
		if len(rk) > k {
			rk = rk[:k]
		}
		for _, r := range rk {
			want = append(want, row{v.Name(p), v.Degree(p), r.Score})
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture yields no unannotated proteins of degree >= 3; filter test is vacuous")
	}
	if dec.RowCount != len(want) {
		t.Fatalf("%d rows, brute force says %d", dec.RowCount, len(want))
	}
	for i, w := range want {
		var raw []json.RawMessage
		mustUnmarshal(t, dec.Rows[i], &raw)
		var g row
		mustUnmarshal(t, raw[0], &g.name)
		mustUnmarshal(t, raw[1], &g.deg)
		mustUnmarshal(t, raw[2], &g.score)
		if g != w {
			t.Fatalf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestGroupTopKMatchesBruteForce cross-checks the per-category mode
// against a direct scan of each score column.
func TestGroupTopKMatchesBruteForce(t *testing.T) {
	v := mipsView()
	const k = 3
	plan := &Plan{
		GroupBy: "category",
		TopK:    k,
		Filter:  []Predicate{{Field: "annotated", Op: "eq", Bool: b(true)}},
		Project: []string{"function", "name", "protein", "score"},
	}
	_, dec := run(t, v, plan, 0)
	ri := 0
	total := 0
	for fn := 0; fn < v.NumFunctions(); fn++ {
		col := v.Column(fn)
		// Brute-force the k best selected proteins: repeated linear max
		// with the same (score desc, protein asc) order.
		taken := map[int]bool{}
		for slot := 0; slot < k; slot++ {
			best := -1
			for p, s := range col {
				if s <= 0 || taken[p] || !v.Annotated(p) {
					continue
				}
				if best < 0 || s > col[best] {
					best = p
				}
			}
			if best < 0 {
				break
			}
			taken[best] = true
			total++
			var raw []json.RawMessage
			mustUnmarshal(t, dec.Rows[ri], &raw)
			var gotFn int
			var catName, protein string
			var score float64
			mustUnmarshal(t, raw[0], &gotFn)
			mustUnmarshal(t, raw[1], &catName)
			mustUnmarshal(t, raw[2], &protein)
			mustUnmarshal(t, raw[3], &score)
			if gotFn != fn || protein != v.Name(best) || score != col[best] {
				t.Fatalf("category %d slot %d: [%d %s %s %v], want [%d _ %s %v]",
					fn, slot, gotFn, catName, protein, score, fn, v.Name(best), col[best])
			}
			ri++
		}
	}
	if total == 0 {
		t.Fatal("no category produced rows; group test is vacuous")
	}
	if dec.RowCount != total {
		t.Fatalf("%d rows, brute force says %d", dec.RowCount, total)
	}
}

// TestProteinPinnedTopKMatchesRanking is the /v1/predict parity invariant
// at engine level: topk(k, protein=p) emits exactly Ranking(p)[:k].
func TestProteinPinnedTopKMatchesRanking(t *testing.T) {
	v := mipsView()
	for _, p := range []int{0, 7, 511, 1023, 1024, 1876} {
		name := v.Name(p)
		_, dec := run(t, v, &Plan{
			Filter: []Predicate{{Field: "protein", Op: "in", Names: []string{name}}},
			TopK:   4,
		}, 0)
		rk := v.Ranking(p)
		if len(rk) > 4 {
			rk = rk[:4]
		}
		if dec.RowCount != len(rk) {
			t.Fatalf("protein %s: %d rows, ranking has %d", name, dec.RowCount, len(rk))
		}
		for i, r := range rk {
			var raw []json.RawMessage
			mustUnmarshal(t, dec.Rows[i], &raw)
			var gotName string
			var fn int
			var score float64
			mustUnmarshal(t, raw[0], &gotName)
			mustUnmarshal(t, raw[1], &fn)
			mustUnmarshal(t, raw[2], &score)
			if gotName != name || fn != r.Function || score != r.Score {
				t.Fatalf("protein %s row %d: [%s %d %v], want [%s %d %v]",
					name, i, gotName, fn, score, name, r.Function, r.Score)
			}
		}
	}
}

// determinismPlans are the shapes the byte-determinism gate runs.
func determinismPlans() []*Plan {
	return []*Plan{
		{},
		{TopK: 5},
		{Filter: []Predicate{{Field: "degree", Op: "ge", Value: f(2)}}, TopK: 3},
		{Filter: []Predicate{
			{Field: "annotated", Op: "eq", Bool: b(false)},
			{Field: "score", Op: "ge", Value: f(0.05)},
		}, TopK: 5, Project: []string{"protein", "degree", "function", "name", "score"}},
		{GroupBy: "category", TopK: 7},
		{GroupBy: "category", TopK: 2, Filter: []Predicate{{Field: "degree", Op: "ge", Value: f(3)}}},
	}
}

// TestDeterministicAcrossParallelismAndRuns is the satellite gate: every
// plan's bytes are identical across Parallelism 1 vs 4 and across runs.
func TestDeterministicAcrossParallelismAndRuns(t *testing.T) {
	v := mipsView()
	for pi, plan := range determinismPlans() {
		var ref []byte
		for _, parallelism := range []int{1, 4} {
			for i := 0; i < 2; i++ {
				body, _ := run(t, v, plan, parallelism)
				if ref == nil {
					ref = body
					continue
				}
				if !bytes.Equal(ref, body) {
					t.Fatalf("plan %d: bytes differ at parallelism %d run %d", pi, parallelism, i)
				}
			}
		}
		if len(ref) == 0 {
			t.Fatalf("plan %d produced no bytes", pi)
		}
	}
}

// TestIndexedAndFallbackViewsAgree builds the view once from the indexed
// artifact and once from a v1 artifact without a score index (forcing the
// on-demand scoring path) and requires byte-identical results — the view
// is derived state, whichever way it is derived.
func TestIndexedAndFallbackViewsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("fallback view scores the whole interactome")
	}
	m := dataset.NewMIPS(dataset.DefaultMIPSConfig())
	art, err := artifact.Build("mips-synthetic", "query test fixture",
		m.Task, m.CategoryNames(), m.Corpus, m.Corpus.DirectCounts(), 30, plantedMotifs(m))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewView(art, 0) // no index: scores computed here
	if err != nil {
		t.Fatal(err)
	}
	indexed := mipsView()
	for pi, plan := range determinismPlans() {
		a, _ := run(t, indexed, plan, 0)
		bb, _ := run(t, plain, plan, 0)
		// The digests differ (index changes the encoded artifact), so
		// compare past the artifact header.
		ah := a[bytes.IndexByte(a, ','):]
		bh := bb[bytes.IndexByte(bb, ','):]
		if !bytes.Equal(ah, bh) {
			t.Fatalf("plan %d: indexed and fallback views disagree", pi)
		}
	}
}

// TestStreamedEqualsBuffered pins WriteTo's streamed form to Bytes and to
// a chunked writer that forces many short Writes.
func TestStreamedEqualsBuffered(t *testing.T) {
	v := mipsView()
	res, fe := Execute(v, &Plan{TopK: 3}, 0)
	if fe != nil {
		t.Fatal(fe)
	}
	var buf bytes.Buffer
	n, err := res.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), res.Bytes()) {
		t.Fatal("WriteTo and Bytes disagree")
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("]}\n")) {
		t.Fatal("response does not end in ]}\\n")
	}
}

// TestEmptyResult pins the empty-selection shape: row_count 0, rows [].
func TestEmptyResult(t *testing.T) {
	v := mipsView()
	_, dec := run(t, v, &Plan{
		Filter: []Predicate{{Field: "degree", Op: "ge", Value: f(1e9)}},
	}, 0)
	if dec.RowCount != 0 || len(dec.Rows) != 0 {
		t.Fatalf("impossible filter emitted %d rows", dec.RowCount)
	}
	// Contradictory annotated clauses likewise select nothing.
	_, dec = run(t, v, &Plan{Filter: []Predicate{
		{Field: "annotated", Op: "eq", Bool: b(true)},
		{Field: "annotated", Op: "eq", Bool: b(false)},
	}}, 0)
	if dec.RowCount != 0 {
		t.Fatalf("contradictory filters emitted %d rows", dec.RowCount)
	}
}

// TestViewAgainstArtifact pins the columnar transpose to the row-major
// index: cols[f*n+p] == Row(p)[f], and the attribute columns to the graph.
func TestViewAgainstArtifact(t *testing.T) {
	art := mipsArtifact()
	v := mipsView()
	n := art.Graph.N()
	if v.NumProteins() != n || v.NumFunctions() != art.NumFunctions {
		t.Fatalf("view %d×%d, artifact %d×%d", v.NumProteins(), v.NumFunctions(), n, art.NumFunctions)
	}
	for p := 0; p < n; p++ {
		row := art.Index.Row(p)
		for fn, s := range row {
			if got := v.Column(fn)[p]; got != s {
				t.Fatalf("cols[%d][%d] = %v, row-major says %v", fn, p, got, s)
			}
		}
		if v.Degree(p) != art.Graph.Degree(p) {
			t.Fatalf("degree[%d] = %d, graph says %d", p, v.Degree(p), art.Graph.Degree(p))
		}
		if v.Annotated(p) != (len(art.Functions[p]) > 0) {
			t.Fatalf("annotated[%d] = %v, task says %v", p, v.Annotated(p), len(art.Functions[p]) > 0)
		}
		if id, ok := v.Resolve(v.Name(p)); !ok || id != p {
			t.Fatalf("resolve(%q) = %d,%v", v.Name(p), id, ok)
		}
	}
	if len(v.Ranking(0)) != len(art.Index.Ranking(0)) {
		t.Fatal("view ranking does not match index ranking")
	}
}

package query

import (
	"bytes"
	"encoding/json"
	"testing"
)

// explainResponse is the decoded body of an explain-bearing response.
type explainResponse struct {
	Artifact string            `json:"artifact"`
	Columns  []string          `json:"columns"`
	RowCount int               `json:"row_count"`
	Rows     []json.RawMessage `json:"rows"`
	Explain  *Stats            `json:"explain"`
}

func TestExplainRowsByteIdentical(t *testing.T) {
	v := mipsView()
	for _, base := range determinismPlans() {
		plain := *base
		plain.Explain = false
		withExplain := *base
		withExplain.Explain = true

		plainBody, _ := run(t, v, &plain, 2)

		res, stats, fe := ExecuteStats(v, &withExplain, 2, false)
		if fe != nil {
			t.Fatalf("execute with explain: %v", fe)
		}
		if stats == nil || res.Explain() != stats {
			t.Fatal("explain plan returned no stats")
		}
		body := res.Bytes()
		var dec explainResponse
		if err := json.Unmarshal(body, &dec); err != nil {
			t.Fatalf("explain response does not parse: %v\n%s", err, body)
		}
		if dec.Explain == nil || len(dec.Explain.Ops) == 0 {
			t.Fatalf("explain field missing from body:\n%s", body)
		}
		// Strip the explain tail: everything before `,"explain":` must be
		// the plain body minus its closing `}\n`.
		idx := bytes.Index(body, []byte(`,"explain":`))
		if idx < 0 {
			t.Fatalf("explain tail not found in body:\n%s", body)
		}
		wantPrefix := bytes.TrimSuffix(plainBody, []byte("}\n"))
		if !bytes.Equal(body[:idx], wantPrefix) {
			t.Fatalf("rows perturbed by explain:\nplain:  %s\nexplain: %s", wantPrefix, body[:idx])
		}
	}
}

func TestExplainOperatorCounts(t *testing.T) {
	v := mipsView()
	plan := &Plan{TopK: 3, Explain: true}
	res, stats, fe := ExecuteStats(v, plan, 4, false)
	if fe != nil {
		t.Fatalf("execute: %v", fe)
	}
	byOp := map[string]OpStat{}
	for _, o := range stats.Ops {
		byOp[o.Op] = o
	}
	for _, name := range []string{"scan", "filter", "emit"} {
		if _, ok := byOp[name]; !ok {
			t.Fatalf("operator %q missing from %+v", name, stats.Ops)
		}
	}
	if _, ok := byOp["topk"]; ok {
		t.Fatal("per-protein plan reported the group-mode topk operator")
	}
	n := int64(v.n)
	if got := byOp["scan"]; got.RowsIn != n || got.RowsOut != n {
		t.Fatalf("scan rows = %+v, want in=out=%d", got, n)
	}
	if got := byOp["filter"]; got.RowsIn != n || got.RowsOut != n {
		t.Fatalf("unfiltered plan: filter rows = %+v, want in=out=%d", got, n)
	}
	if got := byOp["emit"]; got.RowsIn != n || got.RowsOut != int64(res.RowCount()) {
		t.Fatalf("emit rows = %+v, want in=%d out=%d", got, n, res.RowCount())
	}

	group := &Plan{GroupBy: "category", TopK: 2, Explain: true}
	gres, gstats, fe := ExecuteStats(v, group, 4, false)
	if fe != nil {
		t.Fatalf("execute group: %v", fe)
	}
	gByOp := map[string]OpStat{}
	for _, o := range gstats.Ops {
		gByOp[o.Op] = o
	}
	if _, ok := gByOp["topk"]; !ok {
		t.Fatalf("group plan lacks topk operator: %+v", gstats.Ops)
	}
	if got := gByOp["emit"]; got.RowsOut != int64(gres.RowCount()) {
		t.Fatalf("group emit rows_out = %d, want %d", got.RowsOut, gres.RowCount())
	}
}

func TestExplainRowCountsDeterministicAcrossParallelism(t *testing.T) {
	v := mipsView()
	plan := &Plan{Filter: []Predicate{{Field: "degree", Op: "ge", Value: f(3)}}, TopK: 2, Explain: true}
	_, s1, fe := ExecuteStats(v, plan, 1, false)
	if fe != nil {
		t.Fatalf("execute p1: %v", fe)
	}
	_, s4, fe := ExecuteStats(v, plan, 4, false)
	if fe != nil {
		t.Fatalf("execute p4: %v", fe)
	}
	if len(s1.Ops) != len(s4.Ops) {
		t.Fatalf("operator sets differ: %d vs %d", len(s1.Ops), len(s4.Ops))
	}
	for i := range s1.Ops {
		a, b := s1.Ops[i], s4.Ops[i]
		if a.Op != b.Op || a.RowsIn != b.RowsIn || a.RowsOut != b.RowsOut {
			t.Fatalf("row counts depend on parallelism: %+v vs %+v", a, b)
		}
	}
}

func TestCollectWithoutExplainLeavesBodyClean(t *testing.T) {
	v := mipsView()
	plan := &Plan{TopK: 2}
	res, stats, fe := ExecuteStats(v, plan, 2, true)
	if fe != nil {
		t.Fatalf("execute: %v", fe)
	}
	if stats == nil {
		t.Fatal("collect=true returned no stats")
	}
	if res.Explain() != nil {
		t.Fatal("collect-only execution attached explain to the body")
	}
	if bytes.Contains(res.Bytes(), []byte("explain")) {
		t.Fatal("collect-only body contains an explain field")
	}
	plainRes, fe := Execute(v, plan, 2)
	if fe != nil {
		t.Fatalf("plain execute: %v", fe)
	}
	if !bytes.Equal(res.Bytes(), plainRes.Bytes()) {
		t.Fatal("stats collection perturbed response bytes")
	}
}

package query

import (
	"lamofinder/internal/artifact"
	"lamofinder/internal/par"
	"lamofinder/internal/predict"
)

// View is the columnar binding the engine executes over: the artifact's
// row-major protein×function score matrix transposed into category-major
// float64 columns, alongside dense protein attribute columns (degree,
// annotated bitset) and the per-protein rankings the row-major index
// already carries. It is built once at model load, next to — not instead
// of — the existing ScoreIndex: /v1/predict keeps its two-slice-read row
// path, while bulk plans scan cols[f*n : (f+1)*n] as one contiguous
// stride-1 pass per category.
//
// A View is immutable after construction; the daemon shares one across
// every request goroutine, and it pins to the model snapshot it was built
// from via the artifact digest.
type View struct {
	n  int // proteins
	nf int // functional categories

	// cols is the category-major score matrix: cols[f*n+p] is protein p's
	// Eq.-5 score for category f. Filters and per-category top-k touch one
	// contiguous column per category.
	cols []float64
	// degree[p] is protein p's interaction degree.
	degree []int32
	// annotated is a bitset: bit p set iff protein p carries at least one
	// known functional annotation (the paper's "annotated" set; its
	// complement is the prediction target).
	annotated []uint64
	// names[p] is protein p's display name; byName resolves it back.
	names  []string
	byName map[string]int
	// fnNames[f] is category f's display name.
	fnNames []string

	// ranked[p] is protein p's full descending ranking (positive scores
	// only, ties toward the smaller function index) — aliased from the
	// artifact's ScoreIndex when present, computed once here otherwise.
	// Per-protein plans serve straight from it, which is what makes a
	// topk(protein=p) plan byte-equal to /v1/predict.
	ranked [][]predict.Ranked

	digest string
}

// NewView builds the columnar view of art. parallelism <= 0 uses
// GOMAXPROCS workers; the result is identical at any setting because every
// protein writes only its own strided column slots. The transpose costs
// one pass over the score matrix (n×nf float64 reads and writes) and is
// paid once per model load, not per query.
func NewView(art *artifact.Artifact, parallelism int) (*View, error) {
	digest, err := art.Digest()
	if err != nil {
		return nil, err
	}
	n, nf := art.Graph.N(), art.NumFunctions
	v := &View{
		n:         n,
		nf:        nf,
		cols:      make([]float64, n*nf),
		degree:    make([]int32, n),
		annotated: make([]uint64, (n+63)/64),
		names:     make([]string, n),
		byName:    make(map[string]int, n),
		fnNames:   art.FunctionNames,
		digest:    digest,
	}

	ix := art.Index
	var scorer *predict.LabeledMotif
	if ix == nil {
		// v1 artifact without a build-time index: score on demand, once,
		// exactly as the daemon's fallback path would per request.
		scorer = art.NewScorer()
		v.ranked = make([][]predict.Ranked, n)
	} else {
		v.ranked = rankings(ix, n)
	}

	workers := par.Workers(parallelism)
	if ix != nil {
		par.Do(n, workers, func(p int) {
			row := ix.Row(p)
			for f, s := range row {
				v.cols[f*n+p] = s
			}
		})
	} else {
		par.Do(n, workers, func(p int) {
			row := scorer.Scores(p)
			for f, s := range row {
				v.cols[f*n+p] = s
			}
			v.ranked[p] = predict.TopK(row, 0)
		})
	}

	for p := 0; p < n; p++ {
		v.degree[p] = int32(art.Graph.Degree(p))
		name := art.Graph.Name(p)
		v.names[p] = name
		v.byName[name] = p
		if len(art.Functions[p]) > 0 {
			v.annotated[p>>6] |= 1 << (p & 63)
		}
	}
	return v, nil
}

// rankings aliases the index's per-protein ranking slices.
func rankings(ix *artifact.ScoreIndex, n int) [][]predict.Ranked {
	rk := make([][]predict.Ranked, n)
	for p := 0; p < n; p++ {
		rk[p] = ix.Ranking(p)
	}
	return rk
}

// NumProteins returns the number of proteins in the view.
func (v *View) NumProteins() int { return v.n }

// NumFunctions returns the number of functional categories.
func (v *View) NumFunctions() int { return v.nf }

// Digest returns the digest of the artifact the view was built from.
func (v *View) Digest() string { return v.digest }

// Resolve maps a protein name to its vertex id.
func (v *View) Resolve(name string) (int, bool) {
	p, ok := v.byName[name]
	return p, ok
}

// Name returns protein p's display name.
func (v *View) Name(p int) string { return v.names[p] }

// Ranking returns protein p's full descending ranking (read-only).
func (v *View) Ranking(p int) []predict.Ranked { return v.ranked[p] }

// Column returns category f's contiguous score column (read-only).
func (v *View) Column(f int) []float64 { return v.cols[f*v.n : (f+1)*v.n] }

// Degree returns protein p's interaction degree.
func (v *View) Degree(p int) int { return int(v.degree[p]) }

// Annotated reports whether protein p carries a known annotation.
func (v *View) Annotated(p int) bool {
	return v.annotated[p>>6]&(1<<(p&63)) != 0
}

package query

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// PlanFlags is the shared command-line surface for building a query plan,
// used by both `lamod query` (offline) and `lamoctl query` (against a
// daemon). A plan comes either whole from a JSON file (-plan) or is
// assembled from the individual flags; -plan wins when both are given so
// a canned plan file is never silently mutated by leftover flags.
type PlanFlags struct {
	planFile  *string
	topK      *int
	groupBy   *string
	minDegree *float64
	maxDegree *float64
	minScore  *float64
	annotated *string
	proteins  *string
	project   *string
}

// AddPlanFlags registers the plan-building flags on fs and returns the
// handle to build the plan from after parsing.
func AddPlanFlags(fs *flag.FlagSet) *PlanFlags {
	return &PlanFlags{
		planFile:  fs.String("plan", "", "JSON plan file; overrides the plan-building flags"),
		topK:      fs.Int("topk", 0, "rows per protein (or per category with -group-by); 0 = all"),
		groupBy:   fs.String("group-by", "", `group rows by "category" instead of per protein`),
		minDegree: fs.Float64("min-degree", -1, "keep proteins with degree >= N (-1 = no bound)"),
		maxDegree: fs.Float64("max-degree", -1, "keep proteins with degree <= N (-1 = no bound)"),
		minScore:  fs.Float64("min-score", -1, "keep rows with score >= X (-1 = no bound)"),
		annotated: fs.String("annotated", "", "keep only annotated (true) or unannotated (false) proteins"),
		proteins:  fs.String("proteins", "", "comma-separated protein names to pin the scan to"),
		project:   fs.String("project", "", "comma-separated output columns (protein, degree, function, name, score)"),
	}
}

// Plan materializes the parsed flags into a Plan. Flag-level mistakes
// (unreadable file, bad -annotated literal) surface here; semantic plan
// errors are left to Plan.Validate via Execute, so both plan sources are
// validated by the same path.
func (pf *PlanFlags) Plan() (*Plan, error) {
	if *pf.planFile != "" {
		data, err := os.ReadFile(*pf.planFile)
		if err != nil {
			return nil, err
		}
		var p Plan
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("parse plan %s: %v", *pf.planFile, err)
		}
		return &p, nil
	}
	p := &Plan{GroupBy: *pf.groupBy, TopK: *pf.topK}
	if *pf.minDegree >= 0 {
		v := *pf.minDegree
		p.Filter = append(p.Filter, Predicate{Field: "degree", Op: "ge", Value: &v})
	}
	if *pf.maxDegree >= 0 {
		v := *pf.maxDegree
		p.Filter = append(p.Filter, Predicate{Field: "degree", Op: "le", Value: &v})
	}
	if *pf.minScore >= 0 {
		v := *pf.minScore
		p.Filter = append(p.Filter, Predicate{Field: "score", Op: "ge", Value: &v})
	}
	if *pf.annotated != "" {
		want, err := strconv.ParseBool(*pf.annotated)
		if err != nil {
			return nil, fmt.Errorf("-annotated must be true or false, got %q", *pf.annotated)
		}
		p.Filter = append(p.Filter, Predicate{Field: "annotated", Op: "eq", Bool: &want})
	}
	if *pf.proteins != "" {
		names := splitList(*pf.proteins)
		p.Filter = append(p.Filter, Predicate{Field: "protein", Op: "in", Names: names})
	}
	if *pf.project != "" {
		p.Project = splitList(*pf.project)
	}
	return p, nil
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty items so "a, b," parses as the user meant it.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

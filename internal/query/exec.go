package query

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"time"

	"lamofinder/internal/jsonx"
	"lamofinder/internal/par"
)

// BatchSize is the engine's fixed column-batch width. Every operator
// consumes and produces batches of exactly this many protein slots (the
// tail batch is short); chunk boundaries depend only on the protein count,
// never on the worker count, and 1024 is a multiple of 64 so each batch
// owns whole words of any shared bitset — two facts that together make
// results byte-identical at any Parallelism setting.
const BatchSize = 1024

// program is a compiled, bound plan: predicates split by the column they
// touch (so each operator runs one tight loop over one array), protein
// names resolved to a bitset, projection resolved to column ids.
type program struct {
	kind    string
	topk    int
	degree  []numPred // over the degree column
	score   []numPred // over score values (row-level)
	annot   []bool    // annotated-bit wants, ANDed (two contradictory clauses select nothing)
	protein []uint64  // membership bitset, nil when unfiltered
	group   bool      // group-by-category mode
	proj    []uint8
	cols    []string // projection names, for the response header
}

// numPred is one compiled numeric comparison. Degree thresholds are kept
// in float space (the kernel compares float64(degree[p]) op val), which
// sidesteps integer-rounding edge cases for fractional thresholds: a plan
// asking degree ge 2.5 selects exactly the proteins a reader would expect.
type numPred struct {
	op  uint8
	val float64
}

// compile validates p and binds it against v.
func compile(v *View, p *Plan) (*program, *FieldError) {
	if fe := p.Validate(); fe != nil {
		return nil, fe
	}
	pr := &program{kind: p.Kind(), topk: p.TopK, group: p.GroupBy == "category"}
	for i, f := range p.Filter {
		op, _ := parseOp(f.Op)
		switch f.Field {
		case "degree":
			pr.degree = append(pr.degree, numPred{op: op, val: *f.Value})
		case "score":
			pr.score = append(pr.score, numPred{op: op, val: *f.Value})
		case "annotated":
			want := *f.Bool
			if op == opNE {
				want = !want
			}
			pr.annot = append(pr.annot, want)
		case "protein":
			bits := make([]uint64, len(v.annotated))
			for j, name := range f.Names {
				id, ok := v.byName[name]
				if !ok {
					return nil, Errorf(
						"filter["+strconv.Itoa(i)+"].names["+strconv.Itoa(j)+"]",
						"unknown protein %q", name)
				}
				bits[id>>6] |= 1 << (id & 63)
			}
			if pr.protein == nil {
				pr.protein = bits
			} else {
				for w := range pr.protein {
					pr.protein[w] &= bits[w]
				}
			}
		}
	}
	proj := p.Project
	if len(proj) == 0 {
		if pr.group {
			proj = []string{"function", "protein", "score"}
		} else {
			proj = []string{"protein", "function", "score"}
		}
	}
	pr.cols = proj
	pr.proj = make([]uint8, len(proj))
	for i, c := range proj {
		pr.proj[i], _ = projectColumn(c)
	}
	return pr, nil
}

// pair is one (protein, score) candidate in a per-category ranking.
type pair struct {
	p int32
	s float64
}

// pairBefore is the per-category ranking order: descending score, ties
// toward the smaller protein id — the same tie rule predict uses for
// functions, applied to the other axis.
func pairBefore(a, b pair) bool {
	if a.s > b.s {
		return true
	}
	if a.s < b.s {
		return false
	}
	return a.p < b.p
}

// scratch is the per-batch working set, pooled so steady-state execution
// allocates only result buffers.
type scratch struct {
	sel  []int32
	heap []pair
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{sel: make([]int32, 0, BatchSize)}
}}

// Result is one executed plan, held as per-chunk encoded row buffers until
// streamed. Keeping chunks separate (instead of concatenating eagerly)
// lets WriteTo hand each chunk to the socket as-is; order is fixed by
// chunk index, so the bytes are schedule-independent.
type Result struct {
	// Artifact is the digest of the model snapshot the plan ran against.
	Artifact string
	// Kind is the plan's metrics kind (scan, topk, group_topk).
	Kind string
	// Columns names the projected row fields, in row order.
	Columns []string

	rowCount int
	chunks   [][]byte
	// explain, when the plan asked for it, is appended after the rows
	// array; nil otherwise, so default responses stay byte-identical.
	explain *Stats
}

// RowCount returns the number of emitted rows.
func (r *Result) RowCount() int { return r.rowCount }

// WriteTo streams the response body: one JSON object with the artifact
// digest, the projected column names, the row count, and a rows array of
// fixed-order value arrays, closed with a newline. Each buffered chunk
// carries a leading ',' before every row; the writer strips the first
// comma of the first non-empty chunk, so assembly is pure concatenation.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	head := make([]byte, 0, 128)
	head = append(head, `{"artifact":`...)
	head = jsonx.AppendString(head, r.Artifact)
	head = append(head, `,"columns":[`...)
	for i, c := range r.Columns {
		if i > 0 {
			head = append(head, ',')
		}
		head = jsonx.AppendString(head, c)
	}
	head = append(head, `],"row_count":`...)
	head = strconv.AppendInt(head, int64(r.rowCount), 10)
	head = append(head, `,"rows":[`...)

	var n int64
	if err := writeAll(w, head, &n); err != nil {
		return n, err
	}
	first := true
	for _, c := range r.chunks {
		if len(c) == 0 {
			continue
		}
		if first {
			c = c[1:] // drop the leading ',' of the first emitted row
			first = false
		}
		if err := writeAll(w, c, &n); err != nil {
			return n, err
		}
	}
	tail := []byte{']'}
	if r.explain != nil {
		tail = r.explain.appendJSON(append(tail, `,"explain":`...))
	}
	tail = append(tail, '}', '\n')
	err := writeAll(w, tail, &n)
	return n, err
}

// Explain returns the execution stats when the plan requested them.
func (r *Result) Explain() *Stats { return r.explain }

// Bytes materializes the full response body (CLI and test consumers).
func (r *Result) Bytes() []byte {
	var b bytes.Buffer
	_, _ = r.WriteTo(&b) // bytes.Buffer writes cannot fail
	return b.Bytes()
}

func writeAll(w io.Writer, b []byte, n *int64) error {
	m, err := w.Write(b)
	*n += int64(m)
	return err
}

// Execute runs plan against v on up to parallelism workers. The pipeline
// per batch is: scan (materialize the batch's selection vector) → filter
// (each predicate compacts the selection in place) → score-gather + topk
// (rows from the per-protein rankings, or per-category bounded heaps in
// group mode) → project (append-encode the chosen columns). Batches write
// only their own index-addressed output slot, so the assembled bytes are
// identical at any parallelism. ExecuteStats is the same pipeline with
// opt-in per-operator statistics.
func Execute(v *View, plan *Plan, parallelism int) (*Result, *FieldError) {
	res, _, fe := ExecuteStats(v, plan, parallelism, false)
	return res, fe
}

// filterBatch runs the compiled filter chain over one batch's selection
// vector, compacting it in place.
func filterBatch(v *View, prog *program, sel []int32) []int32 {
	for _, f := range prog.degree {
		sel = filterDegree(sel, v.degree, f.op, f.val)
	}
	for _, want := range prog.annot {
		sel = filterBits(sel, v.annotated, want)
	}
	if prog.protein != nil {
		sel = filterBits(sel, prog.protein, true)
	}
	return sel
}

// execPerProtein runs the per-protein modes (scan, topk): every batch
// filters its protein range, then emits each survivor's ranking rows.
// Returns per-chunk row counts. st, when non-nil, aggregates per-operator
// stage timings; the fast path pays nil checks only.
func execPerProtein(v *View, prog *program, workers int, res *Result, st *statCol) []int {
	nc := par.NumChunks(v.n, BatchSize)
	res.chunks = make([][]byte, nc)
	counts := make([]int, nc)
	par.Chunks(v.n, BatchSize, workers, func(c, lo, hi int) {
		sc := scratchPool.Get().(*scratch)
		var t0 time.Time
		if st != nil {
			t0 = time.Now()
		}
		scanned := selectRange(sc.sel[:0], int32(lo), int32(hi))
		if st != nil {
			t1 := time.Now()
			st.add(opStageScan, int64(hi-lo), int64(len(scanned)), t1.Sub(t0))
			t0 = t1
		}
		sel := filterBatch(v, prog, scanned)
		if st != nil {
			t1 := time.Now()
			st.add(opStageFilter, int64(hi-lo), int64(len(sel)), t1.Sub(t0))
			t0 = t1
		}
		var buf []byte
		rows := 0
		for _, p := range sel {
			buf, rows = appendRankingRows(buf, v, prog, p, rows)
		}
		if st != nil {
			st.add(opStageEmit, int64(len(sel)), int64(rows), time.Since(t0))
		}
		sc.sel = sel[:0]
		scratchPool.Put(sc)
		res.chunks[c], counts[c] = buf, rows
	})
	return counts
}

// execGroup runs group_topk: one shared selection bitset built batch-wise
// (each batch owns whole bitset words), then one bounded-heap scan per
// category column. st, when non-nil, aggregates per-operator stage
// timings; the fast path pays nil checks only.
func execGroup(v *View, prog *program, workers int, res *Result, st *statCol) []int {
	live := make([]uint64, len(v.annotated))
	par.Chunks(v.n, BatchSize, workers, func(c, lo, hi int) {
		sc := scratchPool.Get().(*scratch)
		var t0 time.Time
		if st != nil {
			t0 = time.Now()
		}
		scanned := selectRange(sc.sel[:0], int32(lo), int32(hi))
		if st != nil {
			t1 := time.Now()
			st.add(opStageScan, int64(hi-lo), int64(len(scanned)), t1.Sub(t0))
			t0 = t1
		}
		sel := filterBatch(v, prog, scanned)
		markBits(live, sel)
		if st != nil {
			st.add(opStageFilter, int64(hi-lo), int64(len(sel)), time.Since(t0))
		}
		sc.sel = sel[:0]
		scratchPool.Put(sc)
	})

	res.chunks = make([][]byte, v.nf)
	counts := make([]int, v.nf)
	par.Do(v.nf, workers, func(f int) {
		sc := scratchPool.Get().(*scratch)
		col := v.cols[f*v.n : (f+1)*v.n]
		k := prog.topk
		if k <= 0 || k > v.n {
			k = v.n
		}
		var t0 time.Time
		if st != nil {
			t0 = time.Now()
		}
		top := topkColumn(sc.heap[:0], col, live, prog.score, k)
		if st != nil {
			t1 := time.Now()
			st.add(opStageTopK, int64(v.n), int64(len(top)), t1.Sub(t0))
			t0 = t1
		}
		var buf []byte
		for _, e := range top {
			buf = appendRow(buf, v, prog.proj, e.p, int32(f), e.s)
		}
		if st != nil {
			st.add(opStageEmit, int64(len(top)), int64(len(top)), time.Since(t0))
		}
		sc.heap = top[:0]
		scratchPool.Put(sc)
		res.chunks[f], counts[f] = buf, len(top)
	})
	return counts
}

// appendRankingRows emits protein p's filtered, truncated ranking rows and
// returns the updated running row count. Without score predicates the
// emitted rows are exactly Ranking(p)[:k] — what /v1/predict serves —
// which is the parity the determinism tests pin.
//
// alloc-budget: 0
func appendRankingRows(buf []byte, v *View, prog *program, p int32, rows int) ([]byte, int) {
	emitted := 0
	for _, r := range v.ranked[p] {
		if !passScore(r.Score, prog.score) {
			continue
		}
		buf = appendRow(buf, v, prog.proj, p, int32(r.Function), r.Score)
		emitted++
		if prog.topk > 0 && emitted >= prog.topk {
			break
		}
	}
	return buf, rows + emitted
}

// selectRange materializes the batch's identity selection vector.
//
// alloc-budget: 0
func selectRange(sel []int32, lo, hi int32) []int32 {
	for p := lo; p < hi; p++ {
		sel = append(sel, p)
	}
	return sel
}

// filterDegree compacts sel in place, keeping proteins whose degree
// satisfies op against val. One branch-predictable comparison loop per
// operator, over the contiguous degree column.
//
// alloc-budget: 0
func filterDegree(sel []int32, degree []int32, op uint8, val float64) []int32 {
	w := 0
	switch op {
	case opEQ:
		for _, p := range sel {
			if d := float64(degree[p]); d >= val && d <= val {
				sel[w] = p
				w++
			}
		}
	case opNE:
		for _, p := range sel {
			if d := float64(degree[p]); d < val || d > val {
				sel[w] = p
				w++
			}
		}
	case opLT:
		for _, p := range sel {
			if float64(degree[p]) < val {
				sel[w] = p
				w++
			}
		}
	case opLE:
		for _, p := range sel {
			if float64(degree[p]) <= val {
				sel[w] = p
				w++
			}
		}
	case opGT:
		for _, p := range sel {
			if float64(degree[p]) > val {
				sel[w] = p
				w++
			}
		}
	case opGE:
		for _, p := range sel {
			if float64(degree[p]) >= val {
				sel[w] = p
				w++
			}
		}
	}
	return sel[:w]
}

// filterBits compacts sel in place, keeping proteins whose bit equals want.
//
// alloc-budget: 0
func filterBits(sel []int32, bits []uint64, want bool) []int32 {
	w := 0
	for _, p := range sel {
		if (bits[p>>6]&(1<<(uint(p)&63)) != 0) == want {
			sel[w] = p
			w++
		}
	}
	return sel[:w]
}

// markBits sets the bit of every selected protein. Callers partition
// proteins into BatchSize batches, and BatchSize is a multiple of 64, so
// concurrent batches touch disjoint words.
//
// alloc-budget: 0
func markBits(bits []uint64, sel []int32) {
	for _, p := range sel {
		bits[p>>6] |= 1 << (uint(p) & 63)
	}
}

// passScore reports whether s satisfies every score predicate.
//
// alloc-budget: 0
func passScore(s float64, preds []numPred) bool {
	for _, f := range preds {
		switch f.op {
		case opLT:
			if !(s < f.val) {
				return false
			}
		case opLE:
			if !(s <= f.val) {
				return false
			}
		case opGT:
			if !(s > f.val) {
				return false
			}
		case opGE:
			if !(s >= f.val) {
				return false
			}
		}
	}
	return true
}

// topkColumn scans one category column and keeps the k best selected
// proteins by (score desc, protein asc), mirroring predict's rank order on
// the protein axis. Only positive scores rank — the same rule predict
// applies to per-protein rankings — and score predicates apply before the
// heap. The bounded heap keeps the worst survivor at the root; the final
// heapsort leaves dst best-first.
//
// alloc-budget: 0
func topkColumn(dst []pair, col []float64, live []uint64, preds []numPred, k int) []pair {
	for p, s := range col {
		if s <= 0 || live[p>>6]&(1<<(uint(p)&63)) == 0 || !passScore(s, preds) {
			continue
		}
		c := pair{p: int32(p), s: s}
		if len(dst) < k {
			dst = append(dst, c)
			siftUp(dst, len(dst)-1)
		} else if pairBefore(c, dst[0]) {
			dst[0] = c
			siftDown(dst, 0, len(dst))
		}
	}
	for m := len(dst) - 1; m > 0; m-- {
		dst[0], dst[m] = dst[m], dst[0]
		siftDown(dst, 0, m)
	}
	return dst
}

// siftUp restores the worst-at-root heap invariant after appending at i.
//
// alloc-budget: 0
func siftUp(h []pair, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !pairBefore(h[parent], h[i]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the invariant from the root over h[:m].
//
// alloc-budget: 0
func siftDown(h []pair, i, m int) {
	for {
		worst := i
		if l := 2*i + 1; l < m && pairBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < m && pairBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// appendRow append-encodes one projected row as a JSON array, prefixed
// with ',' (the writer strips the first row's).
//
// alloc-budget: 0
func appendRow(buf []byte, v *View, proj []uint8, p, f int32, score float64) []byte {
	buf = append(buf, ',', '[')
	for i, c := range proj {
		if i > 0 {
			buf = append(buf, ',')
		}
		switch c {
		case colProtein:
			buf = jsonx.AppendString(buf, v.names[p])
		case colDegree:
			buf = strconv.AppendInt(buf, int64(v.degree[p]), 10)
		case colFunction:
			buf = strconv.AppendInt(buf, int64(f), 10)
		case colName:
			buf = jsonx.AppendString(buf, v.fnNames[f])
		case colScore:
			buf = jsonx.AppendFloat(buf, score)
		}
	}
	return append(buf, ']')
}

// Package query is the vectorized bulk-prediction engine over a columnar
// view of the artifact score index. A structured JSON plan (scan → filter
// → score-gather → topk → project, plus a group-by-category top-k) binds
// against category-major float64 score columns plus protein id/degree/
// annotated columns, and executes as a pipeline of vectorized operators:
// each operator consumes and produces fixed-size column batches with
// selection vectors, and batches fan across internal/par with
// index-addressed output slots, so result bytes are identical at any
// Parallelism setting.
//
// One plan answers the bulk workloads the single-protein /v1/predict
// endpoint degenerates on: "score every unannotated protein", "top-k per
// functional category above degree d", "full score table for this protein
// set" — one request, one pass over the columns, instead of N HTTP round
// trips re-ranking the same index N times.
package query

import (
	"fmt"
	"math"
	"strconv"
)

// Plan is the structured query: which proteins to scan, the predicates
// that filter them, how to rank, and which output columns to project.
//
//	{"filter":[{"field":"degree","op":"ge","value":3},
//	           {"field":"annotated","op":"eq","bool":false}],
//	 "topk":5,
//	 "project":["protein","function","score"]}
//
// GroupBy "" ranks functions per protein (each selected protein yields its
// top-k functions, exactly /v1/predict's ranking); GroupBy "category"
// ranks proteins per function (each score column yields its top-k selected
// proteins — the whole-matrix view ensemble and eval comparisons consume).
type Plan struct {
	// Scan names the scanned relation; "" and "proteins" are the only
	// values (the score index has one table).
	Scan string `json:"scan,omitempty"`
	// Filter predicates AND together, in order.
	Filter []Predicate `json:"filter,omitempty"`
	// GroupBy is "" (rows per protein) or "category" (rows per function).
	GroupBy string `json:"group_by,omitempty"`
	// TopK truncates each group's ranking (0 = no truncation: every
	// positive score).
	TopK int `json:"topk,omitempty"`
	// Project lists the output columns, any of "protein", "degree",
	// "function", "name", "score". Empty means the mode default:
	// [protein function score] per protein, [function protein score] per
	// category.
	Project []string `json:"project,omitempty"`
	// Explain appends an EXPLAIN ANALYZE summary (per-operator rows and
	// wall time) as an "explain" field after the rows array. The rows
	// themselves are unchanged — byte-identical to the same plan without
	// Explain — so a client can flip it on without re-validating output.
	Explain bool `json:"explain,omitempty"`
}

// Predicate is one filter clause. Value fields are field-specific: degree
// and score compare against Value; annotated compares against Bool;
// protein membership lists Names.
type Predicate struct {
	Field string   `json:"field"`
	Op    string   `json:"op"`
	Value *float64 `json:"value,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
	Names []string `json:"names,omitempty"`
}

// FieldError is one structured plan-validation failure: the offending
// field (dotted path into the plan or request) and the reason. It renders
// as the daemon's 400 JSON body, so clients can point at the exact knob
// instead of parsing prose.
type FieldError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e *FieldError) Error() string { return e.Field + ": " + e.Reason }

// Errorf builds a FieldError with a formatted reason.
func Errorf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Plan kinds, for metrics labels: one histogram per plan shape, so a bulk
// scan cannot hide a slow group-by behind one blended percentile.
const (
	KindScan     = "scan"       // per-protein rows, no truncation
	KindTopK     = "topk"       // per-protein top-k
	KindGroupTop = "group_topk" // per-category top-k
)

// Kinds lists every plan kind in fixed order (metrics iterate it).
func Kinds() []string { return []string{KindScan, KindTopK, KindGroupTop} }

// Kind classifies the plan for metrics. Call only on validated plans.
func (p *Plan) Kind() string {
	switch {
	case p.GroupBy == "category":
		return KindGroupTop
	case p.TopK > 0:
		return KindTopK
	default:
		return KindScan
	}
}

// Projection column ids, in the order the columns may appear in a row.
const (
	colProtein = uint8(iota)
	colDegree
	colFunction
	colName
	colScore
)

// projectColumn resolves one Project entry.
func projectColumn(name string) (uint8, bool) {
	switch name {
	case "protein":
		return colProtein, true
	case "degree":
		return colDegree, true
	case "function":
		return colFunction, true
	case "name":
		return colName, true
	case "score":
		return colScore, true
	}
	return 0, false
}

// predicate ops, compiled from their JSON names.
const (
	opEQ = uint8(iota)
	opNE
	opLT
	opLE
	opGT
	opGE
	opIN
)

func parseOp(s string) (uint8, bool) {
	switch s {
	case "eq":
		return opEQ, true
	case "ne":
		return opNE, true
	case "lt":
		return opLT, true
	case "le":
		return opLE, true
	case "gt":
		return opGT, true
	case "ge":
		return opGE, true
	case "in":
		return opIN, true
	}
	return 0, false
}

// Validate checks the plan's structure: field names, operator/field
// combinations, value shapes, top-k bounds. It is the one validation path
// every consumer shares — the daemon's /v1/query, lamoctl's client-side
// pre-flight, and lamod's offline executor — so a plan rejected anywhere
// is rejected everywhere, with the same (field, reason) pair. Protein
// names resolve later, at bind time, because they need a View.
func (p *Plan) Validate() *FieldError {
	if p.Scan != "" && p.Scan != "proteins" {
		return Errorf("scan", "unknown relation %q (only \"proteins\" exists)", p.Scan)
	}
	if p.GroupBy != "" && p.GroupBy != "category" {
		return Errorf("group_by", "must be empty or \"category\", got %q", p.GroupBy)
	}
	if fe := ValidateTopK(p.TopK); fe != nil {
		return fe
	}
	for i, pr := range p.Filter {
		if fe := pr.validate(i); fe != nil {
			return fe
		}
	}
	for i, c := range p.Project {
		if _, ok := projectColumn(c); !ok {
			return Errorf("project["+strconv.Itoa(i)+"]",
				"unknown column %q (want protein, degree, function, name, or score)", c)
		}
	}
	return nil
}

// validate checks one predicate; i locates it in error fields.
func (pr *Predicate) validate(i int) *FieldError {
	at := func(sub string) string { return "filter[" + strconv.Itoa(i) + "]." + sub }
	op, ok := parseOp(pr.Op)
	if !ok {
		return Errorf(at("op"), "unknown operator %q (want eq, ne, lt, le, gt, ge, or in)", pr.Op)
	}
	switch pr.Field {
	case "degree":
		if op == opIN {
			return Errorf(at("op"), "operator in applies only to field protein")
		}
		if pr.Value == nil {
			return Errorf(at("value"), "degree predicates need a numeric value")
		}
		if math.IsNaN(*pr.Value) || math.IsInf(*pr.Value, 0) {
			return Errorf(at("value"), "degree threshold must be finite")
		}
	case "score":
		switch op {
		case opLT, opLE, opGT, opGE:
		default:
			return Errorf(at("op"), "score predicates support lt, le, gt, ge only")
		}
		if pr.Value == nil {
			return Errorf(at("value"), "score predicates need a numeric value")
		}
		if math.IsNaN(*pr.Value) || math.IsInf(*pr.Value, 0) {
			return Errorf(at("value"), "score threshold must be finite")
		}
	case "annotated":
		if op != opEQ && op != opNE {
			return Errorf(at("op"), "annotated predicates support eq and ne only")
		}
		if pr.Bool == nil {
			return Errorf(at("bool"), "annotated predicates need a boolean")
		}
	case "protein":
		if op != opIN {
			return Errorf(at("op"), "protein predicates support in only")
		}
		if len(pr.Names) == 0 {
			return Errorf(at("names"), "protein in needs at least one name")
		}
	default:
		return Errorf(at("field"),
			"unknown field %q (want degree, score, annotated, or protein)", pr.Field)
	}
	return nil
}

// ValidateTopK is the shared top-k bound check: /v1/predict's k parameter
// and a plan's topk field go through the same rule, so both endpoints
// reject the same inputs with the same structured error.
func ValidateTopK(k int) *FieldError {
	if k < 0 {
		return Errorf("topk", "must be non-negative, got %d", k)
	}
	return nil
}

// ValidateBatch is the shared request-size check for endpoints that cap
// the proteins accepted per call.
func ValidateBatch(n, max int) *FieldError {
	if n == 0 {
		return Errorf("proteins", "no proteins named")
	}
	if max > 0 && n > max {
		return Errorf("proteins", "%d proteins exceeds the batch cap of %d", n, max)
	}
	return nil
}

package query

import (
	"io"
	"testing"
)

// benchProgram compiles a plan against the shared MIPS view, failing the
// benchmark on validation errors.
func benchProgram(b *testing.B, plan *Plan) (*View, *program) {
	b.Helper()
	v := mipsView()
	prog, fe := compile(v, plan)
	if fe != nil {
		b.Fatal(fe)
	}
	return v, prog
}

// reportPerRow attaches ns/row to the benchmark output (rows = column
// slots an operator touched per iteration).
func reportPerRow(b *testing.B, rows int) {
	b.Helper()
	if rows > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rows), "ns/row")
	}
}

func BenchmarkFilterDegree(b *testing.B) {
	v := mipsView()
	sel := make([]int32, 0, BatchSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := selectRange(sel[:0], 0, BatchSize)
		s = filterDegree(s, v.degree, opGE, 2)
		if len(s) == 0 {
			b.Fatal("filter dropped everything")
		}
	}
	reportPerRow(b, BatchSize)
}

func BenchmarkFilterBits(b *testing.B) {
	v := mipsView()
	sel := make([]int32, 0, BatchSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := selectRange(sel[:0], 0, BatchSize)
		s = filterBits(s, v.annotated, true)
		if len(s) == 0 {
			b.Fatal("filter dropped everything")
		}
	}
	reportPerRow(b, BatchSize)
}

func BenchmarkTopKColumn(b *testing.B) {
	v := mipsView()
	live := make([]uint64, len(v.annotated))
	for i := range live {
		live[i] = ^uint64(0)
	}
	heap := make([]pair, 0, 16)
	col := v.Column(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		heap = topkColumn(heap[:0], col, live, nil, 5)
	}
	reportPerRow(b, v.NumProteins())
}

func BenchmarkAppendRows(b *testing.B) {
	v, prog := benchProgram(b, &Plan{TopK: 5})
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		rows = 0
		for p := int32(0); p < 256; p++ {
			buf, rows = appendRankingRows(buf, v, prog, p, rows)
		}
	}
	reportPerRow(b, rows)
}

func BenchmarkExecuteScan(b *testing.B) {
	v := mipsView()
	plan := &Plan{}
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		res, fe := Execute(v, plan, 0)
		if fe != nil {
			b.Fatal(fe)
		}
		if _, err := res.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
		rows = res.RowCount()
	}
	reportPerRow(b, rows)
}

func BenchmarkExecuteGroupTopK(b *testing.B) {
	v := mipsView()
	plan := &Plan{GroupBy: "category", TopK: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, fe := Execute(v, plan, 0)
		if fe != nil {
			b.Fatal(fe)
		}
		if _, err := res.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	// Group mode scans every column slot regardless of k.
	reportPerRow(b, v.NumProteins()*v.NumFunctions())
}

// TestOperatorKernelAllocs is the runtime counterpart of the static
// `// alloc-budget: 0` annotations: the filter, top-k, and row-encoding
// kernels must not allocate once their destination buffers have capacity.
func TestOperatorKernelAllocs(t *testing.T) {
	v := mipsView()
	prog, fe := compile(v, &Plan{TopK: 5})
	if fe != nil {
		t.Fatal(fe)
	}
	sel := make([]int32, 0, BatchSize)
	heap := make([]pair, 0, 16)
	buf := make([]byte, 0, 1<<20)
	live := make([]uint64, len(v.annotated))
	col := v.Column(0)
	if n := testing.AllocsPerRun(20, func() {
		s := selectRange(sel[:0], 0, BatchSize)
		s = filterDegree(s, v.degree, opGE, 2)
		s = filterBits(s, v.annotated, true)
		markBits(live, s)
		heap = topkColumn(heap[:0], col, live, nil, 5)
		rows := 0
		buf2 := buf[:0]
		for _, p := range s {
			buf2, rows = appendRankingRows(buf2, v, prog, p, rows)
		}
		_ = rows
	}); n != 0 {
		t.Fatalf("operator kernels allocate %.1f times per batch, budget is 0", n)
	}
}

package query

import (
	"strconv"
	"sync/atomic"
	"time"

	"lamofinder/internal/par"
)

// Per-operator execution statistics: the EXPLAIN ANALYZE counterpart of
// the vectorized pipeline. Collection is strictly opt-in — Execute passes
// a nil collector and pays two nil checks per batch, nothing else — so
// the byte-deterministic fast path stays byte-identical and
// allocation-identical whether or not anyone is watching.

// Operator slots, in pipeline order. Per-protein plans use scan, filter,
// emit; group plans add the per-category topk heap stage.
const (
	opStageScan = iota
	opStageFilter
	opStageTopK
	opStageEmit
	numOpStages
)

var opStageNames = [numOpStages]string{"scan", "filter", "topk", "emit"}

// OpStat is one operator's aggregated counters for one plan execution.
// Row counts are deterministic (they depend only on the plan and the
// model); BusyUS sums the wall time every batch spent inside the operator,
// so under parallel execution it can exceed WallUS — it is CPU-occupancy,
// not elapsed time.
type OpStat struct {
	Op      string `json:"op"`
	RowsIn  int64  `json:"rows_in"`
	RowsOut int64  `json:"rows_out"`
	BusyUS  int64  `json:"busy_us"`
}

// Stats is the execution summary of one plan: total wall time plus the
// per-operator breakdown, in pipeline order.
type Stats struct {
	WallUS int64    `json:"wall_us"`
	Ops    []OpStat `json:"operators"`
}

// appendJSON append-encodes the stats object with fixed field order, so
// the explain tail is rendered by the same hand-rolled discipline as the
// row stream.
func (st *Stats) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"wall_us":`...)
	buf = strconv.AppendInt(buf, st.WallUS, 10)
	buf = append(buf, `,"operators":[`...)
	for i := range st.Ops {
		if i > 0 {
			buf = append(buf, ',')
		}
		o := &st.Ops[i]
		buf = append(buf, `{"op":"`...)
		buf = append(buf, o.Op...) // operator names are static identifiers
		buf = append(buf, `","rows_in":`...)
		buf = strconv.AppendInt(buf, o.RowsIn, 10)
		buf = append(buf, `,"rows_out":`...)
		buf = strconv.AppendInt(buf, o.RowsOut, 10)
		buf = append(buf, `,"busy_us":`...)
		buf = strconv.AppendInt(buf, o.BusyUS, 10)
		buf = append(buf, '}')
	}
	return append(buf, ']', '}')
}

// statCol accumulates operator counters across concurrently executing
// batches. All fields are atomic so batch workers add without locks; the
// final Stats assembly is a point-in-time read after the pipeline joins.
type statCol struct {
	rowsIn  [numOpStages]atomic.Int64
	rowsOut [numOpStages]atomic.Int64
	busy    [numOpStages]atomic.Int64 // nanoseconds
}

// add records one batch's pass through an operator. Nil-safe so the
// executor threads a nil collector on the fast path.
func (c *statCol) add(op int, in, out int64, d time.Duration) {
	if c == nil {
		return
	}
	c.rowsIn[op].Add(in)
	c.rowsOut[op].Add(out)
	c.busy[op].Add(d.Nanoseconds())
}

// stats assembles the final summary. group selects which operator slots
// the plan shape actually ran.
func (c *statCol) stats(group bool, wall time.Duration) *Stats {
	st := &Stats{WallUS: wall.Microseconds()}
	for op := 0; op < numOpStages; op++ {
		if op == opStageTopK && !group {
			continue
		}
		st.Ops = append(st.Ops, OpStat{
			Op:      opStageNames[op],
			RowsIn:  c.rowsIn[op].Load(),
			RowsOut: c.rowsOut[op].Load(),
			BusyUS:  time.Duration(c.busy[op].Load()).Microseconds(),
		})
	}
	return st
}

// ExecuteStats is Execute with opt-in operator statistics: when collect is
// true (or the plan itself asks for "explain": true) every batch times its
// scan/filter/topk/emit stages into an atomic collector, and the returned
// Stats carries the per-operator rows-in/rows-out and busy time. The row
// bytes the Result streams are byte-identical with and without collection;
// a plan with Explain set additionally appends the stats as an "explain"
// field after the rows array.
func ExecuteStats(v *View, plan *Plan, parallelism int, collect bool) (*Result, *Stats, *FieldError) {
	prog, fe := compile(v, plan)
	if fe != nil {
		return nil, nil, fe
	}
	var st *statCol
	var start time.Time
	if collect || plan.Explain {
		st = &statCol{}
		start = time.Now()
	}
	res := &Result{Artifact: v.digest, Kind: prog.kind, Columns: prog.cols}
	workers := par.Workers(parallelism)
	var counts []int
	if prog.group {
		counts = execGroup(v, prog, workers, res, st)
	} else {
		counts = execPerProtein(v, prog, workers, res, st)
	}
	for _, c := range counts {
		res.rowCount += c
	}
	if st == nil {
		return res, nil, nil
	}
	stats := st.stats(prog.group, time.Since(start))
	if plan.Explain {
		res.explain = stats
	}
	return res, stats, nil
}

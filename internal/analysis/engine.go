package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"lamofinder/internal/par"
)

// Engine is the module-wide interprocedural analysis state: every loaded
// package in dependency order, the static call graph over all of them,
// and the facts store the interprocedural rules read. Construction is
// strictly phased — call graph, then syntactic facts, then taint
// summaries (which read callee facts), then interprocedural lock-pair
// expansion — so by the time any rule runs, the store is immutable and
// rules can execute in parallel over packages without synchronization.
type Engine struct {
	Pkgs  []*Package // dependency order: imports precede importers
	Graph *CallGraph
	Facts *FactStore

	byPath map[string]*Package
}

// NewEngine builds the engine over the given packages. The input may be
// in any order and may contain duplicates; packages are deduplicated by
// import path and topologically sorted so facts are computed in
// dependency order (the invariant FactStore.Order records and
// TestFactsDependencyOrder asserts).
func NewEngine(pkgs []*Package) *Engine {
	pkgs = topoSort(dedupe(pkgs))
	g := NewCallGraph()
	for _, p := range pkgs {
		g.AddPackage(p)
	}
	facts := newFactStore(pkgs, g)
	computeTaintSummaries(pkgs, facts)
	expandHeldCalls(g, facts)
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	return &Engine{Pkgs: pkgs, Graph: g, Facts: facts, byPath: byPath}
}

// Package returns the analyzed package with the given import path, or nil.
func (e *Engine) Package(path string) *Package { return e.byPath[path] }

func dedupe(pkgs []*Package) []*Package {
	seen := map[string]bool{}
	var out []*Package
	for _, p := range pkgs {
		if p == nil || seen[p.Path] {
			continue
		}
		seen[p.Path] = true
		out = append(out, p)
	}
	return out
}

// topoSort orders packages so every module-internal import precedes its
// importer, breaking ties by input order (stable). The loader already
// yields a dependency-complete order; this re-sort makes the invariant
// hold for any caller-assembled package list (tests append fixture
// packages last, external callers may pass arbitrary order).
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var out []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return // done, or a cycle go/types already rejected
		}
		state[p.Path] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// computeTaintSummaries fills in each function's taint summary, package
// by package in dependency order, iterating each package to a fixpoint so
// intra-package call chains (and cycles) converge. Functions are visited
// in declaration order — the fixpoint is unique, but a deterministic
// visit order makes convergence (and therefore every diagnostic derived
// from it) reproducible run to run.
func computeTaintSummaries(pkgs []*Package, facts *FactStore) {
	for _, pkg := range pkgs {
		var pkgFacts []*FuncFact
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						if fact := facts.Fact(fn); fact != nil {
							pkgFacts = append(pkgFacts, fact)
						}
					}
				}
			}
		}
		for round := 0; round < 10; round++ {
			changed := false
			for _, fact := range pkgFacts {
				sum := summarize(pkg, facts, fact.Decl)
				if !summaryEqual(sum, fact.Taint) {
					fact.Taint = sum
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

func summaryEqual(a, b TaintSummary) bool {
	if a.Fresh != b.Fresh || len(a.ParamFlow) != len(b.ParamFlow) {
		return false
	}
	for i := range a.ParamFlow {
		if a.ParamFlow[i] != b.ParamFlow[i] {
			return false
		}
	}
	return true
}

// expandHeldCalls turns "called F while holding L" facts into lock pairs
// against every lock class F transitively acquires.
func expandHeldCalls(g *CallGraph, facts *FactStore) {
	for _, fact := range facts.funcs {
		for _, hc := range fact.heldCalls {
			for _, callee := range g.Reachable(hc.Callee) {
				cf := facts.Fact(callee)
				if cf == nil {
					continue
				}
				for _, acq := range cf.Acquires {
					if acq.ID != hc.Held {
						fact.Pairs = append(fact.Pairs, LockPair{Held: hc.Held, Acquired: acq.ID, Pos: hc.Pos})
					}
				}
			}
		}
	}
}

// ModulePass carries the engine through one module-wide analyzer.
type ModulePass struct {
	Engine  *Engine
	targets map[string]bool

	mu    *sync.Mutex
	diags *[]Diagnostic
	rule  string
}

// InTarget reports whether pkg is one of the packages the caller asked to
// analyze (dependency packages are loaded for facts but not reported on).
func (mp *ModulePass) InTarget(pkg *Package) bool {
	return pkg != nil && mp.targets[pkg.Path]
}

// TargetPackages returns the target packages in dependency order.
func (mp *ModulePass) TargetPackages() []*Package {
	var out []*Package
	for _, p := range mp.Engine.Pkgs {
		if mp.targets[p.Path] {
			out = append(out, p)
		}
	}
	return out
}

// Reportf records a diagnostic at pos, resolved through pkg's FileSet.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    mp.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzer suite: per-package rules over every target
// package (in parallel on up to workers goroutines — each package's
// diagnostics go to a private slice, so rules stay data-race-free), then
// the module-wide interprocedural rules, then one deterministic sort over
// everything.
func (e *Engine) Run(analyzers []*Analyzer, targets []string, workers int) []Diagnostic {
	tset := make(map[string]bool, len(targets))
	for _, t := range targets {
		tset[t] = true
	}
	var perPkg, module []*Analyzer
	for _, a := range analyzers {
		if a.Run != nil {
			perPkg = append(perPkg, a)
		}
		if a.RunModule != nil {
			module = append(module, a)
		}
	}

	targetPkgs := make([]*Package, 0, len(targets))
	for _, p := range e.Pkgs {
		if tset[p.Path] {
			targetPkgs = append(targetPkgs, p)
		}
	}
	perPkgDiags := make([][]Diagnostic, len(targetPkgs))
	par.Do(len(targetPkgs), par.Workers(workers), func(i int) {
		perPkgDiags[i] = RunAnalyzers(targetPkgs[i], perPkg)
	})

	var diags []Diagnostic
	for _, d := range perPkgDiags {
		diags = append(diags, d...)
	}
	var mu sync.Mutex
	for _, a := range module {
		mp := &ModulePass{Engine: e, targets: tset, mu: &mu, diags: &diags, rule: a.Name}
		a.RunModule(mp)
	}
	sortDiagnostics(diags)
	return diags
}

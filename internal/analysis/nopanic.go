package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// invariantMarker is the escape hatch for nopanic: a doc-comment line
// beginning with "invariant:" declares that the function panics only on a
// programmer-error precondition (impossible input, corrupted static
// fixture), never on data-dependent conditions a caller could trigger.
const invariantMarker = "invariant:"

// NoPanic returns the analyzer forbidding panic in library (internal/)
// packages except in functions documenting the panic as an invariant.
func NoPanic() *Analyzer {
	return &Analyzer{
		Name: "nopanic",
		Doc:  "forbid panic in internal/ packages unless the function doc has an '// invariant:' line",
		Run:  runNoPanic,
	}
}

func runNoPanic(pass *Pass) {
	rel, ok := relPath(pass.Path)
	if !ok || !strings.HasPrefix(rel, "internal/") {
		return
	}
	if rel == "internal/analysis" {
		// The analysis driver is tooling, not pipeline library code.
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasInvariantDoc(fd.Doc) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(),
						"panic in library function %s; return an error, or document the precondition with an '// invariant:' doc line", name)
				}
				return true
			})
		}
	}
}

// hasInvariantDoc reports whether any line of the doc comment starts with
// the invariant marker.
func hasInvariantDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, invariantMarker) {
			return true
		}
	}
	return false
}

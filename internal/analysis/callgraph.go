package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the module-wide static call graph: one node per declared
// function or method, edges for direct calls, static method calls, and
// method values. Calls made inside a function literal are attributed to
// the enclosing declared function — a closure runs with its owner's
// responsibilities, and for every interprocedural rule here (reachability
// of joins, allocation sites, lock acquisitions) that over-approximation
// is the safe direction. Dynamic dispatch through interface values and
// indirect calls through stored function values have no edges; rules that
// need soundness on those paths must treat the missing edge conservatively
// at the point of use.
type CallGraph struct {
	// callees[f] lists f's static callees in first-call-site order,
	// deduplicated.
	callees map[*types.Func][]*types.Func
	// decls maps a declared function to its syntax, so interprocedural
	// rules can walk callee bodies across packages.
	decls map[*types.Func]*ast.FuncDecl
	// declPkg maps a declared function to the package it was analyzed in.
	declPkg map[*types.Func]*Package
}

// NewCallGraph returns an empty call graph; packages are added by AddPackage.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		callees: map[*types.Func][]*types.Func{},
		decls:   map[*types.Func]*ast.FuncDecl{},
		declPkg: map[*types.Func]*Package{},
	}
}

// Decl returns the syntax of a declared function, or nil for functions
// outside the analyzed packages (standard library, interface methods).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// DeclPackage returns the analyzed package declaring fn, or nil.
func (g *CallGraph) DeclPackage(fn *types.Func) *Package { return g.declPkg[fn] }

// Callees returns fn's static callees in deterministic order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// AddPackage records every function declaration and call edge of pkg.
func (g *CallGraph) AddPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.declPkg[fn] = pkg
			g.callees[fn] = collectCallees(pkg, fd.Body)
		}
	}
}

// collectCallees walks one function body (function literals included) and
// resolves every statically known callee: direct calls, method calls, and
// method values (x.M used as a value is an edge too — the method runs
// whenever the value is invoked, and the rules here care about what *can*
// run, not when).
func collectCallees(pkg *Package, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
				add(fn)
			}
		case *ast.SelectorExpr:
			// Selections covers method calls and method values; package-
			// qualified functions resolve through Uses on the Sel ident
			// (handled by the Ident case above).
			if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() != types.FieldVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					add(fn)
				}
				return false // Sel's Ident would double-count via Uses
			}
		}
		return true
	})
	return out
}

// Reachable returns every declared function reachable from the roots
// through static call edges, the roots included, in deterministic
// breadth-first order. Callees without a declaration in the analyzed
// packages (standard library) are not expanded but do appear in the
// result, so callers can apply their own policy to leaves.
func (g *CallGraph) Reachable(roots ...*types.Func) []*types.Func {
	var queue []*types.Func
	seen := map[*types.Func]bool{}
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, c := range g.callees[queue[i]] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return queue
}

// CalleesAt resolves the statically known callee of one call expression,
// or nil for dynamic calls (interface dispatch, stored function values,
// builtins).
func CalleesAt(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Functions returns every declared function in the graph sorted by
// position, for deterministic module-wide iteration.
func (g *CallGraph) Functions() []*types.Func {
	fns := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		pi := g.position(fns[i])
		pj := g.position(fns[j])
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return fns
}

func (g *CallGraph) position(fn *types.Func) token.Position {
	pkg := g.declPkg[fn]
	if pkg == nil {
		return token.Position{}
	}
	return pkg.Fset.Position(fn.Pos())
}

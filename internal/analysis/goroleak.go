package analysis

import (
	"go/ast"
	"go/types"
)

// goroLeakScope lists the packages that launch background goroutines as
// part of the serving/observability machinery. A goroutine here that
// nobody can join outlives shutdown: it keeps writing to rings and
// counters while the process reports a clean drain, which is exactly the
// class of bug the SIGTERM-drain smoke test cannot reliably catch. The
// obs entry covers both bounded-ring drain loops — the access log's and
// the trace summary's (Tracer.Close must join the goroutine that turns
// finished-trace summaries into log lines, or a "clean" shutdown races
// its final writes).
var goroLeakScope = []string{
	"internal/par",
	"internal/serve",
	"internal/obs",
	"internal/fleet",
	"internal/query",
}

// GoroLeak returns the analyzer requiring every goroutine launched in the
// scope packages to be joinable: the launched function — or something it
// statically calls, transitively — must perform a channel operation
// (send, receive, close, select) or a sync.WaitGroup Done/Wait. That is
// the shape of every sanctioned pattern in this repo: the par worker's
// deferred wg.Done, the serve listener's error-channel send, the obs
// drain loop's select over wake/quit with its deferred close(done). A
// goroutine with none of these is fire-and-forget by construction —
// nothing can wait for it, so nothing can shut it down.
//
// Goroutines launched through dynamic calls (stored function values,
// interface methods) are not reported: the call graph cannot see their
// bodies, and this rule reports only what it can prove unjoinable.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name:      "goroleak",
		Doc:       "require goroutines in internal/{par,serve,obs,fleet,query} to be joinable via WaitGroup or channel, transitively",
		RunModule: runGoroLeak,
	}
}

func runGoroLeak(mp *ModulePass) {
	e := mp.Engine
	for _, pkg := range mp.TargetPackages() {
		if !inScopePkg(pkg, goroLeakScope) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if joinable, proven := goroutineJoinable(e, pkg, gs); proven && !joinable {
					mp.Reportf(pkg, gs.Pos(),
						"goroutine is not joinable: neither its body nor anything it statically calls touches a channel or a WaitGroup, so no Shutdown path can wait for it")
				}
				return true
			})
		}
	}
}

// goroutineJoinable decides whether the launched function can participate
// in a join. proven is false when the launch target is dynamic and the
// analysis has nothing to inspect.
func goroutineJoinable(e *Engine, pkg *Package, gs *ast.GoStmt) (joinable, proven bool) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		// The literal's own body, plus everything it statically calls.
		if hasJoinOps(pkg, fun.Body) {
			return true, true
		}
		for _, callee := range collectCallees(pkg, fun.Body) {
			if calleeJoins(e, callee) {
				return true, true
			}
		}
		return false, true
	default:
		fn := CalleesAt(pkg.Info, gs.Call)
		if fn == nil {
			return false, false // dynamic launch: nothing to inspect
		}
		return calleeJoins(e, fn), true
	}
}

// calleeJoins reports whether fn or any function statically reachable
// from it performs a join-capable operation. Standard-library callees
// without facts count as joinable only for the blocking primitives the
// repo actually launches through (none today); unknown leaves are treated
// as non-joining, which errs toward reporting.
func calleeJoins(e *Engine, fn *types.Func) bool {
	for _, f := range e.Graph.Reachable(fn) {
		if fact := e.Facts.Fact(f); fact != nil && fact.Joins {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the forward taint lattice of the interprocedural engine.
// A value is tainted when its bytes or its order can differ between two
// runs on the same input: it came from iterating a map (order taint),
// from ambient randomness, or from the wall clock. Taint flows forward
// through assignments, expressions, calls (via per-function summaries
// computed in dependency order), and returns. sort.* over a value clears
// its order taint — sorting is exactly the repair for map-iteration
// nondeterminism — but cannot clear randomness or clock taint, because
// those poison the values themselves, not just their order.

// Taint is a bitmask of nondeterminism kinds.
type Taint uint8

const (
	// TaintMapIter marks values whose order depends on map iteration.
	TaintMapIter Taint = 1 << iota
	// TaintRand marks values derived from process-global randomness.
	TaintRand
	// TaintTime marks values derived from the wall clock.
	TaintTime
)

func (t Taint) describe() string {
	var parts []string
	if t&TaintMapIter != 0 {
		parts = append(parts, "map-iteration order")
	}
	if t&TaintRand != 0 {
		parts = append(parts, "ambient randomness")
	}
	if t&TaintTime != 0 {
		parts = append(parts, "wall-clock time")
	}
	return strings.Join(parts, "+")
}

// TaintSummary is a function's interprocedural contract: the taint it
// mints regardless of inputs (Fresh) and which parameters flow into its
// results (ParamFlow). Summaries are computed bottom-up over the package
// dependency order with an intra-package fixpoint, so a helper that
// launders a tainted slice through two hops is still seen through.
type TaintSummary struct {
	Fresh     Taint
	ParamFlow []bool
}

// taintVal carries the kind mask in the low bits and one bit per
// parameter above them, so summary computation and sink checking share
// one evaluator.
type taintVal uint64

const taintKindBits = 8

func (v taintVal) kinds() Taint { return Taint(v & (1<<taintKindBits - 1)) }

func paramBit(i int) taintVal {
	if i > 54 {
		i = 54 // clamp: parameter lists beyond 55 entries share a bit
	}
	return 1 << (taintKindBits + i)
}

// taintScan is one intraprocedural pass over a function body.
type taintScan struct {
	pkg   *Package
	facts *FactStore
	vars  map[types.Object]taintVal
	// onSink, when set, is invoked for every tainted value reaching a
	// sink (a sink call argument or a serialized-marked field).
	onSink func(pos token.Pos, t Taint, sink string)
}

// summarize computes fn's TaintSummary from its declaration, reading
// callee summaries out of the facts store (zero summaries for not-yet-
// computed callees; the engine iterates to a fixpoint).
func summarize(pkg *Package, facts *FactStore, fd *ast.FuncDecl) TaintSummary {
	sc := &taintScan{pkg: pkg, facts: facts, vars: map[types.Object]taintVal{}}
	params := paramObjects(pkg, fd)
	for i, p := range params {
		sc.vars[p] = paramBit(i)
	}
	// Two propagation passes approximate the loop-carried fixpoint.
	sc.walk(fd.Body)
	sc.walk(fd.Body)
	var ret taintVal
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range r.Results {
				ret |= sc.taintOf(e)
			}
		}
		return true
	})
	// Named results assigned and returned bare.
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ret |= sc.vars[obj]
				}
			}
		}
	}
	sum := TaintSummary{Fresh: ret.kinds(), ParamFlow: make([]bool, len(params))}
	for i := range params {
		if ret&paramBit(i) != 0 {
			sum.ParamFlow[i] = true
		}
	}
	return sum
}

// paramObjects returns the declared parameter objects in order (receiver
// excluded — taint through receivers is out of scope for the summary).
func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// walk propagates taint through the body in source order.
func (sc *taintScan) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sc.assign(n)
		case *ast.RangeStmt:
			sc.rangeStmt(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							sc.setVar(name, sc.taintOf(vs.Values[i]))
						}
					}
				}
			}
		case *ast.CallExpr:
			sc.sanitize(n)
			sc.checkSink(n)
		}
		return true
	})
}

func (sc *taintScan) setVar(name *ast.Ident, v taintVal) {
	obj := sc.pkg.Info.Defs[name]
	if obj == nil {
		obj = sc.pkg.Info.Uses[name]
	}
	if obj != nil {
		sc.vars[obj] |= v
	}
}

func (sc *taintScan) assign(a *ast.AssignStmt) {
	// Multi-value RHS (one call): every LHS gets the call's taint.
	var rhs []taintVal
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		v := sc.taintOf(a.Rhs[0])
		for range a.Lhs {
			rhs = append(rhs, v)
		}
	} else {
		for _, e := range a.Rhs {
			rhs = append(rhs, sc.taintOf(e))
		}
	}
	for i, lhs := range a.Lhs {
		if i >= len(rhs) {
			break
		}
		v := rhs[i]
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
				sc.setVar(l, v)
			} else {
				sc.setVar(l, v) // op= merges
			}
		case *ast.SelectorExpr:
			// Assigning into a serialized-marked field is a sink.
			if v.kinds() != 0 && sc.onSink != nil {
				if field := sc.fieldOf(l); field != nil && sc.facts.serialized[field] {
					sc.onSink(l.Pos(), v.kinds(), "serialized field "+field.Name())
				}
			}
			// Track taint on the root object coarsely.
			if root := rootIdent(l); root != nil {
				sc.setVar(root, v)
			}
		case *ast.IndexExpr:
			if root := rootIdent(l.X); root != nil {
				sc.setVar(root, v)
			}
		}
	}
}

func (sc *taintScan) rangeStmt(r *ast.RangeStmt) {
	xt := sc.taintOf(r.X)
	_, overMap := sc.pkg.Info.TypeOf(r.X).Underlying().(*types.Map)
	set := func(e ast.Expr, v taintVal) {
		if e == nil {
			return
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			sc.setVar(id, v)
		}
	}
	if overMap {
		// Both the key and the value stream arrive in nondeterministic order.
		set(r.Key, xt|taintVal(TaintMapIter))
		set(r.Value, xt|taintVal(TaintMapIter))
		return
	}
	set(r.Key, 0)
	set(r.Value, xt)
}

// sanitize clears order taint from arguments of sort.* calls: the
// collect-then-sort idiom is the sanctioned repair for map iteration.
func (sc *taintScan) sanitize(call *ast.CallExpr) {
	fn := CalleesAt(sc.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	p := fn.Pkg().Path()
	if p != "sort" && p != "slices" {
		return
	}
	for _, arg := range call.Args {
		if root := rootIdent(arg); root != nil {
			if obj := sc.pkg.Info.Uses[root]; obj != nil {
				sc.vars[obj] &^= taintVal(TaintMapIter)
			}
		}
	}
}

// checkSink reports tainted arguments flowing into sink calls.
func (sc *taintScan) checkSink(call *ast.CallExpr) {
	if sc.onSink == nil {
		return
	}
	fn := CalleesAt(sc.pkg.Info, call)
	if fn == nil {
		return
	}
	name, isSink := sc.facts.sinkName(fn, call, sc.pkg)
	if !isSink {
		return
	}
	for _, arg := range call.Args {
		if t := sc.taintOf(arg).kinds(); t != 0 {
			sc.onSink(arg.Pos(), t, name)
		}
	}
}

// taintOf evaluates an expression's taint.
func (sc *taintScan) taintOf(e ast.Expr) taintVal {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := sc.pkg.Info.Uses[e]; obj != nil {
			return sc.vars[obj]
		}
		if obj := sc.pkg.Info.Defs[e]; obj != nil {
			return sc.vars[obj]
		}
	case *ast.SelectorExpr:
		if root := rootIdent(e); root != nil {
			if obj := sc.pkg.Info.Uses[root]; obj != nil {
				return sc.vars[obj]
			}
		}
	case *ast.CallExpr:
		return sc.taintOfCall(e)
	case *ast.BinaryExpr:
		return sc.taintOf(e.X) | sc.taintOf(e.Y)
	case *ast.UnaryExpr:
		return sc.taintOf(e.X)
	case *ast.StarExpr:
		return sc.taintOf(e.X)
	case *ast.IndexExpr:
		return sc.taintOf(e.X) | sc.taintOf(e.Index)
	case *ast.SliceExpr:
		return sc.taintOf(e.X)
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v |= sc.taintOf(kv.Value)
			} else {
				v |= sc.taintOf(el)
			}
		}
		return v
	case *ast.TypeAssertExpr:
		return sc.taintOf(e.X)
	}
	return 0
}

// taintOfCall applies source rules, callee summaries (module functions),
// and a conservative argument-union default for everything else.
func (sc *taintScan) taintOfCall(call *ast.CallExpr) taintVal {
	var args taintVal
	for _, a := range call.Args {
		args |= sc.taintOf(a)
	}
	// A method call's receiver is part of the dataflow even though it is
	// not in Args: time.Now().Format(...) must stay clock-tainted.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := sc.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args |= sc.taintOf(sel.X)
		}
	}
	fn := CalleesAt(sc.pkg.Info, call)
	if fn == nil {
		// Builtins and dynamic calls: append/copy/etc. pass taint through.
		return args
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				return args | taintVal(TaintTime)
			}
		case "math/rand", "math/rand/v2":
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil && !randConstructors[fn.Name()] {
				// Global generator: value nondeterminism. Methods on an
				// injected *rand.Rand are the sanctioned seeded pattern
				// and stay clean.
				return args | taintVal(TaintRand)
			}
		case "sort", "slices":
			// Result (if any) is sorted: order taint repaired.
			return args &^ taintVal(TaintMapIter)
		}
	}
	if fact := sc.facts.Fact(fn); fact != nil {
		// Module-internal callee: apply its summary parameter-wise.
		var out taintVal = taintVal(fact.Taint.Fresh)
		for i, arg := range call.Args {
			j := i
			if j >= len(fact.Taint.ParamFlow) {
				j = len(fact.Taint.ParamFlow) - 1 // variadic tail
			}
			if j >= 0 && fact.Taint.ParamFlow[j] {
				out |= sc.taintOf(arg)
			}
		}
		return out
	}
	// Unknown (standard-library) function: taint passes through.
	return args
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func (sc *taintScan) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := sc.pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

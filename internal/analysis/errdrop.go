package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the analyzer flagging statements that silently discard a
// call's error result. An explicit `_ = f()` is allowed — it is a visible,
// reviewable decision — the rule targets bare call statements where the
// drop is invisible.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flag call statements that silently discard an error result (explicit '_ =' is the escape hatch)",
		Run:  runErrDrop,
	}
}

// latchingWriters are receiver/destination types whose write methods
// either cannot fail (strings.Builder, bytes.Buffer always return nil) or
// latch the first error until Flush (bufio.Writer), so dropping the
// per-call error is the documented idiom. Flush itself is NOT exempt:
// that is where a latched error surfaces.
var latchingWriters = map[string]bool{
	"*strings.Builder": true,
	"strings.Builder":  true,
	"*bytes.Buffer":    true,
	"bytes.Buffer":     true,
	"*bufio.Writer":    true,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || !returnsError(pass, call) || exemptDrop(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently discarded; handle it or assign it to _ explicitly", calleeName(call))
			return true
		})
	}
}

// returnsError reports whether the call's last result is of type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptDrop reports whether the dropped error is one of the sanctioned
// idioms: terminal-output diagnostics via fmt, or writes through an
// error-latching / infallible writer whose failure surfaces elsewhere.
func exemptDrop(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		if strings.HasPrefix(name, "Print") {
			// Stdout diagnostics: nothing sensible to do with the error.
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return latchingDest(pass, call.Args[0])
		}
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := types.TypeString(sig.Recv().Type(), nil)
	return latchingWriters[recv] && fn.Name() != "Flush"
}

// latchingDest reports whether a writer argument is an error-latching or
// infallible destination, or one of the process's standard streams.
func latchingDest(pass *Pass, arg ast.Expr) bool {
	if t := pass.Info.TypeOf(arg); t != nil && latchingWriters[types.TypeString(t, nil)] {
		return true
	}
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok &&
			v.Pkg() != nil && v.Pkg().Path() == "os" &&
			(v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

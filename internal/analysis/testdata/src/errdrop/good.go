package fixture

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// GoodHandled propagates the error.
func GoodHandled(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hello"); err != nil {
		return err
	}
	return nil
}

// GoodLatched relies on bufio's error latching and returns Flush's error.
func GoodLatched(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "hello")
	bw.WriteString("world")
	return bw.Flush()
}

// GoodBuilder writes to infallible in-memory destinations.
func GoodBuilder() string {
	var b strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&b, "x=%d", 1)
	fmt.Fprintf(&buf, "y=%d", 2)
	buf.WriteByte('!')
	return b.String() + buf.String()
}

// GoodExplicit discards visibly — the sanctioned escape hatch.
func GoodExplicit(w io.Writer, f *os.File) {
	_, _ = fmt.Fprintln(w, "hello")
	defer func() { _ = f.Close() }()
}

// GoodStdout prints diagnostics to the process streams.
func GoodStdout() {
	fmt.Println("diagnostic")
	fmt.Fprintln(os.Stderr, "diagnostic")
}

package fixture

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// BadStatement drops the write error on the floor.
func BadStatement(w io.Writer) {
	fmt.Fprintln(w, "hello") // want
}

// BadFlush drops the one call where a bufio.Writer's latched error
// finally surfaces.
func BadFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "hello")
	bw.Flush() // want
}

// BadDefer silently drops a deferred close error.
func BadDefer(f *os.File) {
	defer f.Close() // want
}

// BadGo silently drops an error in a fire-and-forget goroutine.
func BadGo(f *os.File) {
	go f.Sync() // want
}

package fixture

import (
	"math/rand"
	"time"
)

// Good uses the sanctioned pattern: a generator built from an explicit
// seed, with all draws going through its methods, and timing taken from a
// caller-supplied value.
func Good(seed int64, now time.Time) (int, int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(4, func(i, j int) {})
	return rng.Intn(10), now.Unix()
}

// GoodParallel is the sanctioned worker-pool pattern: each work index
// derives its own generator from the injected seed and writes only its own
// slot, so the result is independent of scheduling and worker count.
func GoodParallel(seed int64, out []int) {
	done := make(chan struct{})
	for i := range out {
		go func(i int) {
			rng := rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9))
			out[i] = rng.Intn(10)
			done <- struct{}{}
		}(i)
	}
	for range out {
		<-done
	}
}

package fixture

import (
	"math/rand"
	"time"
)

// Good uses the sanctioned pattern: a generator built from an explicit
// seed, with all draws going through its methods, and timing taken from a
// caller-supplied value.
func Good(seed int64, now time.Time) (int, int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(4, func(i, j int) {})
	return rng.Intn(10), now.Unix()
}

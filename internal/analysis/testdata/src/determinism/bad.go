package fixture

import (
	"math/rand"
	"time"
)

// Bad exercises every forbidden ambient-state pattern: the global
// math/rand functions (shared process state), explicit reseeding of the
// global source, and a wall-clock read.
func Bad() (int, int64) {
	rand.Seed(42)      // want
	x := rand.Intn(10) // want
	_ = rand.Float64() // want
	f := rand.Perm     // want
	_ = f(3)
	return x, time.Now().Unix() // want
}

// BadParallel fans work out to goroutines that all draw from the shared
// global source: beyond the shared-state lock, the interleaving of draws
// across workers depends on the scheduler, so results change run to run
// even under a fixed rand.Seed.
func BadParallel(items []int) {
	done := make(chan struct{})
	for range items {
		go func() {
			_ = rand.Int63() // want
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
}

package fixture

import (
	"math/rand"
	"time"
)

// Bad exercises every forbidden ambient-state pattern: the global
// math/rand functions (shared process state), explicit reseeding of the
// global source, and a wall-clock read.
func Bad() (int, int64) {
	rand.Seed(42)      // want
	x := rand.Intn(10) // want
	_ = rand.Float64() // want
	f := rand.Perm     // want
	_ = f(3)
	return x, time.Now().Unix() // want
}

package fixture

import "lamofinder/internal/analysis/testdata/src/allocbudget/helper"

// Fill appends into the caller's buffer: the amortized-zero pooled-buffer
// idiom, which the static gate deliberately trusts (the benchmark gate
// verifies the amortization).
//
// alloc-budget: 0
func Fill(dst []byte, b byte) []byte {
	return append(dst, b)
}

// One spends exactly its declared budget on grow's make.
//
// alloc-budget: 1
func One(n int) []int {
	return grow(n)
}

// OneCross budgets for the helper package's allocation.
//
// alloc-budget: 1
func OneCross(n int) []byte {
	return helper.Buf(n)
}

// Unannotated functions may allocate freely: the rule is opt-in.
func Unannotated(n int) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, grow(i))
	}
	return out
}

// Package helper hides an allocation behind a package boundary for the
// allocbudget fixture's cross-package case.
package helper

// Buf returns a fresh buffer: one definite allocation site.
func Buf(n int) []byte {
	return make([]byte, n)
}

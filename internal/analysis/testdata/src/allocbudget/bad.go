package fixture

import "lamofinder/internal/analysis/testdata/src/allocbudget/helper"

// grow allocates a fresh slice on every call.
func grow(n int) []int {
	return make([]int, n)
}

// Hot claims zero allocations but reaches grow's make through one call; a
// scan of Hot's own body sees nothing to object to.
//
// alloc-budget: 0
func Hot(n int) []int { // want
	return grow(n)
}

// HotCross reaches an allocation living in another package entirely.
//
// alloc-budget: 0
func HotCross(n int) []byte { // want
	return helper.Buf(n)
}

// HotOwn allocates in its own body — the degenerate single-function case.
//
// alloc-budget: 0
func HotOwn(k string, v int) map[string]int { // want
	return map[string]int{k: v}
}

package fixture

// BadValidate panics on bad input without documenting the precondition as
// an invariant, so a caller has no way to know the function can bring the
// process down.
func BadValidate(n int) int {
	if n < 0 {
		panic("fixture: negative size") // want
	}
	return n
}

// BadNested panics from inside a closure; the rule attributes it to the
// enclosing declaration.
func BadNested(xs []int) func() {
	return func() {
		if len(xs) == 0 {
			panic("fixture: empty") // want
		}
	}
}

package fixture

import "errors"

// GoodInvariant panics only on a documented programmer-error precondition.
//
// invariant: n is non-negative — callers validate sizes before handing
// them down, so a negative value is a bug upstream, never a data state.
func GoodInvariant(n int) int {
	if n < 0 {
		panic("fixture: negative size")
	}
	return n
}

// GoodError reports bad input the way library code should.
func GoodError(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("fixture: negative size")
	}
	return n, nil
}

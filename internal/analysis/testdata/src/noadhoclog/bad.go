package fixture

import (
	"fmt"
	"log"
)

// BadStdout narrates progress straight to process stdout: the lines carry
// no level or trace ID and interleave with whatever the binary prints.
func BadStdout(n int) {
	fmt.Println("processed", n) // want
	fmt.Printf("count=%d\n", n) // want
	fmt.Print("done")           // want
}

// BadGlobalLogger writes through log's process-global logger, whose
// destination and flags belong to whoever touched it last.
func BadGlobalLogger(err error) {
	log.Println("warning:", err) // want
	log.Printf("warn: %v", err)  // want
	log.Print("warn")            // want
}

// BadBuiltins are leftover debug prints to stderr.
func BadBuiltins(n int) {
	println("debug", n) // want
	print("debug")      // want
}

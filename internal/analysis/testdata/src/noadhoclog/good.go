package fixture

import (
	"fmt"
	"io"
	"log"
)

// GoodWriterDirected renders to an injected writer: the caller owns the
// destination, so nothing leaks to the process streams.
func GoodWriterDirected(w io.Writer, n int) error {
	if _, err := fmt.Fprintf(w, "count=%d\n", n); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "done")
	return err
}

// GoodFormatting only builds strings and errors — no output side effects.
func GoodFormatting(n int) error {
	return fmt.Errorf("bad input %s", fmt.Sprintf("n=%d", n))
}

// GoodExplicitLogger logs through an instance bound to an explicit writer;
// its Printf is a method, not the package-level global.
func GoodExplicitLogger(w io.Writer, n int) {
	l := log.New(w, "", 0)
	l.Printf("count=%d", n)
}

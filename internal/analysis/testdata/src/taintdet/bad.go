package fixture

import (
	"math/rand"
	"strconv"

	"lamofinder/internal/analysis/testdata/src/taintdet/helper"
)

// Emit stands in for the artifact/JSON encoders; tainted arguments to it
// are taintdet violations.
//
// lamovet:sink
func Emit(lines []string) int {
	return len(lines)
}

// Report is a serialized payload: assignments into Lines are sinks.
type Report struct {
	Lines []string // lamovet:serialized
	note  string
}

// BadDirect collects keys in map-iteration order and serializes them: the
// single-function case every per-function linter also sees — except this
// package is outside mapiter's scope, so only taintdet reports it.
func BadDirect(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return Emit(keys) // want
}

// BadCross launders the map order through a helper in another package;
// a per-function scan of this body sees only an innocent call chain.
func BadCross(m map[string]int) int {
	keys := helper.Keys(m)
	return Emit(keys) // want
}

// BadEchoed adds one more hop through an identity function.
func BadEchoed(m map[string]int) int {
	keys := helper.Echo(helper.Keys(m))
	return Emit(keys) // want
}

// BadField writes cross-package order taint into a serialized field.
func BadField(m map[string]int, r *Report) {
	r.Lines = helper.Keys(m) // want
}

// BadTime serializes a wall-clock stamp minted in the helper package.
func BadTime() int {
	return Emit([]string{helper.Stamp()}) // want
}

// BadRandSorted sorts before serializing — but sorting only repairs
// order; the values themselves came from the global generator.
func BadRandSorted(n int) int {
	vals := make([]string, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, strconv.Itoa(rand.Intn(100)))
	}
	sortStrings(vals)
	return Emit(vals) // want
}

package fixture

import (
	"math/rand"
	"sort"
	"strconv"

	"lamofinder/internal/analysis/testdata/src/taintdet/helper"
)

// sortStrings wraps sort.Strings so fixtures exercise sanitization both
// directly and through a module-internal helper.
func sortStrings(s []string) {
	sort.Strings(s)
}

// GoodSorted is the sanctioned collect-then-sort idiom: sorting clears the
// order taint the helper minted, so the sink sees a deterministic slice.
func GoodSorted(m map[string]int) int {
	keys := helper.Keys(m)
	sort.Strings(keys)
	return Emit(keys)
}

// GoodSeeded draws from an injected, caller-seeded generator: method calls
// on a *rand.Rand are the sanctioned pattern and stay clean.
func GoodSeeded(r *rand.Rand) int {
	return Emit([]string{strconv.Itoa(r.Intn(100))})
}

// GoodPlain serializes plain inputs: no taint anywhere.
func GoodPlain(names []string, rep *Report) int {
	rep.Lines = names
	return Emit(names)
}

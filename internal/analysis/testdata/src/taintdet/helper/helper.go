// Package helper supplies taint sources behind a package boundary, so the
// taintdet fixture exercises cross-package summary propagation: the
// fixture never ranges over a map or touches the clock itself.
package helper

import "time"

// Keys returns m's keys in map-iteration order — the classic order-taint
// source, two packages away from the sink that consumes it.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Stamp returns the wall-clock time as text: clock taint minted here,
// reported at the sink in the importing package.
func Stamp() string {
	return time.Now().Format(time.RFC3339)
}

// Echo passes its argument straight through — taint must survive the hop.
func Echo(vals []string) []string {
	return vals
}

// Package fixture exercises the three call-graph edge kinds the unit
// tests assert: a plain static call, a method value, and a call made from
// inside a closure (attributed to the enclosing declared function).
package fixture

type T struct {
	n int
}

func (t T) M() int {
	return t.n
}

func target() int {
	return 1
}

// Static calls target directly.
func Static() int {
	return target()
}

// MethodValue captures t.M as a value; the edge MethodValue→T.M exists
// even though the eventual call through f is dynamic.
func MethodValue(t T) int {
	f := t.M
	return f()
}

// Closure calls target only from inside a literal; the edge belongs to
// Closure, the enclosing declared function.
func Closure() func() int {
	return func() int {
		return target()
	}
}

package fixture

import (
	"fmt"
	"io"
	"strings"
)

// BadAppend returns a slice whose element order mirrors map iteration.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want
		out = append(out, k)
	}
	return out
}

// BadWrite streams key/value lines in map-iteration order.
func BadWrite(w io.Writer, m map[string]int) error {
	for k, v := range m { // want
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, v); err != nil {
			return err
		}
	}
	return nil
}

// BadBuilder assembles a string in map-iteration order.
func BadBuilder(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want
		b.WriteString(k)
	}
	return b.String()
}

package fixture

import "sort"

// GoodSorted collects keys and sorts before anything depends on order —
// the collect-then-sort idiom canonSearch uses.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodReduce folds the map into an order-independent aggregate.
func GoodReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodIndexed writes into key-derived slots, so the final slice does not
// depend on iteration order.
func GoodIndexed(m map[int]string, n int) []string {
	out := make([]string, n)
	for i, s := range m {
		out[i] = s
	}
	return out
}

package fixture

// Spin launches a literal nobody can join: its body touches no channel
// and no WaitGroup, so shutdown has nothing to wait on.
func Spin(n *int) {
	go func() { // want
		for {
			*n++
		}
	}()
}

// forever crunches with no join-capable operation anywhere in it.
func forever(n *int) {
	for {
		*n++
	}
}

// SpinNamed launches a declared function that is equally unjoinable; only
// the call graph can see that — the go statement itself looks innocent.
func SpinNamed(n *int) {
	go forever(n) // want
}

// SpinWrapped hides the unjoinable loop behind a joining-free wrapper.
func SpinWrapped(n *int) {
	go func() { // want
		forever(n)
	}()
}

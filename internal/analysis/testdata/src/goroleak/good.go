package fixture

import "sync"

// Fan is the worker-pool shape: the launched literal signals a WaitGroup,
// so Wait joins it.
func Fan(wg *sync.WaitGroup, n *int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		*n++
	}()
}

// Pump launches a declared function that parks on a channel — joinable
// through done, proven via the callee's facts.
func Pump(done chan struct{}) {
	go wait(done)
}

func wait(done chan struct{}) {
	<-done
}

// PumpLit joins transitively: the literal's body has no channel ops, but
// its static callee does.
func PumpLit(done chan struct{}) {
	go func() {
		wait(done)
	}()
}

// Serve is the listener shape: the goroutine hands its result to a
// channel the caller can drain.
func Serve(run func() error) error {
	errc := make(chan error, 1)
	go func() {
		errc <- run()
	}()
	return <-errc
}

package fixture

// BadEq compares two computed scores exactly.
func BadEq(a, b float64) bool {
	return a*2 == b+b // want
}

// BadNeq counts strict changes between adjacent computed values.
func BadNeq(xs []float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] { // want
			n++
		}
	}
	return n
}

// BadFloat32 drifts just the same at single precision.
func BadFloat32(a, b float32) bool {
	return a == b // want
}

package fixture

// GoodSentinel compares against a compile-time constant: a sentinel
// check, not drift-prone computed equality.
func GoodSentinel(a float64) bool {
	return a == 0 || a != 1.5
}

// GoodOrder uses ordering, which the rule does not police.
func GoodOrder(a, b float64) bool {
	return a < b
}

// GoodInts is integer equality.
func GoodInts(a, b int) bool {
	return a == b
}

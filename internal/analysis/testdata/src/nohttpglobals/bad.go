package fixture

import (
	"io"
	"net/http"
)

// BadServer wires the daemon into the process-global mux: any other
// package (or test) that also registers on DefaultServeMux collides with
// these routes, and http.ListenAndServe with a nil handler serves that
// shared mux.
func BadServer() error {
	http.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {}) // want
	http.Handle("/v1/predict", http.NotFoundHandler())                              // want
	mux := http.DefaultServeMux                                                     // want
	_ = mux
	return http.ListenAndServe(":8080", nil) // want
}

// BadClient issues requests through the shared zero-timeout client: a hung
// server blocks the caller forever, and RoundTripper tweaks leak to every
// other user of DefaultClient in the process.
func BadClient(url string) error {
	resp, err := http.Get(url) // want
	if err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if err := resp.Body.Close(); err != nil {
		return err
	}
	if _, err := http.Post(url, "text/plain", nil); err != nil { // want
		return err
	}
	http.DefaultClient.Timeout = 0 // want
	t := http.DefaultTransport     // want
	_ = t
	return nil
}

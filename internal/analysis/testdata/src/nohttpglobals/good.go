package fixture

import (
	"io"
	"net/http"
	"time"
)

// GoodServer builds its own mux and server: routes are private to this
// instance, and the listen loop serves exactly this handler.
func GoodServer() error {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {})
	srv := &http.Server{Addr: ":8080", Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// GoodClient constructs an explicit client with a deadline; its Get/Post
// are methods on that instance, not the package-level helpers.
func GoodClient(url string) error {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	return resp.Body.Close()
}

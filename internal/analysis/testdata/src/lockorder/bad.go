package fixture

import "sync/atomic"

// LookupThenCount nests statsMu inside mu; CountThenLookup nests them the
// other way around. Either order alone is fine — the inversion is only
// visible with both functions (and, for Rebalance, the callee's lock set)
// in view, which is exactly what a per-function scan lacks.
func (r *Registry) LookupThenCount(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.table[k]
	r.statsMu.Lock() // want
	r.hits++
	r.statsMu.Unlock()
	return v
}

// CountThenLookup acquires the same two lock classes in the opposite
// order: the classic ABBA deadlock shape.
func (r *Registry) CountThenLookup(k string) int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.mu.Lock() // want
	v := r.table[k]
	r.mu.Unlock()
	return v
}

// Rebalance holds mu across a call into recount, which takes statsMu: the
// same mu→statsMu edge as LookupThenCount, but only the call graph sees it.
func (r *Registry) Rebalance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recount() // want
}

func (r *Registry) recount() {
	r.statsMu.Lock()
	r.hits = 0
	r.statsMu.Unlock()
}

// Gauge mixes atomic and plain access to one field: Inc publishes through
// sync/atomic while Read loads the field with a plain read that races.
type Gauge struct {
	val int64
}

func (g *Gauge) Inc() {
	atomic.AddInt64(&g.val, 1)
}

func (g *Gauge) Read() int64 {
	return g.val // want
}

package fixture

import (
	"sync"
	"sync/atomic"
)

// Registry pairs a table lock with a separate stats lock; bad.go nests
// them inconsistently. Cache below is the clean twin: every path takes
// its two locks in the same order, so no inversion exists for its classes.
type Registry struct {
	mu      sync.Mutex
	statsMu sync.Mutex
	table   map[string]int
	hits    int64
}

// Cache always orders mu before evictMu.
type Cache struct {
	mu      sync.Mutex
	evictMu sync.Mutex
	entries map[string]int
	evicted int
}

// Get nests evictMu inside mu — the one sanctioned order for Cache.
func (c *Cache) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.entries[k]
	c.evictMu.Lock()
	c.evicted++
	c.evictMu.Unlock()
	return v
}

// Put takes the same classes in the same order; consistent nesting is not
// an inversion no matter how many call sites repeat it.
func (c *Cache) Put(k string, v int) {
	c.mu.Lock()
	c.entries[k] = v
	c.evictMu.Lock()
	c.evicted++
	c.evictMu.Unlock()
	c.mu.Unlock()
}

// Counter keeps every access to ops atomic — the discipline Gauge in
// bad.go violates.
type Counter struct {
	ops int64
}

func (c *Counter) Add() {
	atomic.AddInt64(&c.ops, 1)
}

func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.ops)
}

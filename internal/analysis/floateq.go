package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqScope lists the scoring packages: term weights, Lin similarities,
// uniqueness fractions, AUC ranks. Values there are produced by arithmetic
// whose low bits shift under refactoring, so exact ==/!= silently changes
// tie groups and thresholds between runs of "equivalent" code.
var floatEqScope = []string{
	"internal/label",
	"internal/cluster",
	"internal/eval",
	"internal/predict",
}

// FloatEq returns the analyzer flagging ==/!= between computed (non-literal)
// floating-point expressions in the scoring packages.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= between computed float expressions in scoring packages; use internal/floats.Eq",
		Run:  runFloatEq,
	}
}

func runFloatEq(pass *Pass) {
	if !inScope(pass, floatEqScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			// Comparisons against a compile-time constant (x == 0, x != 1.5)
			// are sentinel checks, not drift-prone computed equality.
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"%s between computed floats is sensitive to rounding drift; use floats.Eq (internal/floats)", be.Op)
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

package analysis

import (
	"fmt"
	"go/token"
	"math/rand"
	"path/filepath"
	"testing"
)

// interprocCases pairs each module-wide analyzer with the import path its
// fixture is loaded under. The paths are chosen outside the scopes of
// every per-package rule, which is what lets
// TestOldRulesMissInterproceduralFixtures prove the new rules catch
// violations the old per-function scans cannot see.
var interprocCases = []struct {
	rule   string
	asPath string
}{
	{"taintdet", ModulePath + "/internal/ontology"},
	{"lockorder", ModulePath + "/internal/obs"},
	{"goroleak", ModulePath + "/internal/par"},
	{"allocbudget", ModulePath + "/internal/ontology"},
}

// buildFixtureEngine loads a fixture directory under its aliased path plus
// whatever helper packages it imports, and assembles an engine over all of
// them.
func buildFixtureEngine(t *testing.T, rule, asPath string) (*Engine, *Package) {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", rule)
	loader := NewLoader(root)
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return NewEngine(append(loader.Loaded(), pkg)), pkg
}

// TestInterproceduralFixtures runs each module-wide analyzer over its
// fixture through a full engine and asserts the reported positions are
// exactly the "// want" lines.
func TestInterproceduralFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, tc := range interprocCases {
		t.Run(tc.rule, func(t *testing.T) {
			engine, _ := buildFixtureEngine(t, tc.rule, tc.asPath)
			analyzers, err := Select(tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", tc.rule)
			want := wantMarkers(t, dir)
			got := map[string]int{}
			for _, d := range engine.Run(analyzers, []string{tc.asPath}, 1) {
				if d.Rule != tc.rule {
					t.Errorf("diagnostic from unexpected rule: %s", d)
				}
				got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)]++
			}
			for loc := range want {
				if got[loc] == 0 {
					t.Errorf("expected a %s finding at %s, got none", tc.rule, loc)
				}
			}
			for loc, n := range got {
				if !want[loc] {
					t.Errorf("unexpected %s finding at %s", tc.rule, loc)
				} else if n > 1 {
					t.Errorf("%d duplicate %s findings at %s", n, tc.rule, loc)
				}
			}
		})
	}
}

// TestOldRulesMissInterproceduralFixtures is the acceptance proof for the
// engine: every interprocedural fixture contains real violations (asserted
// by TestInterproceduralFixtures), yet the entire pre-engine per-package
// suite reports nothing on them. The cross-function bugs are invisible to
// a scan that sees one function body at a time.
func TestOldRulesMissInterproceduralFixtures(t *testing.T) {
	root := moduleRoot(t)
	perPackage, err := Select("determinism,mapiter,floateq,errdrop,nopanic,nohttpglobals,noadhoclog")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range interprocCases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", tc.rule)
			pkg, err := NewLoader(root).LoadDir(dir, tc.asPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			for _, d := range RunAnalyzers(pkg, perPackage) {
				t.Errorf("per-package rule caught what only the engine should need to: %s", d)
			}
		})
	}
}

// TestCallGraphEdges asserts the three edge kinds the graph promises:
// static calls, method values, and calls made from inside a closure
// (attributed to the enclosing declared function).
func TestCallGraphEdges(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "callgraph")
	pkg, err := NewLoader(root).LoadDir(dir, ModulePath+"/internal/cgfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	g := NewCallGraph()
	g.AddPackage(pkg)

	byName := map[string]bool{}
	for _, fn := range g.Functions() {
		byName[fn.Name()] = true
	}
	for _, name := range []string{"Static", "MethodValue", "Closure", "target", "M"} {
		if !byName[name] {
			t.Fatalf("declared function %s missing from graph (have %v)", name, byName)
		}
	}
	callees := func(caller string) map[string]bool {
		for _, fn := range g.Functions() {
			if fn.Name() == caller {
				out := map[string]bool{}
				for _, c := range g.Callees(fn) {
					out[c.Name()] = true
				}
				return out
			}
		}
		t.Fatalf("no function %s", caller)
		return nil
	}
	if c := callees("Static"); !c["target"] {
		t.Errorf("Static callees = %v, want target (static call edge)", c)
	}
	if c := callees("MethodValue"); !c["M"] {
		t.Errorf("MethodValue callees = %v, want M (method value edge)", c)
	}
	if c := callees("Closure"); !c["target"] {
		t.Errorf("Closure callees = %v, want target (closure-attributed edge)", c)
	}
	for _, fn := range g.Functions() {
		if fn.Name() != "Static" {
			continue
		}
		reach := map[string]bool{}
		for _, r := range g.Reachable(fn) {
			reach[r.Name()] = true
		}
		if !reach["Static"] || !reach["target"] {
			t.Errorf("Reachable(Static) = %v, want itself and target", reach)
		}
	}
}

// TestFactsDependencyOrder asserts the facts-store invariant: every
// module-internal import of a package has its facts computed before the
// package itself — even when the engine is handed packages in reverse.
func TestFactsDependencyOrder(t *testing.T) {
	root := moduleRoot(t)
	loader := NewLoader(root)
	if _, err := loader.Load(ModulePath + "/internal/serve"); err != nil {
		t.Fatal(err)
	}
	pkgs := loader.Loaded()
	if len(pkgs) < 3 {
		t.Fatalf("internal/serve pulled in only %d packages; the invariant needs a real dependency chain", len(pkgs))
	}
	reversed := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		reversed[len(pkgs)-1-i] = p
	}
	for name, input := range map[string][]*Package{"loader-order": pkgs, "reversed": reversed} {
		engine := NewEngine(input)
		index := map[string]int{}
		for i, path := range engine.Facts.Order {
			index[path] = i
		}
		for _, pkg := range engine.Pkgs {
			for _, imp := range pkg.Types.Imports() {
				depIdx, inModule := index[imp.Path()]
				if !inModule {
					continue
				}
				if depIdx >= index[pkg.Path] {
					t.Errorf("%s: facts for %s computed at %d, after importer %s at %d",
						name, imp.Path(), depIdx, pkg.Path, index[pkg.Path])
				}
			}
		}
	}
}

// TestDiagnosticOrderDeterministic is the regression test for the ordering
// bug: diagnostics from different rules at the same position used to land
// in whatever order the analyzers ran. Any permutation of the same
// findings must sort to the same sequence, with rule then message breaking
// position ties.
func TestDiagnosticOrderDeterministic(t *testing.T) {
	base := []Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 1}, Rule: "mapiter", Message: "m1"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 1}, Rule: "determinism", Message: "m2"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 1}, Rule: "determinism", Message: "m1"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 9}, Rule: "taintdet", Message: "m3"},
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Rule: "allocbudget", Message: "m4"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Rule: "goroleak", Message: "m5"},
	}
	rng := rand.New(rand.NewSource(1))
	var reference []Diagnostic
	for trial := 0; trial < 20; trial++ {
		perm := make([]Diagnostic, len(base))
		for i, j := range rng.Perm(len(base)) {
			perm[i] = base[j]
		}
		sortDiagnostics(perm)
		if trial == 0 {
			reference = perm
			for i := 1; i < len(perm); i++ {
				a, b := perm[i-1], perm[i]
				samePos := a.Pos == b.Pos
				if samePos && a.Rule > b.Rule {
					t.Fatalf("rule tiebreak violated: %s before %s at %v", a.Rule, b.Rule, a.Pos)
				}
			}
			continue
		}
		for i := range perm {
			if perm[i] != reference[i] {
				t.Fatalf("permutation %d sorted differently at index %d: %v vs %v", trial, i, perm[i], reference[i])
			}
		}
	}
}

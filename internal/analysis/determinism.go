package analysis

import (
	"go/ast"
	"go/types"
)

// determinismScope lists the algorithm packages whose output feeds the
// paper's σ-frequency counts and figures: any randomness here must come
// from an injected, explicitly seeded *rand.Rand (the pattern in
// internal/motif/randesu.go), and wall-clock reads are forbidden outright.
var determinismScope = []string{
	"internal/graph",
	"internal/motif",
	"internal/dimotif",
	"internal/cluster",
	"internal/label",
	"internal/predict",
	"internal/randnet",
}

// randConstructors are the only math/rand top-level functions the
// algorithm packages may touch: they build the injected generator rather
// than consuming the ambient global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Determinism returns the analyzer forbidding global math/rand use and
// time.Now in the algorithm packages.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid global math/rand and time.Now in algorithm packages; inject a seeded *rand.Rand",
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	if !inScope(pass, determinismScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions matter here; methods on an
			// injected *rand.Rand (rng.Intn, rng.Perm, ...) are the
			// sanctioned pattern.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s shares process-wide state and breaks run-to-run reproducibility; use an injected *rand.Rand built from an explicit seed", fn.Name())
				}
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now makes algorithm output depend on the wall clock; thread timing through the caller if it is needed at all")
				}
			}
			return true
		})
	}
}

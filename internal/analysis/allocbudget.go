package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocbudget enforces "// alloc-budget: N" annotations statically: the
// annotated function and everything statically reachable from it through
// the module call graph may together contain at most N definite
// allocation sites. The serve hot path is gated dynamically at 0
// allocs/op by TestInstrumentedPredictAllocs; this rule is the static
// twin, so a fmt.Sprintf or a fresh closure slipped three calls deep into
// the predict path fails `make vet` before any benchmark runs.
//
// What counts as a definite allocation site is deliberately the set of
// constructs that allocate on *every* execution: make/new, map and slice
// composite literals, &T{} literals, calls into known-allocating standard
// library functions (fmt, encoding/json, errors, the string-returning
// strconv/strings/bytes helpers, sort's interface/closure entry points),
// non-constant string concatenation, string<->[]byte/[]rune conversions,
// variable-capturing closures, boxing a non-pointer-shaped value into an
// interface, and launching a goroutine. append is *not* a site: appending
// into a caller-owned pooled buffer is the amortized-zero idiom the hot
// path is built on, and the dynamic gate verifies the amortization.
// Standard-library calls outside the denylist and dynamic (interface)
// calls are trusted — the benchmark gate backs that trust.
func AllocBudget() *Analyzer {
	return &Analyzer{
		Name:      "allocbudget",
		Doc:       "enforce // alloc-budget: N annotations transitively through the call graph",
		RunModule: runAllocBudget,
	}
}

func runAllocBudget(mp *ModulePass) {
	e := mp.Engine
	for _, fn := range e.Graph.Functions() {
		fact := e.Facts.Fact(fn)
		if fact == nil || fact.Budget < 0 || !mp.InTarget(fact.Pkg) {
			continue
		}
		var sites []AllocSite
		var via []string
		for _, callee := range e.Graph.Reachable(fn) {
			cf := e.Facts.Fact(callee)
			if cf == nil {
				continue // standard library or undeclared: trusted
			}
			if len(cf.Allocs) > 0 && callee != fn {
				via = append(via, callee.Name())
			}
			sites = append(sites, cf.Allocs...)
		}
		if len(sites) <= fact.Budget {
			continue
		}
		first := sites[0]
		pos := first.Pkg.Fset.Position(first.Pos)
		detail := fmt.Sprintf("%s at %s:%d", first.What, pos.Filename, pos.Line)
		if len(via) > 0 {
			detail += " (reached via " + strings.Join(via, ", ") + ")"
		}
		mp.Reportf(fact.Pkg, fact.Decl.Name.Pos(),
			"%s declares alloc-budget %d but reaches %d definite allocation site(s); first: %s",
			fn.Name(), fact.Budget, len(sites), detail)
	}
}

// allocDenylist names standard-library functions that always allocate.
// Package fmt and encoding/json are denied wholesale.
var allocDenylist = map[string]map[string]bool{
	"errors":  {"New": true, "Join": true},
	"strconv": {"FormatInt": true, "FormatUint": true, "FormatFloat": true, "FormatBool": true, "Itoa": true, "Quote": true, "QuoteToASCII": true, "QuoteRune": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "ToUpper": true, "ToLower": true, "Split": true, "SplitN": true, "Fields": true, "Map": true, "Title": true, "Clone": true},
	"bytes":   {"Join": true, "Repeat": true, "Split": true, "SplitN": true, "Fields": true, "Clone": true},
	"sort":    {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
}

// collectAllocSites records every definite allocation site in one
// function body, nested function literals included (their bodies run
// under the same budget when the closure is reachable).
func collectAllocSites(pkg *Package, fd *ast.FuncDecl) []AllocSite {
	var sites []AllocSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, AllocSite{Pos: pos, Pkg: pkg, What: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "goroutine launch")
		case *ast.FuncLit:
			if capturesVariables(pkg, n) {
				add(n.Pos(), "variable-capturing closure")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstantString(pkg, n) {
				add(n.Pos(), "string concatenation")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "heap composite literal (&T{})")
				}
			}
		case *ast.CompositeLit:
			switch pkg.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal")
			case *types.Map:
				add(n.Pos(), "map literal")
			}
		case *ast.CallExpr:
			checkAllocCall(pkg, n, add)
		}
		return true
	})
	return sites
}

func checkAllocCall(pkg *Package, call *ast.CallExpr, add func(token.Pos, string)) {
	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(pkg, tv.Type, call.Args[0]) {
			add(call.Pos(), "string/slice conversion")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make")
			case "new":
				add(call.Pos(), "new")
			}
			return
		}
	}
	fn := CalleesAt(pkg.Info, call)
	if fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "fmt" || path == "encoding/json" || path == "regexp" {
			add(call.Pos(), path+"."+fn.Name()+" call")
		} else if deny, ok := allocDenylist[path]; ok && deny[fn.Name()] {
			add(call.Pos(), path+"."+fn.Name()+" call")
		}
	}
	// Boxing: a non-pointer-shaped concrete value passed where an
	// interface is expected heap-allocates the value.
	if sig := callSignature(pkg, call); sig != nil {
		for i, arg := range call.Args {
			pt := paramTypeAt(sig, i)
			if pt == nil {
				continue
			}
			if _, ok := pt.Underlying().(*types.Interface); !ok {
				continue
			}
			tv, ok := pkg.Info.Types[arg]
			if !ok || tv.Value != nil || tv.IsNil() {
				continue // constants and nil are statically materialized
			}
			if _, ok := tv.Type.Underlying().(*types.Interface); ok {
				continue // already an interface: no re-boxing
			}
			if !pointerShaped(tv.Type) {
				add(arg.Pos(), "interface boxing of "+tv.Type.String())
			}
		}
	}
}

// convAllocates reports whether converting operand to target copies the
// underlying bytes: string([]byte), string([]rune), []byte(string), and
// []rune(string) all allocate a fresh backing array. Every other
// conversion (numeric, named-type, pointer) is a free reinterpretation.
func convAllocates(pkg *Package, target types.Type, operand ast.Expr) bool {
	src := pkg.Info.TypeOf(operand)
	if src == nil {
		return false
	}
	if tv, ok := pkg.Info.Types[operand]; ok && tv.Value != nil {
		return false // constant operand: materialized in rodata
	}
	return (isStringType(target) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(target) && isStringType(src))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Kind() == types.Uint8 || basic.Kind() == types.Int32
}

func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the declared type of argument slot i, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		t := params.At(params.Len() - 1).Type()
		if s, ok := t.(*types.Slice); ok {
			return s.Elem()
		}
		return t
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the value directly in the interface word (no heap allocation).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isNonConstantString(pkg *Package, expr *ast.BinaryExpr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// capturesVariables reports whether the literal references a variable
// declared outside itself — the capture that forces the closure (and the
// captured variable) onto the heap.
func capturesVariables(pkg *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures, and neither is
		// anything declared inside the literal itself.
		if v.Parent() == pkg.Types.Scope() || v.Pkg() != pkg.Types {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return !captured
	})
	return captured
}

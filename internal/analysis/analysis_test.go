package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases pairs each analyzer with the import path its fixture is
// loaded under — a path inside the rule's scope, so the scoped analyzers
// see the fixture as if it lived in the real package.
var fixtureCases = []struct {
	rule   string
	asPath string
}{
	{"determinism", ModulePath + "/internal/motif"},
	{"mapiter", ModulePath + "/internal/label"},
	{"floateq", ModulePath + "/internal/eval"},
	{"errdrop", ModulePath + "/cmd/gostats"},
	{"nopanic", ModulePath + "/internal/graph"},
	{"nohttpglobals", ModulePath + "/internal/serve"},
	{"noadhoclog", ModulePath + "/internal/label"},
}

// TestFixtures runs each analyzer over its testdata package and asserts
// that the reported positions are exactly the lines carrying a "// want"
// marker (bad.go) and nothing else (good.go).
func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, tc := range fixtureCases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", tc.rule)
			pkg, err := NewLoader(root).LoadDir(dir, tc.asPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			analyzers, err := Select(tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			want := wantMarkers(t, dir)
			got := map[string]int{}
			for _, d := range RunAnalyzers(pkg, analyzers) {
				if d.Rule != tc.rule {
					t.Errorf("diagnostic from unexpected rule: %s", d)
				}
				got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)]++
			}
			for loc := range want {
				if got[loc] == 0 {
					t.Errorf("expected a %s finding at %s, got none", tc.rule, loc)
				}
			}
			for loc, n := range got {
				if !want[loc] {
					t.Errorf("unexpected %s finding at %s", tc.rule, loc)
				} else if n > 1 {
					t.Errorf("%d duplicate %s findings at %s", n, tc.rule, loc)
				}
			}
		})
	}
}

// TestScopedAnalyzersSilentOutsideScope loads known-bad fixtures under
// paths outside each rule's scope and asserts no findings: the analyzers
// must not leak beyond the packages the determinism contract names.
func TestScopedAnalyzersSilentOutsideScope(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		rule   string
		asPath string
	}{
		{"determinism", ModulePath + "/internal/ontology"},
		{"mapiter", ModulePath + "/internal/motif"},
		{"floateq", ModulePath + "/internal/graph"},
		{"nopanic", ModulePath + "/cmd/motiffind"},
		{"nohttpglobals", ModulePath + "/internal/ontology"},
		// noadhoclog: commands own the process streams, and internal/obs is
		// the sanctioned sink itself.
		{"noadhoclog", ModulePath + "/cmd/lamod"},
		{"noadhoclog", ModulePath + "/internal/obs"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", tc.rule)
			pkg, err := NewLoader(root).LoadDir(dir, tc.asPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			analyzers, err := Select(tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range RunAnalyzers(pkg, analyzers) {
				t.Errorf("out-of-scope finding: %s", d)
			}
		})
	}
}

// TestRepoIsClean is the self-hosting gate in miniature: the full suite
// over the module's own packages must report nothing, mirroring the
// `make lint` / CI invocation of cmd/lamovet.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	loader := NewLoader(root)
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("expanded only %d packages: %v", len(paths), paths)
	}
	for _, path := range paths {
		if _, err := loader.Load(path); err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
	}
	engine := NewEngine(loader.Loaded())
	for _, d := range engine.Run(All(), paths, 0) {
		t.Errorf("%s", d)
	}
}

func TestSelect(t *testing.T) {
	if as, err := Select(""); err != nil || len(as) != 11 {
		t.Fatalf("Select(\"\") = %d analyzers, err %v", len(as), err)
	}
	as, err := Select("floateq, nopanic")
	if err != nil || len(as) != 2 || as[0].Name != "floateq" || as[1].Name != "nopanic" {
		t.Fatalf("Select subset = %v, err %v", as, err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select accepted an unknown rule")
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// wantMarkers scans the fixture directory for lines ending in a "// want"
// marker and returns them as a "file:line" set.
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want") {
				want[fmt.Sprintf("%s:%d", e.Name(), line)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(want) == 0 {
		t.Fatalf("no // want markers under %s", dir)
	}
	return want
}

package analysis

import (
	"go/token"
	"go/types"
)

// taintdet is the interprocedural determinism gate: a value tainted by
// map-iteration order, ambient randomness, or the wall clock may not
// reach a serialization sink — the artifact binary encoder, the serve
// JSON encoder, a BENCH_*.json write, a "// lamovet:sink" function, or a
// "// lamovet:serialized" struct field. The per-function mapiter and
// determinism rules see only one body at a time; this rule follows the
// taint through helper calls and returns using the summaries the engine
// computed bottom-up (taint.go), so `keys := collect(m); emit(keys)` is
// caught even when collect lives two packages away.
//
// Sorting repairs order taint: sort.*/slices.* over a value clears its
// TaintMapIter bit, which is exactly the collect-then-sort idiom the
// mapiter rule sanctions. Randomness and clock taint survive sorting —
// those corrupt the values, not just their order.
func TaintDet() *Analyzer {
	return &Analyzer{
		Name:      "taintdet",
		Doc:       "forbid map-iteration/randomness/clock-tainted values from reaching serialization sinks, interprocedurally",
		RunModule: runTaintDet,
	}
}

func runTaintDet(mp *ModulePass) {
	e := mp.Engine
	for _, pkg := range mp.TargetPackages() {
		for _, fn := range e.Graph.Functions() {
			fact := e.Facts.Fact(fn)
			if fact == nil || fact.Pkg != pkg {
				continue
			}
			reported := map[token.Pos]bool{}
			sc := &taintScan{
				pkg:   pkg,
				facts: e.Facts,
				vars:  map[types.Object]taintVal{},
			}
			// First pass settles loop-carried taint silently; the second
			// pass re-propagates and reports sink hits against the settled
			// state.
			sc.walk(fact.Decl.Body)
			sc.onSink = func(pos token.Pos, t Taint, sink string) {
				if reported[pos] {
					return
				}
				reported[pos] = true
				mp.Reportf(pkg, pos,
					"value tainted by %s flows into %s; serialized output must be reproducible (sort the order, inject the randomness, drop the clock)",
					t.describe(), sink)
			}
			sc.walk(fact.Decl.Body)
		}
	}
}

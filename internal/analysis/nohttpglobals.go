package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// httpGlobalVars are net/http's process-global mutable singletons. A daemon
// registering routes on DefaultServeMux or issuing requests through
// DefaultClient couples itself to every other package in the process
// (including test harnesses and future imports that also touch the
// globals), and DefaultClient additionally has no timeout.
var httpGlobalVars = map[string]string{
	"DefaultServeMux":  "route on an explicitly constructed http.NewServeMux",
	"DefaultClient":    "construct an http.Client with an explicit Timeout",
	"DefaultTransport": "construct an http.Transport (or client) explicitly",
}

// httpGlobalFuncs are the net/http package-level helpers that silently
// consume one of the globals above.
var httpGlobalFuncs = map[string]string{
	"Handle":            "it registers on DefaultServeMux",
	"HandleFunc":        "it registers on DefaultServeMux",
	"ListenAndServe":    "it serves DefaultServeMux when handler is nil",
	"ListenAndServeTLS": "it serves DefaultServeMux when handler is nil",
	"Get":               "it uses DefaultClient, which has no timeout",
	"Head":              "it uses DefaultClient, which has no timeout",
	"Post":              "it uses DefaultClient, which has no timeout",
	"PostForm":          "it uses DefaultClient, which has no timeout",
}

// NoHTTPGlobals returns the analyzer forbidding net/http's process-global
// mux/client state in the serving package and the command binaries.
func NoHTTPGlobals() *Analyzer {
	return &Analyzer{
		Name: "nohttpglobals",
		Doc:  "forbid http.DefaultServeMux/DefaultClient (and helpers using them) in internal/{serve,fleet} and cmd/",
		Run:  runNoHTTPGlobals,
	}
}

func runNoHTTPGlobals(pass *Pass) {
	rel, ok := relPath(pass.Path)
	if !ok {
		return
	}
	if rel != "internal/serve" && rel != "internal/fleet" && rel != "cmd" && !strings.HasPrefix(rel, "cmd/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch obj := pass.Info.Uses[sel.Sel].(type) {
			case *types.Var:
				if fromNetHTTP(obj) {
					if fix, bad := httpGlobalVars[obj.Name()]; bad {
						pass.Reportf(sel.Pos(),
							"http.%s is process-global mutable state; %s", obj.Name(), fix)
					}
				}
			case *types.Func:
				// Only package-level functions: methods on an explicitly
				// constructed client or server are the sanctioned pattern.
				if fromNetHTTP(obj) && obj.Type().(*types.Signature).Recv() == nil {
					if why, bad := httpGlobalFuncs[obj.Name()]; bad {
						pass.Reportf(sel.Pos(),
							"http.%s touches process-global state (%s); use an explicit ServeMux/Client", obj.Name(), why)
					}
				}
			}
			return true
		})
	}
}

func fromNetHTTP(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

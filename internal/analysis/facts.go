package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file is the package-level facts store of the interprocedural
// engine (DESIGN.md §12). Facts are computed once per declared function,
// package by package in dependency order (imports before importers, which
// the loader's recursive type-checking already guarantees and NewEngine
// re-verifies), so a fact may consult the facts of everything its package
// imports. Rules then read the store; they never mutate it.

// AllocSite is one construct that definitely allocates on every execution:
// make/new, an escaping composite literal, fmt and friends, non-constant
// string concatenation, a string/[]byte/[]rune conversion, a capturing
// closure, an interface boxing of a multi-word value, or launching a
// goroutine. Amortized-zero constructs — append into caller-owned pooled
// buffers — are deliberately not alloc sites: the static gate trusts the
// pooling idiom and the dynamic benchmark gate (make alloc) verifies it.
type AllocSite struct {
	Pos  token.Pos
	Pkg  *Package // package whose FileSet resolves Pos
	What string
}

// LockAcq is one lock acquisition: Lock or RLock on an identifiable
// sync.Mutex / sync.RWMutex. ID names the lock by declaration site
// ("pkg.Type.field" or "pkg.var"), so every instance of a sharded lock
// shares one ID — lock *classes*, not lock objects, which is what an
// order discipline is about.
type LockAcq struct {
	ID  string
	Pos token.Pos
}

// LockPair records that the lock class Held was held at a point where
// Acquired was taken (directly) or where a function that transitively
// acquires it was called. Inconsistent ordering shows up as both (A,B)
// and (B,A) existing module-wide.
type LockPair struct {
	Held     string
	Acquired string
	Pos      token.Pos // position of the inner acquisition or the call
}

// heldCall records a static call made while holding a lock class; the
// engine expands it against the callee's transitive acquisitions after
// every package's facts exist.
type heldCall struct {
	Held   string
	Callee *types.Func
	Pos    token.Pos
}

// FuncFact is everything the interprocedural rules know about one
// declared function.
type FuncFact struct {
	Pkg  *Package
	Decl *ast.FuncDecl

	// Budget is the parsed "// alloc-budget: N" doc-comment annotation,
	// or -1 when the function carries none.
	Budget int
	// Allocs are the definite allocation sites in the body.
	Allocs []AllocSite
	// Joins reports whether the body itself performs a join-capable
	// operation: a channel send/receive/close, a select, or a
	// sync.WaitGroup Done/Wait. goroleak considers a goroutine accounted
	// for if its body reaches one of these.
	Joins bool
	// Acquires are the lock classes the body takes directly.
	Acquires []LockAcq
	// Pairs are the intraprocedural held→acquired orderings.
	Pairs []LockPair
	// heldCalls are calls made under a held lock, expanded by the engine.
	heldCalls []heldCall
	// Taint is the function's taint summary (see taint.go).
	Taint TaintSummary
}

// FactStore holds per-function facts for every analyzed package plus the
// order facts were computed in, which tests assert is a dependency order.
type FactStore struct {
	funcs map[*types.Func]*FuncFact
	// serialized marks struct fields annotated "// lamovet:serialized":
	// whatever is assigned into them ends up in an artifact or report, so
	// tainted values may not flow there.
	serialized map[*types.Var]bool
	// sinks marks functions annotated "// lamovet:sink" in their doc
	// comment; tainted arguments to them are taintdet violations.
	sinks map[*types.Func]bool
	// Order lists package import paths in fact-computation order; every
	// module-internal import of a package appears before the package.
	Order []string
}

// Fact returns the facts for a declared function, or nil for functions
// outside the analyzed packages.
func (s *FactStore) Fact(fn *types.Func) *FuncFact { return s.funcs[fn] }

// newFactStore computes syntactic facts (allocation sites, joins, lock
// events, budgets) for the packages in order. Taint summaries are
// computed separately afterwards (engine.go) because they need the call
// graph and a fixpoint.
func newFactStore(pkgs []*Package, g *CallGraph) *FactStore {
	s := &FactStore{
		funcs:      map[*types.Func]*FuncFact{},
		serialized: map[*types.Var]bool{},
		sinks:      map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		s.addPackage(pkg)
		s.Order = append(s.Order, pkg.Path)
	}
	return s
}

func (s *FactStore) addPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				s.addSerializedFields(pkg, decl)
			case *ast.FuncDecl:
				fd := decl
				if fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fact := &FuncFact{
					Pkg:    pkg,
					Decl:   fd,
					Budget: parseAllocBudget(fd.Doc),
				}
				fact.Allocs = collectAllocSites(pkg, fd)
				fact.Joins = hasJoinOps(pkg, fd.Body)
				collectLockFacts(pkg, fd.Body, fact)
				s.funcs[fn] = fact
				if hasMarker(fd.Doc, "lamovet:sink") {
					s.sinks[fn] = true
				}
			}
		}
	}
}

// addSerializedFields records struct fields carrying a
// "// lamovet:serialized" doc or line comment.
func (s *FactStore) addSerializedFields(pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !hasMarker(field.Doc, "lamovet:serialized") && !hasMarker(field.Comment, "lamovet:serialized") {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					s.serialized[v] = true
				}
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// sinkName classifies a call as a taint sink. Sinks are structural — the
// artifact binary encoder, the serve JSON encoder, and BENCH_*.json
// writes — plus anything annotated "// lamovet:sink". The name is used
// in diagnostics.
func (s *FactStore) sinkName(fn *types.Func, call *ast.CallExpr, pkg *Package) (string, bool) {
	if s.sinks[fn] {
		return "sink " + fn.Name(), true
	}
	fpkg := fn.Pkg()
	if fpkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fpkg.Path() {
	case ModulePath + "/internal/artifact":
		if sig != nil && sig.Recv() != nil {
			if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok && named.Obj().Name() == "enc" {
				return "artifact encoder " + fn.Name(), true
			}
		}
		if strings.HasPrefix(fn.Name(), "Encode") || strings.HasPrefix(fn.Name(), "encode") {
			return "artifact " + fn.Name(), true
		}
	case ModulePath + "/internal/serve":
		if strings.HasPrefix(fn.Name(), "appendJSON") || fn.Name() == "appendPredictResponse" {
			return "serve JSON encoder " + fn.Name(), true
		}
	case "os":
		if fn.Name() == "WriteFile" || fn.Name() == "Create" {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok &&
					lit.Kind == token.STRING && strings.Contains(lit.Value, "BENCH") {
					return "benchmark trajectory file", true
				}
			}
		}
	}
	return "", false
}

// parseAllocBudget reads a "// alloc-budget: N" line from a function's doc
// comment. N bounds the number of *static* definite-allocation sites
// reachable through the call graph (0 = none). Returns -1 without the
// annotation.
func parseAllocBudget(doc *ast.CommentGroup) int {
	if doc == nil {
		return -1
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "alloc-budget:")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 0 {
			return -1
		}
		return n
	}
	return -1
}

// hasJoinOps reports whether the body contains a channel operation, a
// select, or a WaitGroup Done/Wait — the constructs a goroutine can be
// joined through.
func hasJoinOps(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if fn := CalleesAt(pkg.Info, n); fn != nil && isWaitGroupMethod(fn, "Done", "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(fn *types.Func, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// lockMethod classifies a call as a mutex acquisition or release on a
// nameable lock class and returns its ID.
func lockMethod(pkg *Package, call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn := CalleesAt(pkg.Info, call)
	if fn == nil {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false, false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false, false
	}
	id = lockID(pkg, sel.X)
	if id == "" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return id, true, false
	case "Unlock", "RUnlock":
		return id, false, true
	}
	return "", false, false
}

// lockID names the lock class of a mutex-valued expression by declaration
// site: a struct field becomes "pkg.Type.field" (every shard of a sharded
// cache shares the class), a package-level or local variable becomes
// "pkg.var". Unnameable expressions yield "".
func lockID(pkg *Package, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			recv := derefType(sel.Recv())
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + field.Name()
			}
		}
		// Package-qualified variable (pkg.mu).
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// collectLockFacts walks the body in source order tracking the set of
// held lock classes: acquisitions pair with everything currently held,
// and calls made under a lock are recorded for interprocedural expansion.
// The walk is a linear over-approximation — branches both execute, a
// deferred unlock holds to function end — which is the usual static-
// lock-order compromise: it may pair locks a dynamic path never nests,
// but never misses a nesting that is syntactically there.
func collectLockFacts(pkg *Package, body *ast.BlockStmt, fact *FuncFact) {
	held := []string{}
	release := func(id string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == id {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if _, _, rel := lockMethod(pkg, n.Call); rel {
				return false // deferred unlock: the lock is held to function end
			}
		case *ast.CallExpr:
			if id, acq, rel := lockMethod(pkg, n); acq || rel {
				if acq {
					fact.Acquires = append(fact.Acquires, LockAcq{ID: id, Pos: n.Pos()})
					for _, h := range held {
						if h != id {
							fact.Pairs = append(fact.Pairs, LockPair{Held: h, Acquired: id, Pos: n.Pos()})
						}
					}
					held = append(held, id)
				} else {
					release(id)
				}
				return false
			}
			if len(held) > 0 {
				if fn := CalleesAt(pkg.Info, n); fn != nil {
					for _, h := range held {
						fact.heldCalls = append(fact.heldCalls, heldCall{Held: h, Callee: fn, Pos: n.Pos()})
					}
				}
			}
		}
		return true
	})
}

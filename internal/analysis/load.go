package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of this module.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module from source. It
// replaces golang.org/x/tools/go/packages so the repo stays free of module
// dependencies: module-internal imports are resolved recursively from disk,
// and standard-library imports fall back to go/importer's source importer
// (which compiles nothing and needs only GOROOT sources).
type Loader struct {
	Fset *token.FileSet
	Root string // module root (directory containing go.mod)

	std  types.ImporterFrom
	pkgs map[string]*Package
	// order records packages in completion order: a package is appended
	// only after every module-internal import it triggered has already
	// been appended, so order is a valid dependency order (imports precede
	// importers). Engine construction relies on this invariant.
	order []*Package
	// loading guards against import cycles, which go/types would otherwise
	// chase forever through the recursive importer.
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Root:    root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves package patterns relative to the module root. Each
// pattern is either an import path / relative directory, or a "..." prefix
// walk ("./...", "./internal/..."). Directories named testdata and hidden
// directories are skipped, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(dir string) {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		path := ModulePath
		if rel != "." {
			path = ModulePath + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] && l.hasGoFiles(dir) {
			seen[path] = true
			paths = append(paths, path)
		}
	}
	for _, pat := range patterns {
		dir, walk := strings.CutSuffix(pat, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "." {
			dir = l.Root
		} else if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, dir)
		}
		if !walk {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expand %q: %w", pat, err)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load returns the type-checked package for a module import path, loading
// and caching it (and its module-internal dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel, ok := relPath(path)
	if !ok {
		return nil, fmt.Errorf("%s is outside module %s", path, ModulePath)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	pkg, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// Loaded returns every package this loader has type-checked, in
// dependency order (imports precede importers). Fixture packages loaded
// via LoadDir are not included; append them explicitly when building an
// Engine over fixtures.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, len(l.order))
	copy(out, l.order)
	return out
}

// LoadDir type-checks a single directory outside the normal module layout
// (analyzer test fixtures) under an assumed import path, so scoped rules
// see the fixture as if it lived in the real package.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.check(asPath, dir)
}

func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter routes module-internal imports back through the loader and
// everything else to the standard-library source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := relPath(path); ok {
		pkg, err := (*Loader)(im).Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.ImportFrom(path, dir, mode)
}

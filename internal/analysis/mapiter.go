package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapIterScope lists the packages whose output is serialized or canonical:
// graph canonicalization, the motif dictionary and DOT writers, dataset
// round-tripping, and the experiment result writers. Anywhere else a
// nondeterministic map order is at worst a different-but-equivalent result;
// here it flips bytes in files the determinism contract says are stable.
var mapIterScope = []string{
	"internal/graph",
	"internal/label",
	"internal/dataset",
	"internal/experiments",
}

// emitMethods are writer/builder methods whose call inside a map-range
// body makes the emitted order depend on map iteration.
var emitMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// MapIter returns the analyzer flagging range-over-map loops that emit
// into slices, builders, or writers without a subsequent sort.
func MapIter() *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc:  "flag range-over-map emitting to slices/builders/writers without a subsequent sort.* call",
		Run:  runMapIter,
	}
}

func runMapIter(pass *Pass) {
	if !inScope(pass, mapIterScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

// checkMapRanges reports each range-over-map in one function body whose
// loop body emits into an accumulator, unless a sort.* call follows the
// loop later in the same function (the collect-then-sort idiom, e.g.
// canonSearch in internal/graph/canon.go).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	var sortCalls []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, ok := pass.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
				ranges = append(ranges, n)
			}
		case *ast.SelectorExpr:
			if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
				sortCalls = append(sortCalls, n.Pos())
			}
		}
		return true
	})
	for _, rs := range ranges {
		if !emitsInOrder(pass, rs.Body) {
			continue
		}
		sorted := false
		for _, p := range sortCalls {
			if p > rs.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(rs.Pos(),
				"range over map emits elements in nondeterministic order; sort after collecting (sort.*) or iterate over sorted keys")
		}
	}
}

// emitsInOrder reports whether the loop body appends to a slice, writes
// through a builder/writer method, or formats into a writer — operations
// whose result order mirrors the map iteration order. Index assignments
// (out[k] = v) are excluded: the slot is derived from the key, so the
// final value is order-independent.
func emitsInOrder(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				found = true
			}
		case *ast.SelectorExpr:
			if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
					found = true
				}
				if fn.Type().(*types.Signature).Recv() != nil && emitMethods[fn.Name()] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

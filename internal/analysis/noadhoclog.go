package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoAdhocLog returns the analyzer forbidding ad-hoc output — fmt.Print*,
// log.Print* through the process-global logger, and the println/print
// builtins — in library packages. A library that writes to process stdout
// or stderr on its own bypasses the structured logging contract: its lines
// carry no level, no trace ID, and no machine-parseable shape, and they
// interleave unpredictably with the access-log stream. Libraries return
// data (or errors) and log through an injected *obs.Logger; only the
// command binaries own the process streams. internal/obs itself is exempt
// — it is the sink the rule points everyone else at.
func NoAdhocLog() *Analyzer {
	return &Analyzer{
		Name: "noadhoclog",
		Doc:  "forbid fmt.Print*/log.Print*/println in internal/ packages outside internal/obs",
		Run:  runNoAdhocLog,
	}
}

func runNoAdhocLog(pass *Pass) {
	rel, ok := relPath(pass.Path)
	if !ok || !strings.HasPrefix(rel, "internal/") {
		return
	}
	if rel == "internal/obs" || strings.HasPrefix(rel, "internal/obs/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				// Only package-level fmt/log functions: Fprintf to an
				// injected writer and methods on an explicitly constructed
				// log.New logger are the sanctioned patterns.
				obj, ok := pass.Info.Uses[fun.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Type().(*types.Signature).Recv() != nil {
					return true
				}
				name := obj.Name()
				if name != "Print" && name != "Printf" && name != "Println" {
					return true
				}
				switch obj.Pkg().Path() {
				case "fmt":
					pass.Reportf(call.Pos(),
						"fmt.%s writes to process stdout from a library package; return data or log through an injected *obs.Logger", name)
				case "log":
					pass.Reportf(call.Pos(),
						"log.%s writes through the process-global logger; inject an *obs.Logger (or a log.New on an explicit writer)", name)
				}
			case *ast.Ident:
				if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok &&
					(b.Name() == "println" || b.Name() == "print") {
					pass.Reportf(call.Pos(),
						"builtin %s is unstructured debug output to stderr; delete it or log through an injected *obs.Logger", b.Name())
				}
			}
			return true
		})
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderScope lists the concurrency-bearing packages (the RACEPKGS set
// plus the commands that drive them): the par worker pool, the sharded
// Lin cache and parallel labeler, the heap agglomerator, the chunked
// census, the serving stack over the LRU cache and flight group, the
// artifact codec, and the obs ring/histograms.
var lockOrderScope = []string{
	"internal/par",
	"internal/label",
	"internal/cluster",
	"internal/motif",
	"internal/randnet",
	"internal/serve",
	"internal/artifact",
	"internal/obs",
}

// LockOrder returns the analyzer detecting (a) inconsistent lock-class
// acquisition order — lock class A taken while holding B in one place and
// B taken while holding A in another, directly or through calls, the
// classic ABBA deadlock shape — and (b) mixed atomic/plain access to one
// struct field: a field updated through sync/atomic somewhere must never
// be read or written plainly elsewhere, because the plain access races
// with the atomic one and the race detector only sees it on the schedule
// that loses. Lock identity is the declaration site ("pkg.Type.field"),
// so every shard of a sharded cache is one class — order discipline is
// about classes, not instances; for the same reason same-class nesting
// (shard A then shard B) is not reported, the sharding idioms here never
// nest within a class.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "detect inconsistent lock-acquisition order and mixed atomic/plain access to one field, across functions",
		RunModule: runLockOrder,
	}
}

func runLockOrder(mp *ModulePass) {
	reportLockInversions(mp)
	reportMixedAtomics(mp)
}

// pairSite is one held→acquired observation with its location.
type pairSite struct {
	pair LockPair
	pkg  *Package
}

func reportLockInversions(mp *ModulePass) {
	e := mp.Engine
	// Collect every ordered pair module-wide (facts exist for dependency
	// packages too — an inversion between a target package and a helper
	// package is still an inversion).
	byKey := map[string][]pairSite{}
	for _, fn := range e.Graph.Functions() {
		fact := e.Facts.Fact(fn)
		if fact == nil {
			continue
		}
		for _, p := range fact.Pairs {
			key := p.Held + "\x00" + p.Acquired
			byKey[key] = append(byKey[key], pairSite{pair: p, pkg: fact.Pkg})
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		held, acquired, _ := strings.Cut(key, "\x00")
		reverse := byKey[acquired+"\x00"+held]
		if len(reverse) == 0 || held >= acquired {
			continue // report each {A,B} once, from the smaller key
		}
		for _, site := range byKey[key] {
			if !inScopePkg(site.pkg, lockOrderScope) || !mp.InTarget(site.pkg) {
				continue
			}
			opp := reverse[0]
			oppPos := opp.pkg.Fset.Position(opp.pair.Pos)
			mp.Reportf(site.pkg, site.pair.Pos,
				"%s acquired while holding %s, but %s:%d acquires them in the opposite order; pick one order or the two paths deadlock under contention",
				acquired, held, oppPos.Filename, oppPos.Line)
		}
		for _, site := range reverse {
			if !inScopePkg(site.pkg, lockOrderScope) || !mp.InTarget(site.pkg) {
				continue
			}
			opp := byKey[key][0]
			oppPos := opp.pkg.Fset.Position(opp.pair.Pos)
			mp.Reportf(site.pkg, site.pair.Pos,
				"%s acquired while holding %s, but %s:%d acquires them in the opposite order; pick one order or the two paths deadlock under contention",
				held, acquired, oppPos.Filename, oppPos.Line)
		}
	}
}

// reportMixedAtomics flags plain reads/writes of struct fields that are
// elsewhere accessed through sync/atomic package functions.
func reportMixedAtomics(mp *ModulePass) {
	e := mp.Engine
	// Phase 1: find every field passed by address to a sync/atomic
	// function, module-wide, remembering one representative site.
	atomicFields := map[*types.Var]token.Position{}
	for _, pkg := range e.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := CalleesAt(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if field := addressedField(pkg, arg); field != nil {
						if _, ok := atomicFields[field]; !ok {
							atomicFields[field] = pkg.Fset.Position(arg.Pos())
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	// Phase 2: in the target scope packages, report any access to those
	// fields that is not itself an atomic-call operand.
	for _, pkg := range mp.TargetPackages() {
		if !inScopePkg(pkg, lockOrderScope) {
			continue
		}
		for _, f := range pkg.Files {
			atomicOperands := map[*ast.SelectorExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := CalleesAt(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if sel := fieldSelector(pkg, arg); sel != nil {
						atomicOperands[sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicOperands[sel] {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				if at, isAtomic := atomicFields[field]; isAtomic {
					mp.Reportf(pkg, sel.Pos(),
						"field %s is accessed atomically at %s but plainly here; mixing the two races — every access must go through sync/atomic (or migrate the field to an atomic.* type)",
						field.Name(), fmt.Sprintf("%s:%d", at.Filename, at.Line))
				}
				return true
			})
		}
	}
}

// addressedField resolves &x.f to the field variable f, or nil.
func addressedField(pkg *Package, arg ast.Expr) *types.Var {
	if sel := fieldSelector(pkg, arg); sel != nil {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// fieldSelector unwraps &x.f to the x.f selector node, or nil.
func fieldSelector(pkg *Package, arg ast.Expr) *ast.SelectorExpr {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel
}

// inScopePkg is inScope for engine packages.
func inScopePkg(pkg *Package, scoped []string) bool {
	rel, ok := relPath(pkg.Path)
	if !ok {
		return false
	}
	for _, s := range scoped {
		if rel == s {
			return true
		}
	}
	return false
}

// Package analysis implements lamovet, the project-specific static
// analysis suite guarding the determinism contract of the LaMoFinder
// pipeline (see DESIGN.md "Static analysis gates").
//
// The paper's σ-frequency counts and table/figure reproductions are only
// credible if motif enumeration, canonical labeling, and LMS scoring are
// bit-for-bit reproducible. Three failure classes silently break that:
// map-iteration nondeterminism, unseeded or ambient randomness, and float
// equality drift. A fourth — dropped errors — hides truncated writes and
// partial reads that make two "identical" runs diverge. lamovet encodes
// each as an analyzer over the type-checked AST:
//
//   - determinism: forbid global math/rand and time.Now in the algorithm
//     packages; randomness must flow through an injected *rand.Rand.
//   - mapiter: forbid range-over-map loops that emit into slices, string
//     builders, or writers without a subsequent sort.* call, in the
//     canonicalization and serialization packages.
//   - floateq: forbid ==/!= between computed float expressions in the
//     scoring packages; comparisons go through internal/floats.
//   - errdrop: forbid silently discarding an error result outside tests.
//   - nopanic: forbid panic in library packages unless the enclosing
//     function's doc comment carries an "// invariant:" line.
//   - nohttpglobals: forbid net/http's process-global mux and client
//     (DefaultServeMux, DefaultClient, and the helpers that consume them)
//     in the serving package and the command binaries.
//   - noadhoclog: forbid fmt.Print*, log.Print* (global logger), and the
//     println/print builtins in internal/ packages outside internal/obs;
//     libraries log through an injected *obs.Logger, commands own stdout.
//
// The suite is stdlib-only (go/ast, go/parser, go/token, go/types): the
// repo stays dependency-free, so the driver ships its own package loader
// (see load.go) instead of golang.org/x/tools/go/packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import path of this module; analyzers scope themselves
// to packages beneath it.
const ModulePath = "lamofinder"

// Analyzer is one named, independently toggleable rule. A rule is either
// per-package (Run: one type-checked package at a time, no cross-package
// state) or module-wide (RunModule: runs once over the Engine's facts
// store and call graph after every package is loaded). Exactly one of
// the two hooks is set.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and -rules flags.
	Name string
	// Doc is a one-line description shown by the driver's -list flag.
	Doc string
	// Run inspects the pass and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole module through the interprocedural
	// engine (facts store, call graph, taint summaries) and reports via
	// mp.Reportf.
	RunModule func(mp *ModulePass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. "lamofinder/internal/graph"
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
	rule  string
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order: the seven
// per-package rules, then the four interprocedural rules that need the
// engine (taintdet, lockorder, goroleak, allocbudget).
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		MapIter(),
		FloatEq(),
		ErrDrop(),
		NoPanic(),
		NoHTTPGlobals(),
		NoAdhocLog(),
		TaintDet(),
		LockOrder(),
		GoroLeak(),
		AllocBudget(),
	}
}

// Select returns the analyzers named in the comma-separated rules string,
// or the full suite if rules is empty.
func Select(rules string) ([]*Analyzer, error) {
	all := All()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, names(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func names(as []*Analyzer) string {
	ns := make([]string, len(as))
	for i, a := range as {
		ns[i] = a.Name
	}
	return strings.Join(ns, ", ")
}

// RunAnalyzers applies each per-package analyzer to the package and
// returns the findings in deterministic order. Module-wide analyzers
// (nil Run) are skipped; they need an Engine (see Engine.Run).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:  pkg.Fset,
			Path:  pkg.Path,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			diags: &diags,
			rule:  a.Name,
		}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics is the single ordering every consumer sees: filename,
// line, column, then rule, then message. The rule and message tiebreaks
// matter: two rules reporting the same position used to come out in
// whatever order sort.Slice's unstable comparator left them, which made
// lamovet's output (and the CI JSON artifact) flap between runs.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// relPath returns the package path relative to the module root, or ok=false
// for packages outside the module.
func relPath(path string) (string, bool) {
	if path == ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// inScope reports whether the pass's package is one of the listed
// module-relative package paths.
func inScope(pass *Pass, scoped []string) bool {
	rel, ok := relPath(pass.Path)
	if !ok {
		return false
	}
	for _, s := range scoped {
		if rel == s {
			return true
		}
	}
	return false
}

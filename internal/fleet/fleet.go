// Package fleet implements lamogate: a stdlib-only HTTP router and
// coordinator in front of N lamod replicas, turning a single-process
// daemon into a sharded, health-gated serving cluster with zero-downtime
// artifact rollout.
//
// The router maintains a membership table over the replica list. A probe
// goroutine polls each replica's /v1/healthz, tracking liveness, the
// readiness bit (false while a replica reloads its artifact), and the
// served artifact digest; replicas that fail consecutive probes are
// ejected with exponential backoff and readmitted on the first success.
// /v1/predict traffic is routed by consistent hashing on the protein ID
// over a deterministic virtual-node ring, so the same protein always
// lands on the same replica and each replica's ranking LRU stays hot.
// Failed requests retry on the next distinct replica in ring order, and a
// hedged second request fires after a p99-derived delay so one slow
// replica cannot hold the tail.
//
// Endpoints:
//
//	GET  /v1/predict  — routed to a replica by protein affinity (retries, hedging)
//	POST /v1/predict  — same, hashed on the first protein of the batch
//	GET  /v1/motifs   — proxied to the first available replica
//	GET  /v1/healthz  — fleet liveness/readiness + uniform artifact digest
//	GET  /v1/fleet    — the membership table (state, digest, latency per replica)
//	GET  /v1/metrics  — fleet counters and latency snapshot (JSON)
//	GET  /metrics     — the same in Prometheus text format, including the
//	                    lamod_fleet_mixed_digest gauge
//	POST /v1/admin/rollout — rolling artifact swap across the fleet, one
//	                    replica at a time, digests verified end to end
//
// The rollout protocol drains one replica (stops routing to it, waits for
// its in-flight requests), posts /v1/admin/reload to it, waits until the
// replica reports ready with the expected digest, readmits it, and moves
// on — so a mixed-digest fleet exists only transiently, is visible in
// /metrics while it does, and the fleet never drops below N-1 routable
// replicas. Everything here is stdlib-only, matching the repo's
// dependency contract.
package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lamofinder/internal/obs"
)

// Defaults for Config's zero values.
const (
	DefaultVNodes        = 64
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = 2 * time.Second
	DefaultFailThreshold = 2
	DefaultBackoffBase   = time.Second
	DefaultBackoffMax    = 30 * time.Second
	DefaultMaxAttempts   = 3
	DefaultHedgeMin      = 2 * time.Millisecond
	DefaultHedgeMax      = 500 * time.Millisecond
	DefaultMaxBody       = 1 << 20
	DefaultDrainTimeout  = 10 * time.Second
	DefaultRolloutWait   = 60 * time.Second
	maxReplicas          = 64 // Preference's member bitset is one uint64
)

// Config tunes the router. Zero values fall back to the defaults above.
type Config struct {
	// Replicas lists the lamod daemons, as host:port or full base URLs.
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring.
	VNodes int
	// ProbeInterval is the health-probe period; ProbeTimeout bounds one
	// probe request.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// replica; ejected replicas are reprobed after an exponential backoff
	// growing from BackoffBase to BackoffMax.
	FailThreshold int
	BackoffBase   time.Duration
	BackoffMax    time.Duration
	// MaxAttempts bounds the distinct replicas tried per predict request
	// (first attempt + retries; the hedge does not consume an attempt).
	MaxAttempts int
	// Hedge delay is derived from the fleet's observed upstream p99 and
	// clamped to [HedgeMin, HedgeMax]; before any observation it is
	// HedgeMax. HedgeMin <= 0 uses the default; a negative HedgeMax
	// disables hedging entirely.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// UpstreamTimeout bounds one proxied request to a replica.
	UpstreamTimeout time.Duration
	// MaxBody caps a buffered POST body.
	MaxBody int64
	// DrainTimeout bounds the wait for a replica's in-flight requests
	// during rollout; RolloutWait bounds the wait for a reloaded replica
	// to come back ready with the new digest; RolloutSettle is an extra
	// pause after draining and between replicas (useful to widen the
	// observable mixed-digest window in tests and smokes).
	DrainTimeout  time.Duration
	RolloutWait   time.Duration
	RolloutSettle time.Duration
	// Logger, when set, records membership transitions, rollout steps, and
	// one line per routed upstream attempt (replica, trace ID, status).
	Logger *obs.Logger
	// Trace generates gateway request IDs for requests without a valid
	// client X-Request-Id (nil = a fresh "gw"-prefixed source). The gateway
	// mints the ID once per request, so every retry and hedge attempt — and
	// the replica-side trace each one records — shares it.
	Trace *obs.TraceSource
	// TraceSampleEvery selects span-trace head sampling at the gateway:
	// every Nth predict request records a routing span tree (0 = the obs
	// default, 1 in 16; negative = forced-only). Probe rounds run through
	// the same sampler; rollouts always trace.
	TraceSampleEvery int
	// TraceStoreSize bounds the ring of finished gateway traces served by
	// GET /v1/traces (0 = the obs default, 256).
	TraceStoreSize int
}

func (c *Config) fill() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("fleet: at least one replica is required")
	}
	if len(c.Replicas) > maxReplicas {
		return fmt.Errorf("fleet: %d replicas exceeds the %d-replica cap", len(c.Replicas), maxReplicas)
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = DefaultHedgeMin
	}
	if c.HedgeMax == 0 {
		c.HedgeMax = DefaultHedgeMax
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 10 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.RolloutWait <= 0 {
		c.RolloutWait = DefaultRolloutWait
	}
	return nil
}

// normalizeAddr turns "host:port" into "http://host:port" and strips a
// trailing slash from full URLs.
func normalizeAddr(a string) string {
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return strings.TrimRight(a, "/")
}

// Router is the lamogate coordinator: one immutable ring, one membership
// table, one upstream HTTP client, and the probe goroutine that keeps the
// table honest.
type Router struct {
	cfg     Config
	ring    *Ring
	members []*member // index-aligned with ring member indices
	client  *http.Client
	met     fleetMetrics
	trace   *obs.TraceSource
	tracer  *obs.Tracer

	// hedgeNanos caches the hedge delay derived from the merged upstream
	// p99 after each probe round, so the hot path reads one atomic.
	hedgeNanos atomic.Int64

	rollMu sync.Mutex // serializes rollouts

	probeStart sync.Once
	probeStop  sync.Once
	probeQuit  chan struct{}
	probeDone  chan struct{}
}

// New builds a router over the configured replicas. Call StartProbes (or
// Serve/ListenAndServe, which do) to begin health probing, and Close to
// stop it.
func New(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	addrs := make([]string, len(cfg.Replicas))
	for i, a := range cfg.Replicas {
		addrs[i] = normalizeAddr(a)
	}
	ring := NewRing(addrs, cfg.VNodes)
	if ring.Len() < len(addrs) {
		return nil, fmt.Errorf("fleet: duplicate replica addresses in %v", cfg.Replicas)
	}
	members := make([]*member, ring.Len())
	for i, a := range ring.Members() {
		members[i] = &member{addr: a}
		// Members start Ready optimistically: the first probe round runs
		// before the listener opens, and a cold router that refused all
		// traffic until a probe succeeded would turn a slow replica boot
		// into an outage.
	}
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		members: members,
		client: &http.Client{
			Timeout: cfg.UpstreamTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        4 * ring.Len(),
				MaxIdleConnsPerHost: 8,
			},
		},
		probeQuit: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	rt.trace = cfg.Trace
	if rt.trace == nil {
		rt.trace = obs.NewTraceSource("gw", 0)
	}
	rt.tracer = obs.NewTracer(cfg.TraceSampleEvery, cfg.TraceStoreSize, cfg.Logger)
	rt.hedgeNanos.Store(int64(cfg.HedgeMax))
	return rt, nil
}

// Members returns the sorted replica base URLs.
func (rt *Router) Members() []string { return rt.ring.Members() }

// StartProbes launches the membership prober: one goroutine, one probe
// round immediately and then every ProbeInterval, joined by Close.
func (rt *Router) StartProbes() {
	rt.probeStart.Do(func() {
		go rt.probeLoop()
	})
}

// Close stops the prober and waits for it to exit, then stops the trace
// summary drain (the prober publishes probe-round traces, so the tracer
// must outlive it). Idempotent; safe even if StartProbes was never called.
func (rt *Router) Close() {
	rt.probeStop.Do(func() { close(rt.probeQuit) })
	rt.probeStart.Do(func() { close(rt.probeDone) }) // never started: unblock the wait
	<-rt.probeDone
	rt.tracer.Close()
}

func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	rt.probeAll()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeQuit:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeHealth is the slice of a replica's healthz body the prober reads.
type probeHealth struct {
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Artifact string `json:"artifact"`
}

// probeAll probes every due member once and refreshes the cached hedge
// delay from the merged upstream latency. Probe rounds flow through the
// head sampler like requests do: a sampled round records one trace with a
// child span per probed replica, so slow health checks show up in the
// trace store with the replica that caused them.
func (rt *Router) probeAll() {
	now := time.Now()
	var tr *obs.Trace
	if rt.tracer.Sample(false) {
		tr = rt.tracer.Start(rt.trace.Next(), obs.NoSpan, "probe-round")
	}
	for _, m := range rt.members {
		if !m.probeDue(now) {
			continue
		}
		si := tr.StartSpan(tr.Root(), "probe")
		tr.SetDetail(si, m.addr)
		rt.probeOne(m, now)
		tr.EndSpan(si)
	}
	rt.refreshHedge()
	rt.tracer.Finish(tr)
}

func (rt *Router) probeOne(m *member, now time.Time) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	var ph probeHealth
	err := rt.getJSON(ctx, m.addr+"/v1/healthz", &ph)
	switch {
	case err != nil || ph.Status != "ok":
		if m.noteFailure(now, rt.cfg.FailThreshold, rt.cfg.BackoffBase, rt.cfg.BackoffMax) {
			rt.met.ejects.Add(1)
			rt.cfg.Logger.Warn("fleet eject", obs.String("replica", m.addr))
		}
	case !ph.Ready:
		// Alive but asking to be drained (artifact reload in flight):
		// stop routing without starting the eject backoff clock.
		m.setDigest(ph.Artifact)
		m.state.CompareAndSwap(memberReady, memberDraining)
	case m.pinned.Load():
		// The rollout coordinator is holding this member in Draining;
		// record the observation but leave the state alone.
		m.setDigest(ph.Artifact)
	default:
		m.setDigest(ph.Artifact)
		if m.noteSuccess() {
			rt.met.readmits.Add(1)
			rt.cfg.Logger.Info("fleet readmit", obs.String("replica", m.addr))
		}
	}
}

// refreshHedge recomputes the hedge delay as the merged upstream p99,
// clamped to [HedgeMin, HedgeMax]. A negative HedgeMax disables hedging.
func (rt *Router) refreshHedge() {
	if rt.cfg.HedgeMax < 0 {
		rt.hedgeNanos.Store(-1)
		return
	}
	var merged obs.HistSnapshot
	for _, m := range rt.members {
		merged.Merge(m.lat.Snapshot())
	}
	d := rt.cfg.HedgeMax
	if merged.Count > 0 {
		d = time.Duration(merged.Quantile(0.99)) * time.Microsecond
		if d < rt.cfg.HedgeMin {
			d = rt.cfg.HedgeMin
		}
		if d > rt.cfg.HedgeMax {
			d = rt.cfg.HedgeMax
		}
	}
	rt.hedgeNanos.Store(int64(d))
}

// hedgeDelay returns the current hedge delay, or <0 when disabled.
func (rt *Router) hedgeDelay() time.Duration {
	return time.Duration(rt.hedgeNanos.Load())
}

// mixedDigest reports whether live (non-ejected) members currently serve
// more than one artifact version, and the uniform digest when they do not
// (empty until a probe has observed one).
func (rt *Router) mixedDigest() (uniform string, mixed bool) {
	for _, m := range rt.members {
		if m.state.Load() == memberEjected {
			continue
		}
		d := m.getDigest()
		if d == "" {
			continue
		}
		switch {
		case uniform == "":
			uniform = d
		case uniform != d:
			return "", true
		}
	}
	return uniform, false
}

// ListenAndServe runs the router on addr until ctx is canceled, then
// shuts down gracefully like the daemon: listener closed, in-flight
// requests drained for up to drain, probe goroutine joined.
func (rt *Router) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen: %w", err)
	}
	return rt.Serve(ctx, l, drain)
}

// Serve is ListenAndServe over an existing listener, which it takes
// ownership of.
func (rt *Router) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	rt.StartProbes()
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		rt.Close()
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	rt.Close()
	if err != nil {
		return fmt.Errorf("fleet: drain: %w", err)
	}
	return nil
}

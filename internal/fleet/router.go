package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"lamofinder/internal/obs"
)

// Handler returns the router's HTTP handler on its own ServeMux (never
// the process-global one). There is no TimeoutHandler wrapper: upstream
// deadlines come from the pooled client, and the rollout endpoint
// legitimately runs for many seconds.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/v1/motifs", rt.handleMotifs)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/fleet", rt.handleFleet)
	mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	mux.HandleFunc("/metrics", rt.handleProm)
	mux.HandleFunc("/v1/admin/rollout", rt.handleRollout)
	mux.HandleFunc("/v1/traces", rt.handleTraces)
	mux.HandleFunc("/v1/traces/", rt.handleTraces)
	return rt.instrument(mux)
}

// instrument wraps the mux with the router-side counters and per-route
// latency histograms. The router is not under the daemon's 0-alloc
// budget, so this stays plain and readable.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		rt.met.requests.Add(1)
		if rec.status >= 400 {
			rt.met.errors.Add(1)
		}
		rt.met.lat[fleetRouteOf(r.URL.Path)].Record(time.Since(start))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// affinityKey extracts the routing key — the first protein named by the
// request — from a predict request. GET reads the first protein= query
// value; POST decodes the buffered JSON body. An empty key routes like
// any other key (it simply always hashes to the same replica).
func affinityKey(r *http.Request, body []byte) string {
	if r.Method == http.MethodPost {
		var req struct {
			Proteins []string `json:"proteins"`
		}
		if err := json.Unmarshal(body, &req); err == nil && len(req.Proteins) > 0 {
			return req.Proteins[0]
		}
		return ""
	}
	raw := r.URL.RawQuery
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, raw = pair[:i], pair[i+1:]
		} else {
			raw = ""
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if key != "protein" {
			continue
		}
		if strings.ContainsAny(val, "%+") {
			dec, err := url.QueryUnescape(val)
			if err != nil {
				continue
			}
			val = dec
		}
		return val
	}
	return ""
}

// upstreamResult is one proxied attempt's outcome, fully buffered so a
// failed or slow attempt can be discarded and retried without the client
// seeing a truncated body.
type upstreamResult struct {
	member      *member
	status      int
	contentType string
	requestID   string
	body        []byte
	err         error
	hedged      bool
}

// retryable reports whether another replica might answer this request
// successfully: transport errors and gateway-ish statuses are worth a
// retry, deterministic application responses (2xx, 4xx, 500) are not.
func (u *upstreamResult) retryable() bool {
	if u.err != nil {
		return true
	}
	switch u.status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// issue proxies one buffered request to one member and buffers the full
// response. Latency is recorded per member; transport failures count
// toward the member's eject streak unless the router itself canceled the
// attempt (a lost hedge race is not evidence the replica is sick).
//
// requestID is the gateway's ID for this request — minted once in the
// handler when the client supplied none, so every attempt (retry or
// hedge) carries the same ID and the access logs on gateway and replicas
// join on it. traceCtx, when non-empty, is the X-Trace-Context value
// binding the replica-side trace to this attempt's span in the gateway
// trace.
func (rt *Router) issue(ctx context.Context, m *member, method, uri string, body []byte, requestID, traceCtx string, hedged bool) *upstreamResult {
	res := &upstreamResult{member: m, hedged: hedged}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.addr+uri, rd)
	if err != nil {
		res.err = err
		return res
	}
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	if traceCtx != "" {
		req.Header.Set(obs.HeaderTraceContext, traceCtx)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	m.inflight.Add(1)
	m.requests.Add(1)
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err == nil {
		res.status = resp.StatusCode
		res.contentType = resp.Header.Get("Content-Type")
		res.requestID = resp.Header.Get("X-Request-Id")
		res.body, err = io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
	}
	m.lat.Record(time.Since(start))
	m.inflight.Add(-1)
	if err != nil {
		res.err = err
		if !errors.Is(err, context.Canceled) {
			m.errors.Add(1)
			if m.noteFailure(time.Now(), rt.cfg.FailThreshold, rt.cfg.BackoffBase, rt.cfg.BackoffMax) {
				rt.met.ejects.Add(1)
				rt.cfg.Logger.Warn("fleet eject", obs.String("replica", m.addr), obs.String("cause", "transport"))
			}
		}
		return res
	}
	if res.retryable() {
		m.errors.Add(1)
	}
	return res
}

// candidates assembles the attempt order for a key: routable members in
// ring-preference order first, then — only as a last resort — the
// non-routable ones in the same order, so a fully ejected fleet still
// gets one best-effort attempt instead of an immediate 502.
func (rt *Router) candidates(key string, scratch []int) []*member {
	order := rt.ring.Preference(key, scratch[:0])
	out := make([]*member, 0, len(order))
	for _, i := range order {
		if rt.members[i].routable() {
			out = append(out, rt.members[i])
		}
	}
	for _, i := range order {
		if !rt.members[i].routable() {
			out = append(out, rt.members[i])
		}
	}
	return out
}

// attemptState tracks one launched upstream attempt for span attribution:
// the route loop owns the trace, so spans open here when the attempt
// launches, close when its result arrives, and are marked canceled when
// another attempt wins first.
type attemptState struct {
	m    *member
	span int32
	done bool
}

// route proxies one predict request: primary attempt on the key's owner,
// a hedged duplicate on the next replica once the p99-derived delay
// expires, then sequential retries over the remaining candidates. The
// first non-retryable result wins; a lost hedge is canceled by the
// request context when the handler returns.
//
// With tr sampled, every attempt becomes a child span of the gateway
// trace — "attempt" or "hedge", detail = replica address — and each
// outbound request carries X-Trace-Context naming its own span, so the
// replica's trace nests under the exact attempt that caused it. All span
// mutation happens on this goroutine (the trace's single-writer
// contract); the issue goroutines never touch tr.
func (rt *Router) route(ctx context.Context, candidates []*member, method, uri string, body []byte, requestID string, tr *obs.Trace) *upstreamResult {
	maxAttempts := rt.cfg.MaxAttempts
	if maxAttempts > len(candidates) {
		maxAttempts = len(candidates)
	}
	resc := make(chan *upstreamResult, maxAttempts+1) // buffered: losers never block
	inFlight, next := 0, 0
	var attempts []attemptState
	launch := func(hedged bool) {
		m := candidates[next]
		next++
		inFlight++
		name := "attempt"
		if hedged {
			name = "hedge"
		}
		si := tr.StartSpan(tr.Root(), name)
		tr.SetDetail(si, m.addr)
		traceCtx := ""
		if tr != nil && si != obs.NoSpan {
			traceCtx = obs.FormatTraceContext(tr.ID(), si)
		}
		attempts = append(attempts, attemptState{m: m, span: si})
		go func() { resc <- rt.issue(ctx, m, method, uri, body, requestID, traceCtx, hedged) }()
	}
	// settle closes the span of one returned attempt and logs the attempt
	// line that joins the gateway access log to the replica's.
	settle := func(res *upstreamResult) {
		for i := range attempts {
			a := &attempts[i]
			if a.done || a.m != res.member {
				continue
			}
			a.done = true
			tr.EndSpan(a.span)
			break
		}
		status := int64(res.status)
		if res.err != nil {
			status = -1
		}
		rt.cfg.Logger.Info("upstream attempt",
			obs.String("trace", requestID),
			obs.String("replica", res.member.addr),
			obs.Int64("status", status))
	}
	// cancelLosers marks every still-open attempt span canceled at
	// winner-decision time, so the trace shows when — and why — the race
	// ended for the loser.
	cancelLosers := func() {
		for i := range attempts {
			a := &attempts[i]
			if a.done {
				continue
			}
			tr.SetDetail(a.span, a.m.addr+" canceled: lost race")
			tr.EndSpan(a.span)
		}
	}
	launch(false)

	hedge := rt.hedgeDelay()
	var hedgeC <-chan time.Time
	if hedge >= 0 && next < len(candidates) {
		timer := time.NewTimer(hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastFail *upstreamResult
	for inFlight > 0 {
		select {
		case res := <-resc:
			inFlight--
			settle(res)
			if !res.retryable() {
				if res.hedged {
					rt.met.hedgeWins.Add(1)
				}
				cancelLosers()
				return res
			}
			lastFail = res
			// Sequential retry on the next candidate, bounded by
			// maxAttempts non-hedged launches in total.
			if next < len(candidates) && next < maxAttempts {
				rt.met.retries.Add(1)
				launch(false)
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(candidates) {
				rt.met.hedges.Add(1)
				launch(true)
			}
		}
	}
	return lastFail
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = readBody(r, rt.cfg.MaxBody)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, errBodyTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			rt.writeError(w, status, "read body: %v", err)
			return
		}
	}
	var scratch [maxReplicas]int
	cands := rt.candidates(affinityKey(r, body), scratch[:])
	if len(cands) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no replicas configured")
		return
	}
	id, tr := rt.startTrace(r, "predict")
	res := rt.route(r.Context(), cands, r.Method, r.URL.RequestURI(), body, id, tr)
	// Finish before relaying: the trace is queryable the moment the client
	// has the response (the root span measures routing, not the client
	// write, which is the half the gateway actually controls).
	rt.tracer.Finish(tr)
	rt.relay(w, res, id)
}

// handleMotifs proxies to the first available replica: the motif list is
// identical on every replica serving the same artifact, so affinity does
// not matter, only availability.
func (rt *Router) handleMotifs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var scratch [maxReplicas]int
	cands := rt.candidates("", scratch[:])
	if len(cands) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no replicas configured")
		return
	}
	id, tr := rt.startTrace(r, "motifs")
	res := rt.route(r.Context(), cands, r.Method, r.URL.RequestURI(), nil, id, tr)
	rt.tracer.Finish(tr)
	rt.relay(w, res, id)
}

// relay writes a routed result to the client; an exhausted retry budget
// becomes one 502 with the last upstream failure attached. The echoed
// X-Request-Id is the gateway's own ID — minted once per request, shared
// by every attempt — never a replica's, so the client's ticket always
// matches the gateway trace and every replica-side log line.
func (rt *Router) relay(w http.ResponseWriter, res *upstreamResult, id string) {
	if id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	if res == nil {
		rt.writeError(w, http.StatusBadGateway, "no replica available")
		return
	}
	if res.err != nil {
		rt.writeError(w, http.StatusBadGateway, "replica %s: %v", res.member.addr, res.err)
		return
	}
	if res.retryable() {
		rt.writeError(w, http.StatusBadGateway, "replica %s: status %d", res.member.addr, res.status)
		return
	}
	h := w.Header()
	if res.contentType != "" {
		h.Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// fleetHealthz is the router's /v1/healthz body: liveness of the fleet as
// a whole. Artifact is the uniform digest when every live replica agrees
// (the shape lamoload's identity check reads); it is empty while the
// fleet is mixed mid-rollout.
type fleetHealthz struct {
	Status      string `json:"status"`
	Ready       int    `json:"ready"`
	Total       int    `json:"total"`
	Artifact    string `json:"artifact"`
	MixedDigest bool   `json:"mixed_digest"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	ready := 0
	for _, m := range rt.members {
		if m.routable() {
			ready++
		}
	}
	uniform, mixed := rt.mixedDigest()
	hz := fleetHealthz{
		Status:      "ok",
		Ready:       ready,
		Total:       len(rt.members),
		Artifact:    uniform,
		MixedDigest: mixed,
	}
	status := http.StatusOK
	if ready == 0 {
		hz.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, status, hz)
}

// FleetStatus is the body of /v1/fleet: the membership table plus the
// fleet-wide digest view.
type FleetStatus struct {
	Artifact    string         `json:"artifact"`
	MixedDigest bool           `json:"mixed_digest"`
	Replicas    []MemberStatus `json:"replicas"`
}

func (rt *Router) fleetStatus() FleetStatus {
	uniform, mixed := rt.mixedDigest()
	fs := FleetStatus{Artifact: uniform, MixedDigest: mixed, Replicas: make([]MemberStatus, len(rt.members))}
	for i, m := range rt.members {
		// members is sorted by address (ring order), so the table is
		// deterministic for a given fleet state.
		fs.Replicas[i] = m.status()
	}
	return fs
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rt.writeJSON(w, http.StatusOK, rt.fleetStatus())
}

var errBodyTooLarge = errors.New("request body too large")

// readBody buffers a request body up to max bytes, failing rather than
// truncating when the cap is exceeded.
func readBody(r *http.Request, max int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > max {
		return nil, fmt.Errorf("%w (limit %d bytes)", errBodyTooLarge, max)
	}
	return body, nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	rt.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

// getJSON GETs url within ctx and decodes the JSON body into v.
func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

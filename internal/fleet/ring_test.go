package fleet

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://127.0.0.1:%d", 8081+i)
	}
	return ms
}

func ringKeys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("protein-%d", i)
	}
	return ks
}

// TestRingDeterministic: placement is a pure function of the member set —
// identical across ring instances and across input permutations, because
// a restarted router must send every protein back to the replica whose
// LRU already holds it.
func TestRingDeterministic(t *testing.T) {
	members := ringMembers(5)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	a := NewRing(members, 64)
	b := NewRing(shuffled, 64)
	for _, k := range ringKeys(2000) {
		ao, bo := a.Members()[a.Owner(k)], b.Members()[b.Owner(k)]
		if ao != bo {
			t.Fatalf("key %q: owner %s vs %s across permuted construction", k, ao, bo)
		}
	}
}

// TestRingLoadSkew: at 64 vnodes per member, no member's key share may
// exceed the even split by more than 15%. The bound holds because vnode
// hashes go through the splitmix64 finalizer — plain FNV over the short
// "#NN"-suffixed labels clusters badly enough to break it.
func TestRingLoadSkew(t *testing.T) {
	keys := ringKeys(100000)
	for _, n := range []int{2, 3, 4, 5, 8, 12, 16} {
		r := NewRing(ringMembers(n), 64)
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		even := float64(len(keys)) / float64(n)
		for i, c := range counts {
			skew := float64(c)/even - 1
			if skew > 0.15 {
				t.Errorf("%d members: member %d owns %d keys, %.1f%% over the even share",
					n, i, c, skew*100)
			}
		}
	}
}

// TestRingMinimalMovement: removing one member may move only the keys
// that member owned. Every other key keeps its owner, so a replica
// failure does not shuffle the surviving replicas' cache working sets.
func TestRingMinimalMovement(t *testing.T) {
	members := ringMembers(5)
	removed := members[2]
	full := NewRing(members, 64)
	reduced := NewRing(append(append([]string{}, members[:2]...), members[3:]...), 64)
	moved, owned := 0, 0
	for _, k := range ringKeys(20000) {
		before := full.Members()[full.Owner(k)]
		after := reduced.Members()[reduced.Owner(k)]
		if before == removed {
			owned++
			continue // these must move somewhere; anywhere is legal
		}
		if before != after {
			moved++
			t.Errorf("key %q moved %s -> %s though %s was the member removed", k, before, after, removed)
			if moved > 5 {
				t.Fatal("too many moved keys, stopping")
			}
		}
	}
	if owned == 0 {
		t.Fatal("removed member owned no keys; the movement property was tested vacuously")
	}
}

// TestRingPreference: the preference walk starts at the owner and yields
// every member exactly once — the full retry order for a key.
func TestRingPreference(t *testing.T) {
	r := NewRing(ringMembers(6), 64)
	for _, k := range ringKeys(500) {
		order := r.Preference(k, nil)
		if len(order) != r.Len() {
			t.Fatalf("key %q: preference lists %d members, want %d", k, len(order), r.Len())
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("key %q: preference starts at %d, owner is %d", k, order[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("key %q: member %d appears twice in preference", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingDedupAndEmpty: duplicate member names collapse; an empty ring
// answers Owner with -1 rather than panicking.
func TestRingDedupAndEmpty(t *testing.T) {
	r := NewRing([]string{"a", "a", "b"}, 8)
	if r.Len() != 2 {
		t.Fatalf("deduped ring has %d members, want 2", r.Len())
	}
	empty := NewRing(nil, 8)
	if got := empty.Owner("x"); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if got := empty.Preference("x", nil); len(got) != 0 {
		t.Fatalf("empty ring preference = %v, want empty", got)
	}
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lamofinder/internal/obs"
)

// ErrRolloutInFlight is returned when a rollout is requested while one is
// already running; the HTTP layer maps it to 409 Conflict.
var ErrRolloutInFlight = errors.New("fleet: rollout already in flight")

// RolloutRequest asks the fleet to swap every replica to the artifact at
// Artifact (a path on each replica's filesystem, inside its -reload-dir).
// Digest, when set, is verified end to end; when empty, the digest the
// first replica reports after its reload pins the target for the rest, so
// a fleet can never finish a rollout split across versions.
type RolloutRequest struct {
	Artifact string `json:"artifact"`
	Digest   string `json:"digest"`
}

// RolloutStep records one replica's swap.
type RolloutStep struct {
	Replica  string `json:"replica"`
	Previous string `json:"previous"`
	Artifact string `json:"artifact"`
}

// RolloutResult is the rollout endpoint's response body.
type RolloutResult struct {
	Artifact string        `json:"artifact"`
	Steps    []RolloutStep `json:"steps"`
}

// Rollout swaps the whole fleet to the artifact at path, one replica at a
// time: drain (unroute, wait for in-flight requests), reload, wait for
// ready with the expected digest, readmit, next. Ejected replicas are
// skipped — when they come back their stale digest shows up as a mixed
// fleet in /metrics, which is the honest signal. On a mid-rollout failure
// the fleet is left mixed (already-swapped replicas keep the new
// artifact) and the error names the replica that failed.
func (rt *Router) Rollout(ctx context.Context, path, wantDigest string) (RolloutResult, error) {
	if !rt.rollMu.TryLock() {
		return RolloutResult{}, ErrRolloutInFlight
	}
	defer rt.rollMu.Unlock()

	// Rollouts are rare and load-bearing, so they always trace: one span
	// per replica with drain/reload/verify children, queryable afterwards
	// at GET /v1/traces/{id} to answer "where did the rollout spend time".
	tr := rt.tracer.Start(rt.trace.Next(), obs.NoSpan, "rollout")
	defer rt.tracer.Finish(tr)
	rt.cfg.Logger.Info("rollout trace", obs.String("trace", tr.ID()))

	res := RolloutResult{Artifact: wantDigest}
	for _, m := range rt.members {
		if m.state.Load() == memberEjected {
			rt.cfg.Logger.Warn("rollout skip ejected replica", obs.String("replica", m.addr))
			continue
		}
		step, err := rt.rolloutOne(ctx, m, path, res.Artifact, tr)
		if err != nil {
			return res, fmt.Errorf("fleet: rollout at %s (after %d ok): %w", m.addr, len(res.Steps), err)
		}
		if res.Artifact == "" {
			// First replica pins the target digest for the rest.
			res.Artifact = step.Artifact
		}
		res.Steps = append(res.Steps, step)
		if err := rt.sleep(ctx, rt.cfg.RolloutSettle); err != nil {
			return res, fmt.Errorf("fleet: rollout canceled after %d replicas: %w", len(res.Steps), err)
		}
	}
	if len(res.Steps) == 0 {
		return res, fmt.Errorf("fleet: rollout: no live replicas to roll")
	}
	rt.met.rollouts.Add(1)
	rt.cfg.Logger.Info("rollout complete",
		obs.String("artifact", res.Artifact), obs.Int64("replicas", int64(len(res.Steps))))
	return res, nil
}

func (rt *Router) rolloutOne(ctx context.Context, m *member, path, wantDigest string, tr *obs.Trace) (RolloutStep, error) {
	repSpan := tr.StartSpan(tr.Root(), "replica")
	tr.SetDetail(repSpan, m.addr)
	defer tr.EndSpan(repSpan)
	// Drain: pin so the prober can't readmit, unroute, wait for in-flight
	// requests to finish. New requests for this member's keys fail over to
	// the next replica in ring order, so clients never notice.
	m.pinned.Store(true)
	m.state.Store(memberDraining)
	defer m.pinned.Store(false)
	rt.cfg.Logger.Info("rollout drain", obs.String("replica", m.addr))
	drainSpan := tr.StartSpan(repSpan, "drain")
	if err := rt.waitInflight(ctx, m); err != nil {
		m.state.CompareAndSwap(memberDraining, memberReady)
		return RolloutStep{}, err
	}
	if err := rt.sleep(ctx, rt.cfg.RolloutSettle); err != nil {
		m.state.CompareAndSwap(memberDraining, memberReady)
		return RolloutStep{}, err
	}
	tr.EndSpan(drainSpan)

	reloadSpan := tr.StartSpan(repSpan, "reload")
	prev, err := rt.postReload(ctx, m, path, wantDigest)
	if err != nil {
		// The replica kept its old model (reload is atomic on its side);
		// putting it back in rotation is safe.
		m.state.CompareAndSwap(memberDraining, memberReady)
		return RolloutStep{}, err
	}
	tr.EndSpan(reloadSpan)

	verifySpan := tr.StartSpan(repSpan, "verify")
	got, err := rt.waitReady(ctx, m, wantDigest)
	if err != nil {
		return RolloutStep{}, err
	}
	tr.EndSpan(verifySpan)
	m.setDigest(got)
	m.state.Store(memberReady)
	rt.cfg.Logger.Info("rollout swapped", obs.String("replica", m.addr), obs.String("artifact", got))
	return RolloutStep{Replica: m.addr, Previous: prev, Artifact: got}, nil
}

// waitInflight polls until the member has no routed requests outstanding,
// bounded by DrainTimeout. A timeout is an error: reloading under live
// requests is safe on the replica (the old model drains via its own
// atomic pointer), but a drain that never completes means routing is not
// actually avoiding this member, which is worth failing loudly over.
func (rt *Router) waitInflight(ctx context.Context, m *member) error {
	deadline := time.Now().Add(rt.cfg.DrainTimeout)
	for m.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("drain: %d requests still in flight after %s", m.inflight.Load(), rt.cfg.DrainTimeout)
		}
		if err := rt.sleep(ctx, 5*time.Millisecond); err != nil {
			return err
		}
	}
	return nil
}

// postReload posts /v1/admin/reload on the replica and returns the digest
// it reports having replaced.
func (rt *Router) postReload(ctx context.Context, m *member, path, wantDigest string) (previous string, err error) {
	body, err := json.Marshal(struct {
		Artifact string `json:"artifact"`
		Digest   string `json:"digest,omitempty"`
	}{Artifact: path, Digest: wantDigest})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.addr+"/v1/admin/reload", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("reload: %w", err)
	}
	var rr struct {
		Previous string `json:"previous"`
		Artifact string `json:"artifact"`
		Error    string `json:"error"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&rr)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil && resp.StatusCode == http.StatusOK {
		return "", fmt.Errorf("reload: decode response: %w", derr)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("reload: status %d: %s", resp.StatusCode, rr.Error)
	}
	return rr.Previous, nil
}

// waitReady polls the replica's healthz until it reports ready with the
// expected digest (or, when wantDigest is empty, with any digest — the
// caller pins it), bounded by RolloutWait.
func (rt *Router) waitReady(ctx context.Context, m *member, wantDigest string) (string, error) {
	deadline := time.Now().Add(rt.cfg.RolloutWait)
	for {
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		var ph probeHealth
		err := rt.getJSON(pctx, m.addr+"/v1/healthz", &ph)
		cancel()
		if err == nil && ph.Status == "ok" && ph.Ready {
			if wantDigest == "" || ph.Artifact == wantDigest {
				return ph.Artifact, nil
			}
			err = fmt.Errorf("replica serves %s, want %s", ph.Artifact, wantDigest)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("wait ready: %v (after %s)", err, rt.cfg.RolloutWait)
		}
		if serr := rt.sleep(ctx, 20*time.Millisecond); serr != nil {
			return "", serr
		}
	}
}

// sleep waits for d or until ctx is canceled. d <= 0 returns immediately.
func (rt *Router) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req RolloutRequest
	body, err := readBody(r, rt.cfg.MaxBody)
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Artifact == "" {
		rt.writeError(w, http.StatusBadRequest, "artifact path is required")
		return
	}
	res, err := rt.Rollout(r.Context(), req.Artifact, req.Digest)
	switch {
	case errors.Is(err, ErrRolloutInFlight):
		rt.writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		rt.writeError(w, http.StatusBadGateway, "%v", err)
	default:
		rt.writeJSON(w, http.StatusOK, res)
	}
}

package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"lamofinder/internal/obs"
)

// Member states. The state machine is:
//
//	Ready ──probe fails FailThreshold times──▶ Ejected
//	Ready ──replica reports ready:false, or rollout drain──▶ Draining
//	Draining ──probe reports ready:true──▶ Ready
//	Ejected ──probe succeeds (after backoff)──▶ Ready (a readmission)
//
// Ready members take routed traffic. Draining members are alive but not
// routable: the replica asked not to receive new work (an artifact reload
// is in flight, or the coordinator is about to issue one). Ejected
// members failed health probes; they are probed again only after an
// exponential backoff and readmitted on the first success. As a last
// resort the router will still try non-Ready members when no Ready one is
// left — a degraded fleet beats a refused request.
const (
	memberReady int32 = iota
	memberDraining
	memberEjected
)

var stateNames = [...]string{"ready", "draining", "ejected"}

// member is one replica's slot in the membership table. Routing-hot
// fields (state, inflight, counters, latency histogram) are atomic;
// probe-time bookkeeping (digest, failure streak, backoff clock) sits
// behind a mutex the hot path never takes.
type member struct {
	addr  string // base URL, e.g. "http://127.0.0.1:8081"
	state atomic.Int32

	// pinned marks a member the rollout coordinator is holding in
	// Draining: the prober must not flip it back to Ready even though the
	// replica still reports healthy right up until its reload begins.
	pinned atomic.Bool

	inflight atomic.Int64 // routed requests currently outstanding
	requests atomic.Int64 // routed requests issued (hedges included)
	errors   atomic.Int64 // transport failures + retryable statuses
	lat      obs.Histogram

	mu          sync.Mutex
	digest      string    // artifact identity from the last probe/reload
	consecFails int       // consecutive probe/transport failures
	nextProbe   time.Time // ejected members wait for this before reprobing
}

func (m *member) stateName() string { return stateNames[m.state.Load()] }

// routable reports whether the router should pick this member in the
// normal (non-last-resort) pass.
func (m *member) routable() bool { return m.state.Load() == memberReady }

// setDigest records the artifact identity last observed on the replica.
func (m *member) setDigest(d string) {
	m.mu.Lock()
	m.digest = d
	m.mu.Unlock()
}

func (m *member) getDigest() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.digest
}

// noteSuccess clears the failure streak and moves the member to Ready
// (readmitting it if it was ejected). Returns true when this call
// readmitted an ejected member.
func (m *member) noteSuccess() (readmitted bool) {
	m.mu.Lock()
	m.consecFails = 0
	m.nextProbe = time.Time{}
	m.mu.Unlock()
	return m.state.Swap(memberReady) == memberEjected
}

// noteFailure records one failed probe or transport error and ejects the
// member once the streak reaches threshold. Ejected members back off
// exponentially: base<<(streak-threshold), capped at max. Returns true
// when this call performed the eject transition.
func (m *member) noteFailure(now time.Time, threshold int, base, max time.Duration) (ejected bool) {
	m.mu.Lock()
	m.consecFails++
	streak := m.consecFails
	if streak >= threshold {
		backoff := base
		for i := threshold; i < streak && backoff < max; i++ {
			backoff *= 2
		}
		if backoff > max {
			backoff = max
		}
		m.nextProbe = now.Add(backoff)
	}
	m.mu.Unlock()
	if streak >= threshold {
		return m.state.Swap(memberEjected) != memberEjected
	}
	return false
}

// probeDue reports whether the prober should contact this member now.
// Ready and Draining members are always probed; Ejected ones only after
// their backoff expires.
func (m *member) probeDue(now time.Time) bool {
	if m.state.Load() != memberEjected {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return !now.Before(m.nextProbe)
}

// MemberStatus is one row of the membership table as served by /v1/fleet
// and embedded in the fleet metrics snapshot.
type MemberStatus struct {
	Replica             string `json:"replica"`
	State               string `json:"state"`
	Digest              string `json:"digest"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Inflight            int64  `json:"inflight"`
	Requests            int64  `json:"requests"`
	Errors              int64  `json:"errors"`
	P50Micros           int64  `json:"p50_micros"`
	P90Micros           int64  `json:"p90_micros"`
	P99Micros           int64  `json:"p99_micros"`
}

func (m *member) status() MemberStatus {
	m.mu.Lock()
	digest, fails := m.digest, m.consecFails
	m.mu.Unlock()
	hs := m.lat.Snapshot()
	return MemberStatus{
		Replica:             m.addr,
		State:               m.stateName(),
		Digest:              digest,
		ConsecutiveFailures: fails,
		Inflight:            m.inflight.Load(),
		Requests:            m.requests.Load(),
		Errors:              m.errors.Load(),
		P50Micros:           hs.Quantile(0.50),
		P90Micros:           hs.Quantile(0.90),
		P99Micros:           hs.Quantile(0.99),
	}
}

package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lamofinder/internal/obs"
)

func getWithID(t *testing.T, url, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestHedgeSpanAttribution is the hedge e2e gate: with one replica
// stalled, a traced predict request must show — in the gateway's own
// trace tree — the winning hedge attempt, the canceled primary attempt
// with its cancellation reason, and one shared trace ID across both
// attempts; and the winning replica's trace, fetched through the
// gateway's merge endpoint, must nest under the winning attempt's span.
func TestHedgeSpanAttribution(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")

	// Two real replicas; the slow one sits behind a stalling proxy that
	// forwards the trace headers, exactly as a slow-but-honest replica
	// would behave.
	fast := newReplica(t, path, dir)
	slowBase := newReplica(t, path, dir)
	stall := 300 * time.Millisecond
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/predict") {
			time.Sleep(stall)
		}
		req, err := http.NewRequest(r.Method, slowBase.ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer slow.Close()

	rt, err := New(Config{
		Replicas:         []string{fast.ts.URL, slow.URL},
		ProbeInterval:    25 * time.Millisecond,
		HedgeMin:         time.Millisecond,
		HedgeMax:         20 * time.Millisecond,
		TraceSampleEvery: -1, // forced-only: the request's ID is the opt-in
		Trace:            obs.NewTraceSource("gw", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.StartProbes()
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find a protein owned by the slow replica, so the primary attempt
	// stalls and the hedge (on the fast replica) wins.
	slowIdx := -1
	for i, m := range rt.ring.Members() {
		if m == slow.URL {
			slowIdx = i
		}
	}
	query := ""
	for p := 1; p <= 22; p++ {
		k := fmt.Sprintf("p%d", p)
		if rt.ring.Owner(k) == slowIdx {
			query = "/v1/predict?protein=" + k + "&k=5"
			break
		}
	}
	if query == "" {
		t.Fatal("no protein hashes to the slow replica; fixture assumption broken")
	}

	const traceID = "hedge-e2e-1"
	resp, body := getWithID(t, ts.URL+query, traceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("gateway echoed %q, want the client ID %q", got, traceID)
	}
	if rt.met.hedgeWins.Load() == 0 {
		t.Fatalf("hedge did not win (hedges=%d wins=%d); the assertions below assume it did",
			rt.met.hedges.Load(), rt.met.hedgeWins.Load())
	}

	tresp, tbody := getWithID(t, ts.URL+"/v1/traces/"+traceID, "")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("gateway trace fetch: status %d: %s", tresp.StatusCode, tbody)
	}
	var gt gatewayTrace
	if err := json.Unmarshal(tbody, &gt); err != nil {
		t.Fatalf("gateway trace does not parse: %v\n%s", err, tbody)
	}
	if gt.Trace != traceID {
		t.Fatalf("trace ID %q, want %q", gt.Trace, traceID)
	}
	if len(gt.Spans) == 0 || gt.Spans[0].Name != "predict" {
		t.Fatalf("root span wrong: %+v", gt.Spans)
	}

	// Both attempts live in the one gateway trace — that IS the shared
	// trace ID: primary "attempt" on the slow replica, canceled when the
	// hedge won; "hedge" on the fast replica, completed.
	var primary, hedge *obs.SpanOut
	for i := range gt.Spans {
		sp := &gt.Spans[i]
		switch sp.Name {
		case "attempt":
			primary = sp
		case "hedge":
			hedge = sp
		}
	}
	if primary == nil || hedge == nil {
		t.Fatalf("trace lacks attempt+hedge spans: %+v", gt.Spans)
	}
	if !strings.Contains(primary.Detail, slow.URL) || !strings.Contains(primary.Detail, "canceled: lost race") {
		t.Fatalf("primary attempt not marked canceled with reason: %+v", primary)
	}
	if hedge.Detail != fast.ts.URL {
		t.Fatalf("hedge span detail %q, want the fast replica %q", hedge.Detail, fast.ts.URL)
	}
	if primary.Parent != gt.Spans[0].ID || hedge.Parent != gt.Spans[0].ID {
		t.Fatalf("attempt spans not parented to the root: %+v %+v", primary, hedge)
	}

	// The winning replica's trace merged in under the hedge's span index:
	// its handler spans nest under the exact attempt that caused them.
	var fastSide *replicaTrace
	for i := range gt.Replicas {
		if gt.Replicas[i].Replica == fast.ts.URL {
			fastSide = &gt.Replicas[i]
		}
	}
	if fastSide == nil {
		t.Fatalf("winning replica missing from merge: %+v", gt.Replicas)
	}
	if fastSide.RemoteParent != hedge.ID {
		t.Fatalf("replica trace remote_parent = %d, want the hedge span %d", fastSide.RemoteParent, hedge.ID)
	}
	if len(fastSide.Spans) == 0 || fastSide.Spans[0].Name != "predict" {
		t.Fatalf("replica-side spans wrong: %+v", fastSide.Spans)
	}
}

// TestGatewayMintsOneID is the trace-fragmentation regression test: a
// request arriving with no X-Request-Id gets exactly one gateway-minted
// ID, which is echoed to the client and delivered to the replica — the
// replica must NOT mint its own.
func TestGatewayMintsOneID(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")
	reps, _, ts := newTestFleet(t, 2, path, dir, func(c *Config) {
		c.Trace = obs.NewTraceSource("gw", 0)
		c.TraceSampleEvery = 1 // sample everything: the trace proves delivery
	})

	resp, body := getWithID(t, ts.URL+"/v1/predict?protein=p1&k=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(id, "gw-") {
		t.Fatalf("client sees %q, want a gateway-minted gw-* ID", id)
	}

	// Exactly one replica handled it, and its trace store holds the
	// gateway's ID — proof the replica adopted rather than minted.
	found := 0
	for _, rep := range reps {
		tresp, _ := getWithID(t, rep.ts.URL+"/v1/traces/"+id, "")
		if tresp.StatusCode == http.StatusOK {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("gateway ID %q found on %d replicas, want exactly 1", id, found)
	}
}

// TestProbeRoundTraces: with 1-in-1 sampling, probe rounds land in the
// gateway's trace store with one child span per probed replica.
func TestProbeRoundTraces(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")
	_, rt, ts := newTestFleet(t, 2, path, dir, func(c *Config) {
		c.TraceSampleEvery = 1
	})
	waitFor(t, 2*time.Second, "a probe-round trace", func() bool {
		for _, s := range rt.tracer.Store().List(0) {
			if s.Root == "probe-round" && s.Spans >= 3 {
				return true
			}
		}
		return false
	})
	_, body := getWithID(t, ts.URL+"/v1/traces?n=5", "")
	if !strings.Contains(string(body), "probe-round") {
		t.Fatalf("trace listing lacks probe rounds:\n%s", body)
	}
}

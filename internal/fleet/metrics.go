package fleet

import (
	"net/http"
	"strings"
	"sync/atomic"

	"lamofinder/internal/obs"
	"lamofinder/internal/serve"
)

// Router-side routes, for the per-route latency histograms. Kept coarser
// than the daemon's: the router's own overhead is what these measure, the
// per-replica upstream histograms live on the members.
const (
	fleetRoutePredict = iota
	fleetRouteMotifs
	fleetRouteHealthz
	fleetRouteFleet
	fleetRouteMetrics
	fleetRouteRollout
	fleetRouteTraces
	fleetRouteOther
	numFleetRoutes
)

var fleetRouteNames = [numFleetRoutes]string{
	"predict", "motifs", "healthz", "fleet", "metrics", "rollout", "traces", "other",
}

func fleetRouteOf(path string) int {
	switch path {
	case "/v1/predict":
		return fleetRoutePredict
	case "/v1/motifs":
		return fleetRouteMotifs
	case "/v1/healthz":
		return fleetRouteHealthz
	case "/v1/fleet":
		return fleetRouteFleet
	case "/v1/metrics", "/metrics":
		return fleetRouteMetrics
	case "/v1/admin/rollout":
		return fleetRouteRollout
	case "/v1/traces":
		return fleetRouteTraces
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		return fleetRouteTraces
	}
	return fleetRouteOther
}

// fleetMetrics holds the router's counters. All fields are atomic; the
// struct is embedded by value in Router and never copied.
type fleetMetrics struct {
	requests  atomic.Int64 // client requests handled by the router
	errors    atomic.Int64 // client responses with status >= 400
	retries   atomic.Int64 // sequential retry attempts launched
	hedges    atomic.Int64 // hedged duplicate requests launched
	hedgeWins atomic.Int64 // requests won by the hedged attempt
	ejects    atomic.Int64 // member transitions into Ejected
	readmits  atomic.Int64 // ejected members readmitted
	rollouts  atomic.Int64 // rolling artifact swaps completed

	lat [numFleetRoutes]obs.Histogram
}

// Snapshot is the JSON body of the router's /v1/metrics. Fleet is always
// true so clients (lamoload) can distinguish a router from a daemon:
// daemon snapshots have no "fleet" key, which decodes as false. Latency
// reuses the daemon's RouteLatency shape, and Upstream merges every
// replica's observed latency into one fleet-wide summary.
type Snapshot struct {
	Fleet       bool                          `json:"fleet"`
	Artifact    string                        `json:"artifact"`
	MixedDigest bool                          `json:"mixed_digest"`
	Requests    int64                         `json:"requests"`
	Errors      int64                         `json:"errors"`
	Retries     int64                         `json:"retries"`
	Hedges      int64                         `json:"hedges"`
	HedgeWins   int64                         `json:"hedge_wins"`
	Ejects      int64                         `json:"ejects"`
	Readmits    int64                         `json:"readmits"`
	Rollouts    int64                         `json:"rollouts"`
	Latency     map[string]serve.RouteLatency `json:"latency"`
	Upstream    serve.RouteLatency            `json:"upstream"`
	Replicas    []MemberStatus                `json:"replicas"`
}

func routeLatencyOf(hs obs.HistSnapshot) serve.RouteLatency {
	return serve.RouteLatency{
		Count:     hs.Count,
		SumMicros: hs.SumMicros,
		P50Micros: hs.Quantile(0.50),
		P90Micros: hs.Quantile(0.90),
		P99Micros: hs.Quantile(0.99),
	}
}

// Metrics assembles the current snapshot.
func (rt *Router) Metrics() Snapshot {
	uniform, mixed := rt.mixedDigest()
	s := Snapshot{
		Fleet:       true,
		Artifact:    uniform,
		MixedDigest: mixed,
		Requests:    rt.met.requests.Load(),
		Errors:      rt.met.errors.Load(),
		Retries:     rt.met.retries.Load(),
		Hedges:      rt.met.hedges.Load(),
		HedgeWins:   rt.met.hedgeWins.Load(),
		Ejects:      rt.met.ejects.Load(),
		Readmits:    rt.met.readmits.Load(),
		Rollouts:    rt.met.rollouts.Load(),
		Latency:     make(map[string]serve.RouteLatency, numFleetRoutes),
	}
	for r := 0; r < numFleetRoutes; r++ {
		hs := rt.met.lat[r].Snapshot()
		if hs.Count == 0 {
			continue
		}
		s.Latency[fleetRouteNames[r]] = routeLatencyOf(hs)
	}
	var merged obs.HistSnapshot
	for _, m := range rt.members {
		merged.Merge(m.lat.Snapshot())
	}
	s.Upstream = routeLatencyOf(merged)
	s.Replicas = rt.fleetStatus().Replicas
	return s
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rt.writeJSON(w, http.StatusOK, rt.Metrics())
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// handleProm serves the fleet metrics in Prometheus text exposition
// format under the lamod_fleet_* namespace, alongside the per-replica up
// gauges and latency histograms. lamod_fleet_mixed_digest is the gauge
// the rollout smoke watches: 1 while live replicas disagree on the
// artifact digest, 0 once the fleet is uniform again.
func (rt *Router) handleProm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s := rt.Metrics()
	buf := make([]byte, 0, 4096)

	counter := func(name, help string, v int64) {
		buf = obs.AppendPromHeader(buf, name, "counter", help)
		buf = obs.AppendPromInt(buf, name, "", v)
	}
	counter("lamod_fleet_requests_total", "Client requests handled by the fleet router.", s.Requests)
	counter("lamod_fleet_errors_total", "Client responses with status >= 400.", s.Errors)
	counter("lamod_fleet_retries_total", "Upstream retry attempts launched.", s.Retries)
	counter("lamod_fleet_hedges_total", "Hedged duplicate upstream requests launched.", s.Hedges)
	counter("lamod_fleet_hedge_wins_total", "Requests answered first by the hedged attempt.", s.HedgeWins)
	counter("lamod_fleet_ejects_total", "Replica ejections after consecutive probe failures.", s.Ejects)
	counter("lamod_fleet_readmits_total", "Ejected replicas readmitted after a successful probe.", s.Readmits)
	counter("lamod_fleet_rollouts_total", "Rolling artifact swaps completed.", s.Rollouts)

	mixed := int64(0)
	if s.MixedDigest {
		mixed = 1
	}
	buf = obs.AppendPromHeader(buf, "lamod_fleet_mixed_digest", "gauge",
		"1 while live replicas serve more than one artifact digest, 0 when uniform.")
	buf = obs.AppendPromInt(buf, "lamod_fleet_mixed_digest", "", mixed)

	buf = obs.AppendPromHeader(buf, "lamod_fleet_replica_up", "gauge",
		"1 when the replica is routable (Ready), 0 otherwise.")
	for _, rep := range s.Replicas {
		up := int64(0)
		if rep.State == "ready" {
			up = 1
		}
		buf = obs.AppendPromInt(buf, "lamod_fleet_replica_up",
			`replica="`+promEscape(rep.Replica)+`"`, up)
	}
	buf = obs.AppendPromHeader(buf, "lamod_fleet_replica_digest_info", "gauge",
		"Constant 1 per replica, labeled with its artifact digest.")
	for _, rep := range s.Replicas {
		buf = obs.AppendPromInt(buf, "lamod_fleet_replica_digest_info",
			`replica="`+promEscape(rep.Replica)+`",digest="`+promEscape(rep.Digest)+`"`, 1)
	}

	buf = obs.AppendPromHeader(buf, "lamod_fleet_upstream_latency_seconds", "histogram",
		"Upstream request latency per replica.")
	for i, m := range rt.members {
		buf = obs.AppendPromHistogram(buf, "lamod_fleet_upstream_latency_seconds",
			`replica="`+promEscape(s.Replicas[i].Replica)+`"`, m.lat.Snapshot())
	}
	buf = obs.AppendPromHeader(buf, "lamod_fleet_route_latency_seconds", "histogram",
		"Router-side request latency per route.")
	for r := 0; r < numFleetRoutes; r++ {
		hs := rt.met.lat[r].Snapshot()
		if hs.Count == 0 {
			continue
		}
		buf = obs.AppendPromHistogram(buf, "lamod_fleet_route_latency_seconds",
			`route="`+fleetRouteNames[r]+`"`, hs)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
}

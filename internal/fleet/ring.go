package fleet

import (
	"sort"
	"strconv"
)

// ringSeed deterministically perturbs every vnode and key hash. A fixed
// compile-time constant — never wall-clock or process entropy — so two
// routers built over the same replica list always agree on key placement,
// and a restarted router sends every protein back to the replica whose
// LRU is already warm with it.
const ringSeed uint64 = 0x9e3779b97f4a7c15

// ringProbes is the probe count for multi-probe owner selection. A plain
// vnode ring's load skew is the variance of random arc lengths —
// relative deviation ~1/sqrt(vnodes), so individual members routinely
// land 20-30% over the even share at 64 vnodes. Multi-probe consistent
// hashing (Mirrokni/Thorup/Zadimoghaddam style) hashes each key at
// ringProbes independent points and picks the vnode with the smallest
// clockwise distance, which concentrates load around the mean (peak about
// 1 + ln(k)/k of average) without adding vnodes — and, unlike bounded-load
// variants, stays a pure function of (key, member set), so it keeps the
// exact minimal-movement property: a probe's distance to a surviving
// member's vnode never changes when another member leaves.
const ringProbes = 21

// hash64 is FNV-64a over s, mixed with the ring seed and finished with
// the splitmix64 avalanche. Plain FNV clusters badly on the short
// "host:port#NN" vnode labels that differ only in their numeric tail; the
// finalizer spreads those across the whole 64-bit ring.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037) ^ ringSeed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 avalanche finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Ring is a consistent-hash ring: each member owns VNodes points on a
// 64-bit circle, and a key belongs to the vnode with the smallest
// clockwise distance from any of the key's ringProbes probe points (see
// winner). Placement is a pure function of the member
// names, so it is identical across runs and across router instances, and
// removing one member moves only the keys that member owned — every other
// key keeps its owner, which is what keeps replica LRUs hot through
// membership churn. Immutable after construction.
type Ring struct {
	members []string // sorted member names; node.member indexes this
	nodes   []ringNode
}

type ringNode struct {
	hash   uint64
	member int32
}

// NewRing builds a ring with vnodes virtual nodes per member (<=0 means
// DefaultVNodes). Member names are deduplicated and sorted, so the input
// order never matters.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, nodes: make([]ringNode, 0, len(uniq)*vnodes)}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.nodes = append(r.nodes, ringNode{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.nodes, func(i, j int) bool {
		if r.nodes[i].hash != r.nodes[j].hash {
			return r.nodes[i].hash < r.nodes[j].hash
		}
		// A 64-bit collision between vnode labels is vanishingly rare but
		// must still order deterministically.
		return r.nodes[i].member < r.nodes[j].member
	})
	return r
}

// Members returns the sorted member names. Callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the index (into Members) of the member owning key.
func (r *Ring) Owner(key string) int {
	if len(r.nodes) == 0 {
		return -1
	}
	return int(r.nodes[r.winner(key)].member)
}

// winner picks the owning vnode for key by multi-probe selection: the
// key hashes at ringProbes points derived from a splitmix64 stream, and
// the vnode with the smallest clockwise distance from any probe wins.
// Ties (astronomically rare) break toward the earliest probe.
func (r *Ring) winner(key string) int {
	base := hash64(key)
	best, bestDist := 0, ^uint64(0)
	for p := 0; p < ringProbes; p++ {
		h := mix64(base + uint64(p)*ringSeed)
		i := r.search(h)
		// Unsigned subtraction wraps, which is exactly the clockwise
		// distance when the search wrapped past the top of the ring.
		if d := r.nodes[i].hash - h; d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// search finds the first vnode at or clockwise of h, wrapping at the top.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].hash >= h })
	if i == len(r.nodes) {
		i = 0
	}
	return i
}

// Preference appends to dst the distinct member indices in ring order
// starting at key's owner: dst[0] is the primary, dst[1] the first
// fallback, and so on through every member. This is the retry and hedge
// order — deterministic for a given key, so retries of the same protein
// always walk the same replica sequence.
func (r *Ring) Preference(key string, dst []int) []int {
	if len(r.nodes) == 0 {
		return dst
	}
	start := r.winner(key)
	var seen uint64 // bitset over member indices; fleets are small
	found := 0
	for i := 0; i < len(r.nodes) && found < len(r.members); i++ {
		n := r.nodes[(start+i)%len(r.nodes)]
		if seen&(1<<uint(n.member)) != 0 {
			continue
		}
		seen |= 1 << uint(n.member)
		dst = append(dst, int(n.member))
		found++
	}
	return dst
}

package fleet

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"lamofinder/internal/obs"
)

// startTrace mints (or adopts) the gateway's request ID and decides span
// sampling for one routed request. The ID is minted exactly once, here —
// every retry and hedge attempt reuses it, which is what lets the access
// logs on the gateway and all touched replicas join on one key instead of
// each replica minting its own fragment. Sampling is forced by a valid
// client X-Request-Id or an X-Trace-Sample: 1 header; otherwise the
// deterministic head sampler decides. Returns a nil trace when unsampled
// (every obs method no-ops on nil).
func (rt *Router) startTrace(r *http.Request, root string) (string, *obs.Trace) {
	id := r.Header.Get("X-Request-Id")
	forced := obs.ValidTraceID(id)
	if !forced {
		id = rt.trace.Next()
	}
	if !forced && r.Header.Get(obs.HeaderTraceSample) == "1" {
		forced = true
	}
	if !rt.tracer.Sample(forced) {
		return id, nil
	}
	return id, rt.tracer.Start(id, obs.NoSpan, root)
}

// replicaTrace is one replica's contribution to a merged trace: the spans
// it recorded under the shared trace ID, plus the gateway span index they
// nest under (the attempt span propagated via X-Trace-Context).
type replicaTrace struct {
	Replica      string        `json:"replica"`
	RemoteParent int32         `json:"remote_parent"`
	Spans        []obs.SpanOut `json:"spans"`
}

// gatewayTrace is the body of the gateway's GET /v1/traces/{id}: the
// gateway's own span tree plus every replica-side tree recorded under the
// same ID, fetched live from each replica's trace store.
type gatewayTrace struct {
	Trace    string         `json:"trace"`
	Dropped  int32          `json:"dropped_spans,omitempty"`
	Spans    []obs.SpanOut  `json:"spans"`
	Replicas []replicaTrace `json:"replicas"`
}

// handleTraces serves the gateway's trace store. The listing mirrors the
// daemon's; fetching one trace by ID additionally asks every replica for
// its same-ID trace and merges the results, so one GET returns the whole
// cross-process tree: gateway routing spans, each attempt, and the
// replica handler/operator spans nested under the attempt that caused
// them. Replicas that never saw the request (or evicted the trace) are
// simply absent.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces")
	id = strings.TrimPrefix(id, "/")
	if id == "" {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				rt.writeError(w, http.StatusBadRequest, "n must be a non-negative integer, got %q", raw)
				return
			}
			n = v
		}
		rt.writeJSON(w, http.StatusOK, struct {
			Traces []obs.TraceSummary `json:"traces"`
		}{Traces: rt.tracer.Store().List(n)})
		return
	}
	out, ok := rt.tracer.Store().Get(id)
	if !ok {
		rt.writeError(w, http.StatusNotFound, "no stored trace %q (the store keeps the most recent %d sampled traces)", id, rt.tracer.Store().Cap())
		return
	}
	merged := gatewayTrace{
		Trace:    out.Trace,
		Dropped:  out.Dropped,
		Spans:    out.Spans,
		Replicas: []replicaTrace{},
	}
	for _, m := range rt.members {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
		var rto obs.TraceOut
		err := rt.getJSON(ctx, m.addr+"/v1/traces/"+id, &rto)
		cancel()
		if err != nil {
			continue
		}
		merged.Replicas = append(merged.Replicas, replicaTrace{
			Replica:      m.addr,
			RemoteParent: rto.RemoteParent,
			Spans:        rto.Spans,
		})
	}
	rt.writeJSON(w, http.StatusOK, merged)
}

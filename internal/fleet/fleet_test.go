package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/obs"
	"lamofinder/internal/predict"
	"lamofinder/internal/serve"
)

// saveExample builds the paper-example artifact with the given note and
// writes it to dir. The note is part of the identity digest, so distinct
// notes are distinct artifact versions — the two sides of a rollout.
func saveExample(t testing.TB, dir, note string) (path, digest string) {
	t.Helper()
	pe := dataset.NewPaperExample()
	o := pe.Ontology
	l := label.NewLabelerWithCounts(pe.Corpus, pe.Direct, label.Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	task := predict.NewTask(pe.Network, o.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, tm := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(tm))
		}
	}
	names := make([]string, o.NumTerms())
	for tm := range names {
		names[tm] = o.ID(tm)
	}
	art, err := artifact.Build("paper-example", "fleet test fixture",
		task, names, pe.Corpus, pe.Direct, 30, motifs)
	if err != nil {
		t.Fatal(err)
	}
	art.Note = note
	d, err := art.Digest()
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, strings.ReplaceAll(note, " ", "_")+".lamoart")
	if err := art.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// replica is one live lamod daemon behind an httptest listener.
type replica struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newReplica(t testing.TB, artPath, reloadDir string) *replica {
	t.Helper()
	art, err := artifact.LoadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(art, serve.Config{AllowReload: true, ReloadDir: reloadDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &replica{srv: s, ts: ts}
}

// newTestFleet spins up n replicas over artPath plus a router, with test-
// speed probe timing. The router's probes are started and joined on
// cleanup.
func newTestFleet(t testing.TB, n int, artPath, reloadDir string, tune func(*Config)) ([]*replica, *Router, *httptest.Server) {
	t.Helper()
	reps := make([]*replica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newReplica(t, artPath, reloadDir)
		urls[i] = reps[i].ts.URL
	}
	cfg := Config{
		Replicas:      urls,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
		BackoffBase:   50 * time.Millisecond,
		HedgeMax:      -1, // hedging off unless a test opts in
		Logger:        obs.NewLogger(io.Discard, obs.LevelOff, obs.FormatLogfmt),
	}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.StartProbes()
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return reps, rt, ts
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url) //nolint — test client
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetAffinityRouting: repeated requests for one protein land on one
// replica (consistent hashing), and the router's response is byte-
// identical to asking that fleet's daemons directly.
func TestFleetAffinityRouting(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")
	reps, rt, ts := newTestFleet(t, 3, path, dir, nil)

	query := "/v1/predict?protein=p1&k=5"
	_, want := get(t, reps[0].ts.URL+query)
	for i := 0; i < 30; i++ {
		status, body := get(t, ts.URL+query)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("request %d: routed bytes differ from direct replica bytes", i)
		}
	}
	served := 0
	for _, m := range rt.members {
		if m.requests.Load() > 0 {
			served++
		}
	}
	if served != 1 {
		t.Fatalf("one protein's requests spread over %d replicas, want 1", served)
	}
}

// TestFleetKillReplicaMidLoad: with a replica killed under continuous
// load, every client request still succeeds — retries absorb the failure
// — and the dead replica is ejected, then the fleet keeps serving.
func TestFleetKillReplicaMidLoad(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")
	reps, rt, ts := newTestFleet(t, 3, path, dir, nil)

	queries := make([]string, 0, 22)
	for p := 1; p <= 22; p++ {
		queries = append(queries, fmt.Sprintf("/v1/predict?protein=p%d&k=5", p))
	}

	var stop atomic.Bool
	var failures, successes atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				resp, err := client.Get(ts.URL + queries[(i+w)%len(queries)])
				if err != nil {
					failures.Add(1)
					continue
				}
				_, rerr := io.Copy(io.Discard, resp.Body)
				cerr := resp.Body.Close()
				if rerr != nil || cerr != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				successes.Add(1)
			}
		}(w)
	}

	// Let load flow to all three, then kill one replica abruptly.
	waitFor(t, 5*time.Second, "warm-up traffic", func() bool { return successes.Load() > 50 })
	reps[1].ts.CloseClientConnections()
	reps[1].ts.Close()

	// The prober must eject it (two failed probes at 25ms apart).
	waitFor(t, 5*time.Second, "eject of killed replica", func() bool {
		for _, m := range rt.members {
			if m.state.Load() == memberEjected {
				return true
			}
		}
		return false
	})
	// Keep serving degraded for a while longer.
	pre := successes.Load()
	waitFor(t, 5*time.Second, "post-kill traffic", func() bool { return successes.Load() > pre+100 })
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client requests failed across the replica kill; retries must absorb all of them", n)
	}
	if rt.met.retries.Load() == 0 {
		t.Fatal("no retries recorded, yet a replica died under load — the kill was not exercised")
	}
	_, fl := get(t, ts.URL+"/v1/fleet")
	if !strings.Contains(string(fl), `"state":"ejected"`) {
		t.Fatalf("fleet table does not show the ejected replica: %s", fl)
	}
}

// TestFleetRollingRollout is the tentpole e2e: three replicas serving
// version A under continuous load, a rolling rollout to version B, zero
// non-200 responses throughout, the mixed-digest window observable in
// /metrics while it is open and closed (gauge 0, uniform digest B) after,
// and post-rollout routed bytes byte-identical to a fresh single daemon
// serving B.
func TestFleetRollingRollout(t *testing.T) {
	dir := t.TempDir()
	pathA, digA := saveExample(t, dir, "version a")
	pathB, digB := saveExample(t, dir, "version b")
	if digA == digB {
		t.Fatal("fixture notes must produce distinct digests")
	}
	_, rt, ts := newTestFleet(t, 3, pathA, dir, func(c *Config) {
		// Widen the mixed-digest window so the poller below reliably
		// observes it.
		c.RolloutSettle = 60 * time.Millisecond
	})

	queries := make([]string, 0, 22)
	for p := 1; p <= 22; p++ {
		queries = append(queries, fmt.Sprintf("/v1/predict?protein=p%d&k=5", p))
	}

	var stop, sawMixedGauge atomic.Bool
	var failures atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				resp, err := client.Get(ts.URL + queries[(i+w)%len(queries)])
				if err != nil {
					failures.Add(1)
					continue
				}
				_, rerr := io.Copy(io.Discard, resp.Body)
				cerr := resp.Body.Close()
				if rerr != nil || cerr != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}
	// A poller watching the Prometheus endpoint for the mixed-digest gauge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_, b := get(t, ts.URL+"/metrics")
			if strings.Contains(string(b), "lamod_fleet_mixed_digest 1") {
				sawMixedGauge.Store(true)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	body, err := json.Marshal(RolloutRequest{Artifact: pathB, Digest: digB})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/admin/rollout", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout: status %d: %s", resp.StatusCode, rb)
	}
	var res RolloutResult
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatal(err)
	}
	if res.Artifact != digB || len(res.Steps) != 3 {
		t.Fatalf("rollout result %+v, want 3 steps to %s", res, digB)
	}
	for _, st := range res.Steps {
		if st.Previous != digA || st.Artifact != digB {
			t.Fatalf("step %+v, want previous %s artifact %s", st, digA, digB)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests during the rolling rollout, want 0", n)
	}
	if !sawMixedGauge.Load() {
		t.Fatal("lamod_fleet_mixed_digest never read 1 during the rollout window")
	}
	if rt.met.rollouts.Load() != 1 {
		t.Fatalf("rollouts counter = %d, want 1", rt.met.rollouts.Load())
	}

	// After the rollout: gauge back to 0, fleet uniform on B.
	waitFor(t, 2*time.Second, "uniform digest after rollout", func() bool {
		uniform, mixed := rt.mixedDigest()
		return !mixed && uniform == digB
	})
	_, prom := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(prom), "lamod_fleet_mixed_digest 0") {
		t.Fatalf("mixed-digest gauge did not clear: %s", prom)
	}

	// Routed bytes must equal a fresh single daemon serving B.
	artB, err := artifact.LoadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	freshSrv, err := serve.New(artB, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := httptest.NewServer(freshSrv.Handler())
	defer fresh.Close()
	for _, q := range queries {
		_, want := get(t, fresh.URL+q)
		status, got := get(t, ts.URL+q)
		if status != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("post-rollout %s: status %d, bytes differ from fresh serve of B", q, status)
		}
	}

	// Healthz carries the uniform digest (what lamoload's identity check
	// greps for) and full readiness.
	_, hz := get(t, ts.URL+"/v1/healthz")
	if !strings.Contains(string(hz), digB) || !strings.Contains(string(hz), `"ready":3`) {
		t.Fatalf("fleet healthz after rollout: %s", hz)
	}
}

// TestFleetHedging: when a key's owner stalls, the hedged duplicate on
// the next replica answers and the client never sees the stall.
func TestFleetHedging(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveExample(t, dir, "version a")

	// Two real replicas; the slow one sits behind a delaying proxy.
	fast := newReplica(t, path, dir)
	slowBase := newReplica(t, path, dir)
	stall := 300 * time.Millisecond
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/predict") {
			time.Sleep(stall)
		}
		resp, err := http.Get(slowBase.ts.URL + r.URL.RequestURI()) //nolint — test proxy
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer slow.Close()

	rt, err := New(Config{
		Replicas:      []string{fast.ts.URL, slow.URL},
		ProbeInterval: 25 * time.Millisecond,
		HedgeMin:      time.Millisecond,
		HedgeMax:      20 * time.Millisecond,
		Logger:        obs.NewLogger(io.Discard, obs.LevelOff, obs.FormatLogfmt),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.StartProbes()
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find a protein owned by the slow replica.
	slowIdx := -1
	for i, m := range rt.ring.Members() {
		if m == slow.URL {
			slowIdx = i
		}
	}
	query := ""
	for p := 1; p <= 22; p++ {
		k := fmt.Sprintf("p%d", p)
		if rt.ring.Owner(k) == slowIdx {
			query = "/v1/predict?protein=" + k + "&k=5"
			break
		}
	}
	if query == "" {
		t.Fatal("no protein hashes to the slow replica; fixture assumption broken")
	}

	start := time.Now()
	status, _ := get(t, ts.URL+query)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged request: status %d", status)
	}
	if elapsed >= stall {
		t.Fatalf("hedged request took %s, at least the full stall %s — hedge did not fire", elapsed, stall)
	}
	if rt.met.hedges.Load() == 0 || rt.met.hedgeWins.Load() == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both > 0",
			rt.met.hedges.Load(), rt.met.hedgeWins.Load())
	}
}

// TestFleetMetricsShape: the JSON snapshot self-identifies as a fleet
// (lamoload keys on this) and carries upstream latency plus the replica
// table.
func TestFleetMetricsShape(t *testing.T) {
	dir := t.TempDir()
	path, dig := saveExample(t, dir, "version a")
	_, rt, ts := newTestFleet(t, 2, path, dir, nil)

	waitFor(t, 2*time.Second, "probe digest", func() bool {
		uniform, _ := rt.mixedDigest()
		return uniform == dig
	})
	for i := 0; i < 5; i++ {
		if status, _ := get(t, ts.URL+"/v1/predict?protein=p1&k=3"); status != http.StatusOK {
			t.Fatalf("predict status %d", status)
		}
	}
	_, body := get(t, ts.URL+"/v1/metrics")
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Fleet {
		t.Fatal("snapshot fleet marker false")
	}
	if snap.Artifact != dig || snap.MixedDigest {
		t.Fatalf("snapshot artifact %q mixed=%v, want uniform %s", snap.Artifact, snap.MixedDigest, dig)
	}
	if snap.Upstream.Count == 0 {
		t.Fatal("no upstream latency recorded after routed traffic")
	}
	if len(snap.Replicas) != 2 {
		t.Fatalf("snapshot lists %d replicas, want 2", len(snap.Replicas))
	}
	if _, ok := snap.Latency["predict"]; !ok {
		t.Fatalf("snapshot latency map lacks predict: %v", snap.Latency)
	}

	// A daemon's snapshot decoded with the fleet shape stays Fleet=false —
	// the discrimination lamoload relies on.
	var daemonAsFleet Snapshot
	if err := json.Unmarshal([]byte(`{"requests":1}`), &daemonAsFleet); err != nil {
		t.Fatal(err)
	}
	if daemonAsFleet.Fleet {
		t.Fatal("daemon-shaped snapshot must not decode as a fleet")
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lamofinder/internal/artifact"
)

// saveExample writes the paper-example artifact to dir with the given
// note. The note rides inside the identity digest, so two notes yield two
// distinct artifact versions of the same underlying model — exactly what
// a rolling rollout swaps between.
func saveExample(t testing.TB, dir, note string) (path, digest string) {
	t.Helper()
	art, _, _ := exampleModel(t)
	art.Note = note
	d, err := art.Digest()
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, strings.ReplaceAll(note, " ", "_")+".lamoart")
	if err := art.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// newHTTPTestServer mounts an already-constructed Server (newTestServer
// builds its own; reload tests need handles on the Server too).
func newHTTPTestServer(t testing.TB, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postReload(t testing.TB, url, artPath, digest string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(reloadRequest{Artifact: artPath, Digest: digest})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/admin/reload", "application/json", bytes.NewReader(body)) //nolint — test client
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestReloadSwapsModelAtomically is the single-replica half of the rollout
// story: after POST /v1/admin/reload the daemon serves the new artifact's
// bytes — byte-identical to a fresh daemon over that artifact — and
// healthz reports the new digest with ready true.
func TestReloadSwapsModelAtomically(t *testing.T) {
	dir := t.TempDir()
	pathA, digA := saveExample(t, dir, "version a")
	pathB, digB := saveExample(t, dir, "version b")
	if digA == digB {
		t.Fatalf("distinct notes must yield distinct digests, both %s", digA)
	}

	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)
	query := "/v1/predict?protein=p1&protein=p5&k=5"

	status, before := get(t, ts.URL+query)
	if status != http.StatusOK {
		t.Fatalf("pre-reload predict: status %d: %s", status, before)
	}
	if !strings.Contains(string(before), digA) {
		t.Fatalf("pre-reload response does not carry digest %s: %s", digA, before)
	}

	status, body := postReload(t, ts.URL, pathB, digB)
	if status != http.StatusOK {
		t.Fatalf("reload: status %d: %s", status, body)
	}
	var res ReloadResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Previous != digA || res.Artifact != digB {
		t.Fatalf("reload result %+v, want previous %s artifact %s", res, digA, digB)
	}
	if got := s.Digest(); got != digB {
		t.Fatalf("Digest() = %s after reload, want %s", got, digB)
	}
	if !s.Ready() {
		t.Fatal("server not ready after completed reload")
	}

	// Served bytes must be byte-identical to a fresh daemon over B.
	artB, err := artifact.LoadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(artB, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tsFresh := newHTTPTestServer(t, fresh)
	_, want := get(t, tsFresh.URL+query)
	_, after := get(t, ts.URL+query)
	if !bytes.Equal(after, want) {
		t.Fatalf("post-reload bytes differ from fresh serve of B:\n%s\nvs\n%s", after, want)
	}

	// healthz reflects the new identity and readiness.
	_, hz := get(t, ts.URL+"/v1/healthz")
	if !strings.Contains(string(hz), `"ready":true`) || !strings.Contains(string(hz), digB) {
		t.Fatalf("healthz after reload: %s", hz)
	}
}

// TestReloadDigestMismatchKeepsOldModel: a digest-verified reload against
// the wrong file must refuse the swap and keep serving the old model.
func TestReloadDigestMismatchKeepsOldModel(t *testing.T) {
	dir := t.TempDir()
	pathA, digA := saveExample(t, dir, "version a")
	pathB, _ := saveExample(t, dir, "version b")

	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)

	// Ask for B's file but demand A's digest: refused, old model intact.
	status, body := postReload(t, ts.URL, pathB, digA)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched reload: status %d: %s", status, body)
	}
	if got := s.Digest(); got != digA {
		t.Fatalf("digest changed to %s after refused reload, want %s", got, digA)
	}
	if !s.Ready() {
		t.Fatal("server must return to ready after a refused reload")
	}
}

// TestReloadPathOutsideReloadDir: with ReloadDir set, paths outside it are
// rejected before any file I/O.
func TestReloadPathOutsideReloadDir(t *testing.T) {
	dir := t.TempDir()
	outside := t.TempDir()
	pathA, _ := saveExample(t, dir, "version a")
	pathOut, digOut := saveExample(t, outside, "version b")

	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true, ReloadDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)
	status, body := postReload(t, ts.URL, pathOut, digOut)
	if status != http.StatusForbidden {
		t.Fatalf("outside-dir reload: status %d: %s", status, body)
	}
	status, body = postReload(t, ts.URL, filepath.Join(dir, "..", filepath.Base(pathOut)), digOut)
	if status != http.StatusForbidden {
		t.Fatalf("dot-dot reload: status %d: %s", status, body)
	}
}

// TestReloadDisabledByDefault: without AllowReload the admin route does
// not exist at all.
func TestReloadDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	pathA, digA := saveExample(t, dir, "version a")
	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)
	status, _ := postReload(t, ts.URL, pathA, digA)
	if status != http.StatusNotFound {
		t.Fatalf("reload on a non-reload server: status %d, want 404", status)
	}
}

// TestReloadInFlightConflict: a second reload while one is running gets
// 409 and changes nothing.
func TestReloadInFlightConflict(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := saveExample(t, dir, "version a")
	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight reload by holding the gate.
	s.reloading.Store(true)
	if _, err := s.Reload(pathA, ""); err != ErrReloadInFlight {
		t.Fatalf("Reload under in-flight gate: %v, want ErrReloadInFlight", err)
	}
	s.reloading.Store(false)
	ts := newHTTPTestServer(t, s)
	s.reloading.Store(true)
	status, body := postReload(t, ts.URL, pathA, "")
	if status != http.StatusConflict {
		t.Fatalf("concurrent reload: status %d: %s", status, body)
	}
	s.reloading.Store(false)
}

// TestReadinessFalseWhileReloading pins the liveness/readiness split: the
// healthz body flips ready:false while a reload is in flight and back to
// ready:true after, while status stays "ok" throughout (the process is
// alive either way — that is what a router drains on).
func TestReadinessFalseWhileReloading(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := saveExample(t, dir, "version a")
	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)
	_, hz := get(t, ts.URL+"/v1/healthz")
	if !strings.Contains(string(hz), `"status":"ok"`) || !strings.Contains(string(hz), `"ready":true`) {
		t.Fatalf("healthz at rest: %s", hz)
	}
	// The reload window is too short to observe over HTTP reliably, so pin
	// the readiness gate directly: this is the exact state the handler is
	// in between Reload's ready.Store(false) and its deferred restore.
	s.ready.Store(false)
	_, hz = get(t, ts.URL+"/v1/healthz")
	if !strings.Contains(string(hz), `"status":"ok"`) || !strings.Contains(string(hz), `"ready":false`) {
		t.Fatalf("healthz mid-reload: %s", hz)
	}
	s.ready.Store(true)
}

// TestReloadUnderLoadZeroErrors hammers /v1/predict from several
// goroutines while the artifact is swapped back and forth; every response
// must be 200 and must be byte-identical to one of the two versions'
// canonical responses — never an error, never a cross-version hybrid.
func TestReloadUnderLoadZeroErrors(t *testing.T) {
	dir := t.TempDir()
	pathA, digA := saveExample(t, dir, "version a")
	pathB, digB := saveExample(t, dir, "version b")
	artA, err := artifact.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(artA, Config{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, s)
	query := "/v1/predict?protein=p1&protein=p5&k=5"

	// Canonical bytes for both versions, from fresh servers.
	canon := make(map[string]bool, 2)
	for _, p := range []string{pathA, pathB} {
		art, err := artifact.LoadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(art, Config{})
		if err != nil {
			t.Fatal(err)
		}
		tsf := newHTTPTestServer(t, fresh)
		_, b := get(t, tsf.URL+query)
		canon[string(b)] = true
	}

	var stop atomic.Bool
	var failures atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := client.Get(ts.URL + query)
				if err != nil {
					failures.Add(1)
					continue
				}
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				cerr := resp.Body.Close()
				if rerr != nil || cerr != nil || resp.StatusCode != http.StatusOK || !canon[buf.String()] {
					failures.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		path, dig := pathB, digB
		if i%2 == 1 {
			path, dig = pathA, digA
		}
		if _, err := s.Reload(path, dig); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed or hybrid responses during reload churn", n)
	}
	if fmt.Sprint(s.Digest()) != digA {
		t.Fatalf("final digest %s, want %s", s.Digest(), digA)
	}
}

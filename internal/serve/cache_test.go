package serve

import (
	"errors"
	"sync"
	"testing"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // touch a: now b is oldest
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestLRUCacheUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("a", 2)
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
	if v, _ := c.get("a"); v.(int) != 2 {
		t.Fatalf("a = %v", v)
	}
}

func TestFlightGroupDedup(t *testing.T) {
	g := newFlightGroup()
	const callers = 16
	var computed int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]any, callers)
	shares := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.do("key", func() (any, error) {
				computed++ // safe: only one caller runs fn while the rest wait
				<-gate
				return "result", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shares[i] = v, shared
		}(i)
	}
	close(gate)
	wg.Wait()
	if computed == 0 {
		t.Fatal("fn never ran")
	}
	sharedCount := 0
	for i := range vals {
		if vals[i] != "result" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if shares[i] {
			sharedCount++
		}
	}
	if sharedCount+computed != callers {
		t.Fatalf("computed %d + shared %d != %d callers", computed, sharedCount, callers)
	}
}

func TestFlightGroupErrorShared(t *testing.T) {
	g := newFlightGroup()
	want := errors.New("boom")
	_, err, _ := g.do("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	// Key is released after completion: a later call recomputes.
	v, err, shared := g.do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 || shared {
		t.Fatalf("recompute: %v, %v, %v", v, err, shared)
	}
}

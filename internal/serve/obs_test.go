package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"lamofinder/internal/obs"
)

// obsTestServer builds a server with full observability on — JSON access
// logs into buf, a seeded trace source — and returns it with its test
// listener.
func obsTestServer(t *testing.T, buf *lockedBuffer) (*Server, *httptest.Server) {
	t.Helper()
	art, _, _ := exampleModel(t)
	s, err := New(reload(t, art), Config{
		Logger: obs.NewLogger(buf, obs.LevelInfo, obs.FormatJSON),
		Trace:  obs.NewTraceSource("t", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getWithHeader(t *testing.T, url, traceID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "" {
		req.Header.Set("X-Request-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTraceIDEchoAndGeneration: valid client IDs are echoed verbatim,
// invalid or absent ones are replaced from the seeded source, and every
// response carries exactly one X-Request-Id.
func TestTraceIDEchoAndGeneration(t *testing.T) {
	var buf lockedBuffer
	_, ts := obsTestServer(t, &buf)
	url := ts.URL + "/v1/predict?protein=p1&k=3"

	resp := getWithHeader(t, url, "client-abc.1")
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc.1" {
		t.Fatalf("valid client id not echoed: %q", got)
	}

	resp = getWithHeader(t, url, "")
	if got := resp.Header.Get("X-Request-Id"); got != "t-1" {
		t.Fatalf("generated id = %q, want t-1 from the seeded source", got)
	}

	resp = getWithHeader(t, url, "bad id with spaces")
	if got := resp.Header.Get("X-Request-Id"); got != "t-2" {
		t.Fatalf("invalid client id not replaced: %q", got)
	}
}

// TestAccessLogLines: each request produces one structured access line
// carrying its trace ID, route, status and duration, flushed by Close.
// Predict requests with a client X-Request-Id are force-sampled, so they
// additionally emit one trace-summary line under the same ID.
func TestAccessLogLines(t *testing.T) {
	var buf lockedBuffer
	s, ts := obsTestServer(t, &buf)
	getWithHeader(t, ts.URL+"/v1/predict?protein=p1&k=3", "want-this-id")
	getWithHeader(t, ts.URL+"/v1/predict?protein=nonexistent", "want-err-id")
	getWithHeader(t, ts.URL+"/v1/healthz", "")
	s.Close()

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	type logLine struct {
		Msg    string `json:"msg"`
		Trace  string `json:"trace"`
		Method string `json:"method"`
		Route  string `json:"route"`
		Root   string `json:"root"`
		Spans  int    `json:"spans"`
		Status int    `json:"status"`
		DurUs  int64  `json:"dur_us"`
	}
	byTrace := map[string]logLine{}
	traceByID := map[string]logLine{}
	for _, line := range lines {
		var al logLine
		if err := json.Unmarshal([]byte(line), &al); err != nil {
			t.Fatalf("log line is not valid JSON: %v (%q)", err, line)
		}
		switch al.Msg {
		case "access":
			if al.Method != "GET" {
				t.Fatalf("unexpected access line: %+v", al)
			}
			byTrace[al.Trace] = al
		case "trace":
			traceByID[al.Trace] = al
		default:
			t.Fatalf("unexpected log line: %+v", al)
		}
	}
	if len(byTrace) != 3 {
		t.Fatalf("access log has %d request lines, want 3:\n%s", len(byTrace), out)
	}
	ok := byTrace["want-this-id"]
	if ok.Route != "predict" || ok.Status != http.StatusOK {
		t.Fatalf("predict access line wrong: %+v", ok)
	}
	bad := byTrace["want-err-id"]
	if bad.Status != http.StatusNotFound {
		t.Fatalf("error access line wrong: %+v", bad)
	}
	if hz := byTrace["t-1"]; hz.Route != "healthz" {
		t.Fatalf("healthz line missing or wrong: %+v", byTrace)
	}
	// Both predict requests carried valid client IDs, so both were force
	// sampled: one trace-summary line each, same ID as the access line.
	ts1 := traceByID["want-this-id"]
	if ts1.Root != "predict" || ts1.Spans < 3 {
		t.Fatalf("predict trace summary wrong: %+v", ts1)
	}
	if _, found := traceByID["want-err-id"]; !found {
		t.Fatalf("error request missing its trace summary: %+v", traceByID)
	}
	if s.Metrics().AccessLogDropped != 0 {
		t.Fatal("unloaded server dropped access records")
	}
}

// promLine is the shape every non-comment exposition line must match —
// the same regex scripts/serve_smoke.sh enforces.
var promLine = regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? [0-9.e+-]+$`)

// TestPromEndpoint: /metrics parses line-by-line, carries the counters
// and a non-empty predict histogram, and its histogram count matches the
// JSON snapshot's.
func TestPromEndpoint(t *testing.T) {
	var buf lockedBuffer
	s, ts := obsTestServer(t, &buf)
	for i := 0; i < 3; i++ {
		getWithHeader(t, ts.URL+"/v1/predict?protein=p1&k=3", "")
	}
	resp := getWithHeader(t, ts.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	sawBucket := false
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("exposition line does not parse: %q", line)
		}
		if strings.HasPrefix(line, `lamod_request_duration_seconds_bucket{route="predict",le="+Inf"}`) {
			sawBucket = true
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("predict +Inf bucket is zero after requests: %q", line)
			}
		}
	}
	if !sawBucket {
		t.Fatalf("no predict histogram in exposition:\n%s", text)
	}
	for _, name := range []string{
		"lamod_requests_total", "lamod_errors_total", "lamod_goroutines",
		"lamod_heap_alloc_bytes", "lamod_gc_pause_seconds_total", "lamod_access_log_dropped_total",
	} {
		if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
			t.Fatalf("exposition missing %s:\n%s", name, text)
		}
	}

	snap := s.Metrics()
	if lat, okRoute := snap.Latency["predict"]; !okRoute || lat.Count != 3 {
		t.Fatalf("JSON latency snapshot disagrees: %+v", snap.Latency)
	}
}

// TestMetricsJSONCompat: every pre-observability field of /v1/metrics is
// still present under its original key, and the new fields are additive.
func TestMetricsJSONCompat(t *testing.T) {
	var buf lockedBuffer
	_, ts := obsTestServer(t, &buf)
	getWithHeader(t, ts.URL+"/v1/predict?protein=p1&k=3", "")
	resp := getWithHeader(t, ts.URL+"/v1/metrics", "")
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "predictions", "errors", "index_hits", "cache_hits",
		"cache_misses", "singleflight_shared", "latency_micros_total",
		"cache_entries", "access_log_dropped", "latency",
	} {
		if _, okKey := raw[key]; !okKey {
			t.Fatalf("/v1/metrics lost field %q: %v", key, raw)
		}
	}
	var lat map[string]RouteLatency
	if err := json.Unmarshal(raw["latency"], &lat); err != nil {
		t.Fatal(err)
	}
	p, okLat := lat["predict"]
	if !okLat || p.Count != 1 || p.P50Micros <= 0 || p.P99Micros < p.P50Micros {
		t.Fatalf("predict route latency implausible: %+v", p)
	}
}

// TestLatencyHistogramSumMatchesLegacyField: latency_micros_total must
// equal the sum over the per-route histograms, preserving its meaning of
// "summed request wall time".
func TestLatencyHistogramSumMatchesLegacyField(t *testing.T) {
	var buf lockedBuffer
	s, ts := obsTestServer(t, &buf)
	getWithHeader(t, ts.URL+"/v1/predict?protein=p1&k=3", "")
	getWithHeader(t, ts.URL+"/v1/healthz", "")
	snap := s.Metrics()
	var sum int64
	for _, rl := range snap.Latency {
		sum += rl.SumMicros
	}
	if snap.LatencyMicros != sum {
		t.Fatalf("latency_micros_total %d != per-route sum %d", snap.LatencyMicros, sum)
	}
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2", snap.Requests)
	}
}

// lockedBuffer is a bytes.Buffer safe for the drain goroutine + test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

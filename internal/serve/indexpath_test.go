package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"lamofinder/internal/artifact"
)

// indexedModel returns the paper-example artifact with its score index
// built and round-tripped through the v2 encoding, alongside the same
// model as a v1 (index-free) artifact.
func indexedModel(t testing.TB) (v2, v1 *artifact.Artifact) {
	t.Helper()
	art, _, _ := exampleModel(t)
	v1 = reload(t, art)
	art.BuildIndex(2)
	v2 = reload(t, art)
	if v2.Index == nil {
		t.Fatal("index lost through encode/decode")
	}
	return v2, v1
}

// TestIndexedServesIdenticalBytes is the acceptance gate for the serve hot
// path: a v2 (indexed) artifact and the same model as a v1 artifact must
// produce byte-identical /v1/predict responses for every protein and k —
// and since TestPredictMatchesOfflineScorer pins the v1 server to the
// offline predictfn scoring path, the indexed bytes match offline too.
// The artifact digest is the one legitimate difference (the v2 encoding
// includes the index, so the model identity changes); it is spliced to a
// placeholder before comparing, and everything else must match exactly.
func TestIndexedServesIdenticalBytes(t *testing.T) {
	v2, v1 := indexedModel(t)
	sv2 := newTestServer(t, v2, Config{})
	sv1 := newTestServer(t, v1, Config{Parallelism: 4})
	d2, err := v2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := v1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < v2.Graph.N(); p++ {
		name := v2.Graph.Name(p)
		for _, k := range []int{1, 3, 7, 0} {
			q := fmt.Sprintf("/v1/predict?protein=%s&k=%d", name, k)
			st2, b2 := get(t, sv2.URL+q)
			st1, b1 := get(t, sv1.URL+q)
			if st2 != http.StatusOK || st1 != http.StatusOK {
				t.Fatalf("%s k=%d: status %d vs %d", name, k, st2, st1)
			}
			// The digest is the only legitimate difference: v2 bytes include
			// the index, so the model identity differs. Splice it out.
			b2n := bytes.Replace(b2, []byte(d2), []byte("DIGEST"), 1)
			b1n := bytes.Replace(b1, []byte(d1), []byte("DIGEST"), 1)
			if !bytes.Equal(b2n, b1n) {
				t.Fatalf("%s k=%d: indexed response differs from fallback:\n%s\nvs\n%s", name, k, b2, b1)
			}
		}
	}
}

// TestIndexedBatchDeterministicAcrossParallelism mirrors the v1
// determinism gate on the index path: identical bytes across runs and
// Parallelism settings (the index path never touches the worker pool, but
// the config must not change bytes either way).
func TestIndexedBatchDeterministicAcrossParallelism(t *testing.T) {
	v2, _ := indexedModel(t)
	query := "/v1/predict?protein=p1&protein=p5&protein=p13&k=5"
	var bodies [][]byte
	for _, parallelism := range []int{1, 4} {
		ts := newTestServer(t, v2, Config{Parallelism: parallelism})
		for run := 0; run < 2; run++ {
			status, body := get(t, ts.URL+query)
			if status != http.StatusOK {
				t.Fatalf("parallelism %d run %d: status %d: %s", parallelism, run, status, body)
			}
			bodies = append(bodies, body)
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}
}

// TestIndexHitMetrics: the index path counts hits and never touches the
// fallback cache; the v1 path reports zero index hits.
func TestIndexHitMetrics(t *testing.T) {
	v2, v1 := indexedModel(t)
	s2, err := New(v2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for i := 0; i < 2; i++ {
		if status, body := get(t, ts2.URL+"/v1/predict?protein=p1&protein=p2&k=3"); status != http.StatusOK {
			t.Fatalf("indexed predict: %d: %s", status, body)
		}
	}
	m := s2.Metrics()
	if m.IndexHits != 4 || m.Predictions != 4 {
		t.Fatalf("indexed metrics: %+v", m)
	}
	if m.CacheHits != 0 || m.CacheMisses != 0 || m.CacheEntries != 0 {
		t.Fatalf("index path touched the fallback cache: %+v", m)
	}

	s1, err := New(v1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	if status, body := get(t, ts1.URL+"/v1/predict?protein=p1&k=3"); status != http.StatusOK {
		t.Fatalf("fallback predict: %d: %s", status, body)
	}
	if m := s1.Metrics(); m.IndexHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("fallback metrics: %+v", m)
	}
	if s2.Indexed() == s1.Indexed() {
		t.Fatal("Indexed() does not distinguish v2 from v1")
	}
}

// TestPprofGating: the profiling endpoints exist only when opted in, and
// mount outside the deadlined chain.
func TestPprofGating(t *testing.T) {
	v2, _ := indexedModel(t)
	off := newTestServer(t, v2, Config{})
	if status, _ := get(t, off.URL+"/debug/pprof/cmdline"); status != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: %d", status)
	}
	on := newTestServer(t, v2, Config{EnablePprof: true})
	if status, body := get(t, on.URL+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("pprof cmdline with opt-in: %d: %s", status, body)
	}
	// The API itself must still work through the pprof-bearing mux.
	if status, body := get(t, on.URL+"/v1/predict?protein=p1&k=2"); status != http.StatusOK {
		t.Fatalf("predict with pprof enabled: %d: %s", status, body)
	}
}

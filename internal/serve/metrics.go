package serve

import (
	"sync/atomic"

	"lamofinder/internal/obs"
	"lamofinder/internal/query"
)

// Route indices for per-route latency histograms. A fixed enum instead of
// a map keyed by path keeps the hot path free of map writes and the
// snapshot free of map iteration over anything non-deterministic.
const (
	routePredict = iota
	routeQuery   // the /v1/query bulk plan endpoint
	routeHealthz
	routeMotifs
	routeMetrics // the JSON /v1/metrics snapshot
	routeProm    // the Prometheus /metrics exposition
	routeReload  // the opt-in /v1/admin/reload artifact swap
	routeTraces  // the /v1/traces span-trace store
	routeOther
	numRoutes
)

// routeNames are the static route labels used in access logs, the JSON
// latency map and the Prometheus route label. Static strings so recording
// a request never allocates.
var routeNames = [numRoutes]string{"predict", "query", "healthz", "motifs", "metrics", "prom", "reload", "traces", "other"}

// routeOf classifies a request path.
func routeOf(path string) int {
	switch path {
	case "/v1/predict":
		return routePredict
	case "/v1/query":
		return routeQuery
	case "/v1/healthz":
		return routeHealthz
	case "/v1/motifs":
		return routeMotifs
	case "/v1/metrics":
		return routeMetrics
	case "/metrics":
		return routeProm
	case "/v1/admin/reload":
		return routeReload
	case "/v1/traces":
		return routeTraces
	default:
		if len(path) > len("/v1/traces/") && path[:len("/v1/traces/")] == "/v1/traces/" {
			return routeTraces
		}
		return routeOther
	}
}

// numPlanKinds mirrors len(query.Kinds()): one latency histogram per plan
// shape, so a cheap pinned top-k cannot hide a slow full scan behind one
// blended percentile.
const numPlanKinds = 3

// planKindIndex maps a plan kind to its histogram slot, following the
// fixed order of query.Kinds().
func planKindIndex(kind string) int {
	for i, k := range planKindNames() {
		if k == kind {
			return i
		}
	}
	return 0
}

func planKindNames() []string { return query.Kinds() }

// metrics holds the daemon's monotonic counters and per-route latency
// histograms. Everything is atomic so handlers update them without locks;
// Snapshot is a point-in-time read, not a consistent cut, which is all a
// metrics endpoint needs.
type metrics struct {
	requests     atomic.Int64 // all HTTP requests
	predictions  atomic.Int64 // proteins scored (cache and index hits included)
	errors       atomic.Int64 // 4xx/5xx responses
	indexHits    atomic.Int64 // proteins answered from the score index
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	flightShared atomic.Int64                // queries that piggybacked on an in-flight twin
	queries      atomic.Int64                // bulk plans executed via /v1/query
	queryRows    atomic.Int64                // result rows streamed by /v1/query
	lat          [numRoutes]obs.Histogram    // per-route request wall time
	planLat      [numPlanKinds]obs.Histogram // /v1/query execute+stream time by plan kind
}

// RouteLatency is one route's latency summary inside MetricsSnapshot:
// exact count and sum plus percentiles derived from the power-of-two
// bucket histogram (each reported value is the upper bound of the bucket
// holding the nearest-rank sample).
type RouteLatency struct {
	Count     int64 `json:"count"`
	SumMicros int64 `json:"sum_micros"`
	P50Micros int64 `json:"p50_micros"`
	P90Micros int64 `json:"p90_micros"`
	P99Micros int64 `json:"p99_micros"`
}

// MetricsSnapshot is the JSON body of /v1/metrics. The pre-histogram
// fields keep their names and meaning (LatencyMicros is now the sum over
// every route histogram), so existing scrapers keep working; Latency and
// AccessLogDropped are additive. encoding/json emits map keys sorted, so
// the body stays byte-deterministic for a given counter state.
type MetricsSnapshot struct {
	Artifact         string                  `json:"artifact"`
	Requests         int64                   `json:"requests"`
	Predictions      int64                   `json:"predictions"`
	Errors           int64                   `json:"errors"`
	IndexHits        int64                   `json:"index_hits"`
	CacheHits        int64                   `json:"cache_hits"`
	CacheMisses      int64                   `json:"cache_misses"`
	FlightShared     int64                   `json:"singleflight_shared"`
	Queries          int64                   `json:"queries"`
	QueryRows        int64                   `json:"query_rows"`
	LatencyMicros    int64                   `json:"latency_micros_total"`
	CacheEntries     int                     `json:"cache_entries"`
	AccessLogDropped int64                   `json:"access_log_dropped"`
	Latency          map[string]RouteLatency `json:"latency"`
	// QueryLatency breaks /v1/query down by plan kind (scan, topk,
	// group_topk), measuring execute+stream time rather than whole-request
	// wall time; additive, so existing scrapers keep working.
	QueryLatency map[string]RouteLatency `json:"query_latency"`
}

func (m *metrics) snapshot(digest string, cacheEntries int, accessDropped int64) MetricsSnapshot {
	s := MetricsSnapshot{
		Artifact:         digest,
		Requests:         m.requests.Load(),
		Predictions:      m.predictions.Load(),
		Errors:           m.errors.Load(),
		IndexHits:        m.indexHits.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		FlightShared:     m.flightShared.Load(),
		Queries:          m.queries.Load(),
		QueryRows:        m.queryRows.Load(),
		CacheEntries:     cacheEntries,
		AccessLogDropped: accessDropped,
		Latency:          make(map[string]RouteLatency, numRoutes),
		QueryLatency:     make(map[string]RouteLatency, numPlanKinds),
	}
	for r := 0; r < numRoutes; r++ {
		hs := m.lat[r].Snapshot()
		s.LatencyMicros += hs.SumMicros
		if hs.Count == 0 {
			continue
		}
		s.Latency[routeNames[r]] = RouteLatency{
			Count:     hs.Count,
			SumMicros: hs.SumMicros,
			P50Micros: hs.Quantile(0.50),
			P90Micros: hs.Quantile(0.90),
			P99Micros: hs.Quantile(0.99),
		}
	}
	for i, kind := range planKindNames() {
		hs := m.planLat[i].Snapshot()
		if hs.Count == 0 {
			continue
		}
		s.QueryLatency[kind] = RouteLatency{
			Count:     hs.Count,
			SumMicros: hs.SumMicros,
			P50Micros: hs.Quantile(0.50),
			P90Micros: hs.Quantile(0.90),
			P99Micros: hs.Quantile(0.99),
		}
	}
	return s
}

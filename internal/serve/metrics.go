package serve

import (
	"sync/atomic"

	"lamofinder/internal/obs"
)

// Route indices for per-route latency histograms. A fixed enum instead of
// a map keyed by path keeps the hot path free of map writes and the
// snapshot free of map iteration over anything non-deterministic.
const (
	routePredict = iota
	routeHealthz
	routeMotifs
	routeMetrics // the JSON /v1/metrics snapshot
	routeProm    // the Prometheus /metrics exposition
	routeReload  // the opt-in /v1/admin/reload artifact swap
	routeOther
	numRoutes
)

// routeNames are the static route labels used in access logs, the JSON
// latency map and the Prometheus route label. Static strings so recording
// a request never allocates.
var routeNames = [numRoutes]string{"predict", "healthz", "motifs", "metrics", "prom", "reload", "other"}

// routeOf classifies a request path.
func routeOf(path string) int {
	switch path {
	case "/v1/predict":
		return routePredict
	case "/v1/healthz":
		return routeHealthz
	case "/v1/motifs":
		return routeMotifs
	case "/v1/metrics":
		return routeMetrics
	case "/metrics":
		return routeProm
	case "/v1/admin/reload":
		return routeReload
	default:
		return routeOther
	}
}

// metrics holds the daemon's monotonic counters and per-route latency
// histograms. Everything is atomic so handlers update them without locks;
// Snapshot is a point-in-time read, not a consistent cut, which is all a
// metrics endpoint needs.
type metrics struct {
	requests     atomic.Int64 // all HTTP requests
	predictions  atomic.Int64 // proteins scored (cache and index hits included)
	errors       atomic.Int64 // 4xx/5xx responses
	indexHits    atomic.Int64 // proteins answered from the score index
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	flightShared atomic.Int64             // queries that piggybacked on an in-flight twin
	lat          [numRoutes]obs.Histogram // per-route request wall time
}

// RouteLatency is one route's latency summary inside MetricsSnapshot:
// exact count and sum plus percentiles derived from the power-of-two
// bucket histogram (each reported value is the upper bound of the bucket
// holding the nearest-rank sample).
type RouteLatency struct {
	Count     int64 `json:"count"`
	SumMicros int64 `json:"sum_micros"`
	P50Micros int64 `json:"p50_micros"`
	P90Micros int64 `json:"p90_micros"`
	P99Micros int64 `json:"p99_micros"`
}

// MetricsSnapshot is the JSON body of /v1/metrics. The pre-histogram
// fields keep their names and meaning (LatencyMicros is now the sum over
// every route histogram), so existing scrapers keep working; Latency and
// AccessLogDropped are additive. encoding/json emits map keys sorted, so
// the body stays byte-deterministic for a given counter state.
type MetricsSnapshot struct {
	Artifact         string                  `json:"artifact"`
	Requests         int64                   `json:"requests"`
	Predictions      int64                   `json:"predictions"`
	Errors           int64                   `json:"errors"`
	IndexHits        int64                   `json:"index_hits"`
	CacheHits        int64                   `json:"cache_hits"`
	CacheMisses      int64                   `json:"cache_misses"`
	FlightShared     int64                   `json:"singleflight_shared"`
	LatencyMicros    int64                   `json:"latency_micros_total"`
	CacheEntries     int                     `json:"cache_entries"`
	AccessLogDropped int64                   `json:"access_log_dropped"`
	Latency          map[string]RouteLatency `json:"latency"`
}

func (m *metrics) snapshot(digest string, cacheEntries int, accessDropped int64) MetricsSnapshot {
	s := MetricsSnapshot{
		Artifact:         digest,
		Requests:         m.requests.Load(),
		Predictions:      m.predictions.Load(),
		Errors:           m.errors.Load(),
		IndexHits:        m.indexHits.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		FlightShared:     m.flightShared.Load(),
		CacheEntries:     cacheEntries,
		AccessLogDropped: accessDropped,
		Latency:          make(map[string]RouteLatency, numRoutes),
	}
	for r := 0; r < numRoutes; r++ {
		hs := m.lat[r].Snapshot()
		s.LatencyMicros += hs.SumMicros
		if hs.Count == 0 {
			continue
		}
		s.Latency[routeNames[r]] = RouteLatency{
			Count:     hs.Count,
			SumMicros: hs.SumMicros,
			P50Micros: hs.Quantile(0.50),
			P90Micros: hs.Quantile(0.90),
			P99Micros: hs.Quantile(0.99),
		}
	}
	return s
}

package serve

import "sync/atomic"

// metrics holds the daemon's monotonic counters. Everything is atomic so
// handlers update them without locks; Snapshot is a point-in-time read, not
// a consistent cut, which is all a metrics endpoint needs.
type metrics struct {
	requests      atomic.Int64 // all HTTP requests
	predictions   atomic.Int64 // proteins scored (cache and index hits included)
	errors        atomic.Int64 // 4xx/5xx responses
	indexHits     atomic.Int64 // proteins answered from the score index
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	flightShared  atomic.Int64 // queries that piggybacked on an in-flight twin
	latencyMicros atomic.Int64 // summed request wall time
}

// MetricsSnapshot is the JSON body of /v1/metrics.
type MetricsSnapshot struct {
	Requests      int64 `json:"requests"`
	Predictions   int64 `json:"predictions"`
	Errors        int64 `json:"errors"`
	IndexHits     int64 `json:"index_hits"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	FlightShared  int64 `json:"singleflight_shared"`
	LatencyMicros int64 `json:"latency_micros_total"`
	CacheEntries  int   `json:"cache_entries"`
}

func (m *metrics) snapshot(cacheEntries int) MetricsSnapshot {
	return MetricsSnapshot{
		Requests:      m.requests.Load(),
		Predictions:   m.predictions.Load(),
		Errors:        m.errors.Load(),
		IndexHits:     m.indexHits.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		FlightShared:  m.flightShared.Load(),
		LatencyMicros: m.latencyMicros.Load(),
		CacheEntries:  cacheEntries,
	}
}

package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"lamofinder/internal/obs"
)

// discardResponseWriter is the minimal ResponseWriter for measuring the
// handler itself: header storage is pre-allocated once and the body is
// dropped, so every allocation AllocsPerRun observes belongs to
// handlePredict, not to the test harness.
type discardResponseWriter struct{ h http.Header }

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardResponseWriter) WriteHeader(int)             {}

// TestPredictHotPathAllocs is the tentpole's allocation budget: on an
// indexed artifact, a warmed-up GET /v1/predict must average under one
// allocation per request through handlePredict. (The instrument/timeout
// middleware and net/http connection handling allocate on their own and
// are excluded — the claim is about the prediction path.)
func TestPredictHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime defeats sync.Pool reuse on purpose; the budget only holds in normal builds")
	}
	v2, _ := indexedModel(t)
	s, err := New(v2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/predict?protein=p1&protein=p5&protein=p13&k=5", nil)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	// Warm the scratch pool to its high-water capacities.
	for i := 0; i < 8; i++ {
		s.handlePredict(w, req)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.handlePredict(w, req)
	})
	if allocs >= 1 {
		t.Fatalf("index hot path averages %.2f allocs/op, want < 1", allocs)
	}
}

// TestInstrumentedPredictAllocs is the tentpole's acceptance gate: the
// FULL per-request observability layer — trace-ID echo, per-route latency
// histogram, access logging through the ring, and span tracing (a valid
// client X-Request-Id forces sampling, so every measured request records
// a full span tree, publishes it to the trace store, and pushes a trace
// summary) — must hold an exact zero-allocation budget around the indexed
// predict handler. AllocsPerRun counts mallocs across all goroutines, so
// the drain goroutine's log encoding is inside the budget too. The
// TimeoutHandler stays excluded (net/http allocates internally); the
// claim is about this project's code.
func TestInstrumentedPredictAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime defeats sync.Pool reuse on purpose; the budget only holds in normal builds")
	}
	v2, _ := indexedModel(t)
	s, err := New(v2, Config{
		Logger: obs.NewLogger(io.Discard, obs.LevelInfo, obs.FormatJSON),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.instrument(http.HandlerFunc(s.handlePredict))
	req := httptest.NewRequest(http.MethodGet, "/v1/predict?protein=p1&protein=p5&protein=p13&k=5", nil)
	req.Header.Set("X-Request-Id", "load-gen-7")
	w := &discardResponseWriter{h: make(http.Header, 4)}
	for i := 0; i < 8; i++ {
		h.ServeHTTP(w, req)
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("instrumented predict path averages %.2f allocs/op, want exactly 0", allocs)
	}
	if got := s.Metrics().Latency["predict"]; got.Count == 0 {
		t.Fatal("predict histogram empty after instrumented runs")
	}
	// The gate must be measuring span recording, not a sampled-out no-op:
	// the forced trace has to be in the store with its full span tree.
	tr, ok := s.tracer.Store().Get("load-gen-7")
	if !ok {
		t.Fatal("forced-sample request left no stored trace — the alloc gate is not exercising span recording")
	}
	if len(tr.Spans) < 4 || tr.Spans[0].Name != "predict" {
		t.Fatalf("stored trace missing handler spans: %+v", tr.Spans)
	}
}

// BenchmarkHandlerPredictInstrumented is the instrumented twin of
// BenchmarkHandlerPredictIndexed: same request, but through the
// observability middleware with access logging on.
func BenchmarkHandlerPredictInstrumented(b *testing.B) {
	v2, _ := indexedModel(b)
	s, err := New(v2, Config{
		Logger: obs.NewLogger(io.Discard, obs.LevelInfo, obs.FormatJSON),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.instrument(http.HandlerFunc(s.handlePredict))
	req := httptest.NewRequest(http.MethodGet, "/v1/predict?protein=p1&protein=p5&protein=p13&k=5", nil)
	req.Header.Set("X-Request-Id", "bench-1")
	w := &discardResponseWriter{h: make(http.Header, 4)}
	h.ServeHTTP(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkHandlerPredictIndexed measures the handler over the score
// index: the numbers feed the allocs/op budget in make bench-json.
func BenchmarkHandlerPredictIndexed(b *testing.B) {
	v2, _ := indexedModel(b)
	s, err := New(v2, Config{})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/predict?protein=p1&protein=p5&protein=p13&k=5", nil)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	s.handlePredict(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handlePredict(w, req)
	}
}

// BenchmarkHandlerPredictFallback is the same request against the same
// model without an index: LRU-cached on-demand scoring, for the before
// side of the hot-path comparison.
func BenchmarkHandlerPredictFallback(b *testing.B) {
	_, v1 := indexedModel(b)
	s, err := New(v1, Config{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/predict?protein=p1&protein=p5&protein=p13&k=5", nil)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	s.handlePredict(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handlePredict(w, req)
	}
}

// BenchmarkServerPredictE2E goes through the full stack — instrumented
// mux, timeout handler, loopback TCP — so the hot-path numbers above can
// be read against what a client actually observes.
func BenchmarkServerPredictE2E(b *testing.B) {
	v2, _ := indexedModel(b)
	ts := newTestServer(b, v2, Config{})
	client := ts.Client()
	url := ts.URL + "/v1/predict?protein=p1&protein=p5&protein=p13&k=5"
	buf := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				break
			}
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
	"lamofinder/internal/predict"
)

// exampleModel builds the serving artifact for the paper's worked example
// (Figures 1-3): the Figure-2 motif labeled over the Figure-3 network, with
// a GO-term-granularity prediction task exactly as in the Figure-8
// experiment. It returns the offline task and motifs alongside, so tests
// can cross-check served responses against the offline scoring path.
func exampleModel(t testing.TB) (*artifact.Artifact, *predict.Task, []*label.LabeledMotif) {
	t.Helper()
	pe := dataset.NewPaperExample()
	o := pe.Ontology
	l := label.NewLabelerWithCounts(pe.Corpus, pe.Direct, label.Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	if len(motifs) == 0 {
		t.Fatal("paper example produced no labeled motifs")
	}
	task := predict.NewTask(pe.Network, o.NumTerms())
	for p := 0; p < pe.Network.N(); p++ {
		for _, tm := range pe.Corpus.Terms(p) {
			task.Functions[p] = append(task.Functions[p], int(tm))
		}
	}
	names := make([]string, o.NumTerms())
	for tm := range names {
		names[tm] = o.ID(tm)
	}
	art, err := artifact.Build("paper-example", "serve test fixture",
		task, names, pe.Corpus, pe.Direct, 30, motifs)
	if err != nil {
		t.Fatal(err)
	}
	return art, task, motifs
}

// reload round-trips the artifact through its encoded form, so tests serve
// what a daemon would actually load from disk.
func reload(t testing.TB, art *artifact.Artifact) *artifact.Artifact {
	t.Helper()
	b, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := artifact.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func newTestServer(t testing.TB, art *artifact.Artifact, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url) //nolint — test client; the daemon itself never uses it
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestPredictDeterministicAcrossRunsAndParallelism is the satellite e2e
// gate: the same query must return byte-identical JSON across repeated
// requests, across server instances, and across Parallelism 1 vs 4.
func TestPredictDeterministicAcrossRunsAndParallelism(t *testing.T) {
	art, _, _ := exampleModel(t)
	query := "/v1/predict?protein=p1&protein=p5&protein=p13&k=5"
	var bodies [][]byte
	for _, parallelism := range []int{1, 4} {
		ts := newTestServer(t, reload(t, art), Config{Parallelism: parallelism})
		for run := 0; run < 2; run++ {
			status, body := get(t, ts.URL+query)
			if status != http.StatusOK {
				t.Fatalf("parallelism %d run %d: status %d: %s", parallelism, run, status, body)
			}
			bodies = append(bodies, body)
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}
}

// TestPredictMatchesOfflineScorer pins the served numbers to the offline
// pipeline: for every protein, the daemon's response must exactly equal
// predict.TopK over the scorer predictfn constructs — same constructor
// (label.NewScorer), same ranking, same floats.
func TestPredictMatchesOfflineScorer(t *testing.T) {
	art, task, motifs := exampleModel(t)
	offline := label.NewScorer(task, motifs)
	ts := newTestServer(t, reload(t, art), Config{})
	const k = 7
	for p := 0; p < task.Network.N(); p++ {
		name := task.Network.Name(p)
		status, body := get(t, fmt.Sprintf("%s/v1/predict?protein=%s&k=%d", ts.URL, name, k))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := predict.TopK(offline.Scores(p), k)
		got := resp.Results[0].Predictions
		if len(got) != len(want) {
			t.Fatalf("%s: served %d predictions, offline has %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Function != want[i].Function || got[i].Score != want[i].Score {
				t.Fatalf("%s rank %d: served (%d, %v), offline (%d, %v)",
					name, i, got[i].Function, got[i].Score, want[i].Function, want[i].Score)
			}
			if got[i].Name != art.FunctionNames[want[i].Function] {
				t.Fatalf("%s rank %d: name %q, want %q", name, i, got[i].Name, art.FunctionNames[want[i].Function])
			}
		}
	}
}

func TestBatchPostEqualsGet(t *testing.T) {
	art, _, _ := exampleModel(t)
	ts := newTestServer(t, reload(t, art), Config{Parallelism: 3})
	_, getBody := get(t, ts.URL+"/v1/predict?protein=p1&protein=p2&k=3")
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"proteins":["p1","p2"],"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	postBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(getBody, postBody) {
		t.Fatalf("GET and POST disagree:\n%s\nvs\n%s", getBody, postBody)
	}
}

func TestHealthzAndMotifs(t *testing.T) {
	art, _, motifs := exampleModel(t)
	loaded := reload(t, art)
	ts := newTestServer(t, loaded, Config{})

	status, body := get(t, ts.URL+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d: %s", status, body)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	digest, err := art.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["artifact"] != digest {
		t.Fatalf("healthz body: %s", body)
	}
	if int(hz["proteins"].(float64)) != 22 {
		t.Fatalf("healthz proteins: %s", body)
	}

	status, body = get(t, ts.URL+"/v1/motifs")
	if status != http.StatusOK {
		t.Fatalf("motifs: %d: %s", status, body)
	}
	var mr MotifsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Motifs) != len(motifs) || mr.Artifact != digest {
		t.Fatalf("motifs body: %s", body)
	}
	if mr.Motifs[0].Size != 4 || mr.Motifs[0].Occurrences == 0 {
		t.Fatalf("motif summary: %+v", mr.Motifs[0])
	}
}

func TestCacheAndMetrics(t *testing.T) {
	art, _, _ := exampleModel(t)
	s, err := New(reload(t, art), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		status, body := get(t, ts.URL+"/v1/predict?protein=p1&k=5")
		if status != http.StatusOK {
			t.Fatalf("predict %d: %d: %s", i, status, body)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Fatalf("cache counters: %+v", m)
	}
	if m.Predictions != 3 || m.Requests != 3 || m.CacheEntries != 1 {
		t.Fatalf("counters: %+v", m)
	}

	status, body := get(t, ts.URL+"/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d: %s", status, body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests < 3 {
		t.Fatalf("metrics snapshot: %+v", snap)
	}
}

func TestRequestErrors(t *testing.T) {
	art, _, _ := exampleModel(t)
	s, err := New(reload(t, art), Config{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/predict?protein=nosuchprotein", http.StatusNotFound},
		{"/v1/predict", http.StatusBadRequest},
		{"/v1/predict?protein=p1&k=notanumber", http.StatusBadRequest},
		{"/v1/predict?protein=p1&k=-2", http.StatusBadRequest},
		{"/v1/predict?protein=p1&protein=p2&protein=p3", http.StatusBadRequest},
		{"/v1/nosuchendpoint", http.StatusNotFound},
	}
	for _, tc := range cases {
		status, body := get(t, ts.URL+tc.url)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.url, status, tc.want, body)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE healthz: %d", resp.StatusCode)
	}
	if s.Metrics().Errors < int64(len(cases)) {
		t.Fatalf("error counter: %+v", s.Metrics())
	}
}

func TestGracefulShutdown(t *testing.T) {
	art, _, _ := exampleModel(t)
	s, err := New(reload(t, art), Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l, 2*time.Second) }()

	url := "http://" + l.Addr().String()
	status, _ := get(t, url+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", status)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

package serve

import (
	"net/http"
	"strconv"
	"strings"

	"lamofinder/internal/obs"
)

// Request tracing. Traces are created by the handlers themselves (not by
// the instrument middleware): http.TimeoutHandler hands handlers a private
// ResponseWriter with no Unwrap, so the middleware has no allocation-free
// way to pass a per-request value through the deadlined chain — but the
// request headers travel it untouched, and sampling plus trace identity
// are pure functions of those headers.

// startTrace decides sampling for one request and, when selected, checks
// out a pooled trace whose root span is already open. Sampling is forced
// by a valid client X-Request-Id, an X-Trace-Sample: 1 header, or a
// propagated X-Trace-Context (the gateway already committed to the trace);
// otherwise the deterministic 1-in-N head sampler decides. Returns nil
// when unsampled — every obs recording method no-ops on nil, so callers
// never branch.
//
// On the forced paths this function does not allocate (the alloc gate
// measures it with a client-supplied ID). A head-sampled request with no
// usable client ID mints one — that path allocates the ID string and a
// fresh header slice, never the pooled recorder array: TimeoutHandler
// copies the handler's header map into the outer one after the handler
// returns, which can race a pooled array's next reuse but not a
// per-request allocation.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, root string) *obs.Trace {
	id := r.Header.Get("X-Request-Id")
	forced := obs.ValidTraceID(id)
	if !forced {
		id = ""
	}
	remoteParent := obs.NoSpan
	if tcID, parent, ok := obs.ParseTraceContext(r.Header.Get(obs.HeaderTraceContext)); ok {
		id, remoteParent, forced = tcID, parent, true
	}
	if !forced && r.Header.Get(obs.HeaderTraceSample) == "1" {
		forced = true
	}
	if !s.tracer.Sample(forced) {
		return nil
	}
	if id == "" {
		id = s.trace.Next()
		// Overwrite the middleware's echoed ID so the client is told the ID
		// its trace is stored under.
		w.Header()["X-Request-Id"] = []string{id}
	}
	return s.tracer.Start(id, remoteParent, root)
}

// endTrace finishes a request trace and feeds the route's exemplar cell.
// The ID is captured before Finish — the trace is pooled and must not be
// read afterwards.
//
// alloc-budget: 0
func (s *Server) endTrace(tr *obs.Trace, route int) {
	if tr == nil {
		return
	}
	id := tr.ID()
	us := s.tracer.Finish(tr)
	s.exRoute[route].Set(id, us)
}

// tracesResponse is the body of GET /v1/traces.
type tracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

// handleTraces serves the trace store: GET /v1/traces lists recent traces
// (newest first, optional ?n= cap), GET /v1/traces/{id} returns one full
// span tree. Admin-timescale endpoints — they allocate freely.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces")
	id = strings.TrimPrefix(id, "/")
	if id == "" {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				s.writeError(w, http.StatusBadRequest, "n must be a non-negative integer, got %q", raw)
				return
			}
			n = v
		}
		s.writeJSON(w, http.StatusOK, tracesResponse{Traces: s.tracer.Store().List(n)})
		return
	}
	out, ok := s.tracer.Store().Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no stored trace %q (the store keeps the most recent %d sampled traces)", id, s.tracer.Store().Cap())
		return
	}
	s.writeJSON(w, http.StatusOK, out)
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lamofinder/internal/obs"
)

// tracedServer builds a server with a deterministic trace setup: seeded
// ID source, given head-sampling rate, small store.
func tracedServer(t testing.TB, sampleEvery int) (*Server, *httptest.Server) {
	t.Helper()
	art, _, _ := exampleModel(t)
	s, err := New(reload(t, art), Config{
		Trace:            obs.NewTraceSource("t", 0),
		TraceSampleEvery: sampleEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestPredictTraceRoundTrip: a force-sampled predict request lands in the
// store and comes back from GET /v1/traces/{id} as a span tree with the
// handler's parse/rank/encode children under the root.
func TestPredictTraceRoundTrip(t *testing.T) {
	_, ts := tracedServer(t, -1) // forced-only sampling
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/predict?protein=p1&k=3", nil)
	req.Header.Set("X-Request-Id", "probe-77")
	resp, _ := do(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}

	status, body := get(t, ts.URL+"/v1/traces/probe-77")
	if status != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", status, body)
	}
	var out obs.TraceOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("trace body does not parse: %v\n%s", err, body)
	}
	if out.Trace != "probe-77" || out.RemoteParent != -1 {
		t.Fatalf("trace identity wrong: %+v", out)
	}
	if len(out.Spans) == 0 || out.Spans[0].Name != "predict" || out.Spans[0].Parent != -1 {
		t.Fatalf("root span wrong: %+v", out.Spans)
	}
	children := map[string]obs.SpanOut{}
	for _, sp := range out.Spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("span %q not parented to root: %+v", sp.Name, sp)
		}
		children[sp.Name] = sp
	}
	for _, name := range []string{"parse", "rank", "encode"} {
		if _, ok := children[name]; !ok {
			t.Fatalf("child span %q missing: %+v", name, out.Spans)
		}
	}
	if rank := children["rank"]; rank.RowsIn != 1 || rank.RowsOut != 1 {
		t.Fatalf("rank span rows wrong: %+v", rank)
	}

	// The listing sees the same trace, newest first.
	status, body = get(t, ts.URL+"/v1/traces")
	if status != http.StatusOK {
		t.Fatalf("trace list status %d", status)
	}
	var list tracesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Trace != "probe-77" || list.Traces[0].Root != "predict" {
		t.Fatalf("trace list wrong: %+v", list.Traces)
	}

	// An unknown ID 404s with a hint about store capacity.
	status, body = get(t, ts.URL+"/v1/traces/never-seen")
	if status != http.StatusNotFound || !bytes.Contains(body, []byte("most recent")) {
		t.Fatalf("missing-trace response wrong: %d %s", status, body)
	}
}

// TestQueryTraceOperatorSpans: a query traced via X-Trace-Sample carries
// per-operator child spans under its execute span, with the engine's
// deterministic row counts, and the response's X-Request-Id names the
// stored trace even though the client sent no ID.
func TestQueryTraceOperatorSpans(t *testing.T) {
	_, ts := tracedServer(t, -1)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(`{"topk":2}`))
	req.Header.Set(obs.HeaderTraceSample, "1")
	resp, _ := do(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("sampled query response carries no X-Request-Id")
	}

	status, body := get(t, ts.URL+"/v1/traces/"+id)
	if status != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", status, body)
	}
	var out obs.TraceOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Spans[0].Name != "query" {
		t.Fatalf("root span wrong: %+v", out.Spans)
	}
	var execID int32 = -1
	for _, sp := range out.Spans {
		if sp.Name == "execute" {
			execID = sp.ID
		}
	}
	if execID < 0 {
		t.Fatalf("execute span missing: %+v", out.Spans)
	}
	ops := map[string]obs.SpanOut{}
	for _, sp := range out.Spans {
		if sp.Parent == execID {
			ops[sp.Name] = sp
		}
	}
	for _, name := range []string{"scan", "filter", "emit"} {
		if _, ok := ops[name]; !ok {
			t.Fatalf("operator span %q missing under execute: %+v", name, out.Spans)
		}
	}
	if scan := ops["scan"]; scan.RowsIn == 0 || scan.RowsIn != scan.RowsOut {
		t.Fatalf("scan span rows wrong: %+v", scan)
	}
}

// TestTraceContextPropagation: a request carrying X-Trace-Context adopts
// the upstream trace ID and records the remote parent span index, so a
// gateway can stitch the replica tree under its own upstream span.
func TestTraceContextPropagation(t *testing.T) {
	_, ts := tracedServer(t, -1)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/predict?protein=p1&k=3", nil)
	req.Header.Set(obs.HeaderTraceContext, "gw-42:3")
	resp, _ := do(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	status, body := get(t, ts.URL+"/v1/traces/gw-42")
	if status != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", status, body)
	}
	var out obs.TraceOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != "gw-42" || out.RemoteParent != 3 {
		t.Fatalf("propagated trace identity wrong: %+v", out)
	}
}

// TestHeadSamplingMintsID: with 1-in-1 head sampling, an anonymous request
// is traced under a minted ID, and that ID is the one echoed to the
// client — the response header is the ticket to the stored trace.
func TestHeadSamplingMintsID(t *testing.T) {
	_, ts := tracedServer(t, 1)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/predict?protein=p1&k=3", nil)
	resp, _ := do(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id on sampled response")
	}
	status, body := get(t, ts.URL+"/v1/traces/"+id)
	if status != http.StatusOK {
		t.Fatalf("minted ID %q not in store: %d %s", id, status, body)
	}
}

// TestResponseBytesUnchangedByTracing is the acceptance gate's byte-
// identity half: /v1/predict and /v1/query bodies are identical whether
// the request is traced or not, and identical across Parallelism 1 vs 4
// with tracing forced on.
func TestResponseBytesUnchangedByTracing(t *testing.T) {
	art, _, _ := exampleModel(t)
	predictURL := "/v1/predict?protein=p1&protein=p5&k=3"
	queryPlan := `{"group_by":"category","topk":2}`

	type variant struct {
		name        string
		parallelism int
		sample      int
		traced      bool
	}
	variants := []variant{
		{"untraced-p1", 1, -1, false},
		{"traced-p1", 1, -1, true},
		{"traced-p4", 4, -1, true},
		{"sampled-every-1", 1, 1, false},
	}
	var predictBodies, queryBodies [][]byte
	for _, v := range variants {
		s, err := New(reload(t, art), Config{
			Parallelism:      v.parallelism,
			Trace:            obs.NewTraceSource("t", 0),
			TraceSampleEvery: v.sample,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		req, _ := http.NewRequest(http.MethodGet, ts.URL+predictURL, nil)
		if v.traced {
			req.Header.Set("X-Request-Id", "same-id-everywhere")
		}
		resp, body := do(t, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: predict status %d", v.name, resp.StatusCode)
		}
		predictBodies = append(predictBodies, body)

		qreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(queryPlan))
		if v.traced {
			qreq.Header.Set(obs.HeaderTraceSample, "1")
		}
		qresp, qbody := do(t, qreq)
		if qresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: query status %d: %s", v.name, qresp.StatusCode, qbody)
		}
		queryBodies = append(queryBodies, qbody)
		ts.Close()
	}
	for i := 1; i < len(variants); i++ {
		if !bytes.Equal(predictBodies[0], predictBodies[i]) {
			t.Fatalf("predict bytes differ between %s and %s:\n%s\nvs\n%s",
				variants[0].name, variants[i].name, predictBodies[0], predictBodies[i])
		}
		if !bytes.Equal(queryBodies[0], queryBodies[i]) {
			t.Fatalf("query bytes differ between %s and %s:\n%s\nvs\n%s",
				variants[0].name, variants[i].name, queryBodies[0], queryBodies[i])
		}
	}
}

// TestQueryExplainOverHTTP: "explain": true adds the operator summary to
// the body; everything before it is byte-identical to the plain response.
func TestQueryExplainOverHTTP(t *testing.T) {
	_, ts := tracedServer(t, -1)
	post := func(plan string) []byte {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(plan))
		resp, body := do(t, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d: %s", resp.StatusCode, body)
		}
		return body
	}
	plain := post(`{"topk":2}`)
	explained := post(`{"topk":2,"explain":true}`)
	idx := bytes.Index(explained, []byte(`,"explain":`))
	if idx < 0 {
		t.Fatalf("no explain field in body:\n%s", explained)
	}
	if want := bytes.TrimSuffix(plain, []byte("}\n")); !bytes.Equal(explained[:idx], want) {
		t.Fatalf("explain perturbed rows:\n%s\nvs\n%s", want, explained[:idx])
	}
	var dec struct {
		Explain struct {
			WallUS int64 `json:"wall_us"`
			Ops    []struct {
				Op      string `json:"op"`
				RowsIn  int64  `json:"rows_in"`
				RowsOut int64  `json:"rows_out"`
			} `json:"operators"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(explained, &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.Explain.Ops) == 0 {
		t.Fatalf("explain has no operators:\n%s", explained)
	}
}

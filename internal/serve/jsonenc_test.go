package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"lamofinder/internal/predict"
)

// TestAppendPredictResponseMatchesStdlib renders full response bodies both
// ways and requires identical bytes, including empty rankings, empty
// batches, and names that need escaping.
func TestAppendPredictResponseMatchesStdlib(t *testing.T) {
	fnNames := []string{"GO:0000001", "transport & binding", "ribosome <LSU>", "väx"}
	cases := []struct {
		name     string
		digest   string
		k        int
		proteins []string
		rankings [][]predict.Ranked
	}{
		{"empty batch", "abc123", 5, nil, nil},
		{"one empty ranking", "abc123", 3, []string{"p1"}, [][]predict.Ranked{nil}},
		{
			"full batch", "deadbeef", 4,
			[]string{"p1", `q"2`, "sep\u2028"},
			[][]predict.Ranked{
				{{Function: 0, Score: 1}, {Function: 2, Score: 2.0 / 3.0}},
				{{Function: 3, Score: 1e-7}},
				{{Function: 1, Score: 0.25}, {Function: 0, Score: 0.125}, {Function: 2, Score: 1e-22}},
			},
		},
	}
	for _, tc := range cases {
		resp := PredictResponse{Artifact: tc.digest, K: tc.k, Results: []ProteinResult{}}
		for i, name := range tc.proteins {
			pr := ProteinResult{Protein: name, Predictions: []Prediction{}}
			for _, r := range tc.rankings[i] {
				pr.Predictions = append(pr.Predictions, Prediction{
					Function: r.Function, Name: fnNames[r.Function], Score: r.Score,
				})
			}
			resp.Results = append(resp.Results, pr)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendPredictResponse(nil, tc.digest, tc.k, tc.proteins, tc.rankings, fnNames)
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\ngot    %s\nstdlib %s", tc.name, got, want)
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"lamofinder/internal/predict"
)

// TestAppendJSONStringMatchesStdlib pins the hand-rolled string escaper to
// encoding/json byte-for-byte, including the HTML escapes, control
// characters, astral-plane runes, invalid UTF-8, and the U+2028/U+2029
// JavaScript line separators Marshal special-cases.
func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"",
		"p1",
		"YGR192C",
		`quote " backslash \ slash /`,
		"tab\tnewline\ncarriage\rmix",
		"control \x00 \x01 \x1f bytes",
		"html <b>&amp;</b> sensitive",
		"héllo wörld",
		"日本語テキスト",
		"emoji 🧬 protein",
		"line sep \u2028 and para sep \u2029",
		"invalid \xff\xfe utf8",
		"truncated \xc3",
		"mixed \xed\xa0\x80 surrogate bytes",
		"\x7f del byte",
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("string %q: got %s, stdlib %s", s, got, want)
		}
	}
}

// TestAppendJSONFloatMatchesStdlib pins the float encoder to encoding/json
// across the format boundaries (1e-6, 1e21), negative zero, subnormals, and
// a seeded sweep of random magnitudes.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 2.0 / 3.0, 1.0 / 3.0, 0.1, 3.141592653589793,
		1e-6, 9.999999e-7, 1e-7, 1e20, 1e21, 9.99e20, 1.1e21, 1e-300, 5e-324,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), -2.5e-8, 6.02214076e23,
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		cases = append(cases, f, -f)
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, rng.Float64()) // the [0,1) score range served in practice
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got := appendJSONFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Errorf("float %v: got %s, stdlib %s", f, got, want)
		}
	}
}

// TestAppendPredictResponseMatchesStdlib renders full response bodies both
// ways and requires identical bytes, including empty rankings, empty
// batches, and names that need escaping.
func TestAppendPredictResponseMatchesStdlib(t *testing.T) {
	fnNames := []string{"GO:0000001", "transport & binding", "ribosome <LSU>", "väx"}
	cases := []struct {
		name     string
		digest   string
		k        int
		proteins []string
		rankings [][]predict.Ranked
	}{
		{"empty batch", "abc123", 5, nil, nil},
		{"one empty ranking", "abc123", 3, []string{"p1"}, [][]predict.Ranked{nil}},
		{
			"full batch", "deadbeef", 4,
			[]string{"p1", `q"2`, "sep\u2028"},
			[][]predict.Ranked{
				{{Function: 0, Score: 1}, {Function: 2, Score: 2.0 / 3.0}},
				{{Function: 3, Score: 1e-7}},
				{{Function: 1, Score: 0.25}, {Function: 0, Score: 0.125}, {Function: 2, Score: 1e-22}},
			},
		},
	}
	for _, tc := range cases {
		resp := PredictResponse{Artifact: tc.digest, K: tc.k, Results: []ProteinResult{}}
		for i, name := range tc.proteins {
			pr := ProteinResult{Protein: name, Predictions: []Prediction{}}
			for _, r := range tc.rankings[i] {
				pr.Predictions = append(pr.Predictions, Prediction{
					Function: r.Function, Name: fnNames[r.Function], Score: r.Score,
				})
			}
			resp.Results = append(resp.Results, pr)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendPredictResponse(nil, tc.digest, tc.k, tc.proteins, tc.rankings, fnNames)
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\ngot    %s\nstdlib %s", tc.name, got, want)
		}
	}
}

package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU map. The daemon keys it by
// (artifact digest, protein, k), so a cache survives nothing it shouldn't:
// swapping the artifact changes every key.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

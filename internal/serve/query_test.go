package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"lamofinder/internal/artifact"
	"lamofinder/internal/dataset"
	"lamofinder/internal/label"
)

// plantedMotifs converts the benchmark's planted templates into
// labeled-motif fixtures: ground-truth occurrence sets with full frequency
// and fixed high uniqueness, vertices left unlabeled. Eq.-5 scoring reads
// only topology, occurrences, frequency, and uniqueness, so these score
// exactly like mined motifs while skipping ESU and LaMoFinder entirely.
func plantedMotifs(m *dataset.MIPS) []*label.LabeledMotif {
	motifs := make([]*label.LabeledMotif, 0, len(m.Planted))
	for _, pt := range m.Planted {
		if len(pt.Instances) == 0 {
			continue
		}
		motifs = append(motifs, &label.LabeledMotif{
			Pattern:     pt.Pattern,
			Labels:      make([][]int32, pt.Pattern.N()),
			Occurrences: pt.Instances,
			Frequency:   len(pt.Instances),
			Uniqueness:  0.9,
		})
	}
	return motifs
}

// mipsArt is the full-size (1877-protein) indexed artifact the bulk-query
// tests and benchmarks serve, built once from the synthetic MIPS benchmark
// with the planted templates standing in for mined motifs.
var mipsArt = sync.OnceValue(func() *artifact.Artifact {
	m := dataset.NewMIPS(dataset.DefaultMIPSConfig())
	art, err := artifact.Build("mips-synthetic", "query serve fixture",
		m.Task, m.CategoryNames(), m.Corpus, m.Corpus.DirectCounts(), 30, plantedMotifs(m))
	if err != nil {
		panic(err)
	}
	art.BuildIndex(0)
	return art
})

func postQuery(t testing.TB, url, plan string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// queryBody is the decoded /v1/query response.
type queryBody struct {
	Artifact string            `json:"artifact"`
	Columns  []string          `json:"columns"`
	RowCount int               `json:"row_count"`
	Rows     []json.RawMessage `json:"rows"`
}

// TestQueryEndpoint exercises the basic served flow: a filtered top-k plan
// returns well-formed rows pinned to the served artifact.
func TestQueryEndpoint(t *testing.T) {
	art, _, _ := exampleModel(t)
	ts := newTestServer(t, reload(t, art), Config{})
	status, body := postQuery(t, ts.URL, `{"topk":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var dec queryBody
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	if dec.RowCount != len(dec.Rows) || dec.RowCount == 0 {
		t.Fatalf("row_count %d with %d rows", dec.RowCount, len(dec.Rows))
	}
	if len(dec.Columns) != 3 || dec.Columns[0] != "protein" {
		t.Fatalf("default columns = %v", dec.Columns)
	}
	if !bytes.HasSuffix(body, []byte("]}\n")) {
		t.Fatal("body does not end in ]}\\n")
	}
	// The artifact digest must identify the served snapshot.
	var hz struct {
		Artifact string `json:"artifact"`
	}
	_, hzBody := get(t, ts.URL+"/v1/healthz")
	if err := json.Unmarshal(hzBody, &hz); err != nil {
		t.Fatal(err)
	}
	if dec.Artifact != hz.Artifact {
		t.Fatalf("query artifact %q, healthz says %q", dec.Artifact, hz.Artifact)
	}
}

// TestQueryMatchesPredictFor50Proteins is the satellite parity gate: a
// protein-pinned topk plan must emit exactly the function/name/score rows
// /v1/predict returns, for 50 proteins sampled across the interactome.
func TestQueryMatchesPredictFor50Proteins(t *testing.T) {
	art := mipsArt()
	ts := newTestServer(t, art, Config{})
	n := art.Graph.N()
	const k = 5
	sampled := 0
	for p := 0; p < n && sampled < 50; p += n / 50 {
		name := art.Graph.Name(p)
		sampled++

		status, pbody := get(t, fmt.Sprintf("%s/v1/predict?protein=%s&k=%d", ts.URL, name, k))
		if status != http.StatusOK {
			t.Fatalf("predict %s: status %d: %s", name, status, pbody)
		}
		var pr PredictResponse
		if err := json.Unmarshal(pbody, &pr); err != nil {
			t.Fatal(err)
		}

		plan := fmt.Sprintf(`{"filter":[{"field":"protein","op":"in","names":[%q]}],"topk":%d,"project":["protein","function","name","score"]}`, name, k)
		status, qbody := postQuery(t, ts.URL, plan)
		if status != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", name, status, qbody)
		}
		var dec queryBody
		if err := json.Unmarshal(qbody, &dec); err != nil {
			t.Fatal(err)
		}

		preds := pr.Results[0].Predictions
		if len(preds) != dec.RowCount {
			t.Fatalf("protein %s: predict has %d predictions, query %d rows", name, len(preds), dec.RowCount)
		}
		for i, pd := range preds {
			var row []json.RawMessage
			if err := json.Unmarshal(dec.Rows[i], &row); err != nil || len(row) != 4 {
				t.Fatalf("protein %s row %d: %v (%s)", name, i, err, dec.Rows[i])
			}
			var rp, rn string
			var rf int
			var rs float64
			for j, into := range []any{&rp, &rf, &rn, &rs} {
				if err := json.Unmarshal(row[j], into); err != nil {
					t.Fatal(err)
				}
			}
			if rp != name || rf != pd.Function || rn != pd.Name || rs != pd.Score {
				t.Fatalf("protein %s rank %d: query [%s %d %s %v], predict [%s %d %s %v]",
					name, i, rp, rf, rn, rs, name, pd.Function, pd.Name, pd.Score)
			}
		}
	}
	if sampled != 50 {
		t.Fatalf("sampled %d proteins, want 50", sampled)
	}
}

// TestQueryDeterministicAcrossParallelism is the served half of the
// byte-determinism gate: identical plan bytes across Parallelism 1 vs 4,
// across runs, and across server instances.
func TestQueryDeterministicAcrossParallelism(t *testing.T) {
	art := mipsArt()
	plans := []string{
		`{"topk":5}`,
		`{"filter":[{"field":"degree","op":"ge","value":2},{"field":"annotated","op":"eq","bool":false}],"topk":3}`,
		`{"group_by":"category","topk":7}`,
		`{"group_by":"category","topk":2,"filter":[{"field":"score","op":"ge","value":0.05}],"project":["function","name","protein","score"]}`,
	}
	for pi, plan := range plans {
		var ref []byte
		for _, parallelism := range []int{1, 4} {
			ts := newTestServer(t, art, Config{Parallelism: parallelism})
			for run := 0; run < 2; run++ {
				status, body := postQuery(t, ts.URL, plan)
				if status != http.StatusOK {
					t.Fatalf("plan %d: status %d: %s", pi, status, body)
				}
				if ref == nil {
					ref = body
					continue
				}
				if !bytes.Equal(ref, body) {
					t.Fatalf("plan %d: bytes differ at parallelism %d run %d", pi, parallelism, run)
				}
			}
			ts.Close()
		}
	}
}

// TestQueryAndPredictFieldErrors pins the shared structured validation
// body: both endpoints reject bad inputs with the same (field, reason)
// JSON shape.
func TestQueryAndPredictFieldErrors(t *testing.T) {
	art, _, _ := exampleModel(t)
	ts := newTestServer(t, reload(t, art), Config{MaxBatch: 4})

	type fieldErr struct {
		Error  string `json:"error"`
		Field  string `json:"field"`
		Reason string `json:"reason"`
	}
	check := func(status int, body []byte, wantStatus int, wantField string) {
		t.Helper()
		if status != wantStatus {
			t.Fatalf("status %d, want %d: %s", status, wantStatus, body)
		}
		var fe fieldErr
		if err := json.Unmarshal(body, &fe); err != nil {
			t.Fatalf("unstructured error body: %v\n%s", err, body)
		}
		if fe.Field != wantField || fe.Reason == "" {
			t.Fatalf("error field %q (%s), want %q", fe.Field, fe.Reason, wantField)
		}
		if !strings.Contains(fe.Error, fe.Field) {
			t.Fatalf("flat message %q does not name the field", fe.Error)
		}
	}

	// Plan-side failures.
	st, body := postQuery(t, ts.URL, `{"scan":"motifs"}`)
	check(st, body, http.StatusBadRequest, "scan")
	st, body = postQuery(t, ts.URL, `{"topk":-2}`)
	check(st, body, http.StatusBadRequest, "topk")
	st, body = postQuery(t, ts.URL, `{"filter":[{"field":"degree","op":"in"}]}`)
	check(st, body, http.StatusBadRequest, "filter[0].op")
	st, body = postQuery(t, ts.URL, `{"filter":[{"field":"protein","op":"in","names":["nope"]}]}`)
	check(st, body, http.StatusBadRequest, "filter[0].names[0]")
	st, body = postQuery(t, ts.URL, `not json`)
	check(st, body, http.StatusBadRequest, "body")

	// Predict-side failures, through the same shared validators.
	st, body = get(t, ts.URL+"/v1/predict?protein=p1&k=-1")
	check(st, body, http.StatusBadRequest, "topk")
	st, body = get(t, ts.URL+"/v1/predict?k=3")
	check(st, body, http.StatusBadRequest, "proteins")
	st, body = get(t, ts.URL+"/v1/predict?protein=p1&protein=p2&protein=p3&protein=p4&protein=p5")
	check(st, body, http.StatusBadRequest, "proteins")
	st, body = get(t, ts.URL+"/v1/predict?protein=zzz")
	check(st, body, http.StatusNotFound, "protein")
	st, body = get(t, ts.URL+"/v1/predict?protein=p1&k=abc")
	check(st, body, http.StatusBadRequest, "k")
}

// TestQueryMetrics checks the observability wiring: query counters, the
// per-plan-kind latency map, and the Prometheus series.
func TestQueryMetrics(t *testing.T) {
	art, _, _ := exampleModel(t)
	ts := newTestServer(t, reload(t, art), Config{})
	for _, plan := range []string{`{}`, `{"topk":2}`, `{"group_by":"category","topk":1}`} {
		if st, body := postQuery(t, ts.URL, plan); st != http.StatusOK {
			t.Fatalf("plan %s: status %d: %s", plan, st, body)
		}
	}
	_, mbody := get(t, ts.URL+"/v1/metrics")
	var ms MetricsSnapshot
	if err := json.Unmarshal(mbody, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Queries != 3 {
		t.Fatalf("queries = %d, want 3", ms.Queries)
	}
	if ms.QueryRows <= 0 {
		t.Fatalf("query_rows = %d, want > 0", ms.QueryRows)
	}
	for _, kind := range []string{"scan", "topk", "group_topk"} {
		if ms.QueryLatency[kind].Count != 1 {
			t.Fatalf("query_latency[%s].count = %d, want 1 (%v)", kind, ms.QueryLatency[kind].Count, ms.QueryLatency)
		}
	}
	if ms.Latency["query"].Count != 3 {
		t.Fatalf("latency[query].count = %d, want 3", ms.Latency["query"].Count)
	}
	_, pbody := get(t, ts.URL+"/metrics")
	for _, series := range []string{
		"lamod_queries_total 3",
		"lamod_query_rows_total",
		`lamod_query_duration_seconds_count{plan="scan"} 1`,
		`lamod_request_duration_seconds_count{route="query"} 3`,
	} {
		if !strings.Contains(string(pbody), series) {
			t.Fatalf("prom body missing %q", series)
		}
	}
}

// TestQueryMethodNotAllowed pins the 405 for GET.
func TestQueryMethodNotAllowed(t *testing.T) {
	art, _, _ := exampleModel(t)
	ts := newTestServer(t, reload(t, art), Config{})
	status, _ := get(t, ts.URL+"/v1/query")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status %d, want 405", status)
	}
}

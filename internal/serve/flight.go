package serve

import "sync"

// flightGroup deduplicates concurrent calls with the same key: the first
// caller computes, later callers block and share the result. A minimal
// stdlib-only stand-in for golang.org/x/sync/singleflight, sufficient
// because the daemon's compute functions never panic.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller received another caller's in-flight result.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}

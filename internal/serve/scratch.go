package serve

import (
	"sync"

	"lamofinder/internal/predict"
)

// scratch is the per-request working set of the predict handler: parsed
// protein names, resolved vertex ids, per-protein ranking slices, and the
// response buffer. Pooling it makes an index-hit request allocation-free
// after warm-up — every slice is reused at its high-water capacity.
type scratch struct {
	proteins []string
	ids      []int
	rankings [][]predict.Ranked
	buf      []byte
}

// scratchCap bounds the response buffer a pooled scratch may retain, so
// one giant batch response does not pin its buffer forever.
const scratchCap = 1 << 20

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	if cap(sc.buf) > scratchCap {
		sc.buf = nil
	}
	// Drop references into the artifact's rankings and the request's
	// strings; keep the backing arrays.
	for i := range sc.rankings {
		sc.rankings[i] = nil
	}
	for i := range sc.proteins {
		sc.proteins[i] = ""
	}
	sc.proteins = sc.proteins[:0]
	sc.ids = sc.ids[:0]
	sc.rankings = sc.rankings[:0]
	sc.buf = sc.buf[:0]
	scratchPool.Put(sc)
}

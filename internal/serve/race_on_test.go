//go:build race

package serve

// raceEnabled reports whether the race detector built this test binary.
const raceEnabled = true

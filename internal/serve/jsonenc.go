package serve

import (
	"math"
	"strconv"
	"unicode/utf8"

	"lamofinder/internal/predict"
)

// This file is the zero-allocation JSON encoder for the predict hot path.
// Responses were previously rendered by encoding/json over response
// structs; the append-style encoder below produces byte-identical output
// for the fixed /v1/predict shape without reflection or intermediate
// buffers, so an index hit can serve entirely from a pooled []byte.
// TestAppendJSONStringMatchesStdlib / TestAppendJSONFloatMatchesStdlib /
// TestAppendPredictResponseMatchesStdlib pin the compatibility.

const jsonHex = "0123456789abcdef"

// jsonSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string: printable, and none of '"', '\\', '<', '>', '&' (the HTML
// escapes Marshal applies by default).
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		safe[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		safe[c] = false
	}
	return safe
}()

// appendJSONString appends s as a JSON string literal, escaping exactly as
// encoding/json.Marshal does (HTML escaping included).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control characters, plus the HTML-sensitive trio.
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 byte: Marshal writes the replacement character
			// as an escape, not as raw bytes.
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format inside [1e-6, 1e21), 'e' outside,
// with the exponent's leading zero trimmed. NaN and infinities — which
// Marshal refuses outright — never reach the encoder: scores are Eq.-5
// outputs normalized into [0, 1].
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendPredictResponse renders the full /v1/predict body (trailing
// newline included): byte-for-byte what json.Marshal produces over
// PredictResponse, built by appending into the caller's buffer.
// rankings[i] is the (already truncated) ranking for proteins[i]; function
// names resolve through fnNames at encode time.
//
// alloc-budget: 0
func appendPredictResponse(buf []byte, digest string, k int, proteins []string,
	rankings [][]predict.Ranked, fnNames []string) []byte {
	buf = append(buf, `{"artifact":`...)
	buf = appendJSONString(buf, digest)
	buf = append(buf, `,"k":`...)
	buf = strconv.AppendInt(buf, int64(k), 10)
	buf = append(buf, `,"results":[`...)
	for i, name := range proteins {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"protein":`...)
		buf = appendJSONString(buf, name)
		buf = append(buf, `,"predictions":[`...)
		for j, r := range rankings[i] {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"function":`...)
			buf = strconv.AppendInt(buf, int64(r.Function), 10)
			buf = append(buf, `,"name":`...)
			buf = appendJSONString(buf, fnNames[r.Function])
			buf = append(buf, `,"score":`...)
			buf = appendJSONFloat(buf, r.Score)
			buf = append(buf, '}')
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `]}`...)
	return append(buf, '\n')
}

package serve

import (
	"strconv"

	"lamofinder/internal/jsonx"
	"lamofinder/internal/predict"
)

// This file is the zero-allocation JSON encoder for the predict hot path.
// Responses were previously rendered by encoding/json over response
// structs; the append-style encoder below produces byte-identical output
// for the fixed /v1/predict shape without reflection or intermediate
// buffers, so an index hit can serve entirely from a pooled []byte. The
// string and float primitives live in internal/jsonx (shared with the
// bulk-query row encoder); TestAppendPredictResponseMatchesStdlib pins the
// response-shape compatibility.

// appendPredictResponse renders the full /v1/predict body (trailing
// newline included): byte-for-byte what json.Marshal produces over
// PredictResponse, built by appending into the caller's buffer.
// rankings[i] is the (already truncated) ranking for proteins[i]; function
// names resolve through fnNames at encode time.
//
// alloc-budget: 0
func appendPredictResponse(buf []byte, digest string, k int, proteins []string,
	rankings [][]predict.Ranked, fnNames []string) []byte {
	buf = append(buf, `{"artifact":`...)
	buf = jsonx.AppendString(buf, digest)
	buf = append(buf, `,"k":`...)
	buf = strconv.AppendInt(buf, int64(k), 10)
	buf = append(buf, `,"results":[`...)
	for i, name := range proteins {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"protein":`...)
		buf = jsonx.AppendString(buf, name)
		buf = append(buf, `,"predictions":[`...)
		for j, r := range rankings[i] {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"function":`...)
			buf = strconv.AppendInt(buf, int64(r.Function), 10)
			buf = append(buf, `,"name":`...)
			buf = jsonx.AppendString(buf, fnNames[r.Function])
			buf = append(buf, `,"score":`...)
			buf = jsonx.AppendFloat(buf, r.Score)
			buf = append(buf, '}')
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `]}`...)
	return append(buf, '\n')
}

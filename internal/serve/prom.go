package serve

import (
	"net/http"
	"runtime"

	"lamofinder/internal/obs"
)

// promRouteLabels are the pre-rendered route label pairs for the latency
// histograms, one per route index.
var promRouteLabels = [numRoutes]string{
	`route="predict"`, `route="query"`, `route="healthz"`, `route="motifs"`,
	`route="metrics"`, `route="prom"`, `route="reload"`, `route="traces"`,
	`route="other"`,
}

// promPlanLabels are the pre-rendered plan-kind label pairs for the
// /v1/query latency histograms, in query.Kinds() order.
var promPlanLabels = [numPlanKinds]string{
	`plan="scan"`, `plan="topk"`, `plan="group_topk"`,
}

var contentTypeProm = []string{"text/plain; version=0.0.4; charset=utf-8"}

// handleProm renders the daemon's state in Prometheus text exposition
// format: the JSON snapshot's counters, the per-route latency histograms
// with cumulative le buckets in seconds, and Go runtime gauges. This
// endpoint is scraped at human timescales, so it allocates freely; only
// the predict path holds the zero-allocation budget.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	buf := make([]byte, 0, 8192)

	buf = obs.AppendPromHeader(buf, "lamod_requests_total", "counter", "HTTP requests handled.")
	buf = obs.AppendPromInt(buf, "lamod_requests_total", "", s.met.requests.Load())
	buf = obs.AppendPromHeader(buf, "lamod_errors_total", "counter", "Responses with status >= 400.")
	buf = obs.AppendPromInt(buf, "lamod_errors_total", "", s.met.errors.Load())
	buf = obs.AppendPromHeader(buf, "lamod_predictions_total", "counter", "Proteins scored across all predict requests.")
	buf = obs.AppendPromInt(buf, "lamod_predictions_total", "", s.met.predictions.Load())
	buf = obs.AppendPromHeader(buf, "lamod_index_hits_total", "counter", "Proteins answered from the build-time score index.")
	buf = obs.AppendPromInt(buf, "lamod_index_hits_total", "", s.met.indexHits.Load())
	buf = obs.AppendPromHeader(buf, "lamod_cache_hits_total", "counter", "Fallback-path ranking cache hits.")
	buf = obs.AppendPromInt(buf, "lamod_cache_hits_total", "", s.met.cacheHits.Load())
	buf = obs.AppendPromHeader(buf, "lamod_cache_misses_total", "counter", "Fallback-path ranking cache misses.")
	buf = obs.AppendPromInt(buf, "lamod_cache_misses_total", "", s.met.cacheMisses.Load())
	buf = obs.AppendPromHeader(buf, "lamod_singleflight_shared_total", "counter", "Queries that piggybacked on an in-flight twin.")
	buf = obs.AppendPromInt(buf, "lamod_singleflight_shared_total", "", s.met.flightShared.Load())
	buf = obs.AppendPromHeader(buf, "lamod_queries_total", "counter", "Bulk plans executed via /v1/query.")
	buf = obs.AppendPromInt(buf, "lamod_queries_total", "", s.met.queries.Load())
	buf = obs.AppendPromHeader(buf, "lamod_query_rows_total", "counter", "Result rows streamed by /v1/query.")
	buf = obs.AppendPromInt(buf, "lamod_query_rows_total", "", s.met.queryRows.Load())
	buf = obs.AppendPromHeader(buf, "lamod_access_log_dropped_total", "counter", "Access-log records dropped because the ring was full.")
	buf = obs.AppendPromInt(buf, "lamod_access_log_dropped_total", "", s.access.Dropped())

	buf = obs.AppendPromHeader(buf, "lamod_cache_entries", "gauge", "Entries resident in the fallback ranking cache.")
	buf = obs.AppendPromInt(buf, "lamod_cache_entries", "", int64(s.cache.len()))

	buf = obs.AppendPromHeader(buf, "lamod_request_duration_seconds", "histogram", "Request wall time by route.")
	for route := 0; route < numRoutes; route++ {
		hs := s.met.lat[route].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if s.cfg.PromExemplars {
			buf = obs.AppendPromHistogramExemplar(buf, "lamod_request_duration_seconds", promRouteLabels[route], hs, &s.exRoute[route])
		} else {
			buf = obs.AppendPromHistogram(buf, "lamod_request_duration_seconds", promRouteLabels[route], hs)
		}
	}

	buf = obs.AppendPromHeader(buf, "lamod_query_duration_seconds", "histogram", "Bulk-plan execute+stream time by plan kind.")
	for kind := 0; kind < numPlanKinds; kind++ {
		hs := s.met.planLat[kind].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if s.cfg.PromExemplars {
			buf = obs.AppendPromHistogramExemplar(buf, "lamod_query_duration_seconds", promPlanLabels[kind], hs, &s.exPlan[kind])
		} else {
			buf = obs.AppendPromHistogram(buf, "lamod_query_duration_seconds", promPlanLabels[kind], hs)
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	buf = obs.AppendPromHeader(buf, "lamod_goroutines", "gauge", "Live goroutines in the daemon process.")
	buf = obs.AppendPromInt(buf, "lamod_goroutines", "", int64(runtime.NumGoroutine()))
	buf = obs.AppendPromHeader(buf, "lamod_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	buf = obs.AppendPromInt(buf, "lamod_heap_alloc_bytes", "", int64(ms.HeapAlloc))
	buf = obs.AppendPromHeader(buf, "lamod_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.")
	buf = obs.AppendPromFloat(buf, "lamod_gc_pause_seconds_total", "", float64(ms.PauseTotalNs)/1e9)
	buf = obs.AppendPromHeader(buf, "lamod_gc_cycles_total", "counter", "Completed GC cycles.")
	buf = obs.AppendPromInt(buf, "lamod_gc_cycles_total", "", int64(ms.NumGC))

	h := w.Header()
	h["Content-Type"] = contentTypeProm
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// Package serve implements the lamod prediction daemon: an HTTP JSON API
// over one read-only, checksummed model artifact. The expensive pipeline
// (mining, uniqueness, labeling) happened at `lamod build` time; a request
// only runs the cheap LMS aggregation (Eq. 5), so one process can serve
// many queries against one mined model.
//
// Endpoints (all under /v1):
//
//	GET  /v1/healthz — liveness plus readiness, artifact identity, model counts
//	GET  /v1/predict?protein=NAME&k=N — rank functions for one or more proteins
//	POST /v1/predict {"proteins": ["A", ...], "k": N} — batch form
//	POST /v1/query   — execute one bulk query plan (internal/query) against
//	                   the request's model snapshot, streaming the result
//	GET  /v1/motifs  — the labeled motifs backing the model
//	GET  /v1/metrics — request/latency/cache counters (JSON)
//	GET  /metrics    — the same state in Prometheus text format, plus Go
//	                   runtime gauges
//	POST /v1/admin/reload — swap the served artifact in place (opt-in via
//	                   Config.AllowReload): load read-only, verify digest,
//	                   atomic model flip, zero dropped requests
//
// Every response carries an X-Request-Id header (echoing a valid client
// value or generated), and with Config.Logger set each request emits one
// structured access-log line off the hot path.
//
// Responses are byte-deterministic: the same artifact and query produce
// identical bytes at any Parallelism setting, across runs and across
// processes, because scores are pure functions of the artifact and the
// ranking (predict.TopK) and JSON field order are fixed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/obs"
	"lamofinder/internal/par"
	"lamofinder/internal/predict"
	"lamofinder/internal/query"
)

// Config tunes the daemon. The zero value of any field falls back to the
// default; none of the knobs change response bytes.
type Config struct {
	// Parallelism caps the worker goroutines scoring a batch request
	// (0 = GOMAXPROCS). Irrelevant on the index path, which only reads.
	Parallelism int
	// CacheSize bounds the LRU of ranked score vectors, in entries. Only
	// the fallback (unindexed) path consults it.
	CacheSize int
	// RequestTimeout is the per-request deadline enforced server-side.
	RequestTimeout time.Duration
	// MaxBatch caps the proteins accepted in one predict request.
	MaxBatch int
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ on
	// the daemon's own mux, outside the request deadline (a 30s CPU
	// profile must outlive a 5s predict timeout). Off by default: the
	// endpoints expose stacks and heap contents, so they are opt-in for
	// operators, never ambient.
	EnablePprof bool
	// Logger, when set, enables structured access logging: one line per
	// request (trace id, method, route, status, duration), emitted off the
	// hot path through a bounded ring drained by a background goroutine.
	// Nil disables access logging entirely.
	Logger *obs.Logger
	// AccessLogSize bounds the access-log ring (0 = 1024 entries). When
	// the drain goroutine cannot keep up the ring drops records and counts
	// them in the access_log_dropped metric — logging never blocks a
	// request.
	AccessLogSize int
	// Trace generates request IDs for requests that do not supply a valid
	// X-Request-Id header (nil = a fresh "req"-prefixed source). Seeded
	// sources make generated IDs deterministic in tests.
	Trace *obs.TraceSource
	// TraceSampleEvery selects span-trace head sampling: every Nth request
	// records a full span tree into the trace store (0 = the obs default,
	// 1 in 16). Negative disables head sampling — only forced requests
	// (client X-Request-Id, X-Trace-Sample: 1, or a propagated
	// X-Trace-Context) trace. Sampling never changes response bytes.
	TraceSampleEvery int
	// TraceStoreSize bounds the ring of finished traces served by
	// GET /v1/traces (0 = the obs default, 256).
	TraceStoreSize int
	// PromExemplars opts the /metrics latency histograms into OpenMetrics
	// exemplar annotations (`# {trace_id="..."} <seconds>` on the bucket
	// holding the most recent traced sample). Off by default so the classic
	// text exposition stays byte-compatible.
	PromExemplars bool
	// AllowReload mounts POST /v1/admin/reload: load a new artifact file
	// read-only, verify its digest, and atomically flip the served model
	// without dropping a request. Off by default — the endpoint lets a
	// caller make the daemon read arbitrary local files, so it is opt-in
	// for operators running a coordinator (lamod gateway), never ambient.
	AllowReload bool
	// ReloadDir, when non-empty, restricts /v1/admin/reload to artifact
	// paths inside this directory (after filepath.Clean). Empty means any
	// path the process can read.
	ReloadDir string
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		CacheSize:      1024,
		RequestTimeout: 5 * time.Second,
		MaxBatch:       64,
	}
}

// model is the immutable bundle a request scores against: the artifact
// plus everything derived from it at load time. Requests read the bundle
// through one atomic pointer load, so /v1/admin/reload can flip the whole
// set consistently — a request never sees artifact A's index with
// artifact B's name table. Old models drain naturally: in-flight requests
// keep their loaded pointer until they finish, exactly like in-flight
// requests keep the old process alive through the SIGTERM/Shutdown path.
type model struct {
	art    *artifact.Artifact
	scorer *predict.LabeledMotif
	index  *artifact.ScoreIndex // nil for v1 artifacts: score on demand
	view   *query.View          // columnar binding for /v1/query bulk plans
	byName map[string]int
	digest string
}

// newModel derives the request-time bundle from a loaded artifact. The
// artifact is shared read-only across request goroutines and must not be
// mutated afterwards. The columnar query view is built here, once per
// load, beside the row-major index — so a reload flips the predict path
// and the bulk-query path in the same atomic pointer swap.
func newModel(art *artifact.Artifact) (*model, error) {
	digest, err := art.Digest()
	if err != nil {
		return nil, fmt.Errorf("serve: digest artifact: %w", err)
	}
	byName := make(map[string]int, art.Graph.N())
	for v := art.Graph.N() - 1; v >= 0; v-- {
		// Reverse order so the lowest index wins a (pathological) name clash.
		byName[art.Graph.Name(v)] = v
	}
	view, err := query.NewView(art, 0)
	if err != nil {
		return nil, fmt.Errorf("serve: build query view: %w", err)
	}
	return &model{
		art:    art,
		scorer: art.NewScorer(),
		index:  art.Index,
		view:   view,
		byName: byName,
		digest: digest,
	}, nil
}

// Server answers prediction queries against one loaded artifact.
type Server struct {
	mdl       atomic.Pointer[model]
	ready     atomic.Bool // false while an artifact reload is in flight
	reloading atomic.Bool // serializes reloads; readiness gate for routers
	cfg       Config
	cache     *lruCache
	flight    *flightGroup
	met       metrics
	trace     *obs.TraceSource
	access    *obs.AccessLog // nil when Config.Logger is nil
	tracer    *obs.Tracer
	// Most-recent-traced-sample cells for the /metrics exemplar rendering,
	// one per request-latency histogram.
	exRoute [numRoutes]obs.Exemplar
	exPlan  [numPlanKinds]obs.Exemplar
}

// New builds a server over a loaded artifact. The artifact is shared
// read-only across request goroutines and must not be mutated afterwards.
func New(art *artifact.Artifact, cfg Config) (*Server, error) {
	def := DefaultConfig()
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = def.CacheSize
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	m, err := newModel(art)
	if err != nil {
		return nil, err
	}
	trace := cfg.Trace
	if trace == nil {
		trace = obs.NewTraceSource("req", 0)
	}
	s := &Server{
		cfg:    cfg,
		cache:  newLRUCache(cfg.CacheSize),
		flight: newFlightGroup(),
		trace:  trace,
		access: obs.NewAccessLog(cfg.Logger, cfg.AccessLogSize),
		tracer: obs.NewTracer(cfg.TraceSampleEvery, cfg.TraceStoreSize, cfg.Logger),
	}
	s.mdl.Store(m)
	s.ready.Store(true)
	return s, nil
}

// Indexed reports whether the served artifact carries a score index.
func (s *Server) Indexed() bool { return s.mdl.Load().index != nil }

// Digest returns the served artifact's identity.
func (s *Server) Digest() string { return s.mdl.Load().digest }

// Ready reports readiness: true when the server is willing to take new
// traffic, false while an artifact reload is in flight (the liveness half
// — the process answering at all — is the HTTP response itself).
func (s *Server) Ready() bool { return s.ready.Load() }

// Metrics returns a point-in-time counter snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	return s.met.snapshot(s.mdl.Load().digest, s.cache.len(), s.access.Dropped())
}

// ErrReloadInFlight is returned when a reload is requested while another
// one is still running; the caller should retry after the first finishes.
var ErrReloadInFlight = errors.New("serve: artifact reload already in flight")

// ReloadResult reports one completed artifact swap.
type ReloadResult struct {
	Previous string `json:"previous"` // digest served before the swap
	Artifact string `json:"artifact"` // digest served now
}

// Reload loads the artifact at path read-only and atomically flips the
// served model to it. While the reload is in flight Ready reports false,
// so a health-gating router drains this replica before the flip; requests
// that still arrive are answered correctly throughout (old model until
// the flip, new model after — never a mix). wantDigest, when non-empty,
// must match the new artifact's identity or the swap is refused and the
// old model keeps serving. The previous model is not torn down: requests
// holding it finish on it, then it is garbage. The ranking cache needs no
// flush because its keys carry the digest.
func (s *Server) Reload(path, wantDigest string) (ReloadResult, error) {
	if !s.reloading.CompareAndSwap(false, true) {
		return ReloadResult{}, ErrReloadInFlight
	}
	defer s.reloading.Store(false)
	// Readiness drops for the duration of the load and restores on every
	// exit: an aborted reload leaves the old, still-valid model serving.
	s.ready.Store(false)
	defer s.ready.Store(true)
	art, err := artifact.LoadFile(path)
	if err != nil {
		return ReloadResult{}, fmt.Errorf("serve: reload: %w", err)
	}
	m, err := newModel(art)
	if err != nil {
		return ReloadResult{}, err
	}
	if wantDigest != "" && m.digest != wantDigest {
		return ReloadResult{}, fmt.Errorf("serve: reload: artifact digest %s does not match requested %s", m.digest, wantDigest)
	}
	prev := s.mdl.Swap(m)
	return ReloadResult{Previous: prev.digest, Artifact: m.digest}, nil
}

// Close flushes and stops the access-log and trace-summary drain
// goroutines. Serve calls it on shutdown; tests and embedders that never
// call Serve should close the server themselves. Idempotent and safe on a
// logger-less server.
func (s *Server) Close() {
	s.access.Close()
	s.tracer.Close()
}

// Handler returns the daemon's HTTP handler: its own ServeMux (never the
// process-global one), instrumented, with the per-request deadline applied.
// With EnablePprof the profiling endpoints mount beside — not inside — the
// deadlined chain, so profiles longer than the request timeout work.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/motifs", s.handleMotifs)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/traces/", s.handleTraces)
	mux.HandleFunc("/metrics", s.handleProm)
	deadlined := http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request deadline exceeded"}`)
	h := s.instrument(deadlined)
	if !s.cfg.EnablePprof && !s.cfg.AllowReload {
		return h
	}
	root := http.NewServeMux()
	root.Handle("/", h)
	if s.cfg.AllowReload {
		// The reload endpoint sits beside — not inside — the deadlined
		// chain: loading a large artifact may legitimately outlive the
		// predict deadline. It still runs instrumented, so reloads show in
		// the latency map and the access log like any other route.
		root.Handle("/v1/admin/reload", s.instrument(http.HandlerFunc(s.handleReload)))
	}
	if s.cfg.EnablePprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return root
}

// ListenAndServe runs the daemon on addr until ctx is canceled (the caller
// wires SIGTERM/SIGINT into ctx), then shuts down gracefully: the listener
// closes immediately, in-flight requests drain for up to drain, and only
// then does the call return.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	return s.Serve(ctx, l, drain)
}

// Serve is ListenAndServe over an existing listener, which it takes
// ownership of.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	<-errc    // Serve has returned http.ErrServerClosed
	s.Close() // flush buffered access logs before the process reports clean shutdown
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// statusRecorder captures the response code for the metrics middleware.
// idval backs the X-Request-Id response header: assigning idval[:] into
// the header map shares the pooled array instead of allocating a fresh
// []string per request. Reusing the array is safe because every
// instrumented route writes its response (serializing the headers) before
// ServeHTTP returns, so no response still reads the slice once the
// recorder goes back to the pool.
type statusRecorder struct {
	http.ResponseWriter
	status int
	idval  [1]string
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// instrument wraps the handler chain with the full observability layer —
// trace IDs, per-route latency histograms, error counters and ring-fed
// access logs — at zero allocations per request when the client supplies
// an X-Request-Id (generating a fallback ID builds one small string).
// The recorder is returned to the pool without defer so a panicking
// handler abandons it instead of recycling possibly inconsistent state.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if !obs.ValidTraceID(id) {
			// Invalid or absent client IDs are replaced, never sanitized, so
			// logs cannot carry attacker-shaped strings.
			id = s.trace.Next()
		}
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter = w
		rec.status = http.StatusOK
		rec.idval[0] = id
		w.Header()["X-Request-Id"] = rec.idval[:]
		next.ServeHTTP(rec, r)
		// A handler that mints a trace (head-sampled request with no usable
		// client ID) overrides the echoed X-Request-Id; re-read the header
		// so the access log carries the ID the trace is stored under. One
		// constant-key map lookup — nothing on the 0-alloc path changes.
		if vs := rec.Header()["X-Request-Id"]; len(vs) == 1 {
			id = vs[0]
		}
		dur := time.Since(start)
		route := routeOf(r.URL.Path)
		s.met.requests.Add(1)
		if rec.status >= 400 {
			s.met.errors.Add(1)
		}
		s.met.lat[route].Record(dur)
		if s.access != nil {
			s.access.Push(obs.AccessRecord{
				Time:     start,
				TraceID:  id,
				Method:   r.Method,
				Route:    routeNames[route],
				Status:   rec.status,
				Duration: dur,
			})
		}
		rec.ResponseWriter = nil
		recorderPool.Put(rec)
	})
}

// Prediction is one ranked function for one protein.
type Prediction struct {
	Function int     `json:"function"`
	Name     string  `json:"name"`
	Score    float64 `json:"score"`
}

// ProteinResult is the ranking for one queried protein.
type ProteinResult struct {
	Protein     string       `json:"protein"`
	Predictions []Prediction `json:"predictions"`
}

// PredictResponse is the body of /v1/predict.
type PredictResponse struct {
	Artifact string          `json:"artifact"`
	K        int             `json:"k"`
	Results  []ProteinResult `json:"results"`
}

type predictRequest struct {
	Proteins []string `json:"proteins"`
	K        int      `json:"k"`
}

// parsePredictQuery scans a raw GET query for protein= values (in order)
// and the first k=, appending proteins into the scratch without copying
// when the value carries no percent- or plus-escapes. It mirrors what
// r.URL.Query() yields for the keys the handler reads: unparsable pairs
// are skipped, later duplicate k values are ignored. Hand-rolling the scan
// keeps the index hot path free of the per-request url.Values map.
func parsePredictQuery(raw string, sc *scratch) (k string) {
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, raw = pair[:i], pair[i+1:]
		} else {
			raw = ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue // url.ParseQuery drops semicolon-bearing pairs
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		switch key {
		case "protein":
			if strings.ContainsAny(val, "%+") {
				dec, err := url.QueryUnescape(val)
				if err != nil {
					continue
				}
				val = dec
			}
			sc.proteins = append(sc.proteins, val)
		case "k":
			if k != "" {
				continue
			}
			if strings.ContainsAny(val, "%+") {
				dec, err := url.QueryUnescape(val)
				if err != nil {
					continue
				}
				val = dec
			}
			k = val
		}
	}
	return k
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(w, r, "predict")
	defer s.endTrace(tr, routePredict)
	// One pointer load pins the whole model for this request: a concurrent
	// reload flips the pointer for later requests, never mid-request.
	m := s.mdl.Load()
	sc := getScratch()
	defer putScratch(sc)
	parseSpan := tr.StartSpan(tr.Root(), "parse")
	k := 0
	switch r.Method {
	case http.MethodGet:
		if ks := parsePredictQuery(r.URL.RawQuery, sc); ks != "" {
			v, err := strconv.Atoi(ks)
			if err != nil {
				s.writeFieldError(w, http.StatusBadRequest, query.Errorf("k", "must be an integer, got %q", ks))
				return
			}
			k = v
		}
	case http.MethodPost:
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		sc.proteins = append(sc.proteins, req.Proteins...)
		k = req.K
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	// Bounds checks run through the shared plan-validation path in
	// internal/query: /v1/predict's k and batch cap reject exactly the
	// inputs a plan's topk would, with the same structured (field, reason)
	// body, instead of this handler's former ad-hoc prose.
	if fe := query.ValidateBatch(len(sc.proteins), s.cfg.MaxBatch); fe != nil {
		s.writeFieldError(w, http.StatusBadRequest, fe)
		return
	}
	if fe := query.ValidateTopK(k); fe != nil {
		s.writeFieldError(w, http.StatusBadRequest, fe)
		return
	}
	if k == 0 || k > m.art.NumFunctions {
		k = m.art.NumFunctions
	}
	for _, name := range sc.proteins {
		p, ok := m.resolve(name)
		if !ok {
			s.writeFieldError(w, http.StatusNotFound, query.Errorf("protein", "unknown protein %q", name))
			return
		}
		sc.ids = append(sc.ids, p)
	}
	tr.SetRows(parseSpan, int64(len(sc.proteins)), int64(len(sc.ids)))
	tr.EndSpan(parseSpan)

	rankSpan := tr.StartSpan(tr.Root(), "rank")
	if cap(sc.rankings) < len(sc.ids) {
		sc.rankings = make([][]predict.Ranked, len(sc.ids))
	}
	sc.rankings = sc.rankings[:len(sc.ids)]
	if m.index != nil {
		// Index hit: a prediction is a subslice of the precomputed full
		// ranking — no scoring, no sorting, no worker pool, no allocation.
		for i, p := range sc.ids {
			rk := m.index.Ranking(p)
			if k < len(rk) {
				rk = rk[:k]
			}
			sc.rankings[i] = rk
		}
		s.met.indexHits.Add(int64(len(sc.ids)))
		tr.SetDetail(rankSpan, "index")
	} else {
		// Fallback (v1 artifact): score the batch on the worker pool; each
		// slot is written only by its own index, so response order always
		// matches request order.
		par.Do(len(sc.ids), par.Workers(s.cfg.Parallelism), func(i int) {
			sc.rankings[i] = s.scoreOne(m, sc.ids[i], k)
		})
		tr.SetDetail(rankSpan, "score")
	}
	s.met.predictions.Add(int64(len(sc.ids)))
	tr.SetRows(rankSpan, int64(len(sc.ids)), int64(len(sc.ids)))
	tr.EndSpan(rankSpan)
	encodeSpan := tr.StartSpan(tr.Root(), "encode")
	sc.buf = appendPredictResponse(sc.buf, m.digest, k, sc.proteins, sc.rankings, m.art.FunctionNames)
	s.writeRaw(w, http.StatusOK, sc.buf)
	tr.EndSpan(encodeSpan)
}

// handleQuery executes one bulk query plan (POST /v1/query). The plan
// binds against the columnar view of the model snapshot pinned by this
// request's single pointer load — a concurrent reload never splits a plan
// across two models — and the result streams straight from the engine's
// per-batch buffers, so a full-interactome scan never materializes twice.
// Validation failures return the same structured (field, reason) body as
// /v1/predict's bounds checks; both run the one shared path in
// internal/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	tr := s.startTrace(w, r, "query")
	defer s.endTrace(tr, routeQuery)
	m := s.mdl.Load()
	decodeSpan := tr.StartSpan(tr.Root(), "decode")
	var plan query.Plan
	if err := json.NewDecoder(r.Body).Decode(&plan); err != nil {
		s.writeFieldError(w, http.StatusBadRequest, query.Errorf("body", "bad plan JSON: %v", err))
		return
	}
	tr.EndSpan(decodeSpan)
	start := time.Now()
	execSpan := tr.StartSpan(tr.Root(), "execute")
	// Operator stats are collected whenever the request is traced, even
	// without "explain": true — the trace gets per-operator child spans
	// either way; the response body gains the explain field only on request.
	res, stats, fe := query.ExecuteStats(m.view, &plan, s.cfg.Parallelism, tr != nil)
	if fe != nil {
		s.writeFieldError(w, http.StatusBadRequest, fe)
		return
	}
	tr.EndSpan(execSpan)
	if tr != nil && stats != nil {
		// Operator busy time is CPU occupancy summed across workers; spans
		// carry it as the duration, anchored at the execute span's start.
		for i := range stats.Ops {
			o := &stats.Ops[i]
			tr.AddSpan(execSpan, o.Op, "", start, time.Duration(o.BusyUS)*time.Microsecond, o.RowsIn, o.RowsOut)
		}
	}
	streamSpan := tr.StartSpan(tr.Root(), "stream")
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = contentTypeJSON
	}
	w.WriteHeader(http.StatusOK)
	// The client is gone if the stream fails; there is nowhere to report.
	_, _ = res.WriteTo(w)
	tr.SetRows(streamSpan, int64(res.RowCount()), int64(res.RowCount()))
	tr.EndSpan(streamSpan)
	s.met.queries.Add(1)
	s.met.queryRows.Add(int64(res.RowCount()))
	d := time.Since(start)
	s.met.planLat[planKindIndex(res.Kind)].Record(d)
	if tr != nil {
		s.exPlan[planKindIndex(res.Kind)].Set(tr.ID(), d.Microseconds())
	}
}

// fieldErrorResponse is the structured validation-error body: a flat
// human-readable message plus the machine-readable (field, reason) pair
// from the shared validation path.
type fieldErrorResponse struct {
	Error  string `json:"error"`
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (s *Server) writeFieldError(w http.ResponseWriter, status int, fe *query.FieldError) {
	s.writeJSON(w, status, fieldErrorResponse{Error: fe.Error(), Field: fe.Field, Reason: fe.Reason})
}

// resolve maps a protein name (or a bare vertex index) to its vertex id.
func (m *model) resolve(name string) (int, bool) {
	if p, ok := m.byName[name]; ok {
		return p, true
	}
	if p, err := strconv.Atoi(name); err == nil && p >= 0 && p < m.art.Graph.N() {
		return p, true
	}
	return 0, false
}

// scoreOne returns protein p's top-k ranking, consulting the LRU cache and
// collapsing concurrent identical queries through the flight group. The
// cache key carries the artifact digest, so a process serving a different
// model can never replay stale entries. Only unindexed artifacts reach
// this path; names are resolved at encode time.
func (s *Server) scoreOne(m *model, p, k int) []predict.Ranked {
	key := m.digest + "|" + strconv.Itoa(p) + "|" + strconv.Itoa(k)
	if v, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		return v.([]predict.Ranked)
	}
	s.met.cacheMisses.Add(1)
	v, _, shared := s.flight.do(key, func() (any, error) {
		ranked := predict.TopK(m.scorer.Scores(p), k)
		s.cache.put(key, ranked)
		return ranked, nil
	})
	if shared {
		s.met.flightShared.Add(1)
	}
	return v.([]predict.Ranked)
}

// healthzResponse is the body of /v1/healthz. Status is liveness (the
// process is up and serving); Ready is readiness (willing to take new
// traffic — false while an artifact reload is in flight, so a router
// drains the replica before the model flips).
type healthzResponse struct {
	Status       string `json:"status"`
	Ready        bool   `json:"ready"`
	Artifact     string `json:"artifact"`
	Dataset      string `json:"dataset"`
	Proteins     int    `json:"proteins"`
	Interactions int    `json:"interactions"`
	Functions    int    `json:"functions"`
	Motifs       int    `json:"motifs"`
	// Coverage counts the proteins inside at least one labeled motif — the
	// population the labeled-motif method can score at all.
	Coverage int `json:"coverage"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	m := s.mdl.Load()
	s.writeJSON(w, http.StatusOK, healthzResponse{
		Status:       "ok",
		Ready:        s.ready.Load(),
		Artifact:     m.digest,
		Dataset:      m.art.Dataset,
		Proteins:     m.art.Graph.N(),
		Interactions: m.art.Graph.M(),
		Functions:    m.art.NumFunctions,
		Motifs:       len(m.art.Motifs),
		Coverage:     m.scorer.Coverage(),
	})
}

// reloadRequest is the body of POST /v1/admin/reload. Artifact names the
// new artifact file on the daemon's filesystem; Digest, when non-empty,
// is the expected identity — a mismatched file is refused, which is what
// makes a coordinator-driven rollout end-to-end digest-verified.
type reloadRequest struct {
	Artifact string `json:"artifact"`
	Digest   string `json:"digest"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Artifact == "" {
		s.writeError(w, http.StatusBadRequest, "artifact path is required")
		return
	}
	if dir := s.cfg.ReloadDir; dir != "" {
		rel, err := filepath.Rel(dir, filepath.Clean(req.Artifact))
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			s.writeError(w, http.StatusForbidden, "artifact path %q is outside the reload directory", req.Artifact)
			return
		}
	}
	res, err := s.Reload(req.Artifact, req.Digest)
	switch {
	case errors.Is(err, ErrReloadInFlight):
		s.writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		s.writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// MotifSummary describes one labeled motif without its occurrence list.
type MotifSummary struct {
	Index       int        `json:"index"`
	Size        int        `json:"size"`
	Frequency   int        `json:"frequency"`
	Uniqueness  float64    `json:"uniqueness"`
	Occurrences int        `json:"occurrences"`
	Labels      [][]string `json:"labels"`
}

// MotifsResponse is the body of /v1/motifs.
type MotifsResponse struct {
	Artifact string         `json:"artifact"`
	Motifs   []MotifSummary `json:"motifs"`
}

func (s *Server) handleMotifs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	m := s.mdl.Load()
	out := MotifsResponse{Artifact: m.digest, Motifs: make([]MotifSummary, len(m.art.Motifs))}
	for i, lm := range m.art.Motifs {
		ms := MotifSummary{
			Index:       i,
			Size:        lm.Size(),
			Frequency:   lm.Frequency,
			Uniqueness:  lm.Uniqueness,
			Occurrences: len(lm.Occurrences),
			Labels:      make([][]string, lm.Size()),
		}
		for v, ts := range lm.Labels {
			for _, t := range ts {
				ms.Labels[v] = append(ms.Labels[v], m.art.Ontology.ID(int(t)))
			}
		}
		out.Motifs[i] = ms
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshal over plain structs cannot fail; guard anyway.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	s.writeRaw(w, status, append(b, '\n'))
}

// contentTypeJSON is the shared Content-Type header value: assigning the
// same backing slice on every response avoids the per-request []string
// allocation Header().Set would make on the hot path. net/http only reads
// header values.
var contentTypeJSON = []string{"application/json"}

// writeRaw writes a pre-encoded JSON body.
func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = contentTypeJSON
	}
	w.WriteHeader(status)
	// The client is gone if this write fails; there is nowhere to report.
	_, _ = w.Write(body)
}

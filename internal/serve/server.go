// Package serve implements the lamod prediction daemon: an HTTP JSON API
// over one read-only, checksummed model artifact. The expensive pipeline
// (mining, uniqueness, labeling) happened at `lamod build` time; a request
// only runs the cheap LMS aggregation (Eq. 5), so one process can serve
// many queries against one mined model.
//
// Endpoints (all under /v1):
//
//	GET  /v1/healthz — liveness plus artifact identity and model counts
//	GET  /v1/predict?protein=NAME&k=N — rank functions for one or more proteins
//	POST /v1/predict {"proteins": ["A", ...], "k": N} — batch form
//	GET  /v1/motifs  — the labeled motifs backing the model
//	GET  /v1/metrics — request/latency/cache counters
//
// Responses are byte-deterministic: the same artifact and query produce
// identical bytes at any Parallelism setting, across runs and across
// processes, because scores are pure functions of the artifact and the
// ranking (predict.TopK) and JSON field order are fixed.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"lamofinder/internal/artifact"
	"lamofinder/internal/par"
	"lamofinder/internal/predict"
)

// Config tunes the daemon. The zero value of any field falls back to the
// default; none of the knobs change response bytes.
type Config struct {
	// Parallelism caps the worker goroutines scoring a batch request
	// (0 = GOMAXPROCS).
	Parallelism int
	// CacheSize bounds the LRU of ranked score vectors, in entries.
	CacheSize int
	// RequestTimeout is the per-request deadline enforced server-side.
	RequestTimeout time.Duration
	// MaxBatch caps the proteins accepted in one predict request.
	MaxBatch int
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		CacheSize:      1024,
		RequestTimeout: 5 * time.Second,
		MaxBatch:       64,
	}
}

// Server answers prediction queries against one loaded artifact.
type Server struct {
	art    *artifact.Artifact
	scorer *predict.LabeledMotif
	byName map[string]int
	digest string
	cfg    Config
	cache  *lruCache
	flight *flightGroup
	met    metrics
}

// New builds a server over a loaded artifact. The artifact is shared
// read-only across request goroutines and must not be mutated afterwards.
func New(art *artifact.Artifact, cfg Config) (*Server, error) {
	def := DefaultConfig()
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = def.CacheSize
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	digest, err := art.Digest()
	if err != nil {
		return nil, fmt.Errorf("serve: digest artifact: %w", err)
	}
	byName := make(map[string]int, art.Graph.N())
	for v := art.Graph.N() - 1; v >= 0; v-- {
		// Reverse order so the lowest index wins a (pathological) name clash.
		byName[art.Graph.Name(v)] = v
	}
	return &Server{
		art:    art,
		scorer: art.NewScorer(),
		byName: byName,
		digest: digest,
		cfg:    cfg,
		cache:  newLRUCache(cfg.CacheSize),
		flight: newFlightGroup(),
	}, nil
}

// Digest returns the served artifact's identity.
func (s *Server) Digest() string { return s.digest }

// Metrics returns a point-in-time counter snapshot.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot(s.cache.len()) }

// Handler returns the daemon's HTTP handler: its own ServeMux (never the
// process-global one), instrumented, with the per-request deadline applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/motifs", s.handleMotifs)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	deadlined := http.TimeoutHandler(mux, s.cfg.RequestTimeout, `{"error":"request deadline exceeded"}`)
	return s.instrument(deadlined)
}

// ListenAndServe runs the daemon on addr until ctx is canceled (the caller
// wires SIGTERM/SIGINT into ctx), then shuts down gracefully: the listener
// closes immediately, in-flight requests drain for up to drain, and only
// then does the call return.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	return s.Serve(ctx, l, drain)
}

// Serve is ListenAndServe over an existing listener, which it takes
// ownership of.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// statusRecorder captures the response code for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.met.requests.Add(1)
		if rec.status >= 400 {
			s.met.errors.Add(1)
		}
		s.met.latencyMicros.Add(time.Since(start).Microseconds())
	})
}

// Prediction is one ranked function for one protein.
type Prediction struct {
	Function int     `json:"function"`
	Name     string  `json:"name"`
	Score    float64 `json:"score"`
}

// ProteinResult is the ranking for one queried protein.
type ProteinResult struct {
	Protein     string       `json:"protein"`
	Predictions []Prediction `json:"predictions"`
}

// PredictResponse is the body of /v1/predict.
type PredictResponse struct {
	Artifact string          `json:"artifact"`
	K        int             `json:"k"`
	Results  []ProteinResult `json:"results"`
}

type predictRequest struct {
	Proteins []string `json:"proteins"`
	K        int      `json:"k"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Proteins = q["protein"]
		if ks := q.Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "k must be an integer, got %q", ks)
				return
			}
			req.K = k
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if len(req.Proteins) == 0 {
		s.writeError(w, http.StatusBadRequest, "no proteins named (use ?protein=NAME or a JSON body)")
		return
	}
	if len(req.Proteins) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "%d proteins exceeds the batch cap of %d", len(req.Proteins), s.cfg.MaxBatch)
		return
	}
	if req.K < 0 {
		s.writeError(w, http.StatusBadRequest, "k must be non-negative, got %d", req.K)
		return
	}
	if req.K == 0 || req.K > s.art.NumFunctions {
		req.K = s.art.NumFunctions
	}
	ids := make([]int, len(req.Proteins))
	for i, name := range req.Proteins {
		p, ok := s.resolve(name)
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown protein %q", name)
			return
		}
		ids[i] = p
	}

	// Score the batch on the worker pool; each slot is written only by its
	// own index, so response order always matches request order.
	results := make([]ProteinResult, len(ids))
	par.Do(len(ids), par.Workers(s.cfg.Parallelism), func(i int) {
		results[i] = ProteinResult{
			Protein:     req.Proteins[i],
			Predictions: s.scoreOne(ids[i], req.K),
		}
	})
	s.met.predictions.Add(int64(len(ids)))
	s.writeJSON(w, http.StatusOK, PredictResponse{Artifact: s.digest, K: req.K, Results: results})
}

// resolve maps a protein name (or a bare vertex index) to its vertex id.
func (s *Server) resolve(name string) (int, bool) {
	if p, ok := s.byName[name]; ok {
		return p, true
	}
	if p, err := strconv.Atoi(name); err == nil && p >= 0 && p < s.art.Graph.N() {
		return p, true
	}
	return 0, false
}

// scoreOne returns protein p's top-k ranking, consulting the LRU cache and
// collapsing concurrent identical queries through the flight group. The
// cache key carries the artifact digest, so a process serving a different
// model can never replay stale entries.
func (s *Server) scoreOne(p, k int) []Prediction {
	key := s.digest + "|" + strconv.Itoa(p) + "|" + strconv.Itoa(k)
	if v, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		return v.([]Prediction)
	}
	s.met.cacheMisses.Add(1)
	v, _, shared := s.flight.do(key, func() (any, error) {
		ranked := predict.TopK(s.scorer.Scores(p), k)
		preds := make([]Prediction, len(ranked))
		for i, rk := range ranked {
			preds[i] = Prediction{
				Function: rk.Function,
				Name:     s.art.FunctionNames[rk.Function],
				Score:    rk.Score,
			}
		}
		s.cache.put(key, preds)
		return preds, nil
	})
	if shared {
		s.met.flightShared.Add(1)
	}
	return v.([]Prediction)
}

// healthzResponse is the body of /v1/healthz.
type healthzResponse struct {
	Status       string `json:"status"`
	Artifact     string `json:"artifact"`
	Dataset      string `json:"dataset"`
	Proteins     int    `json:"proteins"`
	Interactions int    `json:"interactions"`
	Functions    int    `json:"functions"`
	Motifs       int    `json:"motifs"`
	// Coverage counts the proteins inside at least one labeled motif — the
	// population the labeled-motif method can score at all.
	Coverage int `json:"coverage"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.writeJSON(w, http.StatusOK, healthzResponse{
		Status:       "ok",
		Artifact:     s.digest,
		Dataset:      s.art.Dataset,
		Proteins:     s.art.Graph.N(),
		Interactions: s.art.Graph.M(),
		Functions:    s.art.NumFunctions,
		Motifs:       len(s.art.Motifs),
		Coverage:     s.scorer.Coverage(),
	})
}

// MotifSummary describes one labeled motif without its occurrence list.
type MotifSummary struct {
	Index       int        `json:"index"`
	Size        int        `json:"size"`
	Frequency   int        `json:"frequency"`
	Uniqueness  float64    `json:"uniqueness"`
	Occurrences int        `json:"occurrences"`
	Labels      [][]string `json:"labels"`
}

// MotifsResponse is the body of /v1/motifs.
type MotifsResponse struct {
	Artifact string         `json:"artifact"`
	Motifs   []MotifSummary `json:"motifs"`
}

func (s *Server) handleMotifs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	out := MotifsResponse{Artifact: s.digest, Motifs: make([]MotifSummary, len(s.art.Motifs))}
	for i, lm := range s.art.Motifs {
		ms := MotifSummary{
			Index:       i,
			Size:        lm.Size(),
			Frequency:   lm.Frequency,
			Uniqueness:  lm.Uniqueness,
			Occurrences: len(lm.Occurrences),
			Labels:      make([][]string, lm.Size()),
		}
		for v, ts := range lm.Labels {
			for _, t := range ts {
				ms.Labels[v] = append(ms.Labels[v], s.art.Ontology.ID(int(t)))
			}
		}
		out.Motifs[i] = ms
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshal over plain structs cannot fail; guard anyway.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b = append(b, '\n')
	// The client is gone if this write fails; there is nowhere to report.
	_, _ = w.Write(b)
}

package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// timeIt returns fn's wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// These benchmarks pin the tentpole claim of the bulk-query engine: at
// interactome scale (1877 proteins), one /v1/query plan must beat an
// equivalent loop of single-protein /v1/predict calls by >= 10×. Both
// sides run over a real HTTP server with a keep-alive client, so the
// comparison includes everything a real consumer pays — connection
// handling, request parsing, handler dispatch, response encoding — not
// just scoring. The looped side pays that per protein; the bulk side pays
// it once and then streams rows out of the columnar engine.

// benchClient is a keep-alive client generous enough to never recycle
// connections mid-benchmark.
func benchClient() *http.Client {
	tr := &http.Transport{MaxIdleConns: 16, MaxIdleConnsPerHost: 16}
	return &http.Client{Transport: tr}
}

func benchDo(b *testing.B, c *http.Client, req *http.Request) int {
	b.Helper()
	resp, err := c.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	return int(n)
}

// BenchmarkQueryBulkScore scores every protein's top-5 functions with one
// bulk plan per iteration.
func BenchmarkQueryBulkScore(b *testing.B) {
	art := mipsArt()
	ts := newTestServer(b, art, Config{})
	client := benchClient()
	plan := `{"topk":5}`
	n := art.Graph.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(plan))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		benchDo(b, client, req)
	}
	b.StopTimer()
	perProtein := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perProtein, "ns/protein")
}

// BenchmarkLoopedPredict is the baseline the bulk plan replaces: the same
// top-5 scoring of every protein, issued as one /v1/predict round trip per
// protein.
func BenchmarkLoopedPredict(b *testing.B) {
	art := mipsArt()
	ts := newTestServer(b, art, Config{})
	client := benchClient()
	n := art.Graph.N()
	urls := make([]string, n)
	for p := 0; p < n; p++ {
		urls[p] = fmt.Sprintf("%s/v1/predict?protein=%s&k=5", ts.URL, art.Graph.Name(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < n; p++ {
			req, err := http.NewRequest(http.MethodGet, urls[p], nil)
			if err != nil {
				b.Fatal(err)
			}
			benchDo(b, client, req)
		}
	}
	b.StopTimer()
	perProtein := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perProtein, "ns/protein")
}

// TestBulkQueryBeatsLoopedPredict is the acceptance gate in test form:
// measured outside -bench runs too, so CI enforces the 10× bound on every
// push, not only when someone remembers to benchmark. One warm-up pass
// then one timed pass per side keeps it cheap enough for the test suite.
func TestBulkQueryBeatsLoopedPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	art := mipsArt()
	ts := newTestServer(t, art, Config{})
	client := benchClient()
	n := art.Graph.N()

	doPost := func() {
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"topk":5}`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bulk status %d", resp.StatusCode)
		}
	}
	doLoop := func(limit int) {
		for p := 0; p < limit; p++ {
			resp, err := client.Get(fmt.Sprintf("%s/v1/predict?protein=%s&k=5", ts.URL, art.Graph.Name(p)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("predict status %d", resp.StatusCode)
			}
		}
	}

	doPost()   // warm up connections and pools
	doLoop(64) // warm up the predict path too
	bulk := timeIt(doPost)
	loop := timeIt(func() { doLoop(n) })
	speedup := float64(loop) / float64(bulk)
	t.Logf("bulk %v, looped %v, speedup %.1fx over %d proteins", bulk, loop, speedup, n)
	if speedup < 10 {
		t.Fatalf("bulk query is only %.1fx faster than looped predict, acceptance floor is 10x (bulk %v, looped %v)",
			speedup, bulk, loop)
	}
}

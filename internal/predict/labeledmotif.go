package predict

// MotifInput is the slice of a labeled network motif the predictor needs:
// its size, conforming occurrences (pattern-vertex order), frequency and
// uniqueness. It mirrors label.LabeledMotif without importing it, so the
// dataset package can depend on predict without a cycle.
type MotifInput struct {
	Size        int
	Occurrences [][]int32
	Frequency   int
	Uniqueness  float64
}

// LabeledMotif predicts protein functions from labeled network motifs,
// implementing the paper's Section 5: a protein occupying vertex v of a
// labeled motif inherits the functions of the proteins that occupy v in the
// motif's other occurrences, weighted by the labeled motif strength LMS
// (Eq. 4), and aggregated by Eq. 5.
type LabeledMotif struct {
	t *Task
	// incidences[p] lists the (motif, vertex) positions protein p occupies.
	incidences [][]incidence
	// lms[g] is the labeled motif strength of motif g.
	lms []float64
	// delta[g][v][f] counts the occurrences of motif g whose protein at
	// vertex v carries function f.
	delta  [][][]float64
	motifs []MotifInput
}

type incidence struct {
	motif, vertex int
	// count is the number of occurrences placing the protein at this
	// (motif, vertex) slot; its own annotations are excluded count times.
	count float64
}

// incIndex merges repeated (protein, motif, vertex) placements in O(1),
// replacing a linear re-scan of the protein's incidence list on every
// occurrence — O(k) per insert for a hub protein with k slots, O(k²) over
// its occurrences. It is a dense map keyed by (motif, vertex) per protein:
// slot p*maxSize+v holds the position of p's incidence for vertex v of the
// motif stamped in the same slot, so a stale stamp (a different motif)
// reads as absent without any clearing between motifs. Incidence slices
// still grow in first-seen order, so construction — and the float
// summation order in Scores — is unchanged from the linear-scan builder.
type incIndex struct {
	maxSize int
	pos     []int32 // position inside incidences[p], valid iff stamped
	stamp   []int32 // 1+motif index that last wrote the slot
}

func newIncIndex(nProteins int, motifs []MotifInput) *incIndex {
	maxSize := 0
	for _, g := range motifs {
		if g.Size > maxSize {
			maxSize = g.Size
		}
	}
	return &incIndex{
		maxSize: maxSize,
		pos:     make([]int32, nProteins*maxSize),
		stamp:   make([]int32, nProteins*maxSize),
	}
}

// NewLabeledMotif indexes the labeled motifs against the task.
func NewLabeledMotif(t *Task, motifs []MotifInput) *LabeledMotif {
	lp := &LabeledMotif{
		t:          t,
		incidences: make([][]incidence, t.Network.N()),
		motifs:     motifs,
	}
	var at *incIndex
	if len(motifs) > 0 {
		at = newIncIndex(t.Network.N(), motifs)
	}
	// LMS(g) = s(g)*|g| / max_k over same-size labeled motifs (Eq. 4).
	maxBySize := map[int]float64{}
	for _, g := range motifs {
		v := g.Uniqueness * float64(g.Frequency)
		if v > maxBySize[g.Size] {
			maxBySize[g.Size] = v
		}
	}
	lp.lms = make([]float64, len(motifs))
	for i, g := range motifs {
		if mk := maxBySize[g.Size]; mk > 0 {
			lp.lms[i] = g.Uniqueness * float64(g.Frequency) / mk
		}
	}
	// Function tallies per (motif, vertex).
	lp.delta = make([][][]float64, len(motifs))
	for gi, g := range motifs {
		nv := g.Size
		lp.delta[gi] = make([][]float64, nv)
		for v := 0; v < nv; v++ {
			lp.delta[gi][v] = make([]float64, t.NumFunctions)
		}
		for _, occ := range g.Occurrences {
			for v, p := range occ {
				for _, f := range t.Functions[p] {
					lp.delta[gi][v][f]++
				}
				lp.addIncidence(at, int(p), gi, v)
			}
		}
	}
	return lp
}

// addIncidence records one more occurrence of protein p at (motif, vertex),
// merging repeats into a count via the construction-time position index.
func (lp *LabeledMotif) addIncidence(at *incIndex, p, motif, vertex int) {
	slot := p*at.maxSize + vertex
	if at.stamp[slot] == int32(motif+1) {
		lp.incidences[p][at.pos[slot]].count++
		return
	}
	at.stamp[slot] = int32(motif + 1)
	at.pos[slot] = int32(len(lp.incidences[p]))
	lp.incidences[p] = append(lp.incidences[p], incidence{motif, vertex, 1})
}

// Name implements Scorer.
func (lp *LabeledMotif) Name() string { return "LabeledMotif" }

// Scores implements Scorer (Eq. 5): f_x(p) = (1/z) sum over the labeled
// motifs containing p of delta_g(v, x) * LMS(g), with p's own annotations
// excluded from delta and z normalizing the maximum to 1.
func (lp *LabeledMotif) Scores(p int) []float64 {
	out := make([]float64, lp.t.NumFunctions)
	for _, inc := range lp.incidences[p] {
		w := lp.lms[inc.motif]
		if w == 0 {
			continue
		}
		d := lp.delta[inc.motif][inc.vertex]
		for f := range out {
			c := d[f]
			// Exclude the query protein's own annotations at this slot,
			// once per occurrence it fills.
			if lp.t.Has(p, f) {
				c -= inc.count
			}
			if c > 0 {
				out[f] += c * w
			}
		}
	}
	z := 0.0
	for _, v := range out {
		if v > z {
			z = v
		}
	}
	if z > 0 {
		for f := range out {
			out[f] /= z
		}
	}
	return out
}

// Coverage returns the number of proteins that occur in at least one
// labeled motif — the method can only score those.
func (lp *LabeledMotif) Coverage() int {
	n := 0
	for _, inc := range lp.incidences {
		if len(inc) > 0 {
			n++
		}
	}
	return n
}

package predict

import (
	"math"
	"testing"

	"lamofinder/internal/graph"
)

// starTask builds a hub with annotated leaves: hub 0 unknown; leaves 1..6
// annotated, four with function 0, two with function 1.
func starTask() *Task {
	g := graph.New(7)
	for v := 1; v <= 6; v++ {
		g.AddEdge(0, v)
	}
	t := NewTask(g, 3)
	t.Functions[1] = []int{0}
	t.Functions[2] = []int{0}
	t.Functions[3] = []int{0}
	t.Functions[4] = []int{0}
	t.Functions[5] = []int{1}
	t.Functions[6] = []int{1}
	return t
}

func TestTaskBasics(t *testing.T) {
	task := starTask()
	if task.NumAnnotated() != 6 {
		t.Errorf("NumAnnotated = %d", task.NumAnnotated())
	}
	if task.Annotated(0) {
		t.Error("hub should be unannotated")
	}
	if !task.Has(1, 0) || task.Has(1, 1) {
		t.Error("Has wrong")
	}
	pri := task.Priors()
	if math.Abs(pri[0]-4.0/6) > 1e-9 || math.Abs(pri[1]-2.0/6) > 1e-9 || pri[2] != 0 {
		t.Errorf("priors = %v", pri)
	}
}

func TestNCRanksMajorityFunction(t *testing.T) {
	task := starTask()
	nc := NewNC(task)
	if nc.Name() != "NC" {
		t.Errorf("name = %q", nc.Name())
	}
	s := nc.Scores(0)
	if s[0] != 4 || s[1] != 2 || s[2] != 0 {
		t.Errorf("NC scores = %v", s)
	}
}

func TestNCExcludesOwnAnnotation(t *testing.T) {
	// Protein 1's own function must not leak into its scores: scores come
	// only from neighbors (hub 0, unannotated).
	task := starTask()
	nc := NewNC(task)
	s := nc.Scores(1)
	for f, v := range s {
		if v != 0 {
			t.Errorf("leaf scores[%d] = %v, want 0 (only unannotated neighbor)", f, v)
		}
	}
}

func TestChiSquareEnrichment(t *testing.T) {
	task := starTask()
	cs := NewChiSquare(task)
	s := cs.Scores(0)
	// Function 0: observed 4, expected 6*(4/6) = 4 -> 0.
	if math.Abs(s[0]) > 1e-9 {
		t.Errorf("chi2[0] = %v, want 0 (exactly expected)", s[0])
	}
	// Function 2: observed 0 but prior 0 -> no evidence, 0.
	if s[2] != 0 {
		t.Errorf("chi2[2] = %v", s[2])
	}
}

func TestChiSquareSignedDepletion(t *testing.T) {
	// A protein whose neighbors all carry function 1 while the genome is
	// mostly function 0: f0 must score negative (depleted), f1 positive.
	g := graph.New(12)
	task := NewTask(g, 2)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, v)
		task.Functions[v] = []int{1}
	}
	for v := 5; v < 12; v++ {
		task.Functions[v] = []int{0}
	}
	cs := NewChiSquare(task)
	s := cs.Scores(0)
	if s[0] >= 0 {
		t.Errorf("depleted function scored %v, want negative", s[0])
	}
	if s[1] <= 0 {
		t.Errorf("enriched function scored %v, want positive", s[1])
	}
	if s[1] <= s[0] {
		t.Error("enrichment should outrank depletion")
	}
}

func TestMRFLearnsHomophily(t *testing.T) {
	// Two cliques with distinct functions: the MRF must give a higher
	// function-0 posterior to a protein inside the function-0 clique.
	g := graph.New(12)
	task := NewTask(g, 2)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
			g.AddEdge(6+i, 6+j)
		}
	}
	for i := 0; i < 6; i++ {
		task.Functions[i] = []int{0}
		task.Functions[6+i] = []int{1}
	}
	m := NewMRF(task)
	if m.Name() != "MRF" {
		t.Errorf("name = %q", m.Name())
	}
	s0 := m.Scores(0)
	s6 := m.Scores(6)
	if s0[0] <= s0[1] {
		t.Errorf("clique-0 member: P(f0)=%v <= P(f1)=%v", s0[0], s0[1])
	}
	if s6[1] <= s6[0] {
		t.Errorf("clique-1 member: P(f1)=%v <= P(f0)=%v", s6[1], s6[0])
	}
}

func TestProdistinGroupsByNeighborhood(t *testing.T) {
	// Two modules sharing no edges: proteins within a module have similar
	// neighborhoods; PRODISTIN must predict module-consistent functions.
	g := graph.New(12)
	task := NewTask(g, 2)
	// Module A: vertices 0..5 densely wired; B: 6..11.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
			g.AddEdge(6+i, 6+j)
		}
	}
	for i := 0; i < 6; i++ {
		task.Functions[i] = []int{0}
		task.Functions[6+i] = []int{1}
	}
	pr := NewProdistin(task)
	if pr.Name() != "PRODISTIN" {
		t.Errorf("name = %q", pr.Name())
	}
	s := pr.Scores(0)
	if s[0] <= s[1] {
		t.Errorf("module A member: score(f0)=%v <= score(f1)=%v", s[0], s[1])
	}
	s = pr.Scores(7)
	if s[1] <= s[0] {
		t.Errorf("module B member: score(f1)=%v <= score(f0)=%v", s[1], s[0])
	}
}

func TestCzekanowskiDiceProperties(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(4, 0)
	task := NewTask(g, 1)
	// 0 and 1 share neighbors {2,3}: much closer than 1 and 4, which share
	// nothing.
	d01 := czekanowskiDice(task, 0, 1)
	d14 := czekanowskiDice(task, 1, 4)
	if d01 >= d14 {
		t.Errorf("D(0,1)=%v should be < D(1,4)=%v", d01, d14)
	}
	if d14 != 1 {
		t.Errorf("disjoint neighborhoods: D=%v, want 1", d14)
	}
	if d := czekanowskiDice(task, 2, 2); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestLabeledMotifPredictor(t *testing.T) {
	// One labeled motif (an edge pattern) with 5 occurrences: position 0
	// proteins carry function 0, position 1 proteins carry function 1.
	// A query protein at position 0 must be scored f0 > f1.
	g := graph.New(10)
	task := NewTask(g, 2)
	var occs [][]int32
	for i := 0; i < 5; i++ {
		a, b := int32(2*i), int32(2*i+1)
		g.AddEdge(int(a), int(b))
		occs = append(occs, []int32{a, b})
		task.Functions[a] = []int{0}
		task.Functions[b] = []int{1}
	}
	lm := NewLabeledMotif(task, []MotifInput{{
		Size: 2, Occurrences: occs, Frequency: 5, Uniqueness: 1,
	}})
	if lm.Name() != "LabeledMotif" {
		t.Errorf("name = %q", lm.Name())
	}
	if lm.Coverage() != 10 {
		t.Errorf("coverage = %d", lm.Coverage())
	}
	s := lm.Scores(0) // protein 0 sits at position 0
	if s[0] <= s[1] {
		t.Errorf("position-0 protein: f0=%v <= f1=%v", s[0], s[1])
	}
	if s[0] != 1 {
		t.Errorf("normalized top score = %v, want 1", s[0])
	}
}

func TestLabeledMotifExcludesOwnAnnotation(t *testing.T) {
	// A single occurrence: the only evidence at the query's position is the
	// query itself, so its scores must be zero at its own function.
	g := graph.New(2)
	g.AddEdge(0, 1)
	task := NewTask(g, 2)
	task.Functions[0] = []int{0}
	task.Functions[1] = []int{1}
	lm := NewLabeledMotif(task, []MotifInput{{
		Size: 2, Occurrences: [][]int32{{0, 1}}, Frequency: 1, Uniqueness: 1,
	}})
	s := lm.Scores(0)
	if s[0] != 0 {
		t.Errorf("self-evidence leaked: %v", s)
	}
}

func TestLabeledMotifLMSWeighting(t *testing.T) {
	// Two same-size motifs, one with double the frequency*uniqueness: the
	// stronger motif dominates the query's score.
	g := graph.New(20)
	task := NewTask(g, 2)
	var strong, weak [][]int32
	for i := 0; i < 4; i++ {
		a, b := int32(2*i), int32(2*i+1)
		g.AddEdge(int(a), int(b))
		strong = append(strong, []int32{a, b})
		task.Functions[a] = []int{0}
	}
	for i := 4; i < 6; i++ {
		a, b := int32(2*i), int32(2*i+1)
		g.AddEdge(int(a), int(b))
		weak = append(weak, []int32{a, b})
		task.Functions[a] = []int{1}
	}
	// Query protein 18 appears at position 0 in one occurrence of each.
	strong = append(strong, []int32{18, 19})
	weak = append(weak, []int32{18, 19})
	lm := NewLabeledMotif(task, []MotifInput{
		{Size: 2, Occurrences: strong, Frequency: 5, Uniqueness: 1.0},
		{Size: 2, Occurrences: weak, Frequency: 3, Uniqueness: 0.5},
	})
	s := lm.Scores(18)
	if s[0] <= s[1] {
		t.Errorf("stronger motif should dominate: %v", s)
	}
}

func TestGibbsMRFLearnsHomophily(t *testing.T) {
	// Same two-clique setting as the plain MRF, plus unannotated bridges:
	// the sampler must fill them consistently with their clique.
	g := graph.New(14)
	task := NewTask(g, 2)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
			g.AddEdge(6+i, 6+j)
		}
	}
	for i := 0; i < 6; i++ {
		if i != 2 { // protein 2 and 8 stay unannotated
			task.Functions[i] = []int{0}
		}
		if i != 2 {
			task.Functions[6+i] = []int{1}
		}
	}
	// Two extra unannotated proteins hanging off each clique.
	g.AddEdge(12, 0)
	g.AddEdge(12, 1)
	g.AddEdge(13, 6)
	g.AddEdge(13, 7)
	m := NewGibbsMRF(task, DefaultGibbsConfig())
	if m.Name() != "MRF-Gibbs" {
		t.Errorf("name = %q", m.Name())
	}
	s0 := m.Scores(0)
	if s0[0] <= s0[1] {
		t.Errorf("clique-0 member: %v", s0)
	}
	// Unannotated protein attached to clique 0 leans function 0.
	s12 := m.Scores(12)
	if s12[0] <= s12[1] {
		t.Errorf("unannotated clique-0 satellite: %v", s12)
	}
	s13 := m.Scores(13)
	if s13[1] <= s13[0] {
		t.Errorf("unannotated clique-1 satellite: %v", s13)
	}
}

func TestGibbsMRFPosteriorsInRange(t *testing.T) {
	task := starTask()
	m := NewGibbsMRF(task, GibbsConfig{Sweeps: 10, BurnIn: 5, Seed: 2})
	for p := 0; p < 7; p++ {
		for f, v := range m.Scores(p) {
			if v < 0 || v > 1 {
				t.Fatalf("posterior out of range: p=%d f=%d v=%v", p, f, v)
			}
		}
	}
}

func TestLMSNormalization(t *testing.T) {
	// Eq. 4: within each motif size, the strongest motif has LMS = 1.
	g := graph.New(8)
	task := NewTask(g, 2)
	lp := NewLabeledMotif(task, []MotifInput{
		{Size: 2, Occurrences: nil, Frequency: 10, Uniqueness: 1.0}, // s*f = 10
		{Size: 2, Occurrences: nil, Frequency: 4, Uniqueness: 0.5},  // s*f = 2
		{Size: 3, Occurrences: nil, Frequency: 3, Uniqueness: 1.0},  // own size class
	})
	if lp.lms[0] != 1 {
		t.Errorf("strongest size-2 LMS = %v, want 1", lp.lms[0])
	}
	if math.Abs(lp.lms[1]-0.2) > 1e-12 {
		t.Errorf("weaker size-2 LMS = %v, want 0.2", lp.lms[1])
	}
	if lp.lms[2] != 1 {
		t.Errorf("sole size-3 LMS = %v, want 1", lp.lms[2])
	}
}

func TestPriorsEmptyTask(t *testing.T) {
	g := graph.New(3)
	task := NewTask(g, 2)
	for _, p := range task.Priors() {
		if p != 0 {
			t.Errorf("empty task priors = %v", task.Priors())
		}
	}
}

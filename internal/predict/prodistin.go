package predict

import (
	"lamofinder/internal/cluster"
)

// Prodistin is the PRODISTIN method of Brun et al.: proteins are placed in a
// BIONJ tree built from Czekanowski-Dice distances over interaction
// neighborhoods; a protein inherits the function distribution of the
// smallest enclosing subtree with enough annotated members.
type Prodistin struct {
	t    *Task
	tree *cluster.Tree
	// counts[node][f] = annotated leaves below node carrying f;
	// annAt[node] = annotated leaves below node.
	counts [][]float64
	annAt  []int
	// MinClassSize is the minimum number of annotated leaves (excluding the
	// query) a subtree needs to act as a functional class.
	MinClassSize int
}

// NewProdistin builds the distance matrix and BIONJ tree (O(n^3); prefer
// task sizes in the hundreds for interactive use).
func NewProdistin(t *Task) *Prodistin {
	n := t.Network.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := czekanowskiDice(t, i, j)
			d[i][j], d[j][i] = v, v
		}
	}
	tree := cluster.NeighborJoining(d)
	pr := &Prodistin{t: t, tree: tree, MinClassSize: 3}
	pr.aggregate()
	return pr
}

// czekanowskiDice returns the Czekanowski-Dice distance between the closed
// neighborhoods of proteins i and j: |A Δ B| / (|A| + |B| + |A ∩ B|) with
// A = N(i) ∪ {i}, B = N(j) ∪ {j}; identical neighborhoods give 0, disjoint
// ones 1.
func czekanowskiDice(t *Task, i, j int) float64 {
	ni, nj := t.Network.Neighbors(i), t.Network.Neighbors(j)
	inter := 0
	a, b := 0, 0
	// Merge-count over sorted lists, treating i and j as members of their
	// own neighborhoods.
	ai := append(append([]int32(nil), ni...), int32(i))
	bj := append(append([]int32(nil), nj...), int32(j))
	sortInt32(ai)
	sortInt32(bj)
	x, y := 0, 0
	for x < len(ai) && y < len(bj) {
		switch {
		case ai[x] == bj[y]:
			inter++
			x++
			y++
		case ai[x] < bj[y]:
			x++
		default:
			y++
		}
	}
	a, b = len(ai), len(bj)
	symDiff := a + b - 2*inter
	den := a + b + inter
	if den == 0 {
		return 1
	}
	return float64(symDiff) / float64(den)
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// aggregate fills per-node function tallies bottom-up.
func (pr *Prodistin) aggregate() {
	nn := pr.tree.NumNodes()
	pr.counts = make([][]float64, nn)
	pr.annAt = make([]int, nn)
	for v := 0; v < nn; v++ {
		pr.counts[v] = make([]float64, pr.t.NumFunctions)
	}
	// Nodes are created leaves-first, so ascending order is child-before-
	// parent for internal nodes.
	for v := 0; v < nn; v++ {
		if v < pr.tree.NumLeaves {
			if pr.t.Annotated(v) {
				pr.annAt[v] = 1
				for _, f := range pr.t.Functions[v] {
					pr.counts[v][f] = 1
				}
			}
			continue
		}
		for _, c := range pr.tree.Children[v] {
			pr.annAt[v] += pr.annAt[c]
			for f := range pr.counts[v] {
				pr.counts[v][f] += pr.counts[c][f]
			}
		}
	}
}

// Name implements Scorer.
func (pr *Prodistin) Name() string { return "PRODISTIN" }

// Scores implements Scorer: the function distribution of the smallest
// ancestor subtree containing at least MinClassSize annotated proteins
// besides p itself.
func (pr *Prodistin) Scores(p int) []float64 {
	out := make([]float64, pr.t.NumFunctions)
	if p >= pr.tree.NumLeaves {
		return out
	}
	// p's own contribution to subtree tallies, to subtract.
	ownAnn := 0
	if pr.t.Annotated(p) {
		ownAnn = 1
	}
	node := pr.tree.Parent[p]
	for node >= 0 {
		ann := pr.annAt[node] - ownAnn
		if ann >= pr.MinClassSize {
			for f := range out {
				c := pr.counts[node][f]
				if ownAnn == 1 && pr.t.Has(p, f) {
					c--
				}
				out[f] = c / float64(ann)
			}
			return out
		}
		node = pr.tree.Parent[node]
	}
	return out
}

// Package predict implements protein function prediction from PPI data: the
// paper's labeled-network-motif method (Eqs. 4-5) and the four published
// baselines it compares against in Figure 9 — Neighbor Counting
// (Schwikowski et al.), Chi-square (Hishigaki et al.), PRODISTIN (Brun et
// al.) and the Markov-random-field method (Deng et al.).
//
// All methods score the functions of a protein using only the annotations
// of *other* proteins, so leave-one-out evaluation needs no refitting.
package predict

import (
	"lamofinder/internal/graph"
)

// Task is a function-prediction benchmark: a PPI network whose proteins
// carry zero or more functional categories (the paper generalizes GO
// annotations to the top 13 yeast categories for Figure 9).
type Task struct {
	Network      *graph.Graph
	NumFunctions int
	// Functions[p] lists protein p's category ids (empty = unannotated).
	Functions [][]int
}

// NewTask returns an empty task over the given network.
func NewTask(g *graph.Graph, numFunctions int) *Task {
	return &Task{
		Network:      g,
		NumFunctions: numFunctions,
		Functions:    make([][]int, g.N()),
	}
}

// Annotated reports whether protein p has at least one category.
func (t *Task) Annotated(p int) bool { return len(t.Functions[p]) > 0 }

// NumAnnotated returns the number of annotated proteins.
func (t *Task) NumAnnotated() int {
	n := 0
	for _, fs := range t.Functions {
		if len(fs) > 0 {
			n++
		}
	}
	return n
}

// Has reports whether protein p carries function f.
func (t *Task) Has(p, f int) bool {
	for _, x := range t.Functions[p] {
		if x == f {
			return true
		}
	}
	return false
}

// Priors returns the fraction of annotated proteins carrying each function.
func (t *Task) Priors() []float64 {
	pi := make([]float64, t.NumFunctions)
	n := 0
	for p := range t.Functions {
		if !t.Annotated(p) {
			continue
		}
		n++
		for _, f := range t.Functions[p] {
			pi[f]++
		}
	}
	if n == 0 {
		return pi
	}
	for f := range pi {
		pi[f] /= float64(n)
	}
	return pi
}

// Scorer ranks candidate functions for a protein. Scores must not use the
// protein's own annotations (leave-one-out semantics): implementations
// treat the query protein as unannotated.
type Scorer interface {
	// Name identifies the method in reports.
	Name() string
	// Scores returns one score per function for protein p; higher is more
	// likely.
	Scores(p int) []float64
}

// neighborFunctionCounts tallies, for protein p, how many annotated
// neighbors carry each function and how many annotated neighbors there are
// in total, ignoring p's own annotations.
func neighborFunctionCounts(t *Task, p int) (counts []float64, annotated int) {
	counts = make([]float64, t.NumFunctions)
	for _, q := range t.Network.Neighbors(p) {
		if !t.Annotated(int(q)) {
			continue
		}
		annotated++
		for _, f := range t.Functions[q] {
			counts[f]++
		}
	}
	return counts, annotated
}

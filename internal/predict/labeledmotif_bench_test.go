package predict

import (
	"math"
	"math/rand"
	"testing"

	"lamofinder/internal/graph"
)

// yeastScaleInputs synthesizes a prediction task and labeled-motif
// occurrence sets at the paper's yeast interactome scale (~4400 proteins,
// 13 categories). Occurrence vertices are hub-skewed — cubing the uniform
// variate concentrates placements on low-index proteins the way scale-free
// interactomes concentrate motif occurrences on hubs — so a hub protein
// accumulates thousands of (motif, vertex) incidences and the constructor's
// merge strategy dominates the build cost.
func yeastScaleInputs(nProteins, nMotifs, occPerMotif, size int, seed int64) (*Task, []MotifInput) {
	rng := rand.New(rand.NewSource(seed))
	t := NewTask(graph.New(nProteins), 13)
	for p := 0; p < nProteins; p++ {
		for f := 0; f < t.NumFunctions; f++ {
			if rng.Float64() < 0.15 {
				t.Functions[p] = append(t.Functions[p], f)
			}
		}
	}
	motifs := make([]MotifInput, nMotifs)
	for m := range motifs {
		occs := make([][]int32, occPerMotif)
		for o := range occs {
			occ := make([]int32, size)
			for v := range occ {
				occ[v] = int32(float64(nProteins-1) * math.Pow(rng.Float64(), 3))
			}
			occs[o] = occ
		}
		motifs[m] = MotifInput{Size: size, Occurrences: occs, Frequency: occPerMotif, Uniqueness: 0.8}
	}
	return t, motifs
}

// BenchmarkNewLabeledMotifYeastScale measures predictor construction — the
// cost `lamod build` pays per artifact and the serve fallback path pays per
// process start.
func BenchmarkNewLabeledMotifYeastScale(b *testing.B) {
	t, motifs := yeastScaleInputs(4400, 300, 200, 5, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp := NewLabeledMotif(t, motifs)
		if lp.Coverage() == 0 {
			b.Fatal("synthetic inputs produced no coverage")
		}
	}
}

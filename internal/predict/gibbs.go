package predict

import "math/rand"

// GibbsMRF is the fuller Markov-random-field predictor in the spirit of
// Deng et al.: per function, an auto-logistic joint over all proteins whose
// unannotated labels are integrated out by Gibbs sampling, instead of the
// one-sweep conditional of MRF. Posteriors for annotated proteins are the
// averaged full conditionals with the protein treated as unobserved (its
// clamped value never enters its own conditional; residual influence via
// two-hop neighbors is the standard approximation in leave-one-out use).
type GibbsMRF struct {
	t *Task
	// posterior[f][p] = P(protein p has function f | observed labels).
	posterior [][]float64
}

// GibbsConfig sizes the sampler.
type GibbsConfig struct {
	Sweeps  int // sampling sweeps after burn-in
	BurnIn  int
	FitIter int // pseudo-likelihood gradient steps
	Seed    int64
}

// DefaultGibbsConfig balances mixing and run time for networks in the low
// thousands of proteins.
func DefaultGibbsConfig() GibbsConfig {
	return GibbsConfig{Sweeps: 60, BurnIn: 20, FitIter: MRFIterations, Seed: 1}
}

// NewGibbsMRF fits the per-function models and runs the sampler once,
// precomputing every protein's posterior.
func NewGibbsMRF(t *Task, cfg GibbsConfig) *GibbsMRF {
	if cfg.Sweeps <= 0 {
		cfg.Sweeps = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := NewMRF(t) // pseudo-likelihood parameter fit
	n := t.Network.N()
	g := &GibbsMRF{t: t, posterior: make([][]float64, t.NumFunctions)}

	var unannotated []int
	for p := 0; p < n; p++ {
		if !t.Annotated(p) {
			unannotated = append(unannotated, p)
		}
	}

	for f := 0; f < t.NumFunctions; f++ {
		pr := base.params[f]
		cond := func(p int, x []int8) float64 {
			m1, m0 := 0.0, 0.0
			for _, q := range t.Network.Neighbors(p) {
				switch x[q] {
				case 1:
					m1++
				case 0:
					m0++
				}
			}
			return sigmoid(pr[0] + pr[1]*m1 + pr[2]*m0)
		}
		// State: -1 unknown (never observed, currently unset), 0/1 known or
		// sampled.
		x := make([]int8, n)
		for p := 0; p < n; p++ {
			switch {
			case t.Annotated(p) && t.Has(p, f):
				x[p] = 1
			case t.Annotated(p):
				x[p] = 0
			default:
				x[p] = -1
			}
		}
		// Initialize unknowns from their conditional given the observed.
		for _, p := range unannotated {
			if rng.Float64() < cond(p, x) {
				x[p] = 1
			} else {
				x[p] = 0
			}
		}
		post := make([]float64, n)
		for sweep := 0; sweep < cfg.BurnIn+cfg.Sweeps; sweep++ {
			for _, p := range unannotated {
				if rng.Float64() < cond(p, x) {
					x[p] = 1
				} else {
					x[p] = 0
				}
			}
			if sweep < cfg.BurnIn {
				continue
			}
			// Accumulate: unannotated proteins contribute their sampled
			// state, annotated ones their held-out conditional.
			for p := 0; p < n; p++ {
				if t.Annotated(p) {
					post[p] += cond(p, x)
				} else if x[p] == 1 {
					post[p]++
				}
			}
		}
		for p := range post {
			post[p] /= float64(cfg.Sweeps)
		}
		g.posterior[f] = post
	}
	return g
}

// Name implements Scorer.
func (g *GibbsMRF) Name() string { return "MRF-Gibbs" }

// Scores implements Scorer.
func (g *GibbsMRF) Scores(p int) []float64 {
	out := make([]float64, g.t.NumFunctions)
	for f := range out {
		out[f] = g.posterior[f][p]
	}
	return out
}

package predict

import "sort"

// Ranked is one (function, score) prediction from a scorer.
type Ranked struct {
	Function int
	Score    float64
}

// TopK ranks a scorer's output vector: functions sorted by descending
// score, ties broken toward the smaller function index, truncated to the k
// best (k <= 0 means no truncation). Zero- and negative-score functions are
// dropped — a scorer that found no evidence predicts nothing. The ordering
// is a pure function of the score vector, so every consumer (the serving
// daemon, lamoctl, predictfn's offline mode) renders identical rankings.
func TopK(scores []float64, k int) []Ranked {
	ranked := make([]Ranked, 0, len(scores))
	for f, s := range scores {
		if s > 0 {
			ranked = append(ranked, Ranked{Function: f, Score: s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score > ranked[j].Score {
			return true
		}
		if ranked[i].Score < ranked[j].Score {
			return false
		}
		return ranked[i].Function < ranked[j].Function
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

package predict

import "sort"

// Ranked is one (function, score) prediction from a scorer.
type Ranked struct {
	Function int
	Score    float64
}

// rankedBefore is the ranking's strict total order: descending score, ties
// broken toward the smaller function index. Written as two inequalities so
// tie detection never compares computed floats with ==.
func rankedBefore(a, b Ranked) bool {
	if a.Score > b.Score {
		return true
	}
	if a.Score < b.Score {
		return false
	}
	return a.Function < b.Function
}

// TopK ranks a scorer's output vector: functions sorted by descending
// score, ties broken toward the smaller function index, truncated to the k
// best (k <= 0 means no truncation). Zero- and negative-score functions are
// dropped — a scorer that found no evidence predicts nothing. The ordering
// is a pure function of the score vector, so every consumer (the serving
// daemon, lamoctl, predictfn's offline mode) renders identical rankings.
//
// When k is small relative to the vector, selection runs through a bounded
// min-heap instead of a full sort; rankedBefore is a strict total order
// (function indices are unique), so both paths return identical slices,
// ties included.
func TopK(scores []float64, k int) []Ranked {
	if k > 0 && k <= len(scores)/8 {
		return topKHeap(scores, k)
	}
	return topKSort(scores, k)
}

// topKSort is the full-sort path: collect every positive score, sort, trim.
func topKSort(scores []float64, k int) []Ranked {
	ranked := make([]Ranked, 0, len(scores))
	for f, s := range scores {
		if s > 0 {
			ranked = append(ranked, Ranked{Function: f, Score: s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return rankedBefore(ranked[i], ranked[j]) })
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// topKHeap is the partial-selection path for 0 < k << len(scores): a
// k-bounded heap whose root is the worst entry kept so far, O(n log k)
// time and one k-sized allocation instead of collecting and sorting every
// positive score.
func topKHeap(scores []float64, k int) []Ranked {
	h := make([]Ranked, 0, k)
	for f, s := range scores {
		if s <= 0 {
			continue
		}
		x := Ranked{Function: f, Score: s}
		if len(h) < k {
			h = append(h, x)
			siftUp(h, len(h)-1)
		} else if rankedBefore(x, h[0]) {
			h[0] = x
			siftDown(h, 0)
		}
	}
	// Heapsort: repeatedly move the worst kept entry to the tail. The root
	// is the maximum in "ranked-after" order, so the array ends up best
	// first — exactly the ranking order.
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		siftDown(h[:n], 0)
	}
	return h
}

// siftUp restores the heap property (every parent ranks after its
// children) from leaf i upward.
func siftUp(h []Ranked, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !rankedBefore(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the heap property from node i downward.
func siftDown(h []Ranked, i int) {
	for {
		j := 2*i + 1
		if j >= len(h) {
			return
		}
		if r := j + 1; r < len(h) && rankedBefore(h[j], h[r]) {
			j = r
		}
		if !rankedBefore(h[i], h[j]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

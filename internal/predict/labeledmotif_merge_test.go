package predict

import (
	"reflect"
	"testing"
)

// referenceIncidences rebuilds the incidence lists with the original
// linear-scan merge, so the dense position-index builder is pinned to the
// exact slice contents and ordering the O(k²) construction produced.
func referenceIncidences(nProteins int, motifs []MotifInput) [][]incidence {
	inc := make([][]incidence, nProteins)
	add := func(p, motif, vertex int) {
		for i := range inc[p] {
			if inc[p][i].motif == motif && inc[p][i].vertex == vertex {
				inc[p][i].count++
				return
			}
		}
		inc[p] = append(inc[p], incidence{motif, vertex, 1})
	}
	for gi, g := range motifs {
		for _, occ := range g.Occurrences {
			for v, p := range occ {
				add(int(p), gi, v)
			}
		}
	}
	return inc
}

func TestIncidenceBuilderMatchesLinearScan(t *testing.T) {
	task, motifs := yeastScaleInputs(300, 40, 30, 5, 7)
	lp := NewLabeledMotif(task, motifs)
	want := referenceIncidences(task.Network.N(), motifs)
	for p := range want {
		if len(want[p]) == 0 && len(lp.incidences[p]) == 0 {
			continue
		}
		if !reflect.DeepEqual(lp.incidences[p], want[p]) {
			t.Fatalf("protein %d incidences diverge from linear-scan merge:\n got %+v\nwant %+v",
				p, lp.incidences[p], want[p])
		}
	}
}

func TestIncidenceBuilderNoMotifs(t *testing.T) {
	task, _ := yeastScaleInputs(10, 1, 1, 2, 1)
	lp := NewLabeledMotif(task, nil)
	if lp.Coverage() != 0 {
		t.Fatalf("coverage %d over zero motifs", lp.Coverage())
	}
	if got := lp.Scores(3); len(got) != task.NumFunctions {
		t.Fatalf("Scores length %d, want %d", len(got), task.NumFunctions)
	}
}

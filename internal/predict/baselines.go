package predict

import "math"

// NC is the Neighbor Counting method of Schwikowski et al.: a protein is
// scored by how often each function occurs among its direct interaction
// partners.
type NC struct{ t *Task }

// NewNC returns a neighbor-counting scorer for the task.
func NewNC(t *Task) *NC { return &NC{t: t} }

// Name implements Scorer.
func (n *NC) Name() string { return "NC" }

// Scores implements Scorer: raw neighbor frequency per function.
func (n *NC) Scores(p int) []float64 {
	counts, _ := neighborFunctionCounts(n.t, p)
	return counts
}

// ChiSquare is the method of Hishigaki et al.: functions are ranked by the
// chi-square statistic of their observed neighbor frequency against the
// expectation from the genome-wide function frequency.
type ChiSquare struct {
	t      *Task
	priors []float64
}

// NewChiSquare returns a chi-square scorer for the task.
func NewChiSquare(t *Task) *ChiSquare {
	return &ChiSquare{t: t, priors: t.Priors()}
}

// Name implements Scorer.
func (c *ChiSquare) Name() string { return "Chi2" }

// Scores implements Scorer: signed chi-square per function — positive when
// the function is over-represented in the neighborhood, negative when
// under-represented, so enrichment ranks above depletion.
func (c *ChiSquare) Scores(p int) []float64 {
	counts, annotated := neighborFunctionCounts(c.t, p)
	out := make([]float64, c.t.NumFunctions)
	if annotated == 0 {
		return out
	}
	for f := range out {
		e := float64(annotated) * c.priors[f]
		if e <= 0 {
			continue
		}
		d := counts[f] - e
		out[f] = d * math.Abs(d) / e
	}
	return out
}

// MRF is a Deng-style Markov-random-field predictor: for each function an
// auto-logistic model P(X_p = 1 | neighbors) = sigmoid(a + b*M1 + c*M0) is
// fitted by pseudo-likelihood (logistic regression over the annotated
// proteins), where M1/M0 count annotated neighbors with/without the
// function. Scoring a protein clamps its neighbors to their observed labels
// — the one-sweep belief estimate.
type MRF struct {
	t      *Task
	params [][3]float64 // per function: a, b, c
}

// MRFIterations is the number of gradient steps used in fitting.
const MRFIterations = 200

// NewMRF fits the per-function auto-logistic models.
func NewMRF(t *Task) *MRF {
	m := &MRF{t: t, params: make([][3]float64, t.NumFunctions)}
	// Collect features once per protein.
	type row struct {
		m1, m0 []float64
		ann    bool
	}
	rows := make([]row, t.Network.N())
	for p := 0; p < t.Network.N(); p++ {
		counts, annotated := neighborFunctionCounts(t, p)
		m1 := counts
		m0 := make([]float64, t.NumFunctions)
		for f := range m0 {
			m0[f] = float64(annotated) - m1[f]
		}
		rows[p] = row{m1: m1, m0: m0, ann: t.Annotated(p)}
	}
	for f := 0; f < t.NumFunctions; f++ {
		a, b, c := 0.0, 0.0, 0.0
		lr := 0.05
		for it := 0; it < MRFIterations; it++ {
			var ga, gb, gc float64
			n := 0
			for p := range rows {
				if !rows[p].ann {
					continue
				}
				n++
				y := 0.0
				if t.Has(p, f) {
					y = 1
				}
				x1, x0 := rows[p].m1[f], rows[p].m0[f]
				pr := sigmoid(a + b*x1 + c*x0)
				g := y - pr
				ga += g
				gb += g * x1
				gc += g * x0
			}
			if n == 0 {
				break
			}
			a += lr * ga / float64(n)
			b += lr * gb / float64(n)
			c += lr * gc / float64(n)
		}
		m.params[f] = [3]float64{a, b, c}
	}
	return m
}

// Name implements Scorer.
func (m *MRF) Name() string { return "MRF" }

// Scores implements Scorer: fitted posterior per function.
func (m *MRF) Scores(p int) []float64 {
	counts, annotated := neighborFunctionCounts(m.t, p)
	out := make([]float64, m.t.NumFunctions)
	for f := range out {
		x1 := counts[f]
		x0 := float64(annotated) - x1
		pr := m.params[f]
		out[f] = sigmoid(pr[0] + pr[1]*x1 + pr[2]*x0)
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

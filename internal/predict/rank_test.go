package predict

import (
	"reflect"
	"testing"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.2, 0, 0.9, 0.2, -0.1, 0.5}
	got := TopK(scores, 0)
	want := []Ranked{{2, 0.9}, {5, 0.5}, {0, 0.2}, {3, 0.2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK(k=0) = %v, want %v", got, want)
	}
	if got := TopK(scores, 2); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("TopK(k=2) = %v, want %v", got, want[:2])
	}
	if got := TopK([]float64{0, 0}, 3); len(got) != 0 {
		t.Fatalf("TopK over zero scores = %v, want empty", got)
	}
}

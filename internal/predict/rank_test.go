package predict

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.2, 0, 0.9, 0.2, -0.1, 0.5}
	got := TopK(scores, 0)
	want := []Ranked{{2, 0.9}, {5, 0.5}, {0, 0.2}, {3, 0.2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK(k=0) = %v, want %v", got, want)
	}
	if got := TopK(scores, 2); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("TopK(k=2) = %v, want %v", got, want[:2])
	}
	if got := TopK([]float64{0, 0}, 3); len(got) != 0 {
		t.Fatalf("TopK over zero scores = %v, want empty", got)
	}
}

// TestTopKHeapEqualsSort sweeps random score vectors — drawn from a small
// discrete set so ties are frequent — across every k, and requires the heap
// selection to reproduce the sort path exactly, ties included.
func TestTopKHeapEqualsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	levels := []float64{0, 0, 0.25, 0.25, 0.5, 0.5, 0.75, 1, -1}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = levels[rng.Intn(len(levels))]
		}
		for k := 1; k <= n+1; k++ {
			sorted := topKSort(scores, k)
			heaped := topKHeap(scores, k)
			if len(sorted) == 0 && len(heaped) == 0 {
				continue
			}
			if !reflect.DeepEqual(heaped, sorted) {
				t.Fatalf("trial %d n=%d k=%d: heap %v, sort %v\nscores %v",
					trial, n, k, heaped, sorted, scores)
			}
		}
	}
}

// TestTopKDispatch pins the selection threshold: a small k over a wide
// vector must take the heap path and still match the sort path.
func TestTopKDispatch(t *testing.T) {
	scores := make([]float64, 160)
	rng := rand.New(rand.NewSource(5))
	for i := range scores {
		scores[i] = float64(rng.Intn(8)) / 8
	}
	for _, k := range []int{0, 1, 10, 20, 21, 159, 160, 200} {
		if got, want := TopK(scores, k), topKSort(scores, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: TopK %v, sort %v", k, got, want)
		}
	}
}

// rankBenchScores builds a wide, mostly-positive score vector — the shape
// of a GO-term-granularity task where partial selection pays off.
func rankBenchScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		if rng.Float64() < 0.75 {
			scores[i] = rng.Float64()
		}
	}
	return scores
}

func BenchmarkTopKSort(b *testing.B) {
	scores := rankBenchScores(4096, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := topKSort(scores, 10); len(got) != 10 {
			b.Fatal("short ranking")
		}
	}
}

func BenchmarkTopKHeap(b *testing.B) {
	scores := rankBenchScores(4096, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := topKHeap(scores, 10); len(got) != 10 {
			b.Fatal("short ranking")
		}
	}
}

package label

import (
	"math/rand"
	"testing"

	"lamofinder/internal/dataset"
	"lamofinder/internal/graph"
)

func TestSymmetryStarUsesOrbitPairing(t *testing.T) {
	// Star S5: center + 5 leaves. All leaf permutations are automorphisms
	// (5! = 120 = product of orbit factorials), so orbit pairing is exact.
	d := graph.NewDense(6)
	for v := 1; v < 6; v++ {
		d.AddEdge(0, v)
	}
	sy := NewSymmetry(d)
	if !sy.ExactOrbitPairing() {
		t.Error("star should use exact orbit pairing")
	}
	if len(sy.Orbits) != 2 {
		t.Errorf("orbits = %v", sy.Orbits)
	}
}

func TestSymmetryCycleEnumeratesAutomorphisms(t *testing.T) {
	// C5: one orbit of 5 vertices (5! = 120 candidate pairings) but only 10
	// automorphisms -> must enumerate.
	d := graph.NewDense(5)
	for i := 0; i < 5; i++ {
		d.AddEdge(i, (i+1)%5)
	}
	sy := NewSymmetry(d)
	if sy.ExactOrbitPairing() {
		t.Fatal("C5 must enumerate automorphisms")
	}
	if len(sy.Auts) != 10 {
		t.Errorf("|Aut(C5)| = %d, want 10", len(sy.Auts))
	}
}

func TestSymmetryTailedTriangle(t *testing.T) {
	// Triangle {0,1,2} with tail 3 at vertex 2: one swap 0<->1, so orbits
	// are {0,1},{2},{3} and orbit pairing is exact (2 = 2!).
	d := graph.NewDense(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(0, 2)
	sy := NewSymmetry(d)
	if len(sy.Orbits) != 3 {
		t.Errorf("orbits = %v, want {0,1},{2},{3}", sy.Orbits)
	}
	if !sy.ExactOrbitPairing() {
		t.Error("single-swap group should use orbit pairing")
	}
}

func TestSymmetryExactnessConsistent(t *testing.T) {
	// Property: whenever orbit pairing is claimed exact, the automorphism
	// count equals the product of orbit-size factorials.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(6)
		d := graph.NewDense(n)
		for v := 1; v < n; v++ {
			d.AddEdge(v, rng.Intn(v))
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				d.AddEdge(a, b)
			}
		}
		sy := NewSymmetry(d)
		if !sy.ExactOrbitPairing() {
			continue
		}
		prod := 1
		for _, orb := range sy.Orbits {
			for k := 2; k <= len(orb); k++ {
				prod *= k
			}
		}
		if got := len(graph.Automorphisms(d, 0)); got != prod {
			t.Fatalf("trial %d: exact pairing claimed but |Aut|=%d, orbit product=%d",
				trial, got, prod)
		}
	}
}

func TestOccurrencePairingAlwaysAutomorphism(t *testing.T) {
	// Property: for random patterns, the pairing returned by Occurrence
	// maps pattern edges to pattern edges (it is an automorphism), so
	// permuted occurrences remain valid embeddings.
	rng := rand.New(rand.NewSource(31))
	pe := testExample(t)
	s := NewSim(pe.Ontology, pe.Weights())
	terms := allTerms(pe)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		d := graph.NewDense(n)
		for v := 1; v < n; v++ {
			d.AddEdge(v, rng.Intn(v))
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				d.AddEdge(a, b)
			}
		}
		sy := NewSymmetry(d)
		la := randomLabels(n, terms, rng)
		lb := randomLabels(n, terms, rng)
		_, pairing := s.Occurrence(la, lb, sy)
		// pairing must be a permutation preserving adjacency.
		seen := make([]bool, n)
		for _, p := range pairing {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("trial %d: not a permutation: %v", trial, pairing)
			}
			seen[p] = true
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.HasEdge(i, j) != d.HasEdge(pairing[i], pairing[j]) {
					t.Fatalf("trial %d: pairing %v not an automorphism of %v",
						trial, pairing, d)
				}
			}
		}
	}
}

func TestOccurrenceSimilaritySymmetric(t *testing.T) {
	// Property: SO(a,b) == SO(b,a) (the optimal pairing is invertible).
	rng := rand.New(rand.NewSource(17))
	pe := testExample(t)
	s := NewSim(pe.Ontology, pe.Weights())
	terms := allTerms(pe)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		d := graph.NewDense(n)
		for v := 1; v < n; v++ {
			d.AddEdge(v, rng.Intn(v))
		}
		sy := NewSymmetry(d)
		la := randomLabels(n, terms, rng)
		lb := randomLabels(n, terms, rng)
		ab, _ := s.Occurrence(la, lb, sy)
		ba, _ := s.Occurrence(lb, la, sy)
		if diff := ab - ba; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: SO not symmetric: %v vs %v", trial, ab, ba)
		}
	}
}

func TestOccurrenceSimilarityIdentical(t *testing.T) {
	pe := testExample(t)
	s := NewSim(pe.Ontology, pe.Weights())
	d := graph.NewDense(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	sy := NewSymmetry(d)
	la := [][]int32{{int32(pe.Term("G04"))}, {int32(pe.Term("G09"))}, {int32(pe.Term("G10"))}}
	so, _ := s.Occurrence(la, la, sy)
	if so < 0.999 {
		t.Errorf("self similarity = %v, want 1", so)
	}
}

// testExample loads the paper fixture for similarity tests.
func testExample(t *testing.T) *dataset.PaperExample {
	t.Helper()
	return dataset.NewPaperExample()
}

// randomLabels draws a random non-empty term set per vertex (occasionally
// empty, exercising the unknown path).
func randomLabels(n int, terms []int32, rng *rand.Rand) [][]int32 {
	out := make([][]int32, n)
	for v := 0; v < n; v++ {
		k := rng.Intn(4)
		for i := 0; i < k; i++ {
			out[v] = append(out[v], terms[rng.Intn(len(terms))])
		}
	}
	return out
}

func allTerms(pe *dataset.PaperExample) []int32 {
	out := make([]int32, pe.Ontology.NumTerms())
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

package label

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lamofinder/internal/cluster"
	"lamofinder/internal/graph"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
	"lamofinder/internal/par"
)

// Config controls LaMoFinder.
type Config struct {
	// Sigma is the frequency threshold: a labeling scheme is emitted only
	// when at least Sigma occurrences conform to it (paper: 10).
	Sigma int
	// MinDirect is the informative-FC threshold (Zhou et al.: 30 directly
	// annotated proteins).
	MinDirect int
	// MaxLabelsPerVertex caps each vertex's label set, keeping the most
	// specific terms; 0 = unlimited.
	MaxLabelsPerVertex int
	// MaxOccurrences caps the occurrences clustered per motif (0 = all);
	// clustering is O(D^2) in this value.
	MaxOccurrences int
	// MinSim freezes merges whose best available occurrence similarity
	// falls below this value (0 = merge until the stopping rule fires).
	MinSim float64
	// RestrictLabelSpace, when true, drops direct annotations outside the
	// label space T (border informative FC and descendants) before
	// clustering. The paper's worked example (Table 4) keeps above-border
	// terms in merged schemes, so the default is false; generalization is
	// bounded by the border stopping rule either way.
	RestrictLabelSpace bool
	// Parallelism caps the worker goroutines used for occurrence-similarity
	// rows and per-motif labeling (0 = runtime.GOMAXPROCS(0)). Output is
	// byte-identical at every setting: similarity rows land in
	// index-addressed slots and merge order is a deterministic function of
	// the similarity values (see DESIGN.md, "Parallel architecture").
	Parallelism int
	// Now, when set, enables clustering telemetry: each LabelOccurrences
	// call brackets its agglomeration with this clock and accumulates the
	// busy time readable via ClusterStats. The clock is injected rather
	// than read from time.Now because the labeling core is in the
	// determinism scope (lamovet forbids wall-clock reads there); timing
	// never influences output, only the reported stats. Nil disables
	// telemetry at zero cost.
	Now func() time.Time
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		Sigma:              10,
		MinDirect:          30,
		MaxLabelsPerVertex: 4,
		MaxOccurrences:     150,
		MinSim:             0,
	}
}

// LabeledMotif is a network motif whose vertices carry GO label sets.
type LabeledMotif struct {
	// Pattern is the motif topology; Labels[i] holds the sorted GO term
	// indices labeling pattern vertex i (empty = "unknown").
	Pattern *graph.Dense
	Labels  [][]int32
	// Occurrences are the conforming occurrences, in pattern vertex order.
	Occurrences [][]int32
	// Frequency is the number of conforming occurrences.
	Frequency int
	// Uniqueness is inherited from the unlabeled parent motif.
	Uniqueness float64
}

// Size returns the number of vertices.
func (lm *LabeledMotif) Size() int { return lm.Pattern.N() }

// Describe renders the labeled motif with term ids resolved against o.
func (lm *LabeledMotif) Describe(o *ontology.Ontology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s freq=%d uniq=%.2f", lm.Pattern, lm.Frequency, lm.Uniqueness)
	for v, ts := range lm.Labels {
		if len(ts) == 0 {
			fmt.Fprintf(&b, " v%d={unknown}", v)
			continue
		}
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = o.ID(int(t))
		}
		fmt.Fprintf(&b, " v%d={%s}", v, strings.Join(ids, ","))
	}
	return b.String()
}

// Labeler runs LaMoFinder against one ontology branch and its annotations.
type Labeler struct {
	o        *ontology.Ontology
	w        ontology.Weights
	corpus   *ontology.Corpus
	sim      *Sim
	space    []bool // term usable as a label (border FC or descendant)
	atBorder []bool // term at or above the border frontier (maximally general)
	cfg      Config

	// Clustering telemetry, accumulated only when cfg.Now is set. Atomics
	// because LabelAll clusters motifs concurrently.
	clusterNanos atomic.Int64
	clusterOccs  atomic.Int64
}

// NewLabeler prepares a labeler: weights, border informative FC and the
// label space are derived from the corpus.
func NewLabeler(corpus *ontology.Corpus, cfg Config) *Labeler {
	return NewLabelerWithCounts(corpus, corpus.DirectCounts(), cfg)
}

// NewLabelerWithCounts is NewLabeler with externally supplied direct
// annotation counts, for when weights and informative classes should come
// from a whole-genome census rather than the corpus at hand (as in the
// paper's worked example, whose Table-1 counts cover 585 proteins).
func NewLabelerWithCounts(corpus *ontology.Corpus, direct []int, cfg Config) *Labeler {
	o := corpus.Ontology()
	w := o.ComputeWeights(direct)
	border := o.BorderInformativeFC(direct, cfg.MinDirect)
	space := o.LabelSpace(direct, cfg.MinDirect)
	atBorder := make([]bool, o.NumTerms())
	for _, b := range border {
		atBorder[b] = true
		for _, a := range o.Ancestors(b) {
			atBorder[a] = true
		}
	}
	return &Labeler{
		o: o, w: w, corpus: corpus,
		sim:      NewSim(o, w),
		space:    space,
		atBorder: atBorder,
		cfg:      cfg,
	}
}

// Weights exposes the genome-specific term weights in use.
func (l *Labeler) Weights() ontology.Weights { return l.w }

// ClusterStats returns the cumulative agglomeration telemetry: summed
// per-motif clustering time (across all workers, so it can exceed wall
// time) and the total occurrences clustered. Both are zero unless
// Config.Now was set.
func (l *Labeler) ClusterStats() (busy time.Duration, occurrences int64) {
	return time.Duration(l.clusterNanos.Load()), l.clusterOccs.Load()
}

// Sim exposes the memoized similarity calculator.
func (l *Labeler) Sim() *Sim { return l.sim }

// initialLabels returns protein p's direct annotations, optionally
// restricted to the label space T (border informative FC and descendants).
func (l *Labeler) initialLabels(p int32) []int32 {
	ts := l.corpus.Terms(int(p))
	if !l.cfg.RestrictLabelSpace {
		return append([]int32(nil), ts...)
	}
	var out []int32
	for _, t := range ts {
		if l.space[t] {
			out = append(out, t)
		}
	}
	return out
}

// vertexAtBorder reports whether a vertex's labels have generalized all the
// way to the border frontier (every term at or above a border FC).
func (l *Labeler) vertexAtBorder(ts []int32) bool {
	if len(ts) == 0 {
		return false
	}
	for _, t := range ts {
		if !l.atBorder[t] {
			return false
		}
	}
	return true
}

// clusterState is one cluster of occurrences plus its least-general scheme.
type clusterState struct {
	scheme [][]int32
	occs   [][]int32
	frozen bool
}

// Scheme is one labeling scheme produced by the clustering core: the
// per-vertex label sets plus the conforming occurrences, independent of the
// pattern representation (shared by the undirected and directed variants).
type Scheme struct {
	Labels      [][]int32
	Occurrences [][]int32
}

// LabelMotif runs Algorithms 1-2 on one unlabeled motif and returns every
// labeling scheme with at least Sigma conforming occurrences.
func (l *Labeler) LabelMotif(m *motif.Motif) []*LabeledMotif {
	schemes := l.LabelOccurrences(m.Size(), m.Occurrences, NewSymmetry(m.Pattern))
	out := make([]*LabeledMotif, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, &LabeledMotif{
			Pattern:     m.Pattern,
			Labels:      s.Labels,
			Occurrences: s.Occurrences,
			Frequency:   len(s.Occurrences),
			Uniqueness:  m.Uniqueness,
		})
	}
	return out
}

// LabelOccurrences is the representation-independent core of Algorithms
// 1-2: cluster the occurrences of an nv-vertex pattern under the given
// symmetry structure and return every labeling scheme with at least Sigma
// conforming occurrences, most frequent first.
func (l *Labeler) LabelOccurrences(nv int, occurrences [][]int32, sym *Symmetry) []*Scheme {
	occs := occurrences
	if l.cfg.MaxOccurrences > 0 && len(occs) > l.cfg.MaxOccurrences {
		occs = occs[:l.cfg.MaxOccurrences]
	}
	if len(occs) == 0 {
		return nil
	}

	// Each occurrence starts as its own cluster (Algorithm 1 line 4).
	clusters := make([]*clusterState, 0, len(occs))
	for _, occ := range occs {
		cs := &clusterState{occs: [][]int32{occ}, scheme: make([][]int32, nv)}
		for v := 0; v < nv; v++ {
			cs.scheme[v] = l.initialLabels(occ[v])
		}
		cs.frozen = l.isFrozen(cs)
		clusters = append(clusters, cs)
	}

	// Agglomeration (Algorithm 1 lines 5-14) runs on the generic lazy-heap
	// driver: each cluster's similarity row is computed once, fanned out to
	// the worker pool, and merges pop from a max-heap with stale-entry
	// invalidation. Results are identical at any worker count because the
	// similarity values are pure functions of the schemes and the driver
	// breaks ties by cluster id, not by evaluation order.
	simOf := func(a, b int) float64 {
		so, _ := l.sim.Occurrence(clusters[a].scheme, clusters[b].scheme, sym)
		return so
	}
	ag := &cluster.Agglomerative{
		Sim: simOf,
		BatchSim: func(a int, bs []int, out []float64) {
			// Short rows are cheaper serial than the goroutine handoff; the
			// threshold only moves work between schedules, never changes it.
			workers := par.Workers(l.cfg.Parallelism)
			if len(bs) < minParallelRow {
				workers = 1
			}
			par.Do(len(bs), workers, func(i int) { out[i] = simOf(a, bs[i]) })
		},
		Merge: func(a, b int) int {
			clusters = append(clusters, l.merge(clusters[a], clusters[b], sym))
			return len(clusters) - 1
		},
		CanMerge: func(a, b int) bool {
			return !clusters[a].frozen && !clusters[b].frozen
		},
		MinSim: l.cfg.MinSim,
	}
	ids := make([]int, len(clusters))
	for i := range ids {
		ids[i] = i
	}
	var t0 time.Time
	if l.cfg.Now != nil {
		t0 = l.cfg.Now()
	}
	live := ag.Run(ids)
	if l.cfg.Now != nil {
		l.clusterNanos.Add(l.cfg.Now().Sub(t0).Nanoseconds())
		l.clusterOccs.Add(int64(len(occs)))
	}

	// Emit clusters meeting the frequency threshold (Algorithm 1 line 15).
	// Root-weight labels (w = 1) carry no information and are stripped from
	// the emitted schemes; they exist only to drive the stopping rule.
	var out []*Scheme
	for _, id := range live {
		cs := clusters[id]
		if len(cs.occs) < l.cfg.Sigma {
			continue
		}
		labels := make([][]int32, nv)
		for v, ts := range cs.scheme {
			for _, t := range ts {
				if l.w[t] < 1-1e-12 {
					labels[v] = append(labels[v], t)
				}
			}
		}
		out = append(out, &Scheme{Labels: labels, Occurrences: cs.occs})
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].Occurrences) > len(out[j].Occurrences) })
	return out
}

// merge fuses cluster b into a using the orbit-wise optimal vertex pairing,
// deriving the least general scheme and re-ordering b's occurrences to a's
// vertex correspondence.
func (l *Labeler) merge(a, b *clusterState, sym *Symmetry) *clusterState {
	nv := len(a.scheme)
	_, pairing := l.sim.Occurrence(a.scheme, b.scheme, sym)
	m := &clusterState{scheme: make([][]int32, nv)}
	for v := 0; v < nv; v++ {
		m.scheme[v] = LeastGeneralIndexed(l.sim.lca, a.scheme[v], b.scheme[pairing[v]], l.cfg.MaxLabelsPerVertex)
	}
	m.occs = append(m.occs, a.occs...)
	for _, occ := range b.occs {
		no := make([]int32, nv)
		for v := 0; v < nv; v++ {
			no[v] = occ[pairing[v]]
		}
		m.occs = append(m.occs, no)
	}
	m.frozen = l.isFrozen(m)
	return m
}

// isFrozen implements the stopping rule (Algorithm 2 line 5): a cluster
// stops merging once at least half of the motif vertices carry labels that
// have generalized to the border informative FC frontier.
func (l *Labeler) isFrozen(cs *clusterState) bool {
	n := len(cs.scheme)
	at := 0
	for _, ts := range cs.scheme {
		if l.vertexAtBorder(ts) {
			at++
		}
	}
	return 2*at >= n
}

// minParallelRow is the smallest similarity row fanned out to the worker
// pool; shorter rows run serially to skip the goroutine handoff cost.
const minParallelRow = 32

// LabelAll runs LabelMotif over every motif and flattens the results in
// motif order. Motifs are labeled concurrently (the Labeler is safe for
// concurrent use: the term cache is sharded, everything else is read-only),
// with each motif's schemes written to its own index so the flattened
// output is independent of the schedule.
func (l *Labeler) LabelAll(ms []*motif.Motif) []*LabeledMotif {
	results := make([][]*LabeledMotif, len(ms))
	par.Do(len(ms), par.Workers(l.cfg.Parallelism), func(i int) {
		results[i] = l.LabelMotif(ms[i])
	})
	var out []*LabeledMotif
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

package label

import (
	"sort"

	"lamofinder/internal/floats"
	"lamofinder/internal/ontology"
)

// LeastGeneral merges two per-vertex label sets into their least general
// common scheme, exactly as the paper's Table 4 ("minimum common father
// labels"): for every cross pair of terms the minimum-weight lowest common
// ancestor is taken, and the results are unioned. An empty side yields the
// other side unchanged (unannotated proteins inherit labels, per the paper).
// The result is capped to maxTerms lowest-weight (most specific) terms when
// maxTerms > 0.
func LeastGeneral(o *ontology.Ontology, w ontology.Weights, a, b []int32, maxTerms int) []int32 {
	return leastGeneral(func(ta, tb int) int { return o.LCA(w, ta, tb) }, o, w, a, b, maxTerms)
}

// LeastGeneralIndexed is LeastGeneral against a prebuilt LCA index (built
// over the same ontology and weights); the merge loop in the labeler's
// clustering pass calls this per cross pair, so the O(1)/short-scan index
// lookup replaces a full ancestor-bitset intersection each time.
func LeastGeneralIndexed(idx *ontology.LCAIndex, a, b []int32, maxTerms int) []int32 {
	return leastGeneral(idx.LCA, idx.Ontology(), idx.Weights(), a, b, maxTerms)
}

func leastGeneral(lca func(ta, tb int) int, o *ontology.Ontology, w ontology.Weights, a, b []int32, maxTerms int) []int32 {
	if len(a) == 0 {
		return capTerms(o, w, dedup(b), maxTerms)
	}
	if len(b) == 0 {
		return capTerms(o, w, dedup(a), maxTerms)
	}
	seen := map[int32]bool{}
	var cand []int32
	for _, ta := range a {
		for _, tb := range b {
			m := lca(int(ta), int(tb))
			if m < 0 || seen[int32(m)] {
				continue
			}
			// Root-weight ancestors (w = 1) are kept here deliberately:
			// they mark over-generalized vertices and drive the border
			// stopping rule. The labeler strips them from emitted schemes.
			seen[int32(m)] = true
			cand = append(cand, int32(m))
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	return capTerms(o, w, cand, maxTerms)
}

// MinimalFrontier removes every term that is a proper ancestor of another
// term in the set, leaving the most specific cover. Exposed for callers
// that want compact schemes (the paper's Table 4 keeps the full union).
func MinimalFrontier(o *ontology.Ontology, ts []int32) []int32 {
	return minimalFrontier(o, ts)
}

// minimalFrontier removes every term that is a proper ancestor of another
// term in the set, leaving the most specific cover.
func minimalFrontier(o *ontology.Ontology, ts []int32) []int32 {
	var out []int32
	for _, t := range ts {
		minimal := true
		for _, u := range ts {
			if u != t && o.IsAncestorOrSelf(int(t), int(u)) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// capTerms keeps at most maxTerms terms, preferring the most specific
// (lowest weight); ties break on term index for determinism.
func capTerms(o *ontology.Ontology, w ontology.Weights, ts []int32, maxTerms int) []int32 {
	if maxTerms <= 0 || len(ts) <= maxTerms {
		return ts
	}
	sort.Slice(ts, func(i, j int) bool {
		wi, wj := w[ts[i]], w[ts[j]]
		if !floats.Eq(wi, wj) {
			return wi < wj
		}
		return ts[i] < ts[j]
	})
	ts = ts[:maxTerms]
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

func dedup(ts []int32) []int32 {
	if len(ts) == 0 {
		return nil
	}
	out := append([]int32(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[k-1] {
			out[k] = out[i]
			k++
		}
	}
	return out[:k]
}

// Conforms reports whether the labeling scheme (per-vertex label sets)
// conforms to an occurrence's direct annotations under the given vertex
// pairing semantics: every scheme term must be equal to or more general than
// some annotation of the corresponding occurrence vertex. Vertices with an
// empty scheme ("unknown") conform trivially, as do unannotated occurrence
// vertices (the paper derives their labels from the other occurrences).
func Conforms(o *ontology.Ontology, scheme [][]int32, occLabels [][]int32) bool {
	for v := range scheme {
		if len(scheme[v]) == 0 || len(occLabels[v]) == 0 {
			continue
		}
		for _, st := range scheme[v] {
			ok := false
			for _, at := range occLabels[v] {
				if o.IsAncestorOrSelf(int(st), int(at)) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

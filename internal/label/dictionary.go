package label

import (
	"sort"

	"lamofinder/internal/floats"
	"lamofinder/internal/ontology"
)

// Dictionary indexes a collection of labeled network motifs for the
// "dictionary of network motifs and their functional information" use the
// paper envisages (Section 5, after Alon 2003): lookup by protein, by GO
// term, and per-protein position summaries.
type Dictionary struct {
	o      *ontology.Ontology
	motifs []*LabeledMotif
	// byProtein[p] lists (motif index, vertex, occurrence count) entries.
	byProtein map[int32][]DictEntry
	// byTerm[t] lists motif indices whose labels include term t.
	byTerm map[int32][]int
}

// DictEntry locates a protein inside a labeled motif.
type DictEntry struct {
	Motif  int // index into Motifs()
	Vertex int
	Count  int // occurrences of the motif placing the protein at Vertex
}

// NewDictionary builds the indexes.
func NewDictionary(o *ontology.Ontology, motifs []*LabeledMotif) *Dictionary {
	d := &Dictionary{
		o:         o,
		motifs:    motifs,
		byProtein: map[int32][]DictEntry{},
		byTerm:    map[int32][]int{},
	}
	for gi, lm := range motifs {
		seenTerm := map[int32]bool{}
		for _, ts := range lm.Labels {
			for _, t := range ts {
				if !seenTerm[t] {
					seenTerm[t] = true
					d.byTerm[t] = append(d.byTerm[t], gi)
				}
			}
		}
		for _, occ := range lm.Occurrences {
			for v, p := range occ {
				d.bump(p, gi, v)
			}
		}
	}
	return d
}

func (d *Dictionary) bump(p int32, motif, vertex int) {
	es := d.byProtein[p]
	for i := range es {
		if es[i].Motif == motif && es[i].Vertex == vertex {
			es[i].Count++
			return
		}
	}
	d.byProtein[p] = append(es, DictEntry{Motif: motif, Vertex: vertex, Count: 1})
}

// Motifs returns the indexed motifs.
func (d *Dictionary) Motifs() []*LabeledMotif { return d.motifs }

// ForProtein returns the motif positions protein p occupies.
func (d *Dictionary) ForProtein(p int32) []DictEntry { return d.byProtein[p] }

// CoveredProteins returns the sorted proteins occurring in any motif.
func (d *Dictionary) CoveredProteins() []int32 {
	out := make([]int32, 0, len(d.byProtein))
	for p := range d.byProtein {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForTerm returns the motifs labeled with term t or any of its descendants
// (a query for "motifs about this function").
func (d *Dictionary) ForTerm(t int) []*LabeledMotif {
	seen := map[int]bool{}
	var out []*LabeledMotif
	add := func(term int32) {
		for _, gi := range d.byTerm[term] {
			if !seen[gi] {
				seen[gi] = true
				out = append(out, d.motifs[gi])
			}
		}
	}
	add(int32(t))
	for _, desc := range d.o.Descendants(t) {
		add(int32(desc))
	}
	return out
}

// SuggestedLabels returns, for protein p, the GO terms suggested by the
// motif vertices it occupies, strongest first (weighted by occurrence count
// times motif frequency). This is the dictionary-lookup flavor of the
// paper's prediction idea, at GO-term granularity rather than category
// granularity.
func (d *Dictionary) SuggestedLabels(p int32) []TermScore {
	weights := map[int32]float64{}
	for _, e := range d.byProtein[p] {
		lm := d.motifs[e.Motif]
		for _, t := range lm.Labels[e.Vertex] {
			weights[t] += float64(e.Count) * float64(lm.Frequency)
		}
	}
	out := make([]TermScore, 0, len(weights))
	for t, w := range weights {
		out = append(out, TermScore{Term: int(t), Score: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if !floats.Eq(out[i].Score, out[j].Score) {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// TermScore pairs a GO term with a suggestion weight.
type TermScore struct {
	Term  int
	Score float64
}

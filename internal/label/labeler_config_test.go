package label

import (
	"testing"

	"lamofinder/internal/dataset"
	"lamofinder/internal/motif"
)

func TestLabelMotifMinSimBlocksWeakMerges(t *testing.T) {
	// With MinSim just above any possible similarity, nothing merges and no
	// cluster reaches sigma=2.
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{
		Sigma: 2, MinDirect: 30, MinSim: 1.01,
	})
	if got := l.LabelMotif(pe.Motif); len(got) != 0 {
		t.Errorf("MinSim above 1 still merged: %d motifs", len(got))
	}
}

func TestLabelMotifRestrictLabelSpace(t *testing.T) {
	// With label-space restriction, initial schemes may only contain border
	// informative FC (G04, G05, G06) and their descendants; G03 (above the
	// border) must never appear in emitted labels unless reached by
	// generalization... restriction filters the *direct* annotations, so no
	// G03 can seed a scheme; LCA-based generalization from within the space
	// can only reach ancestors of space members.
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{
		Sigma: 2, MinDirect: 30, RestrictLabelSpace: true,
	})
	motifs := l.LabelMotif(pe.Motif)
	if len(motifs) == 0 {
		t.Fatal("no motifs with restricted space")
	}
	space := pe.Ontology.LabelSpace(pe.Direct, 30)
	for _, lm := range motifs {
		for v, ts := range lm.Labels {
			for _, term := range ts {
				if space[term] {
					continue
				}
				// Above-border terms can only arise as common ancestors of
				// in-space terms; they must be ancestors of a border FC.
				isAnc := false
				for _, b := range pe.Ontology.BorderInformativeFC(pe.Direct, 30) {
					if pe.Ontology.IsAncestorOrSelf(int(term), b) {
						isAnc = true
					}
				}
				if !isAnc {
					t.Errorf("vertex %d carries out-of-space term %s",
						v, pe.Ontology.ID(int(term)))
				}
			}
		}
	}
}

func TestLabelMotifEmptyOccurrences(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 1, MinDirect: 30})
	m := &motif.Motif{Pattern: pe.Motif.Pattern}
	if got := l.LabelMotif(m); len(got) != 0 {
		t.Errorf("empty occurrence list produced %v", got)
	}
}

func TestLabelAllFlattens(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 2, MinDirect: 30})
	single := l.LabelMotif(pe.Motif)
	double := l.LabelAll([]*motif.Motif{pe.Motif, pe.Motif})
	if len(double) != 2*len(single) {
		t.Errorf("LabelAll: %d vs 2x%d", len(double), len(single))
	}
}

func TestLabelMotifMaxOccurrencesCap(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{
		Sigma: 2, MinDirect: 30, MaxOccurrences: 2,
	})
	for _, lm := range l.LabelMotif(pe.Motif) {
		if len(lm.Occurrences) > 2 {
			t.Errorf("occurrence cap ignored: %d", len(lm.Occurrences))
		}
	}
}

func TestWeightsAndSimAccessors(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 2, MinDirect: 30})
	if len(l.Weights()) != pe.Ontology.NumTerms() {
		t.Error("Weights() wrong length")
	}
	if l.Sim() == nil {
		t.Error("Sim() nil")
	}
}

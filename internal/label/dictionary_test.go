package label

import (
	"strings"
	"testing"

	"lamofinder/internal/dataset"
)

func exampleDictionary(t *testing.T) (*dataset.PaperExample, *Dictionary) {
	t.Helper()
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	if len(motifs) == 0 {
		t.Fatal("no motifs")
	}
	return pe, NewDictionary(pe.Ontology, motifs)
}

func TestDictionaryProteinLookup(t *testing.T) {
	_, d := exampleDictionary(t)
	covered := d.CoveredProteins()
	if len(covered) == 0 {
		t.Fatal("no covered proteins")
	}
	for _, p := range covered {
		es := d.ForProtein(p)
		if len(es) == 0 {
			t.Fatalf("covered protein %d has no entries", p)
		}
		for _, e := range es {
			if e.Count < 1 || e.Motif < 0 || e.Motif >= len(d.Motifs()) {
				t.Fatalf("bad entry %+v", e)
			}
			if e.Vertex < 0 || e.Vertex >= d.Motifs()[e.Motif].Size() {
				t.Fatalf("bad vertex in %+v", e)
			}
		}
	}
	if d.ForProtein(9999) != nil {
		t.Error("unknown protein should have no entries")
	}
}

func TestDictionaryTermLookup(t *testing.T) {
	pe, d := exampleDictionary(t)
	// Collect every label used, then every ForTerm query must return the
	// motifs carrying the term.
	for _, lm := range d.Motifs() {
		for _, ts := range lm.Labels {
			for _, term := range ts {
				got := d.ForTerm(int(term))
				found := false
				for _, g := range got {
					if g == lm {
						found = true
					}
				}
				if !found {
					t.Fatalf("ForTerm(%s) missed its motif", pe.Ontology.ID(int(term)))
				}
			}
		}
	}
	// Ancestor query includes descendants' motifs: G01 covers everything.
	root := pe.Term("G01")
	if len(d.ForTerm(root)) != len(d.Motifs()) {
		// Only if every motif has at least one labeled vertex.
		labeledAll := true
		for _, lm := range d.Motifs() {
			any := false
			for _, ts := range lm.Labels {
				if len(ts) > 0 {
					any = true
				}
			}
			if !any {
				labeledAll = false
			}
		}
		if labeledAll {
			t.Errorf("root query returned %d of %d motifs", len(d.ForTerm(root)), len(d.Motifs()))
		}
	}
}

func TestDictionarySuggestedLabels(t *testing.T) {
	_, d := exampleDictionary(t)
	covered := d.CoveredProteins()
	anySuggestion := false
	for _, p := range covered {
		ss := d.SuggestedLabels(p)
		for i := 1; i < len(ss); i++ {
			if ss[i-1].Score < ss[i].Score {
				t.Fatalf("suggestions not sorted: %v", ss)
			}
		}
		if len(ss) > 0 {
			anySuggestion = true
		}
	}
	if !anySuggestion {
		t.Error("no suggestions produced for any covered protein")
	}
}

func TestWriteDOT(t *testing.T) {
	pe, d := exampleDictionary(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, pe.Ontology, d.Motifs()[0], "g1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph \"g1\"", "v0", "--", "freq="} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count must match the pattern.
	if got := strings.Count(out, "--"); got != d.Motifs()[0].Pattern.M() {
		t.Errorf("DOT edges = %d, pattern has %d", got, d.Motifs()[0].Pattern.M())
	}
}

func TestFindConforming(t *testing.T) {
	pe, d := exampleDictionary(t)
	lm := d.Motifs()[0]
	// The dictionary's own occurrences must be rediscovered in the source
	// network (they conform by construction).
	occs := FindConforming(pe.Network, pe.Corpus, lm, 0)
	if len(occs) < len(lm.Occurrences) {
		t.Fatalf("FindConforming found %d, motif has %d", len(occs), len(lm.Occurrences))
	}
	// Every result embeds the pattern and conforms.
	for _, occ := range occs {
		for i := 0; i < lm.Size(); i++ {
			for j := i + 1; j < lm.Size(); j++ {
				if lm.Pattern.HasEdge(i, j) && !pe.Network.HasEdge(int(occ[i]), int(occ[j])) {
					t.Fatalf("occurrence %v does not embed pattern", occ)
				}
			}
		}
		occLabels := make([][]int32, lm.Size())
		for v, p := range occ {
			occLabels[v] = pe.Corpus.Terms(int(p))
		}
		if !Conforms(pe.Ontology, lm.Labels, occLabels) {
			t.Fatalf("occurrence %v does not conform", occ)
		}
	}
	// Limit respected.
	if got := FindConforming(pe.Network, pe.Corpus, lm, 2); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestFindConformingRejectsWrongLabels(t *testing.T) {
	// A scheme demanding a label absent everywhere finds nothing with
	// annotated proteins... vertices with annotations that lack the term
	// are rejected; fully unannotated regions still conform trivially.
	pe, d := exampleDictionary(t)
	src := d.Motifs()[0]
	g06 := int32(pe.Term("G06"))
	strict := &LabeledMotif{
		Pattern: src.Pattern,
		Labels:  [][]int32{{g06}, {g06}, {g06}, {g06}},
	}
	for _, occ := range FindConforming(pe.Network, pe.Corpus, strict, 0) {
		for _, p := range occ {
			ts := pe.Corpus.Terms(int(p))
			if len(ts) == 0 {
				continue
			}
			ok := false
			for _, at := range ts {
				if pe.Ontology.IsAncestorOrSelf(int(g06), int(at)) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("non-conforming protein %d in %v", p, occ)
			}
		}
	}
}

package label

import (
	"math"
	"testing"

	"lamofinder/internal/dataset"
	"lamofinder/internal/graph"
	"lamofinder/internal/motif"
	"lamofinder/internal/ontology"
)

func ids(o *ontology.Ontology, ts []int32) map[string]bool {
	m := map[string]bool{}
	for _, t := range ts {
		m[o.ID(int(t))] = true
	}
	return m
}

func TestTable3VertexSimilarities(t *testing.T) {
	// Reproduces Table 3's SV column for the o1/o2 vertex pairings. The
	// paper prints 2-decimal values from its own weight table; with the
	// reconstructed DAG small deviations are expected, so we assert a
	// tolerance of 0.15 and the qualitative structure (high vs low pairs).
	pe := dataset.NewPaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	terms := func(p int) []int32 { return pe.Corpus.Terms(p) }
	pv := func(i int) int { return i - 1 }
	cases := []struct {
		a, b int
		want float64
	}{
		{1, 12, 1.00},
		{1, 10, 0.99},
		{2, 9, 1.00},
		{2, 11, 0.76},
		{3, 10, 0.80},
		{3, 12, 0.45},
		{4, 11, 0.69},
		{4, 9, 0.99},
	}
	for _, c := range cases {
		got := s.Vertex(terms(pv(c.a)), terms(pv(c.b)))
		if math.Abs(got-c.want) > 0.15 {
			t.Errorf("SV(p%d,p%d) = %.3f, want ~%.2f", c.a, c.b, got, c.want)
		}
	}
}

func TestTable3OccurrenceSimilarity(t *testing.T) {
	// SO(o1, o2) = 0.87 in the paper; reproduce within tolerance, and check
	// the chosen pairing beats the alternative pairing.
	pe := dataset.NewPaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	o1 := pe.Motif.Occurrences[0]
	o2 := pe.Motif.Occurrences[1]
	labels := func(occ []int32) [][]int32 {
		out := make([][]int32, len(occ))
		for i, p := range occ {
			out[i] = pe.Corpus.Terms(int(p))
		}
		return out
	}
	sym := NewSymmetry(pe.Motif.Pattern)
	if sym.ExactOrbitPairing() {
		t.Error("C4 requires automorphism pairing (24 orbit perms vs 8 auts)")
	}
	so, pairing := s.Occurrence(labels(o1), labels(o2), sym)
	if math.Abs(so-0.87) > 0.1 {
		t.Errorf("SO(o1,o2) = %.3f, want ~0.87", so)
	}
	if len(pairing) != 4 {
		t.Fatalf("pairing = %v", pairing)
	}
	// Pairing must be a permutation.
	seen := map[int]bool{}
	for _, p := range pairing {
		if seen[p] {
			t.Fatalf("pairing not injective: %v", pairing)
		}
		seen[p] = true
	}
}

func TestOccurrenceSimilaritySymmetryMax(t *testing.T) {
	// With symmetric vertices, SO must pick the better of the two pairings.
	pe := dataset.NewPaperExample()
	o := pe.Ontology
	s := NewSim(o, pe.Weights())
	g04 := int32(pe.Term("G04"))
	g06 := int32(pe.Term("G06"))
	// Motif: single edge (both vertices symmetric).
	pat := graph.NewDense(2)
	pat.AddEdge(0, 1)
	sym := NewSymmetry(pat)
	if len(sym.Orbits) != 1 || len(sym.Orbits[0]) != 2 {
		t.Fatalf("edge orbits = %v", sym.Orbits)
	}
	if !sym.ExactOrbitPairing() {
		t.Error("single edge should allow exact orbit pairing")
	}
	a := [][]int32{{g04}, {g06}}
	b := [][]int32{{g06}, {g04}} // swapped: identity pairing scores low
	so, pairing := s.Occurrence(a, b, sym)
	if so < 0.99 {
		t.Errorf("SO with swap = %.3f, want ~1 (swapped pairing)", so)
	}
	if pairing[0] != 1 || pairing[1] != 0 {
		t.Errorf("pairing = %v, want [1 0]", pairing)
	}
}

func TestVertexSimilarityUnknown(t *testing.T) {
	pe := dataset.NewPaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	if got := s.Vertex(nil, []int32{int32(pe.Term("G04"))}); got != UnknownSim {
		t.Errorf("SV(unknown, X) = %v, want %v", got, UnknownSim)
	}
}

func TestVertexSimilarityIdenticalTerm(t *testing.T) {
	pe := dataset.NewPaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	g09 := int32(pe.Term("G09"))
	if got := s.Vertex([]int32{g09}, []int32{g09}); got != 1 {
		t.Errorf("SV with shared term = %v, want 1", got)
	}
}

func TestLeastGeneralTable4(t *testing.T) {
	// Table 4: minimum common father labels per vertex of o1 and o2.
	pe := dataset.NewPaperExample()
	o := pe.Ontology
	w := pe.Weights()
	tix := func(s string) int32 { return int32(pe.Term(s)) }
	set := func(ss ...string) []int32 {
		out := make([]int32, len(ss))
		for i, s := range ss {
			out[i] = tix(s)
		}
		return out
	}
	cases := []struct {
		a, b []int32
		want []string
	}{
		{set("G04", "G09", "G10"), set("G09"), []string{"G02", "G09", "G05"}},
		{set("G03", "G10"), set("G10", "G11"), []string{"G03", "G10", "G08"}},
		{set("G08"), set("G03", "G05", "G07"), []string{"G03", "G05", "G04"}},
		{set("G07", "G09"), set("G05"), []string{"G02", "G05"}},
	}
	for i, c := range cases {
		got := LeastGeneral(o, w, c.a, c.b, 0)
		gotIDs := ids(o, got)
		if len(gotIDs) != len(c.want) {
			t.Errorf("row %d: got %v, want %v", i+1, gotIDs, c.want)
			continue
		}
		for _, s := range c.want {
			if !gotIDs[s] {
				t.Errorf("row %d: missing %s (got %v)", i+1, s, gotIDs)
			}
		}
	}
	// MinimalFrontier compacts row 2 {G03,G10,G08} to its most specific
	// cover: both G03 and G08 are ancestors of G10, leaving {G10}.
	full := LeastGeneral(o, w, set("G03", "G10"), set("G10", "G11"), 0)
	got := ids(o, MinimalFrontier(o, full))
	if len(got) != 1 || !got["G10"] {
		t.Errorf("minimal frontier of row 2 = %v, want {G10}", got)
	}
}

func TestLeastGeneralEmptySides(t *testing.T) {
	pe := dataset.NewPaperExample()
	o, w := pe.Ontology, pe.Weights()
	g04 := []int32{int32(pe.Term("G04"))}
	if got := LeastGeneral(o, w, nil, g04, 0); len(got) != 1 || got[0] != g04[0] {
		t.Errorf("empty-left merge = %v", got)
	}
	if got := LeastGeneral(o, w, g04, nil, 0); len(got) != 1 || got[0] != g04[0] {
		t.Errorf("empty-right merge = %v", got)
	}
	if got := LeastGeneral(o, w, nil, nil, 0); len(got) != 0 {
		t.Errorf("empty-empty merge = %v", got)
	}
}

func TestLeastGeneralCap(t *testing.T) {
	pe := dataset.NewPaperExample()
	o, w := pe.Ontology, pe.Weights()
	a := []int32{int32(pe.Term("G04")), int32(pe.Term("G09")), int32(pe.Term("G10"))}
	b := []int32{int32(pe.Term("G09")), int32(pe.Term("G11"))}
	got := LeastGeneral(o, w, a, b, 1)
	if len(got) != 1 {
		t.Fatalf("cap ignored: %v", got)
	}
}

func TestConforms(t *testing.T) {
	pe := dataset.NewPaperExample()
	o := pe.Ontology
	g05 := int32(pe.Term("G05"))
	g09 := int32(pe.Term("G09"))
	g04 := int32(pe.Term("G04"))
	// Scheme {G05} conforms to occurrence vertex annotated {G09} (G05 is an
	// ancestor of G09).
	if !Conforms(o, [][]int32{{g05}}, [][]int32{{g09}}) {
		t.Error("ancestor scheme should conform")
	}
	// Scheme {G04} does not conform to {G09}.
	if Conforms(o, [][]int32{{g04}}, [][]int32{{g09}}) {
		t.Error("unrelated scheme should not conform")
	}
	// Unknown scheme vertex conforms to anything.
	if !Conforms(o, [][]int32{nil}, [][]int32{{g09}}) {
		t.Error("unknown scheme vertex must conform")
	}
	// Unannotated occurrence vertex conforms to any scheme.
	if !Conforms(o, [][]int32{{g04}}, [][]int32{nil}) {
		t.Error("unannotated occurrence vertex must conform")
	}
}

func TestLabelMotifPaperExample(t *testing.T) {
	// Run LaMoFinder on the worked example with sigma=2: the four
	// occurrences of g must produce at least one labeled motif covering
	// o1 and o2 (the pair the paper merges), whose scheme conforms to its
	// member occurrences.
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{
		Sigma:              2,
		MinDirect:          30,
		MaxLabelsPerVertex: 0,
		MaxOccurrences:     0,
	})
	lms := l.LabelMotif(pe.Motif)
	if len(lms) == 0 {
		t.Fatal("no labeled motif produced")
	}
	for _, lm := range lms {
		if lm.Frequency != len(lm.Occurrences) {
			t.Errorf("frequency %d != occurrences %d", lm.Frequency, len(lm.Occurrences))
		}
		if lm.Size() != 4 {
			t.Errorf("size = %d", lm.Size())
		}
		// The scheme must conform to every member occurrence.
		for _, occ := range lm.Occurrences {
			occLabels := make([][]int32, 4)
			for v, p := range occ {
				occLabels[v] = pe.Corpus.Terms(int(p))
			}
			if !Conforms(pe.Ontology, lm.Labels, occLabels) {
				t.Errorf("scheme %v does not conform to occurrence %v",
					lm.Describe(pe.Ontology), occ)
			}
		}
	}
}

func TestLabelMotifSigmaFilters(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{
		Sigma:     5, // more than the 4 occurrences available
		MinDirect: 30,
	})
	if lms := l.LabelMotif(pe.Motif); len(lms) != 0 {
		t.Errorf("sigma above occurrence count still produced %d motifs", len(lms))
	}
}

func TestLabelMotifUnannotatedOccurrences(t *testing.T) {
	// A motif whose occurrences include unannotated proteins must still be
	// labelable from the annotated ones, with unknowns absorbed.
	pe := dataset.NewPaperExample()
	m := &motif.Motif{
		Pattern: pe.Motif.Pattern,
		Occurrences: [][]int32{
			pe.Motif.Occurrences[0], // annotated (p1..p4)
			{16, 18, 19, 15},        // p17..p20,p16: mostly unannotated
			pe.Motif.Occurrences[1], // annotated (o2)
		},
		Frequency:  3,
		Uniqueness: 1,
	}
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 3, MinDirect: 30})
	lms := l.LabelMotif(m)
	if len(lms) == 0 {
		t.Fatal("expected a labeled motif despite unannotated occurrence")
	}
}

func TestLabeledMotifDescribe(t *testing.T) {
	pe := dataset.NewPaperExample()
	lm := &LabeledMotif{
		Pattern: pe.Motif.Pattern,
		Labels:  [][]int32{{int32(pe.Term("G04"))}, nil, nil, nil},
	}
	s := lm.Describe(pe.Ontology)
	if s == "" || !containsStr(s, "G04") || !containsStr(s, "unknown") {
		t.Errorf("Describe = %q", s)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMergeKeepsOccurrenceCorrespondence(t *testing.T) {
	// After LabelMotif, every emitted occurrence must still be a valid
	// embedding of the pattern in the network.
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 2, MinDirect: 30})
	for _, lm := range l.LabelMotif(pe.Motif) {
		for _, occ := range lm.Occurrences {
			for i := 0; i < 4; i++ {
				for j := i + 1; j < 4; j++ {
					if lm.Pattern.HasEdge(i, j) && !pe.Network.HasEdge(int(occ[i]), int(occ[j])) {
						t.Fatalf("occurrence %v no longer embeds pattern", occ)
					}
				}
			}
		}
	}
}

package label

import (
	"sync"
	"testing"

	"lamofinder/internal/dataset"
)

// hammerSTCache drives many goroutines through the same stCache with
// overlapping key sets and verifies every goroutine observes identical
// values. Run under -race this exercises both cache layouts' concurrent
// paths (dense atomic slots and sharded maps).
func hammerSTCache(t *testing.T, numTerms int, compute func(ta, tb int) float64) {
	t.Helper()
	c := newSTCache(numTerms)
	const goroutines = 16
	const rounds = 4
	got := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			var vals []float64
			for round := 0; round < rounds; round++ {
				for ta := 0; ta < numTerms; ta++ {
					for tb := ta; tb < numTerms; tb++ {
						vals = append(vals, c.get(ta, tb, func() float64 { return compute(ta, tb) }))
					}
				}
			}
			got[gi] = vals
		}(gi)
	}
	wg.Wait()
	for gi := 1; gi < goroutines; gi++ {
		if len(got[gi]) != len(got[0]) {
			t.Fatalf("goroutine %d saw %d values, goroutine 0 saw %d", gi, len(got[gi]), len(got[0]))
		}
		for i := range got[gi] {
			if got[gi][i] != got[0][i] {
				t.Fatalf("goroutine %d value %d = %v, goroutine 0 saw %v", gi, i, got[gi][i], got[0][i])
			}
		}
	}
}

func TestSTCacheConcurrentDense(t *testing.T) {
	// 40 terms stays well under stDenseMaxTerms: the dense atomic layout.
	hammerSTCache(t, 40, func(ta, tb int) float64 {
		return float64(ta*1009+tb) / float64(40*1009+40)
	})
}

func TestSTCacheConcurrentSharded(t *testing.T) {
	// Force the sharded-map layout by building the cache for a term space
	// above the dense cutoff, then touching only a prefix of it.
	c := newSTCache(stDenseMaxTerms + 1)
	if c.dense != nil {
		t.Fatalf("term space %d should use the sharded layout", stDenseMaxTerms+1)
	}
	const n = 48
	const goroutines = 16
	got := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			var vals []float64
			for ta := 0; ta < n; ta++ {
				for tb := ta; tb < n; tb++ {
					vals = append(vals, c.get(ta, tb, func() float64 { return float64(ta ^ tb) }))
				}
			}
			got[gi] = vals
		}(gi)
	}
	wg.Wait()
	for gi := 1; gi < goroutines; gi++ {
		for i := range got[gi] {
			if got[gi][i] != got[0][i] {
				t.Fatalf("goroutine %d value %d = %v, goroutine 0 saw %v", gi, i, got[gi][i], got[0][i])
			}
		}
	}
}

// TestSimConcurrentTerm hammers the public Sim.Term path on the worked
// example's real ontology from many goroutines; -race certifies the memoized
// Lin scores are safely shared the way LabelAll's workers share them.
func TestSimConcurrentTerm(t *testing.T) {
	pe := dataset.NewPaperExample()
	s := NewSim(pe.Ontology, pe.Weights())
	nt := pe.Ontology.NumTerms()

	want := make([]float64, nt*nt)
	for ta := 0; ta < nt; ta++ {
		for tb := 0; tb < nt; tb++ {
			want[ta*nt+tb] = s.Term(ta, tb)
		}
	}

	fresh := NewSim(pe.Ontology, pe.Weights())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			// Different goroutines sweep in different orders so computes and
			// lookups interleave.
			for k := 0; k < nt*nt; k++ {
				idx := k
				if gi%2 == 1 {
					idx = nt*nt - 1 - k
				}
				ta, tb := idx/nt, idx%nt
				if got := fresh.Term(ta, tb); got != want[ta*nt+tb] {
					select {
					case errs <- "Term mismatch under concurrency":
					default:
					}
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

package label

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"lamofinder/internal/ontology"
)

// WriteDOT renders a labeled motif as a Graphviz graph, with GO ids (and
// names when available) as vertex labels — the publication-figure form of
// the paper's Figure 7 exhibits.
func WriteDOT(w io.Writer, o *ontology.Ontology, lm *LabeledMotif, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "motif"
	}
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=ellipse, fontsize=10];\n")
	for v := 0; v < lm.Size(); v++ {
		lab := "unknown"
		if len(lm.Labels[v]) > 0 {
			parts := make([]string, 0, len(lm.Labels[v]))
			for _, t := range lm.Labels[v] {
				p := o.ID(int(t))
				if n := o.Name(int(t)); n != "" {
					p += "\\n" + n
				}
				parts = append(parts, p)
			}
			lab = strings.Join(parts, "\\n")
		}
		fmt.Fprintf(bw, "  v%d [label=\"%s\"];\n", v, lab)
	}
	for i := 0; i < lm.Size(); i++ {
		for j := 0; j < i; j++ {
			if lm.Pattern.HasEdge(i, j) {
				fmt.Fprintf(bw, "  v%d -- v%d;\n", j, i)
			}
		}
	}
	fmt.Fprintf(bw, "  label=\"freq=%d uniq=%.2f\";\n", lm.Frequency, lm.Uniqueness)
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

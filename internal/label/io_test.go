package label

import (
	"strings"
	"testing"

	"lamofinder/internal/dataset"
)

func TestMotifDictionaryRoundTrip(t *testing.T) {
	pe := dataset.NewPaperExample()
	l := NewLabelerWithCounts(pe.Corpus, pe.Direct, Config{Sigma: 2, MinDirect: 30})
	motifs := l.LabelMotif(pe.Motif)
	if len(motifs) == 0 {
		t.Fatal("no motifs to serialize")
	}
	var sb strings.Builder
	if err := WriteMotifs(&sb, pe.Ontology, motifs); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := ReadMotifs(strings.NewReader(sb.String()), pe.Ontology)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	if len(got) != len(motifs) {
		t.Fatalf("motifs %d -> %d", len(motifs), len(got))
	}
	for i := range got {
		a, b := motifs[i], got[i]
		if !a.Pattern.Equal(b.Pattern) {
			t.Errorf("motif %d pattern differs: %v vs %v", i, a.Pattern, b.Pattern)
		}
		if a.Frequency != b.Frequency || a.Uniqueness != b.Uniqueness {
			t.Errorf("motif %d metadata differs", i)
		}
		if len(a.Occurrences) != len(b.Occurrences) {
			t.Fatalf("motif %d occurrences %d -> %d", i, len(a.Occurrences), len(b.Occurrences))
		}
		for v := range a.Labels {
			if len(a.Labels[v]) != len(b.Labels[v]) {
				t.Errorf("motif %d vertex %d labels %v -> %v", i, v, a.Labels[v], b.Labels[v])
				continue
			}
			for k := range a.Labels[v] {
				if a.Labels[v][k] != b.Labels[v][k] {
					t.Errorf("motif %d vertex %d label %d differs", i, v, k)
				}
			}
		}
	}
}

func TestReadMotifsUnknownTermsDropped(t *testing.T) {
	pe := dataset.NewPaperExample()
	src := `{"n":2,"edges":[[0,1]],"labels":[["G04","ZZ:gone"],[]],"occurrences":[[0,1]],"frequency":1,"uniqueness":0.5}` + "\n"
	got, dropped, err := ReadMotifs(strings.NewReader(src), pe.Ontology)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(got) != 1 || len(got[0].Labels[0]) != 1 {
		t.Errorf("unexpected load: %+v", got)
	}
}

func TestReadMotifsRejectsBadData(t *testing.T) {
	pe := dataset.NewPaperExample()
	cases := []string{
		`{"n":99,"edges":[],"labels":[],"occurrences":[]}`,
		`{"n":2,"edges":[[0,5]],"labels":[],"occurrences":[]}`,
		`{"n":1,"edges":[],"labels":[[],["G04"]],"occurrences":[]}`,
		`not json`,
	}
	for i, src := range cases {
		if _, _, err := ReadMotifs(strings.NewReader(src+"\n"), pe.Ontology); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

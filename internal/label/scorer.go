package label

import "lamofinder/internal/predict"

// MotifInputs converts labeled motifs into the slices the predictor needs
// (size, conforming occurrences, frequency, uniqueness). The conversion
// lives here — not in predict — so predict keeps no dependency on the
// labeling pipeline and the dataset package can depend on it cycle-free.
func MotifInputs(ms []*LabeledMotif) []predict.MotifInput {
	inputs := make([]predict.MotifInput, 0, len(ms))
	for _, lm := range ms {
		inputs = append(inputs, predict.MotifInput{
			Size:        lm.Size(),
			Occurrences: lm.Occurrences,
			Frequency:   lm.Frequency,
			Uniqueness:  lm.Uniqueness,
		})
	}
	return inputs
}

// NewScorer builds the paper's labeled-motif predictor (Eqs. 4-5) over a
// task from LaMoFinder output. It is the single construction path shared by
// the Figure-8/9 experiments, the facade, and the lamod serving daemon.
func NewScorer(t *predict.Task, ms []*LabeledMotif) *predict.LabeledMotif {
	return predict.NewLabeledMotif(t, MotifInputs(ms))
}

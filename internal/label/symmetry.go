package label

import "lamofinder/internal/graph"

// maxAuts caps the number of enumerated automorphisms; patterns whose group
// is larger fall back to a best-of-cap heuristic (the paper relies on a
// polynomial symmetry heuristic from PIGALE with the same flavor).
const maxAuts = 5040 // 7!

// Symmetry captures the symmetric-vertex structure of a motif pattern used
// by occurrence pairing: the automorphism orbits ("symmetry sets") and,
// when per-orbit pairing is not exact, the explicit automorphism list.
type Symmetry struct {
	// Orbits partitions pattern vertices into automorphism orbits.
	Orbits [][]int
	// Auts is nil when every orbit-wise permutation is an automorphism (the
	// per-orbit optimal assignment is then exact); otherwise it enumerates
	// the automorphism group (capped at maxAuts).
	Auts [][]int
}

// NewSymmetry analyzes a pattern. When the product of orbit-size factorials
// equals the automorphism group order, orbit-wise pairing is exact (stars,
// paths, cliques); otherwise (cycles, most meso-scale shapes) pairings must
// range over explicit automorphisms to keep occurrence correspondence valid.
func NewSymmetry(p *graph.Dense) *Symmetry {
	orbits := graph.Orbits(p)
	product := 1
	for _, orb := range orbits {
		for k := 2; k <= len(orb); k++ {
			product *= k
			if product > maxAuts {
				product = maxAuts + 1
				break
			}
		}
		if product > maxAuts {
			break
		}
	}
	cap := product
	if cap > maxAuts {
		cap = maxAuts
	}
	auts := graph.Automorphisms(p, cap+1)
	if len(auts) == product && product <= maxAuts {
		// Orbit-wise assignment spans exactly the automorphism group.
		return &Symmetry{Orbits: orbits}
	}
	return &Symmetry{Orbits: orbits, Auts: auts}
}

// ExactOrbitPairing reports whether per-orbit assignment is exact for this
// pattern.
func (sy *Symmetry) ExactOrbitPairing() bool { return sy.Auts == nil }

// NewSymmetryFromGroup builds a Symmetry from an externally computed orbit
// partition and automorphism list — the hook that lets directed (or
// otherwise decorated) patterns reuse the labeling machinery. When exact is
// true the automorphism list may be nil and per-orbit assignment is used.
func NewSymmetryFromGroup(orbits [][]int, auts [][]int, exact bool) *Symmetry {
	if exact {
		return &Symmetry{Orbits: orbits}
	}
	return &Symmetry{Orbits: orbits, Auts: auts}
}

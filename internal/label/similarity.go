// Package label implements LaMoFinder, the paper's core contribution:
// assigning GO labels to the vertices of network motifs so that the labeled
// subgraphs still occur frequently in the annotated PPI network. It covers
// GO-based vertex and occurrence similarity (Eqs. 1-3), symmetry-aware
// vertex pairing, agglomerative clustering of occurrences with least-general
// labeling schemes, and the border-informative-FC stopping rule
// (Algorithms 1-2).
package label

import (
	"lamofinder/internal/cluster"
	"lamofinder/internal/ontology"
)

// UnknownSim is the neutral similarity used when one of the two vertices has
// no GO annotation; the paper lets unannotated proteins join any cluster and
// take their labels from the annotated occurrences.
const UnknownSim = 0.5

// Sim computes GO-based similarities with memoized Lin term scores.
type Sim struct {
	o  *ontology.Ontology
	w  ontology.Weights
	st map[uint64]float64
}

// NewSim returns a similarity calculator over the given ontology/weights.
func NewSim(o *ontology.Ontology, w ontology.Weights) *Sim {
	return &Sim{o: o, w: w, st: map[uint64]float64{}}
}

// Term returns the Lin similarity ST(ta, tb) (Eq. 1), memoized.
func (s *Sim) Term(ta, tb int) float64 {
	if ta > tb {
		ta, tb = tb, ta
	}
	key := uint64(ta)<<32 | uint64(uint32(tb))
	if v, ok := s.st[key]; ok {
		return v
	}
	v := s.o.Lin(s.w, ta, tb)
	s.st[key] = v
	return v
}

// Vertex returns SV(vi, vj) (Eq. 2) for two direct-annotation term sets:
// 1 - prod(1 - ST(ta, tb)) over all cross pairs. One good term match makes
// the vertices similar. Empty sets score UnknownSim.
func (s *Sim) Vertex(ta, tb []int32) float64 {
	if len(ta) == 0 || len(tb) == 0 {
		return UnknownSim
	}
	prod := 1.0
	for _, a := range ta {
		for _, b := range tb {
			prod *= 1 - s.Term(int(a), int(b))
			if prod == 0 {
				return 1
			}
		}
	}
	return 1 - prod
}

// Occurrence returns SO(oi, oj) (Eq. 3) between two labeled vertex
// sequences, plus the vertex pairing that achieves it: pairing[i] is the
// position in B matched to position i of A. labelsA and labelsB give the
// term set at each motif vertex position; sym carries the pattern's
// symmetry structure. When per-orbit assignment spans exactly the
// automorphism group, each orbit's optimal pairing is found by Hungarian
// assignment (the paper's max over pair(Ia, Ib)); otherwise the pairing
// ranges over explicit automorphisms so that occurrence correspondence
// remains a valid embedding.
func (s *Sim) Occurrence(labelsA, labelsB [][]int32, sym *Symmetry) (so float64, pairing []int) {
	nv := len(labelsA)
	if sym.ExactOrbitPairing() {
		pairing = make([]int, nv)
		total := 0.0
		for _, orb := range sym.Orbits {
			if len(orb) == 1 {
				v := orb[0]
				pairing[v] = v
				total += s.Vertex(labelsA[v], labelsB[v])
				continue
			}
			score := make([][]float64, len(orb))
			for i, va := range orb {
				score[i] = make([]float64, len(orb))
				for j, vb := range orb {
					score[i][j] = s.Vertex(labelsA[va], labelsB[vb])
				}
			}
			assign, sum := cluster.MaxAssignment(score)
			for i, va := range orb {
				pairing[va] = orb[assign[i]]
			}
			total += sum
		}
		return total / float64(nv), pairing
	}
	// Automorphism search: cache SV values, then score each permutation.
	sv := make([][]float64, nv)
	for i := 0; i < nv; i++ {
		sv[i] = make([]float64, nv)
		for j := 0; j < nv; j++ {
			sv[i][j] = -1
		}
	}
	get := func(i, j int) float64 {
		if sv[i][j] < 0 {
			sv[i][j] = s.Vertex(labelsA[i], labelsB[j])
		}
		return sv[i][j]
	}
	best := -1.0
	var bestPerm []int
	for _, perm := range sym.Auts {
		total := 0.0
		for v := 0; v < nv; v++ {
			total += get(v, perm[v])
		}
		if total > best {
			best = total
			bestPerm = perm
		}
	}
	pairing = append([]int(nil), bestPerm...)
	return best / float64(nv), pairing
}

// Package label implements LaMoFinder, the paper's core contribution:
// assigning GO labels to the vertices of network motifs so that the labeled
// subgraphs still occur frequently in the annotated PPI network. It covers
// GO-based vertex and occurrence similarity (Eqs. 1-3), symmetry-aware
// vertex pairing, agglomerative clustering of occurrences with least-general
// labeling schemes, and the border-informative-FC stopping rule
// (Algorithms 1-2).
package label

import (
	"math"
	"sync"
	"sync/atomic"

	"lamofinder/internal/cluster"
	"lamofinder/internal/ontology"
)

// UnknownSim is the neutral similarity used when one of the two vertices has
// no GO annotation; the paper lets unannotated proteins join any cluster and
// take their labels from the annotated occurrences.
const UnknownSim = 0.5

// stShardCount is the number of lock shards in the term-similarity cache;
// a power of two so shard selection is a mask.
const stShardCount = 64

// stDenseMaxTerms bounds the term-space size for which the cache uses the
// dense atomic table (n^2 float64 slots); above it, memory would grow
// quadratically into real GO scale, so the sharded maps take over.
const stDenseMaxTerms = 1536

type stShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

// stCache memoizes Lin term scores for concurrent similarity workers.
//
// Two layouts share the type. For small term spaces (synthetic branches,
// the worked example) a dense n*n table of atomic slots serves hits with a
// single load — no lock traffic on the hot path, which matters because the
// labeler queries the cache millions of times. Large term spaces fall back
// to maps behind sharded read-write locks. Either way, cached values are
// pure functions of the key, so a racing double-compute stores the same
// value twice and determinism is unaffected.
type stCache struct {
	dense  []atomic.Uint64 // nil => sharded maps; slot ta*denseN+tb
	denseN int
	shards [stShardCount]stShard
}

func newSTCache(numTerms int) *stCache {
	c := &stCache{}
	if numTerms > 0 && numTerms <= stDenseMaxTerms {
		c.dense = make([]atomic.Uint64, numTerms*numTerms)
		c.denseN = numTerms
		return c
	}
	for i := range c.shards {
		c.shards[i].m = map[uint64]float64{}
	}
	return c
}

// Dense slots hold math.Float64bits(v)+1 so that the zero value of a fresh
// slot is distinguishable from a cached 0.0 (whose bit pattern is 0).
func stEncode(v float64) uint64 { return math.Float64bits(v) + 1 }
func stDecode(b uint64) float64 { return math.Float64frombits(b - 1) }

func (c *stCache) shard(key uint64) *stShard {
	return &c.shards[(key*0x9e3779b97f4a7c15)>>58&(stShardCount-1)]
}

// get returns the cached value for the term pair (ta <= tb), computing and
// storing it via f on a miss.
func (c *stCache) get(ta, tb int, f func() float64) float64 {
	if c.dense != nil {
		slot := &c.dense[ta*c.denseN+tb]
		if b := slot.Load(); b != 0 {
			return stDecode(b)
		}
		v := f()
		slot.Store(stEncode(v))
		return v
	}
	key := uint64(ta)<<32 | uint64(uint32(tb))
	sh := c.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = f()
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// Sim computes GO-based similarities with memoized Lin term scores. It is
// safe for concurrent use: the memo table is sharded (see stCache), and the
// ontology and weights are read-only.
type Sim struct {
	o   *ontology.Ontology
	w   ontology.Weights
	lca *ontology.LCAIndex
	st  *stCache
}

// NewSim returns a similarity calculator over the given ontology/weights.
// It builds an LCA index once, so cache misses answer in O(1) on tree
// ontologies (and via short weight-sorted scans on DAGs) instead of
// walking ancestor bitsets per term pair; the stCache stays purely a
// fast-path memo in front of that.
func NewSim(o *ontology.Ontology, w ontology.Weights) *Sim {
	return &Sim{o: o, w: w, lca: ontology.NewLCAIndex(o, w), st: newSTCache(o.NumTerms())}
}

// LCAIndex exposes the prebuilt min-weight LCA index (same ontology and
// weights as the Sim).
func (s *Sim) LCAIndex() *ontology.LCAIndex { return s.lca }

// Term returns the Lin similarity ST(ta, tb) (Eq. 1), memoized.
func (s *Sim) Term(ta, tb int) float64 {
	if ta > tb {
		ta, tb = tb, ta
	}
	return s.st.get(ta, tb, func() float64 { return s.lca.Lin(ta, tb) })
}

// Vertex returns SV(vi, vj) (Eq. 2) for two direct-annotation term sets:
// 1 - prod(1 - ST(ta, tb)) over all cross pairs. One good term match makes
// the vertices similar. Empty sets score UnknownSim.
func (s *Sim) Vertex(ta, tb []int32) float64 {
	if len(ta) == 0 || len(tb) == 0 {
		return UnknownSim
	}
	prod := 1.0
	for _, a := range ta {
		for _, b := range tb {
			prod *= 1 - s.Term(int(a), int(b))
			if prod == 0 {
				return 1
			}
		}
	}
	return 1 - prod
}

// Occurrence returns SO(oi, oj) (Eq. 3) between two labeled vertex
// sequences, plus the vertex pairing that achieves it: pairing[i] is the
// position in B matched to position i of A. labelsA and labelsB give the
// term set at each motif vertex position; sym carries the pattern's
// symmetry structure. When per-orbit assignment spans exactly the
// automorphism group, each orbit's optimal pairing is found by Hungarian
// assignment (the paper's max over pair(Ia, Ib)); otherwise the pairing
// ranges over explicit automorphisms so that occurrence correspondence
// remains a valid embedding.
func (s *Sim) Occurrence(labelsA, labelsB [][]int32, sym *Symmetry) (so float64, pairing []int) {
	nv := len(labelsA)
	if sym.ExactOrbitPairing() {
		pairing = make([]int, nv)
		total := 0.0
		for _, orb := range sym.Orbits {
			if len(orb) == 1 {
				v := orb[0]
				pairing[v] = v
				total += s.Vertex(labelsA[v], labelsB[v])
				continue
			}
			score := make([][]float64, len(orb))
			for i, va := range orb {
				score[i] = make([]float64, len(orb))
				for j, vb := range orb {
					score[i][j] = s.Vertex(labelsA[va], labelsB[vb])
				}
			}
			assign, sum := cluster.MaxAssignment(score)
			for i, va := range orb {
				pairing[va] = orb[assign[i]]
			}
			total += sum
		}
		return total / float64(nv), pairing
	}
	// Automorphism search: cache SV values, then score each permutation.
	sv := make([][]float64, nv)
	for i := 0; i < nv; i++ {
		sv[i] = make([]float64, nv)
		for j := 0; j < nv; j++ {
			sv[i][j] = -1
		}
	}
	get := func(i, j int) float64 {
		if sv[i][j] < 0 {
			sv[i][j] = s.Vertex(labelsA[i], labelsB[j])
		}
		return sv[i][j]
	}
	best := -1.0
	var bestPerm []int
	for _, perm := range sym.Auts {
		total := 0.0
		for v := 0; v < nv; v++ {
			total += get(v, perm[v])
		}
		if total > best {
			best = total
			bestPerm = perm
		}
	}
	pairing = append([]int(nil), bestPerm...)
	return best / float64(nv), pairing
}

package label

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"lamofinder/internal/graph"
	"lamofinder/internal/ontology"
)

// motifJSON is the serialized form of a LabeledMotif: edges as index pairs,
// labels as GO term ids (resolved against the ontology at load time).
type motifJSON struct {
	N           int        `json:"n"`
	Edges       [][2]int   `json:"edges"`
	Labels      [][]string `json:"labels"`
	Occurrences [][]int32  `json:"occurrences"`
	Frequency   int        `json:"frequency"`
	Uniqueness  float64    `json:"uniqueness"`
}

// WriteMotifs serializes labeled motifs as JSON lines (one motif per line),
// with labels encoded as term ids so the dictionary survives ontology
// reindexing.
func WriteMotifs(w io.Writer, o *ontology.Ontology, motifs []*LabeledMotif) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, lm := range motifs {
		j := motifJSON{
			N:           lm.Size(),
			Occurrences: lm.Occurrences,
			Frequency:   lm.Frequency,
			Uniqueness:  lm.Uniqueness,
		}
		for i := 0; i < lm.Size(); i++ {
			for p := 0; p < i; p++ {
				if lm.Pattern.HasEdge(i, p) {
					j.Edges = append(j.Edges, [2]int{p, i})
				}
			}
		}
		j.Labels = make([][]string, lm.Size())
		for v, ts := range lm.Labels {
			for _, t := range ts {
				j.Labels[v] = append(j.Labels[v], o.ID(int(t)))
			}
		}
		if err := enc.Encode(&j); err != nil {
			return fmt.Errorf("label: encode motif: %w", err)
		}
	}
	return bw.Flush()
}

// ReadMotifs loads a JSON-lines motif dictionary written by WriteMotifs.
// Labels naming unknown terms are dropped (with a count returned), so a
// dictionary can be loaded against a newer ontology revision.
func ReadMotifs(r io.Reader, o *ontology.Ontology) (motifs []*LabeledMotif, droppedTerms int, err error) {
	dec := json.NewDecoder(r)
	for {
		var j motifJSON
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, droppedTerms, fmt.Errorf("label: decode motif: %w", err)
		}
		if j.N < 0 || j.N > graph.MaxDense {
			return nil, droppedTerms, fmt.Errorf("label: motif size %d out of range", j.N)
		}
		lm := &LabeledMotif{
			Pattern:     graph.NewDense(j.N),
			Labels:      make([][]int32, j.N),
			Occurrences: j.Occurrences,
			Frequency:   j.Frequency,
			Uniqueness:  j.Uniqueness,
		}
		for _, e := range j.Edges {
			if e[0] < 0 || e[0] >= j.N || e[1] < 0 || e[1] >= j.N {
				return nil, droppedTerms, fmt.Errorf("label: edge %v out of range", e)
			}
			lm.Pattern.AddEdge(e[0], e[1])
		}
		for v, ids := range j.Labels {
			if v >= j.N {
				return nil, droppedTerms, fmt.Errorf("label: label row %d out of range", v)
			}
			for _, id := range ids {
				t := o.Index(id)
				if t < 0 {
					droppedTerms++
					continue
				}
				lm.Labels[v] = append(lm.Labels[v], int32(t))
			}
		}
		motifs = append(motifs, lm)
	}
	return motifs, droppedTerms, nil
}

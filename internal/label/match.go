package label

import (
	"sort"

	"lamofinder/internal/graph"
	"lamofinder/internal/ontology"
)

// FindConforming locates occurrences of a labeled motif in a (possibly
// different) annotated network: vertex sets whose induced subgraph embeds
// the pattern AND whose proteins' annotations conform to the per-vertex
// labels (equal or more specific than the scheme, with unannotated proteins
// conforming trivially — the paper's conformance relation). Occurrences are
// returned in pattern-vertex order, deduplicated by vertex set, up to limit
// (0 = all). This is how a motif dictionary mined on one interactome is
// applied to another.
func FindConforming(g *graph.Graph, c *ontology.Corpus, lm *LabeledMotif, limit int) [][]int32 {
	o := c.Ontology()
	k := lm.Size()
	if k == 0 || k > g.N() {
		return nil
	}
	// conforms reports whether protein gv may play pattern vertex v.
	conforms := func(v, gv int) bool {
		scheme := lm.Labels[v]
		if len(scheme) == 0 {
			return true
		}
		ann := c.Terms(gv)
		if len(ann) == 0 {
			return true
		}
		for _, st := range scheme {
			ok := false
			for _, at := range ann {
				if o.IsAncestorOrSelf(int(st), int(at)) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// Connected matching order over the pattern.
	order, prior := connectedOrderDense(lm.Pattern)
	mapped := make([]int, k)
	used := make([]bool, g.N())
	seenSets := map[string]bool{}
	var out [][]int32

	var rec func(pos int) bool // returns true to stop (limit reached)
	rec = func(pos int) bool {
		if pos == k {
			set := make([]int32, k)
			for p, u := range order {
				set[u] = int32(mapped[p])
			}
			sorted := append([]int32(nil), set...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			kb := make([]byte, 4*len(sorted))
			for i, v := range sorted {
				kb[4*i] = byte(v)
				kb[4*i+1] = byte(v >> 8)
				kb[4*i+2] = byte(v >> 16)
				kb[4*i+3] = byte(v >> 24)
			}
			if seenSets[string(kb)] {
				return false
			}
			seenSets[string(kb)] = true
			out = append(out, set)
			return limit > 0 && len(out) >= limit
		}
		u := order[pos]
		try := func(gv int) bool {
			if used[gv] || !conforms(u, gv) {
				return false
			}
			for p := 0; p < pos; p++ {
				if lm.Pattern.HasEdge(u, order[p]) != g.HasEdge(gv, mapped[p]) {
					return false
				}
			}
			mapped[pos] = gv
			used[gv] = true
			stop := rec(pos + 1)
			used[gv] = false
			return stop
		}
		if pos == 0 {
			for gv := 0; gv < g.N(); gv++ {
				if try(gv) {
					return true
				}
			}
			return false
		}
		anchor := mapped[prior[pos]]
		for _, gv := range g.Neighbors(anchor) {
			if try(int(gv)) {
				return true
			}
		}
		return false
	}
	rec(0)
	return out
}

// connectedOrderDense orders pattern vertices so each (after the first) is
// adjacent to an earlier one; prior[pos] is the position of one such
// earlier neighbor.
func connectedOrderDense(d *graph.Dense) (order []int, prior []int) {
	k := d.N()
	order = make([]int, 0, k)
	prior = make([]int, k)
	in := make([]bool, k)
	start := 0
	for v := 1; v < k; v++ {
		if d.Degree(v) > d.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	in[start] = true
	for len(order) < k {
		bv, ba, bd := -1, -1, -1
		for v := 0; v < k; v++ {
			if in[v] {
				continue
			}
			for pos, w := range order {
				if d.HasEdge(v, w) {
					if d.Degree(v) > bd {
						bv, ba, bd = v, pos, d.Degree(v)
					}
					break
				}
			}
		}
		if bv < 0 {
			for v := 0; v < k; v++ {
				if !in[v] {
					bv, ba = v, 0
					break
				}
			}
		}
		prior[len(order)] = ba
		order = append(order, bv)
		in[bv] = true
	}
	return order, prior
}

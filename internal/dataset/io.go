package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"lamofinder/internal/graph"
	"lamofinder/internal/ontology"
)

// LoadEdgeList reads a whitespace-separated protein interaction list (one
// "A B" pair per line; lines starting with '#' are comments). Self
// interactions and duplicate pairs are dropped, mirroring the paper's
// preprocessing of the BIND and MIPS downloads. It returns the graph and
// the protein name table (index = vertex id).
func LoadEdgeList(r io.Reader) (*graph.Graph, []string, error) {
	g := graph.New(0)
	index := map[string]int{}
	var names []string
	vertex := func(name string) int {
		if v, ok := index[name]; ok {
			return v
		}
		v := g.AddVertex()
		index[name] = v
		names = append(names, name)
		g.SetName(v, name)
		return v
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("edge list line %d: want two columns, got %q", lineNo, line)
		}
		a, b := vertex(fields[0]), vertex(fields[1])
		if a != b {
			g.AddEdge(a, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("edge list: %w", err)
	}
	return g, names, nil
}

// WriteEdgeList writes the graph as a protein-name edge list compatible
// with LoadEdgeList.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges(nil) {
		fmt.Fprintf(bw, "%s\t%s\n", g.Name(int(e[0])), g.Name(int(e[1])))
	}
	return bw.Flush()
}

// LoadAnnotations reads a two-column "protein<TAB>term" annotation file
// (GAF-flavored minimal form) into a corpus over the given ontology and
// protein name table. Unknown proteins and terms are skipped and counted.
func LoadAnnotations(r io.Reader, o *ontology.Ontology, names []string) (*ontology.Corpus, int, error) {
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	c := ontology.NewCorpus(o, len(names))
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, skipped, fmt.Errorf("annotations line %d: want two columns, got %q", lineNo, line)
		}
		p, okP := index[fields[0]]
		t := o.Index(fields[1])
		if !okP || t < 0 {
			skipped++
			continue
		}
		c.Annotate(p, t)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("annotations: %w", err)
	}
	return c, skipped, nil
}

// WriteAnnotations writes the corpus in the format read by LoadAnnotations,
// using the graph names for proteins.
func WriteAnnotations(w io.Writer, c *ontology.Corpus, names []string) error {
	bw := bufio.NewWriter(w)
	o := c.Ontology()
	for p := 0; p < c.NumProteins(); p++ {
		ts := append([]int32(nil), c.Terms(p)...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, t := range ts {
			fmt.Fprintf(bw, "%s\t%s\n", names[p], o.ID(int(t)))
		}
	}
	return bw.Flush()
}
